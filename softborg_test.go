package softborg

// Public-API tests: everything here goes through the softborg facade only,
// the way a downstream user would.

import (
	"testing"

	"repro/internal/sat"
)

func buildLeakyProgram(t *testing.T) *Program {
	t.Helper()
	// crash for 100 <= x < 110.
	b := BuildProgram("api-demo", 1)
	danger, end := b.NewLabel(), b.NewLabel()
	b.Input(0, 0)
	b.BrImm(0, CmpGE, 100, danger)
	b.Jmp(end)
	b.Bind(danger)
	inner := b.NewLabel()
	b.BrImm(0, CmpLT, 110, inner)
	b.Jmp(end)
	b.Bind(inner)
	b.Const(1, 0)
	b.Div(2, 1, 1)
	b.Bind(end)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPublicAPIEndToEnd(t *testing.T) {
	p := buildLeakyProgram(t)
	h := NewHive("salt")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	pd, err := NewPod(PodConfig{
		Program: p, ID: "api-pod", Hive: h,
		Capture: CaptureExternalOnly, Privacy: PrivacyHashed,
		Salt: "salt", BatchSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pd.RunOnce([]int64{3}); err != nil {
		t.Fatal(err)
	}
	res, err := pd.RunOnce([]int64{105})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeCrash {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if err := pd.SyncFixes(); err != nil {
		t.Fatal(err)
	}
	res2, err := pd.RunOnce([]int64{105})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Outcome != OutcomeOK {
		t.Fatalf("post-fix outcome = %v", res2.Outcome)
	}

	pr, err := h.Prove(p.ID, PropNoAssertFail)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Holds {
		t.Fatalf("no-assert-fail refuted: %s", pr.Statement())
	}
}

func TestPublicAPIOverTCP(t *testing.T) {
	p := buildLeakyProgram(t)
	h := NewHive("salt")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	srv, addr, err := ServeHive(h, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := DialHive(addr)
	defer client.Close()
	pd, err := NewPod(PodConfig{Program: p, ID: "tcp", Hive: client, Salt: "salt", BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pd.RunOnce([]int64{105}); err != nil {
		t.Fatal(err)
	}
	st, err := h.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != 1 || st.FixCount != 1 {
		t.Fatalf("hive stats over TCP = %+v", st)
	}
}

func TestPublicAPIGeneratorAndSimulation(t *testing.T) {
	p, bugs, err := GenerateProgram(GenSpec{
		Seed: 5, Depth: 4, TriggerWidth: 16,
		Bugs: []BugKind{BugCrash},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bugs) != 1 || bugs[0].Kind != BugCrash {
		t.Fatalf("bugs = %+v", bugs)
	}
	sim, err := NewSimulation(SimulationConfig{
		Seed:       2,
		Programs:   []ProgramUnderTest{{Prog: p, Bugs: bugs}},
		Population: PopulationConfig{Users: 10, MeanRunsPerDay: 5},
		Days:       2,
		Mode:       ModeSoftBorg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Runs == 0 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestPublicAPISolverPortfolio(t *testing.T) {
	solvers := NewSATPortfolio()
	if len(solvers) != 3 {
		t.Fatalf("portfolio size = %d", len(solvers))
	}
	f := &SATFormula{NumVars: 2, Clauses: []sat.Clause{{1, 2}, {-1, 2}, {1, -2}}}
	res := RaceSolvers(f, solvers, 0)
	if res.Verdict != sat.SAT || res.Winner == "" {
		t.Fatalf("race result = %+v", res)
	}
}

func TestPublicAPIClusterExplore(t *testing.T) {
	p, _, err := GenerateProgram(GenSpec{Seed: 9, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExploreTree(p, 4, ClusterDynamic)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("exploration incomplete: %+v", res)
	}
}

func TestPublicAPIBoundedScheduleProof(t *testing.T) {
	b := BuildProgram("mt-api", 0).SetLocks(2)
	b.Thread()
	b.Lock(0).Lock(1).Unlock(1).Unlock(0).Halt()
	b.Thread()
	b.Lock(0).Lock(1).Unlock(1).Unlock(0).Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := NewHive("salt")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	pr, err := h.ProveNoDeadlock(p.ID, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Holds || !pr.Complete {
		t.Fatalf("%s", pr.Statement())
	}
}
