// Command pod runs a fleet of SoftBorg pods against a remote hive or a
// sharded hive fleet (see cmd/hive): each pod executes its assigned
// generated program on simulated user inputs, streams traces over TCP,
// and syncs fixes. -hive takes a comma-separated list of fleet members;
// submissions route to each program's ring owner and chase redirects
// when a rebalance moves it.
//
// Uploads buffer locally and drain through the pipelined sequenced
// streaming path: every frame carries the client's session ID and a
// sequence number, so a drain interrupted by a dropped link resubmits its
// unacknowledged suffix with the original tags and the hive — including a
// durable hive that crashed and recovered in between (cmd/hive -data-dir)
// — ingests each batch exactly once. A drain whose retry also fails
// re-queues its remainder and is at-least-once on the next drain.
//
//	pod -hive 127.0.0.1:7070 -pods 8 -programs 4 -seed 1 -runs 200
//	pod -hive 127.0.0.1:7070,127.0.0.1:7071 -pods 8 -programs 4 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/pod"
	"repro/internal/population"
	"repro/internal/proggen"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pod:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pod", flag.ContinueOnError)
	hiveAddr := fs.String("hive", "127.0.0.1:7070", "hive address, or a comma-separated fleet of them")
	pods := fs.Int("pods", 8, "number of pods to run")
	programs := fs.Int("programs", 4, "program-corpus size (must match hive)")
	seed := fs.Uint64("seed", 1, "program-corpus seed (must match hive)")
	runs := fs.Int("runs", 200, "executions per pod")
	syncEvery := fs.Int("sync", 25, "sync fixes every N runs")
	drainEvery := fs.Int("drain", 50, "drain buffered traces every N runs (0 drains only at the end)")
	coalesce := fs.Int("coalesce", 0, "frames per coalesced mega-frame when the hive grants it (0 uses the default depth, negative disables coalescing)")
	compress := fs.String("compress", "auto", "batch compression over the wire: auto (engage when the hello round trip looks like a WAN), on, or off")
	retryBase := fs.Duration("retry-base", 0, "first busy-retry backoff step; doubles per attempt with jitter (0 uses the built-in default)")
	retryCap := fs.Duration("retry-cap", 0, "ceiling on the busy-retry backoff schedule (0 uses the built-in default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *compress {
	case "auto", "on", "off":
	default:
		return fmt.Errorf("-compress %q: want auto, on, or off", *compress)
	}

	pop, err := population.New(population.Config{Seed: *seed, Users: *pods})
	if err != nil {
		return err
	}

	var wg sync.WaitGroup
	errs := make(chan error, *pods)
	for i := 0; i < *pods; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- runPod(i, *hiveAddr, *seed, i%*programs, *runs, *syncEvery, *drainEvery, *coalesce, *compress, *retryBase, *retryCap, pop)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	fmt.Println("fleet done")
	return nil
}

func runPod(idx int, hiveAddr string, seed uint64, programIdx, runs, syncEvery, drainEvery, coalesce int, compress string, retryBase, retryCap time.Duration, pop *population.Population) error {
	p, _, err := proggen.Generate(proggen.CorpusSpec(seed, programIdx))
	if err != nil {
		return err
	}
	// A Router over the fleet addresses: against a single unsharded hive
	// it degenerates to a plain client; against a sharded fleet every
	// frame goes to its program's owner.
	client := wire.NewRouter(strings.Split(hiveAddr, ",")...)
	defer client.Close()
	if coalesce < 0 {
		client.DisableCoalesce = true
	} else {
		client.CoalesceDepth = coalesce
	}
	switch compress {
	case "on":
		client.ForceCompress = true
	case "off":
		client.DisableCompression = true
	}
	// Busy-retry pacing: a hive answering busy-retry (admission control or
	// deferred low-rarity work) is waited out with jittered exponential
	// backoff rather than hammered.
	client.RetryBase = retryBase
	client.RetryCap = retryCap
	// The buffer is bound to the pod's program, so drains stream pipelined
	// sequenced frames — exactly-once across reconnects and hive restarts.
	buffer := pod.NewBufferedFor(client, p.ID)

	user := pop.Users()[idx]
	pd, err := pod.New(pod.Config{
		Program:  p,
		ID:       fmt.Sprintf("pod-%d", idx),
		Hive:     buffer,
		Salt:     "fleet",
		Seed:     uint64(idx) + 1,
		Syscalls: user.Syscalls(),
	})
	if err != nil {
		return err
	}
	for r := 0; r < runs; r++ {
		input := user.NextInput(p.NumInputs, pop.Domain())
		if _, err := pd.RunOnce(input); err != nil {
			return fmt.Errorf("pod %d: %w", idx, err)
		}
		if syncEvery > 0 && r%syncEvery == syncEvery-1 {
			if err := pd.SyncFixes(); err != nil {
				return err
			}
		}
		if drainEvery > 0 && r%drainEvery == drainEvery-1 {
			if err := pd.Flush(); err != nil {
				return err
			}
			if err := buffer.Drain(); err != nil {
				return err
			}
		}
	}
	if err := pd.Flush(); err != nil {
		return err
	}
	if err := buffer.Drain(); err != nil {
		return err
	}
	st := pd.Stats()
	fmt.Printf("pod %d: runs=%d failures=%d averted=%d uploaded=%d fixver=%d\n",
		idx, st.Runs, st.Failures, st.FailuresAverted, st.TracesUploaded, st.FixVersion)
	return nil
}
