// Command repolint runs the project's invariant analyzers (internal/analysis)
// over the module and exits nonzero on findings.
//
// Usage:
//
//	go run ./cmd/repolint ./...
//
// Package patterns are accepted for familiarity but the whole module is
// always loaded (the analyzers need cross-package type facts); a directory
// argument selects which module to load. Flags:
//
//	-json          emit findings as a JSON array
//	-check a,b     run only the named analyzers
//	-list          list analyzers and exit
//	-tests         also lint _test.go files (off by default)
//	-unused-allows report //lint:allow directives that suppress nothing
//	               (default true on full-suite runs)
//
// Exit status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut      = flag.Bool("json", false, "emit findings as JSON")
		checks       = flag.String("check", "", "comma-separated analyzer names to run (default: all)")
		list         = flag.Bool("list", false, "list analyzers and exit")
		tests        = flag.Bool("tests", false, "also lint _test.go files")
		unusedAllows = flag.Bool("unused-allows", true, "report unused //lint:allow directives (full-suite runs only)")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	dir := "."
	for _, arg := range flag.Args() {
		if arg == "./..." || strings.HasPrefix(arg, "-") {
			continue
		}
		arg = strings.TrimSuffix(arg, "/...")
		if st, err := os.Stat(arg); err == nil && st.IsDir() {
			dir = arg
			break
		}
	}

	selected := analysis.All()
	fullSuite := true
	if *checks != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range selected {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "repolint: unknown check %q (use -list)\n", name)
				return 2
			}
			selected = append(selected, a)
		}
		fullSuite = len(selected) == len(analysis.All())
	}

	mod, err := analysis.Load(dir, analysis.LoadConfig{Tests: *tests})
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 2
	}

	diags := analysis.Run(mod, analysis.RunConfig{
		Analyzers:          selected,
		ReportUnusedAllows: *unusedAllows && fullSuite,
	})

	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			return 2
		}
	} else {
		analysis.WriteText(os.Stdout, diags)
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
