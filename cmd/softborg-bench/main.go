// Command softborg-bench regenerates the reproduction tables for every
// experiment in EXPERIMENTS.md (E1–E11): the paper's figures and
// quantitative claims. With no flags it runs everything; -run selects a
// comma-separated subset.
//
//	softborg-bench            # all experiments
//	softborg-bench -run E3,E6 # just the portfolio and bug-density tables
//	softborg-bench -list      # list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "softborg-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("softborg-bench", flag.ContinueOnError)
	runFilter := fs.String("run", "", "comma-separated experiment ids to run (default: all)")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	specs := experiments.All()
	if *list {
		for _, s := range specs {
			fmt.Printf("%-4s %s\n", s.ID, s.Name)
		}
		return nil
	}

	want := map[string]bool{}
	if *runFilter != "" {
		for _, id := range strings.Split(*runFilter, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	ran := 0
	for _, s := range specs {
		if len(want) > 0 && !want[s.ID] {
			continue
		}
		start := time.Now()
		tbl, err := s.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", s.ID, err)
		}
		fmt.Println(tbl.Render())
		fmt.Printf("[%s completed in %s]\n\n", s.ID, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches -run=%q (try -list)", *runFilter)
	}
	return nil
}
