package main

import "testing"

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Fatal("bogus experiment id accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// E10 is the fastest experiment (<50ms).
	if err := run([]string{"-run", "e10"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadFlagRejected(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
