// Command hive runs a standalone SoftBorg hive: a TCP server that ingests
// pod traces, synthesizes fixes, and serves guidance for a corpus of
// generated programs (pods must be started with the same -seed corpus; see
// cmd/pod).
//
// With -data-dir the hive is durable: collective knowledge (execution
// trees, failure signatures, fixes, proofs, and the exactly-once session
// dedup table) is journaled ahead of being applied and snapshotted every
// -snapshot-every; on boot the hive recovers snapshot chain + journal
// suffix, so killing the process loses nothing that was acknowledged.
// Journal appends group-commit (-group-batch/-group-window: concurrent
// appends coalesce into one write+fsync) and snapshots are incremental
// delta segments compacted into a full snapshot every -compact-every
// checkpoints, so durable ingest and checkpoint pauses both track the
// change rate, not the accumulated tree size.
//
// With -peers the hive is one member of a sharded fleet: a consistent-hash
// ring over the peer addresses (seeded by -ring-seed, which the whole
// fleet must share) assigns every program an owner. Misdirected frames
// from ring-aware clients are answered with a redirect to the owner;
// frames from older clients are proxied server-side. SIGHUP triggers a
// rebalance: peers are probed, dead ones are dropped from the ring, and
// the bumped placement map is installed and advertised on the next hello.
//
//	hive -addr 127.0.0.1:7070 -programs 4 -seed 1 -data-dir /var/lib/hive -fsync
//	hive -addr 127.0.0.1:7071 -peers 127.0.0.1:7070,127.0.0.1:7071 -self 127.0.0.1:7071
package main

import (
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/archive"
	"repro/internal/hive"
	"repro/internal/journal"
	"repro/internal/proggen"
	"repro/internal/ring"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hive:", err)
		os.Exit(1)
	}
}

// writerID loads (creating on first boot) this replica's archive writer
// name, persisted alongside its journal. Each replica owns its data dir, so
// a random ID stored there is unique across the fleet without coordination
// and stable across restarts.
func writerID(dataDir string) (string, error) {
	path := filepath.Join(dataDir, "writer-id")
	if b, err := os.ReadFile(path); err == nil {
		if id := strings.TrimSpace(string(b)); id != "" {
			return id, nil
		}
	}
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "", fmt.Errorf("writer id: %w", err)
	}
	id := "w-" + hex.EncodeToString(buf[:])
	if err := os.WriteFile(path, []byte(id+"\n"), 0o644); err != nil {
		return "", fmt.Errorf("writer id: %w", err)
	}
	return id, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("hive", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	programs := fs.Int("programs", 4, "number of generated programs to serve")
	seed := fs.Uint64("seed", 1, "program-corpus seed (must match pods)")
	statsEvery := fs.Duration("stats", 5*time.Second, "stats reporting interval (0 disables)")
	dataDir := fs.String("data-dir", "", "journal/snapshot directory; empty runs in-memory only")
	snapshotEvery := fs.Duration("snapshot-every", 30*time.Second, "background snapshot interval (0 disables; requires -data-dir)")
	fsync := fs.Bool("fsync", false, "fsync every journal flush (power-failure durability)")
	groupWindow := fs.Duration("group-window", 0, "group-commit flush window: how long an append waits for concurrent appends to coalesce (0 flushes as soon as the committer is free)")
	groupBatch := fs.Int("group-batch", 256, "group-commit batch cap: max journal records coalesced into one write+fsync (<=1 disables group commit)")
	commitWorkers := fs.Int("commit-workers", 0, "committer-pool cap shared across all programs' journals (0 uses the default; the pool bounds goroutines and fsync concurrency for the whole data dir)")
	compactEvery := fs.Int("compact-every", 8, "snapshots are incremental delta segments, compacted into a full snapshot every N checkpoints (<=0 makes every snapshot full)")
	archiveDir := fs.String("archive-dir", "", "archive object-store directory: snapshot chains and sealed WAL segments are tiered here in the background (requires -data-dir)")
	archiveEvery := fs.Duration("archive-every", time.Minute, "background archive sync interval (0 disables; requires -archive-dir)")
	diskBudget := fs.Int64("disk-budget", 0, "local data-dir byte budget: archived chains past it are pruned to tether markers and rehydrated from the archive on demand (0 keeps everything local; requires -archive-dir)")
	maxFrame := fs.Int("max-frame", 0, "cap on the frame-size raise granted to WAN clients in bytes (0 uses the built-in maximum; never drops below the universal frame limit)")
	noWAN := fs.Bool("no-wan", false, "refuse the WAN transport features (coalesced mega-frames, compressed batches, frame-size raises) in hello grants")
	sessRate := fs.Float64("max-sessions-rate", 0, "per-session admission rate in traces/sec; over-rate clients get busy-retry replies (0 disables)")
	ingestQueue := fs.Int64("ingest-queue", 0, "server-wide ingest queue budget in bytes: per-conn reads pause at 1/4 of this, and queued/budget is the shed pressure gauge (0 disables)")
	shedWatermark := fs.Float64("shed-watermark", 0, "pressure in [0,1) past which batches are priced and the cheapest shed; 0 disables shedding, negative selects the default watermark (requires -ingest-queue)")
	rarityFloor := fs.Int64("rarity-floor", 0, "sibling-visit count under which novel paths are deferrable near saturation (0 disables the defer tier)")
	frameTimeout := fs.Duration("frame-timeout", 0, "max wall time a started frame may dribble before the connection is evicted (0 disables slow-loris protection)")
	maxConns := fs.Int64("max-conns", 0, "cap on concurrently served connections; excess accepts are closed (0 unlimited)")
	maxHalfOpen := fs.Int64("max-half-open", 0, "cap on connections that have not yet completed one valid frame (0 unlimited)")
	peers := fs.String("peers", "", "comma-separated fleet addresses, this hive's advertised address included; empty runs unsharded")
	selfAddr := fs.String("self", "", "this hive's advertised address within -peers (default: the bound listen address)")
	ringSeed := fs.Uint64("ring-seed", 1, "placement-ring hash seed; the whole fleet must agree")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per hive on the placement ring (0 uses the default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	h := hive.New("fleet")
	// Operational warnings (e.g. the first session-table eviction) go to
	// stderr so an operator sees dedup degrade before chasing duplicates.
	h.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	ids := make([]string, 0, *programs)
	for i := 0; i < *programs; i++ {
		p, _, err := proggen.Generate(proggen.CorpusSpec(*seed, i))
		if err != nil {
			return err
		}
		if err := h.RegisterProgram(p); err != nil {
			return err
		}
		ids = append(ids, p.ID)
		fmt.Printf("registered program %d: %s (%s)\n", i, p.Name, p.ID)
	}

	var (
		store *journal.Store
		arch  *archive.Archiver
	)
	if *dataDir != "" {
		var err error
		store, err = journal.Open(*dataDir, journal.Options{
			Fsync:         *fsync,
			GroupWindow:   *groupWindow,
			MaxBatch:      *groupBatch,
			CommitWorkers: *commitWorkers,
		})
		if err != nil {
			return err
		}
		defer store.Close()
		if *archiveDir != "" {
			obj, err := archive.NewDirStore(*archiveDir, nil)
			if err != nil {
				return err
			}
			// The fetcher must be armed before Recover: a boot against a
			// data dir pruned to tether markers rehydrates chains from the
			// archive during recovery.
			store.SetChainFetcher(archive.ChainFetcher(obj))
			// The writer name must be unique per replica — manifests are
			// keyed by it and replicas must never overwrite each other's —
			// so it cannot come from the -addr flag (two replicas behind
			// different hosts may share the default). A random ID persisted
			// in the data dir is unique by construction and stable across
			// restarts, so a rebooted archiver resumes its own manifests.
			writer, err := writerID(*dataDir)
			if err != nil {
				return err
			}
			arch = archive.New(store, obj, archive.Options{
				Writer:     writer,
				DiskBudget: *diskBudget,
			})
		} else if *diskBudget > 0 {
			return fmt.Errorf("-disk-budget needs -archive-dir: chains can only be pruned locally once they are archived")
		}
		h.SetCompactEvery(*compactEvery)
		if err := h.Recover(store); err != nil {
			return err
		}
		for i, id := range ids {
			if st, err := h.ProgramStats(id); err == nil && st.Ingested > 0 {
				fmt.Printf("recovered program %d: ingested=%d paths=%d fixes=%d failures=%d\n",
					i, st.Ingested, st.Tree.Paths, st.FixCount, len(st.Failures))
			}
		}
		fmt.Printf("durable hive: data in %s (snapshot every %v)\n", *dataDir, *snapshotEvery)
		if arch != nil {
			fmt.Printf("archive tier: %s (sync every %v, disk budget %dB)\n", *archiveDir, *archiveEvery, *diskBudget)
		}
	} else if *archiveDir != "" {
		return fmt.Errorf("-archive-dir needs -data-dir: the archive tiers the journal, it does not replace it")
	} else if *diskBudget > 0 {
		return fmt.Errorf("-disk-budget needs -archive-dir: chains can only be pruned locally once they are archived")
	}

	srv := wire.NewServer(h)
	srv.MaxFrame = *maxFrame
	srv.DisableWAN = *noWAN
	if *sessRate > 0 || *ingestQueue > 0 || *frameTimeout > 0 || *maxConns > 0 || *maxHalfOpen > 0 {
		adm := &wire.Admission{
			SessionRate:  *sessRate,
			FrameTimeout: *frameTimeout,
			MaxConns:     *maxConns,
			MaxHalfOpen:  *maxHalfOpen,
		}
		if *ingestQueue > 0 {
			adm.TotalQueueBytes = *ingestQueue
			adm.ConnQueueBytes = *ingestQueue / 4
		}
		srv.Admission = adm
	}
	if *shedWatermark != 0 {
		if *ingestQueue <= 0 {
			return fmt.Errorf("-shed-watermark needs -ingest-queue: the pressure gauge is queued bytes over the queue budget")
		}
		w := *shedWatermark
		if w < 0 {
			w = 0 // SetShedPolicy substitutes the default watermark
		}
		h.SetShedPolicy(&hive.ShedPolicy{Watermark: w, RarityFloor: *rarityFloor})
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("hive listening on %s\n", bound)

	// Sharded fleet: install the placement ring and arm the SIGHUP
	// rebalance trigger.
	var (
		fleet        []string
		self         string
		placeVersion uint64
	)
	rebal := make(chan os.Signal, 1)
	if *peers != "" {
		fleet = strings.Split(*peers, ",")
		self = *selfAddr
		if self == "" {
			self = bound
		}
		placeVersion = 1
		m := ring.NewVersion(placeVersion, fleet, *vnodes, *ringSeed)
		if !m.Contains(self) {
			return fmt.Errorf("self address %s is not in -peers %s", self, *peers)
		}
		srv.SetPlacement(m, self)
		fmt.Printf("sharded hive: placement v%d over %v, self=%s\n", m.Version(), m.Nodes(), self)
		signal.Notify(rebal, syscall.SIGHUP)
	}
	rebalance := func() {
		live := make([]string, 0, len(fleet))
		for _, peer := range fleet {
			if peer == self {
				live = append(live, peer)
				continue
			}
			conn, err := net.DialTimeout("tcp", peer, 2*time.Second)
			if err != nil {
				fmt.Printf("rebalance: peer %s unreachable, dropping from ring: %v\n", peer, err)
				continue
			}
			_ = conn.Close()
			live = append(live, peer)
		}
		placeVersion++
		m := ring.NewVersion(placeVersion, live, *vnodes, *ringSeed)
		srv.SetPlacement(m, self)
		fmt.Printf("rebalance: placement v%d over %v\n", m.Version(), m.Nodes())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	// Background snapshotter: bounds journal-replay time after a crash.
	snapDone := make(chan struct{})
	if store != nil && *snapshotEvery > 0 {
		ticker := time.NewTicker(*snapshotEvery)
		go func() {
			defer close(snapDone)
			for {
				select {
				case <-snapDone:
					return
				case <-ticker.C:
					if err := h.Checkpoint(); err != nil {
						fmt.Fprintln(os.Stderr, "hive: snapshot:", err)
					}
				}
			}
		}()
		defer func() {
			ticker.Stop()
			snapDone <- struct{}{}
			<-snapDone
		}()
	}

	// Background archiver: tiers snapshot chains and sealed WAL segments
	// into the archive store and prunes local generations to the disk
	// budget. Sync errors are logged and retried on the next tick — the
	// local journal stays the source of truth until a sync lands.
	archDone := make(chan struct{})
	if arch != nil && *archiveEvery > 0 {
		ticker := time.NewTicker(*archiveEvery)
		go func() {
			defer close(archDone)
			for {
				select {
				case <-archDone:
					return
				case <-ticker.C:
					if err := arch.SyncAll(); err != nil {
						fmt.Fprintln(os.Stderr, "hive: archive sync:", err)
					}
				}
			}
		}()
		defer func() {
			ticker.Stop()
			archDone <- struct{}{}
			<-archDone
		}()
	}

	shutdown := func() error {
		fmt.Println("shutting down")
		if store != nil {
			// A final checkpoint makes the next boot replay-free; skipping it
			// (kill -9) only costs replay time, never data.
			if err := h.Checkpoint(); err != nil {
				return err
			}
			if err := h.DurabilityError(); err != nil {
				return fmt.Errorf("durability degraded during run: %w", err)
			}
		}
		if arch != nil {
			// A final archive sync ships the closing checkpoint, so a cold
			// standby can rebuild this hive's final state from the archive
			// alone. Failure is reported but not fatal: the local dir holds
			// everything.
			if err := arch.SyncAll(); err != nil {
				fmt.Fprintln(os.Stderr, "hive: final archive sync:", err)
			}
		}
		return nil
	}

	if *statsEvery <= 0 {
		for {
			select {
			case <-stop:
				return shutdown()
			case <-rebal:
				rebalance()
			}
		}
	}
	ticker := time.NewTicker(*statsEvery)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return shutdown()
		case <-rebal:
			rebalance()
		case <-ticker.C:
			for i, id := range ids {
				st, err := h.ProgramStats(id)
				if err != nil {
					continue
				}
				fmt.Printf("program %d: ingested=%d paths=%d fixes=%d failures=%d repair-lab=%d\n",
					i, st.Ingested, st.Tree.Paths, st.FixCount, len(st.Failures), st.RepairLab)
			}
			live, frozen := h.SessionCount()
			fmt.Printf("sessions: live=%d frozen=%d displaced=%d\n", live, frozen, h.SessionEvictions())
			if ro := h.ReadOnlyPrograms(); ro > 0 {
				fmt.Printf("READ-ONLY: %d program(s) refusing ingest after journal write failures\n", ro)
			}
			if ss := h.ShedStats(); ss != (hive.ShedStats{}) {
				fmt.Printf("shed: admitted=%d first-sight=%d dup=%d covered=%d deferred=%d\n",
					ss.Admitted, ss.AdmittedFirstSight, ss.ShedDuplicate, ss.ShedCovered, ss.Deferred)
			}
			if as := srv.AdmissionStats(); as != (wire.AdmissionStats{}) {
				fmt.Printf("admission: busy=%d readonly-busy=%d paced=%d slow-evicted=%d rejected=%d queued=%dB pressure=%.2f\n",
					as.BusyReplies, as.ReadOnlyBusy, as.PacedFrames, as.SlowLorisEvicted, as.ConnsRejected, as.QueuedBytes, as.Pressure)
			}
			if arch != nil {
				st := arch.Stats()
				du, _ := store.DiskUsage()
				fmt.Printf("archive: syncs=%d segments=%d manifests=%d shipped=%dB pruned=%d(%dB) errors=%d local=%dB\n",
					st.Syncs, st.SegmentsWritten, st.ManifestsWritten, st.BytesWritten, st.ChainsPruned, st.BytesPruned, st.SyncErrors, du)
			}
		}
	}
}
