// Command hive runs a standalone SoftBorg hive: a TCP server that ingests
// pod traces, synthesizes fixes, and serves guidance for a corpus of
// generated programs (pods must be started with the same -seed corpus; see
// cmd/pod).
//
//	hive -addr 127.0.0.1:7070 -programs 4 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/hive"
	"repro/internal/proggen"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hive:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hive", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	programs := fs.Int("programs", 4, "number of generated programs to serve")
	seed := fs.Uint64("seed", 1, "program-corpus seed (must match pods)")
	statsEvery := fs.Duration("stats", 5*time.Second, "stats reporting interval (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	h := hive.New("fleet")
	ids := make([]string, 0, *programs)
	for i := 0; i < *programs; i++ {
		p, _, err := proggen.Generate(proggen.CorpusSpec(*seed, i))
		if err != nil {
			return err
		}
		if err := h.RegisterProgram(p); err != nil {
			return err
		}
		ids = append(ids, p.ID)
		fmt.Printf("registered program %d: %s (%s)\n", i, p.Name, p.ID)
	}

	srv := wire.NewServer(h)
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("hive listening on %s\n", bound)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if *statsEvery <= 0 {
		<-stop
		return nil
	}
	ticker := time.NewTicker(*statsEvery)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			fmt.Println("shutting down")
			return nil
		case <-ticker.C:
			for i, id := range ids {
				st, err := h.ProgramStats(id)
				if err != nil {
					continue
				}
				fmt.Printf("program %d: ingested=%d paths=%d fixes=%d failures=%d repair-lab=%d\n",
					i, st.Ingested, st.Tree.Paths, st.FixCount, len(st.Failures), st.RepairLab)
			}
		}
	}
}
