package softborg

// Cluster-level tests and the E16 scaling bench: a fleet of hive
// processes sharded by the consistent-hash placement ring
// (internal/ring), with per-program ownership enforced at the wire layer
// (redirects for ring-aware clients, server-side proxying for older
// generations) and re-homing via exported program snapshots.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/hive"
	"repro/internal/journal"
	"repro/internal/netshape"
	"repro/internal/pod"
	"repro/internal/prog"
	"repro/internal/proggen"
	"repro/internal/ring"
	"repro/internal/trace"
	"repro/internal/wire"
)

// clusterCorpus generates n distinct crash-prone programs.
func clusterCorpus(t testing.TB, n int) []*prog.Program {
	t.Helper()
	out := make([]*prog.Program, n)
	for i := range out {
		p, _, err := proggen.Generate(proggen.Spec{
			Seed: uint64(200 + i), Depth: 4,
			Bugs:         []proggen.BugKind{proggen.BugCrash},
			TriggerWidth: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = p
	}
	return out
}

// clusterTrace captures one real trace of p under full capture.
func clusterTrace(t testing.TB, p *prog.Program, n int) *trace.Trace {
	t.Helper()
	input := make([]int64, p.NumInputs)
	for k := range input {
		input[k] = int64((n*13 + k*7) % 160)
	}
	col := trace.NewCollector(p, trace.CaptureFull, 0, uint64(n+1))
	m, err := prog.NewMachine(p, prog.Config{Input: input, Observer: col})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	return col.Finish(fmt.Sprintf("pod-%d", n%4), uint64(n), res, input, trace.PrivacyHashed, "fleet")
}

// clusterNode is one member of a durable sharded fleet.
type clusterNode struct {
	h     *hive.Hive
	store *journal.Store
	srv   *wire.Server
	addr  string
	dir   string
}

// startClusterNode boots one durable hive with the whole corpus
// registered (registration is metadata; ingest lands only on owners) and
// recovery run against dir.
func startClusterNode(t *testing.T, dir string, corpus []*prog.Program) *clusterNode {
	t.Helper()
	h := hive.New("fleet")
	for _, p := range corpus {
		if err := h.RegisterProgram(p); err != nil {
			t.Fatal(err)
		}
	}
	store, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Recover(store); err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(h)
	srv.Logf = func(string, ...any) {}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return &clusterNode{h: h, store: store, srv: srv, addr: addr, dir: dir}
}

// TestE16KillOneHiveRebalance is experiment E16's correctness half: a
// 3-hive durable fleet ingests sealed frames routed by the placement
// ring; one hive is killed mid-run; its programs are re-homed onto the
// survivors from its own data dir (snapshot export -> import, recovery
// through the DecodeChain path); and the parked plus already-acked frames
// drain again through the router. Required outcome: every program
// re-homed, zero acked traces lost, zero traces double-applied, and
// steering converging from the new owner.
func TestE16KillOneHiveRebalance(t *testing.T) {
	corpus := clusterCorpus(t, 6)
	nodes := make([]*clusterNode, 3)
	addrs := make([]string, 3)
	for i := range nodes {
		nodes[i] = startClusterNode(t, t.TempDir(), corpus)
		addrs[i] = nodes[i].addr
	}
	m1 := ring.New(addrs, ring.DefaultVNodes, 42)
	for _, nd := range nodes {
		nd.srv.SetPlacement(m1, nd.addr)
	}
	byAddr := func(addr string) *clusterNode {
		for _, nd := range nodes {
			if nd.addr == addr {
				return nd
			}
		}
		t.Fatalf("no node at %s", addr)
		return nil
	}

	router := wire.NewRouter(addrs...)
	defer router.Close()

	// Phase 1: seal 8 chunks of 16 traces per program; drain the first 4
	// (acked fleet-wide), park the rest.
	const chunks, perChunk, drained = 8, 16, 4
	sealedBy := make(map[string][]pod.SealedBatch)
	for pi, p := range corpus {
		batches := make([][]*trace.Trace, chunks)
		for c := range batches {
			batch := make([]*trace.Trace, perChunk)
			for j := range batch {
				batch[j] = clusterTrace(t, p, pi*chunks*perChunk+c*perChunk+j)
			}
			batches[c] = batch
		}
		sealed := router.SealTraceBatches(p.ID, batches)
		acc, err := router.SubmitSealed(sealed[:drained])
		if err != nil {
			t.Fatalf("phase-1 drain for program %d: %v", pi, err)
		}
		for c, ok := range acc {
			if !ok {
				t.Fatalf("phase-1 chunk %d of program %d not acked", c, pi)
			}
		}
		sealedBy[p.ID] = sealed
	}
	for _, p := range corpus {
		st, err := byAddr(m1.Owner(p.ID)).h.ProgramStats(p.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Ingested != drained*perChunk {
			t.Fatalf("phase-1 owner of %s ingested %d, want %d", p.ID, st.Ingested, drained*perChunk)
		}
	}

	// Kill the owner of program 0 mid-simulation.
	victim := byAddr(m1.Owner(corpus[0].ID))
	var victimOwned []*prog.Program
	for _, p := range corpus {
		if m1.Owner(p.ID) == victim.addr {
			victimOwned = append(victimOwned, p)
		}
	}
	if err := victim.srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := victim.store.Close(); err != nil {
		t.Fatal(err)
	}

	// Takeover: recover the victim's data dir into snapshots and import
	// each of its programs on the owner the shrunken ring assigns.
	m2 := m1.Without(victim.addr)
	deadStore, err := journal.Open(victim.dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := hive.ExportFromStore(deadStore, corpus, "fleet")
	if err != nil {
		t.Fatal(err)
	}
	if err := deadStore.Close(); err != nil {
		t.Fatal(err)
	}
	rehomed := 0
	for _, p := range victimOwned {
		snap, ok := snaps[p.ID]
		if !ok {
			t.Fatalf("takeover export lost program %s", p.ID)
		}
		if err := byAddr(m2.Owner(p.ID)).h.ImportProgram(snap); err != nil {
			t.Fatal(err)
		}
		rehomed++
	}
	if rehomed != len(victimOwned) || rehomed == 0 {
		t.Fatalf("re-homed %d of %d victim programs", rehomed, len(victimOwned))
	}
	for _, nd := range nodes {
		if nd != victim {
			nd.srv.SetPlacement(m2, nd.addr)
		}
	}

	// Drain everything through the stale router: the parked chunks plus a
	// verbatim resubmission of every already-acked chunk. The victim's
	// death forces a placement refresh; acked frames must dup-ack on the
	// new owner (the session table traveled inside the snapshot).
	for pi, p := range corpus {
		acc, err := router.SubmitSealed(sealedBy[p.ID])
		if err != nil {
			t.Fatalf("post-kill drain for program %d: %v", pi, err)
		}
		for c, ok := range acc {
			if !ok {
				t.Fatalf("post-kill chunk %d of program %d not delivered", c, pi)
			}
		}
	}
	for _, p := range corpus {
		st, err := byAddr(m2.Owner(p.ID)).h.ProgramStats(p.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Ingested != chunks*perChunk {
			t.Fatalf("program %s ingested %d, want %d (lost or double-applied traces)", p.ID, st.Ingested, chunks*perChunk)
		}
	}

	// Steering converges from the new owner: a pod pulling guidance for a
	// re-homed program through the router closes frontiers the migrated
	// tree still had open.
	moved := victimOwned[0]
	newOwner := byAddr(m2.Owner(moved.ID))
	tree, err := newOwner.h.Tree(moved.ID)
	if err != nil {
		t.Fatal(err)
	}
	before := tree.FrontierCount()
	if before == 0 {
		t.Fatalf("migrated tree for %s has no open frontiers to steer", moved.ID)
	}
	buffer := pod.NewBufferedFor(router, moved.ID)
	pd, err := pod.New(pod.Config{
		Program: moved, ID: "steer-pod", Hive: buffer,
		Privacy: trace.PrivacyHashed, Salt: "fleet",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Closing a frontier can expose deeper ones, so convergence means the
	// steering loop drives the frontier set to zero, not that one pull
	// shrinks it.
	steered := 0
	for round := 0; round < 32; round++ {
		tree, err = newOwner.h.Tree(moved.ID)
		if err != nil {
			t.Fatal(err)
		}
		if tree.FrontierCount() == 0 {
			break
		}
		ran, err := pd.PullGuidance(16)
		if err != nil {
			t.Fatal(err)
		}
		if ran == 0 {
			t.Fatalf("open frontiers (%d) but the new owner served no guidance", tree.FrontierCount())
		}
		steered += ran
		if err := pd.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := buffer.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	if steered == 0 {
		t.Fatal("new owner served no guidance for the re-homed program")
	}
	tree, err = newOwner.h.Tree(moved.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after := tree.FrontierCount(); after != 0 {
		t.Fatalf("steering not converging after re-homing: frontier %d open after %d steered runs (started at %d)", after, steered, before)
	}

	for _, nd := range nodes {
		if nd != victim {
			if err := nd.store.Close(); err != nil {
				t.Fatal(err)
			}
			_ = nd.srv.Close()
		}
	}
}

// benchClusterPool generates candidate programs for the scaling bench and
// picks a fixed-size subset whose ring ownership is balanced on both the
// 2-node and 3-node fleets, so every subcase pushes the identical byte
// volume and the ideal split. Proxy ports are pinned (see NewAt) to keep
// the rings — and therefore the chosen subset — identical across runs.
func benchClusterPick(b *testing.B, pool []*prog.Program, want int, rings []*ring.Map) []*prog.Program {
	b.Helper()
	quota := make([]map[string]int, len(rings))
	for i, m := range rings {
		quota[i] = make(map[string]int)
		for _, node := range m.Nodes() {
			quota[i][node] = want / len(m.Nodes())
		}
	}
	var chosen []*prog.Program
	for _, p := range pool {
		fits := true
		for i, m := range rings {
			if quota[i][m.Owner(p.ID)] == 0 {
				fits = false
				break
			}
		}
		if !fits {
			continue
		}
		for i, m := range rings {
			quota[i][m.Owner(p.ID)]--
		}
		chosen = append(chosen, p)
		if len(chosen) == want {
			return chosen
		}
	}
	b.Fatalf("candidate pool exhausted at %d/%d balanced programs", len(chosen), want)
	return nil
}

// BenchmarkClusterIngest is experiment E16's scaling half: the same
// six-program sealed drain submitted through 1, 2, and 3 hives, each hive
// behind its own bandwidth-capped uplink (netshape, 12 MiB/s per hive,
// 20 ms RTT — the regime where ingest is bandwidth-bound, so fleet
// scaling must come from programs draining through disjoint uplinks in
// parallel). Program placement is ideal (balanced by construction);
// ownership balance in general is the ring's own property
// (ring.TestDistributionBalance). Compression is off so every subcase
// ships identical bytes.
func BenchmarkClusterIngest(b *testing.B) {
	const (
		perUplink = 12 << 20
		rtt       = 20 * time.Millisecond
		nPrograms = 6
		chunks    = 10
		perChunk  = 128
	)
	// Stable proxy ports: the ring hashes proxy addresses, so stable ports
	// pin ownership across runs. Each subcase gets its own port block.
	ports := map[int][]string{
		1: {"127.0.0.1:29411"},
		2: {"127.0.0.1:29421", "127.0.0.1:29422"},
		3: {"127.0.0.1:29431", "127.0.0.1:29432", "127.0.0.1:29433"},
	}
	pool := make([]*prog.Program, 0, 40)
	for i := 0; i < 40; i++ {
		p, _, err := proggen.Generate(proggen.Spec{
			Seed: uint64(500 + i), Depth: 6, Loops: 2, Syscalls: 1, NumInputs: 2, DetBranches: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		pool = append(pool, p)
	}
	chosen := benchClusterPick(b, pool, nPrograms, []*ring.Map{
		ring.New(ports[2], ring.DefaultVNodes, 42),
		ring.New(ports[3], ring.DefaultVNodes, 42),
	})
	corpora := make(map[string][][]*trace.Trace, nPrograms)
	for _, p := range chosen {
		corpora[p.ID] = shapedCorpus(b, p, chunks, perChunk)
	}

	for _, n := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("hives=%d", n), func(b *testing.B) {
			backends := make([]*nullHive, n)
			for i := 0; i < n; i++ {
				backends[i] = &nullHive{}
				srv := wire.NewServer(backends[i])
				srv.Logf = func(string, ...any) {}
				addr, err := srv.Listen("127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				defer srv.Close()
				proxy, err := netshape.NewAt(addr, ports[n][i], netshape.Config{
					RTT:       rtt,
					Bandwidth: perUplink,
					Seed:      42,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer proxy.Close()
				srv.SetPlacement(ring.New(ports[n], ring.DefaultVNodes, 42), ports[n][i])
			}

			router := wire.NewRouter(ports[n]...)
			router.DisableCompression = true
			defer router.Close()
			var allSealed []pod.SealedBatch
			for _, p := range chosen {
				allSealed = append(allSealed, router.SealTraceBatches(p.ID, corpora[p.ID])...)
			}
			total := nPrograms * chunks * perChunk

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				acc, err := router.SubmitSealed(allSealed)
				if err != nil {
					b.Fatal(err)
				}
				for k, ok := range acc {
					if !ok {
						b.Fatalf("frame %d not accepted", k)
					}
				}
			}
			b.StopTimer()
			var ingested int64
			for _, bk := range backends {
				ingested += bk.ingested.Load()
			}
			if ingested != int64(b.N*total) {
				b.Fatalf("fleet ingested %d, want %d", ingested, b.N*total)
			}
			if elapsed := b.Elapsed(); elapsed > 0 {
				b.ReportMetric(float64(b.N*total)/elapsed.Seconds(), "traces/sec")
			}
		})
	}
}
