package softborg

// E18 — cold-standby recovery from the archive tier (PR 10): a durable
// sharded fleet tiers its snapshot chains and sealed WAL segments into one
// shared object store; one hive is killed AND its data directory deleted;
// a cold standby rebuilds the dead hive's programs from the archive alone
// and re-homes them onto the survivors. Required outcome: zero acked-trace
// loss, zero double-apply, and exactly-once preserved across a session
// population larger than the live dedup cache (>4096 sessions).

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/archive"
	"repro/internal/hive"
	"repro/internal/journal"
	"repro/internal/pod"
	"repro/internal/prog"
	"repro/internal/ring"
	"repro/internal/trace"
	"repro/internal/wire"
)

// archiveNode is one member of a durable fleet that tiers into a shared
// archive store.
type archiveNode struct {
	*clusterNode
	arc *archive.Archiver
}

// startArchiveNode boots a durable hive whose journal is tethered to the
// shared object store: the chain fetcher is armed before recovery (a boot
// against a pruned data dir rehydrates from the archive) and the archiver
// writes manifests under the node's own writer name.
func startArchiveNode(t *testing.T, dir string, corpus []*prog.Program, obj archive.ObjectStore) *archiveNode {
	t.Helper()
	h := hive.New("fleet")
	h.Logf = func(string, ...any) {}
	for _, p := range corpus {
		if err := h.RegisterProgram(p); err != nil {
			t.Fatal(err)
		}
	}
	store, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store.SetChainFetcher(archive.ChainFetcher(obj))
	if err := h.Recover(store); err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(h)
	srv.Logf = func(string, ...any) {}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	arc := archive.New(store, obj, archive.Options{Writer: addr})
	return &archiveNode{
		clusterNode: &clusterNode{h: h, store: store, srv: srv, addr: addr, dir: dir},
		arc:         arc,
	}
}

// TestE18ColdStandbyArchiveRecovery is experiment E18's correctness half.
// Unlike E16 (which recovers the victim from its surviving data dir), the
// victim's directory is DELETED after the kill — the archive store is the
// only copy — and recovery must be semantically identical: every acked
// frame dup-acks on the new owner, nothing double-applies, and the >4096
// distinct cold sessions ingested before the kill keep their exactly-once
// windows through materialize -> recover -> export -> import.
func TestE18ColdStandbyArchiveRecovery(t *testing.T) {
	corpus := clusterCorpus(t, 4)
	obj, err := archive.NewDirStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*archiveNode, 3)
	addrs := make([]string, 3)
	for i := range nodes {
		nodes[i] = startArchiveNode(t, t.TempDir(), corpus, obj)
		addrs[i] = nodes[i].addr
	}
	m1 := ring.New(addrs, ring.DefaultVNodes, 42)
	for _, nd := range nodes {
		nd.srv.SetPlacement(m1, nd.addr)
	}
	byAddr := func(addr string) *archiveNode {
		for _, nd := range nodes {
			if nd.addr == addr {
				return nd
			}
		}
		t.Fatalf("no node at %s", addr)
		return nil
	}

	router := wire.NewRouter(addrs...)
	defer router.Close()

	// Phase 1: seal 6 chunks of 8 traces per program; drain the first 3
	// fleet-wide, park the rest.
	const chunks, perChunk, drained = 6, 8, 3
	sealedBy := make(map[string][]pod.SealedBatch)
	for pi, p := range corpus {
		batches := make([][]*trace.Trace, chunks)
		for c := range batches {
			batch := make([]*trace.Trace, perChunk)
			for j := range batch {
				batch[j] = clusterTrace(t, p, pi*chunks*perChunk+c*perChunk+j)
			}
			batches[c] = batch
		}
		sealed := router.SealTraceBatches(p.ID, batches)
		acc, err := router.SubmitSealed(sealed[:drained])
		if err != nil {
			t.Fatalf("phase-1 drain for program %d: %v", pi, err)
		}
		for c, ok := range acc {
			if !ok {
				t.Fatalf("phase-1 chunk %d of program %d not acked", c, pi)
			}
		}
		sealedBy[p.ID] = sealed
	}

	// Phase 2: flood the victim-owned program with more distinct sessions
	// than the live dedup cache holds — the unbounded-dedup half of E18.
	// One shared trace; dedup is keyed by (session, seq), not content.
	victim := byAddr(m1.Owner(corpus[0].ID))
	coldProg := corpus[0]
	const coldSessions = 4096 + 32
	coldBatch := []*trace.Trace{clusterTrace(t, coldProg, 9000)}
	for i := 0; i < coldSessions; i++ {
		dup, err := victim.h.SubmitTracesSession(fmt.Sprintf("cold-%d", i), 1, coldProg.ID, coldBatch)
		if err != nil || dup {
			t.Fatalf("cold session %d: dup=%v err=%v", i, dup, err)
		}
	}

	// Every node tiers its chains into the shared store; after the sync the
	// archive alone covers everything acked so far.
	for _, nd := range nodes {
		if err := nd.arc.SyncAll(); err != nil {
			t.Fatalf("archive sync on %s: %v", nd.addr, err)
		}
	}
	if st := victim.arc.Stats(); st.SegmentsWritten == 0 || st.ManifestsWritten == 0 {
		t.Fatalf("victim archived nothing: %+v", st)
	}

	// Kill the victim and DELETE its data directory — the difference from
	// E16. The archive store is now the only copy of its programs.
	var victimOwned []*prog.Program
	for _, p := range corpus {
		if m1.Owner(p.ID) == victim.addr {
			victimOwned = append(victimOwned, p)
		}
	}
	if err := victim.srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := victim.store.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(victim.dir); err != nil {
		t.Fatal(err)
	}

	// Cold standby: rebuild purely from the archive and re-home onto the
	// shrunken ring.
	m2 := m1.Without(victim.addr)
	snaps, scratch, err := hive.ExportFromArchive(obj, t.TempDir(), corpus, "fleet")
	if err != nil {
		t.Fatalf("cold-standby recovery: %v", err)
	}
	rehomed := 0
	for _, p := range victimOwned {
		snap, ok := snaps[p.ID]
		if !ok {
			t.Fatalf("archive recovery lost program %s", p.ID)
		}
		if err := byAddr(m2.Owner(p.ID)).h.ImportProgram(snap); err != nil {
			t.Fatal(err)
		}
		rehomed++
	}
	if err := scratch.Close(); err != nil {
		t.Fatal(err)
	}
	if rehomed != len(victimOwned) || rehomed == 0 {
		t.Fatalf("re-homed %d of %d victim programs", rehomed, len(victimOwned))
	}
	for _, nd := range nodes {
		if nd != victim {
			nd.srv.SetPlacement(m2, nd.addr)
		}
	}

	// Zero loss, zero double-apply: drain the parked chunks plus a verbatim
	// resubmission of every acked chunk through the stale router.
	for pi, p := range corpus {
		acc, err := router.SubmitSealed(sealedBy[p.ID])
		if err != nil {
			t.Fatalf("post-kill drain for program %d: %v", pi, err)
		}
		for c, ok := range acc {
			if !ok {
				t.Fatalf("post-kill chunk %d of program %d not delivered", c, pi)
			}
		}
	}
	for _, p := range corpus {
		want := int64(chunks * perChunk)
		if p.ID == coldProg.ID {
			want += coldSessions
		}
		st, err := byAddr(m2.Owner(p.ID)).h.ProgramStats(p.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Ingested != want {
			t.Fatalf("program %s ingested %d, want %d (lost or double-applied traces)", p.ID, st.Ingested, want)
		}
	}

	// Exactly-once across >4096 sessions: every cold session's acked frame
	// dup-acks on the new owner, and the duplicates move nothing.
	newOwner := byAddr(m2.Owner(coldProg.ID))
	before, err := newOwner.h.ProgramStats(coldProg.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < coldSessions; i++ {
		dup, err := newOwner.h.SubmitTracesSession(fmt.Sprintf("cold-%d", i), 1, coldProg.ID, coldBatch)
		if err != nil {
			t.Fatalf("cold session %d resubmit: %v", i, err)
		}
		if !dup {
			t.Fatalf("cold session %d re-applied after archive recovery (exactly-once broken)", i)
		}
	}
	after, _ := newOwner.h.ProgramStats(coldProg.ID)
	if after.Ingested != before.Ingested {
		t.Fatalf("cold duplicates moved ingest: %d -> %d", before.Ingested, after.Ingested)
	}

	for _, nd := range nodes {
		if nd != victim {
			if err := nd.store.Close(); err != nil {
				t.Fatal(err)
			}
			_ = nd.srv.Close()
		}
	}
}
