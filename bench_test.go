package softborg

// One benchmark per experiment (E1–E11, see EXPERIMENTS.md): each runs the
// exact table-generating code from internal/experiments and reports the
// experiment's headline numbers as custom benchmark metrics, so
// `go test -bench=.` regenerates every figure/claim reproduction. The
// rendered tables themselves come from `go run ./cmd/softborg-bench`.
//
// The file also carries hot-path micro-benchmarks (VM interpretation, trace
// codec, tree merging, solving, wire round-trips) for -benchmem profiling.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exectree"
	"repro/internal/experiments"
	"repro/internal/fix"
	"repro/internal/guidance"
	"repro/internal/hive"
	"repro/internal/netshape"
	"repro/internal/population"
	"repro/internal/prog"
	"repro/internal/proggen"
	"repro/internal/sat"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wire"
)

// runExperiment executes one experiment table per iteration and reports its
// metrics.
func runExperiment(b *testing.B, run func() (*experiments.Table, error)) {
	b.Helper()
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl, err := run()
		if err != nil {
			b.Fatal(err)
		}
		last = tbl
	}
	for name, v := range last.Metrics {
		b.ReportMetric(v, name)
	}
}

func BenchmarkE1TreeMerge(b *testing.B)          { runExperiment(b, experiments.E1TreeMerge) }
func BenchmarkE2PopulationCoverage(b *testing.B) { runExperiment(b, experiments.E2PopulationCoverage) }
func BenchmarkE3SolverPortfolio(b *testing.B)    { runExperiment(b, experiments.E3SolverPortfolio) }
func BenchmarkE4GuidedCoverage(b *testing.B)     { runExperiment(b, experiments.E4GuidedCoverage) }
func BenchmarkE5DeadlockImmunity(b *testing.B)   { runExperiment(b, experiments.E5DeadlockImmunity) }
func BenchmarkE6BugDensity(b *testing.B)         { runExperiment(b, experiments.E6BugDensity) }
func BenchmarkE7CaptureOverhead(b *testing.B)    { runExperiment(b, experiments.E7CaptureOverhead) }
func BenchmarkE8DynamicPartitioning(b *testing.B) {
	runExperiment(b, experiments.E8DynamicPartitioning)
}
func BenchmarkE9CumulativeProofs(b *testing.B) { runExperiment(b, experiments.E9CumulativeProofs) }
func BenchmarkE10Privacy(b *testing.B)         { runExperiment(b, experiments.E10Privacy) }
func BenchmarkE11WireThroughput(b *testing.B)  { runExperiment(b, experiments.E11WireThroughput) }
func BenchmarkE12CrashRecovery(b *testing.B)   { runExperiment(b, experiments.E12CrashRecovery) }

// --- hot-path micro-benchmarks ---

func benchProgram(b *testing.B) *prog.Program {
	b.Helper()
	p, _, err := proggen.Generate(proggen.Spec{
		Seed: 77, Depth: 6, Loops: 2, Syscalls: 1, NumInputs: 2, DetBranches: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkVMExecution measures raw interpretation speed, uninstrumented.
func BenchmarkVMExecution(b *testing.B) {
	p := benchProgram(b)
	rng := stats.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		m, err := prog.NewMachine(p, prog.Config{Input: []int64{rng.Int63n(256), rng.Int63n(256)}})
		if err != nil {
			b.Fatal(err)
		}
		steps += m.Run().Steps
	}
	b.ReportMetric(float64(steps)/float64(b.N), "steps/run")
}

// BenchmarkVMExecutionInstrumented measures interpretation with full
// capture — the pod's steady-state cost.
func BenchmarkVMExecutionInstrumented(b *testing.B) {
	p := benchProgram(b)
	rng := stats.NewRNG(1)
	col := trace.NewCollector(p, trace.CaptureFull, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.Reset()
		input := []int64{rng.Int63n(256), rng.Int63n(256)}
		m, err := prog.NewMachine(p, prog.Config{Input: input, Observer: col})
		if err != nil {
			b.Fatal(err)
		}
		res := m.Run()
		col.Finish("pod", uint64(i), res, input, trace.PrivacyHashed, "s")
	}
}

// BenchmarkTraceEncodeDecode measures the telemetry codec round trip.
func BenchmarkTraceEncodeDecode(b *testing.B) {
	p := benchProgram(b)
	col := trace.NewCollector(p, trace.CaptureFull, 0, 1)
	m, err := prog.NewMachine(p, prog.Config{Input: []int64{42, 99}, Observer: col})
	if err != nil {
		b.Fatal(err)
	}
	res := m.Run()
	tr := col.Finish("pod", 0, res, []int64{42, 99}, trace.PrivacyHashed, "s")
	encoded := trace.Encode(tr)
	b.SetBytes(int64(len(encoded)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := trace.Encode(tr)
		if _, err := trace.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeMerge measures per-trace merge cost into a warm tree.
func BenchmarkTreeMerge(b *testing.B) {
	p := benchProgram(b)
	rng := stats.NewRNG(2)
	col := trace.NewCollector(p, trace.CaptureFull, 0, 1)
	paths := make([][]trace.BranchEvent, 256)
	outcomes := make([]prog.Outcome, 256)
	for i := range paths {
		col.Reset()
		input := []int64{rng.Int63n(256), rng.Int63n(256)}
		m, err := prog.NewMachine(p, prog.Config{Input: input, Observer: col})
		if err != nil {
			b.Fatal(err)
		}
		res := m.Run()
		tr := col.Finish("pod", uint64(i), res, input, trace.PrivacyHashed, "s")
		paths[i] = tr.Branches
		outcomes[i] = tr.Outcome
	}
	tree := exectree.New(p.ID)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Merge(paths[i%len(paths)], outcomes[i%len(paths)])
	}
}

// BenchmarkDPLLPhaseTransition measures one solver on a hard instance.
func BenchmarkDPLLPhaseTransition(b *testing.B) {
	rng := stats.NewRNG(3)
	f := sat.Random3SAT(rng, 60, 4.26)
	solver := sat.NewJW()
	b.ResetTimer()
	var ticks int64
	for i := 0; i < b.N; i++ {
		res := solver.Solve(f, 0, nil)
		ticks += res.Ticks
	}
	b.ReportMetric(float64(ticks)/float64(b.N), "ticks/solve")
}

// --- hive sharding and fleet parallelism benchmarks ---

// globalMutexClient reproduces the pre-sharding hive discipline: one
// process-wide mutex serializing every ingest, regardless of which program
// a batch describes. It is the measurable baseline BenchmarkHiveIngestParallel
// is compared against.
type globalMutexClient struct {
	mu sync.Mutex
	h  *hive.Hive
}

func (c *globalMutexClient) SubmitTraces(traces []*trace.Trace) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.h.SubmitTraces(traces)
}

// benchIngestSetup registers nProgs distinct programs and pre-captures a
// pool of full-capture traces per program, so the benchmark measures pure
// ingestion (grouping, bookkeeping, tree merging) with no VM time.
func benchIngestSetup(b *testing.B, nProgs int) (*hive.Hive, [][]*trace.Trace) {
	b.Helper()
	h := hive.New("fleet")
	pool := make([][]*trace.Trace, nProgs)
	rng := stats.NewRNG(11)
	for pi := 0; pi < nProgs; pi++ {
		p, _, err := proggen.Generate(proggen.Spec{
			Seed: uint64(900 + pi), Depth: 6, Loops: 1, NumInputs: 2, DetBranches: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := h.RegisterProgram(p); err != nil {
			b.Fatal(err)
		}
		traces := make([]*trace.Trace, 64)
		for i := range traces {
			col := trace.NewCollector(p, trace.CaptureFull, 0, 1)
			input := []int64{rng.Int63n(256), rng.Int63n(256)}
			m, err := prog.NewMachine(p, prog.Config{Input: input, Observer: col})
			if err != nil {
				b.Fatal(err)
			}
			res := m.Run()
			traces[i] = col.Finish(fmt.Sprintf("bench-pod-%d", pi), uint64(i), res, input, trace.PrivacyHashed, "fleet")
		}
		pool[pi] = traces
	}
	return h, pool
}

// submitTraces is the per-op client call both ingest benchmarks share.
type submitter interface {
	SubmitTraces([]*trace.Trace) error
}

// benchIngest drives b.N batch submissions (8 traces each) from 8
// goroutines round-robining across the program pool — the ISSUE's
// 8-goroutine / ≥4-program ingestion workload. traces/op is constant, so
// ns/op directly compares the two locking disciplines.
func benchIngest(b *testing.B, client submitter, pool [][]*trace.Trace) {
	b.Helper()
	const goroutines = 8
	const batchSize = 8
	b.ReportAllocs()
	b.ResetTimer()
	var (
		wg   sync.WaitGroup
		next int64
		fail atomic.Value
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= b.N {
					return
				}
				traces := pool[i%len(pool)]
				off := (i * batchSize) % len(traces)
				batch := make([]*trace.Trace, 0, batchSize)
				for k := 0; k < batchSize; k++ {
					batch = append(batch, traces[(off+k)%len(traces)])
				}
				if err := client.SubmitTraces(batch); err != nil {
					fail.Store(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	if err := fail.Load(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(batchSize, "traces/op")
}

// BenchmarkHiveIngestSerialBaseline measures fleet ingestion with the
// pre-sharding single-global-mutex discipline.
func BenchmarkHiveIngestSerialBaseline(b *testing.B) {
	h, pool := benchIngestSetup(b, 4)
	benchIngest(b, &globalMutexClient{h: h}, pool)
}

// v2DecodeClient reproduces the PR-4 wire-worker ingest discipline for
// pre-encoded batches: every trace is decoded into a fresh trace.Trace (6+
// slice allocations each) before the per-program submit. It is the
// measurable baseline the columnar view path is compared against.
type v2DecodeClient struct{ h *hive.Hive }

func (c *v2DecodeClient) submitEncoded(programID string, raws [][]byte) error {
	traces := make([]*trace.Trace, len(raws))
	for i, raw := range raws {
		tr, err := trace.Decode(raw)
		if err != nil {
			return err
		}
		traces[i] = tr
	}
	return c.h.SubmitTracesFor(programID, traces)
}

// columnarViewClient is the zero-copy ingest path: one validated view over
// the batch bytes, consumed in place.
type columnarViewClient struct{ h *hive.Hive }

func (c *columnarViewClient) submitEncoded(programID string, batch []byte) error {
	view, err := trace.DecodeBatch(batch)
	if err != nil {
		return err
	}
	_, err = c.h.SubmitColumnarSession("", 0, view)
	view.Release()
	return err
}

// benchIngestEncodedSetup pre-encodes each program's trace pool both ways:
// per-trace v2 payloads (batched 8 at a time, the PR-4 wire shape) and the
// equivalent columnar batch payloads.
func benchIngestEncodedSetup(b *testing.B, nProgs int) (*hive.Hive, []string, [][][][]byte, [][][]byte) {
	b.Helper()
	h, pool := benchIngestSetup(b, nProgs)
	ids := make([]string, nProgs)
	v2 := make([][][][]byte, nProgs)     // program -> batch -> trace -> bytes
	columnar := make([][][]byte, nProgs) // program -> batch -> bytes
	const batchSize = 8
	for pi, traces := range pool {
		ids[pi] = traces[0].ProgramID
		for off := 0; off+batchSize <= len(traces); off += batchSize {
			batch := traces[off : off+batchSize]
			raws := make([][]byte, batchSize)
			for i, tr := range batch {
				raws[i] = trace.Encode(tr)
			}
			enc, err := trace.EncodeBatch(ids[pi], batch)
			if err != nil {
				b.Fatal(err)
			}
			v2[pi] = append(v2[pi], raws)
			columnar[pi] = append(columnar[pi], enc)
		}
	}
	return h, ids, v2, columnar
}

// BenchmarkHiveIngestParallel measures the fleet ingest path — pre-encoded
// batches (what the wire delivers), 8 goroutines round-robining across 4
// program shards — under the two codec disciplines. The v2 sub-benchmark
// is the PR-4 pipeline: per-trace decode into heap Trace structs, then
// per-program submission. The columnar sub-benchmark is this PR's
// tentpole: one zero-copy view per batch, merged straight from the frame
// bytes. traces/op is constant, so ns/op and allocs/op compare directly.
// The materialized sub-benchmark keeps the PR-1 in-process workload (no
// codec at all) for continuity with BenchmarkHiveIngestSerialBaseline.
func BenchmarkHiveIngestParallel(b *testing.B) {
	const goroutines = 8
	const batchSize = 8
	run := func(b *testing.B, submit func(pi, batch int) error, batches int) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		var (
			wg   sync.WaitGroup
			next int64
			fail atomic.Value
		)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= b.N {
						return
					}
					if err := submit(i%4, (i/4)%batches); err != nil {
						fail.Store(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		b.StopTimer()
		if err := fail.Load(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(batchSize, "traces/op")
	}
	b.Run("v2-decode", func(b *testing.B) {
		h, ids, v2, _ := benchIngestEncodedSetup(b, 4)
		c := &v2DecodeClient{h: h}
		run(b, func(pi, batch int) error { return c.submitEncoded(ids[pi], v2[pi][batch]) }, len(v2[0]))
	})
	b.Run("columnar-view", func(b *testing.B) {
		h, ids, _, columnar := benchIngestEncodedSetup(b, 4)
		c := &columnarViewClient{h: h}
		_ = ids
		run(b, func(pi, batch int) error { return c.submitEncoded(ids[pi], columnar[pi][batch]) }, len(columnar[0]))
	})
	b.Run("materialized", func(b *testing.B) {
		h, pool := benchIngestSetup(b, 4)
		benchIngest(b, h, pool)
	})
}

// benchSimulation runs one whole-fleet SoftBorg day-loop per iteration.
func benchSimulation(b *testing.B, workers int) {
	b.Helper()
	corpus := make([]core.ProgramUnderTest, 3)
	for i := range corpus {
		p, bugs, err := proggen.Generate(proggen.Spec{
			Seed: uint64(700 + i), Depth: 4,
			Bugs:         []proggen.BugKind{proggen.BugCrash},
			TriggerWidth: 16,
		})
		if err != nil {
			b.Fatal(err)
		}
		corpus[i] = core.ProgramUnderTest{Prog: p, Bugs: bugs}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := core.NewSimulation(core.Config{
			Seed:       9,
			Programs:   corpus,
			Population: population.Config{Users: 32, MeanRunsPerDay: 8},
			Days:       2,
			Mode:       core.ModeSoftBorg,
			Workers:    workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulationSequential is the one-worker fleet loop baseline.
func BenchmarkSimulationSequential(b *testing.B) { benchSimulation(b, 1) }

// BenchmarkSimulationParallel runs the same fleet across GOMAXPROCS
// workers; results are bit-for-bit identical to the sequential run (see
// core.TestParallelRunMatchesSequential), only the wall clock changes.
func BenchmarkSimulationParallel(b *testing.B) { benchSimulation(b, 0) }

// --- guidance read-path and wire pipelining benchmarks ---

// buildGuidanceTree merges n real executions of p (random inputs) into a
// fresh tree — the realistic tree shape the hive's guidance path reads.
func buildGuidanceTree(b *testing.B, p *prog.Program, merges int) *exectree.Tree {
	b.Helper()
	rng := stats.NewRNG(5)
	tree := exectree.New(p.ID)
	col := trace.NewCollector(p, trace.CaptureFull, 0, 1)
	for i := 0; i < merges; i++ {
		col.Reset()
		input := make([]int64, p.NumInputs)
		for j := range input {
			input[j] = rng.Int63n(256)
		}
		m, err := prog.NewMachine(p, prog.Config{Input: input, Observer: col})
		if err != nil {
			b.Fatal(err)
		}
		res := m.Run()
		tr := col.Finish("bench-pod", uint64(i), res, input, trace.PrivacyHashed, "s")
		tree.Merge(tr.Branches, tr.Outcome)
	}
	return tree
}

// BenchmarkGuidanceLargeTree measures the guidance read path as the tree
// grows: the full-walk baseline (what Guidance used to do under the tree
// read-lock on every request) against the incremental frontier index —
// frontier snapshot and end-to-end test-case generation. The indexed cost
// tracks the open-frontier count, not the tree size.
func BenchmarkGuidanceLargeTree(b *testing.B) {
	p, _, err := proggen.Generate(proggen.Spec{
		Seed: 505, Depth: 8, Loops: 2, Syscalls: 1, NumInputs: 4, DetBranches: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := guidance.NewGenerator(p, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, merges := range []int{256, 2048, 16384} {
		tree := buildGuidanceTree(b, p, merges)
		nodes := tree.Stats().Nodes
		b.Run(fmt.Sprintf("fullwalk-baseline/nodes=%d", nodes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tree.FrontiersByWalk(32)
			}
		})
		b.Run(fmt.Sprintf("indexed-snapshot/nodes=%d", nodes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tree.Frontiers(32)
			}
		})
		b.Run(fmt.Sprintf("generate/nodes=%d", nodes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gen.Generate(tree, 8)
			}
		})
	}
}

// nullHive is a no-op backend isolating wire-transport cost. It accepts
// the columnar path too (consuming the view's branch columns, as a real
// backend would) so the codec disciplines compare on equal footing.
type nullHive struct {
	ingested atomic.Int64
	scratch  []trace.BranchEvent // single-conn benchmarks: no concurrent use
}

func (n *nullHive) SubmitTraces(traces []*trace.Trace) error {
	n.ingested.Add(int64(len(traces)))
	return nil
}
func (n *nullHive) SubmitColumnarSession(_ string, _ uint64, batch *trace.BatchView) (bool, error) {
	for i := 0; i < batch.Len(); i++ {
		n.scratch = batch.AppendBranches(n.scratch[:0], i)
	}
	n.ingested.Add(int64(batch.Len()))
	return false, nil
}
func (n *nullHive) FixesSince(string, int) ([]fix.Fix, int, error) { return nil, 0, nil }
func (n *nullHive) Guidance(string, int) ([]guidance.TestCase, error) {
	return nil, nil
}

// benchWireSubmit submits the same 32 batches × 8 traces per op, either one
// frame per round trip (the pre-pipelining discipline) or streamed through
// the pipelined per-program path; columnar selects the batch encoding the
// client negotiates (false pins the per-trace v2 codec, the PR-4
// discipline).
func benchWireSubmit(b *testing.B, pipelined, columnar bool) {
	b.Helper()
	p := benchProgram(b)
	backend := &nullHive{}
	srv := wire.NewServer(backend)
	srv.Logf = func(string, ...any) {}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client := wire.Dial(addr)
	client.DisableColumnar = !columnar
	defer client.Close()

	col := trace.NewCollector(p, trace.CaptureFull, 0, 1)
	m, err := prog.NewMachine(p, prog.Config{Input: []int64{42, 99}, Observer: col})
	if err != nil {
		b.Fatal(err)
	}
	res := m.Run()
	tmpl := col.Finish("bench-pod", 0, res, []int64{42, 99}, trace.PrivacyHashed, "s")
	const batches = 32
	const perBatch = 8
	all := make([][]*trace.Trace, batches)
	for i := range all {
		all[i] = make([]*trace.Trace, perBatch)
		for j := range all[i] {
			tr := tmpl.Clone()
			tr.Seq = uint64(i*perBatch + j)
			all[i][j] = tr
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pipelined {
			if _, err := client.SubmitTraceBatches(p.ID, all); err != nil {
				b.Fatal(err)
			}
		} else {
			for _, batch := range all {
				if err := client.SubmitTracesFor(p.ID, batch); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.StopTimer()
	if got := backend.ingested.Load(); got != int64(b.N*batches*perBatch) {
		b.Fatalf("backend ingested %d, want %d", got, b.N*batches*perBatch)
	}
	b.ReportMetric(batches*perBatch, "traces/op")
}

// BenchmarkWireSubmitSerial is the one-frame-per-roundtrip baseline the
// pre-PR-2 server forced.
func BenchmarkWireSubmitSerial(b *testing.B) { benchWireSubmit(b, false, false) }

// BenchmarkWireSubmitPipelined streams the same work through the pipelined
// per-program submission path under both codecs: the v2 sub-benchmark pins
// the per-trace encoding (the PR-4 discipline), columnar negotiates the
// batch codec — same traces/op, so ns/op and allocs/op compare directly.
func BenchmarkWireSubmitPipelined(b *testing.B) {
	b.Run("v2", func(b *testing.B) { benchWireSubmit(b, true, false) })
	b.Run("columnar", func(b *testing.B) { benchWireSubmit(b, true, true) })
}

// shapedCorpus captures varied real traces (distinct inputs, real branch
// histories) in streamChunk-sized batches: compression ratios on this corpus
// are production-shaped — hot paths repeat, inputs differ — instead of the
// degenerate ratio identical cloned traces would give.
func shapedCorpus(b *testing.B, p *prog.Program, chunks, perChunk int) [][]*trace.Trace {
	b.Helper()
	out := make([][]*trace.Trace, chunks)
	for i := range out {
		out[i] = make([]*trace.Trace, perChunk)
		for j := range out[i] {
			n := i*perChunk + j
			input := []int64{int64(n * 13 % 160), int64(n * 7 % 90)}
			col := trace.NewCollector(p, trace.CaptureFull, 0, uint64(n+1))
			m, err := prog.NewMachine(p, prog.Config{Input: input, Observer: col})
			if err != nil {
				b.Fatal(err)
			}
			res := m.Run()
			out[i][j] = col.Finish(fmt.Sprintf("pod-%d", n%8), uint64(n), res, input, trace.PrivacyHashed, "s")
		}
	}
	return out
}

// BenchmarkShapedSubmit is the WAN experiment (E15): the same 128-chunk
// drain submitted through a netshape proxy at three RTT/loss points, once
// with the PR-5 transport discipline (columnar frames, no coalescing, no
// compression) and once with the WAN transport (coalesced mega-frames +
// negotiated compression). Both run the identical pipelining window, so the
// ratio isolates what framing and bytes-on-the-wire are worth once a real
// network sits between pod and hive.
func BenchmarkShapedSubmit(b *testing.B) {
	p := benchProgram(b)
	const chunks = 128
	const perChunk = 256
	all := shapedCorpus(b, p, chunks, perChunk)
	shapes := []struct {
		name string
		rtt  time.Duration
		loss float64
	}{
		{"rtt=50ms,loss=0.1%", 50 * time.Millisecond, 0.001},
		{"rtt=100ms,loss=0.5%", 100 * time.Millisecond, 0.005},
		{"rtt=200ms,loss=1.0%", 200 * time.Millisecond, 0.01},
	}
	for _, shape := range shapes {
		b.Run(shape.name, func(b *testing.B) {
			for _, mode := range []string{"pr5", "wan"} {
				b.Run(mode, func(b *testing.B) {
					backend := &nullHive{}
					srv := wire.NewServer(backend)
					srv.Logf = func(string, ...any) {}
					addr, err := srv.Listen("127.0.0.1:0")
					if err != nil {
						b.Fatal(err)
					}
					defer srv.Close()
					proxy, err := netshape.New(addr, netshape.Config{
						RTT:       shape.rtt,
						Loss:      shape.loss,
						Bandwidth: 16 << 20, // a fleet's uplink share, not loopback
						Seed:      42,
					})
					if err != nil {
						b.Fatal(err)
					}
					defer proxy.Close()
					client := wire.Dial(proxy.Addr())
					defer client.Close()
					if mode == "pr5" {
						client.DisableCoalesce = true
						client.DisableCompression = true
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						accepted, err := client.SubmitTraceBatches(p.ID, all)
						if err != nil {
							b.Fatal(err)
						}
						for k, ok := range accepted {
							if !ok {
								b.Fatalf("chunk %d not accepted", k)
							}
						}
					}
					b.StopTimer()
					if got := backend.ingested.Load(); got != int64(b.N*chunks*perChunk) {
						b.Fatalf("backend ingested %d, want %d", got, b.N*chunks*perChunk)
					}
					elapsed := b.Elapsed()
					if elapsed > 0 {
						b.ReportMetric(float64(b.N*chunks*perChunk)/elapsed.Seconds(), "traces/sec")
					}
				})
			}
		})
	}
}
