// Hive-guided execution steering (paper §3.3).
//
// A generated program hides a crash behind a 2-in-256 input window. A
// Zipf-biased user population takes hundreds of natural runs to stumble
// into it; the hive, analyzing the collective execution tree's frontiers
// symbolically, issues test cases that drive a pod straight into the gap.
//
//	go run ./examples/guidedcoverage
package main

import (
	"fmt"
	"log"

	softborg "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p, bugs, err := softborg.GenerateProgram(softborg.GenSpec{
		Seed: 1004, Depth: 5, NumInputs: 1, TriggerWidth: 2,
		Bugs: []softborg.BugKind{softborg.BugCrash},
	})
	if err != nil {
		return err
	}
	bug := bugs[0]
	fmt.Printf("generated %q: crash hides at inputs [%d,%d] of 0..255\n",
		p.Name, bug.TriggerLo, bug.TriggerHi)

	hive := softborg.NewHive("fleet")
	if err := hive.RegisterProgram(p); err != nil {
		return err
	}
	// The pod uploads through a program-bound buffer: drains skip the
	// hive's group-by via the per-program submission path.
	buffer := softborg.NewTraceBufferFor(hive, p.ID)
	pod, err := softborg.NewPod(softborg.PodConfig{
		Program: p, ID: "steered-pod", Hive: buffer, Salt: "fleet", BatchSize: 1,
	})
	if err != nil {
		return err
	}

	// A few natural runs seed the tree (none hits the bug).
	for v := int64(0); v < 12; v++ {
		if _, err := pod.RunOnce([]int64{v * 20 % 97}); err != nil {
			return err
		}
	}
	if err := buffer.Drain(); err != nil {
		return err
	}
	tree, err := hive.Tree(p.ID)
	if err != nil {
		return err
	}
	cov, total := tree.EdgeCoverage(p)
	// FrontierCount reads the tree's incrementally maintained frontier
	// index — O(1), no tree walk.
	fmt.Printf("after 12 natural runs: %d/%d branch directions covered, %d open frontiers\n",
		cov, total, tree.FrontierCount())

	// The hive now steers: each round it solves frontiers into concrete
	// inputs and the pod executes them.
	round := 0
	for {
		round++
		n, err := pod.PullGuidance(8)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		if err := pod.Flush(); err != nil {
			return err
		}
		if err := buffer.Drain(); err != nil {
			return err
		}
		st, err := hive.ProgramStats(p.ID)
		if err != nil {
			return err
		}
		cov, _ = tree.EdgeCoverage(p)
		fmt.Printf("guidance round %d: %d steered runs, coverage %d/%d, %d open frontiers, failures seen %d\n",
			round, n, cov, total, tree.FrontierCount(), len(st.Failures))
		if len(st.Failures) > 0 {
			break
		}
		if round > 20 {
			break
		}
	}

	st, err := hive.ProgramStats(p.ID)
	if err != nil {
		return err
	}
	if len(st.Failures) > 0 {
		rec := st.Failures[0]
		fmt.Printf("\nsteering found the planted bug: %s (seen %d time(s)); fix synthesized: %v\n",
			rec.Signature, rec.Count, rec.Fixed)
		fmt.Printf("pod executed %d guided runs total — compare with the ~hundreds of natural\n",
			pod.Stats().GuidedRuns)
		fmt.Println("runs E4 measures for the same discovery without steering.")
	} else {
		fmt.Println("bug not found within the round budget")
	}
	return nil
}
