// Parallel fleet: the same whole-platform simulation run sequentially and
// across a worker pool, proving the determinism contract along the way.
//
// The simulation engine owns each pod (and its user's input streams) by
// exactly one worker per day and buffers trace uploads until the day
// barrier, then ingests them in pod order — so a fleet simulated by eight
// workers produces bit-for-bit the same day-by-day metrics as one worker,
// only faster on multi-core hardware.
//
//	go run ./examples/parallelfleet
package main

import (
	"fmt"
	"log"
	"time"

	softborg "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func corpus() ([]softborg.ProgramUnderTest, error) {
	out := make([]softborg.ProgramUnderTest, 3)
	for i := range out {
		p, bugs, err := softborg.GenerateProgram(softborg.GenSpec{
			Seed: uint64(100 + i), Depth: 4,
			Bugs:         []softborg.BugKind{softborg.BugCrash},
			TriggerWidth: 16,
		})
		if err != nil {
			return nil, err
		}
		out[i] = softborg.ProgramUnderTest{Prog: p, Bugs: bugs}
	}
	return out, nil
}

func simulate(programs []softborg.ProgramUnderTest, workers int) ([]softborg.DayMetrics, time.Duration, error) {
	sim, err := softborg.NewSimulation(softborg.SimulationConfig{
		Seed:       42,
		Programs:   programs,
		Population: softborg.PopulationConfig{Users: 48, MeanRunsPerDay: 10},
		Days:       4,
		Mode:       softborg.ModeSoftBorg,
		Workers:    workers,
	})
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	rows, err := sim.Run()
	return rows, time.Since(start), err
}

func run() error {
	programs, err := corpus()
	if err != nil {
		return err
	}

	seq, seqDur, err := simulate(programs, 1)
	if err != nil {
		return err
	}
	par, parDur, err := simulate(programs, 0) // 0 = GOMAXPROCS workers
	if err != nil {
		return err
	}

	fmt.Println("day  runs  failures  fixes  averted   (sequential == parallel?)")
	identical := true
	for i := range seq {
		same := seq[i] == par[i]
		identical = identical && same
		fmt.Printf("%3d  %4d  %8d  %5d  %7d   %v\n",
			seq[i].Day, seq[i].Runs, seq[i].Failures, seq[i].FixesCumulative, seq[i].Averted, same)
	}
	if !identical {
		return fmt.Errorf("parallel fleet diverged from sequential baseline")
	}
	fmt.Printf("\nsequential: %v  parallel: %v  — identical metrics, deterministic by construction\n",
		seqDur.Round(time.Millisecond), parDur.Round(time.Millisecond))
	return nil
}
