// Cumulative proofs (paper §3.3): tests and proofs on one spectrum.
//
// A clean program accumulates evidence from everyday use; each proof
// attempt gets cheaper as the fleet covers more of the tree, until the
// remaining gaps are discharged symbolically (inputs or infeasibility
// certificates) and the accumulated "test suite" becomes a PROVEN verdict.
// A multi-threaded sibling is then proven deadlock-free by exhaustive
// bounded-schedule enumeration — including *under its immunity fix* after a
// deadlock is found and fixed.
//
//	go run ./examples/cumulativeproof
package main

import (
	"fmt"
	"log"

	softborg "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := inputSpaceProof(); err != nil {
		return err
	}
	return scheduleSpaceProof()
}

// inputSpaceProof: the single-threaded spectrum.
func inputSpaceProof() error {
	p, _, err := softborg.GenerateProgram(softborg.GenSpec{Seed: 4001, Depth: 5, NumInputs: 1})
	if err != nil {
		return err
	}
	fmt.Printf("=== input-space proof for %q ===\n", p.Name)

	for _, runs := range []int{1, 30, 200} {
		hive := softborg.NewHive("fleet")
		if err := hive.RegisterProgram(p); err != nil {
			return err
		}
		pod, err := softborg.NewPod(softborg.PodConfig{
			Program: p, ID: "prover-pod", Hive: hive, Salt: "fleet", BatchSize: 16,
		})
		if err != nil {
			return err
		}
		for i := 0; i < runs; i++ {
			if _, err := pod.RunOnce([]int64{int64(i*37+11) % 256}); err != nil {
				return err
			}
		}
		if err := pod.Flush(); err != nil {
			return err
		}
		pr, err := hive.Prove(p.ID, softborg.PropNoCrash)
		if err != nil {
			return err
		}
		fmt.Printf("%4d natural runs -> %s\n", runs, pr.Statement())
		fmt.Printf("      prover had to synthesize %d execution(s) and %d certificate(s)\n",
			pr.NewEvidence, pr.Certificates)
	}
	return nil
}

// scheduleSpaceProof: the multi-threaded spectrum, with fix verification.
func scheduleSpaceProof() error {
	b := softborg.BuildProgram("dining-pair", 0).SetLocks(2)
	b.Thread()
	b.Lock(0).Yield().Lock(1).Unlock(1).Unlock(0).Halt()
	b.Thread()
	b.Lock(1).Yield().Lock(0).Unlock(0).Unlock(1).Halt()
	p, err := b.Build()
	if err != nil {
		return err
	}
	fmt.Printf("\n=== schedule-space proof for %q ===\n", p.Name)

	hive := softborg.NewHive("fleet")
	if err := hive.RegisterProgram(p); err != nil {
		return err
	}

	pr, err := hive.ProveNoDeadlock(p.ID, nil, 6)
	if err != nil {
		return err
	}
	fmt.Println("raw program:      ", pr.Statement())

	// A pod fleet hits the deadlock; the hive mints the immunity fix.
	pod, err := softborg.NewPod(softborg.PodConfig{
		Program: p, ID: "mt-pod", Hive: hive, Seed: 3, Preempt: 0.9, BatchSize: 1, Salt: "fleet",
	})
	if err != nil {
		return err
	}
	for r := 0; r < 50; r++ {
		if _, err := pod.RunOnce(nil); err != nil {
			return err
		}
	}
	st, err := hive.ProgramStats(p.ID)
	if err != nil {
		return err
	}
	fmt.Printf("fleet reported %d failure signature(s); %d fix(es) minted\n",
		len(st.Failures), st.FixCount)

	pr2, err := hive.ProveNoDeadlock(p.ID, nil, 6)
	if err != nil {
		return err
	}
	fmt.Println("with immunity fix:", pr2.Statement())
	fmt.Printf("(%d schedules enumerated, outcomes: %v)\n", pr2.Schedules, pr2.Outcomes)
	return nil
}
