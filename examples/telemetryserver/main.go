// The Figure-1 loop over real sockets.
//
// A hive server listens on localhost TCP; a fleet of pods (each on its own
// goroutine with its own connection) buffers binary-encoded traces and
// drains them through the pipelined per-program submission path — batches
// stream back-to-back with acks read afterwards, instead of one upload per
// round trip. Fixes and guidance flow back over the same wire protocol
// cmd/hive and cmd/pod speak across processes.
//
//	go run ./examples/telemetryserver
package main

import (
	"fmt"
	"log"
	"sync"

	softborg "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p, bugs, err := softborg.GenerateProgram(softborg.GenSpec{
		Seed: 4011, Depth: 4, NumInputs: 1, TriggerWidth: 20,
		Bugs: []softborg.BugKind{softborg.BugCrash},
	})
	if err != nil {
		return err
	}
	hive := softborg.NewHive("fleet")
	if err := hive.RegisterProgram(p); err != nil {
		return err
	}

	srv, addr, err := softborg.ServeHive(hive, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("hive serving on %s; program %q has a crash at inputs [%d,%d]\n",
		addr, p.Name, bugs[0].TriggerLo, bugs[0].TriggerHi)

	const fleet = 6
	const runs = 120
	var wg sync.WaitGroup
	errs := make(chan error, fleet)
	for i := 0; i < fleet; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := softborg.DialHive(addr)
			defer client.Close()
			// The buffer is bound to the program, so its drain streams
			// pipelined per-program frames over the TCP client.
			buffer := softborg.NewTraceBufferFor(client, p.ID)
			pd, err := softborg.NewPod(softborg.PodConfig{
				Program: p,
				ID:      fmt.Sprintf("tcp-pod-%d", i),
				Hive:    buffer,
				Salt:    "fleet",
				Seed:    uint64(i*31 + 7),
			})
			if err != nil {
				errs <- err
				return
			}
			for r := int64(0); r < runs; r++ {
				if _, err := pd.RunOnce([]int64{(r*13 + int64(i)*41) % 256}); err != nil {
					errs <- err
					return
				}
			}
			if err := pd.Flush(); err != nil {
				errs <- err
				return
			}
			if err := buffer.Drain(); err != nil {
				errs <- err
				return
			}
			if err := pd.SyncFixes(); err != nil {
				errs <- err
				return
			}
			st := pd.Stats()
			fmt.Printf("pod %d: %d runs, %d failures, fix version %d\n",
				i, st.Runs, st.Failures, st.FixVersion)
			errs <- nil
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}

	st, err := hive.ProgramStats(p.ID)
	if err != nil {
		return err
	}
	fmt.Printf("\nhive ingested %d traces over TCP via pipelined per-program drains (%d reconstructed from external-only capture)\n",
		st.Ingested, st.Reconstructed)
	fmt.Printf("execution tree: %d nodes, %d distinct paths\n", st.Tree.Nodes, st.Tree.Paths)
	for _, rec := range st.Failures {
		fmt.Printf("failure %s: %d report(s) from %d pod(s), fixed=%v\n",
			rec.Signature, rec.Count, rec.Pods, rec.Fixed)
	}
	return nil
}
