// The Figure-1 loop over real sockets — with a crash in the middle.
//
// A durable hive server listens on localhost TCP; a fleet of pods (each on
// its own goroutine with its own connection) buffers binary-encoded traces
// and drains them through the pipelined sequenced submission path — batches
// stream back-to-back with acks read afterwards, tagged with session IDs
// and sequence numbers for exactly-once resubmission. Fixes and guidance
// flow back over the same wire protocol cmd/hive and cmd/pod speak across
// processes. Midway, the hive "crashes" (dropped without any shutdown) and
// a fresh one recovers the collective knowledge from its journal.
//
//	go run ./examples/telemetryserver
package main

import (
	"fmt"
	"log"
	"os"
	"sync"

	softborg "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p, bugs, err := softborg.GenerateProgram(softborg.GenSpec{
		Seed: 4011, Depth: 4, NumInputs: 1, TriggerWidth: 20,
		Bugs: []softborg.BugKind{softborg.BugCrash},
	})
	if err != nil {
		return err
	}
	dataDir, err := os.MkdirTemp("", "softborg-hive-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	hive := softborg.NewHive("fleet")
	if err := hive.RegisterProgram(p); err != nil {
		return err
	}
	store, err := softborg.OpenJournal(dataDir, softborg.JournalOptions{})
	if err != nil {
		return err
	}
	if err := hive.Recover(store); err != nil {
		return err
	}

	srv, addr, err := softborg.ServeHive(hive, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("hive serving on %s; program %q has a crash at inputs [%d,%d]\n",
		addr, p.Name, bugs[0].TriggerLo, bugs[0].TriggerHi)

	const fleet = 6
	const runs = 120
	var wg sync.WaitGroup
	errs := make(chan error, fleet)
	for i := 0; i < fleet; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := softborg.DialHive(addr)
			defer client.Close()
			// The buffer is bound to the program, so its drain streams
			// pipelined per-program frames over the TCP client.
			buffer := softborg.NewTraceBufferFor(client, p.ID)
			pd, err := softborg.NewPod(softborg.PodConfig{
				Program: p,
				ID:      fmt.Sprintf("tcp-pod-%d", i),
				Hive:    buffer,
				Salt:    "fleet",
				Seed:    uint64(i*31 + 7),
			})
			if err != nil {
				errs <- err
				return
			}
			for r := int64(0); r < runs; r++ {
				if _, err := pd.RunOnce([]int64{(r*13 + int64(i)*41) % 256}); err != nil {
					errs <- err
					return
				}
			}
			if err := pd.Flush(); err != nil {
				errs <- err
				return
			}
			if err := buffer.Drain(); err != nil {
				errs <- err
				return
			}
			if err := pd.SyncFixes(); err != nil {
				errs <- err
				return
			}
			st := pd.Stats()
			fmt.Printf("pod %d: %d runs, %d failures, fix version %d\n",
				i, st.Runs, st.Failures, st.FixVersion)
			errs <- nil
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}

	st, err := hive.ProgramStats(p.ID)
	if err != nil {
		return err
	}
	fmt.Printf("\nhive ingested %d traces over TCP via pipelined sequenced drains (%d reconstructed from external-only capture)\n",
		st.Ingested, st.Reconstructed)
	fmt.Printf("execution tree: %d nodes, %d distinct paths\n", st.Tree.Nodes, st.Tree.Paths)
	for _, rec := range st.Failures {
		fmt.Printf("failure %s: %d report(s) from %d pod(s), fixed=%v\n",
			rec.Signature, rec.Count, rec.Pods, rec.Fixed)
	}

	// Crash the hive: close the server and drop the hive object with no
	// checkpoint, no graceful shutdown — everything in memory is gone.
	_ = srv.Close()
	if err := store.Close(); err != nil {
		return err
	}
	fmt.Println("\n-- hive crashed (no shutdown, no checkpoint) --")

	// A fresh process recovers the collective knowledge from the journal.
	revived := softborg.NewHive("fleet")
	if err := revived.RegisterProgram(p); err != nil {
		return err
	}
	store2, err := softborg.OpenJournal(dataDir, softborg.JournalOptions{})
	if err != nil {
		return err
	}
	defer store2.Close()
	if err := revived.Recover(store2); err != nil {
		return err
	}
	rst, err := revived.ProgramStats(p.ID)
	if err != nil {
		return err
	}
	fmt.Printf("recovered hive: %d traces, %d tree nodes, %d fix(es) — nothing lost\n",
		rst.Ingested, rst.Tree.Nodes, rst.FixCount)
	if rst.Ingested != st.Ingested || rst.Tree.Nodes != st.Tree.Nodes || rst.FixCount != st.FixCount {
		return fmt.Errorf("recovery mismatch: %+v vs %+v", rst, st)
	}
	return nil
}
