// Portfolio constraint solving (paper §4).
//
// SoftBorg's hive faces a stream of heterogeneous satisfiability queries.
// No single solver dominates: each decision heuristic is fast on some
// instances and pathological on others. Racing a portfolio of three and
// taking the first answer buys large wall-clock speedups for a fixed 3x
// hardware cost — the paper reports 10x for 3x. This example races real
// goroutines with cancellation on a mixed batch and prints who won what.
//
//	go run ./examples/portfoliosolver
package main

import (
	"fmt"
	"log"

	softborg "repro"
	"repro/internal/sat"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	solvers := softborg.NewSATPortfolio()
	batch := sat.NewMixedBatch(7, 15)

	fmt.Printf("%-16s %-8s %-10s %12s %14s\n", "instance", "verdict", "winner", "winner-ticks", "total-ticks")
	wins := map[string]int{}
	var winnerTicks, soloEstimate int64
	for _, inst := range batch {
		res := softborg.RaceSolvers(inst.Formula, solvers, 3_000_000)
		fmt.Printf("%-16s %-8s %-10s %12d %14d\n",
			inst.Name, res.Verdict, res.Winner, res.WinnerTicks, res.TotalTicks)
		wins[res.Winner]++
		winnerTicks += res.WinnerTicks
		// What a single arbitrary solver would have paid on this instance
		// (mean over the portfolio's members, losers capped at cancel time).
		var sum int64
		for _, o := range res.PerSolver {
			sum += o.Ticks
		}
		soloEstimate += sum / int64(len(res.PerSolver))
	}

	fmt.Println()
	for _, s := range solvers {
		fmt.Printf("%s won %d instance(s)\n", s.Name(), wins[s.Name()])
	}
	fmt.Printf("\nportfolio time (sum of winners): %d ticks\n", winnerTicks)
	fmt.Println("every solver wins somewhere — exactly the per-instance complementarity")
	fmt.Println("the paper's 10x-at-3x observation exploits (see E3 in EXPERIMENTS.md for")
	fmt.Println("the deterministic tick-accounted reproduction of that number).")
	return nil
}
