// Quickstart: the whole SoftBorg loop in one file.
//
// We hand-write a small program with a latent crash (inputs 100..109 divide
// by zero), run it under a pod wired to an in-process hive, let one unlucky
// "user" hit the bug, and watch the hive synthesize an input-guard fix that
// the pod then applies — after which the same dangerous input is averted.
// Finally the hive proves no-crash over the *guarded* fleet's evidence.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	softborg "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildProgram() (*softborg.Program, error) {
	// if x >= 100 && x < 110 { crash } else { ok }
	b := softborg.BuildProgram("quickstart", 1)
	danger, end := b.NewLabel(), b.NewLabel()
	b.Input(0, 0)
	b.BrImm(0, softborg.CmpGE, 100, danger)
	b.Jmp(end)
	b.Bind(danger)
	inner := b.NewLabel()
	b.BrImm(0, softborg.CmpLT, 110, inner)
	b.Jmp(end)
	b.Bind(inner)
	b.Const(1, 0)
	b.Div(2, 1, 1) // 0/0
	b.Bind(end)
	b.Halt()
	return b.Build()
}

func run() error {
	p, err := buildProgram()
	if err != nil {
		return err
	}
	fmt.Println("program:", p.Name, "id:", p.ID)

	// The hive: registration tells it enough to reconstruct, analyze and
	// fix this program.
	hive := softborg.NewHive("fleet-salt")
	if err := hive.RegisterProgram(p); err != nil {
		return err
	}

	// One pod, reporting external-only traces at hashed privacy — the
	// paper's preferred low-cost, privacy-conscious configuration.
	pod, err := softborg.NewPod(softborg.PodConfig{
		Program: p,
		ID:      "alice-laptop",
		Hive:    hive,
		Capture: softborg.CaptureExternalOnly,
		Privacy: softborg.PrivacyHashed,
		Salt:    "fleet-salt",
	})
	if err != nil {
		return err
	}

	// Everyday use: benign inputs.
	for v := int64(0); v < 40; v++ {
		if _, err := pod.RunOnce([]int64{v}); err != nil {
			return err
		}
	}
	if err := pod.Flush(); err != nil {
		return err
	}

	// The unlucky run.
	res, err := pod.RunOnce([]int64{105})
	if err != nil {
		return err
	}
	fmt.Println("input 105 before fix:", res.Outcome) // crash
	if err := pod.Flush(); err != nil {               // ship the crash report
		return err
	}

	st, err := hive.ProgramStats(p.ID)
	if err != nil {
		return err
	}
	fmt.Printf("hive: %d traces ingested, %d failure signature(s), %d fix(es) synthesized\n",
		st.Ingested, len(st.Failures), st.FixCount)

	// Close the loop: the pod pulls the fix and the danger zone is guarded.
	if err := pod.SyncFixes(); err != nil {
		return err
	}
	res2, err := pod.RunOnce([]int64{105})
	if err != nil {
		return err
	}
	fmt.Println("input 105 after fix: ", res2.Outcome) // ok
	fmt.Printf("pod stats: %d runs, %d failures, %d averted by fixes\n",
		pod.Stats().Runs, pod.Stats().Failures, pod.Stats().FailuresAverted)

	// Cumulative proof: the accumulated executions plus symbolic discharge
	// prove the crash is the *only* misbehaviour (it is refuted for the raw
	// program — the counter-example is exactly the bug).
	proof, err := hive.Prove(p.ID, softborg.PropNoCrash)
	if err != nil {
		return err
	}
	fmt.Println("proof attempt:", proof.Statement())
	for _, ce := range proof.CounterExamples {
		if len(ce.Input) > 0 {
			fmt.Printf("  counter-example input: %v (%s)\n", ce.Input, ce.Outcome)
		}
	}
	return nil
}
