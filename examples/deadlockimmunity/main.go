// Deadlock immunity across a fleet (paper §3.3, after Dimmunix [16]).
//
// Twenty pods run a two-thread program with a circular lock-acquisition
// bug under randomized schedules. Day 1: a fraction of the fleet
// deadlocks; the traces carry the wait cycles, and the hive mints an
// immunity signature. Day 2: every pod has synced the fix — its lock gate
// serializes entry into the deadlocking lock set and recurrence drops to
// zero, at the cost of some vetoed (delayed) acquisitions.
//
//	go run ./examples/deadlockimmunity
package main

import (
	"fmt"
	"log"

	softborg "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildDining() (*softborg.Program, error) {
	b := softborg.BuildProgram("dining-pair", 0).SetLocks(2)
	b.Thread()
	b.Lock(0).Yield().Lock(1).Unlock(1).Unlock(0).Halt()
	b.Thread()
	b.Lock(1).Yield().Lock(0).Unlock(0).Unlock(1).Halt()
	return b.Build()
}

func run() error {
	p, err := buildDining()
	if err != nil {
		return err
	}
	hive := softborg.NewHive("fleet")
	if err := hive.RegisterProgram(p); err != nil {
		return err
	}

	const fleetSize = 20
	const runsPerDay = 25
	pods := make([]*softborg.Pod, fleetSize)
	for i := range pods {
		pd, err := softborg.NewPod(softborg.PodConfig{
			Program: p,
			ID:      fmt.Sprintf("pod-%02d", i),
			Hive:    hive,
			Seed:    uint64(i) + 1,
			Preempt: 0.8, // aggressive preemption: deadlock-prone schedules
			Salt:    "fleet",
		})
		if err != nil {
			return err
		}
		pods[i] = pd
	}

	day := func(label string) (int64, error) {
		var before int64
		for _, pd := range pods {
			before += pd.Stats().Failures
		}
		for _, pd := range pods {
			for r := 0; r < runsPerDay; r++ {
				if _, err := pd.RunOnce(nil); err != nil {
					return 0, err
				}
			}
			if err := pd.Flush(); err != nil {
				return 0, err
			}
		}
		var after int64
		for _, pd := range pods {
			after += pd.Stats().Failures
		}
		fmt.Printf("%s: %d/%d runs deadlocked\n", label, after-before, fleetSize*runsPerDay)
		return after - before, nil
	}

	day1, err := day("day 1 (no immunity)  ")
	if err != nil {
		return err
	}
	st, err := hive.ProgramStats(p.ID)
	if err != nil {
		return err
	}
	fmt.Printf("hive minted %d immunity fix(es) from the fleet's deadlock cycles\n", st.FixCount)

	for _, pd := range pods {
		if err := pd.SyncFixes(); err != nil {
			return err
		}
	}
	day2, err := day("day 2 (fleet immunized)")
	if err != nil {
		return err
	}

	var vetoes int64
	for _, pd := range pods {
		vetoes += pd.Stats().ImmunityVetoes
	}
	fmt.Printf("recurrence: %d -> %d; the gates vetoed %d acquisitions to steer around the cycle\n",
		day1, day2, vetoes)
	return nil
}
