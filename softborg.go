// Package softborg is the public API of this SoftBorg reproduction — a
// platform that recycles end-user execution by-products into collective
// execution trees, automated fixes, and cumulative proofs, after Candea,
// "Exterminating Bugs via Collective Information Recycling" (HotDep 2011).
//
// The platform's moving parts (Figure 1 of the paper):
//
//   - Programs run on a deterministic multi-threaded register VM
//     (BuildProgram / GenerateProgram). The VM stands in for the paper's
//     binary instrumentation: it emits the same by-products — branch
//     directions, lock events, syscall returns, outcomes — through an
//     observer interface.
//
//   - A Pod (NewPod) sits under each program instance: it captures traces
//     at a chosen granularity and privacy level, ships them to the hive,
//     pulls fixes (deadlock immunity, input guards), and executes steering
//     test cases.
//
//   - The Hive (NewHive) merges traces into per-program execution trees,
//     buckets failures, synthesizes and versions fixes, serves guidance
//     toward coverage gaps, and attempts cumulative proofs.
//
//   - A Journal (OpenJournal) makes the hive durable: every ingest
//     operation is written ahead to an append-only per-program journal and
//     periodically folded into full snapshots, so Hive.Recover rebuilds the
//     collective state — trees with their frontier indexes, failure
//     records, fixes, standing proofs, and the exactly-once wire dedup
//     table — after a crash. The journal stores only post-privacy traces:
//     exactly what pods chose to ship, never more.
//
//   - DialHive / ServeHive put the same pod↔hive API over TCP. Submission
//     frames carry session IDs and sequence numbers, so a client
//     resubmitting a partially-acknowledged stream after a reconnect (or a
//     hive restart) has every batch ingested exactly once.
//
//   - NewSimulation runs whole-fleet experiments (population × days ×
//     telemetry mode), the engine behind the headline bug-density results.
//
// Start with the examples/ directory: quickstart wires one pod to a hive,
// deadlockimmunity immunizes a fleet, portfoliosolver races SAT solvers,
// guidedcoverage shows hive steering, telemetryserver runs the loop over
// real sockets, and cumulativeproof turns everyday use into proofs.
package softborg

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exectree"
	"repro/internal/fix"
	"repro/internal/guidance"
	"repro/internal/hive"
	"repro/internal/journal"
	"repro/internal/pod"
	"repro/internal/population"
	"repro/internal/portfolio"
	"repro/internal/prog"
	"repro/internal/proggen"
	"repro/internal/proof"
	"repro/internal/sat"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Program model.
type (
	// Program is an immutable VM program (the unit SoftBorg observes).
	Program = prog.Program
	// ProgramBuilder assembles programs instruction by instruction.
	ProgramBuilder = prog.Builder
	// Machine executes one program instance.
	Machine = prog.Machine
	// MachineConfig parameterizes one execution.
	MachineConfig = prog.Config
	// Result describes a completed execution.
	Result = prog.Result
	// Outcome classifies how an execution ended.
	Outcome = prog.Outcome
	// Observer receives execution by-products.
	Observer = prog.Observer
	// SyscallModel supplies system-call return values (the environment).
	SyscallModel = prog.SyscallModel
	// FaultSpec hijacks designated syscalls (fault injection).
	FaultSpec = prog.FaultSpec
	// Cmp is a branch comparison condition.
	Cmp = prog.Cmp
)

// Execution outcomes.
const (
	OutcomeOK         = prog.OutcomeOK
	OutcomeCrash      = prog.OutcomeCrash
	OutcomeAssertFail = prog.OutcomeAssertFail
	OutcomeDeadlock   = prog.OutcomeDeadlock
	OutcomeHang       = prog.OutcomeHang
)

// Branch comparison conditions.
const (
	CmpEQ = prog.CmpEQ
	CmpNE = prog.CmpNE
	CmpLT = prog.CmpLT
	CmpLE = prog.CmpLE
	CmpGT = prog.CmpGT
	CmpGE = prog.CmpGE
)

// Telemetry model.
type (
	// Trace is one execution's by-products as shipped pod→hive.
	Trace = trace.Trace
	// CaptureMode selects recording granularity.
	CaptureMode = trace.CaptureMode
	// PrivacyLevel controls what input data leaves the user's machine.
	PrivacyLevel = trace.PrivacyLevel
)

// Capture modes (paper §3.1).
const (
	CaptureFull         = trace.CaptureFull
	CaptureExternalOnly = trace.CaptureExternalOnly
	CaptureSampled      = trace.CaptureSampled
)

// Privacy levels (paper §3.1).
const (
	PrivacyRaw      = trace.PrivacyRaw
	PrivacyBucketed = trace.PrivacyBucketed
	PrivacyHashed   = trace.PrivacyHashed
	PrivacyOpaque   = trace.PrivacyOpaque
)

// Platform components.
type (
	// Pod is the client runtime under one program instance.
	Pod = pod.Pod
	// PodConfig parameterizes a pod.
	PodConfig = pod.Config
	// PodStats are pod-side counters.
	PodStats = pod.Stats
	// HiveClient is what a pod needs from a hive (in-process or remote).
	HiveClient = pod.HiveClient
	// Hive is the aggregation and analysis center.
	Hive = hive.Hive
	// HiveStats is a per-program hive snapshot.
	HiveStats = hive.Stats
	// FailureRecord aggregates one failure signature fleet-wide.
	FailureRecord = hive.FailureRecord
	// Tree is a collective execution tree.
	Tree = exectree.Tree
	// Fix is a distributable behaviour correction.
	Fix = fix.Fix
	// TestCase is one hive steering instruction.
	TestCase = guidance.TestCase
	// Proof is a (possibly partial) cumulative proof.
	Proof = proof.Proof
	// ScheduleProof is a bounded proof over thread interleavings.
	ScheduleProof = proof.ScheduleProof
	// Property is a provable behavioural property.
	Property = proof.Property
	// HiveServer serves the hive API over TCP.
	HiveServer = wire.Server
	// HiveConn is a TCP HiveClient.
	HiveConn = wire.Client
	// TraceBuffer defers a pod's trace uploads until Drain — the
	// determinism lever for parallel fleets, and (bound to a program via
	// NewTraceBufferFor) the entry to the backend's per-program and
	// pipelined streaming submission paths.
	TraceBuffer = pod.BufferedClient
	// Journal is the hive's persistence store: per-program write-ahead
	// journals plus rotating snapshots (see Hive.Recover / Hive.Checkpoint).
	Journal = journal.Store
	// JournalOptions configures a Journal (e.g. fsync-per-append).
	JournalOptions = journal.Options
)

// Provable properties (paper §3.3).
const (
	PropNoCrash      = proof.PropNoCrash
	PropNoAssertFail = proof.PropNoAssertFail
	PropAllOK        = proof.PropAllOK
	PropNoDeadlock   = proof.PropNoDeadlock
)

// Program generation (the workload substrate).
type (
	// GenSpec parameterizes random program generation.
	GenSpec = proggen.Spec
	// BugKind classifies planted bugs.
	BugKind = proggen.BugKind
	// Bug is planted-bug ground truth.
	Bug = proggen.Bug
)

// Planted bug kinds.
const (
	BugCrash        = proggen.BugCrash
	BugAssert       = proggen.BugAssert
	BugHang         = proggen.BugHang
	BugSyscallCrash = proggen.BugSyscallCrash
	BugDeadlock     = proggen.BugDeadlock
)

// Fleet simulation.
type (
	// Simulation is a configured whole-fleet experiment.
	Simulation = core.Simulation
	// SimulationConfig parameterizes it.
	SimulationConfig = core.Config
	// SimulationMode selects the telemetry backend.
	SimulationMode = core.Mode
	// DayMetrics is one simulated day's measurements.
	DayMetrics = core.DayMetrics
	// ProgramUnderTest couples a program with its bug ground truth.
	ProgramUnderTest = core.ProgramUnderTest
	// PopulationConfig shapes the simulated user fleet.
	PopulationConfig = population.Config
)

// Simulation modes.
const (
	ModeNone     = core.ModeNone
	ModeWER      = core.ModeWER
	ModeCBI      = core.ModeCBI
	ModeSoftBorg = core.ModeSoftBorg
)

// Cooperative solving.
type (
	// SATFormula is a CNF formula.
	SATFormula = sat.Formula
	// SATSolver decides CNF formulas.
	SATSolver = sat.Solver
	// RaceResult is a portfolio race outcome.
	RaceResult = portfolio.RaceResult
	// ClusterMode selects execution-tree partitioning policy.
	ClusterMode = cluster.Mode
	// ClusterResult summarizes a distributed exploration.
	ClusterResult = cluster.Result
)

// Cluster partitioning policies (paper §4).
const (
	ClusterStatic    = cluster.Static
	ClusterDynamic   = cluster.Dynamic
	ClusterMarkowitz = cluster.Markowitz
)

// BuildProgram starts a program with the given name and input arity.
func BuildProgram(name string, numInputs int) *ProgramBuilder {
	return prog.NewBuilder(name, numInputs)
}

// GenerateProgram builds a random program with planted bugs per spec.
func GenerateProgram(spec GenSpec) (*Program, []Bug, error) {
	return proggen.Generate(spec)
}

// NewHive creates an aggregation center. salt is the fleet-wide
// input-digest salt.
func NewHive(salt string) *Hive { return hive.New(salt) }

// OpenJournal opens (creating if needed) a hive persistence directory.
// Pass it to Hive.Recover after registering the program corpus: the hive
// restores snapshot + journal suffix and journals every mutation from then
// on; Hive.Checkpoint folds the journal into fresh snapshots.
func OpenJournal(dir string, opts JournalOptions) (*Journal, error) {
	return journal.Open(dir, opts)
}

// NewPod creates a pod.
func NewPod(cfg PodConfig) (*Pod, error) { return pod.New(cfg) }

// NewTraceBuffer wraps a hive client so trace uploads defer until Drain.
func NewTraceBuffer(backend HiveClient) *TraceBuffer { return pod.NewBuffered(backend) }

// NewTraceBufferFor wraps a hive client for a pod running exactly one
// program: drains take the backend's per-program submission fast path, and
// over TCP they stream pipelined batches instead of one upload per round
// trip.
func NewTraceBufferFor(backend HiveClient, programID string) *TraceBuffer {
	return pod.NewBufferedFor(backend, programID)
}

// DialHive returns a HiveClient speaking the wire protocol to addr.
func DialHive(addr string) *HiveConn { return wire.Dial(addr) }

// ServeHive exposes a hive (or any HiveClient backend) over TCP; it returns
// the server and its bound address.
func ServeHive(backend HiveClient, addr string) (*HiveServer, string, error) {
	srv := wire.NewServer(backend)
	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, "", err
	}
	return srv, bound, nil
}

// NewSimulation wires a whole-fleet experiment.
func NewSimulation(cfg SimulationConfig) (*Simulation, error) {
	return core.NewSimulation(cfg)
}

// NewSATPortfolio returns the paper's portfolio-of-three: three complete
// DPLL solvers with deliberately different decision heuristics.
func NewSATPortfolio() []SATSolver {
	return []SATSolver{sat.NewChrono(), sat.NewJW(), sat.NewRandom(42)}
}

// RaceSolvers runs the solvers concurrently on f, first decisive answer
// wins (paper §4).
func RaceSolvers(f *SATFormula, solvers []SATSolver, maxTicks int64) RaceResult {
	return portfolio.Race(f, solvers, maxTicks)
}

// ExploreTree distributes symbolic exploration of p's execution tree across
// worker nodes under the given partitioning policy (paper §4).
func ExploreTree(p *Program, nodes int, mode ClusterMode) (*ClusterResult, error) {
	return cluster.Explore(p, nodes, mode, 0)
}
