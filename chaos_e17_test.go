package softborg

// E17 — the overload-proof hive (PR 9): a sharded fleet with admission
// control and rarity-priced load shedding armed is driven at 10× its
// comfortable rate through a flash-crowd arrival curve while slow-loris
// and garbage clients squat its connections. The claims under test: peak
// memory stays within budget, p99 ack latency stays within 10× the
// unloaded run, coverage keeps (monotonically) growing, the shed ledger
// shows duplicates and covered work were dropped — and every injected
// first-sight failure still landed in a failure table.

import (
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/hive"
	"repro/internal/wire"
)

// e17Admission is the protection profile every E17 grid point runs with:
// tight enough that 10× overload provably trips it, loose enough that the
// 1× point clears it without a single busy reply mattering.
func e17Admission() wire.Admission {
	return wire.Admission{
		SessionRate:     50000,
		SessionBurst:    4096,
		ConnQueueBytes:  16 << 10,
		TotalQueueBytes: 32 << 10,
		FrameTimeout:    150 * time.Millisecond,
		MaxConns:        256,
		MaxHalfOpen:     16,
	}
}

// e17Scenario builds one grid point. overload scales the arrival curve;
// hostile adds the flash crowd, the connection squatters, and the
// pathological tree shapes.
func e17Scenario(overload float64, hostile bool) chaos.Scenario {
	sc := chaos.Scenario{
		Hives: 3, Programs: 4, Seed: 17,
		Ticks: 8, BatchesPerTick: 2, BatchSize: 12,
		Overload:           overload,
		Admission:          e17Admission(),
		Shed:               &hive.ShedPolicy{Watermark: 0.25, RarityFloor: 2},
		FirstSightFailures: 3,
	}
	if hostile {
		sc.Arrival = chaos.FlashCrowd(0.5, 0.15, 3)
		sc.SlowLoris = 2
		sc.Garbage = 2
		sc.Pathological = true
	}
	return sc
}

func checkMonotoneCoverage(t testing.TB, label string, cov []int) {
	t.Helper()
	for i := 1; i < len(cov); i++ {
		if cov[i] < cov[i-1] {
			t.Fatalf("%s: coverage regressed at tick %d: %v", label, i, cov)
		}
	}
	if len(cov) == 0 || cov[len(cov)-1] == 0 {
		t.Fatalf("%s: fleet covered nothing: %v", label, cov)
	}
}

func TestE17OverloadGraceful(t *testing.T) {
	if testing.Short() {
		t.Skip("boots two real fleets")
	}
	base, err := chaos.Run(e17Scenario(1, false))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if base.Submitted == 0 || base.Failed != 0 {
		t.Fatalf("baseline not clean: %+v", base)
	}
	checkMonotoneCoverage(t, "baseline", base.Coverage)

	over, err := chaos.Run(e17Scenario(10, true))
	if err != nil {
		t.Fatalf("overload: %v", err)
	}
	t.Logf("baseline: p50=%v p99=%v heap=%dMB", base.P50, base.P99, base.PeakHeapBytes>>20)
	t.Logf("overload: p50=%v p99=%v heap=%dMB submitted=%d failed=%d busy=%d",
		over.P50, over.P99, over.PeakHeapBytes>>20, over.Submitted, over.Failed, over.BusyErrors)
	t.Logf("overload shed: %+v admission: %+v evictions=%d", over.Shed, over.Admission, over.Evictions)

	// Memory budget: a 3-hive fleet under 10× hostile load must not
	// balloon — the queues are byte-bounded and the shedder refuses the
	// work that would only grow the tree's duplicate mass.
	if budget := uint64(1 << 30); over.PeakHeapBytes > budget {
		t.Fatalf("peak heap %d bytes over the %d budget", over.PeakHeapBytes, budget)
	}
	// Latency: p99 within 10× the unloaded fleet, floored generously so a
	// noisy CI baseline in the tens of microseconds cannot flake the run.
	limit := 10 * base.P99
	if floor := 2 * time.Second; limit < floor {
		limit = floor
	}
	if over.P99 > limit {
		t.Fatalf("overload p99 %v exceeds %v (10× baseline %v)", over.P99, limit, base.P99)
	}
	checkMonotoneCoverage(t, "overload", over.Coverage)
	// The protections must actually have engaged: something was shed or
	// explicitly declined, and the cheap classes were shed in bulk.
	if over.Shed.ShedDuplicate+over.Shed.ShedCovered == 0 {
		t.Fatalf("10× overload shed nothing: %+v", over.Shed)
	}
	// The observations overload must never cost: every injected
	// first-sight crash signature landed, admitted through the shedder's
	// first-sight carve-out.
	if over.FirstSightLanded != 3 {
		t.Fatalf("first-sight failures landed %d of 3", over.FirstSightLanded)
	}
}

// BenchmarkChaosOverload is the E17 measurement harness: one scenario run
// per iteration, reporting latency percentiles and the shed ledger as
// benchmark metrics. `go test -bench BenchmarkChaosOverload -benchtime 1x .`
func BenchmarkChaosOverload(b *testing.B) {
	for _, bc := range []struct {
		name     string
		overload float64
		hostile  bool
	}{
		{"over=1x", 1, false},
		{"over=10x", 10, true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := chaos.Run(e17Scenario(bc.overload, bc.hostile))
				if err != nil {
					b.Fatal(err)
				}
				checkMonotoneCoverage(b, bc.name, res.Coverage)
				b.ReportMetric(float64(res.P50)/1e6, "p50_ms")
				b.ReportMetric(float64(res.P99)/1e6, "p99_ms")
				b.ReportMetric(float64(res.PeakHeapBytes)/(1<<20), "peak_heap_MB")
				b.ReportMetric(float64(res.Submitted), "batches")
				b.ReportMetric(float64(res.Shed.ShedDuplicate+res.Shed.ShedCovered), "shed")
				b.ReportMetric(float64(res.Shed.Deferred), "deferred")
				b.ReportMetric(float64(res.Admission.BusyReplies), "busy")
				b.ReportMetric(float64(res.Coverage[len(res.Coverage)-1]), "coverage")
			}
		})
	}
}
