package softborg_test

// Godoc examples for the public API. Each compiles and runs under go test;
// output is verified against the trailing comments.

import (
	"fmt"

	softborg "repro"
)

// ExampleBuildProgram assembles and runs a tiny program on the VM.
func ExampleBuildProgram() {
	b := softborg.BuildProgram("adder", 2)
	b.Input(0, 0)
	b.Input(1, 1)
	b.Add(2, 0, 1)
	end := b.NewLabel()
	b.BrImm(2, softborg.CmpGT, 100, end)
	b.Const(3, 7)
	b.Bind(end)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	fmt.Println("branches:", p.NumBranches())
	fmt.Println("input-dependent:", p.NumInputDependentBranches())
	// Output:
	// branches: 1
	// input-dependent: 1
}

// ExampleNewHive shows the capture→fix loop in its smallest form.
func ExampleNewHive() {
	b := softborg.BuildProgram("divider", 1)
	end := b.NewLabel()
	b.Input(0, 0)
	b.BrImm(0, softborg.CmpGE, 5, end) // inputs < 5 fall through to the bug
	b.Const(1, 0)
	b.Div(2, 1, 1) // 0/0
	b.Bind(end)
	b.Halt()
	p, _ := b.Build()

	hive := softborg.NewHive("salt")
	_ = hive.RegisterProgram(p)
	pod, _ := softborg.NewPod(softborg.PodConfig{
		Program: p, ID: "pod", Hive: hive, Salt: "salt", BatchSize: 1,
	})

	res, _ := pod.RunOnce([]int64{0})
	fmt.Println("before fix:", res.Outcome)
	_ = pod.SyncFixes()
	res, _ = pod.RunOnce([]int64{0})
	fmt.Println("after fix: ", res.Outcome)
	// Output:
	// before fix: crash
	// after fix:  ok
}

// ExampleHive_Prove proves a property by completing the execution tree.
func ExampleHive_Prove() {
	b := softborg.BuildProgram("clean", 1)
	hi, end := b.NewLabel(), b.NewLabel()
	b.Input(0, 0)
	b.BrImm(0, softborg.CmpGT, 50, hi)
	b.Const(1, 1)
	b.Jmp(end)
	b.Bind(hi)
	b.Const(1, 2)
	b.Bind(end)
	b.Halt()
	p, _ := b.Build()

	hive := softborg.NewHive("salt")
	_ = hive.RegisterProgram(p)
	pr, _ := hive.Prove(p.ID, softborg.PropAllOK)
	fmt.Println("complete:", pr.Complete, "holds:", pr.Holds)
	// Output:
	// complete: true holds: true
}

// ExampleGenerateProgram creates a workload program with a planted bug.
func ExampleGenerateProgram() {
	_, bugs, _ := softborg.GenerateProgram(softborg.GenSpec{
		Seed: 7, Depth: 4, Bugs: []softborg.BugKind{softborg.BugCrash},
	})
	fmt.Println("planted:", bugs[0].Kind)
	// Output:
	// planted: crash
}
