package softborg

// Ablation benchmarks for the design decisions DESIGN.md §5 calls out.
//
// AblationRecycleVsEagerSymbolic: SoftBorg builds the execution tree by
// merging free, already-executed paths and reserves symbolic analysis for
// gaps. The ablation builds the same tree by eager symbolic exploration
// alone (classic symbolic execution) and compares solver effort — the
// paper's §3.2 argument that "runtime constraint solving is not necessary"
// for naturally covered paths.
//
// AblationPortfolioStrategies: the exploration allocator's three strategies
// (diversify / speculate / efficient-frontier) on the same equity estimates.
//
// AblationCaptureModes: per-run capture cost of the three §3.1 modes
// (wall-clock complement to E7's event/byte accounting).

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/exectree"
	"repro/internal/portfolio"
	"repro/internal/prog"
	"repro/internal/proggen"
	"repro/internal/stats"
	"repro/internal/symbolic"
	"repro/internal/trace"
)

// BenchmarkAblationRecycleVsEagerSymbolic reports the solver ticks each
// strategy spends to reach the same tree coverage.
func BenchmarkAblationRecycleVsEagerSymbolic(b *testing.B) {
	p, _, err := proggen.Generate(proggen.Spec{Seed: 501, Depth: 5, NumInputs: 2})
	if err != nil {
		b.Fatal(err)
	}
	var recycleTicks, eagerTicks float64
	for i := 0; i < b.N; i++ {
		recycleTicks = float64(recycleCost(b, p))
		eagerTicks = float64(eagerCost(b, p))
	}
	b.ReportMetric(recycleTicks, "recycle_solver_ticks")
	b.ReportMetric(eagerTicks, "eager_solver_ticks")
	if recycleTicks > 0 {
		b.ReportMetric(eagerTicks/recycleTicks, "eager_cost_ratio")
	}
}

// recycleCost: natural runs populate the tree for free; symbolic effort is
// only the frontier discharge afterwards.
func recycleCost(b *testing.B, p *prog.Program) int64 {
	b.Helper()
	sym, err := symbolic.New(p, symbolic.Config{})
	if err != nil {
		b.Fatal(err)
	}
	tree := exectree.New(p.ID)
	rng := stats.NewRNG(7)
	for i := 0; i < 400; i++ {
		path, err := sym.Run([]int64{rng.Int63n(256), rng.Int63n(256)})
		if err != nil {
			b.Fatal(err)
		}
		tree.Merge(path.Events(), path.Outcome)
	}
	return dischargeAll(b, sym, tree)
}

// eagerCost: the tree starts empty except one seed; everything is
// discovered by frontier solving.
func eagerCost(b *testing.B, p *prog.Program) int64 {
	b.Helper()
	sym, err := symbolic.New(p, symbolic.Config{})
	if err != nil {
		b.Fatal(err)
	}
	tree := exectree.New(p.ID)
	path, err := sym.Run(make([]int64, p.NumInputs))
	if err != nil {
		b.Fatal(err)
	}
	tree.Merge(path.Events(), path.Outcome)
	return dischargeAll(b, sym, tree)
}

// dischargeAll drives the tree to completeness, counting solver queries as
// the effort unit (each SolveFrontier call includes a forced replay plus a
// constraint solve).
func dischargeAll(b *testing.B, sym *symbolic.Engine, tree *exectree.Tree) int64 {
	b.Helper()
	var queries int64
	for round := 0; round < 10_000; round++ {
		frontiers := tree.FrontiersAll()
		if len(frontiers) == 0 {
			return queries
		}
		progress := false
		for _, f := range frontiers {
			queries++
			input, verdict, err := sym.SolveFrontier(f)
			if err != nil {
				continue
			}
			switch verdict {
			case constraint.SAT:
				path, err := sym.Run(input)
				if err != nil {
					b.Fatal(err)
				}
				mr := tree.Merge(path.Events(), path.Outcome)
				if mr.NewPath || mr.NewEdges > 0 || mr.NewNodes > 0 {
					progress = true
				}
			case constraint.UNSAT:
				if tree.CertifyInfeasible(f.Prefix, f.Missing) {
					progress = true
				}
			}
		}
		if !progress {
			return queries
		}
	}
	return queries
}

// BenchmarkAblationPortfolioStrategies compares allocator strategies on a
// skewed equity set.
func BenchmarkAblationPortfolioStrategies(b *testing.B) {
	equities := []portfolio.Equity{
		{ID: "hot", Samples: 50, Mean: 10, Var: 4},
		{ID: "cold", Samples: 50, Mean: 0.5, Var: 0.01},
		{ID: "wild", Samples: 5, Mean: 6, Var: 90},
		{ID: "fresh", Samples: 0},
	}
	for i := 0; i < b.N; i++ {
		for _, strat := range []portfolio.Strategy{
			portfolio.Diversify, portfolio.Speculate, portfolio.EfficientFrontier,
		} {
			portfolio.Allocate(equities, 16, strat, 0.5)
		}
	}
}

// BenchmarkAblationCaptureModes measures wall-clock per instrumented run.
func BenchmarkAblationCaptureModes(b *testing.B) {
	p, _, err := proggen.Generate(proggen.Spec{
		Seed: 502, Depth: 6, Loops: 2, NumInputs: 2, DetBranches: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name string
		mode trace.CaptureMode
		rate float64
		off  bool
	}{
		{name: "off", off: true},
		{name: "full", mode: trace.CaptureFull},
		{name: "external", mode: trace.CaptureExternalOnly},
		{name: "sampled", mode: trace.CaptureSampled, rate: 0.1},
	}
	for _, mc := range modes {
		b.Run(mc.name, func(b *testing.B) {
			rng := stats.NewRNG(1)
			var col *trace.Collector
			if !mc.off {
				col = trace.NewCollector(p, mc.mode, mc.rate, 1)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := prog.Config{Input: []int64{rng.Int63n(256), rng.Int63n(256)}}
				if col != nil {
					col.Reset()
					cfg.Observer = col
				}
				m, err := prog.NewMachine(p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				res := m.Run()
				if col != nil {
					col.Finish("pod", uint64(i), res, cfg.Input, trace.PrivacyHashed, "s")
				}
			}
		})
	}
}
