package sat

import (
	"fmt"

	"repro/internal/stats"
)

// Verdict is a solver's answer.
type Verdict uint8

// Verdicts. Unknown means the tick budget expired first.
const (
	SAT Verdict = iota + 1
	UNSAT
	Unknown
)

var verdictNames = map[Verdict]string{SAT: "sat", UNSAT: "unsat", Unknown: "unknown"}

// String returns the verdict label.
func (v Verdict) String() string {
	if s, ok := verdictNames[v]; ok {
		return s
	}
	return fmt.Sprintf("verdict(%d)", uint8(v))
}

// Result is a solver run's outcome.
type Result struct {
	Verdict Verdict
	// Model is a satisfying assignment (index 0 unused) when SAT.
	Model []bool
	// Ticks is the deterministic effort spent (clause visits + decisions).
	Ticks int64
}

// Solver decides CNF formulas under a tick budget.
type Solver interface {
	// Name identifies the solver in reports.
	Name() string
	// Solve decides f, spending at most maxTicks effort (0 means
	// DefaultMaxTicks). Closing cancel makes Solve return Unknown at the
	// next tick check; nil means non-cancellable.
	Solve(f *Formula, maxTicks int64, cancel <-chan struct{}) Result
}

// DefaultMaxTicks bounds solver effort when the caller passes zero.
const DefaultMaxTicks = 50_000_000

// heuristic selects the next decision literal.
type heuristic interface {
	// init prepares per-formula state.
	init(f *Formula)
	// pick returns a decision literal on an unassigned variable, or 0 when
	// all variables are assigned.
	pick(d *dpll) Lit
}

// DPLL is a complete Davis–Putnam–Logemann–Loveland solver with two-literal
// watching and chronological backtracking. The decision heuristic is
// pluggable; the three exported constructors differ only (but substantially)
// in that choice, which is what makes them complementary in a portfolio —
// the paper's §4 observation that "each solver is fast in solving some path
// constraints but slow on others".
type DPLL struct {
	name string
	mk   func() heuristic
}

var _ Solver = (*DPLL)(nil)

// NewChrono returns a DPLL deciding variables in index order with negative
// phase first — the "textbook" solver.
func NewChrono() *DPLL {
	return &DPLL{name: "chrono", mk: func() heuristic { return &chronoHeur{} }}
}

// NewJW returns a DPLL using static Jeroslow–Wang literal scoring: literals
// in short clauses weigh exponentially more.
func NewJW() *DPLL {
	return &DPLL{name: "jw", mk: func() heuristic { return &jwHeur{} }}
}

// NewRandom returns a DPLL deciding in a seeded random variable order with
// random phases; different seeds give different solvers.
func NewRandom(seed uint64) *DPLL {
	return &DPLL{
		name: fmt.Sprintf("rand-%d", seed),
		mk:   func() heuristic { return &randHeur{seed: seed} },
	}
}

// Name implements Solver.
func (s *DPLL) Name() string { return s.name }

const (
	unassigned int8 = 0
	assignedT  int8 = 1
	assignedF  int8 = -1
)

// decFrame is one decision-stack entry: where the decision's literal sits on
// the trail and whether its complement has already been tried.
type decFrame struct {
	limit   int
	flipped bool
}

// dpll is per-solve state.
type dpll struct {
	f       *Formula
	clauses []Clause // private copy: watching reorders literals
	assign  []int8   // 1-indexed
	trail   []Lit
	decs    []decFrame
	qhead   int
	// watches maps literal index (2v / 2v+1) to watching clause ids.
	watches  [][]int32
	ticks    int64
	maxTicks int64
	cancel   <-chan struct{}
}

func litIdx(l Lit) int32 {
	v := l.Var()
	if l.Pos() {
		return 2 * v
	}
	return 2*v + 1
}

// value returns the literal's truth value under the current assignment.
func (d *dpll) value(l Lit) int8 {
	a := d.assign[l.Var()]
	if a == unassigned {
		return unassigned
	}
	if l.Pos() {
		return a
	}
	return -a
}

// Solve implements Solver.
func (s *DPLL) Solve(f *Formula, maxTicks int64, cancel <-chan struct{}) Result {
	if maxTicks <= 0 {
		maxTicks = DefaultMaxTicks
	}
	d := &dpll{
		f:        f,
		clauses:  make([]Clause, len(f.Clauses)),
		assign:   make([]int8, f.NumVars+1),
		watches:  make([][]int32, 2*(f.NumVars+1)),
		maxTicks: maxTicks,
		cancel:   cancel,
	}
	for i, c := range f.Clauses {
		d.clauses[i] = append(Clause(nil), c...)
	}
	h := s.mk()
	h.init(f)

	// Handle empty and unit clauses up front; set up watches for the rest.
	for ci, c := range d.clauses {
		switch len(c) {
		case 0:
			return Result{Verdict: UNSAT, Ticks: d.ticks}
		case 1:
			switch d.value(c[0]) {
			case assignedF:
				return Result{Verdict: UNSAT, Ticks: d.ticks}
			case unassigned:
				d.enqueue(c[0])
			}
		default:
			d.watches[litIdx(c[0])] = append(d.watches[litIdx(c[0])], int32(ci))
			d.watches[litIdx(c[1])] = append(d.watches[litIdx(c[1])], int32(ci))
		}
	}
	if !d.propagate() {
		return Result{Verdict: UNSAT, Ticks: d.ticks}
	}

	for {
		if d.ticks >= d.maxTicks || canceled(d.cancel) {
			return Result{Verdict: Unknown, Ticks: d.ticks}
		}
		dec := h.pick(d)
		if dec == 0 {
			model := make([]bool, f.NumVars+1)
			for v := 1; v <= f.NumVars; v++ {
				model[v] = d.assign[v] == assignedT
			}
			return Result{Verdict: SAT, Model: model, Ticks: d.ticks}
		}
		d.ticks++
		d.decs = append(d.decs, decFrame{limit: len(d.trail)})
		d.enqueue(dec)
		for !d.propagate() {
			if !d.backtrack() {
				return Result{Verdict: UNSAT, Ticks: d.ticks}
			}
			if d.ticks >= d.maxTicks || canceled(d.cancel) {
				return Result{Verdict: Unknown, Ticks: d.ticks}
			}
		}
	}
}

func canceled(c <-chan struct{}) bool {
	if c == nil {
		return false
	}
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// enqueue assigns literal l true and pushes it on the trail.
func (d *dpll) enqueue(l Lit) {
	v := l.Var()
	if l.Pos() {
		d.assign[v] = assignedT
	} else {
		d.assign[v] = assignedF
	}
	d.trail = append(d.trail, l)
}

// backtrack undoes to the most recent decision with an untried phase, flips
// it in place, and returns true; false means the search space is exhausted
// (UNSAT).
func (d *dpll) backtrack() bool {
	for len(d.decs) > 0 {
		top := &d.decs[len(d.decs)-1]
		decision := d.trail[top.limit]
		for i := len(d.trail) - 1; i >= top.limit; i-- {
			d.assign[d.trail[i].Var()] = unassigned
		}
		d.trail = d.trail[:top.limit]
		d.qhead = top.limit
		if !top.flipped {
			top.flipped = true
			d.enqueue(decision.Neg())
			return true
		}
		d.decs = d.decs[:len(d.decs)-1]
	}
	return false
}

// propagate runs unit propagation with two-literal watching; false on
// conflict.
func (d *dpll) propagate() bool {
	for d.qhead < len(d.trail) {
		l := d.trail[d.qhead]
		d.qhead++
		if !d.propagateLit(l.Neg()) {
			return false
		}
	}
	return true
}

// propagateLit visits clauses watching falseLit (a literal that just became
// false) and updates their watches; false on conflict.
func (d *dpll) propagateLit(falseLit Lit) bool {
	wl := d.watches[litIdx(falseLit)]
	kept := wl[:0]
	for wi := 0; wi < len(wl); wi++ {
		ci := wl[wi]
		d.ticks++
		clause := d.clauses[ci]
		if clause[0] == falseLit {
			clause[0], clause[1] = clause[1], clause[0]
		}
		if d.value(clause[0]) == assignedT {
			kept = append(kept, ci)
			continue
		}
		found := false
		for k := 2; k < len(clause); k++ {
			if d.value(clause[k]) != assignedF {
				clause[1], clause[k] = clause[k], clause[1]
				d.watches[litIdx(clause[1])] = append(d.watches[litIdx(clause[1])], ci)
				found = true
				break
			}
		}
		if found {
			continue
		}
		kept = append(kept, ci)
		switch d.value(clause[0]) {
		case unassigned:
			d.enqueue(clause[0])
		case assignedF:
			kept = append(kept, wl[wi+1:]...)
			d.watches[litIdx(falseLit)] = kept
			return false
		}
	}
	d.watches[litIdx(falseLit)] = kept
	return true
}

// --- heuristics ---

type chronoHeur struct{}

func (h *chronoHeur) init(*Formula) {}

func (h *chronoHeur) pick(d *dpll) Lit {
	for v := 1; v <= d.f.NumVars; v++ {
		if d.assign[v] == unassigned {
			return Lit(-int32(v))
		}
	}
	return 0
}

type jwHeur struct {
	order []int32 // variables by descending JW score
	phase []bool  // preferred phase per variable
}

func (h *jwHeur) init(f *Formula) {
	pos := make([]float64, f.NumVars+1)
	neg := make([]float64, f.NumVars+1)
	for _, c := range f.Clauses {
		w := jwWeight(len(c))
		for _, l := range c {
			if l.Pos() {
				pos[l.Var()] += w
			} else {
				neg[l.Var()] += w
			}
		}
	}
	h.order = make([]int32, 0, f.NumVars)
	h.phase = make([]bool, f.NumVars+1)
	for v := 1; v <= f.NumVars; v++ {
		h.order = append(h.order, int32(v))
		h.phase[v] = pos[v] >= neg[v]
	}
	score := func(v int32) float64 { return pos[v] + neg[v] }
	sortStableBy(h.order, func(a, b int32) bool { return score(a) > score(b) })
}

func jwWeight(clauseLen int) float64 {
	w := 1.0
	for i := 0; i < clauseLen && i < 30; i++ {
		w /= 2
	}
	return w
}

func (h *jwHeur) pick(d *dpll) Lit {
	for _, v := range h.order {
		if d.assign[v] == unassigned {
			if h.phase[v] {
				return Lit(v)
			}
			return Lit(-v)
		}
	}
	return 0
}

type randHeur struct {
	seed  uint64
	order []int32
	phase []bool
}

func (h *randHeur) init(f *Formula) {
	rng := stats.NewRNG(h.seed)
	perm := rng.Perm(f.NumVars)
	h.order = make([]int32, f.NumVars)
	h.phase = make([]bool, f.NumVars+1)
	for i, p := range perm {
		h.order[i] = int32(p + 1)
	}
	for v := 1; v <= f.NumVars; v++ {
		h.phase[v] = rng.Bool(0.5)
	}
}

func (h *randHeur) pick(d *dpll) Lit {
	for _, v := range h.order {
		if d.assign[v] == unassigned {
			if h.phase[v] {
				return Lit(v)
			}
			return Lit(-v)
		}
	}
	return 0
}

func sortStableBy(s []int32, less func(a, b int32) bool) {
	// Insertion sort: n is the variable count (small) and this avoids a
	// sort.Slice closure allocation.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
