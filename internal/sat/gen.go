package sat

import (
	"strconv"

	"repro/internal/stats"
)

// Random3SAT generates a uniform random 3-SAT instance with nvars variables
// and ratio*nvars clauses. Ratio ≈ 4.26 sits at the phase transition where
// instances are hardest and solver runtimes are most variable — the regime
// where a solver portfolio pays off most.
func Random3SAT(rng *stats.RNG, nvars int, ratio float64) *Formula {
	nclauses := int(float64(nvars) * ratio)
	f := &Formula{NumVars: nvars, Clauses: make([]Clause, 0, nclauses)}
	for i := 0; i < nclauses; i++ {
		c := make(Clause, 0, 3)
		used := map[int32]bool{}
		for len(c) < 3 {
			v := int32(rng.Intn(nvars) + 1)
			if used[v] {
				continue
			}
			used[v] = true
			if rng.Bool(0.5) {
				c = append(c, Lit(v))
			} else {
				c = append(c, Lit(-v))
			}
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// Pigeonhole generates PHP(n+1, n): n+1 pigeons into n holes — UNSAT and
// exponentially hard for resolution-based solvers. Variable p*n + h + 1
// means "pigeon p in hole h".
func Pigeonhole(n int) *Formula {
	pigeons, holes := n+1, n
	v := func(p, h int) Lit { return Lit(int32(p*holes + h + 1)) }
	f := &Formula{NumVars: pigeons * holes}
	// Each pigeon in some hole.
	for p := 0; p < pigeons; p++ {
		c := make(Clause, holes)
		for h := 0; h < holes; h++ {
			c[h] = v(p, h)
		}
		f.Clauses = append(f.Clauses, c)
	}
	// No two pigeons share a hole.
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.Clauses = append(f.Clauses, Clause{v(p1, h).Neg(), v(p2, h).Neg()})
			}
		}
	}
	return f
}

// GraphColoring encodes k-coloring of a random graph with n nodes and m
// edges. Variable node*k + color + 1 means "node has color".
func GraphColoring(rng *stats.RNG, n, m, k int) *Formula {
	v := func(node, color int) Lit { return Lit(int32(node*k + color + 1)) }
	f := &Formula{NumVars: n * k}
	// Each node has at least one color.
	for node := 0; node < n; node++ {
		c := make(Clause, k)
		for color := 0; color < k; color++ {
			c[color] = v(node, color)
		}
		f.Clauses = append(f.Clauses, c)
		// At most one color.
		for c1 := 0; c1 < k; c1++ {
			for c2 := c1 + 1; c2 < k; c2++ {
				f.Clauses = append(f.Clauses, Clause{v(node, c1).Neg(), v(node, c2).Neg()})
			}
		}
	}
	// Adjacent nodes differ.
	seen := map[[2]int]bool{}
	for len(seen) < m {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if seen[key] {
			continue
		}
		seen[key] = true
		for color := 0; color < k; color++ {
			f.Clauses = append(f.Clauses, Clause{v(a, color).Neg(), v(b, color).Neg()})
		}
	}
	return f
}

// MixedBatch generates the instance mix used by the portfolio experiments:
// phase-transition random 3-SAT of varying sizes plus structured instances.
// Each entry is labeled for reporting.
type Instance struct {
	Name    string
	Formula *Formula
}

// NewMixedBatch builds count instances deterministically from seed.
func NewMixedBatch(seed uint64, count int) []Instance {
	rng := stats.NewRNG(seed)
	out := make([]Instance, 0, count)
	for i := 0; i < count; i++ {
		switch i % 5 {
		case 0, 1, 2:
			n := 60 + rng.Intn(60)
			out = append(out, Instance{
				Name:    nameOf("r3sat", i, n),
				Formula: Random3SAT(rng.Split(), n, 4.26),
			})
		case 3:
			n := 30 + rng.Intn(40)
			out = append(out, Instance{
				Name:    nameOf("color", i, n),
				Formula: GraphColoring(rng.Split(), n, n*2, 3),
			})
		default:
			n := 5 + rng.Intn(3)
			out = append(out, Instance{
				Name:    nameOf("php", i, n),
				Formula: Pigeonhole(n),
			})
		}
	}
	return out
}

func nameOf(kind string, i, n int) string {
	return kind + "-" + strconv.Itoa(i) + "-n" + strconv.Itoa(n)
}
