// Package sat implements the propositional-satisfiability substrate for
// SoftBorg's cooperative solving experiments (paper §4): CNF formulas, a
// DIMACS codec, three complete DPLL solvers with deliberately different
// decision heuristics (so a portfolio of them exhibits the complementary
// per-instance variance the paper exploits), and generators for random and
// structured instances.
//
// Solver effort is measured in deterministic "ticks" (propagation visits +
// decisions) rather than wall-clock time, so experiments replay exactly.
package sat

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Lit is a literal: +v for variable v, -v for its negation. Variables are
// numbered from 1.
type Lit int32

// Var returns the literal's variable.
func (l Lit) Var() int32 {
	if l < 0 {
		return int32(-l)
	}
	return int32(l)
}

// Pos reports whether the literal is positive.
func (l Lit) Pos() bool { return l > 0 }

// Neg returns the negated literal.
func (l Lit) Neg() Lit { return -l }

// Clause is a disjunction of literals.
type Clause []Lit

// Formula is a CNF formula.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Validate checks that every literal references a variable in range and no
// clause is empty.
func (f *Formula) Validate() error {
	for i, c := range f.Clauses {
		if len(c) == 0 {
			return fmt.Errorf("sat: clause %d is empty", i)
		}
		for _, l := range c {
			if l == 0 || int(l.Var()) > f.NumVars {
				return fmt.Errorf("sat: clause %d has invalid literal %d", i, l)
			}
		}
	}
	return nil
}

// Eval checks an assignment (1-indexed; index 0 unused) against the formula.
func (f *Formula) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			if assign[l.Var()] == l.Pos() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// Clone deep-copies the formula.
func (f *Formula) Clone() *Formula {
	out := &Formula{NumVars: f.NumVars, Clauses: make([]Clause, len(f.Clauses))}
	for i, c := range f.Clauses {
		out.Clauses[i] = append(Clause(nil), c...)
	}
	return out
}

// WriteDIMACS serializes the formula in DIMACS CNF format.
func (f *Formula) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		for _, l := range c {
			if _, err := fmt.Fprintf(bw, "%d ", l); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ErrDIMACS is wrapped by DIMACS parse failures.
var ErrDIMACS = errors.New("sat: invalid DIMACS")

// ParseDIMACS reads a DIMACS CNF formula.
func ParseDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	f := &Formula{}
	sawHeader := false
	var cur Clause
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("%w: bad header %q", ErrDIMACS, line)
			}
			nv, err1 := strconv.Atoi(fields[2])
			_, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || nv < 0 {
				return nil, fmt.Errorf("%w: bad header %q", ErrDIMACS, line)
			}
			f.NumVars = nv
			sawHeader = true
			continue
		}
		if !sawHeader {
			return nil, fmt.Errorf("%w: clause before header", ErrDIMACS)
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("%w: bad literal %q", ErrDIMACS, tok)
			}
			if v == 0 {
				f.Clauses = append(f.Clauses, cur)
				cur = nil
				continue
			}
			cur = append(cur, Lit(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		f.Clauses = append(f.Clauses, cur)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}
