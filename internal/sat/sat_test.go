package sat

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func allSolvers() []Solver {
	return []Solver{NewChrono(), NewJW(), NewRandom(42)}
}

func TestTrivialSAT(t *testing.T) {
	f := &Formula{NumVars: 2, Clauses: []Clause{{1, 2}, {-1, 2}}}
	for _, s := range allSolvers() {
		res := s.Solve(f, 0, nil)
		if res.Verdict != SAT {
			t.Errorf("%s: verdict = %v, want sat", s.Name(), res.Verdict)
		}
		if !f.Eval(res.Model) {
			t.Errorf("%s: model does not satisfy formula", s.Name())
		}
	}
}

func TestTrivialUNSAT(t *testing.T) {
	f := &Formula{NumVars: 1, Clauses: []Clause{{1}, {-1}}}
	for _, s := range allSolvers() {
		if res := s.Solve(f, 0, nil); res.Verdict != UNSAT {
			t.Errorf("%s: verdict = %v, want unsat", s.Name(), res.Verdict)
		}
	}
}

func TestEmptyClauseUNSAT(t *testing.T) {
	f := &Formula{NumVars: 1, Clauses: []Clause{{}}}
	for _, s := range allSolvers() {
		if res := s.Solve(f, 0, nil); res.Verdict != UNSAT {
			t.Errorf("%s: verdict = %v, want unsat", s.Name(), res.Verdict)
		}
	}
}

func TestNoClausesSAT(t *testing.T) {
	f := &Formula{NumVars: 3}
	for _, s := range allSolvers() {
		if res := s.Solve(f, 0, nil); res.Verdict != SAT {
			t.Errorf("%s: verdict = %v, want sat", s.Name(), res.Verdict)
		}
	}
}

func TestChainedImplications(t *testing.T) {
	// x1 ∧ (x1→x2) ∧ ... ∧ (x9→x10): all must be true.
	f := &Formula{NumVars: 10, Clauses: []Clause{{1}}}
	for v := int32(1); v < 10; v++ {
		f.Clauses = append(f.Clauses, Clause{Lit(-v), Lit(v + 1)})
	}
	for _, s := range allSolvers() {
		res := s.Solve(f, 0, nil)
		if res.Verdict != SAT {
			t.Fatalf("%s: verdict = %v", s.Name(), res.Verdict)
		}
		for v := 1; v <= 10; v++ {
			if !res.Model[v] {
				t.Errorf("%s: x%d = false, want true", s.Name(), v)
			}
		}
	}
}

func TestPigeonholeUNSAT(t *testing.T) {
	for n := 2; n <= 5; n++ {
		f := Pigeonhole(n)
		for _, s := range allSolvers() {
			res := s.Solve(f, 0, nil)
			if res.Verdict != UNSAT {
				t.Errorf("php(%d) %s: verdict = %v, want unsat", n, s.Name(), res.Verdict)
			}
		}
	}
}

func TestSolversAgreeOnRandomInstances(t *testing.T) {
	rng := stats.NewRNG(1)
	solvers := allSolvers()
	for i := 0; i < 30; i++ {
		f := Random3SAT(rng.Split(), 25, 4.26)
		var verdicts []Verdict
		for _, s := range solvers {
			res := s.Solve(f, 0, nil)
			if res.Verdict == SAT && !f.Eval(res.Model) {
				t.Fatalf("instance %d %s: invalid model", i, s.Name())
			}
			verdicts = append(verdicts, res.Verdict)
		}
		for j := 1; j < len(verdicts); j++ {
			if verdicts[j] != verdicts[0] {
				t.Fatalf("instance %d: solver disagreement %v", i, verdicts)
			}
		}
	}
}

func TestSolverDeterminism(t *testing.T) {
	rng := stats.NewRNG(2)
	f := Random3SAT(rng, 40, 4.26)
	for _, s := range allSolvers() {
		r1 := s.Solve(f, 0, nil)
		r2 := s.Solve(f, 0, nil)
		if r1.Verdict != r2.Verdict || r1.Ticks != r2.Ticks {
			t.Errorf("%s: nondeterministic (%v/%d vs %v/%d)",
				s.Name(), r1.Verdict, r1.Ticks, r2.Verdict, r2.Ticks)
		}
	}
}

func TestTickBudgetReturnsUnknown(t *testing.T) {
	f := Pigeonhole(8) // hard
	res := NewChrono().Solve(f, 1000, nil)
	if res.Verdict != Unknown {
		t.Fatalf("verdict = %v, want unknown under tiny budget", res.Verdict)
	}
	if res.Ticks < 1000 {
		t.Errorf("ticks = %d, want >= budget", res.Ticks)
	}
}

func TestCancellation(t *testing.T) {
	f := Pigeonhole(9)
	cancel := make(chan struct{})
	close(cancel)
	res := NewJW().Solve(f, 0, cancel)
	if res.Verdict != Unknown {
		t.Fatalf("verdict = %v, want unknown when pre-cancelled", res.Verdict)
	}
}

func TestGraphColoringSATWhenSparse(t *testing.T) {
	rng := stats.NewRNG(3)
	// A tree (n-1 edges) is always 3-colorable.
	f := GraphColoring(rng, 12, 11, 3)
	res := NewJW().Solve(f, 0, nil)
	if res.Verdict != SAT {
		t.Fatalf("verdict = %v, want sat", res.Verdict)
	}
	if !f.Eval(res.Model) {
		t.Fatal("invalid model")
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := stats.NewRNG(4)
	f := Random3SAT(rng, 15, 4.0)
	var buf bytes.Buffer
	if err := f.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars != f.NumVars || len(g.Clauses) != len(f.Clauses) {
		t.Fatalf("round trip mismatch: %d/%d vs %d/%d",
			g.NumVars, len(g.Clauses), f.NumVars, len(f.Clauses))
	}
	for i := range f.Clauses {
		if len(f.Clauses[i]) != len(g.Clauses[i]) {
			t.Fatalf("clause %d length mismatch", i)
		}
		for j := range f.Clauses[i] {
			if f.Clauses[i][j] != g.Clauses[i][j] {
				t.Fatalf("clause %d literal %d mismatch", i, j)
			}
		}
	}
}

func TestParseDIMACSRejectsGarbage(t *testing.T) {
	cases := []string{
		"p cnf x y\n1 0\n",
		"1 2 0\n", // clause before header
		"p cnf 2 1\n1 zzz 0\n",
		"p cnf 1 1\n5 0\n", // var out of range
	}
	for _, c := range cases {
		if _, err := ParseDIMACS(strings.NewReader(c)); err == nil {
			t.Errorf("ParseDIMACS(%q): want error", c)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := &Formula{NumVars: 2, Clauses: []Clause{{3}}}
	if err := bad.Validate(); err == nil {
		t.Error("literal out of range: want error")
	}
	bad2 := &Formula{NumVars: 2, Clauses: []Clause{{0}}}
	if err := bad2.Validate(); err == nil {
		t.Error("zero literal: want error")
	}
}

// Property: for random small formulas, DPLL verdicts match brute force.
func TestQuickDPLLMatchesBruteForce(t *testing.T) {
	check := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		nvars := 4 + rng.Intn(5) // 4..8
		f := Random3SAT(rng, nvars, 3.5)
		want := bruteForce(f)
		for _, s := range allSolvers() {
			res := s.Solve(f, 0, nil)
			if (res.Verdict == SAT) != want {
				return false
			}
			if res.Verdict == SAT && !f.Eval(res.Model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func bruteForce(f *Formula) bool {
	n := f.NumVars
	assign := make([]bool, n+1)
	for mask := 0; mask < 1<<n; mask++ {
		for v := 1; v <= n; v++ {
			assign[v] = mask&(1<<(v-1)) != 0
		}
		if f.Eval(assign) {
			return true
		}
	}
	return false
}

func TestMixedBatchDeterministic(t *testing.T) {
	a := NewMixedBatch(9, 10)
	b := NewMixedBatch(9, 10)
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("batch sizes %d/%d, want 10", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Errorf("instance %d name mismatch: %s vs %s", i, a[i].Name, b[i].Name)
		}
		if len(a[i].Formula.Clauses) != len(b[i].Formula.Clauses) {
			t.Errorf("instance %d clause count mismatch", i)
		}
	}
}
