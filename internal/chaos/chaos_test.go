package chaos

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/leaktest"
)

func TestArrivalShapes(t *testing.T) {
	const ticks = 17
	if got := Steady()(5, ticks); got != 1 {
		t.Fatalf("steady = %v", got)
	}

	fc := FlashCrowd(0.5, 0.1, 8)
	peak, peakAt := 0.0, -1
	for tick := 0; tick < ticks; tick++ {
		m := fc(tick, ticks)
		if m < 1 {
			t.Fatalf("flash crowd dipped below baseline at tick %d: %v", tick, m)
		}
		if m > peak {
			peak, peakAt = m, tick
		}
	}
	if math.Abs(peak-8) > 1e-9 || peakAt != ticks/2 {
		t.Fatalf("flash crowd peaked at %v (tick %d), want 8 at tick %d", peak, peakAt, ticks/2)
	}
	if edge := fc(0, ticks); edge > 1.01 {
		t.Fatalf("flash crowd edge = %v, want ~baseline", edge)
	}

	d := Diurnal(2, 1.5) // amplitude past 1: the trough must clamp at 0
	clamped := false
	for tick := 0; tick < ticks; tick++ {
		m := d(tick, ticks)
		if m < 0 {
			t.Fatalf("diurnal went negative at tick %d: %v", tick, m)
		}
		if m == 0 {
			clamped = true
		}
	}
	if !clamped {
		t.Fatal("over-amplitude diurnal never clamped to zero")
	}
}

func TestHostileFramesDeterministic(t *testing.T) {
	a, b := HostileFrames(7), HostileFrames(7)
	if len(a) != len(b) || len(a) < 15 {
		t.Fatalf("corpus sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("frame %d differs between equal seeds", i)
		}
	}
	if c := HostileFrames(8); bytes.Equal(a[len(a)-1], c[len(c)-1]) {
		t.Fatal("random-soup tail identical across different seeds")
	}
}

// TestRunMildScenario is the harness smoke: a tiny unloaded fleet must
// complete with zero failures and strictly growing-then-flat coverage.
func TestRunMildScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a real fleet")
	}
	leaktest.Check(t)
	res, err := Run(Scenario{
		Hives: 2, Programs: 3, Seed: 11, Ticks: 6,
		BatchesPerTick: 2, BatchSize: 8,
		FirstSightFailures: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted == 0 || res.Failed != 0 {
		t.Fatalf("mild run: submitted=%d failed=%d", res.Submitted, res.Failed)
	}
	for i := 1; i < len(res.Coverage); i++ {
		if res.Coverage[i] < res.Coverage[i-1] {
			t.Fatalf("coverage regressed: %v", res.Coverage)
		}
	}
	if last := res.Coverage[len(res.Coverage)-1]; last == 0 {
		t.Fatal("fleet covered nothing")
	}
	if res.FirstSightLanded != 2 {
		t.Fatalf("first-sight failures landed %d of 2", res.FirstSightLanded)
	}
	if res.P99 <= 0 {
		t.Fatalf("no latency measured: %+v", res)
	}
}
