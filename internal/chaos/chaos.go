// Package chaos is the adversarial fleet harness (PR 9, experiment E17):
// it boots a sharded hive fleet behind shaped links, drives it with
// hostile arrival curves (flash crowds, diurnal tides), hostile clients
// (slow-loris connection squatters, garbage-frame replayers), and
// pathological-tree programs, and measures what the overload protections
// actually deliver — ack latency percentiles, peak memory, coverage
// progress, and the shed/admission ledger. The package is a harness, not
// a simulation: real TCP, real wire servers, real hives.
package chaos

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hive"
	"repro/internal/netshape"
	"repro/internal/prog"
	"repro/internal/proggen"
	"repro/internal/ring"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Scenario configures one adversarial fleet run. Zero values select
// small defaults; the zero Scenario is a mild, well-behaved fleet.
type Scenario struct {
	// Hives is the fleet size (default 3).
	Hives int
	// Programs is the corpus size (default 6); each program carries one
	// crash bug so first-sight failures can be injected on demand.
	Programs int
	// Seed drives program generation, trace pools, and batch composition;
	// equal seeds offer identical load.
	Seed uint64
	// Ticks is the run length in arrival-curve steps (default 16).
	Ticks int
	// BatchesPerTick is the per-program batch count at multiplier 1
	// (default 4); BatchSize is traces per batch (default 16).
	BatchesPerTick int
	BatchSize      int
	// Overload scales the whole arrival curve: 10 is the E17 "10× the
	// fleet's comfortable rate" regime (default 1).
	Overload float64
	// Arrival shapes demand over time (default Steady).
	Arrival Arrival
	// SlowLoris and Garbage are counts of concurrent hostile clients
	// aimed at hive 0 (the victim of choice).
	SlowLoris int
	Garbage   int
	// Pathological switches the corpus to deep, loopy programs whose
	// traces blow up the exec tree — pricing and merging get expensive
	// exactly when overload makes that hurt.
	Pathological bool
	// Net shapes every client<->hive link (zero = unshaped loopback).
	Net netshape.Config
	// Admission configures every hive's wire server (zero = unprotected).
	Admission wire.Admission
	// Shed installs rarity-priced load shedding on every hive (nil = off).
	Shed *hive.ShedPolicy
	// FirstSightFailures injects this many never-seen crash signatures at
	// the mid-run tick — the observations overload must not cost
	// (clamped to Programs).
	FirstSightFailures int
	// Workers is the submit concurrency (default 2×Hives).
	Workers int
}

// Result is what one scenario run measured.
type Result struct {
	// Submitted counts batch submissions offered; Failed counts the ones
	// whose final outcome was an error (busy exhaustion included).
	Submitted, Failed int64
	// BusyErrors counts submissions whose error chain surfaced MsgBusy —
	// load the fleet explicitly declined rather than absorbed.
	BusyErrors int64
	// P50 and P99 are ack-latency percentiles over every successful
	// submission, backoff waits included.
	P50, P99 time.Duration
	// PeakHeapBytes is the maximum live heap observed at any tick
	// boundary.
	PeakHeapBytes uint64
	// Coverage is the fleet-summed EdgesCovered after each tick — the
	// "degrades gracefully" series, which must stay monotone.
	Coverage []int
	// Shed and Admission aggregate every hive's ledgers; Evictions sums
	// session-table LRU evictions.
	Shed      hive.ShedStats
	Admission wire.AdmissionStats
	Evictions int64
	// FirstSightLanded counts injected crash signatures that made it into
	// a failure table (must equal the injected count).
	FirstSightLanded int
}

// node is one fleet member.
type node struct {
	h     *hive.Hive
	srv   *wire.Server
	proxy *netshape.Proxy
}

// corpusProgram is a generated program plus its prepared load: a pool of
// passing traces (batches are sampled from it, so structural duplicates
// dominate — the shape shedding exists for) and one crash trace holding
// a signature the hive has never seen.
type corpusProgram struct {
	p     *prog.Program
	pool  []*trace.Trace
	crash *trace.Trace
}

// Run executes the scenario and reports what the fleet withstood. The
// first hard harness error (not per-batch overload errors — those are
// counted) aborts the run.
func Run(sc Scenario) (Result, error) {
	if sc.Hives <= 0 {
		sc.Hives = 3
	}
	if sc.Programs <= 0 {
		sc.Programs = 6
	}
	if sc.Ticks <= 0 {
		sc.Ticks = 16
	}
	if sc.BatchesPerTick <= 0 {
		sc.BatchesPerTick = 4
	}
	if sc.BatchSize <= 0 {
		sc.BatchSize = 16
	}
	if sc.Overload <= 0 {
		sc.Overload = 1
	}
	if sc.Arrival == nil {
		sc.Arrival = Steady()
	}
	if sc.Workers <= 0 {
		sc.Workers = 2 * sc.Hives
	}
	if sc.FirstSightFailures > sc.Programs {
		sc.FirstSightFailures = sc.Programs
	}

	corpus, err := buildCorpus(sc)
	if err != nil {
		return Result{}, err
	}

	nodes := make([]*node, sc.Hives)
	addrs := make([]string, sc.Hives)
	defer func() {
		for _, nd := range nodes {
			if nd == nil {
				continue
			}
			if nd.proxy != nil {
				_ = nd.proxy.Close()
			}
			_ = nd.srv.Close()
		}
	}()
	for i := range nodes {
		h := hive.New("fleet")
		h.Logf = func(string, ...any) {}
		if sc.Shed != nil {
			h.SetShedPolicy(sc.Shed)
		}
		for _, cp := range corpus {
			if err := h.RegisterProgram(cp.p); err != nil {
				return Result{}, err
			}
		}
		srv := wire.NewServer(h)
		srv.Logf = func(string, ...any) {}
		if sc.Admission != (wire.Admission{}) {
			adm := sc.Admission
			srv.Admission = &adm
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return Result{}, err
		}
		proxy, err := netshape.New(addr, sc.Net)
		if err != nil {
			_ = srv.Close()
			return Result{}, err
		}
		nodes[i] = &node{h: h, srv: srv, proxy: proxy}
		addrs[i] = proxy.Addr()
	}
	m := ring.New(addrs, ring.DefaultVNodes, 42)
	for i, nd := range nodes {
		nd.srv.SetPlacement(m, addrs[i])
	}

	router := wire.NewRouter(addrs...)
	router.RetryBase = 2 * time.Millisecond
	router.RetryCap = 250 * time.Millisecond
	defer router.Close()

	// Hostile clients aim at hive 0 through its shaped address.
	stop := make(chan struct{})
	var hostile sync.WaitGroup
	var hostileErr atomic.Pointer[error]
	loris := sc.Admission.FrameTimeout * 2
	if loris <= 0 {
		loris = 25 * time.Millisecond
	}
	for i := 0; i < sc.SlowLoris; i++ {
		hostile.Add(1)
		go func() {
			defer hostile.Done()
			if err := SlowLoris(addrs[0], loris, stop); err != nil {
				hostileErr.CompareAndSwap(nil, &err)
			}
		}()
	}
	for i := 0; i < sc.Garbage; i++ {
		hostile.Add(1)
		go func(seed uint64) {
			defer hostile.Done()
			if err := Garbage(addrs[0], seed, stop); err != nil {
				hostileErr.CompareAndSwap(nil, &err)
			}
		}(sc.Seed ^ uint64(i+1)*0x9e3779b97f4a7c15)
	}

	var res Result
	var mu sync.Mutex
	var lats []time.Duration
	// Workers submit pipelined groups — many frames in flight on the
	// owner's connection — which is what lets ingest queues (and so the
	// hive's pressure gauge) actually build when the fleet is offered more
	// than it can chew.
	type job struct {
		programID string
		batches   [][]*trace.Trace
	}
	work := make(chan job)
	var workers sync.WaitGroup
	for w := 0; w < sc.Workers; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for j := range work {
				t0 := time.Now()
				accepted, err := router.SubmitTraceBatches(j.programID, j.batches)
				lat := time.Since(t0)
				mu.Lock()
				res.Submitted += int64(len(j.batches))
				if err != nil {
					for _, ok := range accepted {
						if !ok {
							res.Failed++
						}
					}
					var be *wire.BusyError
					if errors.As(err, &be) {
						res.BusyErrors++
					}
				} else {
					lats = append(lats, lat)
				}
				mu.Unlock()
			}
		}()
	}

	rng := stats.NewRNG(sc.Seed ^ 0xc1a05)
	sampleHeap := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > res.PeakHeapBytes {
			res.PeakHeapBytes = ms.HeapAlloc
		}
	}
	sampleHeap()
	for tick := 0; tick < sc.Ticks; tick++ {
		mult := sc.Overload * sc.Arrival(tick, sc.Ticks)
		n := int(float64(sc.BatchesPerTick)*mult + 0.5)
		for _, cp := range corpus {
			for start := 0; start < n; start += 16 {
				cnt := n - start
				if cnt > 16 {
					cnt = 16
				}
				group := make([][]*trace.Trace, cnt)
				for b := range group {
					batch := make([]*trace.Trace, sc.BatchSize)
					for k := range batch {
						batch[k] = cp.pool[rng.Intn(len(cp.pool))]
					}
					group[b] = batch
				}
				work <- job{programID: cp.p.ID, batches: group}
			}
		}
		if tick == sc.Ticks/2 {
			// Mid-overload injection: each crash signature must land even
			// while the fleet sheds, so the harness retries the submission
			// itself until it is acknowledged.
			for i := 0; i < sc.FirstSightFailures; i++ {
				cp := corpus[i]
				var err error
				for attempt := 0; attempt < 20; attempt++ {
					if err = router.SubmitTracesFor(cp.p.ID, []*trace.Trace{cp.crash}); err == nil {
						break
					}
					time.Sleep(5 * time.Millisecond)
				}
				if err != nil {
					close(work)
					workers.Wait()
					close(stop)
					hostile.Wait()
					return res, fmt.Errorf("chaos: first-sight crash for program %d never accepted: %w", i, err)
				}
			}
		}
		sampleHeap()
		res.Coverage = append(res.Coverage, fleetCoverage(nodes, corpus))
	}
	close(work)
	workers.Wait()
	sampleHeap()
	close(stop)
	hostile.Wait()
	if p := hostileErr.Load(); p != nil {
		return res, *p
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		res.P50 = lats[len(lats)/2]
		res.P99 = lats[len(lats)*99/100]
	}
	for _, nd := range nodes {
		ss := nd.h.ShedStats()
		res.Shed.Admitted += ss.Admitted
		res.Shed.AdmittedFirstSight += ss.AdmittedFirstSight
		res.Shed.ShedDuplicate += ss.ShedDuplicate
		res.Shed.ShedCovered += ss.ShedCovered
		res.Shed.Deferred += ss.Deferred
		if ss.PeakPressure > res.Shed.PeakPressure {
			res.Shed.PeakPressure = ss.PeakPressure
		}
		as := nd.srv.AdmissionStats()
		res.Admission.BusyReplies += as.BusyReplies
		res.Admission.PacedFrames += as.PacedFrames
		res.Admission.SlowLorisEvicted += as.SlowLorisEvicted
		res.Admission.ConnsRejected += as.ConnsRejected
		res.Admission.QueuedBytes += as.QueuedBytes
		res.Evictions += nd.h.SessionEvictions()
	}
	for i := 0; i < sc.FirstSightFailures; i++ {
		sig := corpus[i].crash.FailureSignature()
		for _, nd := range nodes {
			st, err := nd.h.ProgramStats(corpus[i].p.ID)
			if err != nil {
				continue
			}
			found := false
			for _, fr := range st.Failures {
				if fr.Signature == sig {
					found = true
					break
				}
			}
			if found {
				res.FirstSightLanded++
				break
			}
		}
	}
	return res, nil
}

// buildCorpus generates the programs and prepares each one's load.
func buildCorpus(sc Scenario) ([]*corpusProgram, error) {
	out := make([]*corpusProgram, sc.Programs)
	for i := range out {
		spec := proggen.Spec{
			Seed: sc.Seed + uint64(200+i), Depth: 4,
			Bugs:         []proggen.BugKind{proggen.BugCrash},
			TriggerWidth: 16,
		}
		if sc.Pathological {
			// Deep, loopy structure: long paths and wide trees make every
			// merge and every shed pricing walk expensive.
			spec.Depth, spec.Loops, spec.DetBranches = 7, 2, 12
		}
		p, bugs, err := proggen.Generate(spec)
		if err != nil {
			return nil, err
		}
		var bug proggen.Bug
		for _, b := range bugs {
			if b.Kind == proggen.BugCrash {
				bug = b
			}
		}
		cp := &corpusProgram{p: p}
		rng := stats.NewRNG(sc.Seed ^ uint64(i)*0x6a09e667f3bcc909)
		for len(cp.pool) < 24 {
			input := make([]int64, p.NumInputs)
			for k := range input {
				input[k] = rng.Int63n(256)
			}
			tr, err := runOnce(p, input, uint64(len(cp.pool)))
			if err != nil {
				return nil, err
			}
			if tr.Outcome.IsFailure() {
				continue // the pool is the benign background load
			}
			cp.pool = append(cp.pool, tr)
		}
		input := make([]int64, p.NumInputs)
		input[bug.Input] = bug.TriggerLo
		crash, err := runOnce(p, input, 9999)
		if err != nil {
			return nil, err
		}
		if !crash.Outcome.IsFailure() {
			return nil, fmt.Errorf("chaos: program %d trigger input did not crash", i)
		}
		cp.crash = crash
		out[i] = cp
	}
	return out, nil
}

// runOnce executes p under full capture and returns the trace.
func runOnce(p *prog.Program, input []int64, seq uint64) (*trace.Trace, error) {
	col := trace.NewCollector(p, trace.CaptureFull, 0, seq+1)
	m, err := prog.NewMachine(p, prog.Config{Input: input, Observer: col})
	if err != nil {
		return nil, err
	}
	res := m.Run()
	return col.Finish(fmt.Sprintf("chaos-pod-%d", seq%4), seq, res, input, trace.PrivacyHashed, "fleet"), nil
}

// fleetCoverage sums each program's best EdgesCovered across the fleet
// (only the owner's tree is nonzero under correct routing).
func fleetCoverage(nodes []*node, corpus []*corpusProgram) int {
	total := 0
	for _, cp := range corpus {
		best := 0
		for _, nd := range nodes {
			st, err := nd.h.ProgramStats(cp.p.ID)
			if err != nil {
				continue
			}
			if st.Tree.EdgesCovered > best {
				best = st.Tree.EdgesCovered
			}
		}
		total += best
	}
	return total
}
