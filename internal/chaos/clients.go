package chaos

import (
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"repro/internal/stats"
	"repro/internal/wire"
)

// HostileFrames is a deterministic corpus of malformed or adversarial
// wire byte streams, one entry per attack shape. The garbage-client
// scenarios replay it against live servers and FuzzHostileFrame seeds
// its corpus from it, so every shape that has ever taken a server down
// is pinned in both harnesses.
func HostileFrames(seed uint64) [][]byte {
	rng := stats.NewRNG(seed)
	frames := [][]byte{
		{},                       // connect, say nothing, hang up
		{0x00},                   // truncated length header
		{0x00, 0x00, 0x00},       // still truncated
		{0x00, 0x00, 0x00, 0x00}, // zero-size frame (size must include the type byte)
		{0xff, 0xff, 0xff, 0xff}, // maximal size claim, no body
	}
	// Size claim just past the frame limit: must be rejected before any
	// allocation of that magnitude.
	over := make([]byte, 5)
	binary.BigEndian.PutUint32(over, uint32(wire.MaxFrameSize+1))
	over[4] = byte(wire.MsgSubmitTraces)
	frames = append(frames, over)
	// Unknown message type carrying a large-but-legal claim and no body:
	// the reader must not wait forever for bytes that never come, and the
	// worker must answer an error, not crash.
	unknown := make([]byte, 5)
	binary.BigEndian.PutUint32(unknown, 1<<20)
	unknown[4] = 0xee
	frames = append(frames, unknown)
	// Well-formed header, garbage payloads: JSON decoders and the
	// columnar codec see attacker-controlled bytes.
	for _, mt := range []wire.MsgType{wire.MsgHello, wire.MsgSubmitTraces, wire.MsgSubmitBatchColumnar, wire.MsgCoalesced} {
		body := []byte(`{"truncated":`)
		f := make([]byte, 5, 5+len(body))
		binary.BigEndian.PutUint32(f, uint32(1+len(body)))
		f[4] = byte(mt)
		frames = append(frames, append(f, body...))
	}
	// A coalesced frame whose inner frame lies about its own length.
	inner := make([]byte, 5)
	binary.BigEndian.PutUint32(inner, 1<<30)
	inner[4] = byte(wire.MsgSubmitBatchColumnar)
	co := make([]byte, 5, 5+len(inner))
	binary.BigEndian.PutUint32(co, uint32(1+len(inner)))
	co[4] = byte(wire.MsgCoalesced)
	frames = append(frames, append(co, inner...))
	// Random byte soup of assorted lengths, deterministically seeded.
	for i := 0; i < 8; i++ {
		n := 1 + rng.Intn(512)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(rng.Uint64())
		}
		frames = append(frames, b)
	}
	return frames
}

// SlowLoris holds one connection hostage: it starts a plausible frame
// (legal header claiming a 4 KiB submission) and then dribbles one byte
// per interval, never finishing. Against an unprotected server this
// parks a worker forever; with Admission.FrameTimeout set the server
// must evict it. Returns when stop closes or the server hangs up —
// eviction surfaces as a (desired) write/read error, reported as nil.
func SlowLoris(addr string, interval time.Duration, stop <-chan struct{}) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("chaos: slow-loris dial %s: %w", addr, err)
	}
	defer conn.Close()
	payload := make([]byte, 5, 5+4096)
	binary.BigEndian.PutUint32(payload, 4097)
	payload[4] = byte(wire.MsgSubmitTraces)
	payload = append(payload, make([]byte, 4096)...)
	for i := range payload {
		if _, err := conn.Write(payload[i : i+1]); err != nil {
			return nil // evicted: the attack was absorbed
		}
		select {
		case <-stop:
			return nil
		case <-time.After(interval):
		}
	}
	// Frame completed (interval too generous for the configured timeout);
	// hold the connection half-open until told to stop.
	<-stop
	return nil
}

// Garbage hammers addr with the hostile corpus: dial, replay malformed
// streams until the server hangs up, redial, repeat. Deterministic per
// seed. Runs until stop closes; persistent dial failure is returned so
// a scenario can tell "server defended itself" from "server died".
func Garbage(addr string, seed uint64, stop <-chan struct{}) error {
	rng := stats.NewRNG(seed)
	corpus := HostileFrames(seed)
	dialFails := 0
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			if dialFails++; dialFails > 50 {
				return fmt.Errorf("chaos: garbage client cannot reach %s: %w", addr, err)
			}
			select {
			case <-stop:
				return nil
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		dialFails = 0
		for {
			if _, err := conn.Write(corpus[rng.Intn(len(corpus))]); err != nil {
				break
			}
			select {
			case <-stop:
				_ = conn.Close()
				return nil
			case <-time.After(time.Millisecond):
			}
		}
		_ = conn.Close()
	}
}
