package chaos

import "math"

// Arrival maps a tick in [0, ticks) to a load multiplier >= 0. The
// scenario driver multiplies it with the scenario's base rate and
// overload factor, so an Arrival describes only the *shape* of demand
// over time — steady, bursty, or cyclic — independent of its magnitude.
type Arrival func(tick, ticks int) float64

// Steady is constant demand: the control shape overload factors are
// measured against.
func Steady() Arrival {
	return func(int, int) float64 { return 1 }
}

// FlashCrowd is baseline demand with a Gaussian burst: peakAt and width
// are fractions of the run (peak position and standard deviation), and
// the multiplier reaches magnitude at the peak. The shape every
// launch-day outage graph shares.
func FlashCrowd(peakAt, width, magnitude float64) Arrival {
	if width <= 0 {
		width = 0.1
	}
	return func(tick, ticks int) float64 {
		if ticks <= 1 {
			return magnitude
		}
		x := float64(tick) / float64(ticks-1)
		d := (x - peakAt) / width
		return 1 + (magnitude-1)*math.Exp(-d*d/2)
	}
}

// Diurnal is sinusoidal demand: cycles full periods over the run,
// swinging ±amplitude around 1 (clamped at 0). The slow tide a fleet
// sized for the trough must shed at the crest.
func Diurnal(cycles int, amplitude float64) Arrival {
	return func(tick, ticks int) float64 {
		if ticks <= 1 {
			return 1
		}
		x := float64(tick) / float64(ticks-1)
		m := 1 + amplitude*math.Sin(2*math.Pi*float64(cycles)*x)
		if m < 0 {
			return 0
		}
		return m
	}
}
