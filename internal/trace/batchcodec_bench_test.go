package trace

import (
	"math/rand"
	"testing"
)

// BenchmarkBatchCodec compares the per-trace v2 codec against the columnar
// batch codec on the same 64-trace drain-shaped batch, for the three hot
// operations: encode (pod side), decode (hive side — full materialization
// for v2, zero-copy view indexing for columnar), and consume (reading every
// trace's branch column, the tree-merge access pattern).
func BenchmarkBatchCodec(b *testing.B) {
	rng := rand.New(rand.NewSource(99))
	batch := make([]*Trace, 64)
	for i := range batch {
		tr := randomTrace(rng, "prog-bench")
		tr.PodID = "pod-bench"
		batch[i] = tr
	}
	var perTrace [][]byte
	for _, tr := range batch {
		perTrace = append(perTrace, Encode(tr))
	}
	columnar, err := EncodeBatch("prog-bench", batch)
	if err != nil {
		b.Fatal(err)
	}
	total := 0
	for _, e := range perTrace {
		total += len(e)
	}
	b.Logf("encoded size: v2 %d bytes, columnar %d bytes (%.2fx)",
		total, len(columnar), float64(len(columnar))/float64(total))

	b.Run("encode-v2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, tr := range batch {
				Encode(tr)
			}
		}
	})
	b.Run("encode-columnar", func(b *testing.B) {
		b.ReportAllocs()
		var dst []byte
		for i := 0; i < b.N; i++ {
			dst, err = AppendBatch(dst[:0], "prog-bench", batch)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-v2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, e := range perTrace {
				if _, err := Decode(e); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("decode-columnar-view", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v, err := DecodeBatch(columnar)
			if err != nil {
				b.Fatal(err)
			}
			v.Release()
		}
	})
	b.Run("consume-v2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, e := range perTrace {
				tr, err := Decode(e)
				if err != nil {
					b.Fatal(err)
				}
				for range tr.Branches {
				}
			}
		}
	})
	b.Run("consume-columnar-view", func(b *testing.B) {
		b.ReportAllocs()
		var path []BranchEvent
		for i := 0; i < b.N; i++ {
			v, err := DecodeBatch(columnar)
			if err != nil {
				b.Fatal(err)
			}
			for k := 0; k < v.Len(); k++ {
				path = v.AppendBranches(path[:0], k)
			}
			v.Release()
		}
	})
}
