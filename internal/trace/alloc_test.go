package trace

import (
	"math/rand"
	"testing"

	"repro/internal/race"
)

// Allocation-regression guards for the codec hot paths: the batch encoder
// and the view decoder run per pod drain and per hive ingest respectively,
// so a stray per-trace allocation multiplies by the fleet. Bounds are
// per-batch (64 traces) with slack for pool churn, not per-trace: the
// per-trace budget they enforce is < 0.1 allocations.

// allocBatch builds a deterministic 64-trace benign batch.
func allocBatch() []*Trace {
	rng := rand.New(rand.NewSource(99))
	batch := make([]*Trace, 64)
	for i := range batch {
		tr := randomTrace(rng, "prog-alloc")
		tr.PodID = "pod-alloc" // single-pod dictionary, the drain shape
		batch[i] = tr
	}
	return batch
}

func TestAllocsEncodeBatch(t *testing.T) {
	if race.Enabled {
		t.Skip("alloc counts are skewed under the race detector")
	}
	batch := allocBatch()
	var dst []byte
	var err error
	// Warm the encoder pool and the dst capacity.
	if dst, err = AppendBatch(dst[:0], "prog-alloc", batch); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		dst, err = AppendBatch(dst[:0], "prog-alloc", batch)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg > 2 {
		t.Fatalf("encode of a 64-trace batch costs %.1f allocs; want <= 2 (pool-churn slack over 0)", avg)
	}
}

func TestAllocsDecodeBatchView(t *testing.T) {
	if race.Enabled {
		t.Skip("alloc counts are skewed under the race detector")
	}
	enc, err := EncodeBatch("prog-alloc", allocBatch())
	if err != nil {
		t.Fatal(err)
	}
	// Warm the view scratch pool.
	v, err := DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	v.Release()
	avg := testing.AllocsPerRun(200, func() {
		v, err := DecodeBatch(enc)
		if err != nil {
			t.Fatal(err)
		}
		v.Release()
	})
	// Budget: the view struct, the pod dictionary slice + its one string,
	// plus pool-churn slack — and nothing per trace.
	if avg > 6 {
		t.Fatalf("view decode of a 64-trace batch costs %.1f allocs; want <= 6", avg)
	}
}

func TestAllocsViewConsume(t *testing.T) {
	if race.Enabled {
		t.Skip("alloc counts are skewed under the race detector")
	}
	enc, err := EncodeBatch("prog-alloc", allocBatch())
	if err != nil {
		t.Fatal(err)
	}
	v, err := DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	var path []BranchEvent
	var input []int64
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < v.Len(); i++ {
			path = v.AppendBranches(path[:0], i)
			input = v.AppendInput(input[:0], i)
			_ = v.PodID(i)
			_ = v.Outcome(i)
			_ = v.Seq(i)
		}
	})
	if avg > 0.5 {
		t.Fatalf("consuming a 64-trace view costs %.1f allocs; want 0", avg)
	}
}
