package trace

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/prog"
)

// codecVersion is bumped on any wire-incompatible change.
const codecVersion = 2

// ErrCodec is returned (wrapped) for any malformed encoded trace.
var ErrCodec = errors.New("trace: malformed encoding")

// Encode serializes the trace into a compact varint-based binary form. The
// encoding is the pod→hive payload; it is deliberately independent of
// encoding/json so that capture-overhead measurements reflect a realistic
// telemetry codec.
func Encode(t *Trace) []byte {
	// Rough capacity guess: header + 1-3 bytes per event.
	buf := make([]byte, 0, 64+3*len(t.Branches)+8*len(t.Syscalls)+6*len(t.Locks))
	buf = append(buf, codecVersion)
	buf = appendString(buf, t.ProgramID)
	buf = appendString(buf, t.PodID)
	buf = binary.AppendUvarint(buf, t.Seq)
	buf = append(buf, byte(t.Mode))
	buf = binary.AppendUvarint(buf, uint64(t.SampleRate))
	buf = binary.AppendUvarint(buf, uint64(t.SamplePhase))
	buf = binary.AppendUvarint(buf, uint64(t.SampleK))

	buf = binary.AppendUvarint(buf, uint64(len(t.Branches)))
	for _, b := range t.Branches {
		v := uint64(b.ID) << 1
		if b.Taken {
			v |= 1
		}
		buf = binary.AppendUvarint(buf, v)
	}

	buf = binary.AppendUvarint(buf, uint64(len(t.Syscalls)))
	for _, s := range t.Syscalls {
		buf = binary.AppendUvarint(buf, uint64(s.TID))
		buf = binary.AppendVarint(buf, s.Sysno)
		buf = binary.AppendVarint(buf, s.Ret)
	}

	buf = binary.AppendUvarint(buf, uint64(len(t.Locks)))
	for _, l := range t.Locks {
		buf = binary.AppendUvarint(buf, uint64(l.TID))
		buf = binary.AppendUvarint(buf, uint64(l.LockID))
		buf = binary.AppendUvarint(buf, uint64(l.PC))
		if l.Acquire {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}

	buf = appendString(buf, t.ScheduleHash)
	buf = append(buf, byte(t.Outcome))
	buf = binary.AppendVarint(buf, int64(t.FaultPC))
	buf = binary.AppendVarint(buf, t.AssertID)
	buf = binary.AppendUvarint(buf, uint64(t.Steps))

	buf = binary.AppendUvarint(buf, uint64(len(t.Deadlock)))
	for _, w := range t.Deadlock {
		buf = binary.AppendUvarint(buf, uint64(w.TID))
		buf = binary.AppendUvarint(buf, uint64(w.PC))
		buf = binary.AppendUvarint(buf, uint64(w.Wants))
	}

	buf = appendString(buf, t.InputDigest)
	buf = append(buf, byte(t.Privacy))
	buf = binary.AppendUvarint(buf, uint64(len(t.Input)))
	for _, v := range t.Input {
		buf = binary.AppendVarint(buf, v)
	}
	buf = binary.AppendUvarint(buf, uint64(len(t.InputBuckets)))
	for _, v := range t.InputBuckets {
		buf = binary.AppendVarint(buf, v)
	}
	return buf
}

// Decode parses a trace encoded by Encode.
func Decode(data []byte) (*Trace, error) {
	d := &decoder{buf: data}
	if v := d.byte(); v != codecVersion {
		return nil, fmt.Errorf("%w: version %d", ErrCodec, v)
	}
	t := &Trace{}
	t.ProgramID = d.string()
	t.PodID = d.string()
	t.Seq = d.uvarint()
	t.Mode = CaptureMode(d.byte())
	t.SampleRate = uint32(d.uvarint())
	t.SamplePhase = uint32(d.uvarint())
	t.SampleK = uint32(d.uvarint())

	// Zero-length sections decode to nil (not empty non-nil slices), so a
	// decoded trace is DeepEqual to a Clone of the original — the property
	// hive persistence round-trip tests rely on.
	nb := int(d.uvarint())
	if err := d.checkCount(nb, 1); err != nil {
		return nil, err
	}
	if nb > 0 {
		t.Branches = make([]BranchEvent, nb)
		for i := 0; i < nb; i++ {
			v := d.uvarint()
			t.Branches[i] = BranchEvent{ID: int32(v >> 1), Taken: v&1 == 1}
		}
	}

	ns := int(d.uvarint())
	if err := d.checkCount(ns, 3); err != nil {
		return nil, err
	}
	if ns > 0 {
		t.Syscalls = make([]SyscallEvent, ns)
		for i := 0; i < ns; i++ {
			t.Syscalls[i] = SyscallEvent{
				TID:   int32(d.uvarint()),
				Sysno: d.varint(),
				Ret:   d.varint(),
			}
		}
	}

	nl := int(d.uvarint())
	if err := d.checkCount(nl, 4); err != nil {
		return nil, err
	}
	if nl > 0 {
		t.Locks = make([]LockEvent, nl)
		for i := 0; i < nl; i++ {
			t.Locks[i] = LockEvent{
				TID:     int32(d.uvarint()),
				LockID:  int32(d.uvarint()),
				PC:      int32(d.uvarint()),
				Acquire: d.byte() == 1,
			}
		}
	}

	t.ScheduleHash = d.string()
	t.Outcome = prog.Outcome(d.byte())
	t.FaultPC = int32(d.varint())
	t.AssertID = d.varint()
	t.Steps = int64(d.uvarint())

	nd := int(d.uvarint())
	if err := d.checkCount(nd, 3); err != nil {
		return nil, err
	}
	if nd > 0 {
		t.Deadlock = make([]DeadlockWait, nd)
		for i := 0; i < nd; i++ {
			t.Deadlock[i] = DeadlockWait{
				TID:   int32(d.uvarint()),
				PC:    int32(d.uvarint()),
				Wants: int32(d.uvarint()),
			}
		}
	}

	t.InputDigest = d.string()
	t.Privacy = PrivacyLevel(d.byte())
	ni := int(d.uvarint())
	if err := d.checkCount(ni, 1); err != nil {
		return nil, err
	}
	if ni > 0 {
		t.Input = make([]int64, ni)
		for i := range t.Input {
			t.Input[i] = d.varint()
		}
	}
	nib := int(d.uvarint())
	if err := d.checkCount(nib, 1); err != nil {
		return nil, err
	}
	if nib > 0 {
		t.InputBuckets = make([]int64, nib)
		for i := range t.InputBuckets {
			t.InputBuckets[i] = d.varint()
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return t, nil
}

// appendString writes a length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decoder is a cursor over an encoded trace that latches the first error.
type decoder struct {
	buf []byte
	pos int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated at offset %d", ErrCodec, d.pos)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || d.pos >= len(d.buf) {
		d.fail()
		return 0
	}
	b := d.buf[d.pos]
	d.pos++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) string() string {
	n := int(d.uvarint())
	if d.err != nil {
		return ""
	}
	if n < 0 || d.pos+n > len(d.buf) {
		d.fail()
		return ""
	}
	s := string(d.buf[d.pos : d.pos+n])
	d.pos += n
	return s
}

// checkCount guards slice allocations against hostile counts: the remaining
// bytes must be able to hold count items of at least minBytes each.
func (d *decoder) checkCount(count, minBytes int) error {
	if d.err != nil {
		return d.err
	}
	// Divide instead of multiplying: a hostile count near the int ceiling
	// must not overflow the plausibility product.
	if count < 0 || count > (len(d.buf)-d.pos)/minBytes {
		d.err = fmt.Errorf("%w: implausible count %d at offset %d", ErrCodec, count, d.pos)
		return d.err
	}
	return nil
}
