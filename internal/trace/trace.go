// Package trace defines execution by-products (paper §3.1): branch
// bit-vectors, syscall summaries, lock/schedule events and outcome labels,
// together with a capture collector (the pod-side instrumentation sink), a
// compact binary codec for the wire, and the privacy filter that controls
// how much end-user data leaves the machine.
package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"repro/internal/prog"
)

// CaptureMode selects which branch events the pod records.
type CaptureMode uint8

// Capture modes (paper §3.1). Full records every branch. ExternalOnly
// records only input-dependent branches — the deterministic remainder is
// reconstructible by the hive. Sampled records a coordinated pseudo-random
// subset (cooperative bug isolation style, ref [18]); a sampled trace
// specifies a *family* of paths that later aggregation narrows down.
const (
	CaptureFull CaptureMode = iota + 1
	CaptureExternalOnly
	CaptureSampled
	// CaptureCoordinated records only branch sites with
	// ID % SampleK == SamplePhase: the fleet partitions the site space, so
	// each trace is cheap but the *union* across pods observing the same
	// execution recovers every site — the paper's "coordinated fashion"
	// sampling whose families aggregation narrows back down.
	CaptureCoordinated
)

var captureNames = map[CaptureMode]string{
	CaptureFull:         "full",
	CaptureExternalOnly: "external-only",
	CaptureSampled:      "sampled",
	CaptureCoordinated:  "coordinated",
}

// String returns the mode label.
func (m CaptureMode) String() string {
	if s, ok := captureNames[m]; ok {
		return s
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// BranchEvent is one dynamic branch decision.
type BranchEvent struct {
	// ID is the static branch id within the program.
	ID int32
	// Taken reports whether the branch jumped to its target.
	Taken bool
}

// String renders the event as "#id+"/"#id-".
func (b BranchEvent) String() string {
	if b.Taken {
		return fmt.Sprintf("#%d+", b.ID)
	}
	return fmt.Sprintf("#%d-", b.ID)
}

// SyscallEvent summarizes one system call.
type SyscallEvent struct {
	TID   int32
	Sysno int64
	Ret   int64
}

// LockEvent records a lock acquisition or release.
type LockEvent struct {
	TID     int32
	LockID  int32
	PC      int32
	Acquire bool
}

// DeadlockWait is one edge of a reported deadlock cycle: the thread blocked
// at PC wanting lock Wants.
type DeadlockWait struct {
	TID   int32
	PC    int32
	Wants int32
}

// Trace is one execution's by-products, as shipped from pod to hive.
type Trace struct {
	// ProgramID identifies the program (content hash).
	ProgramID string
	// PodID identifies the reporting pod.
	PodID string
	// Seq is the pod-local trace sequence number.
	Seq uint64
	// Mode is the capture mode the pod used.
	Mode CaptureMode
	// SampleRate is the per-branch recording probability for CaptureSampled
	// (stored as rate*65536), zero otherwise.
	SampleRate uint32
	// SamplePhase and SampleK identify the coordinated-sampling partition
	// for CaptureCoordinated (sites with ID % SampleK == SamplePhase).
	SamplePhase uint32
	SampleK     uint32

	// Branches is the ordered dynamic branch record. Under
	// CaptureExternalOnly it contains only input-dependent branches; under
	// CaptureSampled, a pseudo-random subset.
	Branches []BranchEvent
	// Syscalls summarizes external events in call order.
	Syscalls []SyscallEvent
	// Locks records the lock acquisition/release sequence.
	Locks []LockEvent
	// ScheduleHash digests the thread-schedule decisions (multi-threaded
	// programs only).
	ScheduleHash string

	// Outcome labels the execution.
	Outcome prog.Outcome
	// FaultPC and AssertID locate failures (-1 when not applicable).
	FaultPC  int32
	AssertID int64
	// Deadlock carries the wait cycle for OutcomeDeadlock.
	Deadlock []DeadlockWait
	// Steps is the executed instruction count (the "cost" of the run).
	Steps int64

	// InputDigest is a salted hash of the input vector; always present.
	InputDigest string
	// Input is the raw input vector; present only at PrivacyRaw.
	Input []int64
	// InputBuckets is the coarsened input vector; present at
	// PrivacyBucketed.
	InputBuckets []int64
	// Privacy records the level the pod applied before shipping.
	Privacy PrivacyLevel
}

// PathKey returns a stable digest of the branch decision sequence, used by
// the hive to deduplicate identical paths cheaply.
func (t *Trace) PathKey() string {
	h := sha256.New()
	var buf [8]byte
	for _, b := range t.Branches {
		v := uint64(b.ID) << 1
		if b.Taken {
			v |= 1
		}
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(t.ScheduleHash))
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// Bits packs the branch decisions into the bit-vector form the paper
// describes ("one bit per branch ... encoding an execution as a bit-vector").
// Bit i corresponds to Branches[i].Taken.
func (t *Trace) Bits() []byte {
	out := make([]byte, (len(t.Branches)+7)/8)
	for i, b := range t.Branches {
		if b.Taken {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// FailureSignature groups failures that are "the same bug" for aggregation:
// outcome kind plus fault location. This mirrors the granularity at which
// the hive synthesizes fixes.
func (t *Trace) FailureSignature() string {
	if !t.Outcome.IsFailure() {
		return ""
	}
	return fmt.Sprintf("%s@%d#%d", t.Outcome, t.FaultPC, t.AssertID)
}

// Clone returns a deep copy.
func (t *Trace) Clone() *Trace {
	c := *t
	c.Branches = append([]BranchEvent(nil), t.Branches...)
	c.Syscalls = append([]SyscallEvent(nil), t.Syscalls...)
	c.Locks = append([]LockEvent(nil), t.Locks...)
	c.Deadlock = append([]DeadlockWait(nil), t.Deadlock...)
	c.Input = append([]int64(nil), t.Input...)
	c.InputBuckets = append([]int64(nil), t.InputBuckets...)
	return &c
}

// DigestInput computes the salted input digest used in Trace.InputDigest.
func DigestInput(salt string, input []int64) string {
	h := sha256.New()
	h.Write([]byte(salt))
	var buf [8]byte
	for _, v := range input {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}
