package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// PrivacyLevel controls how much end-user input data ships with a trace.
// The paper (§3.1, citing Castro et al.) notes traces may disclose private
// information and calls for a principled framework to balance control-flow
// detail against privacy; these levels are the knob the experiments sweep.
type PrivacyLevel uint8

// Privacy levels, from most revealing to least.
const (
	// PrivacyRaw ships the full input vector (maximum diagnostic utility).
	PrivacyRaw PrivacyLevel = iota + 1
	// PrivacyBucketed ships inputs coarsened to buckets of BucketWidth,
	// preserving rough magnitude but not exact values.
	PrivacyBucketed
	// PrivacyHashed ships only a salted digest: the hive can correlate
	// repeat inputs but not recover them.
	PrivacyHashed
	// PrivacyOpaque ships nothing input-derived except the digest salted
	// per-pod, so even cross-pod correlation is impossible.
	PrivacyOpaque
)

// BucketWidth is the coarsening granularity for PrivacyBucketed.
const BucketWidth = 16

var privacyNames = map[PrivacyLevel]string{
	PrivacyRaw:      "raw",
	PrivacyBucketed: "bucketed",
	PrivacyHashed:   "hashed",
	PrivacyOpaque:   "opaque",
}

// String returns the level label.
func (p PrivacyLevel) String() string {
	if s, ok := privacyNames[p]; ok {
		return s
	}
	return fmt.Sprintf("privacy(%d)", uint8(p))
}

// ApplyPrivacy populates the input-derived fields of t from input according
// to the level. salt is the digest salt: a fleet-wide constant for levels
// Raw..Hashed (enabling cross-pod correlation of identical inputs) and must
// be the pod's own secret for PrivacyOpaque.
func ApplyPrivacy(t *Trace, input []int64, level PrivacyLevel, salt string) {
	t.Privacy = level
	t.Input = nil
	t.InputBuckets = nil
	t.InputDigest = DigestInput(salt, input)
	switch level {
	case PrivacyRaw:
		t.Input = append([]int64(nil), input...)
	case PrivacyBucketed:
		t.InputBuckets = make([]int64, len(input))
		for i, v := range input {
			t.InputBuckets[i] = bucket(v)
		}
	case PrivacyHashed, PrivacyOpaque:
		// Digest only.
	}
}

func bucket(v int64) int64 {
	if v >= 0 {
		return v / BucketWidth
	}
	return -((-v + BucketWidth - 1) / BucketWidth)
}

// GuessInput simulates an attacker at the hive who tries to recover the
// user's input from a trace, given the candidate input domain [0, domain)
// per element. It returns the number of candidate vectors consistent with
// the shipped data, considering only the first input element for
// tractability (the experiments use 1-2 element inputs). A count of 1 means
// full disclosure; domain means no information.
func GuessInput(t *Trace, domain int64, salt string) int64 {
	switch t.Privacy {
	case PrivacyRaw:
		return 1
	case PrivacyBucketed:
		if len(t.InputBuckets) == 0 {
			return domain
		}
		b := t.InputBuckets[0]
		count := int64(0)
		for v := int64(0); v < domain; v++ {
			if bucket(v) == b {
				count++
			}
		}
		return count
	case PrivacyHashed:
		// The attacker can brute-force the salted digest over the domain
		// (the salt is fleet-wide and known to the hive).
		count := int64(0)
		rest := make([]int64, 0, 4)
		if len(t.Input) > 1 {
			rest = t.Input[1:]
		}
		for v := int64(0); v < domain; v++ {
			cand := append([]int64{v}, rest...)
			if DigestInput(salt, cand) == t.InputDigest {
				count++
			}
		}
		if count == 0 {
			// Multi-element inputs: digest covers all elements, brute force
			// over one coordinate fails — treat as no disclosure.
			return domain
		}
		return count
	default: // PrivacyOpaque
		return domain
	}
}

// scheduleHash digests a schedule decision sequence.
func scheduleHash(script []uint8) string {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(script)))
	h.Write(n[:])
	h.Write(script)
	return hex.EncodeToString(h.Sum(nil)[:8])
}
