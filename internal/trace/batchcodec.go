package trace

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/prog"
)

// batchVersion is bumped on any wire-incompatible change to the columnar
// batch encoding.
const batchVersion = 1

// The columnar batch codec is the fleet-scale answer to per-trace encode
// cost: a whole pod batch is serialized column-wise — the program ID once,
// a pod-ID dictionary, delta-varint sequence numbers, raw byte columns for
// the per-trace enums, and one concatenated slab per variable-length
// section (branches, syscalls, locks, deadlock waits, strings, inputs)
// with per-trace counts and byte lengths. The layout buys three things:
//
//   - Encoding amortizes the per-trace framing across the batch (shared
//     header, one length column instead of N interleaved prefixes).
//   - Decoding can stop at *indexing*: BatchView records column offsets
//     into the original buffer and serves field reads directly out of it,
//     so the hive ingests a batch without materializing Trace structs.
//   - The validated frame bytes are a self-contained replayable record:
//     the hive journals them verbatim (journal.OpBatchColumnar), so one
//     serialization per trace survives pod → wire → hive → journal.
//
// Layout (all integers varint unless noted):
//
//	byte    batchVersion
//	string  programID
//	uvarint podCount, then podCount strings (the pod-ID dictionary)
//	uvarint n (trace count)
//	scalar columns, each n entries:
//	  pod index (uvarint), mode (raw byte), outcome (raw byte),
//	  privacy (raw byte), sampleRate/samplePhase/sampleK (uvarint),
//	  seq (first absolute, then zigzag deltas), faultPC/assertID
//	  (varint), steps (uvarint)
//	variable sections, each: counts column (events per trace, omitted for
//	string sections), lens column (slab bytes per trace), slab:
//	  branches, syscalls, locks, deadlock, scheduleHash, inputDigest,
//	  input, inputBuckets
//
// Event encodings inside the slabs are identical to the per-trace v2
// codec, so the columnar form is a reshuffling, not a new dialect.

// batchSection indexes the variable-length sections in layout order.
const (
	secBranches = iota
	secSyscalls
	secLocks
	secDeadlock
	secSchedHash
	secInputDigest
	secInput
	secInputBuckets
	numSections
)

// sectionHasCounts reports whether the section carries an event-count
// column distinct from its byte-length column (string sections do not).
func sectionHasCounts(sec int) bool {
	return sec != secSchedHash && sec != secInputDigest
}

// --- encoder ---

// batchEncoder is the pooled scratch for AppendBatch: per-section length
// columns and the slab staging buffer survive across batches.
type batchEncoder struct {
	counts [numSections][]uint32
	lens   [numSections][]uint32
	slabs  [numSections][]byte
	pods   []string
	podIdx []uint32
}

var batchEncoderPool = sync.Pool{New: func() any { return &batchEncoder{} }}

// EncodeBatch serializes a whole batch column-wise. Every trace must carry
// programID (the header stores it once); an empty batch is valid.
func EncodeBatch(programID string, traces []*Trace) ([]byte, error) {
	return AppendBatch(nil, programID, traces)
}

// AppendBatch appends the columnar encoding of traces to dst and returns
// the extended slice. Every trace must describe programID — the batch
// header is the frame's single source of truth for it. Scratch state is
// pooled: steady-state encoding allocates only when dst needs to grow.
func AppendBatch(dst []byte, programID string, traces []*Trace) ([]byte, error) {
	for _, tr := range traces {
		if tr.ProgramID != programID {
			return dst, fmt.Errorf("%w: trace for program %q in batch for %q", ErrCodec, tr.ProgramID, programID)
		}
	}
	e := batchEncoderPool.Get().(*batchEncoder)
	defer batchEncoderPool.Put(e)
	e.pods = e.pods[:0]
	e.podIdx = e.podIdx[:0]
	for s := 0; s < numSections; s++ {
		e.counts[s] = e.counts[s][:0]
		e.lens[s] = e.lens[s][:0]
		e.slabs[s] = e.slabs[s][:0]
	}

	// Pod dictionary: linear scan — batches come from one pod (a drain) or
	// a handful (hive-side re-encode), never enough to want a map.
	for _, tr := range traces {
		idx := -1
		for i, p := range e.pods {
			if p == tr.PodID {
				idx = i
				break
			}
		}
		if idx < 0 {
			idx = len(e.pods)
			e.pods = append(e.pods, tr.PodID)
		}
		e.podIdx = append(e.podIdx, uint32(idx))
	}

	// Stage the variable sections: concatenate each trace's events into the
	// section slab, recording per-trace event counts and byte lengths.
	for _, tr := range traces {
		stageSection(e, secBranches, len(tr.Branches), func(buf []byte) []byte {
			for _, b := range tr.Branches {
				v := uint64(b.ID) << 1
				if b.Taken {
					v |= 1
				}
				buf = binary.AppendUvarint(buf, v)
			}
			return buf
		})
		stageSection(e, secSyscalls, len(tr.Syscalls), func(buf []byte) []byte {
			for _, s := range tr.Syscalls {
				buf = binary.AppendUvarint(buf, uint64(s.TID))
				buf = binary.AppendVarint(buf, s.Sysno)
				buf = binary.AppendVarint(buf, s.Ret)
			}
			return buf
		})
		stageSection(e, secLocks, len(tr.Locks), func(buf []byte) []byte {
			for _, l := range tr.Locks {
				buf = binary.AppendUvarint(buf, uint64(l.TID))
				buf = binary.AppendUvarint(buf, uint64(l.LockID))
				buf = binary.AppendUvarint(buf, uint64(l.PC))
				if l.Acquire {
					buf = append(buf, 1)
				} else {
					buf = append(buf, 0)
				}
			}
			return buf
		})
		stageSection(e, secDeadlock, len(tr.Deadlock), func(buf []byte) []byte {
			for _, w := range tr.Deadlock {
				buf = binary.AppendUvarint(buf, uint64(w.TID))
				buf = binary.AppendUvarint(buf, uint64(w.PC))
				buf = binary.AppendUvarint(buf, uint64(w.Wants))
			}
			return buf
		})
		stageSection(e, secSchedHash, 0, func(buf []byte) []byte {
			return append(buf, tr.ScheduleHash...)
		})
		stageSection(e, secInputDigest, 0, func(buf []byte) []byte {
			return append(buf, tr.InputDigest...)
		})
		stageSection(e, secInput, len(tr.Input), func(buf []byte) []byte {
			for _, v := range tr.Input {
				buf = binary.AppendVarint(buf, v)
			}
			return buf
		})
		stageSection(e, secInputBuckets, len(tr.InputBuckets), func(buf []byte) []byte {
			for _, v := range tr.InputBuckets {
				buf = binary.AppendVarint(buf, v)
			}
			return buf
		})
	}

	// Header.
	dst = append(dst, batchVersion)
	dst = appendString(dst, programID)
	dst = binary.AppendUvarint(dst, uint64(len(e.pods)))
	for _, p := range e.pods {
		dst = appendString(dst, p)
	}
	dst = binary.AppendUvarint(dst, uint64(len(traces)))

	// Scalar columns.
	for _, idx := range e.podIdx {
		dst = binary.AppendUvarint(dst, uint64(idx))
	}
	for _, tr := range traces {
		dst = append(dst, byte(tr.Mode))
	}
	for _, tr := range traces {
		dst = append(dst, byte(tr.Outcome))
	}
	for _, tr := range traces {
		dst = append(dst, byte(tr.Privacy))
	}
	for _, tr := range traces {
		dst = binary.AppendUvarint(dst, uint64(tr.SampleRate))
	}
	for _, tr := range traces {
		dst = binary.AppendUvarint(dst, uint64(tr.SamplePhase))
	}
	for _, tr := range traces {
		dst = binary.AppendUvarint(dst, uint64(tr.SampleK))
	}
	var prev uint64
	for i, tr := range traces {
		if i == 0 {
			dst = binary.AppendUvarint(dst, tr.Seq)
		} else {
			dst = binary.AppendVarint(dst, int64(tr.Seq-prev))
		}
		prev = tr.Seq
	}
	for _, tr := range traces {
		dst = binary.AppendVarint(dst, int64(tr.FaultPC))
	}
	for _, tr := range traces {
		dst = binary.AppendVarint(dst, tr.AssertID)
	}
	for _, tr := range traces {
		dst = binary.AppendUvarint(dst, uint64(tr.Steps))
	}

	// Variable sections.
	for s := 0; s < numSections; s++ {
		if sectionHasCounts(s) {
			for _, c := range e.counts[s] {
				dst = binary.AppendUvarint(dst, uint64(c))
			}
		}
		for _, l := range e.lens[s] {
			dst = binary.AppendUvarint(dst, uint64(l))
		}
		dst = append(dst, e.slabs[s]...)
	}
	return dst, nil
}

// stageSection appends one trace's events to a section slab via write,
// recording the event count and slab byte length.
func stageSection(e *batchEncoder, sec, count int, write func([]byte) []byte) {
	before := len(e.slabs[sec])
	e.slabs[sec] = write(e.slabs[sec])
	if sectionHasCounts(sec) {
		e.counts[sec] = append(e.counts[sec], uint32(count))
	}
	e.lens[sec] = append(e.lens[sec], uint32(len(e.slabs[sec])-before))
}

// --- zero-copy view ---

// viewScratch is the pooled per-batch index a BatchView builds over the
// encoded buffer: decoded scalar columns plus per-trace offsets into the
// variable-section slabs. Slices are reused across batches.
type viewScratch struct {
	podIdx      []uint32
	sampleRate  []uint32
	samplePhase []uint32
	sampleK     []uint32
	seq         []uint64
	faultPC     []int32
	assertID    []int64
	steps       []int64

	counts [numSections][]uint32
	// offs[s] holds n+1 absolute buffer offsets: trace i's slab bytes for
	// section s are buf[offs[s][i]:offs[s][i+1]].
	offs [numSections][]uint32
}

var viewScratchPool = sync.Pool{New: func() any { return &viewScratch{} }}

// BatchView is a read-only view over a columnar-encoded batch. All field
// accessors read directly out of the encoded buffer (or the small decoded
// scalar columns) without materializing Trace values; DecodeBatch validates
// the whole buffer up front, so accessors cannot fail. A view holds pooled
// index state — call Release when done with it; the view (and any
// sub-slices of Bytes) must not be used after Release, and the underlying
// buffer must not be mutated while the view is live.
type BatchView struct {
	buf       []byte
	programID string
	pods      []string
	n         int

	mode    []byte // raw columns: sub-slices of buf
	outcome []byte
	privacy []byte

	sc *viewScratch
}

// DecodeBatch indexes and validates a columnar batch. The returned view
// borrows data: it keeps buf and serves reads from it.
func DecodeBatch(buf []byte) (*BatchView, error) {
	if len(buf) > 1<<30 {
		// The view indexes the buffer with 32-bit offsets; real batches are
		// wire frames (≤16MB) or journal records of the same payloads.
		return nil, fmt.Errorf("%w: batch of %d bytes exceeds view limit", ErrCodec, len(buf))
	}
	d := &decoder{buf: buf}
	if v := d.byte(); v != batchVersion {
		return nil, fmt.Errorf("%w: batch version %d", ErrCodec, v)
	}
	v := &BatchView{buf: buf}
	v.programID = d.string()
	npods := int(d.uvarint())
	if err := d.checkCount(npods, 1); err != nil {
		return nil, err
	}
	if npods > 0 {
		v.pods = make([]string, npods)
		for i := range v.pods {
			v.pods[i] = d.string()
		}
	}
	n := int(d.uvarint())
	if err := d.checkCount(n, 8); err != nil {
		return nil, err
	}
	v.n = n

	sc := viewScratchPool.Get().(*viewScratch)
	v.sc = sc
	release := func() { v.Release() }

	sc.podIdx = growU32(sc.podIdx, n)
	for i := 0; i < n; i++ {
		idx := d.uvarint()
		if d.err == nil && idx >= uint64(npods) {
			release()
			return nil, fmt.Errorf("%w: pod index %d of %d", ErrCodec, idx, npods)
		}
		sc.podIdx[i] = uint32(idx)
	}
	v.mode = d.raw(n)
	v.outcome = d.raw(n)
	v.privacy = d.raw(n)
	sc.sampleRate = growU32(sc.sampleRate, n)
	for i := 0; i < n; i++ {
		sc.sampleRate[i] = uint32(d.uvarint())
	}
	sc.samplePhase = growU32(sc.samplePhase, n)
	for i := 0; i < n; i++ {
		sc.samplePhase[i] = uint32(d.uvarint())
	}
	sc.sampleK = growU32(sc.sampleK, n)
	for i := 0; i < n; i++ {
		sc.sampleK[i] = uint32(d.uvarint())
	}
	sc.seq = growU64(sc.seq, n)
	var prev uint64
	for i := 0; i < n; i++ {
		if i == 0 {
			prev = d.uvarint()
		} else {
			prev += uint64(d.varint())
		}
		sc.seq[i] = prev
	}
	sc.faultPC = growI32(sc.faultPC, n)
	for i := 0; i < n; i++ {
		sc.faultPC[i] = int32(d.varint())
	}
	sc.assertID = growI64(sc.assertID, n)
	for i := 0; i < n; i++ {
		sc.assertID[i] = d.varint()
	}
	sc.steps = growI64(sc.steps, n)
	for i := 0; i < n; i++ {
		sc.steps[i] = int64(d.uvarint())
	}

	for s := 0; s < numSections; s++ {
		if sectionHasCounts(s) {
			sc.counts[s] = growU32(sc.counts[s], n)
			for i := 0; i < n; i++ {
				c := d.uvarint()
				if d.err == nil && c > uint64(len(buf)) {
					release()
					return nil, fmt.Errorf("%w: implausible section count %d", ErrCodec, c)
				}
				sc.counts[s][i] = uint32(c)
			}
		}
		offs := growU32(sc.offs[s], n+1)
		total := uint64(0)
		for i := 0; i < n; i++ {
			l := d.uvarint()
			// Reject any single hostile length before summing: a length
			// near 2^64 would wrap total past the bounds check below and
			// leave offs non-monotonic (out-of-range slab slices).
			if d.err == nil && l > uint64(len(buf)) {
				release()
				return nil, fmt.Errorf("%w: implausible section length %d", ErrCodec, l)
			}
			total += l
			if d.err == nil && total > uint64(len(buf)) {
				release()
				return nil, fmt.Errorf("%w: section slab overruns buffer", ErrCodec)
			}
			offs[i+1] = uint32(total) // lengths for now; rebased below
		}
		if d.err != nil {
			release()
			return nil, d.err
		}
		base := uint32(d.pos)
		if uint64(d.pos)+total > uint64(len(buf)) {
			release()
			return nil, fmt.Errorf("%w: truncated section slab", ErrCodec)
		}
		offs[0] = base
		for i := 1; i <= n; i++ {
			offs[i] += base
		}
		d.pos += int(total)
		sc.offs[s] = offs
	}
	if d.err != nil {
		release()
		return nil, d.err
	}
	if d.pos != len(buf) {
		release()
		return nil, fmt.Errorf("%w: %d trailing batch bytes", ErrCodec, len(buf)-d.pos)
	}
	if err := v.validateSlabs(); err != nil {
		release()
		return nil, err
	}
	return v, nil
}

// validateSlabs fully parses every per-trace event stream once so the
// accessors can decode without error paths: each stream must contain
// exactly its column's event count and consume exactly its recorded bytes.
func (v *BatchView) validateSlabs() error {
	// One reused cursor for the whole pass: slab validation runs per trace
	// per section and must not allocate.
	var d decoder
	for i := 0; i < v.n; i++ {
		if err := v.checkEvents(&d, secBranches, i, 1, checkBranch); err != nil {
			return err
		}
		if err := v.checkEvents(&d, secSyscalls, i, 3, checkSyscall); err != nil {
			return err
		}
		if err := v.checkEvents(&d, secLocks, i, 4, checkLock); err != nil {
			return err
		}
		if err := v.checkEvents(&d, secDeadlock, i, 3, checkDeadlock); err != nil {
			return err
		}
		if err := v.checkEvents(&d, secInput, i, 1, checkVarint); err != nil {
			return err
		}
		if err := v.checkEvents(&d, secInputBuckets, i, 1, checkVarint); err != nil {
			return err
		}
	}
	return nil
}

// Per-section event skippers for validation.
func checkBranch(d *decoder)   { d.uvarint() }
func checkSyscall(d *decoder)  { d.uvarint(); d.varint(); d.varint() }
func checkLock(d *decoder)     { d.uvarint(); d.uvarint(); d.uvarint(); d.byte() }
func checkDeadlock(d *decoder) { d.uvarint(); d.uvarint(); d.uvarint() }
func checkVarint(d *decoder)   { d.varint() }

// checkEvents parses trace i's slab for one section and verifies the event
// count and byte length agree.
func (v *BatchView) checkEvents(d *decoder, sec, i, minBytes int, one func(*decoder)) error {
	slab := v.slab(sec, i)
	count := int(v.sc.counts[sec][i])
	if count > len(slab)/minBytes {
		return fmt.Errorf("%w: section %d trace %d: %d events in %d bytes", ErrCodec, sec, i, count, len(slab))
	}
	d.buf, d.pos, d.err = slab, 0, nil
	for k := 0; k < count; k++ {
		one(d)
	}
	if d.err != nil {
		return fmt.Errorf("%w: section %d trace %d: %v", ErrCodec, sec, i, d.err)
	}
	if d.pos != len(slab) {
		return fmt.Errorf("%w: section %d trace %d: %d trailing bytes", ErrCodec, sec, i, len(slab)-d.pos)
	}
	return nil
}

// Release returns the view's pooled index state. The view must not be used
// afterwards.
func (v *BatchView) Release() {
	if v.sc == nil {
		return
	}
	viewScratchPool.Put(v.sc)
	v.sc = nil
	v.buf = nil
}

// Bytes returns the encoded batch exactly as decoded — the bytes a durable
// hive journals verbatim.
func (v *BatchView) Bytes() []byte { return v.buf }

// Len returns the number of traces in the batch.
func (v *BatchView) Len() int { return v.n }

// ProgramID returns the batch-wide program ID.
func (v *BatchView) ProgramID() string { return v.programID }

// PodID returns trace i's pod ID (shared dictionary string — no per-call
// allocation).
func (v *BatchView) PodID(i int) string { return v.pods[v.sc.podIdx[i]] }

// Mode returns trace i's capture mode.
func (v *BatchView) Mode(i int) CaptureMode { return CaptureMode(v.mode[i]) }

// Outcome returns trace i's outcome label.
func (v *BatchView) Outcome(i int) prog.Outcome { return prog.Outcome(v.outcome[i]) }

// Privacy returns the privacy level trace i was shipped at.
func (v *BatchView) Privacy(i int) PrivacyLevel { return PrivacyLevel(v.privacy[i]) }

// Seq returns trace i's pod-local sequence number.
func (v *BatchView) Seq(i int) uint64 { return v.sc.seq[i] }

// Steps returns trace i's executed instruction count.
func (v *BatchView) Steps(i int) int64 { return v.sc.steps[i] }

// FaultPC returns trace i's fault location (-1 when not applicable).
func (v *BatchView) FaultPC(i int) int32 { return v.sc.faultPC[i] }

// AssertID returns trace i's assertion ID (-1 when not applicable).
func (v *BatchView) AssertID(i int) int64 { return v.sc.assertID[i] }

// SampleK returns trace i's coordinated-sampling partition count.
func (v *BatchView) SampleK(i int) uint32 { return v.sc.sampleK[i] }

// NumBranches returns trace i's dynamic branch count.
func (v *BatchView) NumBranches(i int) int { return int(v.sc.counts[secBranches][i]) }

// NumInputs returns the length of trace i's raw input vector (non-zero only
// at PrivacyRaw).
func (v *BatchView) NumInputs(i int) int { return int(v.sc.counts[secInput][i]) }

// slab returns trace i's raw bytes for one section.
func (v *BatchView) slab(sec, i int) []byte {
	offs := v.sc.offs[sec]
	return v.buf[offs[i]:offs[i+1]]
}

// AppendBranches decodes trace i's branch events into dst (reusing its
// capacity) and returns the extended slice — the zero-copy path tree
// merging consumes: one scratch slice serves a whole batch.
func (v *BatchView) AppendBranches(dst []BranchEvent, i int) []BranchEvent {
	d := &decoder{buf: v.slab(secBranches, i)}
	count := v.NumBranches(i)
	for k := 0; k < count; k++ {
		raw := d.uvarint()
		dst = append(dst, BranchEvent{ID: int32(raw >> 1), Taken: raw&1 == 1})
	}
	return dst
}

// AppendInput decodes trace i's raw input vector into dst (reusing its
// capacity) — the known-good harvesting path, which copies anyway.
func (v *BatchView) AppendInput(dst []int64, i int) []int64 {
	d := &decoder{buf: v.slab(secInput, i)}
	count := v.NumInputs(i)
	for k := 0; k < count; k++ {
		dst = append(dst, d.varint())
	}
	return dst
}

// FailureSignature appends trace i's failure-signature key to dst — the
// same string Trace.FailureSignature builds, composed without materializing
// the trace. Empty (dst unchanged) for non-failure outcomes.
func (v *BatchView) FailureSignature(dst []byte, i int) []byte {
	out := v.Outcome(i)
	if !out.IsFailure() {
		return dst
	}
	dst = append(dst, out.String()...)
	dst = append(dst, '@')
	dst = strconv.AppendInt(dst, int64(v.FaultPC(i)), 10)
	dst = append(dst, '#')
	dst = strconv.AppendInt(dst, v.AssertID(i), 10)
	return dst
}

// Materialize builds a full Trace for index i — the escape hatch for the
// few consumers that must retain or mutate one (failure samples,
// coordinated-fragment buffering, privacy re-application). The result
// shares no memory with the view except the pod-ID dictionary string and is
// bit-for-bit what the per-trace v2 codec would have decoded.
func (v *BatchView) Materialize(i int) *Trace {
	t := &Trace{
		ProgramID:   v.programID,
		PodID:       v.PodID(i),
		Seq:         v.Seq(i),
		Mode:        v.Mode(i),
		SampleRate:  uint32(v.sc.sampleRate[i]),
		SamplePhase: v.sc.samplePhase[i],
		SampleK:     v.sc.sampleK[i],
		Outcome:     v.Outcome(i),
		FaultPC:     v.FaultPC(i),
		AssertID:    v.AssertID(i),
		Steps:       v.Steps(i),
		Privacy:     v.Privacy(i),
	}
	if n := v.NumBranches(i); n > 0 {
		t.Branches = v.AppendBranches(make([]BranchEvent, 0, n), i)
	}
	if n := int(v.sc.counts[secSyscalls][i]); n > 0 {
		t.Syscalls = make([]SyscallEvent, n)
		d := &decoder{buf: v.slab(secSyscalls, i)}
		for k := range t.Syscalls {
			t.Syscalls[k] = SyscallEvent{TID: int32(d.uvarint()), Sysno: d.varint(), Ret: d.varint()}
		}
	}
	if n := int(v.sc.counts[secLocks][i]); n > 0 {
		t.Locks = make([]LockEvent, n)
		d := &decoder{buf: v.slab(secLocks, i)}
		for k := range t.Locks {
			t.Locks[k] = LockEvent{
				TID:     int32(d.uvarint()),
				LockID:  int32(d.uvarint()),
				PC:      int32(d.uvarint()),
				Acquire: d.byte() == 1,
			}
		}
	}
	if n := int(v.sc.counts[secDeadlock][i]); n > 0 {
		t.Deadlock = make([]DeadlockWait, n)
		d := &decoder{buf: v.slab(secDeadlock, i)}
		for k := range t.Deadlock {
			t.Deadlock[k] = DeadlockWait{
				TID:   int32(d.uvarint()),
				PC:    int32(d.uvarint()),
				Wants: int32(d.uvarint()),
			}
		}
	}
	t.ScheduleHash = string(v.slab(secSchedHash, i))
	t.InputDigest = string(v.slab(secInputDigest, i))
	if n := v.NumInputs(i); n > 0 {
		t.Input = v.AppendInput(make([]int64, 0, n), i)
	}
	if n := int(v.sc.counts[secInputBuckets][i]); n > 0 {
		t.InputBuckets = make([]int64, n)
		d := &decoder{buf: v.slab(secInputBuckets, i)}
		for k := range t.InputBuckets {
			t.InputBuckets[k] = d.varint()
		}
	}
	return t
}

// MaterializeAll builds the whole batch as Trace values — the compatibility
// bridge for backends without a view-based ingest path.
func (v *BatchView) MaterializeAll() []*Trace {
	out := make([]*Trace, v.n)
	for i := range out {
		out[i] = v.Materialize(i)
	}
	return out
}

// raw consumes n raw bytes as a zero-copy column sub-slice.
func (d *decoder) raw(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.pos+n > len(d.buf) {
		d.fail()
		return nil
	}
	out := d.buf[d.pos : d.pos+n]
	d.pos += n
	return out
}

// growU32 returns s resized to n entries, reusing capacity.
func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}
