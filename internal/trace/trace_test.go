package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/prog"
	"repro/internal/stats"
)

// buildBranchy returns a single-threaded program with a mix of
// input-dependent and deterministic branches plus a syscall and a lock.
func buildBranchy(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("branchy", 1).SetLocks(1)
	end := b.NewLabel()
	mid := b.NewLabel()
	b.Input(0, 0)
	b.Const(1, 3)
	b.Lock(0)
	b.Syscall(2, 5, 0)
	b.Unlock(0)
	b.BrImm(0, prog.CmpGT, 10, mid) // input-dependent
	b.BrImm(1, prog.CmpEQ, 3, end)  // deterministic (always taken)
	b.Bind(mid)
	b.BrImm(2, prog.CmpGE, 0, end) // syscall-dependent
	b.Bind(end)
	b.Halt()
	return b.MustBuild()
}

func capture(t *testing.T, p *prog.Program, mode CaptureMode, input []int64, level PrivacyLevel) *Trace {
	t.Helper()
	col := NewCollector(p, mode, 0.5, 99)
	m, err := prog.NewMachine(p, prog.Config{
		Input:    input,
		Observer: col,
		Syscalls: &prog.DeterministicSyscalls{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	return col.Finish("pod-1", 1, res, input, level, "salt")
}

func TestCollectorFullCapture(t *testing.T) {
	p := buildBranchy(t)
	tr := capture(t, p, CaptureFull, []int64{20}, PrivacyRaw)
	if tr.Outcome != prog.OutcomeOK {
		t.Fatalf("outcome = %v", tr.Outcome)
	}
	// Input 20 > 10: takes branch 0, then branch 2 (syscall >= 0).
	if len(tr.Branches) != 2 {
		t.Fatalf("branches = %v, want 2 events", tr.Branches)
	}
	if len(tr.Syscalls) != 1 {
		t.Errorf("syscalls = %d, want 1", len(tr.Syscalls))
	}
	if len(tr.Locks) != 2 {
		t.Errorf("lock events = %d, want 2", len(tr.Locks))
	}
	if tr.Input == nil || tr.Input[0] != 20 {
		t.Errorf("raw privacy should keep input, got %v", tr.Input)
	}
}

func TestCollectorExternalOnlySkipsDeterministic(t *testing.T) {
	p := buildBranchy(t)
	// Input 5: branch 0 not taken, then deterministic branch 1 (taken).
	full := capture(t, p, CaptureFull, []int64{5}, PrivacyHashed)
	ext := capture(t, p, CaptureExternalOnly, []int64{5}, PrivacyHashed)
	if len(full.Branches) != 2 {
		t.Fatalf("full branches = %v", full.Branches)
	}
	if len(ext.Branches) != 1 {
		t.Fatalf("external-only branches = %v, want 1 (deterministic dropped)", ext.Branches)
	}
	if p.InputDependent(int(ext.Branches[0].ID)) == false {
		t.Error("retained branch should be input-dependent")
	}
}

func TestCollectorReuseAfterReset(t *testing.T) {
	p := buildBranchy(t)
	col := NewCollector(p, CaptureFull, 0, 1)
	for i := 0; i < 3; i++ {
		col.Reset()
		m, err := prog.NewMachine(p, prog.Config{Input: []int64{int64(i * 20)}, Observer: col})
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		tr := col.Finish("pod", uint64(i), res, []int64{int64(i * 20)}, PrivacyHashed, "s")
		if len(tr.Branches) == 0 {
			t.Fatalf("run %d: no branches", i)
		}
		if len(tr.Branches) > 2 {
			t.Fatalf("run %d: collector leaked events across runs: %v", i, tr.Branches)
		}
	}
}

func TestPathKeyDistinguishesPaths(t *testing.T) {
	p := buildBranchy(t)
	a := capture(t, p, CaptureFull, []int64{20}, PrivacyHashed)
	b := capture(t, p, CaptureFull, []int64{5}, PrivacyHashed)
	c := capture(t, p, CaptureFull, []int64{20}, PrivacyHashed)
	if a.PathKey() == b.PathKey() {
		t.Error("different paths share a key")
	}
	if a.PathKey() != c.PathKey() {
		t.Error("same path has different keys")
	}
}

func TestBits(t *testing.T) {
	tr := &Trace{Branches: []BranchEvent{
		{ID: 0, Taken: true}, {ID: 1, Taken: false}, {ID: 2, Taken: true},
		{ID: 3, Taken: true}, {ID: 4, Taken: false}, {ID: 5, Taken: false},
		{ID: 6, Taken: true}, {ID: 7, Taken: false}, {ID: 8, Taken: true},
	}}
	bits := tr.Bits()
	if len(bits) != 2 {
		t.Fatalf("bits length = %d, want 2", len(bits))
	}
	// 0b01001101 = 0x4D for the first 8, then 0x01.
	if bits[0] != 0x4D || bits[1] != 0x01 {
		t.Errorf("bits = %x, want 4d 01", bits)
	}
}

func TestFailureSignature(t *testing.T) {
	ok := &Trace{Outcome: prog.OutcomeOK}
	if ok.FailureSignature() != "" {
		t.Error("ok trace should have empty signature")
	}
	crash1 := &Trace{Outcome: prog.OutcomeCrash, FaultPC: 12, AssertID: -1}
	crash2 := &Trace{Outcome: prog.OutcomeCrash, FaultPC: 12, AssertID: -1}
	crash3 := &Trace{Outcome: prog.OutcomeCrash, FaultPC: 13, AssertID: -1}
	if crash1.FailureSignature() != crash2.FailureSignature() {
		t.Error("same fault should share signature")
	}
	if crash1.FailureSignature() == crash3.FailureSignature() {
		t.Error("different fault PCs should differ")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	p := buildBranchy(t)
	for _, level := range []PrivacyLevel{PrivacyRaw, PrivacyBucketed, PrivacyHashed, PrivacyOpaque} {
		tr := capture(t, p, CaptureFull, []int64{33}, level)
		data := Encode(tr)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("%v: decode: %v", level, err)
		}
		if got.PathKey() != tr.PathKey() {
			t.Errorf("%v: path key mismatch", level)
		}
		if got.ProgramID != tr.ProgramID || got.PodID != tr.PodID || got.Seq != tr.Seq {
			t.Errorf("%v: identity mismatch", level)
		}
		if got.Outcome != tr.Outcome || got.FaultPC != tr.FaultPC {
			t.Errorf("%v: outcome mismatch", level)
		}
		if got.InputDigest != tr.InputDigest || got.Privacy != tr.Privacy {
			t.Errorf("%v: privacy fields mismatch", level)
		}
		if len(got.Input) != len(tr.Input) || len(got.InputBuckets) != len(tr.InputBuckets) {
			t.Errorf("%v: input fields mismatch", level)
		}
		if len(got.Syscalls) != len(tr.Syscalls) || len(got.Locks) != len(tr.Locks) {
			t.Errorf("%v: event counts mismatch", level)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	p := buildBranchy(t)
	tr := capture(t, p, CaptureFull, []int64{33}, PrivacyHashed)
	data := Encode(tr)

	// Truncations must error, never panic.
	for cut := 0; cut < len(data); cut += 3 {
		if _, err := Decode(data[:cut]); err == nil {
			// Some prefixes may parse if all trailing fields default; only
			// the full length must round-trip. Accept nil error only at full
			// length.
			if cut != len(data) {
				t.Errorf("truncation at %d decoded without error", cut)
			}
		}
	}
	// Bad version byte.
	bad := append([]byte(nil), data...)
	bad[0] = 99
	if _, err := Decode(bad); err == nil {
		t.Error("bad version: want error")
	}
}

func TestQuickCodecNeverPanics(t *testing.T) {
	check := func(data []byte) bool {
		_, _ = Decode(data) // must not panic
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPrivacyLevels(t *testing.T) {
	input := []int64{42}
	tr := &Trace{}

	ApplyPrivacy(tr, input, PrivacyRaw, "fleet")
	if tr.Input == nil || tr.InputBuckets != nil {
		t.Error("raw: want input, no buckets")
	}
	if n := GuessInput(tr, 256, "fleet"); n != 1 {
		t.Errorf("raw: candidates = %d, want 1", n)
	}

	ApplyPrivacy(tr, input, PrivacyBucketed, "fleet")
	if tr.Input != nil || tr.InputBuckets == nil {
		t.Error("bucketed: want buckets only")
	}
	if n := GuessInput(tr, 256, "fleet"); n != BucketWidth {
		t.Errorf("bucketed: candidates = %d, want %d", n, BucketWidth)
	}

	ApplyPrivacy(tr, input, PrivacyHashed, "fleet")
	if tr.Input != nil || tr.InputBuckets != nil {
		t.Error("hashed: want digest only")
	}
	if n := GuessInput(tr, 256, "fleet"); n != 1 {
		t.Errorf("hashed brute-force: candidates = %d, want 1", n)
	}

	ApplyPrivacy(tr, input, PrivacyOpaque, "pod-secret")
	if n := GuessInput(tr, 256, "fleet"); n != 256 {
		t.Errorf("opaque: candidates = %d, want 256 (no info)", n)
	}
}

func TestPrivacyDigestStable(t *testing.T) {
	a := DigestInput("s", []int64{1, 2, 3})
	b := DigestInput("s", []int64{1, 2, 3})
	c := DigestInput("s", []int64{1, 2, 4})
	d := DigestInput("t", []int64{1, 2, 3})
	if a != b {
		t.Error("same input+salt should match")
	}
	if a == c || a == d {
		t.Error("different input or salt should differ")
	}
}

func TestSampledCaptureSubsets(t *testing.T) {
	// Program with many branches: a loop.
	b := prog.NewBuilder("loopy", 1)
	b.Input(0, 0)
	b.Const(1, 0)
	loop := b.Here()
	exit := b.NewLabel()
	b.Br(1, prog.CmpGE, 0, exit)
	b.AddImm(1, 1, 1)
	b.Jmp(loop)
	b.Bind(exit)
	b.Halt()
	p := b.MustBuild()

	runWith := func(mode CaptureMode, rate float64) int {
		col := NewCollector(p, mode, rate, 7)
		m, err := prog.NewMachine(p, prog.Config{Input: []int64{50}, Observer: col})
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		tr := col.Finish("pod", 0, res, []int64{50}, PrivacyHashed, "s")
		return len(tr.Branches)
	}
	full := runWith(CaptureFull, 0)
	sampled := runWith(CaptureSampled, 0.3)
	if full != 51 {
		t.Fatalf("full = %d, want 51", full)
	}
	if sampled >= full || sampled == 0 {
		t.Errorf("sampled = %d, want strict subset of %d", sampled, full)
	}
}

func TestEncodeSizeReasonable(t *testing.T) {
	// The varint codec should beat a naive 16-bytes-per-event encoding.
	rng := stats.NewRNG(5)
	tr := &Trace{ProgramID: "p", PodID: "pod"}
	for i := 0; i < 1000; i++ {
		tr.Branches = append(tr.Branches, BranchEvent{ID: int32(rng.Intn(100)), Taken: rng.Bool(0.5)})
	}
	size := len(Encode(tr))
	if size > 4*1000 {
		t.Errorf("encoded size = %d for 1000 events, want < 4KB", size)
	}
	var buf bytes.Buffer
	buf.Write(Encode(tr))
	got, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Branches) != 1000 {
		t.Fatalf("branches = %d", len(got.Branches))
	}
}
