package trace

import (
	"repro/internal/prog"
	"repro/internal/stats"
)

// Collector is the pod-side instrumentation sink: it implements
// prog.Observer and accumulates one Trace per execution. A Collector is
// reused across runs via Reset to avoid per-run allocation.
type Collector struct {
	program *prog.Program
	mode    CaptureMode
	rate    float64
	rng     *stats.RNG
	phase   uint32
	k       uint32

	branches    []BranchEvent
	syscalls    []SyscallEvent
	locks       []LockEvent
	schedule    []uint8
	recordSched bool
}

var _ prog.Observer = (*Collector)(nil)

// NewCollector creates a collector for the given program and capture mode.
// rate is the per-branch recording probability for CaptureSampled (ignored
// otherwise); seed drives the sampling decisions so coordinated sampling
// across a pod fleet is reproducible.
func NewCollector(p *prog.Program, mode CaptureMode, rate float64, seed uint64) *Collector {
	return &Collector{
		program: p,
		mode:    mode,
		rate:    rate,
		rng:     stats.NewRNG(seed),
	}
}

// NewCoordinatedCollector creates a collector in CaptureCoordinated mode:
// it records only branch sites with ID % k == phase. A fleet whose pods use
// distinct phases partitions the site space; the hive recombines the
// fragments with CombineCoordinated.
func NewCoordinatedCollector(p *prog.Program, phase, k uint32) *Collector {
	if k == 0 {
		k = 1
	}
	return &Collector{program: p, mode: CaptureCoordinated, phase: phase % k, k: k, rng: stats.NewRNG(uint64(phase))}
}

// RecordSchedule enables capturing the schedule decision sequence (needed
// for multi-threaded programs so the hive can distinguish interleavings).
func (c *Collector) RecordSchedule() *Collector { c.recordSched = true; return c }

// Reset clears accumulated events for the next execution.
func (c *Collector) Reset() {
	c.branches = c.branches[:0]
	c.syscalls = c.syscalls[:0]
	c.locks = c.locks[:0]
	c.schedule = c.schedule[:0]
}

// Branch implements prog.Observer.
func (c *Collector) Branch(tid, branchID int, taken bool) {
	switch c.mode {
	case CaptureExternalOnly:
		if !c.program.InputDependent(branchID) {
			return
		}
	case CaptureSampled:
		if !c.rng.Bool(c.rate) {
			return
		}
	case CaptureCoordinated:
		if uint32(branchID)%c.k != c.phase {
			return
		}
	}
	c.branches = append(c.branches, BranchEvent{ID: int32(branchID), Taken: taken})
}

// LockAcquire implements prog.Observer.
func (c *Collector) LockAcquire(tid, lockID, pc int) {
	c.locks = append(c.locks, LockEvent{TID: int32(tid), LockID: int32(lockID), PC: int32(pc), Acquire: true})
}

// LockRelease implements prog.Observer.
func (c *Collector) LockRelease(tid, lockID, pc int) {
	c.locks = append(c.locks, LockEvent{TID: int32(tid), LockID: int32(lockID), PC: int32(pc)})
}

// Syscall implements prog.Observer.
func (c *Collector) Syscall(tid int, sysno, arg, ret int64) {
	c.syscalls = append(c.syscalls, SyscallEvent{TID: int32(tid), Sysno: sysno, Ret: ret})
}

// Schedule implements prog.Observer.
func (c *Collector) Schedule(tid int) {
	if c.recordSched {
		c.schedule = append(c.schedule, uint8(tid))
	}
}

// ScheduleTrace returns the recorded schedule decisions.
func (c *Collector) ScheduleTrace() []uint8 { return append([]uint8(nil), c.schedule...) }

// Finish assembles the Trace for a completed execution. The caller supplies
// identity, the machine result, the input, and the privacy level to apply.
// The collector can be Reset and reused afterwards.
func (c *Collector) Finish(podID string, seq uint64, res prog.Result, input []int64, level PrivacyLevel, salt string) *Trace {
	t := &Trace{
		ProgramID:   c.program.ID,
		PodID:       podID,
		Seq:         seq,
		Mode:        c.mode,
		SampleRate:  uint32(c.rate * 65536),
		SamplePhase: c.phase,
		SampleK:     c.k,
		Branches:    append([]BranchEvent(nil), c.branches...),
		Syscalls:    append([]SyscallEvent(nil), c.syscalls...),
		Locks:       append([]LockEvent(nil), c.locks...),
		Outcome:     res.Outcome,
		FaultPC:     int32(res.FaultPC),
		AssertID:    res.AssertID,
		Steps:       res.Steps,
	}
	for _, w := range res.DeadlockCycle {
		t.Deadlock = append(t.Deadlock, DeadlockWait{TID: int32(w.TID), PC: int32(w.PC), Wants: int32(w.Wants)})
	}
	if c.recordSched {
		t.ScheduleHash = scheduleHash(c.schedule)
	}
	ApplyPrivacy(t, input, level, salt)
	return t
}
