package trace

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Slab compression is the wire's bandwidth lever for columnar batches: the
// section slabs that dominate a batch payload (branch paths, syscall
// streams, digests) repeat heavily within one program's batch, so DEFLATE
// at its fastest setting routinely shrinks them several-fold. The encoding
// is uvarint(decompressed length) followed by a raw DEFLATE stream.
//
// Compression is a transport concern only: the decompressed bytes are the
// canonical batch payload — a durable hive journals *those* (the same
// bytes the pod sealed, byte-identical to an uncompressed submission), so
// recovery, dedup, and journal-identity guarantees never see a compressed
// byte. Encoders and decoders are pooled; steady-state compression
// allocates only when the destination grows.

// slabCompressLevel trades ratio for speed: the slab data is so
// self-similar that BestSpeed already captures most of the win, and the
// compressor sits on the pod's drain hot path.
const slabCompressLevel = flate.BestSpeed

// slabCompressor pairs a reusable flate writer with the append sink it
// writes through.
type slabCompressor struct {
	fw *flate.Writer
	aw appendSink
}

// appendSink adapts append-to-slice to io.Writer for the pooled flate
// writer.
type appendSink struct{ buf []byte }

func (a *appendSink) Write(p []byte) (int, error) {
	a.buf = append(a.buf, p...)
	return len(p), nil
}

var slabCompressorPool = sync.Pool{New: func() any {
	fw, err := flate.NewWriter(io.Discard, slabCompressLevel)
	if err != nil {
		panic(err) // BestSpeed is a valid level
	}
	return &slabCompressor{fw: fw}
}}

// slabDecompressor pairs a reusable flate reader with the bytes.Reader it
// inflates from.
type slabDecompressor struct {
	br bytes.Reader
	fr io.ReadCloser
}

var slabDecompressorPool = sync.Pool{New: func() any {
	d := &slabDecompressor{}
	d.fr = flate.NewReader(&d.br)
	return d
}}

// slabBufPool recycles decompression output buffers. Boxes, like the wire
// frame pool, so recycling never re-boxes the slice header.
var slabBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// CompressSlab appends the compressed encoding of raw — uvarint
// decompressed length, then a DEFLATE stream — to dst and returns the
// extended slice. The compressor is pooled; compressing to a
// pre-grown dst allocates nothing.
func CompressSlab(dst []byte, raw []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(raw)))
	c := slabCompressorPool.Get().(*slabCompressor)
	c.aw.buf = dst
	c.fw.Reset(&c.aw)
	// Writes to an append sink cannot fail.
	_, _ = c.fw.Write(raw)
	_ = c.fw.Close()
	dst = c.aw.buf
	c.aw.buf = nil // do not retain the caller's buffer
	slabCompressorPool.Put(c)
	return dst
}

// DecompressSlab inflates a CompressSlab payload into a pooled buffer,
// guarding against decompression bombs: the claimed decompressed length
// must not exceed maxRaw, and the stream must inflate to exactly that
// length. The returned box owns the bytes — hand it back with ReleaseSlab
// when the payload has been fully consumed; the bytes must not be retained
// past that.
func DecompressSlab(payload []byte, maxRaw int) (*[]byte, error) {
	rawLen, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("%w: compressed slab length prefix", ErrCodec)
	}
	if rawLen > uint64(maxRaw) {
		return nil, fmt.Errorf("%w: compressed slab claims %d bytes, max %d", ErrCodec, rawLen, maxRaw)
	}
	d := slabDecompressorPool.Get().(*slabDecompressor)
	defer func() {
		d.br.Reset(nil)
		slabDecompressorPool.Put(d)
	}()
	d.br.Reset(payload[n:])
	if err := d.fr.(flate.Resetter).Reset(&d.br, nil); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	bp := slabBufPool.Get().(*[]byte)
	buf := *bp
	if cap(buf) < int(rawLen) {
		buf = make([]byte, rawLen)
	} else {
		buf = buf[:rawLen]
	}
	*bp = buf
	if _, err := io.ReadFull(d.fr, buf); err != nil {
		ReleaseSlab(bp)
		return nil, fmt.Errorf("%w: compressed slab shorter than claimed: %v", ErrCodec, err)
	}
	// The stream must end exactly at the claimed length: a stream that
	// keeps inflating is lying about its size (bomb guard), and one frame
	// must decode to one canonical payload.
	var probe [1]byte
	if m, err := io.ReadFull(d.fr, probe[:]); m != 0 || err != io.EOF {
		ReleaseSlab(bp)
		return nil, fmt.Errorf("%w: compressed slab longer than claimed %d bytes", ErrCodec, rawLen)
	}
	return bp, nil
}

// ReleaseSlab returns a DecompressSlab buffer to the pool. The bytes (and
// any view decoded over them) must not be used afterwards.
func ReleaseSlab(bp *[]byte) { slabBufPool.Put(bp) }
