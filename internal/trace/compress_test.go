package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/race"
)

// compressCorpus builds a realistic columnar batch payload (the thing the
// wire compresses) plus some synthetic shapes.
func compressCorpus(t *testing.T) [][]byte {
	t.Helper()
	enc, err := EncodeBatch("prog-alloc", allocBatch())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	random := make([]byte, 8192)
	for i := range random {
		random[i] = byte(rng.Intn(256))
	}
	return [][]byte{
		enc,
		{},
		[]byte("x"),
		bytes.Repeat([]byte("abcdef"), 4000),
		random,
	}
}

func TestCompressSlabRoundTrip(t *testing.T) {
	for i, raw := range compressCorpus(t) {
		comp := CompressSlab(nil, raw)
		got, err := DecompressSlab(comp, 1<<20)
		if err != nil {
			t.Fatalf("case %d: decompress: %v", i, err)
		}
		if !bytes.Equal(*got, raw) {
			t.Fatalf("case %d: round trip differs (%d bytes in, %d out)", i, len(raw), len(*got))
		}
		ReleaseSlab(got)
	}
}

// hotPathBatch builds a batch with production-shaped redundancy: one
// program has a handful of hot paths, so branch sequences, syscall
// patterns, and outcomes repeat heavily across traces — the redundancy
// slab compression exists to exploit (allocBatch, by contrast, is
// adversarially random).
func hotPathBatch(n int) []*Trace {
	rng := rand.New(rand.NewSource(7))
	paths := make([][]BranchEvent, 4)
	for p := range paths {
		for i := 0; i < 12+4*p; i++ {
			paths[p] = append(paths[p], BranchEvent{ID: int32((p*31 + i*7) % 200), Taken: i%3 != 0})
		}
	}
	batch := make([]*Trace, n)
	for i := range batch {
		path := paths[rng.Intn(len(paths))]
		tr := &Trace{
			ProgramID: "prog-hot",
			PodID:     "pod-hot",
			Seq:       uint64(i),
			Mode:      CaptureFull,
			Steps:     int64(100 + len(path)),
			Privacy:   PrivacyHashed,
			Branches:  append([]BranchEvent(nil), path...),
			Input:     []int64{int64(rng.Intn(160))},
		}
		tr.Syscalls = []SyscallEvent{{TID: 0, Sysno: 1, Ret: 0}, {TID: 0, Sysno: 3, Ret: int64(rng.Intn(4))}}
		batch[i] = tr
	}
	return batch
}

// TestCompressSlabRatio pins the reason the feature exists: a
// production-shaped columnar batch (hot paths repeating across traces)
// must shrink substantially under BestSpeed DEFLATE.
func TestCompressSlabRatio(t *testing.T) {
	enc, err := EncodeBatch("prog-hot", hotPathBatch(256))
	if err != nil {
		t.Fatal(err)
	}
	comp := CompressSlab(nil, enc)
	if len(comp)*3 > len(enc) {
		t.Fatalf("columnar batch compressed %d -> %d bytes; want at least 3x", len(enc), len(comp))
	}
}

func TestDecompressSlabBombGuard(t *testing.T) {
	raw := bytes.Repeat([]byte{0}, 4096)
	comp := CompressSlab(nil, raw)
	// Claimed length over the limit is rejected before any inflation.
	if _, err := DecompressSlab(comp, len(raw)-1); !errors.Is(err, ErrCodec) {
		t.Fatalf("over-limit claim not rejected: %v", err)
	}
	// A length prefix lying low: the stream inflates past the claim.
	lying := CompressSlab(nil, raw)
	honest := CompressSlab(nil, raw[:1])
	// Graft the 1-byte claim onto the 4096-byte stream.
	graft := append(append([]byte{}, honest[:1]...), lying[1:]...)
	if _, err := DecompressSlab(graft, 1<<20); !errors.Is(err, ErrCodec) {
		t.Fatalf("stream longer than claim not rejected: %v", err)
	}
	// Truncated stream: shorter than claimed.
	if _, err := DecompressSlab(comp[:len(comp)/2], 1<<20); !errors.Is(err, ErrCodec) {
		t.Fatalf("truncated stream not rejected: %v", err)
	}
	// Empty payload: no length prefix at all.
	if _, err := DecompressSlab(nil, 1<<20); !errors.Is(err, ErrCodec) {
		t.Fatalf("empty payload not rejected: %v", err)
	}
}

// FuzzCompressedSlab hammers the decompression path with hostile inputs:
// it must never panic, never return more than maxRaw bytes, and must
// round-trip anything CompressSlab produced.
func FuzzCompressedSlab(f *testing.F) {
	raw := bytes.Repeat([]byte("seed-slab"), 100)
	f.Add(CompressSlab(nil, raw))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add(CompressSlab(nil, nil))
	f.Fuzz(func(t *testing.T, payload []byte) {
		const maxRaw = 1 << 16
		got, err := DecompressSlab(payload, maxRaw)
		if err != nil {
			return
		}
		if len(*got) > maxRaw {
			t.Fatalf("decompressed %d bytes past the %d limit", len(*got), maxRaw)
		}
		// Whatever decoded must re-encode to something that decodes to the
		// same bytes (the canonical payload survives).
		again := CompressSlab(nil, *got)
		back, err := DecompressSlab(again, maxRaw)
		if err != nil {
			t.Fatalf("re-compress round trip failed: %v", err)
		}
		if !bytes.Equal(*back, *got) {
			t.Fatal("re-compress round trip changed bytes")
		}
		ReleaseSlab(back)
		ReleaseSlab(got)
	})
}

func TestAllocsCompressSlab(t *testing.T) {
	if race.Enabled {
		t.Skip("alloc counts are skewed under the race detector")
	}
	enc, err := EncodeBatch("prog-alloc", allocBatch())
	if err != nil {
		t.Fatal(err)
	}
	// Warm the compressor pool and learn the output size.
	dst := CompressSlab(nil, enc)
	avg := testing.AllocsPerRun(100, func() {
		dst = CompressSlab(dst[:0], enc)
	})
	if avg > 2 {
		t.Fatalf("compressing a 64-trace batch costs %.1f allocs; want <= 2 (pool-churn slack over 0)", avg)
	}
}

func TestAllocsDecompressSlab(t *testing.T) {
	if race.Enabled {
		t.Skip("alloc counts are skewed under the race detector")
	}
	enc, err := EncodeBatch("prog-alloc", allocBatch())
	if err != nil {
		t.Fatal(err)
	}
	comp := CompressSlab(nil, enc)
	// Warm the decompressor and output-buffer pools.
	got, err := DecompressSlab(comp, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	ReleaseSlab(got)
	avg := testing.AllocsPerRun(100, func() {
		got, err := DecompressSlab(comp, 1<<24)
		if err != nil {
			t.Fatal(err)
		}
		ReleaseSlab(got)
	})
	// The inflater itself allocates huffman link tables per dynamic block
	// (stdlib behavior Reset cannot avoid); the budget pins everything
	// around it — per *frame*, not per trace, and only on the WAN path
	// where the network, not the allocator, is the bottleneck.
	if avg > 40 {
		t.Fatalf("decompressing a 64-trace batch costs %.1f allocs; want <= 40", avg)
	}
}
