package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/prog"
)

// randomTrace draws an arbitrary trace with every field class populated at
// random — including empty sections, failure outcomes, and varied privacy
// levels — so the columnar codec is exercised across the whole field space.
func randomTrace(rng *rand.Rand, programID string) *Trace {
	pods := []string{"pod-a", "pod-b", "pod-c"}
	modes := []CaptureMode{CaptureFull, CaptureExternalOnly, CaptureSampled, CaptureCoordinated}
	outcomes := []prog.Outcome{prog.OutcomeOK, prog.OutcomeCrash, prog.OutcomeAssertFail, prog.OutcomeDeadlock}
	privacies := []PrivacyLevel{PrivacyRaw, PrivacyBucketed, PrivacyHashed, PrivacyOpaque}
	t := &Trace{
		ProgramID:   programID,
		PodID:       pods[rng.Intn(len(pods))],
		Seq:         rng.Uint64() >> rng.Intn(40),
		Mode:        modes[rng.Intn(len(modes))],
		SampleRate:  uint32(rng.Intn(1 << 16)),
		SamplePhase: uint32(rng.Intn(8)),
		SampleK:     uint32(rng.Intn(8)),
		Outcome:     outcomes[rng.Intn(len(outcomes))],
		FaultPC:     int32(rng.Intn(2000) - 1),
		AssertID:    int64(rng.Intn(100) - 1),
		Steps:       rng.Int63n(1 << 20),
		Privacy:     privacies[rng.Intn(len(privacies))],
	}
	for i := rng.Intn(20); i > 0; i-- {
		t.Branches = append(t.Branches, BranchEvent{ID: int32(rng.Intn(512)), Taken: rng.Intn(2) == 1})
	}
	for i := rng.Intn(5); i > 0; i-- {
		t.Syscalls = append(t.Syscalls, SyscallEvent{
			TID: int32(rng.Intn(4)), Sysno: rng.Int63n(300) - 5, Ret: rng.Int63n(1000) - 500,
		})
	}
	for i := rng.Intn(5); i > 0; i-- {
		t.Locks = append(t.Locks, LockEvent{
			TID: int32(rng.Intn(4)), LockID: int32(rng.Intn(8)), PC: int32(rng.Intn(500)), Acquire: rng.Intn(2) == 1,
		})
	}
	if t.Outcome == prog.OutcomeDeadlock {
		for i := 1 + rng.Intn(3); i > 0; i-- {
			t.Deadlock = append(t.Deadlock, DeadlockWait{
				TID: int32(rng.Intn(4)), PC: int32(rng.Intn(500)), Wants: int32(rng.Intn(8)),
			})
		}
	}
	if rng.Intn(2) == 1 {
		t.ScheduleHash = fmt.Sprintf("sched-%x", rng.Uint32())
	}
	t.InputDigest = fmt.Sprintf("digest-%x", rng.Uint32())
	switch t.Privacy {
	case PrivacyRaw:
		for i := 1 + rng.Intn(4); i > 0; i-- {
			t.Input = append(t.Input, rng.Int63n(512)-128)
		}
	case PrivacyBucketed:
		for i := 1 + rng.Intn(4); i > 0; i-- {
			t.InputBuckets = append(t.InputBuckets, rng.Int63n(64)-8)
		}
	}
	return t
}

// TestPropColumnarMatchesV2 is the codec-compatibility property: for random
// batches, columnar encode → view → materialize must reproduce exactly what
// the per-trace v2 codec's decode(encode(t)) round trip produces, trace by
// trace — the two codecs are interchangeable representations of the same
// batch.
func TestPropColumnarMatchesV2(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 200; round++ {
		n := rng.Intn(12)
		batch := make([]*Trace, n)
		for i := range batch {
			batch[i] = randomTrace(rng, "prog-prop")
		}
		enc, err := EncodeBatch("prog-prop", batch)
		if err != nil {
			t.Fatalf("round %d: encode: %v", round, err)
		}
		v, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("round %d: decode: %v", round, err)
		}
		if v.Len() != n {
			t.Fatalf("round %d: view has %d traces, want %d", round, v.Len(), n)
		}
		for i, orig := range batch {
			viaV2, err := Decode(Encode(orig))
			if err != nil {
				t.Fatalf("round %d trace %d: v2 round trip: %v", round, i, err)
			}
			got := v.Materialize(i)
			if !reflect.DeepEqual(got, viaV2) {
				t.Fatalf("round %d trace %d:\ncolumnar %+v\nv2       %+v", round, i, got, viaV2)
			}
			// Field accessors agree with the materialized trace.
			if v.PodID(i) != orig.PodID || v.Seq(i) != orig.Seq || v.Mode(i) != orig.Mode ||
				v.Outcome(i) != orig.Outcome || v.Privacy(i) != orig.Privacy ||
				v.FaultPC(i) != orig.FaultPC || v.AssertID(i) != orig.AssertID ||
				v.Steps(i) != orig.Steps || v.NumBranches(i) != len(orig.Branches) {
				t.Fatalf("round %d trace %d: accessor mismatch vs %+v", round, i, orig)
			}
			if sig := string(v.FailureSignature(nil, i)); sig != orig.FailureSignature() {
				t.Fatalf("round %d trace %d: signature %q, want %q", round, i, sig, orig.FailureSignature())
			}
			var scratch []BranchEvent
			scratch = v.AppendBranches(scratch[:0], i)
			if len(scratch) == 0 {
				scratch = nil
			}
			if !reflect.DeepEqual(scratch, viaV2.Branches) {
				t.Fatalf("round %d trace %d: branches %v, want %v", round, i, scratch, viaV2.Branches)
			}
		}
		v.Release()
	}
}

// TestBatchCodecRejectsMixedPrograms pins the header invariant: one batch,
// one program.
func TestBatchCodecRejectsMixedPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomTrace(rng, "prog-a")
	b := randomTrace(rng, "prog-b")
	if _, err := EncodeBatch("prog-a", []*Trace{a, b}); err == nil {
		t.Fatal("mixed-program batch encoded without error")
	}
}

// TestBatchCodecEmptyBatch pins that a zero-trace batch round-trips (the
// wire permits it; the hive treats it as a no-op).
func TestBatchCodecEmptyBatch(t *testing.T) {
	enc, err := EncodeBatch("", nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	if v.Len() != 0 || v.ProgramID() != "" {
		t.Fatalf("empty batch decoded to %d traces program %q", v.Len(), v.ProgramID())
	}
}

// TestBatchDecodeRejectsCorruption flips every byte of a valid encoding and
// truncates at every length; DecodeBatch must either reject the mutation or
// decode something internally consistent — never panic, never over-read.
func TestBatchDecodeRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	batch := []*Trace{randomTrace(rng, "prog-corrupt"), randomTrace(rng, "prog-corrupt")}
	enc, err := EncodeBatch("prog-corrupt", batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(enc); i++ {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x41
		if v, err := DecodeBatch(mut); err == nil {
			for k := 0; k < v.Len(); k++ {
				_ = v.Materialize(k)
			}
			v.Release()
		}
		if v, err := DecodeBatch(enc[:i]); err == nil {
			for k := 0; k < v.Len(); k++ {
				_ = v.Materialize(k)
			}
			v.Release()
		}
	}
}

// FuzzBatchCodec feeds arbitrary bytes to DecodeBatch; anything that
// decodes must materialize, re-encode, and decode again to the same traces
// (decode is a normalizing projection onto valid batches).
func FuzzBatchCodec(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	for n := 0; n < 4; n++ {
		batch := make([]*Trace, n)
		for i := range batch {
			batch[i] = randomTrace(rng, "prog-fuzz")
		}
		enc, err := EncodeBatch("prog-fuzz", batch)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{batchVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeBatch(data)
		if err != nil {
			return
		}
		defer v.Release()
		traces := v.MaterializeAll()
		re, err := AppendBatch(nil, v.ProgramID(), traces)
		if err != nil {
			t.Fatalf("re-encode of decoded batch failed: %v", err)
		}
		v2, err := DecodeBatch(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		defer v2.Release()
		if !reflect.DeepEqual(v2.MaterializeAll(), traces) {
			t.Fatal("re-encoded batch decodes differently")
		}
	})
}

// TestBatchViewBytesAreInput pins the zero-copy journal contract: the bytes
// a view exposes are the decode input itself, not a copy.
func TestBatchViewBytesAreInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	enc, err := EncodeBatch("prog-bytes", []*Trace{randomTrace(rng, "prog-bytes")})
	if err != nil {
		t.Fatal(err)
	}
	v, err := DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	if !bytes.Equal(v.Bytes(), enc) || &v.Bytes()[0] != &enc[0] {
		t.Fatal("view bytes are not the input buffer")
	}
}

// TestBatchDecodeRejectsLengthOverflow pins the wraparound guard: section
// lengths near 2^64 must be rejected, not wrapped past the slab bounds
// check into non-monotonic offsets (which would panic accessors). Found by
// review of the original per-iteration check.
func TestBatchDecodeRejectsLengthOverflow(t *testing.T) {
	var buf []byte
	buf = append(buf, batchVersion)
	buf = appendString(buf, "p")       // programID
	buf = binary.AppendUvarint(buf, 1) // pod count
	buf = appendString(buf, "pod")     // pod dictionary
	buf = binary.AppendUvarint(buf, 2) // n = 2 traces
	buf = append(buf, 0, 0)            // pod index column
	buf = append(buf, 1, 1)            // mode column
	buf = append(buf, 1, 1)            // outcome column
	buf = append(buf, 3, 3)            // privacy column
	for i := 0; i < 3; i++ {           // sampleRate/Phase/K columns
		buf = append(buf, 0, 0)
	}
	buf = append(buf, 0, 0)                       // seq column (abs, delta)
	buf = append(buf, 0, 0)                       // faultPC
	buf = append(buf, 0, 0)                       // assertID
	buf = append(buf, 0, 0)                       // steps
	buf = append(buf, 0, 0)                       // branch counts
	buf = binary.AppendUvarint(buf, 16)           // branch len[0]
	buf = binary.AppendUvarint(buf, ^uint64(0)-7) // branch len[1]: wraps total to 8
	buf = append(buf, make([]byte, 64)...)        // padding "slab" bytes

	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("DecodeBatch panicked on overflowing lengths: %v", r)
		}
	}()
	if v, err := DecodeBatch(buf); err == nil {
		for i := 0; i < v.Len(); i++ {
			_ = v.Materialize(i)
		}
		v.Release()
		t.Fatal("batch with wrapping section lengths decoded without error")
	}
}
