package trace

import (
	"errors"
	"fmt"
)

// ErrCombine is wrapped by family-narrowing failures.
var ErrCombine = errors.New("trace: cannot combine coordinated traces")

// SiteDirections maps a static branch site to the direction it took during
// one execution. It is the "family" representation of paper §3.1: a
// coordinated-sampled trace constrains only its partition's sites; combining
// traces of the same execution identity narrows the family until (for
// programs whose sites decide at most once per run) it pins the exact path.
type SiteDirections map[int32]bool

// CombineCoordinated narrows the path family by merging coordinated-sampled
// traces of the *same execution identity* — same program, input digest,
// schedule hash, and outcome. It fails when the traces disagree on identity,
// when a site was observed with both directions (a loop site whose direction
// changed across iterations cannot be summarized by one bit), or when the
// partitions overlap inconsistently.
func CombineCoordinated(traces []*Trace) (SiteDirections, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("%w: no traces", ErrCombine)
	}
	first := traces[0]
	sites := make(SiteDirections)
	for _, tr := range traces {
		if tr.Mode != CaptureCoordinated {
			return nil, fmt.Errorf("%w: trace mode %s", ErrCombine, tr.Mode)
		}
		if tr.ProgramID != first.ProgramID || tr.InputDigest != first.InputDigest ||
			tr.ScheduleHash != first.ScheduleHash || tr.Outcome != first.Outcome {
			return nil, fmt.Errorf("%w: execution identities differ", ErrCombine)
		}
		for _, be := range tr.Branches {
			if prev, seen := sites[be.ID]; seen && prev != be.Taken {
				return nil, fmt.Errorf("%w: site #%d observed both directions (loop site)", ErrCombine, be.ID)
			}
			sites[be.ID] = be.Taken
		}
	}
	return sites, nil
}

// MissingPhases reports which sampling phases of k are not yet represented
// among traces — the fragments still needed before the family pins a path.
func MissingPhases(traces []*Trace, k uint32) []uint32 {
	if k == 0 {
		return nil
	}
	have := make(map[uint32]bool, k)
	for _, tr := range traces {
		if tr.Mode == CaptureCoordinated && tr.SampleK == k {
			have[tr.SamplePhase] = true
		}
	}
	var missing []uint32
	for p := uint32(0); p < k; p++ {
		if !have[p] {
			missing = append(missing, p)
		}
	}
	return missing
}
