package sched

import "repro/internal/prog"

// Systematic enumerates thread interleavings via iterative deepening over
// scheduling decision prefixes, bounded by MaxDecisions. The hive uses it to
// steer pods toward rare interleavings deterministically: each enumeration
// index maps to one schedule.
//
// The enumeration treats every Pick call as a decision point with a branching
// factor equal to the number of runnable threads. A schedule is identified by
// the sequence of choice *indices* (not tids), which keeps the space well
// defined even when the runnable set changes across runs.
type Systematic struct {
	// choices is the decision prefix to force, as indices into the runnable
	// set at each decision point.
	choices []int
	pos     int
	// observed records the branching factor seen at each decision point, so
	// the enumerator can compute the next prefix.
	observed []int
	// fairAfter is the decision index beyond which picks rotate over the
	// runnable set instead of defaulting to index 0. Within [len(choices),
	// fairAfter) the default stays 0 so the enumerator's mixed-radix walk
	// visits every vector exactly once; beyond fairAfter (outside the
	// enumerated space) rotation guarantees fairness, so avoidance gates —
	// which rely on lock holders making progress — cannot be starved into
	// livelock by the enumeration default. Zero means "never rotate".
	fairAfter int
	// Overflowed reports that the run had more decision points than the
	// forced prefix.
	Overflowed bool
}

var _ prog.Scheduler = (*Systematic)(nil)

// NewSystematic creates a scheduler that forces the given decision prefix.
func NewSystematic(choices []int) *Systematic {
	return &Systematic{choices: append([]int(nil), choices...)}
}

// FairAfter makes decisions at index >= n rotate over the runnable set (see
// the field comment); the Enumerator sets it to its decision bound.
func (s *Systematic) FairAfter(n int) *Systematic {
	s.fairAfter = n
	return s
}

// Pick implements prog.Scheduler.
func (s *Systematic) Pick(step int64, runnable []int) int {
	idx := 0
	switch {
	case s.pos < len(s.choices):
		idx = s.choices[s.pos]
		if idx >= len(runnable) {
			idx = len(runnable) - 1
		}
	case s.fairAfter > 0 && s.pos >= s.fairAfter:
		s.Overflowed = true
		idx = s.pos % len(runnable)
	default:
		s.Overflowed = true
	}
	s.observed = append(s.observed, len(runnable))
	s.pos++
	return runnable[idx]
}

// Observed returns the branching factors recorded during the run.
func (s *Systematic) Observed() []int { return append([]int(nil), s.observed...) }

// Prefix returns the forced decision prefix.
func (s *Systematic) Prefix() []int { return append([]int(nil), s.choices...) }

// Enumerator walks the schedule space in depth-first order with a decision
// bound. Call Next to get the scheduler for the next run, then report the
// branching factors it Observed so the enumerator can advance.
type Enumerator struct {
	// MaxDecisions bounds the forced prefix length (decisions beyond it take
	// index 0), keeping the space finite.
	MaxDecisions int

	prefix   []int
	factors  []int
	done     bool
	explored int
}

// NewEnumerator creates an enumerator with the given decision bound.
func NewEnumerator(maxDecisions int) *Enumerator {
	return &Enumerator{MaxDecisions: maxDecisions}
}

// Done reports whether the space is exhausted.
func (e *Enumerator) Done() bool { return e.done }

// Explored returns how many schedules have been issued.
func (e *Enumerator) Explored() int { return e.explored }

// Next returns the scheduler for the next unexplored schedule, or nil when
// the bounded space is exhausted.
func (e *Enumerator) Next() *Systematic {
	if e.done {
		return nil
	}
	e.explored++
	return NewSystematic(e.prefix).FairAfter(e.MaxDecisions)
}

// Report feeds back the branching factors observed by the scheduler returned
// from the previous Next call, advancing the enumeration cursor.
func (e *Enumerator) Report(s *Systematic) {
	factors := s.Observed()
	if len(factors) > e.MaxDecisions {
		factors = factors[:e.MaxDecisions]
	}
	// Extend the current prefix to the full observed depth with zeros so the
	// DFS increment below explores the deepest decisions first.
	prefix := make([]int, len(factors))
	copy(prefix, e.prefix)
	// Increment the prefix like a mixed-radix counter, most-significant
	// digit first ... actually least-significant (deepest) first for DFS.
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i]+1 < factors[i] {
			prefix[i]++
			e.prefix = prefix[:i+1]
			return
		}
		// Carry: reset and move up.
	}
	e.done = true
}
