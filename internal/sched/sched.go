// Package sched provides thread schedulers for the prog VM: deterministic
// round-robin, seeded random interleavings (a population of users naturally
// samples schedules), recorded/replayed schedules, and a systematic
// preemption-bounded enumerator used by the hive's guided exploration
// (paper §3.3: "there may be certain thread interleavings that are rare in
// practice ... SoftBorg instructs some of the pods to guide their program
// copies toward those thread schedules").
package sched

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"repro/internal/prog"
	"repro/internal/stats"
)

// RoundRobin runs each runnable thread for Quantum consecutive steps before
// rotating. It is fully deterministic.
type RoundRobin struct {
	// Quantum is the steps per turn; zero means 1.
	Quantum int64

	cur  int
	used int64
}

var _ prog.Scheduler = (*RoundRobin)(nil)

// Pick implements prog.Scheduler.
func (r *RoundRobin) Pick(step int64, runnable []int) int {
	q := r.Quantum
	if q <= 0 {
		q = 1
	}
	// Keep running the current thread while it remains runnable and has
	// quantum left.
	for _, tid := range runnable {
		if tid == r.cur && r.used < q {
			r.used++
			return tid
		}
	}
	// Rotate to the next runnable thread after cur.
	next := runnable[0]
	for _, tid := range runnable {
		if tid > r.cur {
			next = tid
			break
		}
	}
	r.cur = next
	r.used = 1
	return next
}

// Random picks uniformly among runnable threads with preemption probability
// Preempt (otherwise it sticks with the previous thread when possible).
// Seeded, hence reproducible; different seeds model different users'
// machines and loads.
type Random struct {
	rng     *stats.RNG
	preempt float64
	last    int
	trace   []uint8
	record  bool
}

var _ prog.Scheduler = (*Random)(nil)

// NewRandom creates a seeded random scheduler. preempt in [0,1] is the
// probability of a context switch at each step; 1 means uniform at every
// step.
func NewRandom(seed uint64, preempt float64) *Random {
	return &Random{rng: stats.NewRNG(seed), preempt: preempt, last: -1}
}

// Record makes the scheduler keep the decision trace for later hashing or
// replay.
func (r *Random) Record() *Random { r.record = true; return r }

// Pick implements prog.Scheduler.
func (r *Random) Pick(step int64, runnable []int) int {
	choice := -1
	if r.last >= 0 && !r.rng.Bool(r.preempt) {
		for _, tid := range runnable {
			if tid == r.last {
				choice = tid
				break
			}
		}
	}
	if choice < 0 {
		choice = runnable[r.rng.Intn(len(runnable))]
	}
	r.last = choice
	if r.record {
		r.trace = append(r.trace, uint8(choice))
	}
	return choice
}

// Trace returns the recorded decisions (nil unless Record was called).
func (r *Random) Trace() []uint8 { return append([]uint8(nil), r.trace...) }

// Replay replays a recorded decision sequence. When the script is exhausted
// or names a non-runnable thread it falls back to the lowest runnable
// thread, so replay degrades gracefully on divergence.
type Replay struct {
	Script []uint8
	pos    int
	// Diverged counts fallback decisions.
	Diverged int
}

var _ prog.Scheduler = (*Replay)(nil)

// Pick implements prog.Scheduler.
func (r *Replay) Pick(step int64, runnable []int) int {
	if r.pos < len(r.Script) {
		want := int(r.Script[r.pos])
		r.pos++
		for _, tid := range runnable {
			if tid == want {
				return tid
			}
		}
	}
	r.Diverged++
	return runnable[0]
}

// Hash returns a stable digest of a schedule decision trace; the pod attaches
// it to traces so the hive can distinguish interleavings cheaply.
func Hash(script []uint8) string {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(script)))
	h.Write(n[:])
	h.Write(script)
	return hex.EncodeToString(h.Sum(nil)[:8])
}
