package sched

import (
	"testing"

	"repro/internal/prog"
)

func TestRoundRobinRotates(t *testing.T) {
	rr := &RoundRobin{Quantum: 2}
	runnable := []int{0, 1, 2}
	var picks []int
	for i := 0; i < 6; i++ {
		picks = append(picks, rr.Pick(int64(i), runnable))
	}
	want := []int{0, 0, 1, 1, 2, 2}
	for i := range want {
		if picks[i] != want[i] {
			t.Fatalf("picks = %v, want %v", picks, want)
		}
	}
}

func TestRoundRobinSkipsBlocked(t *testing.T) {
	rr := &RoundRobin{Quantum: 1}
	if got := rr.Pick(0, []int{1, 2}); got != 1 {
		t.Fatalf("pick = %d, want 1", got)
	}
	// Thread 1 now "blocked": only 2 runnable.
	if got := rr.Pick(1, []int{2}); got != 2 {
		t.Fatalf("pick = %d, want 2", got)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a := NewRandom(5, 0.5).Record()
	b := NewRandom(5, 0.5).Record()
	runnable := []int{0, 1, 2}
	for i := 0; i < 50; i++ {
		pa := a.Pick(int64(i), runnable)
		pb := b.Pick(int64(i), runnable)
		if pa != pb {
			t.Fatalf("step %d: %d vs %d", i, pa, pb)
		}
	}
	if Hash(a.Trace()) != Hash(b.Trace()) {
		t.Error("identical schedules hash differently")
	}
}

func TestRandomDifferentSeedsDiffer(t *testing.T) {
	a := NewRandom(1, 1).Record()
	b := NewRandom(2, 1).Record()
	runnable := []int{0, 1, 2, 3}
	same := true
	for i := 0; i < 30; i++ {
		if a.Pick(int64(i), runnable) != b.Pick(int64(i), runnable) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

func TestReplayFollowsScript(t *testing.T) {
	r := &Replay{Script: []uint8{2, 0, 1}}
	runnable := []int{0, 1, 2}
	want := []int{2, 0, 1}
	for i, w := range want {
		if got := r.Pick(int64(i), runnable); got != w {
			t.Fatalf("step %d: got %d, want %d", i, got, w)
		}
	}
	// Script exhausted: falls back to lowest runnable.
	if got := r.Pick(3, runnable); got != 0 {
		t.Fatalf("fallback pick = %d, want 0", got)
	}
	if r.Diverged != 1 {
		t.Errorf("diverged = %d, want 1", r.Diverged)
	}
}

func TestReplayDivergesGracefully(t *testing.T) {
	r := &Replay{Script: []uint8{5}}
	if got := r.Pick(0, []int{0, 1}); got != 0 {
		t.Fatalf("pick = %d, want fallback 0", got)
	}
	if r.Diverged != 1 {
		t.Errorf("diverged = %d", r.Diverged)
	}
}

func TestSystematicForcesPrefix(t *testing.T) {
	s := NewSystematic([]int{1, 0, 1})
	runnable := []int{0, 1}
	got := []int{s.Pick(0, runnable), s.Pick(1, runnable), s.Pick(2, runnable)}
	want := []int{1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("picks = %v, want %v", got, want)
		}
	}
	if s.Overflowed {
		t.Error("should not overflow within prefix")
	}
	s.Pick(3, runnable)
	if !s.Overflowed {
		t.Error("should overflow past prefix")
	}
}

func TestEnumeratorCoversSpace(t *testing.T) {
	// Simulate a fixed decision space: depth 3, branching factor 2 at each
	// point. The enumerator must generate all 8 schedules and stop.
	e := NewEnumerator(3)
	seen := map[string]bool{}
	for !e.Done() {
		s := e.Next()
		if s == nil {
			break
		}
		// "Run": 3 decisions with 2 runnable threads each.
		key := ""
		runnable := []int{0, 1}
		for i := 0; i < 3; i++ {
			pick := s.Pick(int64(i), runnable)
			key += string(rune('0' + pick))
		}
		seen[key] = true
		e.Report(s)
	}
	if len(seen) != 8 {
		t.Fatalf("explored %d schedules (%v), want 8", len(seen), seen)
	}
	if e.Explored() != 8 {
		t.Errorf("Explored() = %d, want 8", e.Explored())
	}
}

func TestEnumeratorFindsRareDeadlock(t *testing.T) {
	// The dining pair deadlocks only under specific interleavings; the
	// enumerator must find at least one within a small bound.
	b := prog.NewBuilder("dining2", 0).SetLocks(2)
	b.Thread()
	b.Lock(0).Yield().Lock(1).Unlock(1).Unlock(0).Halt()
	b.Thread()
	b.Lock(1).Yield().Lock(0).Unlock(0).Unlock(1).Halt()
	p := b.MustBuild()

	e := NewEnumerator(6)
	foundDeadlock := false
	runs := 0
	for !e.Done() && runs < 200 {
		s := e.Next()
		if s == nil {
			break
		}
		m, err := prog.NewMachine(p, prog.Config{Scheduler: s})
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		runs++
		if res.Outcome == prog.OutcomeDeadlock {
			foundDeadlock = true
			break
		}
		e.Report(s)
	}
	if !foundDeadlock {
		t.Fatalf("no deadlock found in %d systematic runs", runs)
	}
}

func TestSystematicFairAfterRotates(t *testing.T) {
	s := NewSystematic(nil).FairAfter(2)
	runnable := []int{0, 1}
	// Decisions 0,1 default to index 0; from decision 2 on, rotation.
	picks := []int{
		s.Pick(0, runnable), s.Pick(1, runnable),
		s.Pick(2, runnable), s.Pick(3, runnable), s.Pick(4, runnable),
	}
	if picks[0] != 0 || picks[1] != 0 {
		t.Fatalf("within-bound defaults = %v, want index 0", picks[:2])
	}
	if picks[2] == picks[3] && picks[3] == picks[4] {
		t.Fatalf("beyond-bound picks never rotate: %v", picks)
	}
}

func TestHashLengthSensitive(t *testing.T) {
	if Hash([]uint8{0, 1}) == Hash([]uint8{0, 1, 0}) {
		t.Error("hash ignores length")
	}
	if Hash(nil) == Hash([]uint8{0}) {
		t.Error("hash of empty equals hash of zero")
	}
}
