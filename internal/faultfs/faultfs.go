// Package faultfs is a fault-injecting filesystem for the durability
// layers: it wraps any journal.FS and, driven by a deterministically seeded
// RNG, injects the disk failure modes that crash-recovery code must survive
// but ordinary tests never exercise — torn writes (a random prefix lands,
// then the write fails), short writes, ENOSPC, EIO, slow or failed fsyncs,
// and crash points (after the Nth operation every call fails, modeling the
// process dying mid-sequence from the disk's point of view).
//
// Thread it through journal.Options.FS (or archive.DirStore's FS) and every
// byte the journal, snapshot chain, tether, and archive tiers persist flows
// through the injector. The same seed replays the same fault schedule, so a
// failure found under -race shrinks to a deterministic reproduction.
package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"sync"
	"syscall"

	"repro/internal/journal"
)

// ErrCrashed is returned by every operation after the crash point fires:
// from the filesystem's perspective the process is gone. Tests then discard
// the store and re-open the directory with a healthy FS, exactly like a
// post-crash boot.
var ErrCrashed = errors.New("faultfs: crashed")

// ErrShortWrite is returned (with a partial byte count) by injected short
// writes.
var ErrShortWrite = errors.New("faultfs: short write")

// Plan is a deterministic fault schedule. Rates are probabilities in
// [0, 1] evaluated per operation against the seeded RNG; CrashAfterOps is
// an absolute operation count. The zero Plan injects nothing.
type Plan struct {
	// Seed drives every probabilistic decision. The same Plan over the
	// same operation sequence injects the same faults.
	Seed int64

	// TornWriteRate is the probability a Write persists only a random
	// prefix and then fails with EIO — the torn-write model journal
	// rollback and recovery's truncate-at-first-bad-record must absorb.
	TornWriteRate float64
	// ShortWriteRate is the probability a Write persists a random prefix
	// and returns (n, ErrShortWrite) without tearing the medium.
	ShortWriteRate float64
	// WriteErrRate is the probability a Write fails cleanly (no bytes
	// land) with ENOSPC — the disk-full model.
	WriteErrRate float64
	// SyncErrRate is the probability a Sync fails with EIO; the bytes may
	// or may not be durable, which is exactly why the journal rolls the
	// record back.
	SyncErrRate float64
	// OpenErrRate / RenameErrRate / TruncateErrRate fail the metadata
	// operations snapshots and tethers depend on.
	OpenErrRate     float64
	RenameErrRate   float64
	TruncateErrRate float64

	// CrashAfterOps, when > 0, latches the crash state once that many
	// operations (writes, syncs, opens, renames, removes, truncates) have
	// run: the Nth and every later operation fail with ErrCrashed. A torn
	// prefix of the crashing write still lands, modeling power loss
	// mid-write.
	CrashAfterOps uint64
}

// Stats counts the faults actually injected — tests assert on these so a
// "survived every fault" pass can't silently mean "no fault fired".
type Stats struct {
	Ops         uint64
	TornWrites  uint64
	ShortWrites uint64
	WriteErrs   uint64
	SyncErrs    uint64
	OpenErrs    uint64
	RenameErrs  uint64
	TruncErrs   uint64
	CrashedOps  uint64
}

// FS wraps an inner journal.FS with fault injection. Safe for concurrent
// use; the RNG and counters are guarded by one mutex (the injector is for
// tests, not hot paths).
type FS struct {
	inner journal.FS
	plan  Plan

	// mu guards rng and stats; crash latching is atomic-free under the
	// same lock to keep fault ordering deterministic per seed.
	mu      sync.Mutex
	rng     *rand.Rand
	stats   Stats
	crashed bool
	healed  bool
	forced  bool
}

// Wrap builds a fault-injecting FS over inner (nil inner wraps the real
// filesystem) with the given plan.
func Wrap(inner journal.FS, plan Plan) *FS {
	if inner == nil {
		inner = journal.OSFS()
	}
	return &FS{inner: inner, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Stats snapshots the injected-fault counters.
func (f *FS) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Crashed reports whether the crash point has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed && !f.healed
}

// Heal clears the crash latch and disables all further injection — the
// "replace the disk and reboot" step of a recovery scenario that keeps
// using the same FS value.
func (f *FS) Heal() {
	f.mu.Lock()
	f.healed = true
	f.mu.Unlock()
}

// ForceENOSPC flips the deterministic disk-full switch: while set, every
// Write fails cleanly with ENOSPC regardless of the plan's rates. Tests
// flip it mid-run to drive persistent-failure paths (the hive's read-only
// breaker) at an exact point in the operation sequence, then flip it back
// to model the operator freeing space.
func (f *FS) ForceENOSPC(on bool) {
	f.mu.Lock()
	f.forced = on
	f.mu.Unlock()
}

// decision is one operation's injected fate, resolved under mu so the
// fault sequence is a pure function of (seed, operation order).
type decision struct {
	crash bool
	fault bool
	// tornFrac positions the torn/short prefix within the write.
	tornFrac float64
	short    bool
}

func (f *FS) decide(rate float64) decision {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.healed {
		return decision{}
	}
	f.stats.Ops++
	if f.plan.CrashAfterOps > 0 && f.stats.Ops >= f.plan.CrashAfterOps {
		f.crashed = true
	}
	if f.crashed {
		f.stats.CrashedOps++
		return decision{crash: true, tornFrac: f.rng.Float64()}
	}
	d := decision{tornFrac: f.rng.Float64()}
	if rate > 0 && f.rng.Float64() < rate {
		d.fault = true
	}
	return d
}

// decideWrite resolves a write's fate across the three write-fault tiers.
func (f *FS) decideWrite() (d decision, kind int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.healed {
		return decision{}, 0
	}
	f.stats.Ops++
	if f.plan.CrashAfterOps > 0 && f.stats.Ops >= f.plan.CrashAfterOps {
		f.crashed = true
	}
	if f.crashed {
		f.stats.CrashedOps++
		return decision{crash: true, tornFrac: f.rng.Float64()}, 0
	}
	if f.forced {
		f.stats.WriteErrs++
		return decision{fault: true}, 3
	}
	d = decision{tornFrac: f.rng.Float64()}
	roll := f.rng.Float64()
	switch {
	case roll < f.plan.TornWriteRate:
		d.fault = true
		kind = 1
		f.stats.TornWrites++
	case roll < f.plan.TornWriteRate+f.plan.ShortWriteRate:
		d.fault, d.short = true, true
		kind = 2
		f.stats.ShortWrites++
	case roll < f.plan.TornWriteRate+f.plan.ShortWriteRate+f.plan.WriteErrRate:
		d.fault = true
		kind = 3
		f.stats.WriteErrs++
	}
	return d, kind
}

func (f *FS) count(field *uint64) {
	f.mu.Lock()
	*field++
	f.mu.Unlock()
}

// OpenFile injects open failures and wraps the file for write/sync faults.
func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (journal.File, error) {
	d := f.decide(f.plan.OpenErrRate)
	if d.crash {
		return nil, fmt.Errorf("faultfs: open %s: %w", name, ErrCrashed)
	}
	if d.fault {
		f.count(&f.stats.OpenErrs)
		return nil, &os.PathError{Op: "open", Path: name, Err: syscall.EIO}
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner, name: name}, nil
}

// ReadFile is fault-free: reads don't mutate durable state, and recovery
// reading back what survived is precisely what the tests assert on.
func (f *FS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

// ReadDir is fault-free like ReadFile.
func (f *FS) ReadDir(name string) ([]fs.DirEntry, error) { return f.inner.ReadDir(name) }

// Remove passes through but respects the crash latch.
func (f *FS) Remove(name string) error {
	if d := f.decide(0); d.crash {
		return fmt.Errorf("faultfs: remove %s: %w", name, ErrCrashed)
	}
	return f.inner.Remove(name)
}

// Rename injects failures on the snapshot-install step.
func (f *FS) Rename(oldpath, newpath string) error {
	d := f.decide(f.plan.RenameErrRate)
	if d.crash {
		return fmt.Errorf("faultfs: rename %s: %w", newpath, ErrCrashed)
	}
	if d.fault {
		f.count(&f.stats.RenameErrs)
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: syscall.EIO}
	}
	return f.inner.Rename(oldpath, newpath)
}

// Truncate injects failures on the torn-tail rollback step — the path that
// poisons a journal generation when it fails.
func (f *FS) Truncate(name string, size int64) error {
	d := f.decide(f.plan.TruncateErrRate)
	if d.crash {
		return fmt.Errorf("faultfs: truncate %s: %w", name, ErrCrashed)
	}
	if d.fault {
		f.count(&f.stats.TruncErrs)
		return &os.PathError{Op: "truncate", Path: name, Err: syscall.EIO}
	}
	return f.inner.Truncate(name, size)
}

// MkdirAll passes through (directory creation precedes any state worth
// corrupting).
func (f *FS) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }

// file wraps one open file with the injector's write/sync faults.
type file struct {
	fs    *FS
	inner journal.File
	name  string
}

func (fl *file) Read(p []byte) (int, error) { return fl.inner.Read(p) }

func (fl *file) Write(p []byte) (int, error) {
	d, kind := fl.fs.decideWrite()
	if d.crash {
		// Power loss mid-write: a prefix may still reach the medium.
		if n := int(d.tornFrac * float64(len(p))); n > 0 {
			_, _ = fl.inner.Write(p[:n])
		}
		return 0, fmt.Errorf("faultfs: write %s: %w", fl.name, ErrCrashed)
	}
	if !d.fault {
		return fl.inner.Write(p)
	}
	switch kind {
	case 1: // torn: a prefix lands, the write reports EIO
		n := int(d.tornFrac * float64(len(p)))
		if n > 0 {
			_, _ = fl.inner.Write(p[:n])
		}
		return 0, &os.PathError{Op: "write", Path: fl.name, Err: syscall.EIO}
	case 2: // short: a prefix lands and is reported as such
		n := int(d.tornFrac * float64(len(p)))
		if n >= len(p) {
			n = len(p) - 1
		}
		if n > 0 {
			_, _ = fl.inner.Write(p[:n])
		}
		return n, fmt.Errorf("faultfs: write %s: %w", fl.name, ErrShortWrite)
	default: // clean failure: disk full, nothing lands
		return 0, &os.PathError{Op: "write", Path: fl.name, Err: syscall.ENOSPC}
	}
}

func (fl *file) Sync() error {
	d := fl.fs.decide(fl.fs.plan.SyncErrRate)
	if d.crash {
		return fmt.Errorf("faultfs: sync %s: %w", fl.name, ErrCrashed)
	}
	if d.fault {
		fl.fs.count(&fl.fs.stats.SyncErrs)
		return &os.PathError{Op: "sync", Path: fl.name, Err: syscall.EIO}
	}
	return fl.inner.Sync()
}

func (fl *file) Close() error               { return fl.inner.Close() }
func (fl *file) Stat() (os.FileInfo, error) { return fl.inner.Stat() }
func (fl *file) Truncate(size int64) error {
	d := fl.fs.decide(fl.fs.plan.TruncateErrRate)
	if d.crash {
		return fmt.Errorf("faultfs: truncate %s: %w", fl.name, ErrCrashed)
	}
	if d.fault {
		fl.fs.count(&fl.fs.stats.TruncErrs)
		return &os.PathError{Op: "truncate", Path: fl.name, Err: syscall.EIO}
	}
	return fl.inner.Truncate(size)
}
