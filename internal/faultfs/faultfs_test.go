package faultfs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/journal"
)

// TestDeterministicSchedule: the same seed over the same operation sequence
// injects the same faults — the property every shrunk reproduction relies on.
func TestDeterministicSchedule(t *testing.T) {
	run := func() Stats {
		dir := t.TempDir()
		ffs := Wrap(nil, Plan{Seed: 42, TornWriteRate: 0.3, SyncErrRate: 0.3, WriteErrRate: 0.2})
		for i := 0; i < 50; i++ {
			f, err := ffs.OpenFile(filepath.Join(dir, fmt.Sprintf("f%d", i)), os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				continue
			}
			_, _ = f.Write([]byte("payload-payload-payload"))
			_ = f.Sync()
			_ = f.Close()
		}
		return ffs.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different schedules: %+v vs %+v", a, b)
	}
	if a.TornWrites == 0 || a.SyncErrs == 0 || a.WriteErrs == 0 {
		t.Fatalf("plan injected nothing: %+v", a)
	}
}

// TestCrashLatch: once the crash point fires every later operation fails,
// and Heal lifts the latch.
func TestCrashLatch(t *testing.T) {
	dir := t.TempDir()
	ffs := Wrap(nil, Plan{Seed: 1, CrashAfterOps: 3})
	path := filepath.Join(dir, "f")
	f, err := ffs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644) // op 1
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Write([]byte("ok")); err != nil { // op 2
		t.Fatalf("write before crash point: %v", err)
	}
	if _, err := f.Write([]byte("boom")); !errors.Is(err, ErrCrashed) { // op 3 latches
		t.Fatalf("write at crash point: got %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash: got %v, want ErrCrashed", err)
	}
	if _, err := ffs.OpenFile(path, os.O_RDONLY, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open after crash: want ErrCrashed")
	}
	if !ffs.Crashed() {
		t.Fatal("Crashed() false after latch")
	}
	ffs.Heal()
	if ffs.Crashed() {
		t.Fatal("Crashed() true after Heal")
	}
	if _, err := ffs.OpenFile(path, os.O_RDONLY, 0); err != nil {
		t.Fatalf("open after heal: %v", err)
	}
}

// TestENOSPCSurfacesCleanly: a clean write failure reports ENOSPC and lands
// no bytes.
func TestENOSPCSurfacesCleanly(t *testing.T) {
	dir := t.TempDir()
	ffs := Wrap(nil, Plan{Seed: 7, WriteErrRate: 1.0})
	f, err := ffs.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Write([]byte("data")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("got %v, want ENOSPC", err)
	}
	_ = f.Close()
	data, _ := os.ReadFile(filepath.Join(dir, "f"))
	if len(data) != 0 {
		t.Fatalf("clean write failure leaked %d bytes", len(data))
	}
}

// TestJournalSurvivesFaultStorm: a journal hammered through the injector
// never lies — every append it acked is replayed intact after a clean
// re-open, and every append it failed is absent or rolled back. This is the
// core faultfs/journal contract the matrix tests build on.
func TestJournalSurvivesFaultStorm(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			ffs := Wrap(nil, Plan{
				Seed:           seed,
				TornWriteRate:  0.10,
				ShortWriteRate: 0.05,
				WriteErrRate:   0.05,
				SyncErrRate:    0.10,
			})
			st, err := journal.Open(dir, journal.Options{Fsync: true, FS: ffs})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			const program = "prog-storm"
			var acked []uint64
			for seq := uint64(1); seq <= 200; seq++ {
				op := &journal.Op{Kind: journal.OpBatch, Session: "s", Seq: seq, Traces: [][]byte{{byte(seq)}}}
				if err := st.Append(program, op); err == nil {
					acked = append(acked, seq)
				}
			}
			_ = st.Close()

			// Clean re-open on the real filesystem: the post-crash boot.
			st2, err := journal.Open(dir, journal.Options{})
			if err != nil {
				t.Fatalf("re-open: %v", err)
			}
			defer st2.Close()
			got := map[uint64]bool{}
			if _, err := st2.Replay(program, func(op *journal.Op) error {
				got[op.Seq] = true
				return nil
			}); err != nil {
				t.Fatalf("replay: %v", err)
			}
			for _, seq := range acked {
				if !got[seq] {
					t.Fatalf("seed %d: acked seq %d lost (acked %d, replayed %d)", seed, seq, len(acked), len(got))
				}
			}
		})
	}
}
