package symbolic

import (
	"fmt"

	"repro/internal/constraint"
	"repro/internal/exectree"
	"repro/internal/prog"
	"repro/internal/trace"
)

// ExploreResult summarizes a directed exploration.
type ExploreResult struct {
	// Paths are the distinct concolic paths discovered (including the seed).
	Paths []*Path
	// Infeasible are edges certified unreachable, keyed by their position:
	// the prefix of events leading to the decision point plus the missing
	// direction.
	Infeasible []InfeasibleEdge
	// SolverTicks is the total solver effort expended.
	SolverTicks int64
	// Unknown counts flip attempts abandoned on budget or concretization.
	Unknown int
}

// InfeasibleEdge is an infeasibility certificate: no in-domain input can
// drive execution along Prefix and then through Missing.
type InfeasibleEdge struct {
	Prefix  []trace.BranchEvent
	Missing exectree.Edge
}

// Explore performs DART-style directed exploration from seed inputs: run,
// then repeatedly flip unexplored branch directions, bounded by maxPaths
// total paths. Flips that the solver refutes become infeasibility
// certificates. Deterministic branch directions are certified immediately
// (their other side can never execute at that point).
func (e *Engine) Explore(seed []int64, maxPaths int) (*ExploreResult, error) {
	res := &ExploreResult{}
	seen := make(map[string]bool)

	type flipTask struct {
		path *Path
		k    int
	}
	var queue []flipTask

	addPath := func(p *Path) {
		key := pathKey(p)
		if seen[key] {
			return
		}
		seen[key] = true
		res.Paths = append(res.Paths, p)
		for k := range p.Records {
			queue = append(queue, flipTask{path: p, k: k})
		}
	}

	first, err := e.Run(seed)
	if err != nil {
		return nil, err
	}
	addPath(first)

	flipped := make(map[string]bool) // decision-point key -> already attempted
	for len(queue) > 0 && len(res.Paths) < maxPaths {
		task := queue[0]
		queue = queue[1:]

		rec := task.path.Records[task.k]
		dp := decisionKey(task.path, task.k)
		if flipped[dp] {
			continue
		}
		flipped[dp] = true

		id := int(rec.Event.ID)
		if !e.prog.InputDependent(id) {
			// Deterministic branch: at this decision point the direction is
			// fixed, so the other side is trivially infeasible.
			res.Infeasible = append(res.Infeasible, InfeasibleEdge{
				Prefix:  prefixEvents(task.path, task.k),
				Missing: exectree.Edge{ID: rec.Event.ID, Taken: !rec.Event.Taken},
			})
			continue
		}
		if !rec.Exact {
			res.Unknown++
			continue
		}

		input, verdict, ferr := e.Flip(task.path, task.k)
		if ferr != nil {
			res.Unknown++
			continue
		}
		switch verdict {
		case constraint.SAT:
			p, rerr := e.Run(input)
			if rerr != nil {
				return nil, rerr
			}
			addPath(p)
		case constraint.UNSAT:
			res.Infeasible = append(res.Infeasible, InfeasibleEdge{
				Prefix:  prefixEvents(task.path, task.k),
				Missing: exectree.Edge{ID: rec.Event.ID, Taken: !rec.Event.Taken},
			})
		default:
			res.Unknown++
		}
	}
	return res, nil
}

// SolveFrontier attempts to produce an input that drives execution along
// frontier.Prefix and then through frontier.Missing. It re-derives the path
// condition by a forced concolic run along the prefix and solves
// prefix-conditions ∧ missing-direction-condition. The returned verdict is
// SAT (input found), UNSAT (certificate: the direction is infeasible), or
// Unknown.
func (e *Engine) SolveFrontier(f exectree.Frontier) ([]int64, constraint.Verdict, error) {
	forced := make([]trace.BranchEvent, len(f.Prefix))
	for i, edge := range f.Prefix {
		forced[i] = trace.BranchEvent{ID: edge.ID, Taken: edge.Taken}
	}
	base := make([]int64, e.prog.NumInputs)
	p, err := e.RunForced(base, forced)
	if err != nil {
		return nil, constraint.Unknown, err
	}
	// Locate the decision point: the record at depth len(f.Prefix) should be
	// the frontier branch.
	if len(p.Records) <= len(f.Prefix) {
		return nil, constraint.Unknown, nil
	}
	rec := p.Records[len(f.Prefix)]
	if rec.Event.ID != f.Missing.ID {
		// Forced replay diverged (e.g. the prefix came from a different
		// syscall environment); give up rather than certify wrongly.
		return nil, constraint.Unknown, nil
	}
	if !e.prog.InputDependent(int(f.Missing.ID)) {
		// Deterministic branch: missing direction is infeasible iff the
		// natural direction differs.
		if rec.Event.Taken != f.Missing.Taken {
			return nil, constraint.UNSAT, nil
		}
		return p.Input, constraint.SAT, nil
	}
	if !rec.Exact {
		return nil, constraint.Unknown, nil
	}

	pc := make(constraint.PathCondition, 0, len(f.Prefix)+1)
	for i := 0; i < len(f.Prefix) && i < len(p.Records); i++ {
		if p.Records[i].Exact {
			pc = append(pc, p.Records[i].Cond)
		}
	}
	target := rec.Cond
	if rec.Event.Taken != f.Missing.Taken {
		target = target.Negate()
	}
	pc = append(pc, target)
	sres := e.solver().Solve(pc)
	if sres.Verdict != constraint.SAT {
		return nil, sres.Verdict, nil
	}
	return e.modelToInput(sres.Model, p.Input), constraint.SAT, nil
}

// SolveFrontierEnv is SolveFrontier under relaxed consistency: the engine
// must have been created with SymbolicSyscalls, so syscall returns are fresh
// variables the solver may choose. A SAT answer yields both an input and the
// fault-injection specs that realize the solved environment — the paper's
// §3.3 "test cases ... stated in terms of system call faults to be
// injected". Returns of syscalls the solver left unconstrained keep their
// natural value (no fault injected).
func (e *Engine) SolveFrontierEnv(f exectree.Frontier) ([]int64, []prog.FaultSpec, constraint.Verdict, error) {
	if !e.cfg.SymbolicSyscalls {
		return nil, nil, constraint.Unknown, fmt.Errorf("%w: engine not in relaxed-consistency mode", ErrUnsupported)
	}
	forced := make([]trace.BranchEvent, len(f.Prefix))
	for i, edge := range f.Prefix {
		forced[i] = trace.BranchEvent{ID: edge.ID, Taken: edge.Taken}
	}
	base := make([]int64, e.prog.NumInputs)
	p, err := e.RunForced(base, forced)
	if err != nil {
		return nil, nil, constraint.Unknown, err
	}
	if len(p.Records) <= len(f.Prefix) {
		return nil, nil, constraint.Unknown, nil
	}
	rec := p.Records[len(f.Prefix)]
	if rec.Event.ID != f.Missing.ID || !rec.Exact {
		return nil, nil, constraint.Unknown, nil
	}

	pc := make(constraint.PathCondition, 0, len(f.Prefix)+1)
	for i := 0; i < len(f.Prefix) && i < len(p.Records); i++ {
		if p.Records[i].Exact {
			pc = append(pc, p.Records[i].Cond)
		}
	}
	target := rec.Cond
	if rec.Event.Taken != f.Missing.Taken {
		target = target.Negate()
	}
	pc = append(pc, target)
	sres := e.solver().Solve(pc)
	if sres.Verdict != constraint.SAT {
		return nil, nil, sres.Verdict, nil
	}

	input := e.modelToInput(sres.Model, p.Input)
	var faults []prog.FaultSpec
	for i := 0; i < p.FreshVars && i < len(p.SyscallNums); i++ {
		varIdx := e.prog.NumInputs + i
		val, constrained := sres.Model[varIdx]
		if !constrained {
			continue // natural return suffices
		}
		faults = append(faults, prog.FaultSpec{
			Sysno:     p.SyscallNums[i],
			CallIndex: i,
			Return:    val,
		})
	}
	return input, faults, constraint.SAT, nil
}

func pathKey(p *Path) string {
	key := make([]byte, 0, len(p.Records)*3)
	for _, r := range p.Records {
		b := byte(0)
		if r.Event.Taken {
			b = 1
		}
		key = append(key, byte(r.Event.ID), byte(r.Event.ID>>8), b)
	}
	return string(key)
}

func decisionKey(p *Path, k int) string {
	return pathKey(&Path{Records: p.Records[:k]}) + "|" + p.Records[k].Event.String()
}

func prefixEvents(p *Path, k int) []trace.BranchEvent {
	out := make([]trace.BranchEvent, k)
	for i := 0; i < k; i++ {
		out[i] = p.Records[i].Event
	}
	return out
}
