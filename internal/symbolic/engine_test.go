package symbolic

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/exectree"
	"repro/internal/prog"
	"repro/internal/trace"
)

// buildGuarded returns:
//
//	x = input[0]
//	if x > 100 {            // branch 0
//	    if x < 110 { crash } // branch 1: 100 < x < 110 crashes
//	}
func buildGuarded(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("guarded", 1)
	outer, end := b.NewLabel(), b.NewLabel()
	b.Input(0, 0)
	b.BrImm(0, prog.CmpGT, 100, outer)
	b.Jmp(end)
	b.Bind(outer)
	inner := b.NewLabel()
	b.BrImm(0, prog.CmpLT, 110, inner)
	b.Jmp(end)
	b.Bind(inner)
	b.Const(1, 0)
	b.Div(2, 1, 1) // 0/0: crash
	b.Bind(end)
	b.Halt()
	return b.MustBuild()
}

func newEngine(t *testing.T, p *prog.Program) *Engine {
	t.Helper()
	e, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRunCollectsConstraints(t *testing.T) {
	p := buildGuarded(t)
	e := newEngine(t, p)
	path, err := e.Run([]int64{50})
	if err != nil {
		t.Fatal(err)
	}
	if path.Outcome != prog.OutcomeOK {
		t.Fatalf("outcome = %v", path.Outcome)
	}
	if len(path.Records) != 1 {
		t.Fatalf("records = %d, want 1", len(path.Records))
	}
	// The not-taken constraint must hold for input 50 and fail for 150.
	cond := path.Condition()
	if !cond.Holds(map[int]int64{0: 50}) {
		t.Error("condition should hold for the concrete input")
	}
	if cond.Holds(map[int]int64{0: 150}) {
		t.Error("condition should exclude the other side")
	}
}

func TestFlipFindsCrashInput(t *testing.T) {
	p := buildGuarded(t)
	e := newEngine(t, p)
	path, err := e.Run([]int64{50})
	if err != nil {
		t.Fatal(err)
	}
	input, verdict, err := e.Flip(path, 0)
	if err != nil || verdict != constraint.SAT {
		t.Fatalf("flip: verdict=%v err=%v", verdict, err)
	}
	if input[0] <= 100 {
		t.Fatalf("flipped input = %d, want > 100", input[0])
	}
	// Following the flip leads to branch 1; flipping into the crash window
	// happens during Explore.
	path2, err := e.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(path2.Records) != 2 {
		t.Fatalf("records after flip = %d, want 2", len(path2.Records))
	}
}

func TestExploreFindsAllPathsAndCrash(t *testing.T) {
	p := buildGuarded(t)
	e := newEngine(t, p)
	// Widen the domain so x>100 is reachable.
	e2, err := New(p, Config{Domain: constraint.Domain{Lo: 0, Hi: 255}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e2.Explore([]int64{0}, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Paths: x<=100 (ok), 100<x<110 (crash), x>=110 (ok) = 3.
	if len(res.Paths) != 3 {
		t.Fatalf("paths = %d, want 3", len(res.Paths))
	}
	foundCrash := false
	for _, path := range res.Paths {
		if path.Outcome == prog.OutcomeCrash {
			foundCrash = true
			if path.Input[0] <= 100 || path.Input[0] >= 110 {
				t.Errorf("crash input = %d, want in (100,110)", path.Input[0])
			}
		}
	}
	if !foundCrash {
		t.Error("explore did not find the crash")
	}
	_ = e
}

func TestExploreCertifiesInfeasible(t *testing.T) {
	// if x > 200 { if x < 100 { unreachable } }
	b := prog.NewBuilder("infeas", 1)
	outer, end := b.NewLabel(), b.NewLabel()
	b.Input(0, 0)
	b.BrImm(0, prog.CmpGT, 200, outer)
	b.Jmp(end)
	b.Bind(outer)
	inner := b.NewLabel()
	b.BrImm(0, prog.CmpLT, 100, inner)
	b.Jmp(end)
	b.Bind(inner)
	b.Assert(0, 1) // unreachable
	b.Bind(end)
	b.Halt()
	p := b.MustBuild()

	e := newEngine(t, p)
	res, err := e.Explore([]int64{0}, 20)
	if err != nil {
		t.Fatal(err)
	}
	// The inner-taken direction must be certified infeasible.
	found := false
	for _, inf := range res.Infeasible {
		if inf.Missing.ID == 1 && inf.Missing.Taken {
			found = true
		}
	}
	if !found {
		t.Fatalf("no certificate for inner branch; got %+v", res.Infeasible)
	}
}

func TestDeterministicBranchCertifiedImmediately(t *testing.T) {
	// r1 = 3; if r1 == 3 {...}: the not-taken side is structurally dead.
	b := prog.NewBuilder("det", 1)
	end := b.NewLabel()
	b.Const(1, 3)
	b.BrImm(1, prog.CmpEQ, 3, end)
	b.Assert(1, 9) // dead code (r1 != 0 anyway)
	b.Bind(end)
	b.Halt()
	p := b.MustBuild()

	e := newEngine(t, p)
	res, err := e.Explore([]int64{0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Infeasible) != 1 {
		t.Fatalf("infeasible = %+v, want exactly the dead side", res.Infeasible)
	}
	if res.Infeasible[0].Missing != (exectree.Edge{ID: 0, Taken: false}) {
		t.Errorf("certificate = %v", res.Infeasible[0].Missing)
	}
}

func TestSolveFrontier(t *testing.T) {
	p := buildGuarded(t)
	e := newEngine(t, p)

	// Frontier: at the root, branch 0 taken-side unexplored.
	input, verdict, err := e.SolveFrontier(exectree.Frontier{
		Missing: exectree.Edge{ID: 0, Taken: true},
	})
	if err != nil || verdict != constraint.SAT {
		t.Fatalf("verdict=%v err=%v", verdict, err)
	}
	if input[0] <= 100 {
		t.Fatalf("input = %v, want x>100", input)
	}

	// Frontier: after taking branch 0 with x>100... the branch-1 taken side
	// needs 100<x<110.
	prefix := []exectree.Edge{{ID: 0, Taken: true}}
	input2, verdict2, err := e.SolveFrontier(exectree.Frontier{
		Prefix:  prefix,
		Missing: exectree.Edge{ID: 1, Taken: true},
	})
	if err != nil || verdict2 != constraint.SAT {
		t.Fatalf("inner: verdict=%v err=%v", verdict2, err)
	}
	if input2[0] <= 100 || input2[0] >= 110 {
		t.Fatalf("inner input = %v, want 100<x<110", input2)
	}
}

func TestSolveFrontierUNSAT(t *testing.T) {
	// if x > 200 { if x < 100 {...} }: inner taken is infeasible.
	b := prog.NewBuilder("unsatf", 1)
	outer, end := b.NewLabel(), b.NewLabel()
	b.Input(0, 0)
	b.BrImm(0, prog.CmpGT, 200, outer)
	b.Jmp(end)
	b.Bind(outer)
	inner := b.NewLabel()
	b.BrImm(0, prog.CmpLT, 100, inner)
	b.Bind(inner)
	b.Bind(end)
	b.Halt()
	p := b.MustBuild()

	e := newEngine(t, p)
	_, verdict, err := e.SolveFrontier(exectree.Frontier{
		Prefix:  []exectree.Edge{{ID: 0, Taken: true}},
		Missing: exectree.Edge{ID: 1, Taken: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if verdict != constraint.UNSAT {
		t.Fatalf("verdict = %v, want unsat", verdict)
	}
}

func TestSymbolicSyscallsRelaxedConsistency(t *testing.T) {
	// if syscall() > 50 { crash }: only reachable via environment control.
	b := prog.NewBuilder("envdep", 0)
	bad, end := b.NewLabel(), b.NewLabel()
	b.Syscall(0, 7, 1)
	b.BrImm(0, prog.CmpGT, 50, bad)
	b.Jmp(end)
	b.Bind(bad)
	b.Const(1, 0)
	b.Div(2, 1, 1)
	b.Bind(end)
	b.Halt()
	p := b.MustBuild()

	// With symbolic syscalls, the branch condition is exact over a fresh
	// variable, so Flip can solve for the environment.
	e, err := New(p, Config{SymbolicSyscalls: true, Syscalls: &prog.ScriptedSyscalls{Returns: []int64{10}}})
	if err != nil {
		t.Fatal(err)
	}
	path, err := e.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if path.Outcome != prog.OutcomeOK || len(path.Records) != 1 {
		t.Fatalf("path = %+v", path)
	}
	if !path.Records[0].Exact {
		t.Fatal("syscall-dependent condition should be exact under relaxed consistency")
	}
	if path.FreshVars != 1 {
		t.Fatalf("fresh vars = %d, want 1", path.FreshVars)
	}
	// Solve for the environment that reaches the crash.
	pc := constraint.PathCondition{path.Records[0].Cond.Negate()}
	res := (&constraint.Solver{}).Solve(pc)
	if res.Verdict != constraint.SAT {
		t.Fatalf("env solve verdict = %v", res.Verdict)
	}
	envVal := res.Model[p.NumInputs] // fresh var index
	if envVal <= 50 {
		t.Fatalf("solved env value = %d, want > 50", envVal)
	}
	// Confirm by injecting the fault.
	inj := &prog.FaultInjector{Base: &prog.DeterministicSyscalls{}, Faults: []prog.FaultSpec{{Sysno: 7, CallIndex: -1, Return: envVal}}}
	m, err := prog.NewMachine(p, prog.Config{Input: nil, Syscalls: inj})
	if err != nil {
		t.Fatal(err)
	}
	if out := m.Run(); out.Outcome != prog.OutcomeCrash {
		t.Fatalf("injected run outcome = %v, want crash", out.Outcome)
	}
}

func TestMultiplicationConcretizes(t *testing.T) {
	// x*y is nonlinear: the branch condition must be marked inexact.
	b := prog.NewBuilder("nonlin", 2)
	end := b.NewLabel()
	b.Input(0, 0)
	b.Input(1, 1)
	b.Mul(2, 0, 1)
	b.BrImm(2, prog.CmpGT, 10, end)
	b.Bind(end)
	b.Halt()
	p := b.MustBuild()

	e := newEngine(t, p)
	path, err := e.Run([]int64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(path.Records) != 1 || path.Records[0].Exact {
		t.Fatalf("nonlinear condition should be inexact: %+v", path.Records)
	}
	// Const*var stays linear.
	b2 := prog.NewBuilder("lin", 1)
	end2 := b2.NewLabel()
	b2.Input(0, 0)
	b2.Const(1, 3)
	b2.Mul(2, 0, 1)
	b2.BrImm(2, prog.CmpGT, 10, end2)
	b2.Bind(end2)
	b2.Halt()
	p2 := b2.MustBuild()
	e2 := newEngine(t, p2)
	path2, err := e2.Run([]int64{5})
	if err != nil {
		t.Fatal(err)
	}
	if !path2.Records[0].Exact {
		t.Fatal("const*var should stay exact")
	}
}

func TestSymbolicMemory(t *testing.T) {
	// Store input to memory, load it back, branch on it: must stay exact.
	b := prog.NewBuilder("mem", 1).SetMem(4)
	end := b.NewLabel()
	b.Input(0, 0)
	b.Store(2, 0)
	b.Load(1, 2)
	b.BrImm(1, prog.CmpGT, 7, end)
	b.Bind(end)
	b.Halt()
	p := b.MustBuild()

	e := newEngine(t, p)
	path, err := e.Run([]int64{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(path.Records) != 1 || !path.Records[0].Exact {
		t.Fatalf("memory round-trip lost symbolic info: %+v", path.Records)
	}
	input, verdict, err := e.Flip(path, 0)
	if err != nil || verdict != constraint.SAT {
		t.Fatalf("flip via memory: %v/%v", verdict, err)
	}
	if input[0] <= 7 {
		t.Fatalf("flipped input = %v", input)
	}
}

func TestEngineRejectsMultiThreaded(t *testing.T) {
	b := prog.NewBuilder("mt", 0)
	b.Thread()
	b.Halt()
	b.Thread()
	b.Halt()
	p := b.MustBuild()
	if _, err := New(p, Config{}); err == nil {
		t.Fatal("want error for multi-threaded program")
	}
}

func TestForcedRunFollowsPrefix(t *testing.T) {
	p := buildGuarded(t)
	e := newEngine(t, p)
	forced := []trace.BranchEvent{{ID: 0, Taken: true}, {ID: 1, Taken: true}}
	path, err := e.RunForced([]int64{0}, forced)
	if err != nil {
		t.Fatal(err)
	}
	// Forced down the crash path despite input 0.
	if path.Outcome != prog.OutcomeCrash {
		t.Fatalf("outcome = %v, want crash (forced)", path.Outcome)
	}
}
