package symbolic

import (
	"testing"
	"testing/quick"

	"repro/internal/constraint"
	"repro/internal/prog"
	"repro/internal/proggen"
)

// Property: concolic shadow execution is sound — the collected path
// condition always holds for the concrete input that produced it.
func TestQuickPathConditionSound(t *testing.T) {
	check := func(seed uint64, a, b uint8) bool {
		p, _, err := proggen.Generate(proggen.Spec{
			Seed: seed % 100, Depth: 4, NumInputs: 2, Loops: 1,
		})
		if err != nil {
			return false
		}
		e, err := New(p, Config{})
		if err != nil {
			return false
		}
		input := []int64{int64(a), int64(b)}
		path, err := e.Run(input)
		if err != nil {
			return false
		}
		assign := map[int]int64{0: input[0], 1: input[1]}
		return path.Condition().Holds(assign)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a successful Flip actually flips — re-running on the solver's
// input reaches the same decision point and takes the other direction.
func TestQuickFlipActuallyFlips(t *testing.T) {
	check := func(seed uint64, a, b uint8) bool {
		p, _, err := proggen.Generate(proggen.Spec{
			Seed: seed % 100, Depth: 4, NumInputs: 2,
		})
		if err != nil {
			return false
		}
		e, err := New(p, Config{})
		if err != nil {
			return false
		}
		path, err := e.Run([]int64{int64(a), int64(b)})
		if err != nil {
			return false
		}
		for k := range path.Records {
			if !path.Records[k].Exact {
				continue
			}
			input, verdict, err := e.Flip(path, k)
			if err != nil || verdict != constraint.SAT {
				continue
			}
			path2, err := e.Run(input)
			if err != nil || len(path2.Records) <= k {
				return false
			}
			// Same prefix, flipped at k.
			for i := 0; i < k; i++ {
				if path2.Records[i].Event != path.Records[i].Event {
					return false
				}
			}
			if path2.Records[k].Event.ID != path.Records[k].Event.ID {
				return false
			}
			if path2.Records[k].Event.Taken == path.Records[k].Event.Taken {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the concolic interpreter agrees with the reference VM on
// outcome and step count for single-threaded programs.
func TestQuickConcolicMatchesVM(t *testing.T) {
	check := func(seed uint64, a, b uint8) bool {
		p, _, err := proggen.Generate(proggen.Spec{
			Seed: seed % 100, Depth: 4, NumInputs: 2, Loops: 1, Syscalls: 1,
			Bugs: []proggen.BugKind{proggen.BugCrash},
		})
		if err != nil {
			return false
		}
		input := []int64{int64(a), int64(b)}
		model := &prog.DeterministicSyscalls{Seed: 9}

		e, err := New(p, Config{Syscalls: &prog.DeterministicSyscalls{Seed: 9}})
		if err != nil {
			return false
		}
		path, err := e.Run(input)
		if err != nil {
			return false
		}

		m, err := prog.NewMachine(p, prog.Config{Input: input, Syscalls: model})
		if err != nil {
			return false
		}
		res := m.Run()
		return res.Outcome == path.Outcome && res.Steps == path.Result.Steps &&
			res.FaultPC == path.Result.FaultPC
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
