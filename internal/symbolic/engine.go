// Package symbolic implements SoftBorg's symbolic program analysis (paper
// §3.3–§4): a concolic engine over the prog VM that executes a program
// concretely while shadowing registers and memory with linear expressions
// over the inputs. The hive uses it to
//
//   - collect the path condition of an execution (one constraint per
//     input-dependent branch),
//   - synthesize inputs that flip a chosen branch (DART-style directed
//     exploration, used by execution guidance),
//   - certify unexplored branch directions infeasible (the certificates
//     that complete cumulative proofs), and
//   - perform relaxed-consistency analysis (S2E-style): syscall returns can
//     be treated as fresh unconstrained symbolic variables, which
//     over-approximates the environment; properties proven over the
//     superset hold over all feasible executions.
//
// The engine handles single-threaded programs; multi-threaded feasibility
// is explored by schedule enumeration (internal/sched) instead.
package symbolic

import (
	"errors"
	"fmt"

	"repro/internal/constraint"
	"repro/internal/prog"
	"repro/internal/trace"
)

// ErrUnsupported is returned for programs or operations outside the engine's
// symbolic fragment.
var ErrUnsupported = errors.New("symbolic: unsupported")

// symVal is a shadow value: a linear expression when exact, or concrete-only
// after a nonlinear operation (classic concolic concretization).
type symVal struct {
	expr  constraint.Expr
	exact bool
}

func concreteVal() symVal { return symVal{} }

func constVal(c int64) symVal {
	return symVal{expr: constraint.Const(c), exact: true}
}

// BranchRecord pairs a dynamic branch event with its path constraint (the
// constraint is in the *taken-direction* sense: it holds for the direction
// the execution went). Exact is false when the condition involved
// concretized values, in which case the constraint is absent.
type BranchRecord struct {
	Event trace.BranchEvent
	Cond  constraint.Constraint
	Exact bool
}

// Path is the result of one concolic run.
type Path struct {
	// Records lists every branch decision with its constraint when exact.
	Records []BranchRecord
	// Outcome is the execution outcome.
	Outcome prog.Outcome
	// Result is the full machine-level result.
	Result prog.Result
	// Input is the concrete input used.
	Input []int64
	// FreshVars is the number of fresh symbolic variables introduced for
	// syscall returns (relaxed consistency); they occupy variable indices
	// NumInputs..NumInputs+FreshVars-1.
	FreshVars int
	// SyscallReturns records concrete syscall returns in call order (used to
	// map fresh-variable solutions back to fault-injection specs).
	SyscallReturns []int64
	// SyscallNums records the syscall numbers in call order.
	SyscallNums []int64
}

// Condition extracts the path condition: the conjunction of exact
// constraints along the path, each oriented in its taken direction.
func (p *Path) Condition() constraint.PathCondition {
	out := make(constraint.PathCondition, 0, len(p.Records))
	for _, r := range p.Records {
		if r.Exact {
			out = append(out, r.Cond)
		}
	}
	return out
}

// Events extracts the branch events.
func (p *Path) Events() []trace.BranchEvent {
	out := make([]trace.BranchEvent, len(p.Records))
	for i, r := range p.Records {
		out[i] = r.Event
	}
	return out
}

// Config parameterizes the engine.
type Config struct {
	// Domain bounds input variables (and fresh variables).
	Domain constraint.Domain
	// Syscalls is the concrete environment model; nil means zeros.
	Syscalls prog.SyscallModel
	// SymbolicSyscalls enables relaxed consistency: each syscall return
	// becomes a fresh symbolic variable (its concrete value still drives the
	// run).
	SymbolicSyscalls bool
	// MaxSteps bounds each concrete run.
	MaxSteps int64
	// SolverTicks bounds each feasibility query.
	SolverTicks int64
}

// Engine performs concolic runs of one program.
type Engine struct {
	prog *prog.Program
	cfg  Config
}

// New creates an engine for p. It returns ErrUnsupported for multi-threaded
// programs.
func New(p *prog.Program, cfg Config) (*Engine, error) {
	if p.NumThreads() > 1 {
		return nil, fmt.Errorf("%w: program %q has %d threads", ErrUnsupported, p.Name, p.NumThreads())
	}
	if cfg.Domain == (constraint.Domain{}) {
		cfg.Domain = constraint.DefaultDomain
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = prog.DefaultMaxSteps
	}
	if cfg.Syscalls == nil {
		cfg.Syscalls = &prog.DeterministicSyscalls{Seed: 0}
	}
	return &Engine{prog: p, cfg: cfg}, nil
}

// Program returns the engine's program.
func (e *Engine) Program() *prog.Program { return e.prog }

// Domain returns the variable domain in use.
func (e *Engine) Domain() constraint.Domain { return e.cfg.Domain }

// Run executes the program concolically on input.
func (e *Engine) Run(input []int64) (*Path, error) {
	return e.run(input, nil)
}

// RunForced executes concolically while forcing the direction of
// input-dependent branches to follow the given event prefix (deterministic
// branches evaluate naturally). It is used to drive execution down a
// specific tree prefix regardless of the concrete input.
func (e *Engine) RunForced(input []int64, forced []trace.BranchEvent) (*Path, error) {
	return e.run(input, forced)
}

func (e *Engine) run(input []int64, forced []trace.BranchEvent) (*Path, error) {
	if len(input) != e.prog.NumInputs {
		return nil, fmt.Errorf("symbolic: input arity %d, want %d", len(input), e.prog.NumInputs)
	}
	st := &interp{
		p:      e.prog,
		cfg:    &e.cfg,
		input:  input,
		regs:   make([]int64, prog.NumRegs),
		sregs:  make([]symVal, prog.NumRegs),
		mem:    make([]int64, e.prog.MemSize),
		smem:   make([]symVal, e.prog.MemSize),
		forced: forced,
	}
	for i := range st.sregs {
		st.sregs[i] = constVal(0)
	}
	for i := range st.smem {
		st.smem[i] = constVal(0)
	}
	return st.exec()
}

// interp is the lockstep concrete+symbolic interpreter.
type interp struct {
	p     *prog.Program
	cfg   *Config
	input []int64

	regs  []int64
	sregs []symVal
	mem   []int64
	smem  []symVal

	pc      int
	steps   int64
	nsysc   int
	fresh   int
	sysret  []int64
	sysnums []int64

	forced    []trace.BranchEvent
	forcedPos int

	records []BranchRecord
}

func (st *interp) exec() (*Path, error) {
	st.pc = st.p.Entries[0]
	code := st.p.Code
	for st.steps < st.cfg.MaxSteps {
		in := code[st.pc]
		st.steps++
		next := st.pc + 1
		switch in.Op {
		case prog.OpNop, prog.OpYield:
		case prog.OpConst:
			st.setReg(int(in.A), in.Imm, constVal(in.Imm))
		case prog.OpMov:
			st.setReg(int(in.A), st.regs[in.B], st.sregs[in.B])
		case prog.OpAdd:
			st.binLinear(in, func(a, b int64) int64 { return a + b },
				func(a, b constraint.Expr) constraint.Expr { return a.Add(b) })
		case prog.OpSub:
			st.binLinear(in, func(a, b int64) int64 { return a - b },
				func(a, b constraint.Expr) constraint.Expr { return a.Sub(b) })
		case prog.OpMul:
			st.binMul(in)
		case prog.OpDiv:
			if st.regs[in.C] == 0 {
				return st.finish(prog.Result{Outcome: prog.OutcomeCrash, FaultPC: st.pc, FaultInfo: "integer divide by zero", AssertID: -1}), nil
			}
			st.setReg(int(in.A), st.regs[in.B]/st.regs[in.C], concreteVal())
		case prog.OpMod:
			if st.regs[in.C] == 0 {
				return st.finish(prog.Result{Outcome: prog.OutcomeCrash, FaultPC: st.pc, FaultInfo: "integer modulo by zero", AssertID: -1}), nil
			}
			st.setReg(int(in.A), st.regs[in.B]%st.regs[in.C], concreteVal())
		case prog.OpAnd:
			st.setReg(int(in.A), st.regs[in.B]&st.regs[in.C], concreteVal())
		case prog.OpOr:
			st.setReg(int(in.A), st.regs[in.B]|st.regs[in.C], concreteVal())
		case prog.OpXor:
			st.setReg(int(in.A), st.regs[in.B]^st.regs[in.C], concreteVal())
		case prog.OpAddImm:
			v := st.regs[in.B] + in.Imm
			sv := concreteVal()
			if st.sregs[in.B].exact {
				sv = symVal{expr: st.sregs[in.B].expr.AddConst(in.Imm), exact: true}
			}
			st.setReg(int(in.A), v, sv)
		case prog.OpInput:
			idx := int(in.Imm)
			st.setReg(int(in.A), st.input[idx], symVal{expr: constraint.Var(idx), exact: true})
		case prog.OpLoad:
			addr := int(in.Imm)
			st.setReg(int(in.A), st.mem[addr], st.smem[addr])
		case prog.OpStore:
			st.mem[in.Imm] = st.regs[in.A]
			st.smem[in.Imm] = st.sregs[in.A]
		case prog.OpLoadR:
			addr := st.regs[in.B]
			if addr < 0 || addr >= int64(len(st.mem)) {
				return st.finish(prog.Result{Outcome: prog.OutcomeCrash, FaultPC: st.pc, FaultInfo: "memory load out of bounds", AssertID: -1}), nil
			}
			st.setReg(int(in.A), st.mem[addr], st.smem[addr])
		case prog.OpStoreR:
			addr := st.regs[in.B]
			if addr < 0 || addr >= int64(len(st.mem)) {
				return st.finish(prog.Result{Outcome: prog.OutcomeCrash, FaultPC: st.pc, FaultInfo: "memory store out of bounds", AssertID: -1}), nil
			}
			st.mem[addr] = st.regs[in.A]
			st.smem[addr] = st.sregs[in.A]
		case prog.OpJmp:
			next = int(in.Target)
		case prog.OpBr, prog.OpBrImm:
			taken := st.branch(in)
			if taken {
				next = int(in.Target)
			}
		case prog.OpSyscall:
			ret := st.cfg.Syscalls.Call(0, st.nsysc, in.Imm, st.regs[in.B])
			st.nsysc++
			st.sysret = append(st.sysret, ret)
			st.sysnums = append(st.sysnums, in.Imm)
			sv := concreteVal()
			if st.cfg.SymbolicSyscalls {
				idx := st.p.NumInputs + st.fresh
				st.fresh++
				sv = symVal{expr: constraint.Var(idx), exact: true}
			}
			st.setReg(int(in.A), ret, sv)
		case prog.OpLock, prog.OpUnlock:
			// Single-threaded: locks are uncontended no-ops for analysis.
		case prog.OpAssert:
			if st.regs[in.A] == 0 {
				return st.finish(prog.Result{Outcome: prog.OutcomeAssertFail, FaultPC: st.pc,
					FaultInfo: fmt.Sprintf("assertion #%d failed", in.Imm), AssertID: in.Imm}), nil
			}
		case prog.OpHalt:
			return st.finish(prog.Result{Outcome: prog.OutcomeOK, FaultPC: -1, AssertID: -1}), nil
		default:
			return st.finish(prog.Result{Outcome: prog.OutcomeCrash, FaultPC: st.pc, FaultInfo: "illegal instruction", AssertID: -1}), nil
		}
		st.pc = next
	}
	return st.finish(prog.Result{Outcome: prog.OutcomeHang, FaultPC: -1, AssertID: -1, FaultInfo: "fuel exhausted"}), nil
}

func (st *interp) finish(res prog.Result) *Path {
	res.Steps = st.steps
	return &Path{
		Records:        st.records,
		Outcome:        res.Outcome,
		Result:         res,
		Input:          append([]int64(nil), st.input...),
		FreshVars:      st.fresh,
		SyscallReturns: append([]int64(nil), st.sysret...),
		SyscallNums:    append([]int64(nil), st.sysnums...),
	}
}

func (st *interp) setReg(r int, v int64, sv symVal) {
	st.regs[r] = v
	st.sregs[r] = sv
}

func (st *interp) binLinear(in prog.Instr, cf func(a, b int64) int64, sf func(a, b constraint.Expr) constraint.Expr) {
	v := cf(st.regs[in.B], st.regs[in.C])
	sv := concreteVal()
	if st.sregs[in.B].exact && st.sregs[in.C].exact {
		sv = symVal{expr: sf(st.sregs[in.B].expr, st.sregs[in.C].expr), exact: true}
	}
	st.setReg(int(in.A), v, sv)
}

func (st *interp) binMul(in prog.Instr) {
	v := st.regs[in.B] * st.regs[in.C]
	sv := concreteVal()
	sb, sc := st.sregs[in.B], st.sregs[in.C]
	switch {
	case sb.exact && sc.exact && sb.expr.IsConst():
		sv = symVal{expr: sc.expr.MulConst(sb.expr.Const), exact: true}
	case sb.exact && sc.exact && sc.expr.IsConst():
		sv = symVal{expr: sb.expr.MulConst(sc.expr.Const), exact: true}
	}
	st.setReg(int(in.A), v, sv)
}

// branch evaluates a branch concretely, applies forcing for input-dependent
// branches when a forced prefix is active, records the event and constraint,
// and returns the final direction.
func (st *interp) branch(in prog.Instr) bool {
	var rhsC int64
	var rhsS symVal
	if in.Op == prog.OpBr {
		rhsC = st.regs[in.B]
		rhsS = st.sregs[in.B]
	} else {
		rhsC = in.Imm
		rhsS = constVal(in.Imm)
	}
	lhsC := st.regs[in.A]
	lhsS := st.sregs[in.A]

	taken := in.Cond.Eval(lhsC, rhsC)
	id := int(in.BranchID)

	if st.forced != nil && st.p.InputDependent(id) && st.forcedPos < len(st.forced) {
		rec := st.forced[st.forcedPos]
		st.forcedPos++
		if rec.ID == in.BranchID {
			taken = rec.Taken
		}
	}

	exact := lhsS.exact && rhsS.exact
	var cond constraint.Constraint
	if exact {
		cmp := in.Cond
		if !taken {
			cmp = cmp.Negate()
		}
		cond = constraint.NewConstraint(lhsS.expr, cmp, rhsS.expr)
	}
	st.records = append(st.records, BranchRecord{
		Event: trace.BranchEvent{ID: in.BranchID, Taken: taken},
		Cond:  cond,
		Exact: exact,
	})
	return taken
}

// solver builds a constraint solver with the engine's budget and domain.
func (e *Engine) solver() *constraint.Solver {
	return &constraint.Solver{Domain: e.cfg.Domain, MaxTicks: e.cfg.SolverTicks}
}

// Flip attempts to synthesize an input that follows path's branch prefix up
// to (not including) record index k and then goes the other way at k. It
// returns the new input, the solver verdict, and an error for structural
// problems (k out of range, inexact condition at k).
func (e *Engine) Flip(p *Path, k int) ([]int64, constraint.Verdict, error) {
	if k < 0 || k >= len(p.Records) {
		return nil, constraint.Unknown, fmt.Errorf("symbolic: flip index %d out of range", k)
	}
	if !p.Records[k].Exact {
		return nil, constraint.Unknown, fmt.Errorf("%w: branch %d condition is concretized", ErrUnsupported, k)
	}
	pc := make(constraint.PathCondition, 0, k+1)
	for i := 0; i < k; i++ {
		if p.Records[i].Exact {
			pc = append(pc, p.Records[i].Cond)
		}
	}
	pc = append(pc, p.Records[k].Cond.Negate())
	res := e.solver().Solve(pc)
	if res.Verdict != constraint.SAT {
		return nil, res.Verdict, nil
	}
	return e.modelToInput(res.Model, p.Input), constraint.SAT, nil
}

// modelToInput materializes a solver model into a full input vector, filling
// unconstrained variables from the base input.
func (e *Engine) modelToInput(model constraint.Solution, base []int64) []int64 {
	out := make([]int64, e.prog.NumInputs)
	copy(out, base)
	for v, val := range model {
		if v < e.prog.NumInputs {
			out[v] = val
		}
	}
	return out
}
