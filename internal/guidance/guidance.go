// Package guidance implements execution steering (paper §3.3): the hive
// identifies directions about which the collective knows too little and
// produces concrete test cases — inputs, thread-schedule prefixes, or
// syscall faults to inject — that pods then execute instead of (or besides)
// their natural workload. Guidance never changes program semantics: steered
// executions are ordinary feasible executions the population just hadn't
// produced yet, so "learning" accelerates without polluting the tree.
package guidance

import (
	"fmt"
	"sync"

	"repro/internal/constraint"
	"repro/internal/exectree"
	"repro/internal/prog"
	"repro/internal/sched"
	"repro/internal/symbolic"
)

// TestCase is one steering instruction for a pod.
type TestCase struct {
	// ProgramID binds the test case to a program.
	ProgramID string `json:"programId"`
	// Input is the input vector to execute; nil means keep the natural
	// input.
	Input []int64 `json:"input,omitempty"`
	// Schedule is a systematic schedule decision prefix for multi-threaded
	// programs; nil means the pod's natural schedule. An empty non-nil
	// prefix is meaningful: it forces the all-first-choice schedule.
	Schedule []int `json:"schedule"`
	// Faults are syscall faults to inject (e.g. a short read).
	Faults []prog.FaultSpec `json:"faults,omitempty"`
	// Reason documents the coverage gap this targets.
	Reason string `json:"reason,omitempty"`
}

// Generator produces test cases from a program's execution tree. It is safe
// for concurrent use (the hive serves guidance to many pods at once).
type Generator struct {
	mu   sync.Mutex
	prog *prog.Program
	// sym is non-nil for single-threaded programs (input synthesis).
	sym *symbolic.Engine
	// symEnv, when non-nil, is a relaxed-consistency engine used to derive
	// fault-injection test cases for syscall-dependent frontiers.
	symEnv *symbolic.Engine
	// enum drives schedule-space exploration for multi-threaded programs.
	enum *sched.Enumerator
}

// NewGenerator builds a generator for p. Single-threaded programs get
// input- and fault-directed steering; multi-threaded programs get schedule
// enumeration.
func NewGenerator(p *prog.Program, scheduleBound int) (*Generator, error) {
	g := &Generator{prog: p}
	if p.NumThreads() == 1 {
		var err error
		g.sym, err = symbolic.New(p, symbolic.Config{})
		if err != nil {
			return nil, fmt.Errorf("guidance: %w", err)
		}
		g.symEnv, err = symbolic.New(p, symbolic.Config{SymbolicSyscalls: true})
		if err != nil {
			return nil, fmt.Errorf("guidance: %w", err)
		}
	} else {
		if scheduleBound <= 0 {
			scheduleBound = 8
		}
		g.enum = sched.NewEnumerator(scheduleBound)
	}
	return g, nil
}

// Generate derives up to max test cases from the tree's current frontiers.
// The frontier set is a snapshot of the tree's incrementally maintained
// index — no full-tree walk happens under the tree's read lock, so guidance
// requests do not starve merges on large trees. As a side effect, frontiers
// the solver refutes are certified infeasible in the tree (the same
// discharge the proof engine performs — guidance and proving share the gap
// analysis).
func (g *Generator) Generate(tree *exectree.Tree, max int) []TestCase {
	// Clamp untrusted maxima (max rides in verbatim from the wire's
	// GetGuidance payload): non-positive asks for nothing, and a huge ask
	// is bounded so the 4× frontier over-pull below cannot overflow or
	// materialize an unbounded snapshot.
	if max <= 0 {
		return nil
	}
	if max > maxGuidanceCases {
		max = maxGuidanceCases
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []TestCase
	if g.sym != nil {
		out = g.generateInputs(tree, max)
	}
	if len(out) < max && g.enum != nil {
		out = append(out, g.generateSchedules(max-len(out))...)
	}
	return out
}

// maxGuidanceCases bounds one guidance request (wire clients ask for a
// handful; anything larger is hostile or a bug).
const maxGuidanceCases = 1 << 16

func (g *Generator) generateInputs(tree *exectree.Tree, max int) []TestCase {
	frontiers := tree.Frontiers(max * 4)
	out := make([]TestCase, 0, max)
	for _, f := range frontiers {
		if len(out) >= max {
			break
		}
		input, verdict, err := g.sym.SolveFrontier(f)
		switch {
		case err != nil:
			continue
		case verdict == constraint.SAT:
			out = append(out, TestCase{
				ProgramID: g.prog.ID,
				Input:     input,
				Reason:    fmt.Sprintf("cover %v after %d-deep prefix", f.Missing, len(f.Prefix)),
			})
		case verdict == constraint.UNSAT:
			tree.CertifyInfeasible(f.Prefix, f.Missing)
		default:
			// Unknown under input-only consistency: retry with the
			// environment symbolic (S2E-style relaxation) to derive a
			// fault-injection test case.
			if tc, ok := g.solveWithEnvironment(f); ok {
				out = append(out, tc)
			}
		}
	}
	return out
}

// solveWithEnvironment retries a frontier with syscall returns treated as
// free variables; solved fresh variables become fault-injection specs
// ("test cases ... stated in terms of system call faults", §3.3).
func (g *Generator) solveWithEnvironment(f exectree.Frontier) (TestCase, bool) {
	input, faults, verdict, err := g.symEnv.SolveFrontierEnv(f)
	if err != nil || verdict != constraint.SAT {
		return TestCase{}, false
	}
	return TestCase{
		ProgramID: g.prog.ID,
		Input:     input,
		Faults:    faults,
		Reason:    fmt.Sprintf("cover %v via environment control", f.Missing),
	}, true
}

func (g *Generator) generateSchedules(max int) []TestCase {
	out := make([]TestCase, 0, max)
	for len(out) < max && !g.enum.Done() {
		s := g.enum.Next()
		if s == nil {
			break
		}
		prefix := prefixOf(s)
		if prefix == nil {
			prefix = []int{}
		}
		out = append(out, TestCase{
			ProgramID: g.prog.ID,
			Schedule:  prefix,
			Reason:    "explore thread interleaving",
		})
		// Without feedback we advance optimistically assuming binary
		// branching at each decision; Report refines this when the pod
		// returns observations.
		g.enum.Report(s)
	}
	return out
}

// Report feeds back the scheduler observations from a pod that executed a
// schedule test case, refining the enumeration. (Optional: Generate advances
// optimistically when pods do not report.)
func (g *Generator) Report(observed *sched.Systematic) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.enum != nil && observed != nil {
		g.enum.Report(observed)
	}
}

// prefixOf reconstructs the decision prefix a Systematic scheduler forces.
func prefixOf(s *sched.Systematic) []int {
	// The Systematic scheduler does not expose its prefix directly; re-wrap
	// via observation on a fresh instance is not possible here, so the
	// enumerator's contract is used: schedules are identified by their
	// observed choices after a dry pick sequence. We instead export the
	// prefix through sched.
	return s.Prefix()
}
