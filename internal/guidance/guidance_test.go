package guidance

import (
	"testing"

	"repro/internal/exectree"
	"repro/internal/prog"
	"repro/internal/symbolic"
)

// buildEnvCrash crashes when a syscall returns > 50: unreachable by input
// steering, reachable via fault injection.
func buildEnvCrash(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("envcrash", 1)
	bad, end := b.NewLabel(), b.NewLabel()
	b.Input(0, 0)
	b.Syscall(1, 7, 0)
	b.BrImm(1, prog.CmpGT, 50, bad)
	b.Jmp(end)
	b.Bind(bad)
	b.Const(2, 0)
	b.Div(3, 2, 2)
	b.Bind(end)
	b.Halt()
	return b.MustBuild()
}

func seedTree(t *testing.T, p *prog.Program, inputs ...int64) *exectree.Tree {
	t.Helper()
	tree := exectree.New(p.ID)
	sym, err := symbolic.New(p, symbolic.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range inputs {
		in := make([]int64, p.NumInputs)
		if len(in) > 0 {
			in[0] = v
		}
		path, err := sym.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		tree.Merge(path.Events(), path.Outcome)
	}
	return tree
}

func TestInputGuidanceTargetsFrontier(t *testing.T) {
	// if x > 100 {...}: seeding with small inputs leaves the taken side
	// unexplored; guidance must produce an input > 100.
	b := prog.NewBuilder("gap", 1)
	hi, end := b.NewLabel(), b.NewLabel()
	b.Input(0, 0)
	b.BrImm(0, prog.CmpGT, 100, hi)
	b.Jmp(end)
	b.Bind(hi)
	b.Const(1, 1)
	b.Bind(end)
	b.Halt()
	p := b.MustBuild()

	tree := seedTree(t, p, 1, 2, 3)
	g, err := NewGenerator(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := g.Generate(tree, 4)
	if len(cases) == 0 {
		t.Fatal("no guidance produced")
	}
	found := false
	for _, tc := range cases {
		if len(tc.Input) > 0 && tc.Input[0] > 100 {
			found = true
		}
		if tc.ProgramID != p.ID {
			t.Errorf("test case bound to %s", tc.ProgramID)
		}
	}
	if !found {
		t.Errorf("no test case targets the gap: %+v", cases)
	}
}

func TestFaultInjectionGuidance(t *testing.T) {
	p := buildEnvCrash(t)
	tree := seedTree(t, p, 0)
	g, err := NewGenerator(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := g.Generate(tree, 4)
	var withFaults *TestCase
	for i := range cases {
		if len(cases[i].Faults) > 0 {
			withFaults = &cases[i]
		}
	}
	if withFaults == nil {
		t.Fatalf("no fault-injection test case: %+v", cases)
	}
	// Executing the test case must actually reach the crash.
	inj := &prog.FaultInjector{Base: &prog.DeterministicSyscalls{}, Faults: withFaults.Faults}
	m, err := prog.NewMachine(p, prog.Config{Input: withFaults.Input, Syscalls: inj})
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res.Outcome != prog.OutcomeCrash {
		t.Fatalf("fault-guided run outcome = %v, want crash (faults %+v)", res.Outcome, withFaults.Faults)
	}
}

func TestScheduleGuidanceForMultiThreaded(t *testing.T) {
	b := prog.NewBuilder("mt2", 0).SetLocks(2)
	b.Thread()
	b.Lock(0).Yield().Lock(1).Unlock(1).Unlock(0).Halt()
	b.Thread()
	b.Lock(1).Yield().Lock(0).Unlock(0).Unlock(1).Halt()
	p := b.MustBuild()

	g, err := NewGenerator(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	tree := exectree.New(p.ID)
	cases := g.Generate(tree, 5)
	if len(cases) == 0 {
		t.Fatal("no schedule guidance")
	}
	distinct := map[string]bool{}
	for _, tc := range cases {
		if tc.Schedule == nil {
			t.Errorf("multi-threaded guidance without schedule: %+v", tc)
		}
		key := ""
		for _, c := range tc.Schedule {
			key += string(rune('0' + c))
		}
		distinct[key] = true
	}
	if len(distinct) != len(cases) {
		t.Errorf("duplicate schedules issued: %d distinct of %d", len(distinct), len(cases))
	}
}

func TestGuidanceCertifiesInfeasibleFrontiers(t *testing.T) {
	// if x > 200 { if x < 100 { dead } }: once both observed directions are
	// seeded, guidance should certify the dead side rather than produce a
	// test case for it.
	b := prog.NewBuilder("deadend", 1)
	outer, end := b.NewLabel(), b.NewLabel()
	b.Input(0, 0)
	b.BrImm(0, prog.CmpGT, 200, outer)
	b.Jmp(end)
	b.Bind(outer)
	inner := b.NewLabel()
	b.BrImm(0, prog.CmpLT, 100, inner)
	b.Bind(inner)
	b.Bind(end)
	b.Halt()
	p := b.MustBuild()

	tree := seedTree(t, p, 0, 201)
	g, err := NewGenerator(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	g.Generate(tree, 8)
	if !tree.Complete() {
		t.Errorf("tree should be complete after guidance certifies the dead side; frontiers: %+v",
			tree.FrontiersAll())
	}
}

func TestGenerateOnCompleteTreeIsEmpty(t *testing.T) {
	b := prog.NewBuilder("tiny", 1)
	end := b.NewLabel()
	b.Input(0, 0)
	b.BrImm(0, prog.CmpGT, 100, end)
	b.Bind(end)
	b.Halt()
	p := b.MustBuild()

	tree := seedTree(t, p, 0, 200) // both sides covered
	g, err := NewGenerator(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cases := g.Generate(tree, 4); len(cases) != 0 {
		t.Errorf("complete tree produced guidance: %+v", cases)
	}
}

// TestGenerateClampsHostileMax pins the wire-facing bounds: a GetGuidance
// request whose max is zero (the JSON zero value), negative, or absurdly
// large must neither panic (Frontiers asserts positive limits) nor
// materialize an unbounded snapshot.
func TestGenerateClampsHostileMax(t *testing.T) {
	b := prog.NewBuilder("clamp", 1)
	hi, end := b.NewLabel(), b.NewLabel()
	b.Input(0, 0)
	b.BrImm(0, prog.CmpGT, 100, hi)
	b.Jmp(end)
	b.Bind(hi)
	b.Const(1, 1)
	b.Bind(end)
	b.Halt()
	p := b.MustBuild()
	tree := seedTree(t, p, 1, 2)
	g, err := NewGenerator(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, max := range []int{0, -1, -1 << 40} {
		if cases := g.Generate(tree, max); len(cases) != 0 {
			t.Errorf("Generate(max=%d) produced %d cases, want 0", max, len(cases))
		}
	}
	if cases := g.Generate(tree, 1<<62); len(cases) == 0 {
		t.Error("huge max clamped to nothing; want clamped-but-working guidance")
	}
}
