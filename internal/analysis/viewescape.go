package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ViewEscape enforces the pooled zero-copy lifetimes PR 5 introduced.
//
// A trace.BatchView decodes in place over a pooled frame buffer: its Bytes()
// result and the view itself are borrows that die when Release() returns the
// scratch to the pool. Likewise sync.Pool-recycled buffers are borrows that
// die at Put(). Storing a borrow where it can outlive the frame — a struct
// field, a channel, a return value — is a use-after-recycle time bomb: the
// pool hands the same bytes to the next decode and the stored slice silently
// mutates. Retention requires Materialize (views) or an explicit copy
// (buffers); synchronous consumption before the pool reclaim is legal but
// must carry //lint:allow viewescape with the ownership argument.
var ViewEscape = &Analyzer{
	Name: "viewescape",
	Doc: "bytes borrowed from pooled trace.BatchView frames (Bytes()) and " +
		"sync.Pool buffers must not be stored in fields, sent on channels, or " +
		"returned; copy/Materialize to retain, and never use a view after " +
		"Release() or a buffer after Put()",
	Run: runViewEscape,
}

func runViewEscape(p *Pass) {
	// internal/trace owns the view/pool machinery: the scratch moving
	// between pool and view is the abstraction being enforced, not a leak.
	if pathMatches(p.Pkg.Path, "internal/trace") {
		return
	}
	for _, file := range p.Pkg.Files {
		enclosingFuncs(file, func(fd *ast.FuncDecl) {
			checkBorrowSinks(p, fd)
			checkUseAfterReclaim(p, fd)
		})
	}
}

// --- borrowed-value escape sinks ---

// checkBorrowSinks tracks view-borrowed byte slices through locals and flags
// stores that can outlive the frame.
func checkBorrowSinks(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	tracked := map[types.Object]bool{}
	isBorrowedExpr := func(e ast.Expr) (string, bool) {
		e = ast.Unparen(e)
		if call, ok := e.(*ast.CallExpr); ok {
			if kind, ok := borrowKind(info, call); ok {
				return kind, true
			}
		}
		if obj := identObj(info, e); obj != nil && tracked[obj] {
			return "view-borrowed bytes", true
		}
		return "", false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			// Track borrows into locals; flag borrows stored into fields,
			// map/slice elements, or globals.
			for i, rhs := range v.Rhs {
				if len(v.Lhs) != len(v.Rhs) {
					break
				}
				kind, borrowed := isBorrowedExpr(rhs)
				if !borrowed {
					// Reassignment kills tracking.
					if obj := identObj(info, v.Lhs[i]); obj != nil {
						delete(tracked, obj)
					}
					continue
				}
				switch lhs := ast.Unparen(v.Lhs[i]).(type) {
				case *ast.Ident:
					if obj := info.ObjectOf(lhs); obj != nil {
						if isPackageLevel(obj) {
							p.Reportf(v.Pos(), "%s stored in package-level %s: the borrow dies when the frame returns to its pool; copy or Materialize to retain", kind, lhs.Name)
						} else {
							tracked[obj] = true
						}
					}
				default:
					p.Reportf(v.Pos(), "%s stored in %s: the borrow dies when the frame returns to its pool; copy or Materialize to retain", kind, exprString(v.Lhs[i]))
				}
			}
		case *ast.CompositeLit:
			for _, el := range v.Elts {
				val := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if kind, ok := isBorrowedExpr(val); ok {
					p.Reportf(val.Pos(), "%s stored in composite literal: the literal can outlive the pooled frame; copy or Materialize to retain", kind)
				}
			}
		case *ast.SendStmt:
			if kind, ok := isBorrowedExpr(v.Value); ok {
				p.Reportf(v.Arrow, "%s sent on a channel: the receiver can hold it past the frame's pool reclaim; copy or Materialize before sending", kind)
			}
		case *ast.ReturnStmt:
			for _, r := range v.Results {
				if kind, ok := isBorrowedExpr(r); ok {
					p.Reportf(r.Pos(), "%s returned from %s: the caller outlives the borrow; copy or Materialize before returning", kind, funcName(fd))
				}
			}
		}
		return true
	})
}

// borrowKind recognizes calls that mint a pooled borrow.
func borrowKind(info *types.Info, call *ast.CallExpr) (string, bool) {
	f := calleeFunc(info, call)
	if f == nil {
		return "", false
	}
	recv := recvNamed(f)
	if recv == nil {
		return "", false
	}
	if f.Name() == "Bytes" && recv.Obj().Name() == "BatchView" && pkgMatches(recv.Obj().Pkg(), "internal/trace") {
		return "BatchView.Bytes() frame borrow", true
	}
	return "", false
}

func isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// --- use-after-Release / use-after-Put ---

// checkUseAfterReclaim flags straight-line uses of a view after
// view.Release() and of a pooled value after pool.Put(x), within one block.
func checkUseAfterReclaim(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			obj, verb := reclaimedObject(info, stmt)
			if obj == nil {
				continue
			}
			for _, later := range block.List[i+1:] {
				if reassigns(info, later, obj) {
					break
				}
				if pos, used := usesObject(info, later, obj); used {
					p.Reportf(pos, "%s used after %s: the pooled memory may already be handed to another decode", obj.Name(), verb)
					break
				}
			}
		}
		return true
	})
}

// reclaimedObject matches `v.Release()` (trace.BatchView) and `pool.Put(x)`
// (sync.Pool) expression statements, returning the reclaimed object.
func reclaimedObject(info *types.Info, stmt ast.Stmt) (types.Object, string) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil, ""
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	f := calleeFunc(info, call)
	if f == nil {
		return nil, ""
	}
	recv := recvNamed(f)
	if recv == nil {
		return nil, ""
	}
	switch {
	case f.Name() == "Release" && recv.Obj().Name() == "BatchView" && pkgMatches(recv.Obj().Pkg(), "internal/trace"):
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil, ""
		}
		return identObj(info, sel.X), "Release()"
	case f.Name() == "Put" && recv.Obj().Name() == "Pool" && recv.Obj().Pkg() != nil && recv.Obj().Pkg().Path() == "sync":
		if len(call.Args) != 1 {
			return nil, ""
		}
		return identObj(info, call.Args[0]), "Pool.Put()"
	}
	return nil, ""
}

// reassigns reports whether stmt assigns a fresh value to obj.
func reassigns(info *types.Info, stmt ast.Stmt, obj types.Object) bool {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if identObj(info, lhs) == obj {
			return true
		}
	}
	return false
}

// usesObject reports the first use of obj within stmt.
func usesObject(info *types.Info, stmt ast.Stmt, obj types.Object) (pos token.Pos, used bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			pos, used = id.Pos(), true
			return false
		}
		return true
	})
	return pos, used
}
