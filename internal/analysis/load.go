package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package of the module under analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Files are the parsed (build-constraint-filtered) source files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's expression/object facts.
	Info *types.Info
}

// Module is the loaded module: every package, type-checked, in dependency
// order, sharing one FileSet.
type Module struct {
	// Root is the directory containing go.mod.
	Root string
	// Path is the module path declared in go.mod.
	Path string
	Fset *token.FileSet
	// Pkgs is every loaded package in topological (dependency-first) order.
	Pkgs []*Package

	byPath map[string]*Package
}

// LoadConfig controls module loading.
type LoadConfig struct {
	// Tests includes _test.go files of the package itself (external _test
	// packages are never loaded).
	Tests bool
	// Skip lists directory names pruned from the walk in addition to the
	// defaults (testdata, vendor, hidden and underscore-prefixed dirs).
	Skip []string
}

// stdlib importing is shared process-wide: the source importer re-typechecks
// the standard library from $GOROOT/src, which is expensive enough to do
// once. The shared FileSet keeps stdlib and module positions in one space.
var (
	stdOnce sync.Once
	stdImp  types.ImporterFrom
	stdFset = token.NewFileSet()
)

func stdImporter() types.ImporterFrom {
	stdOnce.Do(func() {
		// The pure-Go stdlib is enough for type facts, and cgo translation
		// is unavailable in hermetic environments.
		build.Default.CgoEnabled = false
		stdImp = importer.ForCompiler(stdFset, "source", nil).(types.ImporterFrom)
	})
	return stdImp
}

// Load parses and type-checks the module containing dir.
func Load(dir string, cfg LoadConfig) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:   root,
		Path:   modPath,
		Fset:   stdFset,
		byPath: map[string]*Package{},
	}

	dirs, err := packageDirs(root, cfg.Skip)
	if err != nil {
		return nil, err
	}

	type parsed struct {
		pkg     *Package
		imports []string
	}
	byPath := map[string]*parsed{}
	var paths []string
	for _, d := range dirs {
		pp, err := m.parseDir(d, cfg.Tests)
		if err != nil {
			return nil, err
		}
		if pp == nil || len(pp.Files) == 0 {
			continue
		}
		imports := map[string]bool{}
		for _, f := range pp.Files {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == modPath || strings.HasPrefix(p, modPath+"/") {
					imports[p] = true
				}
			}
		}
		var deps []string
		for p := range imports {
			deps = append(deps, p)
		}
		sort.Strings(deps)
		byPath[pp.Path] = &parsed{pkg: pp, imports: deps}
		paths = append(paths, pp.Path)
	}
	sort.Strings(paths)

	// Topological order over intra-module imports.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := map[string]int{}
	var order []string
	var visit func(p string) error
	visit = func(p string) error {
		switch state[p] {
		case gray:
			return fmt.Errorf("analysis: import cycle through %s", p)
		case black:
			return nil
		}
		state[p] = gray
		pp := byPath[p]
		if pp != nil {
			for _, dep := range pp.imports {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p] = black
		if pp != nil {
			order = append(order, p)
		}
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	for _, p := range order {
		pkg := byPath[p].pkg
		if err := m.typecheck(pkg); err != nil {
			return nil, err
		}
		m.Pkgs = append(m.Pkgs, pkg)
		m.byPath[p] = pkg
	}
	return m, nil
}

// Lookup returns a loaded package by import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		d = parent
	}
}

// packageDirs lists candidate package directories under root.
func packageDirs(root string, skip []string) ([]string, error) {
	skipName := map[string]bool{"testdata": true, "vendor": true}
	for _, s := range skip {
		skipName[s] = true
	}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (skipName[name] || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// parseDir parses the buildable files of one directory into a Package (sans
// type information). Returns nil if the directory holds no Go package.
func (m *Module) parseDir(dir string, tests bool) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	names := map[string]int{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !tests {
			continue
		}
		full := filepath.Join(dir, name)
		if !buildableFilename(name) {
			continue
		}
		f, err := parser.ParseFile(m.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if !buildableConstraints(f) {
			continue
		}
		pkgName := f.Name.Name
		if strings.HasSuffix(pkgName, "_test") {
			// External test packages are out of scope.
			continue
		}
		names[pkgName]++
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	// Dominant package name wins (directories normally hold exactly one).
	best, bestN := "", 0
	for n, c := range names {
		if c > bestN || (c == bestN && n < best) {
			best, bestN = n, c
		}
	}
	var kept []*ast.File
	for _, f := range files {
		if f.Name.Name == best {
			kept = append(kept, f)
		}
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	path := m.Path
	if rel != "." {
		path = m.Path + "/" + filepath.ToSlash(rel)
	}
	return &Package{Path: path, Dir: dir, Files: kept}, nil
}

// knownOS / knownArch drive filename-implied build constraints.
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}
var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// buildableFilename applies GOOS/GOARCH filename conventions.
func buildableFilename(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	base = strings.TrimSuffix(base, "_test")
	parts := strings.Split(base, "_")
	if len(parts) >= 2 {
		last := parts[len(parts)-1]
		prev := parts[len(parts)-2]
		if knownArch[last] {
			if last != runtime.GOARCH {
				return false
			}
			if knownOS[prev] && prev != runtime.GOOS {
				return false
			}
			return true
		}
		if knownOS[last] {
			return last == runtime.GOOS
		}
	}
	return true
}

// buildableConstraints evaluates a file's //go:build (and +build) lines for
// the host platform with no extra tags set (so files behind tags like
// "race" are excluded, matching the default build).
func buildableConstraints(f *ast.File) bool {
	for _, g := range f.Comments {
		// Constraints must precede the package clause.
		if g.Pos() >= f.Package {
			break
		}
		for _, c := range g.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			ok := expr.Eval(func(tag string) bool {
				switch {
				case tag == runtime.GOOS || tag == runtime.GOARCH:
					return true
				case tag == "unix":
					return knownUnix[runtime.GOOS]
				case strings.HasPrefix(tag, "go1."):
					// The analysis toolchain is at least as new as the
					// module's language version.
					return true
				}
				return false
			})
			if !ok {
				return false
			}
		}
	}
	return true
}

var knownUnix = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// typecheck runs go/types over one package, resolving intra-module imports
// from already-checked packages and everything else from stdlib source.
func (m *Module) typecheck(pkg *Package) error {
	conf := types.Config{
		Importer: &moduleImporter{m: m},
		Error:    func(err error) {}, // first hard error is returned below
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tpkg, err := conf.Check(pkg.Path, m.Fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("analysis: typecheck %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// moduleImporter resolves imports during type-checking.
type moduleImporter struct {
	m *Module
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	return mi.ImportFrom(path, "", 0)
}

func (mi *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == mi.m.Path || strings.HasPrefix(path, mi.m.Path+"/") {
		if p := mi.m.byPath[path]; p != nil {
			return p.Types, nil
		}
		return nil, fmt.Errorf("analysis: module package %s not loaded (import cycle or parse skip)", path)
	}
	return stdImporter().ImportFrom(path, dir, mode)
}
