package analysis

import (
	"go/ast"
)

// journalGuard describes one protected live-mutation helper: a function in
// internal/hive that mutates recoverable state and therefore may only run
// after its operation has been journaled (or while replaying the journal).
type journalGuard struct {
	// callee is the protected function's name within the package.
	callee string
	// callers are the function names allowed to invoke it.
	callers map[string]bool
}

// journalGuards encodes the hive's write-ahead discipline (PR 3): every
// mutation is appended to the journal *before* it is applied, so the only
// legal callers of the apply helpers are the journaled wrappers (which
// append first) and recovery replay (which applies ops already journaled).
// A handler calling an apply helper directly would mutate state that a
// crash forgets — the exact bug class the journal exists to prevent.
var journalGuards = []journalGuard{
	{callee: "applyBatch", callers: set("ingest", "applyOp")},
	{callee: "applyBatchView", callers: set("ingestView", "applyOp")},
	// Fix synthesis journals its own outcome op; it may only be elected
	// from within an applied batch (both apply paths), never ad hoc.
	{callee: "synthesizeFix", callers: set("applyBatch", "applyBatchView")},
	// The dedup window must only advance for journaled (or replayed)
	// frames; marking a session outside those paths would let a crash
	// acknowledge-and-forget a frame.
	{callee: "markSession", callers: set("ingest", "ingestView", "applyOp", "mergeSessions")},
	// PR 10: the read-only breaker's failure accounting wraps every live
	// batch append. Appending to the journal around the wrapper would let
	// a full disk fail silently without ever tripping the breaker.
	{callee: "journalBatchAppend", callers: set("ingest", "ingestView")},
	// The breaker may only close once a checkpoint has landed durably —
	// closing it anywhere else would ack ingest into an unproven journal.
	{callee: "closeReadOnly", callers: set("CheckpointProgram")},
	// The frozen session tier is only consulted under sessMu during the
	// live/frozen merge; direct access would race the displacement path.
	{callee: "entryLocked", callers: set("mergeSessions")},
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// JournalFirst enforces journal-ahead-of-apply reachability in
// internal/hive.
var JournalFirst = &Analyzer{
	Name: "journalfirst",
	Doc: "in internal/hive, live-mutation helpers (applyBatch, applyBatchView, " +
		"synthesizeFix, markSession, journalBatchAppend, closeReadOnly, " +
		"entryLocked) are reachable only from journaled wrappers (ingest, " +
		"ingestView), recovery replay (applyOp/mergeSessions), or the " +
		"checkpoint path (CheckpointProgram); calling them from handlers " +
		"would apply state a crash forgets or bypass the read-only breaker",
	Run: runJournalFirst,
}

func runJournalFirst(p *Pass) {
	if !pathMatches(p.Pkg.Path, "internal/hive") {
		return
	}
	guards := map[string]*journalGuard{}
	for i := range journalGuards {
		guards[journalGuards[i].callee] = &journalGuards[i]
	}
	for _, file := range p.Pkg.Files {
		enclosingFuncs(file, func(fd *ast.FuncDecl) {
			caller := funcName(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(p.Pkg.Info, call)
				if f == nil || f.Pkg() != p.Pkg.Types {
					return true
				}
				g, protected := guards[f.Name()]
				if !protected || g.callers[caller] || caller == g.callee {
					return true
				}
				p.Reportf(call.Pos(), "%s called from %s: %s mutates journaled state and is reachable only from %s (journal the op first, or route through the journaled wrapper)", f.Name(), caller, f.Name(), allowedCallers(g))
				return true
			})
		})
	}
}

func allowedCallers(g *journalGuard) string {
	names := make([]string, 0, len(g.callers))
	for n := range g.callers {
		names = append(names, n)
	}
	// Deterministic message text.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	out := ""
	for i, n := range names {
		if i > 0 {
			out += "/"
		}
		out += n
	}
	return out
}
