package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockDiscipline enforces two lock-hygiene invariants:
//
//  1. Leak-on-return: a sync.Mutex/RWMutex acquisition must be released —
//     by a defer or an explicit unlock — before any return that follows it
//     lexically. A return while the lock is (lexically) still held is the
//     classic early-return leak that deadlocks the next caller.
//
//  2. Acquisition order (internal/hive, internal/wire, internal/archive):
//     the hive's
//     documented order is session-entry lock ≺ checkpoint gate ≺ program
//     mu ≺ input stripes (kgMu/coordMu); the registry lock (Hive.mu) and
//     the session-table lock (Hive.sessMu) are leaves never held across
//     another acquisition. The wire layer's routing locks rank BELOW all
//     of the hive's: router placement (Router.mu) ≺ server placement
//     (Server.placeMu) ≺ client connection (Client.mu) — a server
//     dispatching into the hive may hold a wire lock across hive
//     acquisitions, never the reverse. The admission layer's locks
//     (admissionState.mu for the token-bucket table, connState.qMu for
//     queued-byte accounting) are leaves like Hive.mu, and so is the
//     archiver's sync lock (Archiver.mu) — tiering must never couple
//     itself to the ingest path's lock graph. Acquiring against
//     that order within one function is an inversion that can deadlock
//     the sharded fleet.
//
// The analysis is lexical and intraprocedural — a deliberate approximation
// that catches the bug classes above without whole-program may-hold facts.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc: "every Lock() must be released (defer or explicit unlock) before a " +
		"lexically later return, and internal/hive + internal/wire + " +
		"internal/archive lock classes must be acquired in documented order " +
		"(Router.mu ≺ Server.placeMu ≺ Client.mu ≺ session ≺ ckpt ≺ mu ≺ " +
		"stripes; Hive.mu/sessMu, the admission locks admissionState.mu/" +
		"connState.qMu, and the archiver sync lock Archiver.mu are leaves)",
	Run: runLockDiscipline,
}

// lockRank orders the ranked lock classes across internal/hive and
// internal/wire. Lower rank is acquired first; acquiring a class at or
// below a held class's rank is an inversion. The wire routing locks sit
// below every hive class: server dispatch may hold them while entering
// the hive, and the hive never calls back out into the wire layer.
var lockRank = map[string]int{
	// internal/wire (PR 8 routing tier). Router.mu is released before a
	// per-owner client is driven; Server.placeMu is released before a
	// proxy client call; Client.mu guards one connection's stream.
	"Router.mu":            1,
	"Server.placeMu":       2,
	"Client.mu":            5,
	"sessionEntry.mu":      10,
	"programState.ckpt":    20,
	"programState.mu":      30,
	"programState.kgMu":    40,
	"programState.coordMu": 40,
	// Leaf locks: never legal to hold across another ranked acquisition.
	"Hive.mu":     50,
	"Hive.sessMu": 50,
	// PR 9 admission tier: the token-bucket table lock and the
	// per-connection queued-bytes accounting lock are leaves too — debit
	// and byte accounting never call back into any other ranked class.
	"admissionState.mu": 50,
	"connState.qMu":     50,
	// PR 10 archive tier: the archiver's sync lock is held across a whole
	// program sync (export → upload → manifest → prune). The journal's
	// internal locks are unranked, so that is safe — but holding it across
	// any ranked hive/wire acquisition would couple disk tiering to the
	// ingest path's lock graph. Leaf.
	"Archiver.mu": 50,
}

// lockEvent is one lexical lock-relevant occurrence inside a function.
type lockEvent struct {
	pos      token.Pos
	kind     lockEventKind
	key      string // lock identity, e.g. "st.ckpt"
	class    string // ranked class, e.g. "programState.ckpt" ("" unranked)
	readSide bool   // RLock/RUnlock pair
}

type lockEventKind int

const (
	evLock lockEventKind = iota
	evUnlock
	evDeferUnlock
	evReturn
)

func runLockDiscipline(p *Pass) {
	for _, file := range p.Pkg.Files {
		enclosingFuncs(file, func(fd *ast.FuncDecl) {
			// Each function literal is its own lock scope: its returns leave
			// the literal, not the enclosing function, and locks it takes are
			// its own responsibility (sort comparators, walk callbacks).
			for _, body := range funcBodies(fd.Body) {
				events := collectLockEvents(p, body)
				if len(events) == 0 {
					continue
				}
				checkLeakOnReturn(p, events)
				checkAcquisitionOrder(p, events)
			}
		})
	}
}

// funcBodies returns body plus the body of every function literal nested
// anywhere inside it (recursively), each to be analyzed as its own scope.
func funcBodies(body *ast.BlockStmt) []*ast.BlockStmt {
	out := []*ast.BlockStmt{body}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
			out = append(out, lit.Body)
		}
		return true
	})
	return out
}

// collectLockEvents walks one function scope in lexical order, skipping
// nested function literals (they are separate scopes).
func collectLockEvents(p *Pass, body *ast.BlockStmt) []lockEvent {
	info := p.Pkg.Info
	var events []lockEvent
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			if v.Body != body {
				return false // separate scope
			}
		case *ast.DeferStmt:
			deferred[v.Call] = true
		case *ast.ReturnStmt:
			events = append(events, lockEvent{pos: v.Pos(), kind: evReturn})
		case *ast.CallExpr:
			ev, ok := classifyLockCall(info, v)
			if !ok {
				return true
			}
			if deferred[v] {
				if ev.kind == evUnlock {
					ev.kind = evDeferUnlock
				} else {
					// defer x.Lock() is never meaningful; treat as a plain
					// acquisition so it at least surfaces through rule 1.
					ev.pos = v.Pos()
				}
			}
			events = append(events, ev)
		}
		return true
	})
	return events
}

// classifyLockCall recognizes sync.Mutex / sync.RWMutex lock operations.
func classifyLockCall(info *types.Info, call *ast.CallExpr) (lockEvent, bool) {
	f := calleeFunc(info, call)
	if f == nil {
		return lockEvent{}, false
	}
	recv := recvNamed(f)
	if recv == nil || recv.Obj().Pkg() == nil || recv.Obj().Pkg().Path() != "sync" {
		return lockEvent{}, false
	}
	name := recv.Obj().Name()
	if name != "Mutex" && name != "RWMutex" {
		return lockEvent{}, false
	}
	ev := lockEvent{pos: call.Pos()}
	switch f.Name() {
	case "Lock":
		ev.kind = evLock
	case "RLock":
		ev.kind, ev.readSide = evLock, true
	case "Unlock":
		ev.kind = evUnlock
	case "RUnlock":
		ev.kind, ev.readSide = evUnlock, true
	default:
		return lockEvent{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	ev.key = exprString(sel.X)
	ev.class = lockClass(info, sel.X)
	return ev, true
}

// lockClass resolves "st.ckpt" to "programState.ckpt" when the owning named
// struct lives in a package with ranked classes (internal/hive,
// internal/wire), else "".
func lockClass(info *types.Info, lockExpr ast.Expr) string {
	sel, ok := ast.Unparen(lockExpr).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return ""
	}
	owner := namedOf(selection.Recv())
	if owner == nil {
		return ""
	}
	pkg := owner.Obj().Pkg()
	if !pkgMatches(pkg, "internal/hive") && !pkgMatches(pkg, "internal/wire") &&
		!pkgMatches(pkg, "internal/archive") {
		return ""
	}
	return owner.Obj().Name() + "." + sel.Sel.Name
}

// checkLeakOnReturn flags acquisitions followed lexically by a return
// before any matching release.
func checkLeakOnReturn(p *Pass, events []lockEvent) {
	for i, ev := range events {
		if ev.kind != evLock {
			continue
		}
	scan:
		for _, later := range events[i+1:] {
			switch later.kind {
			case evUnlock, evDeferUnlock:
				if later.key == ev.key && later.readSide == ev.readSide {
					break scan
				}
			case evReturn:
				verb, unverb := "Lock", "Unlock"
				if ev.readSide {
					verb, unverb = "RLock", "RUnlock"
				}
				p.Reportf(ev.pos, "%s.%s() with a return before any matching %s: the lock leaks on the early-return path (acquire then `defer %s.%s()`)", ev.key, verb, unverb, ev.key, unverb)
				break scan
			}
		}
	}
}

// checkAcquisitionOrder simulates the held-lock set lexically and flags
// ranked acquisitions at or below a held class's rank.
func checkAcquisitionOrder(p *Pass, events []lockEvent) {
	type held struct {
		key      string
		class    string
		readSide bool
		forever  bool // defer-released: held through function end
	}
	var stack []held
	release := func(key string) {
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].key == key && !stack[i].forever {
				stack = append(stack[:i], stack[i+1:]...)
				return
			}
		}
	}
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			for _, h := range stack {
				if h.key == ev.key {
					if !h.readSide || !ev.readSide {
						p.Reportf(ev.pos, "%s acquired while already held (lexically): self-deadlock", ev.key)
					}
					continue
				}
				hr, hOK := lockRank[h.class]
				nr, nOK := lockRank[ev.class]
				if hOK && nOK && nr <= hr && h.class != ev.class {
					p.Reportf(ev.pos, "lock order inversion: %s (%s) acquired while holding %s (%s); documented order is Router.mu ≺ Server.placeMu ≺ Client.mu ≺ session ≺ ckpt ≺ mu ≺ stripes, with Hive.mu/sessMu as leaf locks", ev.key, ev.class, h.key, h.class)
				}
			}
			stack = append(stack, held{key: ev.key, class: ev.class, readSide: ev.readSide})
		case evUnlock:
			release(ev.key)
		case evDeferUnlock:
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i].key == ev.key {
					stack[i].forever = true
					break
				}
			}
		}
	}
}
