package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	check  string
	reason string
	pos    token.Position
	used   bool
}

// suppressions indexes allow directives by (file, line): a directive
// silences matching findings on its own line and on the line directly
// below it (the "comment above the statement" idiom).
type suppressions struct {
	byLine map[string]map[int][]*allowDirective
	all    []*allowDirective
	// bad collects malformed directives (no check, or no reason): silencing
	// an invariant without saying why is itself a finding.
	bad []Diagnostic
}

const allowPrefix = "//lint:allow"

// collectSuppressions scans every comment of the loaded packages.
func collectSuppressions(m *Module, pkgs []*Package) *suppressions {
	s := &suppressions{byLine: map[string]map[int][]*allowDirective{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, g := range f.Comments {
				for _, c := range g.List {
					s.add(m, c)
				}
			}
		}
	}
	return s
}

func (s *suppressions) add(m *Module, c *ast.Comment) {
	text, ok := strings.CutPrefix(c.Text, allowPrefix)
	if !ok {
		return
	}
	pos := m.Fset.Position(c.Pos())
	fields := strings.Fields(text)
	if len(fields) < 2 {
		s.bad = append(s.bad, Diagnostic{
			Check:   "allow",
			Pos:     pos,
			Message: "malformed //lint:allow: want \"//lint:allow <check> <reason>\" — a reason is mandatory",
		})
		return
	}
	for _, check := range strings.Split(fields[0], ",") {
		d := &allowDirective{
			check:  check,
			reason: strings.Join(fields[1:], " "),
			pos:    pos,
		}
		byFile := s.byLine[pos.Filename]
		if byFile == nil {
			byFile = map[int][]*allowDirective{}
			s.byLine[pos.Filename] = byFile
		}
		byFile[pos.Line] = append(byFile[pos.Line], d)
		s.all = append(s.all, d)
	}
}

// allowed reports whether a finding is suppressed, marking the directive
// used so unused allows can be reported.
func (s *suppressions) allowed(d Diagnostic) bool {
	byFile := s.byLine[d.Pos.Filename]
	if byFile == nil {
		return false
	}
	ok := false
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range byFile[line] {
			if dir.check == d.Check || dir.check == "all" {
				dir.used = true
				ok = true
			}
		}
	}
	return ok
}

// unused reports directives that silenced nothing — stale annotations that
// would otherwise hide future regressions.
func (s *suppressions) unused() []Diagnostic {
	var out []Diagnostic
	for _, dir := range s.all {
		if !dir.used {
			out = append(out, Diagnostic{
				Check:   "allow",
				Pos:     dir.pos,
				Message: "unused //lint:allow " + dir.check + " (nothing to suppress here — remove it)",
			})
		}
	}
	return out
}
