package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// All returns the project's analyzer suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Detrange,
		Wallclock,
		JournalFirst,
		ViewEscape,
		PrivacyBoundary,
		LockDiscipline,
	}
}

// RunConfig controls a driver run.
type RunConfig struct {
	// Analyzers to run; nil means All().
	Analyzers []*Analyzer
	// ReportUnusedAllows adds findings for //lint:allow directives that
	// suppressed nothing. Only meaningful when the full suite runs (a
	// filtered run would see every other check's allows as unused).
	ReportUnusedAllows bool
}

// Run executes the analyzers over every package of the module and returns
// surviving (non-suppressed) findings sorted by position.
func Run(m *Module, cfg RunConfig) []Diagnostic {
	analyzers := cfg.Analyzers
	if analyzers == nil {
		analyzers = All()
	}
	sup := collectSuppressions(m, m.Pkgs)

	var raw []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range m.Pkgs {
			pass := &Pass{
				Analyzer: a,
				Fset:     m.Fset,
				Module:   m,
				Pkg:      pkg,
				report:   func(d Diagnostic) { raw = append(raw, d) },
			}
			a.Run(pass)
		}
	}

	var out []Diagnostic
	for _, d := range raw {
		if !sup.allowed(d) {
			out = append(out, d)
		}
	}
	out = append(out, sup.bad...)
	if cfg.ReportUnusedAllows {
		out = append(out, sup.unused()...)
	}
	for i := range out {
		out[i].File = out[i].Pos.Filename
		out[i].Line = out[i].Pos.Line
		out[i].Col = out[i].Pos.Column
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return out
}

// WriteText prints findings one per line.
func WriteText(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
}

// WriteJSON prints findings as a JSON array.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}
