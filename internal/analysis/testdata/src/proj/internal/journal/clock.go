// Package journal seeds wallclock violations: ambient time and global
// randomness inside a deterministic package.
package journal

import (
	"math/rand"
	"time"
)

// stampNow reads the wall clock into journaled state. Finding expected.
func stampNow() int64 {
	return time.Now().UnixNano()
}

// elapsed uses time.Since. Finding expected.
func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// pickShard uses the global math/rand source. Finding expected.
func pickShard(n int) int {
	return rand.Intn(n)
}

// pacedFlush is deliberately exempt pacing: the suppression must silence it.
func pacedFlush(window time.Duration) {
	//lint:allow wallclock pacing only; no journaled state derives from the clock
	time.Sleep(window)
}

// addDurations only manipulates duration values handed in. Clean.
func addDurations(a, b time.Duration) time.Duration {
	return a + b
}
