// Package wire seeds lockdiscipline violations against miniature
// stand-ins for the PR 9 admission-layer lock classes: the token-bucket
// table lock (admissionState.mu) and the per-connection queued-bytes
// lock (connState.qMu) are leaves, never held across another ranked
// acquisition.
package wire

import "sync"

// admissionState mirrors the real token-bucket table lock.
type admissionState struct {
	mu      sync.Mutex
	buckets map[string]int
}

// connState mirrors the per-connection queue accounting lock.
type connState struct {
	qMu    sync.Mutex
	qBytes int64
}

// debitClean charges a bucket under the leaf lock alone. Clean.
func (a *admissionState) debitClean(key string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.buckets[key]++
}

// accountClean adjusts one connection's queue bytes. Clean.
func (cs *connState) accountClean(n int64) {
	cs.qMu.Lock()
	cs.qBytes += n
	cs.qMu.Unlock()
}

// debitThenAccount acquires the queue leaf while holding the bucket
// leaf. Finding expected.
func debitThenAccount(a *admissionState, cs *connState, key string, n int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.buckets[key]++
	cs.qMu.Lock()
	cs.qBytes += n
	cs.qMu.Unlock()
}
