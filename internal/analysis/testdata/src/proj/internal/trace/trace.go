// Package trace is a miniature stand-in for the real internal/trace: just
// enough surface (Trace, BatchView, Collector, ApplyPrivacy) for the
// analyzers to resolve the named types they guard. Analyzers match packages
// by module-relative suffix, so fixture/internal/trace plays the role of
// repro/internal/trace.
package trace

// PrivacyLevel mirrors the real knob.
type PrivacyLevel uint8

// Trace mirrors the fields the privacy boundary owns.
type Trace struct {
	ProgramID    string
	PodID        string
	Input        []int64
	InputBuckets []int64
	InputDigest  string
	Privacy      PrivacyLevel
}

// ApplyPrivacy is the scrub: the only legal writer of input-derived fields.
func ApplyPrivacy(t *Trace, input []int64, level PrivacyLevel, salt string) {
	t.Privacy = level
	t.Input = nil
	t.InputBuckets = nil
	t.InputDigest = salt
	if level == 1 {
		t.Input = append([]int64(nil), input...)
	}
}

// Collector mirrors the pod-side sink.
type Collector struct {
	programID string
}

// Finish is the sanctioned Trace constructor.
func (c *Collector) Finish(input []int64, level PrivacyLevel, salt string) *Trace {
	t := &Trace{ProgramID: c.programID}
	ApplyPrivacy(t, input, level, salt)
	return t
}

// BatchView mirrors the pooled zero-copy decode result.
type BatchView struct {
	buf []byte
	n   int
}

// DecodeBatch mirrors the pooled constructor.
func DecodeBatch(buf []byte) (*BatchView, error) {
	return &BatchView{buf: buf, n: 1}, nil
}

// Bytes borrows the underlying frame.
func (v *BatchView) Bytes() []byte { return v.buf }

// Len reports the batch size.
func (v *BatchView) Len() int { return v.n }

// Release returns the view's scratch to its pool.
func (v *BatchView) Release() { v.buf = nil }

// Materialize copies one trace out of the frame.
func (v *BatchView) Materialize(i int) *Trace { return &Trace{} }
