// Package archive seeds lockdiscipline violations against a miniature
// stand-in for the PR 10 archiver: its sync lock (Archiver.mu) is a leaf
// held across a whole program sync, and because the journal's internal
// locks are unranked that is safe — but it must never be held across any
// ranked hive/wire acquisition.
package archive

import "sync"

// Archiver mirrors the real background tiering loop's sync lock.
type Archiver struct {
	mu     sync.Mutex
	synced int
}

// Hive is a stand-in for the live registry the archiver exports from;
// only its leaf lock matters here.
type Hive struct {
	mu sync.RWMutex
}

// syncClean runs a whole sync under the leaf alone. Clean.
func (a *Archiver) syncClean() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.synced++
}

// syncThenRegistry holds the archiver leaf across the registry leaf.
// Finding expected.
func syncThenRegistry(a *Archiver, h *Hive) {
	a.mu.Lock()
	defer a.mu.Unlock()
	h.mu.RLock()
	h.mu.RUnlock()
	a.synced++
}

// syncLeaks can return with the sync lock still held. Finding expected.
func (a *Archiver) syncLeaks(cond bool) int {
	a.mu.Lock()
	if cond {
		return a.synced
	}
	a.mu.Unlock()
	return 0
}
