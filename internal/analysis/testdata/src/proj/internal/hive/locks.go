package hive

import "errors"

// leakOnReturn can return with sessMu still held. Finding expected.
func (h *Hive) leakOnReturn(cond bool) error {
	h.sessMu.Lock()
	if cond {
		return errors.New("bail")
	}
	h.sessMu.Unlock()
	return nil
}

// invertedOrder acquires ckpt while holding mu, inverting the documented
// ckpt-before-mu order. Finding expected.
func invertedOrder(st *programState) {
	st.mu.Lock()
	st.ckpt.RLock()
	st.ckpt.RUnlock()
	st.mu.Unlock()
}

// registryThenProgram acquires a program lock while holding the leaf
// registry lock. Finding expected.
func (h *Hive) registryThenProgram(st *programState) {
	h.mu.RLock()
	st.mu.Lock()
	st.mu.Unlock()
	h.mu.RUnlock()
}

// doubleAcquire self-deadlocks. Finding expected.
func doubleAcquire(st *programState) {
	st.mu.Lock()
	st.mu.Lock()
	st.mu.Unlock()
	st.mu.Unlock()
}

// correctOrder follows ckpt before mu before the stripe locks. Clean.
func correctOrder(st *programState) {
	st.ckpt.RLock()
	defer st.ckpt.RUnlock()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.kgMu.Lock()
	st.kgMu.Unlock()
}

// deferredUnlock returns early safely under a deferred unlock. Clean.
func deferredUnlock(st *programState, cond bool) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if cond {
		return errors.New("bail")
	}
	st.applied++
	return nil
}

// handoffAllowed transfers lock ownership deliberately: the suppression
// must silence it.
func (e *sessionEntry) handoffAllowed(done chan<- *sessionEntry) {
	//lint:allow lockdiscipline ownership transfers to the receiver, which unlocks
	e.mu.Lock()
	done <- e
	return
}
