// Package hive seeds journalfirst and lockdiscipline violations against
// miniature stand-ins for the real hive's types and journaled-apply call
// graph.
package hive

import "sync"

// Hive mirrors the real registry locks.
type Hive struct {
	mu     sync.RWMutex
	sessMu sync.Mutex
	progs  map[string]*programState
}

// programState mirrors the real per-program lock set.
type programState struct {
	mu      sync.Mutex
	ckpt    sync.RWMutex
	kgMu    sync.Mutex
	coordMu sync.Mutex
	applied int
}

// sessionEntry mirrors the per-session dedup record.
type sessionEntry struct {
	mu   sync.Mutex
	seen int
}

func (h *Hive) applyBatch(st *programState) {
	st.applied++
	h.synthesizeFix(st)
}

func (h *Hive) applyBatchView(st *programState) {
	st.applied++
	h.synthesizeFix(st)
}

func (h *Hive) synthesizeFix(st *programState) {}

func (h *Hive) markSession(id string) {}

func (h *Hive) mergeSessions(a, b string) {
	h.markSession(a)
	_ = h.entryLocked(b)
}

// ingest is a sanctioned journaled wrapper; it appends through the
// breaker-accounted wrapper before applying. Clean.
func (h *Hive) ingest(st *programState) {
	_ = h.journalBatchAppend(st)
	h.markSession("s")
	h.applyBatch(st)
}

// ingestView is a sanctioned journaled wrapper. Clean.
func (h *Hive) ingestView(st *programState) {
	h.markSession("s")
	h.applyBatchView(st)
}

// applyOp is the sanctioned recovery/replay path. Clean.
func (h *Hive) applyOp(st *programState) {
	h.markSession("s")
	h.applyBatch(st)
	h.applyBatchView(st)
}

// handleDirect mutates program state without journaling. Finding expected.
func (h *Hive) handleDirect(st *programState) {
	h.applyBatch(st)
}

// handleDirectView skips the journaled view wrapper. Finding expected.
func (h *Hive) handleDirectView(st *programState) {
	h.applyBatchView(st)
}

// touchSession marks a session outside the sanctioned paths. Finding
// expected.
func (h *Hive) touchSession(id string) {
	h.markSession(id)
}

// replayHook is a deliberate exception: the suppression must silence it.
func (h *Hive) replayHook(st *programState) {
	//lint:allow journalfirst test-only replay hook; never reachable in production
	h.applyBatch(st)
}

// journalBatchAppend mirrors the PR 10 breaker-accounted append wrapper.
func (h *Hive) journalBatchAppend(st *programState) error { return nil }

// closeReadOnly mirrors the breaker close; only a landed checkpoint may
// call it.
func (st *programState) closeReadOnly() {}

// entryLocked mirrors the frozen-tier session lookup under sessMu.
func (h *Hive) entryLocked(id string) *sessionEntry { return nil }

// CheckpointProgram is the sanctioned breaker-close path. Clean.
func (h *Hive) CheckpointProgram(st *programState) {
	st.closeReadOnly()
}

// rawAppend bypasses the breaker's failure accounting. Finding expected.
func (h *Hive) rawAppend(st *programState) {
	_ = h.journalBatchAppend(st)
}

// forceWritable closes the breaker without a checkpoint. Finding expected.
func (h *Hive) forceWritable(st *programState) {
	st.closeReadOnly()
}

// peekFrozen reads the frozen tier outside the merge path. Finding
// expected.
func (h *Hive) peekFrozen(id string) *sessionEntry {
	return h.entryLocked(id)
}
