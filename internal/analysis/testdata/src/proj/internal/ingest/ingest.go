// Package ingest seeds viewescape violations: borrowed BatchView bytes
// escaping their frame lifetime, and use-after-reclaim on pooled values.
package ingest

import (
	"sync"

	"fixture/internal/trace"
)

type holder struct {
	raw  []byte
	tail [][]byte
}

var lastFrame []byte

// stashField stores borrowed bytes into a longer-lived struct. Finding
// expected.
func stashField(h *holder, v *trace.BatchView) {
	h.raw = v.Bytes()
}

// stashLiteral embeds borrowed bytes in a composite literal. Finding
// expected.
func stashLiteral(v *trace.BatchView) *holder {
	return &holder{raw: v.Bytes()}
}

// stashGlobal stores borrowed bytes at package level. Finding expected.
func stashGlobal(v *trace.BatchView) {
	lastFrame = v.Bytes()
}

// sendBorrow ships a tracked borrow over a channel. Finding expected.
func sendBorrow(v *trace.BatchView, ch chan []byte) {
	b := v.Bytes()
	ch <- b
}

// returnBorrow leaks the borrow to an unknown caller. Finding expected.
func returnBorrow(v *trace.BatchView) []byte {
	return v.Bytes()
}

// useAfterRelease touches the view after returning it to the pool. Finding
// expected.
func useAfterRelease(v *trace.BatchView) int {
	v.Release()
	return v.Len()
}

// useAfterPut touches a pooled buffer after Put. Finding expected.
func useAfterPut(p *sync.Pool) int {
	b := p.Get().(*[]byte)
	p.Put(b)
	return len(*b)
}

// materialize uses the sanctioned owning copy. Clean.
func materialize(v *trace.BatchView) *trace.Trace {
	return v.Materialize(0)
}

// copyOut makes an owned copy before returning. Clean.
func copyOut(v *trace.BatchView) []byte {
	return append([]byte(nil), v.Bytes()...)
}

// syncConsume is a deliberate exception: the suppression must silence it.
func syncConsume(v *trace.BatchView) []byte {
	//lint:allow viewescape caller consumes the frame synchronously before Release
	return v.Bytes()
}
