// Package core seeds detrange violations: map iteration order leaking into
// outputs inside a deterministic package.
package core

import (
	"bytes"
	"sort"
)

// emitUnsorted appends map keys in iteration order and never re-sorts: the
// caller observes nondeterministic order. Finding expected.
func emitUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// emitSorted is the sanctioned collect-then-sort idiom. Clean.
func emitSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// emitChan sends keys in iteration order. Finding expected.
func emitChan(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k
	}
}

// emitWrite streams keys in iteration order. Finding expected.
func emitWrite(m map[string]int, w *bytes.Buffer) {
	for k := range m {
		w.WriteString(k)
	}
}

// emitAllowed is deliberately exempt: the suppression must silence it.
func emitAllowed(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:allow detrange caller re-canonicalizes the slice before use
		out = append(out, k)
	}
	return out
}

// sumValues only folds commutatively over the map. Clean.
func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
