// Package pod seeds privacyboundary violations: constructing or mutating
// traces outside the sanctioned Collector.Finish / ApplyPrivacy path.
package pod

import "fixture/internal/trace"

// forgeTrace builds a Trace literal, bypassing the privacy scrub. Finding
// expected.
func forgeTrace(id string) *trace.Trace {
	return &trace.Trace{ProgramID: id}
}

// pokeInput writes an input-derived field directly. Finding expected.
func pokeInput(t *trace.Trace, input []int64) {
	t.Input = input
}

// pokeDigest writes the digest directly. Finding expected.
func pokeDigest(t *trace.Trace, digest string) {
	t.InputDigest = digest
}

// collect goes through the sanctioned constructor. Clean.
func collect(c *trace.Collector, input []int64) *trace.Trace {
	return c.Finish(input, 1, "salt")
}

// scrub re-applies privacy through the sanctioned entry point. Clean.
func scrub(t *trace.Trace, input []int64) {
	trace.ApplyPrivacy(t, input, 2, "salt")
}

// relabel touches only non-input metadata. Clean.
func relabel(t *trace.Trace, pod string) {
	t.PodID = pod
}

// syntheticAllowed is a deliberate exception: the suppression must silence
// it.
func syntheticAllowed() *trace.Trace {
	//lint:allow privacyboundary synthetic benign trace for the load generator
	return &trace.Trace{ProgramID: "synthetic"}
}
