// Package core seeds suppression-directive problems: a malformed allow with
// no reason, and a stale allow that suppresses nothing.
package core

// orderedKeys carries a reason-less allow; the directive itself must be
// reported even though it would otherwise match the finding.
func orderedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:allow detrange
		out = append(out, k)
	}
	return out
}

// sum is clean code under a stale allow: the unused directive must be
// reported on full-suite runs.
func sum(m map[string]int) int {
	//lint:allow wallclock left over from a removed time.Now call
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
