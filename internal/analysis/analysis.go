// Package analysis is a stdlib-only static-analysis framework for this
// module, plus the project-specific analyzers that encode the invariants the
// codebase lives by: deterministic simulation (detrange, wallclock),
// journal-ahead-of-apply durability (journalfirst), pooled zero-copy frame
// lifetimes (viewescape), the pod-side privacy boundary (privacyboundary),
// and lock hygiene (lockdiscipline).
//
// The framework deliberately avoids golang.org/x/tools: packages are loaded
// with go/parser, type-checked with go/types, and stdlib dependencies are
// resolved by the go/importer source importer, so go.mod stays
// dependency-free. The driver lives in cmd/repolint.
//
// Findings are position-accurate and suppressible in place:
//
//	//lint:allow <check> <reason>
//
// on the offending line, or the line directly above it, silences that check
// there. A reason is mandatory — an allow without one is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one invariant checker. Run is invoked once per loaded package
// and reports findings through the Pass.
type Analyzer struct {
	// Name is the check name used in diagnostics and //lint:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Module   *Module
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Check:   p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Check   string         `json:"check"`
	Pos     token.Position `json:"-"`
	Message string         `json:"message"`

	// File/Line/Col mirror Pos for JSON output.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Check, d.Message)
}

// --- shared type-resolution helpers ---

// pathMatches reports whether a package path is the target or ends in
// "/"+target. Invariant configuration names packages by module-relative
// suffix ("internal/trace") so the same analyzers run unchanged over the
// real module and over test fixtures with a different module path.
func pathMatches(path, target string) bool {
	return path == target || strings.HasSuffix(path, "/"+target)
}

// pkgMatches reports whether the types package matches a target suffix.
func pkgMatches(pkg *types.Package, target string) bool {
	return pkg != nil && pathMatches(pkg.Path(), target)
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// typeIsNamed reports whether t (possibly behind pointers) is the named type
// pkgSuffix.name.
func typeIsNamed(t types.Type, pkgSuffix, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && pkgMatches(obj.Pkg(), pkgSuffix)
}

// calleeFunc resolves a call expression to the function or method object it
// statically invokes, or nil for indirect calls and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}

// recvNamed returns the named type of a method's receiver, or nil for plain
// functions.
func recvNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

// identObj resolves an expression to the object of the identifier it names
// (unwrapping parens), or nil if the expression is not a plain identifier.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}

// enclosingFuncs walks every function declaration and literal in file,
// calling fn with the declaration whose body is being inspected. Function
// literals are attributed to their enclosing declaration.
func enclosingFuncs(file *ast.File, fn func(decl *ast.FuncDecl)) {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			fn(fd)
		}
	}
}

// funcName renders a declaration's name, with its receiver type when present
// ("(*Hive).applyBatch" style is overkill for messages; "applyBatch" reads
// better and names are unique enough within a package).
func funcName(fd *ast.FuncDecl) string {
	if fd == nil {
		return "package scope"
	}
	return fd.Name.Name
}

// exprString renders a (small) expression back to source, for lock identity
// and messages. Only identifiers and selector chains are expected.
func exprString(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	default:
		return "expr"
	}
}
