package analysis

import (
	"go/ast"
)

// PrivacyBoundary enforces the pod→hive privacy scrub: the only ways to
// produce a trace.Trace are Collector.Finish and ApplyPrivacy (which
// populate the input-derived fields according to the pod's privacy level),
// plus the codec/clone paths that only reproduce already-scrubbed traces.
//
// Outside internal/trace, constructing a Trace literal or writing its
// input-derived fields directly creates a trace whose Input/InputBuckets/
// InputDigest were never passed through the privacy scrub — raw end-user
// input could cross the pod→hive boundary, the exact leak the paper's
// privacy framework (and PAPERS.md's aggregation-protocol line) forbids.
var PrivacyBoundary = &Analyzer{
	Name: "privacyboundary",
	Doc: "outside internal/trace, trace.Trace values must come from " +
		"Collector.Finish/ApplyPrivacy (or Decode/Clone/Materialize of scrubbed " +
		"traces) — no composite literals, no direct writes to input-derived fields",
	Run: runPrivacyBoundary,
}

// inputDerivedFields are the Trace fields ApplyPrivacy owns.
var inputDerivedFields = map[string]bool{
	"Input":        true,
	"InputBuckets": true,
	"InputDigest":  true,
	"Privacy":      true,
}

func runPrivacyBoundary(p *Pass) {
	if pathMatches(p.Pkg.Path, "internal/trace") {
		return
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CompositeLit:
				tv, ok := info.Types[ast.Expr(v)]
				if ok && typeIsNamed(tv.Type, "internal/trace", "Trace") {
					p.Reportf(v.Pos(), "trace.Trace composite literal outside internal/trace: traces must be produced by Collector.Finish/ApplyPrivacy so input-derived fields pass the privacy scrub")
				}
			case *ast.AssignStmt:
				for _, lhs := range v.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok || !inputDerivedFields[sel.Sel.Name] {
						continue
					}
					tv, ok := info.Types[sel.X]
					if ok && typeIsNamed(tv.Type, "internal/trace", "Trace") {
						p.Reportf(lhs.Pos(), "direct write to trace.Trace.%s outside internal/trace: input-derived fields are owned by ApplyPrivacy (bypassing it can ship unscrubbed input to the hive)", sel.Sel.Name)
					}
				}
			}
			return true
		})
	}
}
