package analysis

import (
	"go/types"
)

// deterministicPkgs are the module-relative package suffixes whose state
// must evolve bit-for-bit identically across runs, worker counts, and
// crash-recovery replays: the fleet simulation (core), the collective
// execution tree and its frontier index (exectree), the write-ahead log
// (journal), and the hive's apply paths. PR 1 pinned the determinism
// contract (TestParallelRunMatchesSequential); PR 3 extended it to
// replay ≡ live.
var deterministicPkgs = []string{
	"internal/core",
	"internal/exectree",
	"internal/journal",
	"internal/hive",
}

func inDeterministicPkg(path string) bool {
	for _, suffix := range deterministicPkgs {
		if pathMatches(path, suffix) {
			return true
		}
	}
	return false
}

// wallclockFuncs are the time functions that smuggle the host clock into
// otherwise-deterministic state. Types (time.Duration) and constants stay
// legal; durability code that genuinely waits (group-commit windows) must
// carry an explicit //lint:allow wallclock with its justification.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// Wallclock forbids wall-clock reads and the global math/rand generator in
// deterministic packages. Randomness must come from the seeded
// internal/stats RNG; time must not influence simulation or journaled
// state at all.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "no time.Now/time.Since/timers or global math/rand in deterministic packages " +
		"(internal/core, internal/exectree, internal/journal, internal/hive); " +
		"use the seeded internal/stats RNG and explicit injected clocks",
	Run: runWallclock,
}

func runWallclock(p *Pass) {
	if !inDeterministicPkg(p.Pkg.Path) {
		return
	}
	for id, obj := range p.Pkg.Info.Uses {
		pkg := obj.Pkg()
		if pkg == nil {
			continue
		}
		switch pkg.Path() {
		case "time":
			if _, isFunc := obj.(*types.Func); isFunc && wallclockFuncs[obj.Name()] {
				p.Reportf(id.Pos(), "call of time.%s in deterministic package %s: wall-clock time must not reach simulation or journaled state (inject a clock, or annotate a pure-durability wait)", obj.Name(), p.Pkg.Types.Name())
			}
		case "math/rand", "math/rand/v2":
			// Any use at all: the global generator is seeded from the OS and
			// shared across goroutines; even rand.New with a fixed seed hides
			// nondeterministic iteration once goroutines interleave. The
			// project's reproducible generator is internal/stats.RNG.
			if _, isPkgName := obj.(*types.PkgName); isPkgName {
				continue // the import ident itself; uses are reported per call
			}
			p.Reportf(id.Pos(), "use of %s.%s in deterministic package %s: use the seeded internal/stats RNG", pkg.Path(), obj.Name(), p.Pkg.Types.Name())
		}
	}
}
