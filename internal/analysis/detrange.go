package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detrange forbids unordered map iteration from feeding order-sensitive
// sinks in deterministic packages. Go randomizes map iteration order per
// run, so a map range that appends to a slice, writes to a stream, or sends
// on a channel produces run-dependent output — which breaks bit-for-bit
// simulation equivalence (PR 1), journal replay ≡ live state (PR 3), and
// byte-identical wire/journal frames (PR 5).
//
// Order-insensitive uses stay legal: folding into another map, summing,
// min/max selection, deletes. The one sanctioned order-sensitive idiom is
// collect-then-sort — appending keys/values to a slice that is passed to a
// sort call (sort.*, slices.Sort*, or a local sortXxx helper) later in the
// same function.
var Detrange = &Analyzer{
	Name: "detrange",
	Doc: "in deterministic packages, ranging over a map must not feed order-sensitive " +
		"sinks (slice appends without a subsequent sort, stream writes, channel sends); " +
		"map iteration order is randomized per run",
	Run: runDetrange,
}

func runDetrange(p *Pass) {
	if !inDeterministicPkg(p.Pkg.Path) {
		return
	}
	for _, file := range p.Pkg.Files {
		enclosingFuncs(file, func(fd *ast.FuncDecl) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if tv, ok := p.Pkg.Info.Types[rng.X]; !ok || !isMapType(tv.Type) {
					return true
				}
				checkMapRange(p, fd, rng)
				return true
			})
		})
	}
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one map-range body for order-sensitive sinks.
func checkMapRange(p *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	info := p.Pkg.Info
	mapName := exprString(rng.X)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.SendStmt:
			p.Reportf(stmt.Arrow, "channel send inside range over map %s: map iteration order is randomized, so receive order is nondeterministic", mapName)
		case *ast.CallExpr:
			if isStreamWrite(info, stmt) {
				p.Reportf(stmt.Pos(), "stream write inside range over map %s: bytes are emitted in randomized map order", mapName)
			}
		case *ast.AssignStmt:
			if obj, call := appendTarget(info, stmt); obj != nil {
				if declaredInside(obj, rng) {
					return true
				}
				if sortedAfter(info, fd, obj, rng.End()) {
					return true
				}
				p.Reportf(call.Pos(), "append to %s inside range over map %s without a subsequent sort: element order is randomized per run (collect then sort, or iterate sorted keys)", obj.Name(), mapName)
			}
		}
		return true
	})
}

// appendTarget matches `x = append(x, ...)` / `x := append(x, ...)` and
// returns x's object and the append call.
func appendTarget(info *types.Info, as *ast.AssignStmt) (types.Object, *ast.CallExpr) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil, nil
	}
	if b, ok := info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return nil, nil
	}
	obj := identObj(info, as.Lhs[0])
	if obj == nil {
		// Appends into fields/indexed slots are rarer; treat as a sink with
		// no sort exemption by reporting on the conservative side only when
		// the target is a struct-field selector (skip blank and complex).
		return nil, nil
	}
	if len(call.Args) == 0 || identObj(info, call.Args[0]) != obj {
		return nil, nil
	}
	return obj, call
}

// declaredInside reports whether obj's declaration lies within the range
// statement (per-iteration locals are order-safe: they don't accumulate).
func declaredInside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
}

// isStreamWrite matches writes to byte/string sinks: Write/WriteString/
// WriteByte/WriteRune methods and fmt.Fprint*/fmt.Print* calls.
func isStreamWrite(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil {
		return false
	}
	switch f.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		sig, ok := f.Type().(*types.Signature)
		return ok && sig.Recv() != nil
	case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
		return f.Pkg() != nil && f.Pkg().Path() == "fmt"
	}
	return false
}

// sortedAfter reports whether obj is passed to a recognized sort call after
// pos in the function body: sort.* / slices.Sort* package calls, or a local
// helper whose name starts with "sort" or contains "Sort" (sortFrontiers
// style).
func sortedAfter(info *types.Info, fd *ast.FuncDecl, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		f := calleeFunc(info, call)
		if f == nil || !isSortFunc(f) {
			return true
		}
		for _, arg := range call.Args {
			if identObj(info, arg) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortFunc(f *types.Func) bool {
	if pkg := f.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
		return true
	}
	name := f.Name()
	if len(name) >= 4 && name[:4] == "sort" {
		return true
	}
	for i := 0; i+4 <= len(name); i++ {
		if name[i:i+4] == "Sort" {
			return true
		}
	}
	return false
}
