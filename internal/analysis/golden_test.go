package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// Fixture modules load once per test binary: the source importer warms the
// stdlib on first use and every later load reuses it.
var (
	fixtureOnce sync.Once
	fixtureMods map[string]*Module
	fixtureErr  error
)

func loadFixture(t *testing.T, name string) *Module {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureMods = map[string]*Module{}
		for _, n := range []string{"proj", "allowproj"} {
			m, err := Load(filepath.Join("testdata", "src", n), LoadConfig{})
			if err != nil {
				fixtureErr = fmt.Errorf("load fixture %s: %w", n, err)
				return
			}
			fixtureMods[n] = m
		}
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureMods[name]
}

// renderDiags formats findings with root-relative paths so goldens are
// machine-independent.
func renderDiags(t *testing.T, m *Module, diags []Diagnostic) string {
	t.Helper()
	var b strings.Builder
	for _, d := range diags {
		rel, err := filepath.Rel(m.Root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n",
			filepath.ToSlash(rel), d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}
	return b.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".golden")
	if os.Getenv("REPOLINT_UPDATE") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with REPOLINT_UPDATE=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestGoldenPerAnalyzer runs each analyzer alone over the seeded fixture and
// compares its findings to the golden file. Every analyzer must fire at
// least once, and no finding may land on a line covered by a //lint:allow
// for that check — proving both halves of the contract.
func TestGoldenPerAnalyzer(t *testing.T) {
	m := loadFixture(t, "proj")
	allows := fixtureAllows(t, m.Root)
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			diags := Run(m, RunConfig{Analyzers: []*Analyzer{a}})
			if len(diags) == 0 {
				t.Fatalf("analyzer %s produced no findings on the seeded fixture", a.Name)
			}
			for _, d := range diags {
				if d.Check != a.Name {
					t.Errorf("analyzer %s produced finding labeled %s", a.Name, d.Check)
				}
			}
			dirs := allows[a.Name]
			if len(dirs) == 0 {
				t.Errorf("fixture has no //lint:allow %s directive; add one to prove suppression", a.Name)
			}
			for _, d := range diags {
				for _, al := range dirs {
					if d.Pos.Filename == al.file && (d.Pos.Line == al.line || d.Pos.Line == al.line+1) {
						t.Errorf("finding at %s:%d was not suppressed by the allow at line %d",
							d.Pos.Filename, d.Pos.Line, al.line)
					}
				}
			}
			checkGolden(t, a.Name, renderDiags(t, m, diags))
		})
	}
}

type allowSite struct {
	file string
	line int
}

var allowRE = regexp.MustCompile(`^\s*//lint:allow\s+(\S+)`)

// fixtureAllows scans fixture sources for allow directives, by check name.
func fixtureAllows(t *testing.T, root string) map[string][]allowSite {
	t.Helper()
	out := map[string][]allowSite{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for n := 1; sc.Scan(); n++ {
			if m := allowRE.FindStringSubmatch(sc.Text()); m != nil {
				for _, check := range strings.Split(m[1], ",") {
					out[check] = append(out[check], allowSite{file: path, line: n})
				}
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestGoldenFullSuite runs everything at once (with unused-allow reporting)
// over the seeded fixture: the combined, sorted output is itself a golden,
// and none of the fixture's allows may be reported stale — each must have
// suppressed something.
func TestGoldenFullSuite(t *testing.T) {
	m := loadFixture(t, "proj")
	diags := Run(m, RunConfig{ReportUnusedAllows: true})
	got := renderDiags(t, m, diags)
	if strings.Contains(got, "unused //lint:allow") {
		t.Errorf("fixture has stale allow directives:\n%s", got)
	}
	checkGolden(t, "all", got)
}

// TestGoldenAllowDirectives covers the directive edge cases: a reason-less
// allow is malformed (reported, and suppresses nothing, so the underlying
// finding also surfaces), and an allow that matches no finding is reported
// stale on full-suite runs.
func TestGoldenAllowDirectives(t *testing.T) {
	m := loadFixture(t, "allowproj")
	diags := Run(m, RunConfig{ReportUnusedAllows: true})
	got := renderDiags(t, m, diags)
	for _, want := range []string{"malformed //lint:allow", "unused //lint:allow wallclock", ": detrange: "} {
		if !strings.Contains(got, want) {
			t.Errorf("allow fixture output missing %q:\n%s", want, got)
		}
	}
	checkGolden(t, "allow", got)
}

// TestSelfLint asserts the repository itself is clean under the full suite —
// the tree must stay lintable at head, deliberate exceptions annotated.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("self-lint loads the whole module")
	}
	m, err := Load(filepath.Join("..", ".."), LoadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(m, RunConfig{ReportUnusedAllows: true})
	if len(diags) != 0 {
		t.Errorf("repolint is not clean on this tree:\n%s", renderDiags(t, m, diags))
	}
}
