package prog

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// genProgram builds a small single-threaded program deterministically from a
// seed, exercising arithmetic, branches, memory, syscalls and a bounded
// loop. Used by the property tests below.
func genProgram(seed uint64) *Program {
	rng := stats.NewRNG(seed)
	b := NewBuilder("prop", 2).SetMem(4)
	end := b.NewLabel()
	b.Input(0, 0)
	b.Input(1, 1)
	for i := 0; i < 3+rng.Intn(4); i++ {
		switch rng.Intn(6) {
		case 0:
			b.Add(2, 0, 1)
		case 1:
			b.Sub(2, 1, 0)
		case 2:
			b.AddImm(2, 0, rng.Int63n(50))
		case 3:
			b.Store(int(rng.Int63n(4)), 0)
			b.Load(3, int(rng.Int63n(4)))
		case 4:
			b.Syscall(4, rng.Int63n(5), 0)
		case 5:
			skip := b.NewLabel()
			b.BrImm(0, CmpGT, rng.Int63n(256), skip)
			b.AddImm(2, 2, 1)
			b.Bind(skip)
		}
	}
	// Bounded loop on input 1 % 8.
	b.Const(5, 8)
	b.Mod(6, 1, 5)
	b.Const(7, 0)
	head := b.Here()
	b.Br(7, CmpGE, 6, end)
	b.AddImm(7, 7, 1)
	b.Jmp(head)
	b.Bind(end)
	b.Halt()
	return b.MustBuild()
}

// recordingObs captures the full event stream for comparison.
type recordingObs struct {
	events []int64
}

func (r *recordingObs) Branch(tid, id int, taken bool) {
	v := int64(id) << 1
	if taken {
		v |= 1
	}
	r.events = append(r.events, 1000+v)
}
func (r *recordingObs) LockAcquire(tid, lockID, pc int) {
	r.events = append(r.events, 2000+int64(lockID))
}
func (r *recordingObs) LockRelease(tid, lockID, pc int) {
	r.events = append(r.events, 3000+int64(lockID))
}
func (r *recordingObs) Syscall(tid int, s, a, ret int64) { r.events = append(r.events, 4000+ret) }
func (r *recordingObs) Schedule(tid int)                 {}

// Property: execution is a pure function of (program, input, environment):
// two runs with identical configuration produce identical results and
// identical event streams. This is the determinism §3.1's reconstruction
// argument rests on.
func TestQuickDeterministicExecution(t *testing.T) {
	check := func(seed uint64, a, b uint8) bool {
		p := genProgram(seed % 50)
		input := []int64{int64(a), int64(b)}
		run := func() (Result, []int64) {
			obs := &recordingObs{}
			m, err := NewMachine(p, Config{
				Input:    input,
				Observer: obs,
				Syscalls: &DeterministicSyscalls{Seed: seed},
			})
			if err != nil {
				t.Fatal(err)
			}
			return m.Run(), obs.events
		}
		r1, e1 := run()
		r2, e2 := run()
		if r1.Outcome != r2.Outcome || r1.Steps != r2.Steps || r1.FaultPC != r2.FaultPC {
			return false
		}
		if len(e1) != len(e2) {
			return false
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: generated property programs always terminate (no unbounded
// loops) and never fail — they are bug-free by construction except for
// div-by-zero, which the generator avoids.
func TestQuickGenProgramsTerminateOK(t *testing.T) {
	check := func(seed uint64, a, b uint8) bool {
		p := genProgram(seed % 50)
		m, err := NewMachine(p, Config{
			Input:    []int64{int64(a), int64(b)},
			MaxSteps: 100_000,
		})
		if err != nil {
			return false
		}
		return m.Run().Outcome == OutcomeOK
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: a recorded random schedule replays to the identical outcome on
// multi-threaded programs (the pod's schedule capture is sufficient for the
// hive to distinguish interleavings).
func TestQuickScheduleReplayFaithful(t *testing.T) {
	b := NewBuilder("mtprop", 0).SetLocks(2).SetMem(2)
	b.Thread()
	b.Lock(0).Load(0, 0).AddImm(0, 0, 1).Store(0, 0).Unlock(0).
		Lock(1).Load(1, 1).AddImm(1, 1, 1).Store(1, 1).Unlock(1).Halt()
	b.Thread()
	b.Lock(1).Load(1, 1).AddImm(1, 1, 10).Store(1, 1).Unlock(1).
		Lock(0).Load(0, 0).AddImm(0, 0, 10).Store(0, 0).Unlock(0).Halt()
	p := b.MustBuild()

	check := func(seed uint64) bool {
		rec := newRecordingScheduler(seed)
		m, err := NewMachine(p, Config{Scheduler: rec})
		if err != nil {
			return false
		}
		r1 := m.Run()
		mem1 := m.Mem()

		rep := &replayScheduler{script: rec.picks}
		m2, err := NewMachine(p, Config{Scheduler: rep})
		if err != nil {
			return false
		}
		r2 := m2.Run()
		mem2 := m2.Mem()

		if r1.Outcome != r2.Outcome || r1.Steps != r2.Steps {
			return false
		}
		for i := range mem1 {
			if mem1[i] != mem2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// recordingScheduler picks pseudo-randomly and records its picks.
type recordingScheduler struct {
	rng   *stats.RNG
	picks []int
}

func newRecordingScheduler(seed uint64) *recordingScheduler {
	return &recordingScheduler{rng: stats.NewRNG(seed)}
}

func (r *recordingScheduler) Pick(step int64, runnable []int) int {
	p := runnable[r.rng.Intn(len(runnable))]
	r.picks = append(r.picks, p)
	return p
}

// replayScheduler replays recorded picks (falling back to runnable[0]).
type replayScheduler struct {
	script []int
	pos    int
}

func (r *replayScheduler) Pick(step int64, runnable []int) int {
	if r.pos < len(r.script) {
		want := r.script[r.pos]
		r.pos++
		for _, tid := range runnable {
			if tid == want {
				return tid
			}
		}
	}
	return runnable[0]
}
