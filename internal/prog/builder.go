package prog

import "fmt"

// Builder assembles a Program instruction by instruction with label-based
// control flow. It is the hand-written front end used by examples, tests,
// and the generator in internal/proggen.
type Builder struct {
	name      string
	numInputs int
	numLocks  int
	memSize   int
	code      []Instr
	entries   []int
	labels    []int         // label id -> pc, or -1 while unresolved
	pending   map[int][]int // label id -> pcs of instructions to patch
	errs      []error
}

// Label is an opaque jump target handle.
type Label int

// NewBuilder starts a program with the given name and input arity.
func NewBuilder(name string, numInputs int) *Builder {
	return &Builder{
		name:      name,
		numInputs: numInputs,
		pending:   make(map[int][]int),
	}
}

// SetLocks declares the number of lock slots.
func (b *Builder) SetLocks(n int) *Builder { b.numLocks = n; return b }

// SetMem declares the shared-memory size.
func (b *Builder) SetMem(n int) *Builder { b.memSize = n; return b }

// Thread marks the current position as the entry point of a new thread and
// returns its index.
func (b *Builder) Thread() int {
	b.entries = append(b.entries, len(b.code))
	return len(b.entries) - 1
}

// NewLabel allocates an unresolved label.
func (b *Builder) NewLabel() Label {
	b.labels = append(b.labels, -1)
	return Label(len(b.labels) - 1)
}

// Bind resolves the label to the current position.
func (b *Builder) Bind(l Label) *Builder {
	if b.labels[int(l)] != -1 {
		b.errs = append(b.errs, fmt.Errorf("label %d bound twice", l))
		return b
	}
	pc := len(b.code)
	b.labels[int(l)] = pc
	for _, patchPC := range b.pending[int(l)] {
		b.code[patchPC].Target = int32(pc)
	}
	delete(b.pending, int(l))
	return b
}

// Here returns a label bound to the current position.
func (b *Builder) Here() Label {
	l := b.NewLabel()
	b.Bind(l)
	return l
}

// Len returns the number of instructions emitted so far — the pc of the next
// instruction.
func (b *Builder) Len() int { return len(b.code) }

func (b *Builder) emit(in Instr) *Builder {
	b.code = append(b.code, in)
	return b
}

func (b *Builder) emitJump(in Instr, l Label) *Builder {
	if target := b.labels[int(l)]; target != -1 {
		in.Target = int32(target)
	} else {
		b.pending[int(l)] = append(b.pending[int(l)], len(b.code))
	}
	return b.emit(in)
}

func reg(r int) uint8 { return uint8(r) }

// Const emits regs[dst] = v.
func (b *Builder) Const(dst int, v int64) *Builder {
	return b.emit(Instr{Op: OpConst, A: reg(dst), Imm: v})
}

// Mov emits regs[dst] = regs[src].
func (b *Builder) Mov(dst, src int) *Builder {
	return b.emit(Instr{Op: OpMov, A: reg(dst), B: reg(src)})
}

// Add emits regs[dst] = regs[x] + regs[y].
func (b *Builder) Add(dst, x, y int) *Builder {
	return b.emit(Instr{Op: OpAdd, A: reg(dst), B: reg(x), C: reg(y)})
}

// Sub emits regs[dst] = regs[x] - regs[y].
func (b *Builder) Sub(dst, x, y int) *Builder {
	return b.emit(Instr{Op: OpSub, A: reg(dst), B: reg(x), C: reg(y)})
}

// Mul emits regs[dst] = regs[x] * regs[y].
func (b *Builder) Mul(dst, x, y int) *Builder {
	return b.emit(Instr{Op: OpMul, A: reg(dst), B: reg(x), C: reg(y)})
}

// Div emits regs[dst] = regs[x] / regs[y] (crashes when regs[y] == 0).
func (b *Builder) Div(dst, x, y int) *Builder {
	return b.emit(Instr{Op: OpDiv, A: reg(dst), B: reg(x), C: reg(y)})
}

// Mod emits regs[dst] = regs[x] % regs[y] (crashes when regs[y] == 0).
func (b *Builder) Mod(dst, x, y int) *Builder {
	return b.emit(Instr{Op: OpMod, A: reg(dst), B: reg(x), C: reg(y)})
}

// Xor emits regs[dst] = regs[x] ^ regs[y].
func (b *Builder) Xor(dst, x, y int) *Builder {
	return b.emit(Instr{Op: OpXor, A: reg(dst), B: reg(x), C: reg(y)})
}

// AddImm emits regs[dst] = regs[src] + v.
func (b *Builder) AddImm(dst, src int, v int64) *Builder {
	return b.emit(Instr{Op: OpAddImm, A: reg(dst), B: reg(src), Imm: v})
}

// Input emits regs[dst] = input[idx].
func (b *Builder) Input(dst, idx int) *Builder {
	return b.emit(Instr{Op: OpInput, A: reg(dst), Imm: int64(idx)})
}

// Load emits regs[dst] = mem[addr].
func (b *Builder) Load(dst, addr int) *Builder {
	return b.emit(Instr{Op: OpLoad, A: reg(dst), Imm: int64(addr)})
}

// Store emits mem[addr] = regs[src].
func (b *Builder) Store(addr, src int) *Builder {
	return b.emit(Instr{Op: OpStore, A: reg(src), Imm: int64(addr)})
}

// LoadR emits regs[dst] = mem[regs[addrReg]].
func (b *Builder) LoadR(dst, addrReg int) *Builder {
	return b.emit(Instr{Op: OpLoadR, A: reg(dst), B: reg(addrReg)})
}

// StoreR emits mem[regs[addrReg]] = regs[src].
func (b *Builder) StoreR(addrReg, src int) *Builder {
	return b.emit(Instr{Op: OpStoreR, A: reg(src), B: reg(addrReg)})
}

// Jmp emits an unconditional jump to l.
func (b *Builder) Jmp(l Label) *Builder {
	return b.emitJump(Instr{Op: OpJmp}, l)
}

// Br emits: if regs[x] <cond> regs[y] jump to l.
func (b *Builder) Br(x int, cond Cmp, y int, l Label) *Builder {
	return b.emitJump(Instr{Op: OpBr, A: reg(x), B: reg(y), Cond: cond}, l)
}

// BrImm emits: if regs[x] <cond> v jump to l.
func (b *Builder) BrImm(x int, cond Cmp, v int64, l Label) *Builder {
	return b.emitJump(Instr{Op: OpBrImm, A: reg(x), Cond: cond, Imm: v}, l)
}

// Syscall emits regs[dst] = syscall(sysno, regs[arg]).
func (b *Builder) Syscall(dst int, sysno int64, arg int) *Builder {
	return b.emit(Instr{Op: OpSyscall, A: reg(dst), B: reg(arg), Imm: sysno})
}

// Lock emits an acquisition of lock id.
func (b *Builder) Lock(id int) *Builder {
	if id >= b.numLocks {
		b.numLocks = id + 1
	}
	return b.emit(Instr{Op: OpLock, Imm: int64(id)})
}

// Unlock emits a release of lock id.
func (b *Builder) Unlock(id int) *Builder {
	if id >= b.numLocks {
		b.numLocks = id + 1
	}
	return b.emit(Instr{Op: OpUnlock, Imm: int64(id)})
}

// Yield emits a scheduling hint.
func (b *Builder) Yield() *Builder { return b.emit(Instr{Op: OpYield}) }

// Assert emits: fail with assertion id when regs[x] == 0.
func (b *Builder) Assert(x int, id int64) *Builder {
	return b.emit(Instr{Op: OpAssert, A: reg(x), Imm: id})
}

// Halt terminates the current thread.
func (b *Builder) Halt() *Builder { return b.emit(Instr{Op: OpHalt}) }

// Build finalizes the program: resolves labels, assigns branch ids, runs the
// taint analysis, validates, and computes the content hash.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.pending) > 0 {
		for l := range b.pending {
			return nil, fmt.Errorf("program %q: label %d never bound", b.name, l)
		}
	}
	if len(b.entries) == 0 {
		// Single implicit thread starting at pc 0.
		b.entries = []int{0}
	}
	p := &Program{
		Name:      b.name,
		Code:      append([]Instr(nil), b.code...),
		Entries:   append([]int(nil), b.entries...),
		NumInputs: b.numInputs,
		NumLocks:  b.numLocks,
		MemSize:   b.memSize,
	}
	if err := p.finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build for tests and examples where failure is programmer
// error.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
