package prog

// analyzeInputDependence marks branches whose condition transitively depends
// on program-external data: inputs, syscall return values, or shared memory
// (which other threads may write, making it schedule-dependent).
//
// The paper (§3.1) observes that recording cost can be cut by capturing only
// branches that depend on program-external events — once those are fixed,
// the rest of the execution is deterministic and the hive can reconstruct
// it. This analysis decides which branches fall in the "must record" set.
//
// The analysis is a conservative flow-insensitive taint fixpoint over
// registers: a register is tainted if any instruction anywhere in the
// program can write external data (or data derived from it) into that
// register. Flow-insensitivity over-approximates, which is safe: we may
// record a branch that was actually deterministic, never the reverse.
func analyzeInputDependence(p *Program) []bool {
	tainted := make([]bool, NumRegs)
	changed := true
	for changed {
		changed = false
		for _, in := range p.Code {
			var newTaint bool
			switch in.Op {
			case OpInput, OpSyscall, OpLoad, OpLoadR:
				// External data sources. Shared memory loads are tainted
				// because another thread may have stored there.
				newTaint = true
			case OpMov:
				newTaint = tainted[in.B]
			case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor:
				newTaint = tainted[in.B] || tainted[in.C]
			case OpAddImm:
				newTaint = tainted[in.B]
			case OpConst:
				// Constants never add taint, but flow-insensitivity means a
				// register once tainted stays tainted: some other write to A
				// may be the one that reaches the branch.
				continue
			default:
				continue
			}
			if newTaint && !tainted[in.A] {
				tainted[in.A] = true
				changed = true
			}
		}
	}

	dep := make([]bool, p.NumBranches())
	for id, pc := range p.branchPCs {
		in := p.Code[pc]
		switch in.Op {
		case OpBr:
			dep[id] = tainted[in.A] || tainted[in.B]
		case OpBrImm:
			dep[id] = tainted[in.A]
		}
	}
	return dep
}
