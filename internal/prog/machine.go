package prog

import (
	"fmt"
	"sort"
)

// Outcome classifies how an execution ended. The pod labels each recorded
// trace with one of these (paper §3.1: the outcome is either determined
// explicitly — crash, deadlock — or inferred from user feedback — a
// force-killed program was likely hung, which the fuel limit models).
type Outcome uint8

// Execution outcomes.
const (
	OutcomeOK Outcome = iota + 1
	OutcomeCrash
	OutcomeAssertFail
	OutcomeDeadlock
	OutcomeHang
)

var outcomeNames = map[Outcome]string{
	OutcomeOK:         "ok",
	OutcomeCrash:      "crash",
	OutcomeAssertFail: "assert-fail",
	OutcomeDeadlock:   "deadlock",
	OutcomeHang:       "hang",
}

// String returns the outcome label.
func (o Outcome) String() string {
	if s, ok := outcomeNames[o]; ok {
		return s
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// IsFailure reports whether the outcome is a misbehaviour.
func (o Outcome) IsFailure() bool { return o != OutcomeOK }

// ThreadStatus tracks a thread's scheduling state.
type ThreadStatus uint8

// Thread statuses.
const (
	ThreadRunnable ThreadStatus = iota + 1
	ThreadBlocked               // waiting for a lock held by another thread
	ThreadDone
)

// Observer receives execution by-products as they are produced. This is the
// pod's instrumentation interface (paper §3.1); a nil observer disables
// capture entirely, which is the baseline for overhead measurements.
type Observer interface {
	// Branch reports a branch decision: the thread, the static branch id,
	// and whether the branch was taken.
	Branch(tid, branchID int, taken bool)
	// LockAcquire reports a successful lock acquisition at pc.
	LockAcquire(tid, lockID, pc int)
	// LockRelease reports a lock release.
	LockRelease(tid, lockID, pc int)
	// Syscall reports a system call and its return value.
	Syscall(tid int, sysno, arg, ret int64)
	// Schedule reports that the scheduler picked tid for the next step.
	Schedule(tid int)
}

// SyscallModel produces system-call return values: the program-external
// environment. A deterministic model plus the input vector fully determines
// a single-threaded execution.
type SyscallModel interface {
	// Call returns the result of system call sysno with argument arg, made
	// by thread tid as the n-th syscall of this execution.
	Call(tid int, n int, sysno, arg int64) int64
}

// LockGate can veto lock acquisitions. It is the mechanism through which
// deadlock-immunity fixes (paper §3.3, ref [16]) steer the program away from
// schedules that reproduce a known deadlock: a vetoed thread stays at the
// OpLock instruction and retries when next scheduled.
type LockGate interface {
	// Allow reports whether tid may attempt to acquire lockID at pc while
	// holding the locks in held (sorted ascending).
	Allow(tid, lockID, pc int, held []int) bool
}

// Scheduler picks which runnable thread executes the next instruction.
// Implementations live in internal/sched; the interface is defined here so
// the VM has no dependency on scheduling policy.
type Scheduler interface {
	// Pick selects one element of runnable (non-empty, sorted ascending).
	Pick(step int64, runnable []int) int
}

// LockWait describes one edge of a deadlock cycle: a thread blocked at pc
// wanting a lock while holding others.
type LockWait struct {
	TID     int
	PC      int
	Wants   int
	Holding []int
}

// Result describes a completed execution.
type Result struct {
	Outcome Outcome
	// Steps is the total number of instructions executed across threads.
	Steps int64
	// FaultTID and FaultPC locate the failure for Crash/AssertFail.
	FaultTID int
	FaultPC  int
	// FaultInfo is a short human-readable cause ("div by zero", "assert #3").
	FaultInfo string
	// AssertID is the failing assertion's id for AssertFail, else -1.
	AssertID int64
	// DeadlockCycle lists the waits forming the cycle for Deadlock outcomes.
	DeadlockCycle []LockWait
	// Halted counts threads that reached OpHalt.
	Halted int
}

// Config parameterizes one execution of a program.
type Config struct {
	// Input is the program's input vector; its length must equal
	// Program.NumInputs.
	Input []int64
	// Scheduler picks threads. Required for multi-threaded programs; a
	// single-threaded program may leave it nil.
	Scheduler Scheduler
	// Syscalls models the environment. Nil means a zero-returning model.
	Syscalls SyscallModel
	// Observer receives by-products. Nil disables capture.
	Observer Observer
	// Gate may veto lock acquisitions (deadlock immunity). Nil allows all.
	Gate LockGate
	// MaxSteps bounds execution; exceeding it yields OutcomeHang. Zero means
	// DefaultMaxSteps.
	MaxSteps int64
	// BranchOverride, when non-nil, may replace the natural direction of a
	// branch. The hive uses it to reconstruct full paths from external-only
	// traces (forcing recorded directions at input-dependent branches) and
	// the symbolic engine uses it for concolic replay. The observer sees the
	// final (possibly overridden) direction.
	BranchOverride func(tid, branchID int, natural bool) bool
}

// DefaultMaxSteps is the fuel limit used when Config.MaxSteps is zero.
const DefaultMaxSteps = 1 << 20

type thread struct {
	pc      int
	regs    [NumRegs]int64
	status  ThreadStatus
	held    []int // sorted lock ids currently held
	wants   int   // lock id when Blocked
	nsysc   int   // syscalls made so far (index for the model)
	deferCt int   // consecutive gate vetoes (diagnostics)
}

func (t *thread) holdsSorted() []int {
	out := make([]int, len(t.held))
	copy(out, t.held)
	return out
}

// Machine executes one program instance. It is not safe for concurrent use;
// each pod goroutine owns its machine.
type Machine struct {
	prog    *Program
	cfg     Config
	threads []thread
	mem     []int64
	lockOwn []int // lock -> owning tid, or -1
	steps   int64
}

// zeroSyscalls is the default environment model: every call returns 0.
type zeroSyscalls struct{}

func (zeroSyscalls) Call(int, int, int64, int64) int64 { return 0 }

// NewMachine prepares an execution of p under cfg. It returns an error when
// the configuration is structurally invalid (wrong input arity, missing
// scheduler for a multi-threaded program).
func NewMachine(p *Program, cfg Config) (*Machine, error) {
	if len(cfg.Input) != p.NumInputs {
		return nil, fmt.Errorf("prog: input arity %d, program %q wants %d",
			len(cfg.Input), p.Name, p.NumInputs)
	}
	if p.NumThreads() > 1 && cfg.Scheduler == nil {
		return nil, fmt.Errorf("prog: program %q has %d threads but no scheduler",
			p.Name, p.NumThreads())
	}
	if cfg.Syscalls == nil {
		cfg.Syscalls = zeroSyscalls{}
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	m := &Machine{
		prog:    p,
		cfg:     cfg,
		threads: make([]thread, p.NumThreads()),
		mem:     make([]int64, p.MemSize),
		lockOwn: make([]int, p.NumLocks),
	}
	for i := range m.lockOwn {
		m.lockOwn[i] = -1
	}
	for i, entry := range p.Entries {
		m.threads[i] = thread{pc: entry, status: ThreadRunnable, wants: -1}
	}
	return m, nil
}

// Run executes the program to completion and returns the result.
func (m *Machine) Run() Result {
	runnable := make([]int, 0, len(m.threads))
	for {
		if m.steps >= m.cfg.MaxSteps {
			return Result{Outcome: OutcomeHang, Steps: m.steps, FaultTID: -1, FaultPC: -1, AssertID: -1,
				FaultInfo: "fuel exhausted (user force-kill inferred)"}
		}
		runnable = runnable[:0]
		anyBlocked := false
		done := 0
		for tid := range m.threads {
			switch m.threads[tid].status {
			case ThreadRunnable:
				runnable = append(runnable, tid)
			case ThreadBlocked:
				anyBlocked = true
			case ThreadDone:
				done++
			}
		}
		if len(runnable) == 0 {
			if anyBlocked {
				return Result{
					Outcome:       OutcomeDeadlock,
					Steps:         m.steps,
					FaultTID:      -1,
					FaultPC:       -1,
					AssertID:      -1,
					FaultInfo:     "all live threads blocked on locks",
					DeadlockCycle: m.deadlockCycle(),
					Halted:        done,
				}
			}
			return Result{Outcome: OutcomeOK, Steps: m.steps, FaultTID: -1, FaultPC: -1, AssertID: -1, Halted: done}
		}

		var tid int
		if len(runnable) == 1 {
			tid = runnable[0]
		} else {
			tid = m.cfg.Scheduler.Pick(m.steps, runnable)
		}
		if m.cfg.Observer != nil {
			m.cfg.Observer.Schedule(tid)
		}
		if res, stop := m.step(tid); stop {
			res.Steps = m.steps
			return res
		}
	}
}

// step executes one instruction on thread tid. It returns (result, true)
// when the whole execution must stop.
func (m *Machine) step(tid int) (Result, bool) {
	t := &m.threads[tid]
	in := m.prog.Code[t.pc]
	m.steps++

	fault := func(info string) (Result, bool) {
		return Result{Outcome: OutcomeCrash, FaultTID: tid, FaultPC: t.pc, FaultInfo: info, AssertID: -1}, true
	}

	next := t.pc + 1
	switch in.Op {
	case OpNop, OpYield:
		// Yield is purely a scheduling hint.
	case OpConst:
		t.regs[in.A] = in.Imm
	case OpMov:
		t.regs[in.A] = t.regs[in.B]
	case OpAdd:
		t.regs[in.A] = t.regs[in.B] + t.regs[in.C]
	case OpSub:
		t.regs[in.A] = t.regs[in.B] - t.regs[in.C]
	case OpMul:
		t.regs[in.A] = t.regs[in.B] * t.regs[in.C]
	case OpDiv:
		if t.regs[in.C] == 0 {
			return fault("integer divide by zero")
		}
		t.regs[in.A] = t.regs[in.B] / t.regs[in.C]
	case OpMod:
		if t.regs[in.C] == 0 {
			return fault("integer modulo by zero")
		}
		t.regs[in.A] = t.regs[in.B] % t.regs[in.C]
	case OpAnd:
		t.regs[in.A] = t.regs[in.B] & t.regs[in.C]
	case OpOr:
		t.regs[in.A] = t.regs[in.B] | t.regs[in.C]
	case OpXor:
		t.regs[in.A] = t.regs[in.B] ^ t.regs[in.C]
	case OpAddImm:
		t.regs[in.A] = t.regs[in.B] + in.Imm
	case OpInput:
		t.regs[in.A] = m.cfg.Input[in.Imm]
	case OpLoad:
		t.regs[in.A] = m.mem[in.Imm]
	case OpStore:
		m.mem[in.Imm] = t.regs[in.A]
	case OpLoadR:
		addr := t.regs[in.B]
		if addr < 0 || addr >= int64(len(m.mem)) {
			return fault(fmt.Sprintf("memory load out of bounds: %d", addr))
		}
		t.regs[in.A] = m.mem[addr]
	case OpStoreR:
		addr := t.regs[in.B]
		if addr < 0 || addr >= int64(len(m.mem)) {
			return fault(fmt.Sprintf("memory store out of bounds: %d", addr))
		}
		m.mem[addr] = t.regs[in.A]
	case OpJmp:
		next = int(in.Target)
	case OpBr:
		taken := in.Cond.Eval(t.regs[in.A], t.regs[in.B])
		if m.cfg.BranchOverride != nil {
			taken = m.cfg.BranchOverride(tid, int(in.BranchID), taken)
		}
		if m.cfg.Observer != nil {
			m.cfg.Observer.Branch(tid, int(in.BranchID), taken)
		}
		if taken {
			next = int(in.Target)
		}
	case OpBrImm:
		taken := in.Cond.Eval(t.regs[in.A], in.Imm)
		if m.cfg.BranchOverride != nil {
			taken = m.cfg.BranchOverride(tid, int(in.BranchID), taken)
		}
		if m.cfg.Observer != nil {
			m.cfg.Observer.Branch(tid, int(in.BranchID), taken)
		}
		if taken {
			next = int(in.Target)
		}
	case OpSyscall:
		ret := m.cfg.Syscalls.Call(tid, t.nsysc, in.Imm, t.regs[in.B])
		t.nsysc++
		t.regs[in.A] = ret
		if m.cfg.Observer != nil {
			m.cfg.Observer.Syscall(tid, in.Imm, t.regs[in.B], ret)
		}
	case OpLock:
		lockID := int(in.Imm)
		if m.lockOwn[lockID] == tid {
			return fault(fmt.Sprintf("recursive acquisition of L%d", lockID))
		}
		if m.cfg.Gate != nil && !m.cfg.Gate.Allow(tid, lockID, t.pc, t.held) {
			// Vetoed: stay at this pc, remain runnable, retry later. The
			// step still consumed fuel, so a wrong gate cannot livelock
			// forever — it degrades to a Hang, which the hive observes.
			t.deferCt++
			return Result{}, false
		}
		t.deferCt = 0
		if owner := m.lockOwn[lockID]; owner >= 0 {
			t.status = ThreadBlocked
			t.wants = lockID
			return Result{}, false
		}
		m.lockOwn[lockID] = tid
		t.held = insertSorted(t.held, lockID)
		if m.cfg.Observer != nil {
			m.cfg.Observer.LockAcquire(tid, lockID, t.pc)
		}
	case OpUnlock:
		lockID := int(in.Imm)
		if m.lockOwn[lockID] != tid {
			return fault(fmt.Sprintf("unlock of L%d not held by thread %d", lockID, tid))
		}
		m.lockOwn[lockID] = -1
		t.held = removeSorted(t.held, lockID)
		if m.cfg.Observer != nil {
			m.cfg.Observer.LockRelease(tid, lockID, t.pc)
		}
		m.wakeWaiters(lockID)
	case OpAssert:
		if t.regs[in.A] == 0 {
			return Result{
				Outcome:   OutcomeAssertFail,
				FaultTID:  tid,
				FaultPC:   t.pc,
				FaultInfo: fmt.Sprintf("assertion #%d failed", in.Imm),
				AssertID:  in.Imm,
			}, true
		}
	case OpHalt:
		t.status = ThreadDone
		return Result{}, false
	default:
		return fault("illegal instruction")
	}

	t.pc = next
	return Result{}, false
}

// wakeWaiters makes every thread blocked on lockID runnable again; they will
// re-attempt acquisition (and re-consult the gate) when next scheduled.
func (m *Machine) wakeWaiters(lockID int) {
	for tid := range m.threads {
		t := &m.threads[tid]
		if t.status == ThreadBlocked && t.wants == lockID {
			t.status = ThreadRunnable
			t.wants = -1
		}
	}
}

// deadlockCycle extracts the wait-for cycle from the blocked threads. With
// every live thread blocked, following wants->owner edges from any blocked
// thread must eventually revisit a thread, yielding the cycle.
func (m *Machine) deadlockCycle() []LockWait {
	visited := make(map[int]int) // tid -> order visited
	var chain []LockWait
	// Start from the lowest blocked tid for determinism.
	start := -1
	for tid := range m.threads {
		if m.threads[tid].status == ThreadBlocked {
			start = tid
			break
		}
	}
	if start < 0 {
		return nil
	}
	tid := start
	for {
		if at, seen := visited[tid]; seen {
			return chain[at:]
		}
		visited[tid] = len(chain)
		t := &m.threads[tid]
		// Reconstruct the pc of the blocking OpLock: the thread's pc still
		// points at it because blocking does not advance pc.
		chain = append(chain, LockWait{TID: tid, PC: t.pc, Wants: t.wants, Holding: t.holdsSorted()})
		owner := m.lockOwn[t.wants]
		if owner < 0 || m.threads[owner].status != ThreadBlocked {
			// Not a pure cycle (e.g., gate-deferred thread holds the lock);
			// return the chain gathered so far.
			return chain
		}
		tid = owner
	}
}

// Steps returns the instructions executed so far.
func (m *Machine) Steps() int64 { return m.steps }

// Mem returns a copy of shared memory (for tests and diagnostics).
func (m *Machine) Mem() []int64 {
	out := make([]int64, len(m.mem))
	copy(out, m.mem)
	return out
}

// Reg returns register r of thread tid (for tests and diagnostics).
func (m *Machine) Reg(tid int, r int) int64 { return m.threads[tid].regs[r] }

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return append(s[:i], s[i+1:]...)
	}
	return s
}
