package prog

// MultiObserver fans execution by-products out to several observers, e.g. a
// trace collector plus a deadlock-immunity gate.
type MultiObserver []Observer

var _ Observer = (MultiObserver)(nil)

// Branch implements Observer.
func (m MultiObserver) Branch(tid, branchID int, taken bool) {
	for _, o := range m {
		o.Branch(tid, branchID, taken)
	}
}

// LockAcquire implements Observer.
func (m MultiObserver) LockAcquire(tid, lockID, pc int) {
	for _, o := range m {
		o.LockAcquire(tid, lockID, pc)
	}
}

// LockRelease implements Observer.
func (m MultiObserver) LockRelease(tid, lockID, pc int) {
	for _, o := range m {
		o.LockRelease(tid, lockID, pc)
	}
}

// Syscall implements Observer.
func (m MultiObserver) Syscall(tid int, sysno, arg, ret int64) {
	for _, o := range m {
		o.Syscall(tid, sysno, arg, ret)
	}
}

// Schedule implements Observer.
func (m MultiObserver) Schedule(tid int) {
	for _, o := range m {
		o.Schedule(tid)
	}
}

// NopObserver ignores every event; useful as an explicit "capture disabled"
// marker in overhead experiments.
type NopObserver struct{}

var _ Observer = NopObserver{}

// Branch implements Observer.
func (NopObserver) Branch(tid, branchID int, taken bool) {}

// LockAcquire implements Observer.
func (NopObserver) LockAcquire(tid, lockID, pc int) {}

// LockRelease implements Observer.
func (NopObserver) LockRelease(tid, lockID, pc int) {}

// Syscall implements Observer.
func (NopObserver) Syscall(tid int, sysno, arg, ret int64) {}

// Schedule implements Observer.
func (NopObserver) Schedule(tid int) {}
