package prog

// DeterministicSyscalls is the default environment model: return values are
// a pure function of (seed, tid, call index, sysno, arg), bounded to
// [0, Range). Different seeds simulate different end-user environments, so a
// population of pods running the same program with the same inputs can still
// diverge at syscall-dependent branches — exactly the diversity the hive
// aggregates.
type DeterministicSyscalls struct {
	// Seed selects the environment.
	Seed uint64
	// Range bounds return values to [0, Range); zero means 256.
	Range int64
}

var _ SyscallModel = (*DeterministicSyscalls)(nil)

// Call implements SyscallModel.
func (d *DeterministicSyscalls) Call(tid, n int, sysno, arg int64) int64 {
	r := d.Range
	if r <= 0 {
		r = 256
	}
	x := d.Seed ^ 0x9e3779b97f4a7c15
	for _, v := range [...]uint64{uint64(tid) + 1, uint64(n) + 1, uint64(sysno), uint64(arg)} {
		x ^= v
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
	}
	return int64(x % uint64(r))
}

// FaultSpec identifies one syscall invocation to hijack and the value to
// return. This is the paper's "test cases ... stated in terms of system call
// faults to be injected (e.g., a short socket read())" (§3.3).
type FaultSpec struct {
	// Sysno is the system call number to target.
	Sysno int64
	// CallIndex targets the n-th syscall made by a thread; -1 targets every
	// matching call.
	CallIndex int
	// Return is the injected return value (e.g., -1 for error, a small
	// positive value for a short read).
	Return int64
}

// FaultInjector wraps a SyscallModel and overrides designated calls.
type FaultInjector struct {
	// Base supplies return values for non-hijacked calls.
	Base SyscallModel
	// Faults are the injections to apply.
	Faults []FaultSpec
	// Injected counts how many injections fired.
	Injected int
}

var _ SyscallModel = (*FaultInjector)(nil)

// Call implements SyscallModel.
func (f *FaultInjector) Call(tid, n int, sysno, arg int64) int64 {
	for _, spec := range f.Faults {
		if spec.Sysno == sysno && (spec.CallIndex == -1 || spec.CallIndex == n) {
			f.Injected++
			return spec.Return
		}
	}
	return f.Base.Call(tid, n, sysno, arg)
}

// ScriptedSyscalls replays a fixed list of return values (per machine, in
// call order across threads is not deterministic; this model is intended for
// single-threaded replay where the order is the recorded order). When the
// script runs out it falls back to zero.
type ScriptedSyscalls struct {
	// Returns are consumed in call order.
	Returns []int64
	next    int
}

var _ SyscallModel = (*ScriptedSyscalls)(nil)

// Call implements SyscallModel.
func (s *ScriptedSyscalls) Call(int, int, int64, int64) int64 {
	if s.next < len(s.Returns) {
		v := s.Returns[s.next]
		s.next++
		return v
	}
	return 0
}
