// Package prog implements the target-program substrate for SoftBorg: a
// deterministic, multi-threaded register virtual machine.
//
// The paper instruments real binaries (Pin / AspectJ / S2E). Offline and in
// pure Go we instead make the "programs" SoftBorg observes be programs for
// this VM. The substitution preserves the behaviour SoftBorg consumes: the
// VM emits exactly the execution by-products §3.1 of the paper enumerates —
// branch directions, lock acquire/release events, system-call return values,
// thread scheduling decisions, and an outcome label — through an observer
// interface, and execution is fully deterministic given (input, schedule,
// syscall model), which is the property the paper's trace-reconstruction
// argument relies on.
package prog

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// NumRegs is the number of general-purpose registers per thread.
const NumRegs = 16

// Op identifies a VM instruction opcode.
type Op uint8

// Instruction opcodes. Arithmetic ops compute A = B op C. Control flow uses
// Target; OpBr/OpBrImm are the only branch instructions and each static
// branch carries a unique BranchID assigned by Finalize.
const (
	OpNop     Op = iota + 1
	OpConst      // regs[A] = Imm
	OpMov        // regs[A] = regs[B]
	OpAdd        // regs[A] = regs[B] + regs[C]
	OpSub        // regs[A] = regs[B] - regs[C]
	OpMul        // regs[A] = regs[B] * regs[C]
	OpDiv        // regs[A] = regs[B] / regs[C]; crash when regs[C] == 0
	OpMod        // regs[A] = regs[B] % regs[C]; crash when regs[C] == 0
	OpAnd        // regs[A] = regs[B] & regs[C]
	OpOr         // regs[A] = regs[B] | regs[C]
	OpXor        // regs[A] = regs[B] ^ regs[C]
	OpAddImm     // regs[A] = regs[B] + Imm
	OpInput      // regs[A] = input[Imm]
	OpLoad       // regs[A] = mem[Imm] (shared memory)
	OpStore      // mem[Imm] = regs[A]
	OpLoadR      // regs[A] = mem[regs[B]]; crash when out of bounds
	OpStoreR     // mem[regs[B]] = regs[A]; crash when out of bounds
	OpJmp        // pc = Target
	OpBr         // if regs[A] <Cond> regs[B] then pc = Target (taken) else fall through
	OpBrImm      // if regs[A] <Cond> Imm then pc = Target (taken) else fall through
	OpSyscall    // regs[A] = syscall(Imm /*sysno*/, regs[B] /*arg*/)
	OpLock       // acquire lock Imm; blocks while held by another thread
	OpUnlock     // release lock Imm; crash when not held by this thread
	OpYield      // scheduling hint; no semantic effect
	OpAssert     // if regs[A] == 0 then assertion failure (Imm = assert id)
	OpHalt       // thread terminates
)

var opNames = map[Op]string{
	OpNop: "nop", OpConst: "const", OpMov: "mov", OpAdd: "add", OpSub: "sub",
	OpMul: "mul", OpDiv: "div", OpMod: "mod", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpAddImm: "addi", OpInput: "input", OpLoad: "load",
	OpStore: "store", OpLoadR: "loadr", OpStoreR: "storer", OpJmp: "jmp",
	OpBr: "br", OpBrImm: "bri", OpSyscall: "syscall", OpLock: "lock",
	OpUnlock: "unlock", OpYield: "yield", OpAssert: "assert", OpHalt: "halt",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Cmp is a comparison condition used by branch instructions.
type Cmp uint8

// Comparison conditions.
const (
	CmpEQ Cmp = iota + 1
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

var cmpNames = map[Cmp]string{
	CmpEQ: "==", CmpNE: "!=", CmpLT: "<", CmpLE: "<=", CmpGT: ">", CmpGE: ">=",
}

// String returns the comparison operator spelling.
func (c Cmp) String() string {
	if s, ok := cmpNames[c]; ok {
		return s
	}
	return fmt.Sprintf("cmp(%d)", uint8(c))
}

// Eval applies the comparison to two values.
func (c Cmp) Eval(a, b int64) bool {
	switch c {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	default:
		return false
	}
}

// Negate returns the complementary condition.
func (c Cmp) Negate() Cmp {
	switch c {
	case CmpEQ:
		return CmpNE
	case CmpNE:
		return CmpEQ
	case CmpLT:
		return CmpGE
	case CmpLE:
		return CmpGT
	case CmpGT:
		return CmpLE
	case CmpGE:
		return CmpLT
	default:
		return c
	}
}

// Instr is one VM instruction. Field use depends on Op; unused fields are
// zero. BranchID is -1 for non-branch instructions and a dense index
// (assigned by Finalize) for OpBr/OpBrImm.
type Instr struct {
	Op       Op
	A, B, C  uint8
	Cond     Cmp
	Imm      int64
	Target   int32
	BranchID int32
}

// String renders the instruction in a compact assembly-like syntax.
func (in Instr) String() string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("const r%d, %d", in.A, in.Imm)
	case OpMov:
		return fmt.Sprintf("mov r%d, r%d", in.A, in.B)
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.A, in.B, in.C)
	case OpAddImm:
		return fmt.Sprintf("addi r%d, r%d, %d", in.A, in.B, in.Imm)
	case OpInput:
		return fmt.Sprintf("input r%d, in[%d]", in.A, in.Imm)
	case OpLoad:
		return fmt.Sprintf("load r%d, mem[%d]", in.A, in.Imm)
	case OpStore:
		return fmt.Sprintf("store mem[%d], r%d", in.Imm, in.A)
	case OpLoadR:
		return fmt.Sprintf("loadr r%d, mem[r%d]", in.A, in.B)
	case OpStoreR:
		return fmt.Sprintf("storer mem[r%d], r%d", in.B, in.A)
	case OpJmp:
		return fmt.Sprintf("jmp %d", in.Target)
	case OpBr:
		return fmt.Sprintf("br#%d r%d %s r%d -> %d", in.BranchID, in.A, in.Cond, in.B, in.Target)
	case OpBrImm:
		return fmt.Sprintf("bri#%d r%d %s %d -> %d", in.BranchID, in.A, in.Cond, in.Imm, in.Target)
	case OpSyscall:
		return fmt.Sprintf("syscall r%d, sys%d(r%d)", in.A, in.Imm, in.B)
	case OpLock:
		return fmt.Sprintf("lock L%d", in.Imm)
	case OpUnlock:
		return fmt.Sprintf("unlock L%d", in.Imm)
	case OpAssert:
		return fmt.Sprintf("assert r%d (#%d)", in.A, in.Imm)
	case OpYield, OpHalt, OpNop:
		return in.Op.String()
	default:
		return fmt.Sprintf("%s A=%d B=%d C=%d Imm=%d", in.Op, in.A, in.B, in.C, in.Imm)
	}
}

// Program is an immutable, finalized VM program: code shared by one or more
// threads, each starting at its own entry point.
type Program struct {
	// Name is a human-readable label.
	Name string
	// ID is a stable content hash used as the program identity on the wire
	// and in the hive's per-program state.
	ID string
	// Code is the instruction sequence.
	Code []Instr
	// Entries holds one entry pc per thread.
	Entries []int
	// NumInputs is the size of the input vector the program reads.
	NumInputs int
	// NumLocks is the number of lock slots.
	NumLocks int
	// MemSize is the size of the shared memory array.
	MemSize int

	// branchPCs maps BranchID -> pc of the branch instruction.
	branchPCs []int
	// inputDep marks BranchIDs whose condition (transitively) depends on
	// program-external data: inputs, syscall returns, or shared memory.
	inputDep []bool
}

// NumBranches returns the number of static branch instructions.
func (p *Program) NumBranches() int { return len(p.branchPCs) }

// BranchPC returns the pc of the branch with the given id.
func (p *Program) BranchPC(id int) int { return p.branchPCs[id] }

// InputDependent reports whether the branch's condition depends on
// program-external data (inputs, syscall returns, shared memory). Branches
// that do not are deterministic once external events are fixed and can be
// reconstructed by the hive instead of being recorded (paper §3.1).
func (p *Program) InputDependent(id int) bool { return p.inputDep[id] }

// NumInputDependentBranches returns how many branches are input-dependent.
func (p *Program) NumInputDependentBranches() int {
	n := 0
	for _, d := range p.inputDep {
		if d {
			n++
		}
	}
	return n
}

// NumThreads returns the number of threads the program starts with.
func (p *Program) NumThreads() int { return len(p.Entries) }

// Instruction returns the instruction at pc.
func (p *Program) Instruction(pc int) Instr { return p.Code[pc] }

// Validate checks structural well-formedness: jump targets and register,
// input, lock, and memory indices in range. Finalize calls it; it is
// exported so loaded/deserialized programs can be re-checked.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("program %q: empty code", p.Name)
	}
	if len(p.Entries) == 0 {
		return fmt.Errorf("program %q: no threads", p.Name)
	}
	for i, e := range p.Entries {
		if e < 0 || e >= len(p.Code) {
			return fmt.Errorf("program %q: thread %d entry %d out of range", p.Name, i, e)
		}
	}
	for pc, in := range p.Code {
		if err := p.validateInstr(pc, in); err != nil {
			return err
		}
	}
	return nil
}

func (p *Program) validateInstr(pc int, in Instr) error {
	bad := func(format string, args ...any) error {
		prefix := fmt.Sprintf("program %q: pc %d (%s): ", p.Name, pc, in)
		return fmt.Errorf(prefix+format, args...)
	}
	if int(in.A) >= NumRegs || int(in.B) >= NumRegs || int(in.C) >= NumRegs {
		return bad("register out of range")
	}
	switch in.Op {
	case OpJmp, OpBr, OpBrImm:
		if in.Target < 0 || int(in.Target) >= len(p.Code) {
			return bad("target %d out of range", in.Target)
		}
	}
	switch in.Op {
	case OpBr, OpBrImm:
		if in.Cond < CmpEQ || in.Cond > CmpGE {
			return bad("invalid condition")
		}
	case OpInput:
		if in.Imm < 0 || int(in.Imm) >= p.NumInputs {
			return bad("input index %d out of range [0,%d)", in.Imm, p.NumInputs)
		}
	case OpLoad, OpStore:
		if in.Imm < 0 || int(in.Imm) >= p.MemSize {
			return bad("memory address %d out of range [0,%d)", in.Imm, p.MemSize)
		}
	case OpLock, OpUnlock:
		if in.Imm < 0 || int(in.Imm) >= p.NumLocks {
			return bad("lock %d out of range [0,%d)", in.Imm, p.NumLocks)
		}
	case OpNop, OpConst, OpMov, OpAdd, OpSub, OpMul, OpDiv, OpMod,
		OpAnd, OpOr, OpXor, OpAddImm, OpLoadR, OpStoreR, OpSyscall,
		OpYield, OpAssert, OpHalt, OpJmp:
		// No further static constraints.
	default:
		return bad("unknown opcode")
	}
	return nil
}

// finalize assigns branch IDs, runs taint analysis, computes the content
// hash, and validates the program. Builders call it; it is idempotent only
// on a fresh program.
func (p *Program) finalize() error {
	p.branchPCs = p.branchPCs[:0]
	for pc := range p.Code {
		switch p.Code[pc].Op {
		case OpBr, OpBrImm:
			p.Code[pc].BranchID = int32(len(p.branchPCs))
			p.branchPCs = append(p.branchPCs, pc)
		default:
			p.Code[pc].BranchID = -1
		}
	}
	if err := p.Validate(); err != nil {
		return err
	}
	p.inputDep = analyzeInputDependence(p)
	p.ID = p.contentHash()
	return nil
}

// contentHash computes a stable hex digest of the program's code and shape.
func (p *Program) contentHash() string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	h.Write([]byte(p.Name))
	writeInt(int64(p.NumInputs))
	writeInt(int64(p.NumLocks))
	writeInt(int64(p.MemSize))
	for _, e := range p.Entries {
		writeInt(int64(e))
	}
	for _, in := range p.Code {
		h.Write([]byte{byte(in.Op), in.A, in.B, in.C, byte(in.Cond)})
		writeInt(in.Imm)
		writeInt(int64(in.Target))
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Disassemble renders the whole program for debugging.
func (p *Program) Disassemble() string {
	out := fmt.Sprintf("; program %q id=%s threads=%d inputs=%d locks=%d mem=%d branches=%d (%d input-dep)\n",
		p.Name, p.ID, len(p.Entries), p.NumInputs, p.NumLocks, p.MemSize,
		p.NumBranches(), p.NumInputDependentBranches())
	for pc, in := range p.Code {
		out += fmt.Sprintf("%4d: %s\n", pc, in)
	}
	return out
}
