package prog

import (
	"strings"
	"testing"
)

// run executes a single-threaded program with the given input.
func run(t *testing.T, p *Program, input ...int64) Result {
	t.Helper()
	m, err := NewMachine(p, Config{Input: input})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m.Run()
}

func TestArithmetic(t *testing.T) {
	p := NewBuilder("arith", 2).
		Input(0, 0).
		Input(1, 1).
		Add(2, 0, 1).
		Sub(3, 0, 1).
		Mul(4, 0, 1).
		Div(5, 0, 1).
		Mod(6, 0, 1).
		Halt().
		MustBuild()
	m, err := NewMachine(p, Config{Input: []int64{17, 5}})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v, want ok", res.Outcome)
	}
	want := []int64{17, 5, 22, 12, 85, 3, 2}
	for r, w := range want {
		if got := m.Reg(0, r); got != w {
			t.Errorf("r%d = %d, want %d", r, got, w)
		}
	}
}

func TestDivByZeroCrashes(t *testing.T) {
	p := NewBuilder("divzero", 1).
		Input(0, 0).
		Const(1, 100).
		Div(2, 1, 0).
		Halt().
		MustBuild()
	if res := run(t, p, 5); res.Outcome != OutcomeOK {
		t.Fatalf("nonzero divisor: outcome = %v, want ok", res.Outcome)
	}
	res := run(t, p, 0)
	if res.Outcome != OutcomeCrash {
		t.Fatalf("zero divisor: outcome = %v, want crash", res.Outcome)
	}
	if res.FaultPC != 2 {
		t.Errorf("FaultPC = %d, want 2", res.FaultPC)
	}
	if !strings.Contains(res.FaultInfo, "divide by zero") {
		t.Errorf("FaultInfo = %q", res.FaultInfo)
	}
}

func TestBranchesAndLoop(t *testing.T) {
	// Sum 1..n with a loop; n = input[0].
	b := NewBuilder("sumloop", 1)
	b.Input(0, 0) // r0 = n
	b.Const(1, 0) // r1 = sum
	b.Const(2, 1) // r2 = i
	loop := b.Here()
	exit := b.NewLabel()
	b.Br(2, CmpGT, 0, exit) // if i > n goto exit
	b.Add(1, 1, 2)          // sum += i
	b.AddImm(2, 2, 1)       // i++
	b.Jmp(loop)
	b.Bind(exit)
	b.Halt()
	p := b.MustBuild()

	m, err := NewMachine(p, Config{Input: []int64{10}})
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if got := m.Reg(0, 1); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestAssertFailure(t *testing.T) {
	p := NewBuilder("assert", 1).
		Input(0, 0).
		Assert(0, 7).
		Halt().
		MustBuild()
	res := run(t, p, 0)
	if res.Outcome != OutcomeAssertFail {
		t.Fatalf("outcome = %v, want assert-fail", res.Outcome)
	}
	if res.AssertID != 7 {
		t.Errorf("AssertID = %d, want 7", res.AssertID)
	}
	if res := run(t, p, 1); res.Outcome != OutcomeOK {
		t.Errorf("nonzero input: outcome = %v, want ok", res.Outcome)
	}
}

func TestMemoryOutOfBoundsCrashes(t *testing.T) {
	p := NewBuilder("oob", 1).
		SetMem(4).
		Input(0, 0).
		LoadR(1, 0).
		Halt().
		MustBuild()
	if res := run(t, p, 3); res.Outcome != OutcomeOK {
		t.Fatalf("in-bounds: outcome = %v", res.Outcome)
	}
	if res := run(t, p, 4); res.Outcome != OutcomeCrash {
		t.Fatalf("out-of-bounds: outcome = %v, want crash", res.Outcome)
	}
	if res := run(t, p, -1); res.Outcome != OutcomeCrash {
		t.Fatalf("negative: outcome = %v, want crash", res.Outcome)
	}
}

func TestHangOnFuelExhaustion(t *testing.T) {
	b := NewBuilder("spin", 0)
	loop := b.Here()
	b.Jmp(loop)
	p := b.MustBuild()
	m, err := NewMachine(p, Config{Input: nil, MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Outcome != OutcomeHang {
		t.Fatalf("outcome = %v, want hang", res.Outcome)
	}
	if res.Steps != 1000 {
		t.Errorf("steps = %d, want 1000", res.Steps)
	}
}

func TestUnlockNotHeldCrashes(t *testing.T) {
	p := NewBuilder("badunlock", 0).
		Unlock(0).
		Halt().
		MustBuild()
	res := run(t, p)
	if res.Outcome != OutcomeCrash {
		t.Fatalf("outcome = %v, want crash", res.Outcome)
	}
}

func TestRecursiveLockCrashes(t *testing.T) {
	p := NewBuilder("recursive", 0).
		Lock(0).
		Lock(0).
		Halt().
		MustBuild()
	res := run(t, p)
	if res.Outcome != OutcomeCrash {
		t.Fatalf("outcome = %v, want crash", res.Outcome)
	}
}

// pickFirst is a trivial deterministic scheduler.
type pickFirst struct{}

func (pickFirst) Pick(step int64, runnable []int) int { return runnable[0] }

// pickScript follows a fixed tid preference order per call.
type pickLast struct{}

func (pickLast) Pick(step int64, runnable []int) int { return runnable[len(runnable)-1] }

// buildDiningPair builds the classic 2-lock deadlock: thread 0 takes L0,L1;
// thread 1 takes L1,L0, with a yield between acquisitions to expose the
// interleaving.
func buildDiningPair() *Program {
	b := NewBuilder("dining2", 0).SetLocks(2)
	b.Thread()
	b.Lock(0).Yield().Lock(1).Unlock(1).Unlock(0).Halt()
	b.Thread()
	b.Lock(1).Yield().Lock(0).Unlock(0).Unlock(1).Halt()
	return b.MustBuild()
}

// alternating schedules threads in strict rotation each step.
type alternating struct{ i int }

func (a *alternating) Pick(step int64, runnable []int) int {
	a.i++
	return runnable[a.i%len(runnable)]
}

func TestDeadlockDetection(t *testing.T) {
	p := buildDiningPair()
	// Alternating schedule forces T0:Lock(L0), T1:Lock(L1), then both block.
	m, err := NewMachine(p, Config{Scheduler: &alternating{}})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Outcome != OutcomeDeadlock {
		t.Fatalf("outcome = %v, want deadlock", res.Outcome)
	}
	if len(res.DeadlockCycle) != 2 {
		t.Fatalf("cycle length = %d, want 2", len(res.DeadlockCycle))
	}
	seen := map[int]bool{}
	for _, w := range res.DeadlockCycle {
		seen[w.Wants] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("cycle locks = %+v, want waits on L0 and L1", res.DeadlockCycle)
	}
}

func TestNoDeadlockUnderSerialSchedule(t *testing.T) {
	p := buildDiningPair()
	// pickFirst runs thread 0 to completion first: no deadlock.
	m, err := NewMachine(p, Config{Scheduler: pickFirst{}})
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v, want ok", res.Outcome)
	}
}

// denyGate vetoes every acquisition of a specific lock by a specific thread
// until the other thread halts — a hand-rolled immunity gate.
type observingGate struct {
	vetoes int
}

func (g *observingGate) Allow(tid, lockID, pc int, held []int) bool {
	// Break the symmetric acquisition: thread 1 may not take L1 while
	// holding nothing until it has been vetoed enough times for thread 0 to
	// finish.
	if tid == 1 && lockID == 1 && g.vetoes < 50 {
		g.vetoes++
		return false
	}
	return true
}

func TestLockGateAvertsDeadlock(t *testing.T) {
	p := buildDiningPair()
	m, err := NewMachine(p, Config{Scheduler: &alternating{}, Gate: &observingGate{}})
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v, want ok (gate should break the race)", res.Outcome)
	}
}

func TestSyscallModelAndFaultInjection(t *testing.T) {
	p := NewBuilder("sys", 0).
		Const(1, 42).
		Syscall(0, 3, 1).
		Halt().
		MustBuild()

	det := &DeterministicSyscalls{Seed: 7}
	m, err := NewMachine(p, Config{Input: nil, Syscalls: det})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	v1 := m.Reg(0, 0)

	// Same seed, same value.
	m2, _ := NewMachine(p, Config{Input: nil, Syscalls: &DeterministicSyscalls{Seed: 7}})
	m2.Run()
	if v2 := m2.Reg(0, 0); v2 != v1 {
		t.Errorf("deterministic syscalls diverged: %d vs %d", v1, v2)
	}

	// Fault injection overrides.
	inj := &FaultInjector{Base: det, Faults: []FaultSpec{{Sysno: 3, CallIndex: -1, Return: -1}}}
	m3, _ := NewMachine(p, Config{Input: nil, Syscalls: inj})
	m3.Run()
	if got := m3.Reg(0, 0); got != -1 {
		t.Errorf("injected return = %d, want -1", got)
	}
	if inj.Injected != 1 {
		t.Errorf("Injected = %d, want 1", inj.Injected)
	}
}

func TestBranchOverride(t *testing.T) {
	// if input > 10 then r1 = 1 else r1 = 2.
	b := NewBuilder("override", 1)
	thenL, end := b.NewLabel(), b.NewLabel()
	b.Input(0, 0)
	b.BrImm(0, CmpGT, 10, thenL)
	b.Const(1, 2)
	b.Jmp(end)
	b.Bind(thenL)
	b.Const(1, 1)
	b.Bind(end)
	b.Halt()
	p := b.MustBuild()

	// Natural: input 0 -> not taken -> r1 = 2.
	m, err := NewMachine(p, Config{Input: []int64{0}})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	if got := m.Reg(0, 1); got != 2 {
		t.Fatalf("natural r1 = %d, want 2", got)
	}

	// Override forces taken despite input 0.
	rec := &recordingObserver{}
	m2, err := NewMachine(p, Config{
		Input:          []int64{0},
		Observer:       rec,
		BranchOverride: func(tid, id int, natural bool) bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	m2.Run()
	if got := m2.Reg(0, 1); got != 1 {
		t.Fatalf("overridden r1 = %d, want 1", got)
	}
	if len(rec.branches) != 1 || !rec.branches[0] {
		t.Errorf("observer saw %v, want overridden direction [true]", rec.branches)
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	// Unbound label.
	b := NewBuilder("bad", 0)
	l := b.NewLabel()
	b.Jmp(l)
	if _, err := b.Build(); err == nil {
		t.Error("unbound label: want error")
	}

	// Input index out of range.
	p := &Program{Name: "badinput", Code: []Instr{{Op: OpInput, A: 0, Imm: 2}, {Op: OpHalt}}, Entries: []int{0}, NumInputs: 1}
	if err := p.Validate(); err == nil {
		t.Error("bad input index: want error")
	}

	// Empty code.
	p2 := &Program{Name: "empty", Entries: []int{0}}
	if err := p2.Validate(); err == nil {
		t.Error("empty code: want error")
	}
}

func TestInputArityChecked(t *testing.T) {
	p := NewBuilder("arity", 2).Input(0, 0).Input(1, 1).Halt().MustBuild()
	if _, err := NewMachine(p, Config{Input: []int64{1}}); err == nil {
		t.Error("want arity error")
	}
}

func TestMultiThreadNeedsScheduler(t *testing.T) {
	b := NewBuilder("mt", 0)
	b.Thread()
	b.Halt()
	b.Thread()
	b.Halt()
	p := b.MustBuild()
	if _, err := NewMachine(p, Config{}); err == nil {
		t.Error("want scheduler-required error")
	}
}

func TestTaintAnalysis(t *testing.T) {
	b := NewBuilder("taint", 1)
	end := b.NewLabel()
	b.Input(0, 0)             // r0 tainted
	b.Const(1, 5)             // r1 clean
	b.Add(2, 0, 1)            // r2 tainted
	b.BrImm(2, CmpGT, 3, end) // branch 0: input-dependent
	b.BrImm(1, CmpGT, 3, end) // branch 1: deterministic
	b.Bind(end)
	b.Halt()
	p := b.MustBuild()

	if p.NumBranches() != 2 {
		t.Fatalf("branches = %d, want 2", p.NumBranches())
	}
	if !p.InputDependent(0) {
		t.Error("branch 0 should be input-dependent")
	}
	if p.InputDependent(1) {
		t.Error("branch 1 should be deterministic")
	}
	if p.NumInputDependentBranches() != 1 {
		t.Errorf("input-dep count = %d, want 1", p.NumInputDependentBranches())
	}
}

func TestProgramIDStableAndDistinct(t *testing.T) {
	build := func(v int64) *Program {
		return NewBuilder("idtest", 0).Const(0, v).Halt().MustBuild()
	}
	a1, a2, b := build(1), build(1), build(2)
	if a1.ID != a2.ID {
		t.Error("identical programs should share ID")
	}
	if a1.ID == b.ID {
		t.Error("different programs should differ in ID")
	}
}

func TestObserverSeesEvents(t *testing.T) {
	b := NewBuilder("obs", 1).SetLocks(1)
	end := b.NewLabel()
	b.Input(0, 0)
	b.Lock(0)
	b.Syscall(1, 9, 0)
	b.Unlock(0)
	b.BrImm(0, CmpGT, 5, end)
	b.Bind(end)
	b.Halt()
	p := b.MustBuild()

	rec := &recordingObserver{}
	m, err := NewMachine(p, Config{Input: []int64{7}, Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if rec.acquires != 1 || rec.releases != 1 {
		t.Errorf("locks = %d/%d, want 1/1", rec.acquires, rec.releases)
	}
	if rec.syscalls != 1 {
		t.Errorf("syscalls = %d, want 1", rec.syscalls)
	}
	if len(rec.branches) != 1 || rec.branches[0] != true {
		t.Errorf("branches = %v, want [true] (7 > 5)", rec.branches)
	}
}

type recordingObserver struct {
	branches []bool
	acquires int
	releases int
	syscalls int
}

func (r *recordingObserver) Branch(tid, id int, taken bool)   { r.branches = append(r.branches, taken) }
func (r *recordingObserver) LockAcquire(tid, lockID, pc int)  { r.acquires++ }
func (r *recordingObserver) LockRelease(tid, lockID, pc int)  { r.releases++ }
func (r *recordingObserver) Syscall(tid int, s, a, ret int64) { r.syscalls++ }
func (r *recordingObserver) Schedule(tid int)                 {}

func TestDisassembleMentionsEveryOpcode(t *testing.T) {
	p := NewBuilder("disasm", 1).SetMem(2).SetLocks(1).
		Input(0, 0).
		Const(1, 3).
		Add(2, 0, 1).
		Store(0, 2).
		Load(3, 0).
		Lock(0).
		Unlock(0).
		Halt().
		MustBuild()
	d := p.Disassemble()
	for _, want := range []string{"input", "const", "add", "store", "load", "lock", "unlock", "halt"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}
