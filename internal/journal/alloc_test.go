package journal

import (
	"testing"

	"repro/internal/race"
)

// TestAllocsAppend guards the write-ahead append hot path: with the op
// encoded straight into the program's reused scratch and framed into the
// reused write buffer, a serial durable append allocates nothing — the
// budget a fleet-scale ingest path has to hold, since every acknowledged
// batch pays it.
func TestAllocsAppend(t *testing.T) {
	if race.Enabled {
		t.Skip("alloc counts are skewed under the race detector")
	}
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	payload := make([]byte, 200)
	op := &Op{Kind: OpBatchColumnar, Session: "alloc-session", Seq: 1, Raw: payload}
	// Warm: open the file, grow the scratch buffers.
	if err := s.Append("alloc-program", op); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		op.Seq++
		if err := s.Append("alloc-program", op); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.5 {
		t.Fatalf("serial journal append costs %.1f allocs; want 0", avg)
	}
}

// TestAllocsEncodeOpInto guards the op encoder both append paths share.
func TestAllocsEncodeOpInto(t *testing.T) {
	if race.Enabled {
		t.Skip("alloc counts are skewed under the race detector")
	}
	payload := make([]byte, 200)
	op := &Op{Kind: OpBatch, Session: "alloc-session", Seq: 9,
		Traces: [][]byte{payload, payload, payload, payload}}
	var scratch, frame []byte
	scratch = appendOp(scratch[:0], op)
	frame = appendRecord(frame[:0], scratch)
	avg := testing.AllocsPerRun(200, func() {
		scratch = appendOp(scratch[:0], op)
		frame = appendRecord(frame[:0], scratch)
	})
	if avg > 0 {
		t.Fatalf("op encode+frame costs %.1f allocs; want 0", avg)
	}
}
