package journal

import (
	"fmt"
	"testing"
)

// BenchmarkJournalAppend measures the write-ahead append hot path at a
// realistic op size: an 8-trace batch of ~200-byte encoded traces, the
// shape a pod drain produces.
func BenchmarkJournalAppend(b *testing.B) {
	for _, traces := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("traces=%d", traces), func(b *testing.B) {
			s, err := Open(b.TempDir(), Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			op := &Op{Kind: OpBatch, Session: "bench-session", Seq: 1}
			payload := make([]byte, 200)
			for i := range payload {
				payload[i] = byte(i)
			}
			for i := 0; i < traces; i++ {
				op.Traces = append(op.Traces, payload)
			}
			b.SetBytes(int64(traces * len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op.Seq = uint64(i + 1)
				if err := s.Append("bench-program", op); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
