package journal

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkJournalAppendParallel is the durable-ingest acceptance yardstick:
// many goroutines appending to one program's journal with fsync enabled,
// one-write-per-op (the PR-3 baseline) against the group committer. The
// group variant coalesces every concurrently blocked append into a single
// write+fsync, so its per-op cost approaches fsync/batch — the ≥5× parallel
// throughput target falls out of the fsync cost alone (one fsync is
// ~100–200µs on ext4 against a sub-µs buffered write).
func BenchmarkJournalAppendParallel(b *testing.B) {
	variants := []struct {
		name string
		opts Options
	}{
		{"baseline-fsync", Options{Fsync: true}},
		{"group-fsync", Options{Fsync: true, MaxBatch: 256}},
		{"baseline-nosync", Options{}},
		{"group-nosync", Options{MaxBatch: 256}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			s, err := Open(b.TempDir(), v.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			payload := make([]byte, 200)
			for i := range payload {
				payload[i] = byte(i)
			}
			b.SetParallelism(16)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				op := &Op{Kind: OpBatch, Session: "bench-session", Seq: 1,
					Traces: [][]byte{payload, payload, payload, payload, payload, payload, payload, payload}}
				for pb.Next() {
					if err := s.Append("bench-program", op); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkJournalAppend measures the write-ahead append hot path at a
// realistic op size: an 8-trace batch of ~200-byte encoded traces, the
// shape a pod drain produces.
func BenchmarkJournalAppend(b *testing.B) {
	for _, traces := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("traces=%d", traces), func(b *testing.B) {
			s, err := Open(b.TempDir(), Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			op := &Op{Kind: OpBatch, Session: "bench-session", Seq: 1}
			payload := make([]byte, 200)
			for i := range payload {
				payload[i] = byte(i)
			}
			for i := 0; i < traces; i++ {
				op.Traces = append(op.Traces, payload)
			}
			b.SetBytes(int64(traces * len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op.Seq = uint64(i + 1)
				if err := s.Append("bench-program", op); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJournalAppendColdFleet models a fleet of many mostly-cold
// programs trickling durable appends concurrently: every op lands on a
// different program's journal, so per-record coalescing within one program
// is rare and the cost is dominated by committer scheduling and fsync
// traffic across files. This is the yardstick for pooling group committers
// across programs (one bounded committer pool per data directory instead of
// one goroutine per hot program).
func BenchmarkJournalAppendColdFleet(b *testing.B) {
	for _, programs := range []int{64, 512} {
		b.Run(fmt.Sprintf("programs=%d", programs), func(b *testing.B) {
			s, err := Open(b.TempDir(), Options{Fsync: true, MaxBatch: 256})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			payload := make([]byte, 200)
			for i := range payload {
				payload[i] = byte(i)
			}
			var next atomic.Int64
			b.SetParallelism(16)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				op := &Op{Kind: OpBatch, Session: "bench-session", Seq: 1,
					Traces: [][]byte{payload}}
				for pb.Next() {
					id := fmt.Sprintf("bench-program-%d", next.Add(1)%int64(programs))
					if err := s.Append(id, op); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
