package journal

import (
	"io/fs"
	"os"
)

// FS is the filesystem surface the journal (and the archive tier built on
// it) performs all durability I/O through. Production code uses OSFS; tests
// thread internal/faultfs through Options.FS to exercise every durability
// layer under injected torn writes, ENOSPC, EIO, failed fsyncs, and crash
// points without touching a real disk's failure modes.
//
// The interface is deliberately the journal's exact I/O footprint — open
// for append, whole-file read, directory listing, remove/rename/truncate —
// rather than a general VFS: a fault injector that covers these calls
// covers every byte the journal ever persists.
type FS interface {
	// OpenFile opens name with the given flags, creating it at perm when
	// os.O_CREATE is set.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile returns the whole contents of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the directory entries of name.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Remove deletes name.
	Remove(name string) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// MkdirAll creates the directory path and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
}

// File is one open journal/snapshot file.
type File interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Stat() (os.FileInfo, error)
	Truncate(size int64) error
}

// OSFS returns the production FS: a passthrough to the os package.
func OSFS() FS { return osFS{} }

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
