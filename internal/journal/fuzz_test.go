package journal

import (
	"bytes"
	"fmt"
	"os"
	"testing"
)

// FuzzJournalTornTail is the crash-consistency fuzz: a journal whose tail
// was torn at an arbitrary byte offset — optionally with garbage appended
// after the cut, the shape a crashed write or a partially reused disk block
// leaves behind — must (a) never panic or error out of Replay, (b) replay
// every record wholly on disk before the cut, in order — an acknowledged
// record ahead of the damage is never lost — and (c) leave a journal that
// accepts appends and round-trips them on the next recovery.
func FuzzJournalTornTail(f *testing.F) {
	f.Add(uint16(3), uint16(0), []byte{})
	f.Add(uint16(8), uint16(17), []byte{0x00, 0xff, 0x7f})
	f.Add(uint16(1), uint16(1), []byte("SBWAL1\n"))
	f.Add(uint16(40), uint16(512), bytes.Repeat([]byte{0xaa}, 64))
	f.Fuzz(func(t *testing.T, numOps uint16, cutBack uint16, garbage []byte) {
		ops := int(numOps%64) + 1
		dir := t.TempDir()
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Record where each op's frame ends so "fully on disk before the
		// cut" is exact.
		ends := make([]int64, 0, ops)
		for i := 0; i < ops; i++ {
			if err := s.Append("prog-A", batchOp("s", uint64(i+1), fmt.Sprintf("rec-%d", i))); err != nil {
				t.Fatal(err)
			}
			st, err := os.Stat(walFileIn(t, dir))
			if err != nil {
				t.Fatal(err)
			}
			ends = append(ends, st.Size())
		}
		s.Close()

		// Tear the tail: cut cutBack bytes off the end, bounded below by the
		// header — a crash tears records, never the header, which was on
		// disk before the first record was acknowledged (header corruption
		// is bitrot, and the store surfaces it loudly instead of silently
		// dropping the journal). Then append garbage where the torn bytes
		// were.
		path := walFileIn(t, dir)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		_, records, err := splitWALHeader(data)
		if err != nil {
			t.Fatal(err)
		}
		headerLen := len(data) - len(records)
		cut := len(data) - int(cutBack)
		if cut < headerLen {
			cut = headerLen
		}
		torn := append(append([]byte(nil), data[:cut]...), garbage...)
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		// Recovery must not crash, and must yield at least every record
		// wholly before the cut, in order. (Garbage that happens to parse as
		// a valid frame can extend the replay; it can never reorder or drop
		// the intact prefix.)
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		intact := 0
		for _, end := range ends {
			if end <= int64(cut) {
				intact++
			}
		}
		var replayed []*Op
		if _, err := s2.Replay("prog-A", func(op *Op) error {
			replayed = append(replayed, op)
			return nil
		}); err != nil {
			t.Fatalf("replay over torn tail errored: %v", err)
		}
		if len(replayed) < intact {
			t.Fatalf("lost acknowledged records: replayed %d, %d were intact before the cut", len(replayed), intact)
		}
		for i := 0; i < intact; i++ {
			if got, want := string(replayed[i].Traces[0]), fmt.Sprintf("rec-%d", i); got != want {
				t.Fatalf("record %d corrupted: got %q want %q", i, got, want)
			}
		}

		// The truncated journal must accept appends and round-trip them.
		if err := s2.Append("prog-A", batchOp("s", uint64(ops+1), "post-tear")); err != nil {
			t.Fatalf("append after torn-tail recovery: %v", err)
		}
		s2.Close()
		s3, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer s3.Close()
		var final []*Op
		if _, err := s3.Replay("prog-A", func(op *Op) error {
			final = append(final, op)
			return nil
		}); err != nil {
			t.Fatalf("second recovery errored: %v", err)
		}
		if len(final) != len(replayed)+1 {
			t.Fatalf("second recovery replayed %d ops, want %d", len(final), len(replayed)+1)
		}
		if got := string(final[len(final)-1].Traces[0]); got != "post-tear" {
			t.Fatalf("post-tear record lost: tail is %q", got)
		}
	})
}
