package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// This file is the journal's archive-tier surface (PR 10): a program's
// on-disk chain can be exported as raw bytes for bundling into archive
// segments (ExportChain), its local base/delta files pruned against a disk
// budget once they are archived (PruneChain — a tether marker stands in for
// them), and a pruned chain rehydrated on demand through an injected
// fetcher (SetChainFetcher) so recovery and re-homing read the same bytes
// whether they live locally or in the archive store.

// ChainExport is one program's raw on-disk durable state at a consistent
// cut: the base snapshot file bytes, each delta segment's file bytes, and
// the current journal's framed records (header stripped, torn tail
// trimmed — always record-aligned, so every byte is an acknowledged,
// CRC-valid record).
type ChainExport struct {
	ProgramID string
	HasBase   bool
	BaseGen   uint64
	Base      []byte
	Deltas    []ChainDelta
	WALGen    uint64
	// WAL is the validated framed-record region of the current journal
	// generation (everything after the header, up to the last CRC-valid
	// record boundary).
	WAL []byte
	// Tethered reports that the chain is pruned to the archive tier: the
	// base and any delta generations absent from this export exist only in
	// the archive store, and a consumer rebuilding archive metadata must
	// carry those generations forward rather than treat them as gone.
	Tethered bool
}

// ChainDelta is one delta segment's generation and raw file bytes.
type ChainDelta struct {
	Gen  uint64
	Data []byte
}

// ExportChain captures a program's chain under its log lock — a consistent
// cut relative to appends and checkpoints. Chains pruned to the archive
// tier are exported without rehydration: the caller (the archiver) already
// holds those generations. Returns nil for a program with no persisted
// state at all.
func (s *Store) ExportChain(programID string) (*ChainExport, error) {
	pl := s.log(programID)
	pl.mu.Lock()
	defer pl.mu.Unlock()
	out := &ChainExport{ProgramID: programID, WALGen: pl.gen, Tethered: pl.tethered}
	if pl.hasBase && !pl.tethered {
		data, err := s.fs.ReadFile(s.snapPath(pl.key, pl.baseGen))
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("journal: export %s base: %w", programID, err)
		}
		if err == nil {
			out.HasBase, out.BaseGen, out.Base = true, pl.baseGen, data
		}
	} else if pl.tethered {
		out.HasBase, out.BaseGen = pl.hasBase, pl.baseGen
	}
	for _, dg := range pl.deltas {
		data, err := s.fs.ReadFile(s.deltaPath(pl.key, dg))
		if errors.Is(err, os.ErrNotExist) && pl.tethered {
			continue // pruned delta: the archive tier already holds it
		}
		if err != nil {
			return nil, fmt.Errorf("journal: export %s delta %d: %w", programID, dg, err)
		}
		out.Deltas = append(out.Deltas, ChainDelta{Gen: dg, Data: data})
	}
	walData, err := s.fs.ReadFile(s.walPath(pl.key, pl.gen))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("journal: export %s wal: %w", programID, err)
	}
	if err == nil {
		id, body, herr := splitWALHeader(walData)
		switch {
		case herr != nil:
			// Torn header: the creation write never completed, so the file
			// holds no acked records — export an empty WAL region.
		case id != programID:
			return nil, fmt.Errorf("%w: journal for %q found under key of %q", ErrCorrupt, id, programID)
		default:
			valid, _ := ScanRecords(body)
			out.WAL = body[:valid]
		}
	}
	if !out.HasBase && len(out.Deltas) == 0 && len(out.WAL) == 0 && pl.gen == 0 {
		return nil, nil
	}
	return out, nil
}

// PruneChain deletes a program's local base and delta files once the
// archive tier holds them, leaving a tether marker in their place so the
// chain stays loadable (through the store's fetcher). The caller asserts
// exactly which generations it archived; a chain that moved on since (a
// concurrent checkpoint) is left alone — prune again after the next sync.
// The live journal is never pruned. Returns the bytes freed.
func (s *Store) PruneChain(programID string, baseGen uint64, deltaGens []uint64) (int64, error) {
	pl := s.log(programID)
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if !pl.hasBase || pl.tethered || pl.baseGen != baseGen || len(pl.deltas) != len(deltaGens) {
		return 0, nil
	}
	for i, dg := range pl.deltas {
		if deltaGens[i] != dg {
			return 0, nil
		}
	}
	tm := tetherMarker{ProgramID: programID, BaseGen: pl.baseGen, Deltas: append([]uint64(nil), pl.deltas...)}
	body, err := json.Marshal(&tm)
	if err != nil {
		return 0, fmt.Errorf("journal: prune %s: %w", programID, err)
	}
	// The marker lands durably before anything is deleted: a crash between
	// the two leaves a loadable (merely un-pruned) chain either way.
	if err := writeFileAtomic(s.fs, s.tetherPath(pl.key), body); err != nil {
		return 0, fmt.Errorf("journal: prune %s: %w", programID, err)
	}
	var freed int64
	remove := func(path string) {
		if f, err := s.fs.OpenFile(path, os.O_RDONLY, 0); err == nil {
			if st, err := f.Stat(); err == nil {
				freed += st.Size()
			}
			_ = f.Close()
		}
		_ = s.fs.Remove(path)
	}
	remove(s.snapPath(pl.key, pl.baseGen))
	for _, dg := range pl.deltas {
		remove(s.deltaPath(pl.key, dg))
	}
	pl.tethered = true
	return freed, nil
}

// SetChainFetcher installs the archive-tier rehydration hook: loading a
// pruned (tethered) chain calls fn for the program's archived bytes and
// writes the missing generations back locally before reading them. The
// archive package's ChainFetcher adapts an ObjectStore to this signature.
func (s *Store) SetChainFetcher(fn func(programID string) (*ChainExport, error)) {
	s.mu.Lock()
	s.fetcher = fn
	s.mu.Unlock()
}

// rehydrateLocked restores a tethered chain's pruned files from the archive
// tier through the injected fetcher. Only generations missing locally are
// written; the tether is cleared once the chain is whole again.
func (s *Store) rehydrateLocked(pl *progLog, programID string) error {
	s.mu.Lock()
	fetch := s.fetcher
	s.mu.Unlock()
	if fetch == nil {
		return fmt.Errorf("journal: chain for %s is pruned to the archive tier and no chain fetcher is installed", programID)
	}
	exp, err := fetch(programID)
	if err != nil {
		return fmt.Errorf("journal: rehydrate %s: %w", programID, err)
	}
	if exp == nil || exp.ProgramID != programID {
		return fmt.Errorf("%w: archive returned chain for %q, want %q", ErrCorrupt, exportID(exp), programID)
	}
	if pl.hasBase {
		if !exp.HasBase || exp.BaseGen != pl.baseGen {
			return fmt.Errorf("%w: archive chain for %s has base gen %d, local tether expects %d", ErrCorrupt, programID, exp.BaseGen, pl.baseGen)
		}
		path := s.snapPath(pl.key, pl.baseGen)
		if _, err := s.fs.ReadFile(path); errors.Is(err, os.ErrNotExist) {
			if _, err := decodeSnapshot(exp.Base, "archived base"); err != nil {
				return err
			}
			if err := writeFileAtomic(s.fs, path, exp.Base); err != nil {
				return fmt.Errorf("journal: rehydrate %s: %w", programID, err)
			}
		}
	}
	fetched := make(map[uint64][]byte, len(exp.Deltas))
	for _, d := range exp.Deltas {
		fetched[d.Gen] = d.Data
	}
	for _, dg := range pl.deltas {
		path := s.deltaPath(pl.key, dg)
		if _, err := s.fs.ReadFile(path); !errors.Is(err, os.ErrNotExist) {
			continue
		}
		data, ok := fetched[dg]
		if !ok {
			return fmt.Errorf("%w: archive chain for %s is missing delta gen %d", ErrCorrupt, programID, dg)
		}
		if _, err := decodeSnapshot(data, "archived delta"); err != nil {
			return err
		}
		if err := writeFileAtomic(s.fs, path, data); err != nil {
			return fmt.Errorf("journal: rehydrate %s: %w", programID, err)
		}
	}
	_ = s.fs.Remove(s.tetherPath(pl.key))
	pl.tethered = false
	return nil
}

func exportID(exp *ChainExport) string {
	if exp == nil {
		return "<nil>"
	}
	return exp.ProgramID
}

// tetherMarker is the on-disk stand-in for a pruned chain: which
// generations moved to the archive tier (and for which program, so a fully
// pruned quiescent program still recovers its identity at scan).
type tetherMarker struct {
	ProgramID string   `json:"programId"`
	BaseGen   uint64   `json:"baseGen"`
	Deltas    []uint64 `json:"deltas,omitempty"`
}

func (s *Store) tetherPath(key string) string {
	return filepath.Join(s.dir, "tether-"+key+".json")
}

// parseTetherName splits "tether-<key>.json".
func parseTetherName(name string) (key string, ok bool) {
	if !strings.HasPrefix(name, "tether-") || !strings.HasSuffix(name, ".json") {
		return "", false
	}
	key = strings.TrimSuffix(name[len("tether-"):], ".json")
	return key, key != ""
}

func (s *Store) readTether(key string) (*tetherMarker, error) {
	data, err := s.fs.ReadFile(s.tetherPath(key))
	if err != nil {
		return nil, err
	}
	var tm tetherMarker
	if err := json.Unmarshal(data, &tm); err != nil {
		return nil, fmt.Errorf("%w: tether %s: %v", ErrCorrupt, key, err)
	}
	return &tm, nil
}

// DiskUsage sums the sizes of every file in the data directory — the
// number the archiver prunes against a disk budget.
func (s *Store) DiskUsage() (int64, error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("journal: disk usage: %w", err)
	}
	var total int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total, nil
}

// ChainSize returns the local bytes held by a program's base and delta
// files (0 when pruned or never checkpointed) — what PruneChain would free.
func (s *Store) ChainSize(programID string) int64 {
	pl := s.log(programID)
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if !pl.hasBase || pl.tethered {
		return 0
	}
	var total int64
	add := func(path string) {
		if f, err := s.fs.OpenFile(path, os.O_RDONLY, 0); err == nil {
			if st, err := f.Stat(); err == nil {
				total += st.Size()
			}
			_ = f.Close()
		}
	}
	add(s.snapPath(pl.key, pl.baseGen))
	for _, dg := range pl.deltas {
		add(s.deltaPath(pl.key, dg))
	}
	return total
}

// FileKey exposes the filename-safe key derived from a program ID, so the
// archive tier's object keys group by the same identity the journal's
// files do.
func FileKey(programID string) string { return fileKey(programID) }

// WALHeader builds the header a journal file for programID starts with —
// the archive tier prepends it when materializing a journal-compatible
// data directory from archived WAL chunks.
func WALHeader(programID string) []byte {
	hdr := []byte(walMagic)
	hdr = binary.AppendUvarint(hdr, uint64(len(programID)))
	return append(hdr, programID...)
}

// SplitWALHeader validates a journal file's header and returns the program
// ID it names plus the framed-record region after it.
func SplitWALHeader(data []byte) (programID string, records []byte, err error) {
	return splitWALHeader(data)
}

// ScanRecords walks framed journal records and returns the length of the
// valid (CRC-checked, whole-record) prefix plus the record count. Archive
// materialization uses it to trim torn archived chunks exactly the way
// recovery trims a torn journal tail.
func ScanRecords(data []byte) (valid int, count int) {
	rest := data
	for len(rest) > 0 {
		_, next, ok := readRecord(rest)
		if !ok {
			break
		}
		valid += len(rest) - len(next)
		count++
		rest = next
	}
	return valid, count
}
