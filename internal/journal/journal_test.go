package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/exectree"
)

func batchOp(session string, seq uint64, traces ...string) *Op {
	op := &Op{Kind: OpBatch, Session: session, Seq: seq}
	for _, tr := range traces {
		op.Traces = append(op.Traces, []byte(tr))
	}
	return op
}

func collect(t *testing.T, s *Store, programID string) []*Op {
	t.Helper()
	var out []*Op
	if _, err := s.Replay(programID, func(op *Op) error {
		out = append(out, op)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestOpCodecRoundTrip(t *testing.T) {
	ops := []*Op{
		batchOp("sess-1", 7, "trace-a", "trace-b"),
		batchOp("", 0),
		{Kind: OpSynthesis, Signature: "crash@3#-1", Fix: []byte(`{"id":1}`)},
		{Kind: OpSynthesis, Signature: "hang@9#-1"},
		{Kind: OpProof, Proof: []byte(`{"Property":1}`)},
		{
			Kind:    OpCert,
			Prefix:  []exectree.Edge{{ID: 1, Taken: true}, {ID: 4, Taken: false}},
			Missing: exectree.Edge{ID: 9, Taken: true},
		},
	}
	for i, op := range ops {
		got, err := decodeOp(encodeOp(op))
		if err != nil {
			t.Fatalf("op %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(op)) {
			t.Fatalf("op %d: round-trip mismatch:\n got %+v\nwant %+v", i, got, op)
		}
	}
}

// normalize maps nil and empty slices to a comparable form.
func normalize(op *Op) *Op {
	c := *op
	if len(c.Traces) == 0 {
		c.Traces = nil
	}
	if len(c.Fix) == 0 {
		c.Fix = nil
	}
	if len(c.Prefix) == 0 {
		c.Prefix = nil
	}
	return &c
}

func TestAppendReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []*Op{
		batchOp("s", 1, "t1"),
		batchOp("s", 2, "t2", "t3"),
		{Kind: OpSynthesis, Signature: "sig", Fix: []byte("{}")},
	}
	for _, op := range want {
		if err := s.Append("prog-A", op); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Programs(); len(got) != 1 || got[0] != "prog-A" {
		t.Fatalf("Programs() = %v, want [prog-A]", got)
	}
	got := collect(t, s2, "prog-A")
	if len(got) != len(want) {
		t.Fatalf("replayed %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(normalize(got[i]), normalize(want[i])) {
			t.Fatalf("op %d mismatch: got %+v want %+v", i, got[i], want[i])
		}
	}
	// Replay then append continues the same journal.
	if err := s2.Append("prog-A", batchOp("s", 3, "t4")); err != nil {
		t.Fatal(err)
	}
}

func TestReplayTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("prog-A", batchOp("s", 1, "good")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("prog-A", batchOp("s", 2, "also-good")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop bytes off the file tail.
	path := walFileIn(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := collect(t, s2, "prog-A")
	if len(got) != 1 || string(got[0].Traces[0]) != "good" {
		t.Fatalf("after torn tail: got %d ops, want the 1 intact op", len(got))
	}
	// The torn bytes were truncated, so a new append yields a valid journal.
	if err := s2.Append("prog-A", batchOp("s", 2, "resent")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	got = collect(t, s3, "prog-A")
	if len(got) != 2 || string(got[1].Traces[0]) != "resent" {
		t.Fatalf("after truncate+append: got %d ops", len(got))
	}
}

func walFileIn(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") {
			return filepath.Join(dir, e.Name())
		}
	}
	t.Fatal("no wal file found")
	return ""
}

func TestCheckpointRotatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("prog-A", batchOp("s", 1, "pre")); err != nil {
		t.Fatal(err)
	}
	snap := &ProgramSnapshot{
		ProgramID: "prog-A",
		Tree:      []byte("tree-bytes"),
		Epoch:     3,
		Ingested:  11,
		Sessions:  map[string]uint64{"s": 1},
		Failures: []FailureState{
			{Signature: "crash@1#-1", Outcome: 2, Count: 4, Pods: []string{"p1", "p2"}, Fixed: true},
		},
	}
	if err := s.Checkpoint(snap); err != nil {
		t.Fatal(err)
	}
	// Ops after the checkpoint land in the new generation.
	if err := s.Append("prog-A", batchOp("s", 2, "post")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	loaded, err := s2.LoadSnapshot("prog-A")
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil || loaded.Epoch != 3 || loaded.Ingested != 11 ||
		!bytes.Equal(loaded.Tree, snap.Tree) || loaded.Sessions["s"] != 1 {
		t.Fatalf("snapshot mismatch: %+v", loaded)
	}
	if len(loaded.Failures) != 1 || loaded.Failures[0].Count != 4 || !loaded.Failures[0].Fixed {
		t.Fatalf("failure state mismatch: %+v", loaded.Failures)
	}
	got := collect(t, s2, "prog-A")
	if len(got) != 1 || string(got[0].Traces[0]) != "post" {
		t.Fatalf("replay after checkpoint: got %d ops, want only the post-checkpoint op", len(got))
	}
}

func TestSnapshotOnlyNoJournal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(&ProgramSnapshot{ProgramID: "prog-B", Tree: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Programs(); len(got) != 1 || got[0] != "prog-B" {
		t.Fatalf("Programs() = %v", got)
	}
	snap, err := s2.LoadSnapshot("prog-B")
	if err != nil || snap == nil {
		t.Fatalf("LoadSnapshot: %v %v", snap, err)
	}
	if got := collect(t, s2, "prog-B"); len(got) != 0 {
		t.Fatalf("expected empty journal, got %d ops", len(got))
	}
}

func TestProgramsIsolated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append("prog-A", batchOp("s", 1, "a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("prog-B", batchOp("s", 2, "b")); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(&ProgramSnapshot{ProgramID: "prog-A"}); err != nil {
		t.Fatal(err)
	}
	// prog-A's checkpoint must not disturb prog-B's journal.
	if got := collect(t, s, "prog-B"); len(got) != 1 || string(got[0].Traces[0]) != "b" {
		t.Fatalf("prog-B journal disturbed: %d ops", len(got))
	}
}

func TestFreshProgramHasNoState(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	snap, err := s.LoadSnapshot("never-seen")
	if err != nil || snap != nil {
		t.Fatalf("LoadSnapshot fresh: %v %v", snap, err)
	}
	if got := collect(t, s, "never-seen"); len(got) != 0 {
		t.Fatalf("fresh program replayed %d ops", len(got))
	}
}

func TestGroupCommitAppendReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: true, GroupWindow: 200 * time.Microsecond, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent appenders: every acknowledged record must survive, exactly
	// once, no matter how the committer grouped them.
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				op := batchOp(fmt.Sprintf("w%d", w), uint64(i+1), fmt.Sprintf("w%d-r%d", w, i))
				if err := s.Append("prog-A", op); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	seen := make(map[string]int)
	perSession := make(map[string]uint64)
	for _, op := range collect(t, s2, "prog-A") {
		seen[string(op.Traces[0])]++
		// Within one appender the journal preserves submission order: each
		// worker's sequence numbers must replay ascending.
		if op.Seq <= perSession[op.Session] {
			t.Fatalf("session %s: seq %d replayed after %d", op.Session, op.Seq, perSession[op.Session])
		}
		perSession[op.Session] = op.Seq
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("replayed %d distinct records, want %d", len(seen), workers*perWorker)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("record %s replayed %d times", k, n)
		}
	}
}

func TestGroupCommitSequentialOrder(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		if err := s.Append("prog-A", batchOp("s", uint64(i), "r")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := collect(t, s2, "prog-A")
	if len(got) != 50 {
		t.Fatalf("replayed %d ops, want 50", len(got))
	}
	for i, op := range got {
		if op.Seq != uint64(i+1) {
			t.Fatalf("op %d has seq %d: sequential appends reordered", i, op.Seq)
		}
	}
}

func TestGroupCommitBeforeReplayFails(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("prog-A", batchOp("s", 1, "a")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir, Options{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// prog-A has un-replayed state: appending before Replay must fail so a
	// torn tail can never be buried under fresh records.
	if err := s2.Append("prog-A", batchOp("s", 2, "b")); err == nil {
		t.Fatal("group append before Replay succeeded")
	}
	if _, err := s2.Replay("prog-A", func(*Op) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := s2.Append("prog-A", batchOp("s", 2, "b")); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaCheckpointChain(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Delta without a base must be refused: the chain would be headless.
	if err := s.CheckpointDelta(&ProgramSnapshot{ProgramID: "prog-A", TreeDelta: []byte("d")}); err == nil {
		t.Fatal("delta checkpoint without base succeeded")
	}
	if err := s.Append("prog-A", batchOp("s", 1, "pre-base")); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(&ProgramSnapshot{ProgramID: "prog-A", Tree: []byte("base"), Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("prog-A", batchOp("s", 2, "in-delta-1")); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckpointDelta(&ProgramSnapshot{ProgramID: "prog-A", TreeDelta: []byte("d1"), Epoch: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("prog-A", batchOp("s", 3, "in-delta-2")); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckpointDelta(&ProgramSnapshot{ProgramID: "prog-A", TreeDelta: []byte("d2"), Epoch: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("prog-A", batchOp("s", 4, "post-chain")); err != nil {
		t.Fatal(err)
	}
	if got := s.ChainLength("prog-A"); got != 2 {
		t.Fatalf("ChainLength = %d, want 2", got)
	}
	s.Close()

	// A fresh Open must rediscover the whole chain.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, deltas, err := s2.LoadChain("prog-A")
	if err != nil {
		t.Fatal(err)
	}
	if base == nil || string(base.Tree) != "base" || base.Epoch != 1 {
		t.Fatalf("base mismatch: %+v", base)
	}
	if len(deltas) != 2 || string(deltas[0].TreeDelta) != "d1" || string(deltas[1].TreeDelta) != "d2" || deltas[1].Epoch != 3 {
		t.Fatalf("delta chain mismatch: %d segments", len(deltas))
	}
	// Only the post-chain suffix replays.
	got := collect(t, s2, "prog-A")
	if len(got) != 1 || string(got[0].Traces[0]) != "post-chain" {
		t.Fatalf("replay after chain: got %d ops", len(got))
	}
	// A full checkpoint compacts: chain collapses to one base, deltas gone.
	if err := s2.Checkpoint(&ProgramSnapshot{ProgramID: "prog-A", Tree: []byte("base2"), Epoch: 4}); err != nil {
		t.Fatal(err)
	}
	if got := s2.ChainLength("prog-A"); got != 0 {
		t.Fatalf("ChainLength after compaction = %d, want 0", got)
	}
	s2.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "delta-") {
			t.Fatalf("stale delta segment %s survived compaction", e.Name())
		}
	}
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	base, deltas, err = s3.LoadChain("prog-A")
	if err != nil {
		t.Fatal(err)
	}
	if base == nil || string(base.Tree) != "base2" || len(deltas) != 0 {
		t.Fatalf("after compaction: base=%v deltas=%d", base, len(deltas))
	}
}

// eioFS wraps an FS and fails OpenFile on matching names with EIO — a
// transient read failure on an intact disk, not corruption.
type eioFS struct {
	FS
	substr string
}

func (f eioFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if strings.Contains(name, f.substr) {
		return nil, &os.PathError{Op: "open", Path: name, Err: syscall.EIO}
	}
	return f.FS.OpenFile(name, flag, perm)
}

// TestScanTransientReadErrorRefusesOpen: a flaky disk at open time (EIO on
// an intact journal) must refuse to open the store — never quarantine the
// key, which would permanently delete acked durable state. Only keys whose
// every identity probe comes back missing/corrupt are quarantined.
func TestScanTransientReadErrorRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := s.Append("prog-a", batchOp("boot", seq, "t")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen behind an FS that EIOs every journal open: the scan's identity
	// probe hits the transient error and the open must fail.
	if _, err := Open(dir, Options{FS: eioFS{FS: OSFS(), substr: "wal-"}}); err == nil {
		t.Fatal("open over a flaky disk succeeded; acked journal may have been quarantined")
	}

	// The acked journal must still be on disk, and a healthy reopen must
	// recover every record.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("healthy reopen: %v", err)
	}
	defer s2.Close()
	if got := collect(t, s2, "prog-a"); len(got) != 3 {
		t.Fatalf("recovered %d ops after transient-error open, want 3", len(got))
	}
}

// TestScanQuarantinesUnreadableRemains: a key whose files are all torn or
// empty (a creation that never completed — no acked record can live there)
// is still quarantined rather than failing the whole open.
func TestScanQuarantinesUnreadableRemains(t *testing.T) {
	dir := t.TempDir()
	// An empty journal (header never landed) and a garbage snapshot under
	// the same key: no probe can recover an identity.
	if err := os.WriteFile(filepath.Join(dir, "wal-deadbeef00000000-1.log"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snap-deadbeef00000000-1.snap"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with unreadable remains: %v", err)
	}
	defer s.Close()
	if progs := s.Programs(); len(progs) != 0 {
		t.Fatalf("quarantined key surfaced programs: %v", progs)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), "deadbeef") {
			t.Fatalf("quarantined file %s left behind", e.Name())
		}
	}
}
