package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// ProgramSnapshot is one program's full durable state at a checkpoint: the
// serialized execution tree (exectree.Encode, which Decode restores
// bit-for-bit including the incremental frontier index), the versioned fix
// set, standing proofs, failure-signature aggregation, ingestion counters,
// collective known-good inputs, the coordinated-sampling fragment buffer,
// and the exactly-once session dedup table as of the checkpoint.
//
// Trace payloads (failure samples, coordinated fragments) are stored in the
// wire codec (trace.Encode); fixes and proofs in their JSON codecs. All of
// them are post-privacy: the snapshot persists what pods shipped, never
// more (see the package privacy invariant).
// A snapshot is either *full* (Tree set: the complete exectree.Encode
// serialization) or a *delta segment* (TreeDelta set: exectree.EncodeDelta
// bytes holding only the nodes changed since the previous checkpoint, with
// every non-tree field still carried in full — they are small relative to
// the tree and replacing them wholesale keeps chain merging trivial).
// Recovery overlays delta segments over the base in generation order
// (exectree.DecodeChain) and takes the non-tree fields from the newest
// segment.
type ProgramSnapshot struct {
	ProgramID string `json:"programId"`
	// Tree is the exectree.Encode serialization (full snapshots only).
	Tree []byte `json:"tree,omitempty"`
	// TreeDelta is the exectree.EncodeDelta serialization (delta segments
	// only): the nodes changed since the previous checkpoint.
	TreeDelta []byte `json:"treeDelta,omitempty"`
	// Fixes are fix JSON documents in ID order.
	Fixes [][]byte `json:"fixes,omitempty"`
	Epoch int      `json:"epoch"`
	// Proofs are proof JSON documents (standing and superseded; readers
	// filter by epoch).
	Proofs [][]byte `json:"proofs,omitempty"`
	// Failures is the per-signature aggregation state.
	Failures []FailureState `json:"failures,omitempty"`

	Ingested      int64 `json:"ingested"`
	Reconstructed int64 `json:"reconstructed"`
	Narrowed      int64 `json:"narrowed"`

	// KnownGood are raw inputs observed to succeed (present only when pods
	// shipped at PrivacyRaw).
	KnownGood [][]int64 `json:"knownGood,omitempty"`
	// Coordinated buffers incomplete coordinated-sampling families:
	// family key -> encoded fragment traces.
	Coordinated map[string][][]byte `json:"coordinated,omitempty"`

	// Sessions is the exactly-once dedup table (session -> contiguous
	// applied-sequence base) as of this checkpoint; SessionsAhead carries
	// any out-of-order applied marks above a session's base. Recovery
	// union-merges both from every program snapshot and replayed batch op.
	Sessions      map[string]uint64   `json:"sessions,omitempty"`
	SessionsAhead map[string][]uint64 `json:"sessionsAhead,omitempty"`
}

// FailureState is the serialized form of one failure signature's fleet-wide
// aggregation — the codec for hive.FailureRecord plus the bookkeeping the
// exported snapshot type omits (distinct reporting pods).
type FailureState struct {
	Signature string `json:"signature"`
	Outcome   uint8  `json:"outcome"`
	Count     int64  `json:"count"`
	// Pods lists the distinct reporting pod IDs.
	Pods []string `json:"pods,omitempty"`
	// Sample is one representative trace (wire codec).
	Sample      []byte `json:"sample,omitempty"`
	Fixed       bool   `json:"fixed,omitempty"`
	InRepairLab bool   `json:"inRepairLab,omitempty"`
}

// EncodeSnapshot serializes a snapshot into the CRC-framed byte form —
// the same bytes writeSnapshotFile persists. It is the ship-a-program
// codec for re-homing: an exported program travels between hive processes
// as exactly these bytes and DecodeSnapshot validates them on arrival.
func EncodeSnapshot(snap *ProgramSnapshot) ([]byte, error) {
	body, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("journal: encode snapshot: %w", err)
	}
	buf := []byte(snapMagic)
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	buf = append(buf, body...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	return append(buf, crc[:]...), nil
}

// DecodeSnapshot parses and validates EncodeSnapshot bytes.
func DecodeSnapshot(data []byte) (*ProgramSnapshot, error) {
	return decodeSnapshot(data, "snapshot bytes")
}

// decodeSnapshot validates the CRC frame and parses the body; where names
// the source for error messages.
func decodeSnapshot(data []byte, where string) (*ProgramSnapshot, error) {
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic in %s", ErrCorrupt, where)
	}
	rest := data[len(snapMagic):]
	n, sz := binary.Uvarint(rest)
	if sz <= 0 || uint64(len(rest)-sz) < n+4 {
		return nil, fmt.Errorf("%w: truncated snapshot %s", ErrCorrupt, where)
	}
	body := rest[sz : sz+int(n)]
	want := binary.LittleEndian.Uint32(rest[sz+int(n) : sz+int(n)+4])
	if crc32.ChecksumIEEE(body) != want {
		return nil, fmt.Errorf("%w: snapshot checksum mismatch in %s", ErrCorrupt, where)
	}
	var snap ProgramSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return nil, fmt.Errorf("%w: snapshot json: %v", ErrCorrupt, err)
	}
	return &snap, nil
}

// writeSnapshotFile persists a snapshot atomically: temp file, fsync,
// rename.
func writeSnapshotFile(vfs FS, path string, snap *ProgramSnapshot) error {
	buf, err := EncodeSnapshot(snap)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(vfs, path, buf); err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	return nil
}

// writeFileAtomic lands data at path via the temp-file + fsync + rename
// dance, so a crash at any point leaves either the old file or the new one —
// never a torn mix. Snapshots, tether markers, and the archive tier's
// local object store all rotate through it.
func writeFileAtomic(vfs FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := vfs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("write %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = vfs.Remove(tmp)
		return fmt.Errorf("write %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = vfs.Remove(tmp)
		return fmt.Errorf("sync %s: %w", filepath.Base(path), err)
	}
	if err := f.Close(); err != nil {
		_ = vfs.Remove(tmp)
		return fmt.Errorf("close %s: %w", filepath.Base(path), err)
	}
	if err := vfs.Rename(tmp, path); err != nil {
		_ = vfs.Remove(tmp)
		return fmt.Errorf("install %s: %w", filepath.Base(path), err)
	}
	return nil
}

// WriteFileAtomic is writeFileAtomic for packages layered over the journal
// (the archive tier's local-dir object store): write-temp, fsync, rename.
func WriteFileAtomic(vfs FS, path string, data []byte) error {
	if vfs == nil {
		vfs = OSFS()
	}
	return writeFileAtomic(vfs, path, data)
}

// readSnapshotFile loads and validates a snapshot file.
func readSnapshotFile(vfs FS, path string) (*ProgramSnapshot, error) {
	data, err := vfs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeSnapshot(data, path)
}
