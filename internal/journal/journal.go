// Package journal is the hive's persistence subsystem: an append-only
// write-ahead journal of ingest operations plus periodic full snapshots,
// giving the collective knowledge the paper's whole premise depends on —
// execution trees, failure signatures, fixes, and proofs grow monotonically
// as the fleet runs — a life beyond one hive process.
//
// # Durability model
//
// State is persisted per program: every program has its own journal file
// (write-ahead log of replayable operations, see Op) and its own snapshot
// generation. A mutation is appended to the program's journal *before* it is
// applied to the in-memory hive, so an acknowledged submission is always
// either in a snapshot or in the journal suffix after it. Recovery loads the
// newest snapshot and replays the journal suffix through the same apply path
// live ingestion uses; snapshot + suffix reconstructs the hive exactly —
// including the execution tree's incremental frontier index, which
// exectree.Decode rebuilds.
//
// Snapshots rotate atomically: the new snapshot is written to a temp file,
// fsynced, and renamed before the journal is rotated and older generations
// are deleted, so a crash at any point leaves a recoverable (snapshot,
// journal) pair on disk. Journal records are CRC-framed; a torn tail from a
// crash mid-append is detected and truncated on recovery — the torn record
// was never applied (append happens before apply) and never acknowledged.
//
// By default writes go straight to the operating system without fsync:
// state survives process death (kill -9, panics, OOM) but a machine-level
// crash can lose the last instants of un-synced journal. Options.Fsync
// forces an fsync per append for power-failure durability.
//
// # Privacy invariant
//
// The journal stores trace batches exactly as they were submitted — *after*
// the pod-side privacy filter ran. Raw end-user inputs reach the journal
// only when a pod explicitly ships at trace.PrivacyRaw; at the hashed,
// bucketed, and opaque levels the durable state contains only the filtered
// forms. Persisted aggregates are exactly where privacy-preserving schemes
// historically leak, so the journal deliberately never re-derives or widens
// what the pods chose to disclose.
package journal

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrCorrupt is wrapped by malformed journal or snapshot data.
var ErrCorrupt = errors.New("journal: corrupt")

// Options configures a Store.
type Options struct {
	// Fsync forces an fsync after every journal append. Off by default:
	// appends then survive process death but not power loss.
	Fsync bool
}

// Store manages the snapshot and journal files for many programs inside one
// data directory. All methods are safe for concurrent use; operations on
// distinct programs never contend.
type Store struct {
	dir   string
	fsync bool

	mu    sync.Mutex
	progs map[string]*progLog // program ID -> log state
	byKey map[string]string   // filename key -> program ID
}

// progLog is one program's on-disk state: the current snapshot generation
// and the journal file appends go to.
type progLog struct {
	mu  sync.Mutex
	id  string
	key string
	gen uint64
	f   *os.File // current journal, opened lazily for append
	// replayed records that Replay ran (or that the program is fresh), so
	// appends cannot clobber an un-replayed torn tail.
	replayed bool
}

const (
	walMagic  = "SBWAL1\n"
	snapMagic = "SBSNAP1\n"
)

// Open opens (creating if needed) a data directory and indexes the
// snapshot/journal files already in it.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", dir, err)
	}
	s := &Store{
		dir:   dir,
		fsync: opts.Fsync,
		progs: make(map[string]*progLog),
		byKey: make(map[string]string),
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// fileKey derives the filename-safe key for a program ID.
func fileKey(programID string) string {
	sum := sha256.Sum256([]byte(programID))
	return hex.EncodeToString(sum[:8])
}

// parseName splits "wal-<key>-<gen>.log" / "snap-<key>-<gen>.snap".
func parseName(name string) (kind, key string, gen uint64, ok bool) {
	var ext string
	switch {
	case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
		kind, ext = "wal", ".log"
	case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
		kind, ext = "snap", ".snap"
	default:
		return "", "", 0, false
	}
	body := strings.TrimSuffix(name[len(kind)+1:], ext)
	i := strings.LastIndexByte(body, '-')
	if i <= 0 {
		return "", "", 0, false
	}
	g, err := strconv.ParseUint(body[i+1:], 10, 64)
	if err != nil {
		return "", "", 0, false
	}
	return kind, body[:i], g, true
}

func (s *Store) walPath(key string, gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%s-%d.log", key, gen))
}

func (s *Store) snapPath(key string, gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("snap-%s-%d.snap", key, gen))
}

// scan indexes existing files: the current generation per program is the
// highest snapshot generation (or the highest journal generation when no
// snapshot exists); stale older generations are removed.
func (s *Store) scan() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("journal: scan: %w", err)
	}
	type genState struct {
		snapGen, walGen uint64
		hasSnap, hasWal bool
	}
	seen := make(map[string]*genState)
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			_ = os.Remove(filepath.Join(s.dir, name)) // torn snapshot write
			continue
		}
		kind, key, gen, ok := parseName(name)
		if !ok {
			continue
		}
		g := seen[key]
		if g == nil {
			g = &genState{}
			seen[key] = g
		}
		switch kind {
		case "snap":
			if !g.hasSnap || gen > g.snapGen {
				g.snapGen, g.hasSnap = gen, true
			}
		case "wal":
			if !g.hasWal || gen > g.walGen {
				g.walGen, g.hasWal = gen, true
			}
		}
	}
	for key, g := range seen {
		gen := g.walGen
		if g.hasSnap && g.snapGen > gen {
			gen = g.snapGen
		}
		id, err := s.programIDFor(key, gen)
		if err != nil {
			return err
		}
		s.progs[id] = &progLog{id: id, key: key, gen: gen}
		s.byKey[key] = id
		s.cleanStale(key, gen)
	}
	return nil
}

// programIDFor recovers the program ID recorded in a key's newest journal
// or snapshot header (one of the two exists at the current generation by
// construction).
func (s *Store) programIDFor(key string, gen uint64) (string, error) {
	if id, err := readWALHeader(s.walPath(key, gen)); err == nil {
		return id, nil
	}
	if snap, err := readSnapshotFile(s.snapPath(key, gen)); err == nil {
		return snap.ProgramID, nil
	}
	return "", fmt.Errorf("%w: no readable header for key %s", ErrCorrupt, key)
}

// cleanStale removes generations older than gen for key.
func (s *Store) cleanStale(key string, gen uint64) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		_, k, g, ok := parseName(e.Name())
		if !ok || k != key || g >= gen {
			continue
		}
		_ = os.Remove(filepath.Join(s.dir, e.Name()))
	}
}

// Programs returns the IDs of every program with persisted state, sorted.
func (s *Store) Programs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.progs))
	for id := range s.progs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// log resolves (creating if absent) a program's log state.
func (s *Store) log(programID string) *progLog {
	s.mu.Lock()
	defer s.mu.Unlock()
	pl, ok := s.progs[programID]
	if !ok {
		pl = &progLog{id: programID, key: fileKey(programID), gen: 0, replayed: true}
		s.progs[programID] = pl
		s.byKey[pl.key] = programID
	}
	return pl
}

// LoadSnapshot returns the program's newest snapshot, or nil when none
// exists.
func (s *Store) LoadSnapshot(programID string) (*ProgramSnapshot, error) {
	pl := s.log(programID)
	pl.mu.Lock()
	defer pl.mu.Unlock()
	snap, err := readSnapshotFile(s.snapPath(pl.key, pl.gen))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if snap.ProgramID != programID {
		return nil, fmt.Errorf("%w: snapshot for %q found under key of %q", ErrCorrupt, snap.ProgramID, programID)
	}
	return snap, nil
}

// Replay feeds every journaled operation after the newest snapshot to
// apply, in append order. A torn tail (crash mid-append) is truncated so
// subsequent appends extend a valid journal. Replay must run before the
// first Append for a recovered program; it returns the number of
// operations replayed.
func (s *Store) Replay(programID string, apply func(*Op) error) (int, error) {
	pl := s.log(programID)
	pl.mu.Lock()
	defer pl.mu.Unlock()
	path := s.walPath(pl.key, pl.gen)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		pl.replayed = true
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("journal: replay %s: %w", programID, err)
	}
	id, body, err := splitWALHeader(data)
	if err != nil {
		return 0, err
	}
	if id != programID {
		return 0, fmt.Errorf("%w: journal for %q found under key of %q", ErrCorrupt, id, programID)
	}
	n := 0
	valid := len(data) - len(body)
	for len(body) > 0 {
		payload, rest, ok := readRecord(body)
		if !ok {
			break // torn tail: never applied, never acked
		}
		op, err := decodeOp(payload)
		if err != nil {
			break // treat undecodable tail like a torn record
		}
		if err := apply(op); err != nil {
			return n, fmt.Errorf("journal: replay %s op %d: %w", programID, n, err)
		}
		n++
		valid += len(body) - len(rest)
		body = rest
	}
	if valid < len(data) {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return n, fmt.Errorf("journal: truncate torn tail of %s: %w", programID, err)
		}
	}
	pl.replayed = true
	return n, nil
}

// Append journals one operation for the program. The record is on disk (in
// the OS, fsynced with Options.Fsync) when Append returns; callers apply
// the operation only after a successful append.
func (s *Store) Append(programID string, op *Op) error {
	pl := s.log(programID)
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return s.appendLocked(pl, op)
}

func (s *Store) appendLocked(pl *progLog, op *Op) error {
	if !pl.replayed {
		return fmt.Errorf("journal: append to %s before Replay", pl.id)
	}
	if pl.f == nil {
		f, err := openWAL(s.walPath(pl.key, pl.gen), pl.id)
		if err != nil {
			return err
		}
		pl.f = f
	}
	frame := appendRecord(nil, encodeOp(op))
	if _, err := pl.f.Write(frame); err != nil {
		return fmt.Errorf("journal: append %s: %w", pl.id, err)
	}
	if s.fsync {
		if err := pl.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync %s: %w", pl.id, err)
		}
	}
	return nil
}

// Checkpoint installs a new snapshot for snap.ProgramID and rotates its
// journal: the snapshot is written to a temp file, fsynced, and atomically
// renamed; only then is a fresh journal generation started and the previous
// generation deleted. The caller must guarantee no Append for this program
// runs concurrently (the hive holds its per-program checkpoint gate).
func (s *Store) Checkpoint(snap *ProgramSnapshot) error {
	pl := s.log(snap.ProgramID)
	pl.mu.Lock()
	defer pl.mu.Unlock()

	next := pl.gen + 1
	if err := writeSnapshotFile(s.snapPath(pl.key, next), snap); err != nil {
		return err
	}
	// New generation is durable; switch appends over and drop the old one.
	if pl.f != nil {
		_ = pl.f.Close()
		pl.f = nil
	}
	oldGen := pl.gen
	pl.gen = next
	pl.replayed = true
	_ = os.Remove(s.walPath(pl.key, oldGen))
	_ = os.Remove(s.snapPath(pl.key, oldGen))
	return nil
}

// Close closes every open journal file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, pl := range s.progs {
		pl.mu.Lock()
		if pl.f != nil {
			if err := pl.f.Close(); err != nil && first == nil {
				first = err
			}
			pl.f = nil
		}
		pl.mu.Unlock()
	}
	return first
}

// --- journal file helpers ---

// openWAL opens (creating with a header if new) a journal for appending.
// O_APPEND keeps writes landing at the true end of file even after a
// recovery truncated a torn tail.
func openWAL(path, programID string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("journal: stat wal: %w", err)
	}
	if st.Size() == 0 {
		hdr := []byte(walMagic)
		hdr = binary.AppendUvarint(hdr, uint64(len(programID)))
		hdr = append(hdr, programID...)
		if _, err := f.Write(hdr); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("journal: write wal header: %w", err)
		}
	}
	return f, nil
}

// readWALHeader returns the program ID recorded in a journal header.
func readWALHeader(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	buf := make([]byte, len(walMagic)+binary.MaxVarintLen64+256)
	n, err := f.Read(buf)
	if err != nil && n == 0 {
		return "", err
	}
	id, _, err := splitWALHeader(buf[:n])
	return id, err
}

// splitWALHeader validates the header and returns (programID, records).
func splitWALHeader(data []byte) (string, []byte, error) {
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return "", nil, fmt.Errorf("%w: bad wal magic", ErrCorrupt)
	}
	rest := data[len(walMagic):]
	n, sz := binary.Uvarint(rest)
	if sz <= 0 || n > uint64(len(rest)-sz) {
		return "", nil, fmt.Errorf("%w: bad wal header", ErrCorrupt)
	}
	id := string(rest[sz : sz+int(n)])
	return id, rest[sz+int(n):], nil
}

// appendRecord frames one payload: uvarint length, payload, CRC32.
func appendRecord(buf, payload []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	return append(buf, crc[:]...)
}

// readRecord unframes the next record; ok is false on a torn or corrupt
// record (recovery truncates there).
func readRecord(data []byte) (payload, rest []byte, ok bool) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 || n > uint64(len(data)-sz) {
		return nil, nil, false
	}
	body := data[sz:]
	if uint64(len(body)) < n+4 {
		return nil, nil, false
	}
	payload = body[:n]
	want := binary.LittleEndian.Uint32(body[n : n+4])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, nil, false
	}
	return payload, body[n+4:], true
}
