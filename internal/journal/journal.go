// Package journal is the hive's persistence subsystem: an append-only
// write-ahead journal of ingest operations plus periodic snapshots, giving
// the collective knowledge the paper's whole premise depends on — execution
// trees, failure signatures, fixes, and proofs grow monotonically as the
// fleet runs — a life beyond one hive process.
//
// # Durability model
//
// State is persisted per program: every program has its own journal file
// (write-ahead log of replayable operations, see Op) and its own snapshot
// chain. A mutation is appended to the program's journal *before* it is
// applied to the in-memory hive, so an acknowledged submission is always
// either in a snapshot or in the journal suffix after it. Recovery loads the
// newest snapshot chain and replays the journal suffix through the same
// apply path live ingestion uses; snapshot + suffix reconstructs the hive
// exactly — including the execution tree's incremental frontier index,
// which exectree.Decode rebuilds.
//
// # Snapshot chains
//
// A checkpoint is either *full* (Checkpoint: the program's complete state,
// O(tree)) or *incremental* (CheckpointDelta: only the state that changed
// since the previous checkpoint, O(changes)). Each checkpoint bumps the
// program's generation and rotates its journal, so the on-disk state is
// always one base snapshot, zero or more delta segments in generation
// order, and the current journal:
//
//	snap-<key>-<B>.snap  delta-<key>-<B+1>.snap ... delta-<key>-<T>.snap  wal-<key>-<T>.log
//
// Recovery merges base + deltas in order (LoadChain), then replays the
// journal. A full checkpoint compacts the chain back to a single base and
// deletes everything older. Snapshots rotate atomically: the new file is
// written to a temp name, fsynced, and renamed before the journal is
// rotated and superseded generations are deleted, so a crash at any point
// leaves a recoverable chain on disk. Journal records are CRC-framed; a
// torn tail from a crash mid-append is detected and truncated on recovery —
// the torn record was never applied (append happens before apply) and never
// acknowledged.
//
// # Group commit
//
// By default every Append is its own write (+fsync) syscall. With group
// commit enabled (Options.GroupWindow / Options.MaxBatch) a per-program
// committer goroutine coalesces concurrent appends into one buffered write
// and one fsync; callers still block until their own record is durable, so
// the write-ahead contract is unchanged — only the syscall count per record
// drops. This is the aggregation-node batching move the sensor-network
// aggregation literature keeps rediscovering: the aggregator is the
// throughput bottleneck, and amortizing its per-message cost is what
// restores scale.
//
// By default writes go straight to the operating system without fsync:
// state survives process death (kill -9, panics, OOM) but a machine-level
// crash can lose the last instants of un-synced journal. Options.Fsync
// forces an fsync per flushed group for power-failure durability.
//
// # Privacy invariant
//
// The journal stores trace batches exactly as they were submitted — *after*
// the pod-side privacy filter ran. Raw end-user inputs reach the journal
// only when a pod explicitly ships at trace.PrivacyRaw; at the hashed,
// bucketed, and opaque levels the durable state contains only the filtered
// forms. Persisted aggregates are exactly where privacy-preserving schemes
// historically leak, so the journal deliberately never re-derives or widens
// what the pods chose to disclose.
package journal

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrCorrupt is wrapped by malformed journal or snapshot data.
var ErrCorrupt = errors.New("journal: corrupt")

// Options configures a Store.
type Options struct {
	// Fsync forces an fsync after every journal flush (one per append, or
	// one per coalesced group with group commit enabled). Off by default:
	// appends then survive process death but not power loss.
	Fsync bool

	// GroupWindow is the maximum time the group committer waits after a
	// record arrives for more records to coalesce before flushing. Zero
	// flushes as soon as the committer is free — concurrent appends still
	// coalesce naturally while a previous flush (typically its fsync) is in
	// flight, which is the sweet spot on fast disks.
	GroupWindow time.Duration

	// MaxBatch caps the records flushed as one group; a full group flushes
	// immediately, without waiting out GroupWindow. Group commit is enabled
	// when MaxBatch > 1 or GroupWindow > 0; MaxBatch defaults to 256 when
	// enabled and left zero.
	MaxBatch int

	// CommitWorkers caps the store-wide committer pool (default 32).
	// Committers are shared across programs: a worker pops the next
	// program with pending records, flushes one group for it, and moves
	// on, so a fleet of thousands of mostly-cold programs costs at most
	// CommitWorkers goroutines — not one per program — while a few hot
	// programs still get concurrent (overlapping) fsyncs up to the cap.
	CommitWorkers int

	// FS routes every file operation the store performs (journals,
	// snapshots, tether markers). Nil uses the os package directly; tests
	// inject internal/faultfs here to exercise the durability layers under
	// torn writes, ENOSPC, failed fsyncs, and crash points.
	FS FS
}

// grouped reports whether the options enable the group committer.
func (o Options) grouped() bool { return o.MaxBatch > 1 || o.GroupWindow > 0 }

// Store manages the snapshot and journal files for many programs inside one
// data directory. All methods are safe for concurrent use; operations on
// distinct programs never contend.
type Store struct {
	dir        string
	fs         FS
	fsync      bool
	window     time.Duration
	maxBatch   int
	grouped    bool
	maxWorkers int

	mu    sync.Mutex
	progs map[string]*progLog // program ID -> log state
	byKey map[string]string   // filename key -> program ID
	// fetcher, when set, rehydrates a pruned (archived) snapshot chain on
	// demand: LoadChain on a tethered program fetches the missing base and
	// delta files from the archive tier and writes them back locally.
	fetcher func(programID string) (*ChainExport, error)

	// Committer pool state: programs with pending records queue here, and
	// up to maxWorkers committer goroutines (spawned on demand, exiting
	// when the queue drains) pop them round-robin. Guarded by commitMu,
	// never held across I/O.
	commitMu    sync.Mutex
	commitQueue []*progLog
	workers     int
}

// progLog is one program's on-disk state: the snapshot chain (base
// generation plus delta generations), the current journal generation, and
// the group-commit queue.
type progLog struct {
	mu      sync.Mutex
	id      string
	key     string
	gen     uint64 // current journal generation (= newest checkpoint gen)
	baseGen uint64 // newest full-snapshot generation
	hasBase bool
	deltas  []uint64 // delta generations in (baseGen, gen], ascending
	f       File     // current journal, opened lazily for append
	size    int64    // current journal length (the truncate point after a torn write)
	wbuf    []byte   // reusable group write buffer
	// broken latches a torn write that could not be truncated away: further
	// appends would land beyond the tear and be silently discarded by
	// recovery's truncate-at-first-bad-record, so they are refused instead.
	broken bool
	// appends counts records written to the current journal generation
	// (including any found on disk at scan/replay time); checkpoints reset
	// it. The hive uses it to skip checkpoints for quiescent programs.
	appends uint64
	// tethered marks a chain whose base/delta files were pruned to the
	// archive tier (a tether marker stands in for them on disk); loads
	// rehydrate through the store's fetcher before reading.
	tethered bool
	// replayed records that Replay ran (or that the program is fresh), so
	// appends cannot clobber an un-replayed torn tail.
	replayed bool
	// scratch is the op-payload encode buffer, owned by whoever holds the
	// flush (pl.mu for direct appends; the flushing claim for committers).
	scratch []byte

	// Group-commit queue: pending records awaiting a committer. Guarded by
	// pendMu (never held across I/O). queued and flushing are the store
	// committer pool's claims on this program, guarded by the store's
	// commitMu: queued means the program sits in the commit queue, flushing
	// means a worker is mid-flush (a program is never flushed by two
	// workers at once, so its records land in arrival order).
	pendMu  sync.Mutex
	pending []*pendingAppend

	queued   bool
	flushing bool
}

// pendingAppend is one enqueued operation and its caller's completion
// channel. The op is encoded by the committer, straight into the group
// buffer's scratch — the caller's Append blocks until delivery, so the op
// stays immutable for exactly as long as the committer needs it.
type pendingAppend struct {
	op   *Op
	done chan error
}

// donePool recycles completion channels (one send, one receive per use).
var donePool = sync.Pool{New: func() any { return make(chan error, 1) }}

const (
	walMagic  = "SBWAL1\n"
	snapMagic = "SBSNAP1\n"
)

// Open opens (creating if needed) a data directory and indexes the
// snapshot/journal files already in it.
func Open(dir string, opts Options) (*Store, error) {
	vfs := opts.FS
	if vfs == nil {
		vfs = OSFS()
	}
	if err := vfs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", dir, err)
	}
	s := &Store{
		dir:        dir,
		fs:         vfs,
		fsync:      opts.Fsync,
		window:     opts.GroupWindow,
		maxBatch:   opts.MaxBatch,
		grouped:    opts.grouped(),
		maxWorkers: opts.CommitWorkers,
		progs:      make(map[string]*progLog),
		byKey:      make(map[string]string),
	}
	if s.grouped && s.maxBatch <= 1 {
		s.maxBatch = 256
	}
	if s.maxWorkers <= 0 {
		// Committers are fsync-bound, not CPU-bound: a generous cap keeps
		// distinct programs' fsyncs overlapping (the filesystem coalesces
		// concurrent journal commits) while still bounding a fleet of
		// thousands of programs to a fixed goroutine budget.
		s.maxWorkers = 32
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// fileKey derives the filename-safe key for a program ID.
func fileKey(programID string) string {
	sum := sha256.Sum256([]byte(programID))
	return hex.EncodeToString(sum[:8])
}

// parseName splits "wal-<key>-<gen>.log", "snap-<key>-<gen>.snap", and
// "delta-<key>-<gen>.snap".
func parseName(name string) (kind, key string, gen uint64, ok bool) {
	var ext string
	switch {
	case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
		kind, ext = "wal", ".log"
	case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
		kind, ext = "snap", ".snap"
	case strings.HasPrefix(name, "delta-") && strings.HasSuffix(name, ".snap"):
		kind, ext = "delta", ".snap"
	default:
		return "", "", 0, false
	}
	body := strings.TrimSuffix(name[len(kind)+1:], ext)
	i := strings.LastIndexByte(body, '-')
	if i <= 0 {
		return "", "", 0, false
	}
	g, err := strconv.ParseUint(body[i+1:], 10, 64)
	if err != nil {
		return "", "", 0, false
	}
	return kind, body[:i], g, true
}

func (s *Store) walPath(key string, gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%s-%d.log", key, gen))
}

func (s *Store) snapPath(key string, gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("snap-%s-%d.snap", key, gen))
}

func (s *Store) deltaPath(key string, gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("delta-%s-%d.snap", key, gen))
}

// scan indexes existing files: per program, the newest full snapshot is the
// chain base, delta generations above it extend the chain, and the current
// generation is the highest of any file; stale older generations are
// removed.
func (s *Store) scan() error {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("journal: scan: %w", err)
	}
	type genState struct {
		snapGen, walGen uint64
		hasSnap, hasWal bool
		deltas          []uint64
	}
	seen := make(map[string]*genState)
	tethers := make(map[string]*tetherMarker)
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			_ = s.fs.Remove(filepath.Join(s.dir, name)) // torn snapshot write
			continue
		}
		if key, ok := parseTetherName(name); ok {
			if tm, err := s.readTether(key); err == nil {
				tethers[key] = tm
			} else {
				// An unreadable tether marker is dead weight: the chain it
				// described is unreachable either way, so drop it rather than
				// letting it shadow a future chain at the same key.
				_ = s.fs.Remove(filepath.Join(s.dir, name))
			}
			continue
		}
		kind, key, gen, ok := parseName(name)
		if !ok {
			continue
		}
		g := seen[key]
		if g == nil {
			g = &genState{}
			seen[key] = g
		}
		switch kind {
		case "snap":
			if !g.hasSnap || gen > g.snapGen {
				g.snapGen, g.hasSnap = gen, true
			}
		case "wal":
			if !g.hasWal || gen > g.walGen {
				g.walGen, g.hasWal = gen, true
			}
		case "delta":
			g.deltas = append(g.deltas, gen)
		}
	}
	// Pruned chains: the tether marker stands in for the base and delta
	// files it pruned. A local base at or above the tethered one supersedes
	// the marker (a later full checkpoint compacted the chain locally).
	for key, tm := range tethers {
		g := seen[key]
		if g == nil {
			g = &genState{}
			seen[key] = g
		}
		if g.hasSnap && g.snapGen >= tm.BaseGen {
			_ = s.fs.Remove(s.tetherPath(key))
			delete(tethers, key)
			continue
		}
		g.snapGen, g.hasSnap = tm.BaseGen, true
		g.deltas = append(g.deltas, tm.Deltas...)
	}
	for key, g := range seen {
		gen := g.walGen
		if g.hasSnap && g.snapGen > gen {
			gen = g.snapGen
		}
		var deltas []uint64
		for _, dg := range g.deltas {
			if dg > gen {
				gen = dg
			}
		}
		sort.Slice(g.deltas, func(i, j int) bool { return g.deltas[i] < g.deltas[j] })
		for _, dg := range g.deltas {
			if dg > g.snapGen || !g.hasSnap {
				if n := len(deltas); n > 0 && deltas[n-1] == dg {
					continue // a tethered delta that is also still local
				}
				deltas = append(deltas, dg)
			}
		}
		pl := &progLog{
			key:      key,
			gen:      gen,
			baseGen:  g.snapGen,
			hasBase:  g.hasSnap,
			deltas:   deltas,
			tethered: tethers[key] != nil,
		}
		id, err := s.programIDFor(pl, tethers[key])
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				// A probe hit a transient I/O error (EIO on an intact file):
				// the chain may be perfectly valid, so refuse to open the
				// store rather than quarantine acked state off a flaky read.
				return fmt.Errorf("journal: scan: %w", err)
			}
			// Nothing under this key is readable — every probe found the
			// journal header, snapshot, delta, and tether missing or corrupt.
			// Acked state always leaves at least one of those durably intact,
			// so these remains are a creation that never completed; quarantine
			// them instead of refusing to open the whole store.
			s.removeKeyFiles(key)
			continue
		}
		pl.id = id
		s.progs[id] = pl
		s.byKey[key] = id
		s.cleanStale(pl)
	}
	return nil
}

// programIDFor recovers the program ID recorded in a key's newest journal,
// base snapshot, delta header, or tether marker (one of them exists at the
// current chain by construction). The returned error wraps ErrCorrupt only
// when every probe found its file missing, empty, or corrupt — the scan's
// quarantine condition; a transient read failure (EIO on an intact file)
// propagates as-is so the caller refuses to open rather than deletes.
func (s *Store) programIDFor(pl *progLog, tm *tetherMarker) (string, error) {
	var transient error
	probeFailed := func(err error) {
		if transient == nil && !errors.Is(err, os.ErrNotExist) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, io.EOF) {
			transient = err
		}
	}
	id, err := readWALHeader(s.fs, s.walPath(pl.key, pl.gen))
	if err == nil {
		return id, nil
	}
	probeFailed(err)
	if pl.hasBase {
		snap, err := readSnapshotFile(s.fs, s.snapPath(pl.key, pl.baseGen))
		if err == nil {
			return snap.ProgramID, nil
		}
		probeFailed(err)
	}
	if n := len(pl.deltas); n > 0 {
		snap, err := readSnapshotFile(s.fs, s.deltaPath(pl.key, pl.deltas[n-1]))
		if err == nil {
			return snap.ProgramID, nil
		}
		probeFailed(err)
	}
	if tm != nil && tm.ProgramID != "" {
		return tm.ProgramID, nil
	}
	if transient != nil {
		return "", fmt.Errorf("journal: identify key %s: %w", pl.key, transient)
	}
	return "", fmt.Errorf("%w: no readable header for key %s", ErrCorrupt, pl.key)
}

// removeKeyFiles deletes every chain file under a key whose identity is
// unrecoverable (scan quarantine).
func (s *Store) removeKeyFiles(key string) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if _, k, _, ok := parseName(e.Name()); ok && k == key {
			_ = s.fs.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
}

// cleanStale removes files superseded by the program's current chain:
// snapshots and deltas below the base, deltas above the base that fell out
// of the chain, and journals below the current generation.
func (s *Store) cleanStale(pl *progLog) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	inChain := make(map[uint64]bool, len(pl.deltas))
	for _, dg := range pl.deltas {
		inChain[dg] = true
	}
	for _, e := range entries {
		kind, k, g, ok := parseName(e.Name())
		if !ok || k != pl.key {
			continue
		}
		stale := false
		switch kind {
		case "wal":
			stale = g < pl.gen
		case "snap":
			stale = !pl.hasBase || g < pl.baseGen
		case "delta":
			stale = !inChain[g]
		}
		if stale {
			_ = s.fs.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
}

// Programs returns the IDs of every program with persisted state, sorted.
func (s *Store) Programs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.progs))
	for id := range s.progs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// log resolves (creating if absent) a program's log state.
func (s *Store) log(programID string) *progLog {
	s.mu.Lock()
	defer s.mu.Unlock()
	pl, ok := s.progs[programID]
	if !ok {
		pl = &progLog{id: programID, key: fileKey(programID), gen: 0, replayed: true}
		s.progs[programID] = pl
		s.byKey[pl.key] = programID
	}
	return pl
}

// LoadSnapshot returns the program's newest *base* snapshot, or nil when
// none exists, without touching the delta segments. Callers recovering
// full state should use LoadChain.
func (s *Store) LoadSnapshot(programID string) (*ProgramSnapshot, error) {
	pl := s.log(programID)
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return s.loadBaseLocked(pl, programID)
}

// loadBaseLocked reads a program's base snapshot (nil when none exists),
// rehydrating a pruned chain from the archive tier first.
func (s *Store) loadBaseLocked(pl *progLog, programID string) (*ProgramSnapshot, error) {
	if !pl.hasBase {
		return nil, nil
	}
	if pl.tethered {
		if err := s.rehydrateLocked(pl, programID); err != nil {
			return nil, err
		}
	}
	base, err := readSnapshotFile(s.fs, s.snapPath(pl.key, pl.baseGen))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if base.ProgramID != programID {
		return nil, fmt.Errorf("%w: snapshot for %q found under key of %q", ErrCorrupt, base.ProgramID, programID)
	}
	return base, nil
}

// LoadChain returns the program's snapshot chain: the base full snapshot
// (nil when the program has never been fully checkpointed) and the delta
// segments layered over it, in application order.
func (s *Store) LoadChain(programID string) (*ProgramSnapshot, []*ProgramSnapshot, error) {
	pl := s.log(programID)
	pl.mu.Lock()
	defer pl.mu.Unlock()
	base, err := s.loadBaseLocked(pl, programID)
	if base == nil || err != nil {
		return nil, nil, err
	}
	deltas := make([]*ProgramSnapshot, 0, len(pl.deltas))
	for _, dg := range pl.deltas {
		d, err := readSnapshotFile(s.fs, s.deltaPath(pl.key, dg))
		if err != nil {
			return nil, nil, err
		}
		if d.ProgramID != programID {
			return nil, nil, fmt.Errorf("%w: delta for %q found under key of %q", ErrCorrupt, d.ProgramID, programID)
		}
		deltas = append(deltas, d)
	}
	return base, deltas, nil
}

// Replay feeds every journaled operation after the newest checkpoint to
// apply, in append order. A torn tail (crash mid-append) is truncated so
// subsequent appends extend a valid journal. Replay must run before the
// first Append for a recovered program; it returns the number of
// operations replayed.
func (s *Store) Replay(programID string, apply func(*Op) error) (int, error) {
	pl := s.log(programID)
	pl.mu.Lock()
	defer pl.mu.Unlock()
	path := s.walPath(pl.key, pl.gen)
	data, err := s.fs.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		pl.replayed = true
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("journal: replay %s: %w", programID, err)
	}
	id, body, err := splitWALHeader(data)
	if err != nil {
		// Torn header: the creation write never completed, so no record in
		// this file was ever acked. Reset it to empty; the next append
		// writes a fresh header.
		if terr := s.fs.Truncate(path, 0); terr != nil {
			return 0, fmt.Errorf("journal: reset torn wal header of %s: %w", programID, terr)
		}
		pl.replayed = true
		pl.appends = 0
		return 0, nil
	}
	if id != programID {
		return 0, fmt.Errorf("%w: journal for %q found under key of %q", ErrCorrupt, id, programID)
	}
	n := 0
	valid := len(data) - len(body)
	for len(body) > 0 {
		payload, rest, ok := readRecord(body)
		if !ok {
			break // torn tail: never applied, never acked
		}
		op, err := decodeOp(payload)
		if err != nil {
			break // treat undecodable tail like a torn record
		}
		if err := apply(op); err != nil {
			return n, fmt.Errorf("journal: replay %s op %d: %w", programID, n, err)
		}
		n++
		valid += len(body) - len(rest)
		body = rest
	}
	if valid < len(data) {
		if err := s.fs.Truncate(path, int64(valid)); err != nil {
			return n, fmt.Errorf("journal: truncate torn tail of %s: %w", programID, err)
		}
	}
	pl.replayed = true
	pl.appends = uint64(n)
	return n, nil
}

// AppendsSinceCheckpoint reports how many records sit in the program's
// current journal generation — the replay debt a checkpoint would retire.
// Zero means a checkpoint would capture nothing the chain doesn't already
// hold.
func (s *Store) AppendsSinceCheckpoint(programID string) uint64 {
	pl := s.log(programID)
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.appends
}

// Append journals one operation for the program. The record is on disk (in
// the OS, fsynced with Options.Fsync) when Append returns; callers apply
// the operation only after a successful append. With group commit enabled
// the record may share its write and fsync with concurrent appends, but the
// call still blocks until the record's group is durable.
func (s *Store) Append(programID string, op *Op) error {
	pl := s.log(programID)
	if !s.grouped {
		pl.mu.Lock()
		defer pl.mu.Unlock()
		return s.appendLocked(pl, op)
	}
	p := &pendingAppend{op: op, done: donePool.Get().(chan error)}
	pl.pendMu.Lock()
	pl.pending = append(pl.pending, p)
	pl.pendMu.Unlock()
	s.enqueueCommit(pl)
	err := <-p.done
	donePool.Put(p.done)
	return err
}

// enqueueCommit registers a program with pending records in the store-wide
// commit queue and makes sure a committer will see it: a worker is spawned
// unless the pool is at its cap. A program already queued — or currently
// being flushed, in which case the flushing worker re-checks its pending
// queue before releasing the claim — is not re-added.
func (s *Store) enqueueCommit(pl *progLog) {
	s.commitMu.Lock()
	if !pl.queued && !pl.flushing {
		pl.queued = true
		s.commitQueue = append(s.commitQueue, pl)
	}
	spawn := s.workers < s.maxWorkers && len(s.commitQueue) > 0
	if spawn {
		s.workers++
	}
	s.commitMu.Unlock()
	if spawn {
		go s.commitWorker()
	}
}

// commitWorker is one committer in the store's shared pool: it pops the
// next program with pending records, cuts a group of up to maxBatch of
// them, writes the group as one buffered write plus (with Options.Fsync)
// one fsync, and delivers the result to every blocked appender — then moves
// to the next program. Workers exit when the queue drains; the next Append
// restarts one. Sharing the pool across programs is what keeps a fleet of
// thousands of cold programs at a handful of goroutines, while distinct hot
// programs still flush (and fsync) concurrently up to the pool cap.
func (s *Store) commitWorker() {
	for {
		s.commitMu.Lock()
		if len(s.commitQueue) == 0 {
			s.workers--
			s.commitMu.Unlock()
			return
		}
		pl := s.commitQueue[0]
		s.commitQueue = s.commitQueue[1:]
		pl.queued = false
		pl.flushing = true
		alone := len(s.commitQueue) == 0
		s.commitMu.Unlock()

		if s.window > 0 {
			// Flush window: give concurrent appenders a beat to coalesce,
			// unless a full group is already waiting or other programs are
			// queued behind this one (their latency would pay for our
			// coalescing).
			pl.pendMu.Lock()
			n := len(pl.pending)
			pl.pendMu.Unlock()
			if n < s.maxBatch && alone {
				// Pure durability pacing: the wait bounds commit latency and
				// never feeds journaled or simulated state, so determinism
				// (replay ≡ live) is unaffected by how long it actually takes.
				//lint:allow wallclock group-commit flush window is pacing only; no journaled or simulated state derives from the clock
				time.Sleep(s.window)
			}
		} else {
			// No timed window: yield once so appenders already woken by the
			// previous group's delivery get to enqueue before this group is
			// cut. A scheduler pass costs nanoseconds and routinely doubles
			// the records per fsync under contention; a timer would cost
			// its quantization (~1ms under load) instead.
			runtime.Gosched()
		}

		for {
			pl.pendMu.Lock()
			var batch []*pendingAppend
			if len(pl.pending) > s.maxBatch {
				batch = pl.pending[:s.maxBatch:s.maxBatch]
				pl.pending = pl.pending[s.maxBatch:]
			} else {
				batch = pl.pending
				pl.pending = nil
			}
			pl.pendMu.Unlock()
			if len(batch) == 0 {
				// Release the flush claim with a final pending re-check
				// under commitMu: an append that slipped in after the last
				// cut but saw flushing still set (and so did not queue the
				// program) is re-queued here instead of stranding until the
				// next append.
				s.commitMu.Lock()
				pl.pendMu.Lock()
				if len(pl.pending) > 0 && !pl.queued {
					pl.queued = true
					s.commitQueue = append(s.commitQueue, pl)
				}
				pl.flushing = false
				pl.pendMu.Unlock()
				s.commitMu.Unlock()
				break
			}
			err := s.flushGroup(pl, batch)
			for _, p := range batch {
				p.done <- err
			}
		}
	}
}

// flushGroup writes one group of records as a single write (+fsync) under
// the program's file lock, encoding each op straight into the reused group
// buffer — no per-record allocations.
func (s *Store) flushGroup(pl *progLog, batch []*pendingAppend) error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	buf := pl.wbuf[:0]
	for _, p := range batch {
		pl.scratch = appendOp(pl.scratch[:0], p.op)
		buf = appendRecord(buf, pl.scratch)
	}
	pl.wbuf = buf[:0]
	if err := s.writeFramesLocked(pl, buf); err != nil {
		return err
	}
	pl.appends += uint64(len(batch))
	return nil
}

func (s *Store) appendLocked(pl *progLog, op *Op) error {
	pl.scratch = appendOp(pl.scratch[:0], op)
	pl.wbuf = appendRecord(pl.wbuf[:0], pl.scratch)
	if err := s.writeFramesLocked(pl, pl.wbuf); err != nil {
		pl.wbuf = pl.wbuf[:0]
		return err
	}
	pl.wbuf = pl.wbuf[:0]
	pl.appends++
	return nil
}

// writeFramesLocked lands one or more framed records at the end of the
// program's journal, durably (per Options.Fsync). A failed or unsynced
// write is rolled back by truncating to the last good record boundary —
// otherwise later appends would be acknowledged *beyond* torn bytes, and
// recovery's truncate-at-first-bad-record would silently discard them. If
// the rollback itself fails the journal is poisoned: further appends are
// refused until a checkpoint rotates to a fresh generation.
func (s *Store) writeFramesLocked(pl *progLog, buf []byte) error {
	if pl.broken {
		return fmt.Errorf("journal: %s has an unremovable torn tail; appends disabled until checkpoint", pl.id)
	}
	if !pl.replayed {
		return fmt.Errorf("journal: append to %s before Replay", pl.id)
	}
	if pl.f == nil {
		f, size, err := openWAL(s.fs, s.walPath(pl.key, pl.gen), pl.id)
		if err != nil {
			return err
		}
		pl.f = f
		pl.size = size
	}
	if _, err := pl.f.Write(buf); err != nil {
		s.rollbackTornLocked(pl)
		return fmt.Errorf("journal: append %s: %w", pl.id, err)
	}
	if s.fsync {
		if err := pl.f.Sync(); err != nil {
			// The bytes may sit in the page cache unsynced: the caller will
			// reject the batch, so the record must not replay either.
			s.rollbackTornLocked(pl)
			return fmt.Errorf("journal: sync %s: %w", pl.id, err)
		}
	}
	pl.size += int64(len(buf))
	return nil
}

// rollbackTornLocked cuts the journal back to the last good record
// boundary after a failed write, poisoning the generation if the cut
// fails.
func (s *Store) rollbackTornLocked(pl *progLog) {
	if err := pl.f.Truncate(pl.size); err != nil {
		pl.broken = true
	}
}

// Checkpoint installs a new *full* snapshot for snap.ProgramID, compacting
// its chain: the snapshot is written to a temp file, fsynced, and atomically
// renamed; only then is a fresh journal generation started and every
// superseded file (previous base, delta segments, old journal) deleted. The
// caller must guarantee no Append for this program runs concurrently (the
// hive holds its per-program checkpoint gate).
func (s *Store) Checkpoint(snap *ProgramSnapshot) error {
	pl := s.log(snap.ProgramID)
	pl.mu.Lock()
	defer pl.mu.Unlock()

	next := pl.gen + 1
	if err := writeSnapshotFile(s.fs, s.snapPath(pl.key, next), snap); err != nil {
		return err
	}
	// New base is durable; switch appends over and drop the old chain.
	if pl.f != nil {
		_ = pl.f.Close()
		pl.f = nil
	}
	_ = s.fs.Remove(s.walPath(pl.key, pl.gen))
	if pl.hasBase {
		_ = s.fs.Remove(s.snapPath(pl.key, pl.baseGen))
	}
	for _, dg := range pl.deltas {
		_ = s.fs.Remove(s.deltaPath(pl.key, dg))
	}
	if pl.tethered {
		// The fresh full base supersedes the whole archived chain: the
		// local directory is self-sufficient again.
		_ = s.fs.Remove(s.tetherPath(pl.key))
		pl.tethered = false
	}
	pl.gen = next
	pl.baseGen = next
	pl.hasBase = true
	pl.deltas = nil
	pl.replayed = true
	pl.appends = 0
	pl.broken = false // a poisoned generation was rotated away
	return nil
}

// CheckpointDelta installs an *incremental* snapshot: a delta segment
// holding only the state that changed since the previous checkpoint,
// layered over the existing chain, and rotates the journal (whose ops the
// delta captures). The write is atomic like a full checkpoint's; the caller
// holds the same no-concurrent-appends gate. Requires an existing base
// snapshot — the first checkpoint for a program must be full.
func (s *Store) CheckpointDelta(snap *ProgramSnapshot) error {
	pl := s.log(snap.ProgramID)
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if !pl.hasBase {
		return fmt.Errorf("journal: delta checkpoint for %s without a base snapshot", snap.ProgramID)
	}
	next := pl.gen + 1
	if err := writeSnapshotFile(s.fs, s.deltaPath(pl.key, next), snap); err != nil {
		return err
	}
	if pl.f != nil {
		_ = pl.f.Close()
		pl.f = nil
	}
	_ = s.fs.Remove(s.walPath(pl.key, pl.gen))
	pl.deltas = append(pl.deltas, next)
	pl.gen = next
	pl.replayed = true
	pl.appends = 0
	pl.broken = false // a poisoned generation was rotated away
	return nil
}

// ChainLength returns the number of delta segments layered over the
// program's base snapshot (0 when compact or never checkpointed).
func (s *Store) ChainLength(programID string) int {
	pl := s.log(programID)
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return len(pl.deltas)
}

// Close closes every open journal file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, pl := range s.progs {
		pl.mu.Lock()
		if pl.f != nil {
			if err := pl.f.Close(); err != nil && first == nil {
				first = err
			}
			pl.f = nil
		}
		pl.mu.Unlock()
	}
	return first
}

// --- journal file helpers ---

// openWAL opens (creating with a header if new) a journal for appending,
// returning its current length. O_APPEND keeps writes landing at the true
// end of file even after a recovery truncated a torn tail.
func openWAL(vfs FS, path, programID string) (File, int64, error) {
	// A header that never finished landing (the creation write torn by a
	// crash or injected fault) means nothing in this file was ever acked —
	// a failed header write fails the append that triggered it. Reset such
	// a file to empty rather than appending records after the torn header,
	// which would ack writes a recovery scan could never attribute.
	switch id, err := readWALHeader(vfs, path); {
	case err == nil && id != programID:
		return nil, 0, fmt.Errorf("%w: journal for %q found under key of %q", ErrCorrupt, id, programID)
	case err != nil && errors.Is(err, ErrCorrupt):
		if terr := vfs.Truncate(path, 0); terr != nil {
			return nil, 0, fmt.Errorf("journal: reset torn wal header: %w", terr)
		}
	}
	f, err := vfs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, 0, fmt.Errorf("journal: stat wal: %w", err)
	}
	size := st.Size()
	if size == 0 {
		hdr := []byte(walMagic)
		hdr = binary.AppendUvarint(hdr, uint64(len(programID)))
		hdr = append(hdr, programID...)
		if _, err := f.Write(hdr); err != nil {
			_ = f.Close()
			return nil, 0, fmt.Errorf("journal: write wal header: %w", err)
		}
		size = int64(len(hdr))
	}
	return f, size, nil
}

// readWALHeader returns the program ID recorded in a journal header.
func readWALHeader(vfs FS, path string) (string, error) {
	f, err := vfs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return "", err
	}
	defer f.Close()
	buf := make([]byte, len(walMagic)+binary.MaxVarintLen64+256)
	n, err := f.Read(buf)
	if err != nil && n == 0 {
		return "", err
	}
	id, _, err := splitWALHeader(buf[:n])
	return id, err
}

// splitWALHeader validates the header and returns (programID, records).
func splitWALHeader(data []byte) (string, []byte, error) {
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return "", nil, fmt.Errorf("%w: bad wal magic", ErrCorrupt)
	}
	rest := data[len(walMagic):]
	n, sz := binary.Uvarint(rest)
	if sz <= 0 || n > uint64(len(rest)-sz) {
		return "", nil, fmt.Errorf("%w: bad wal header", ErrCorrupt)
	}
	id := string(rest[sz : sz+int(n)])
	return id, rest[sz+int(n):], nil
}

// appendRecord frames one payload: uvarint length, payload, CRC32.
func appendRecord(buf, payload []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	return append(buf, crc[:]...)
}

// readRecord unframes the next record; ok is false on a torn or corrupt
// record (recovery truncates there).
func readRecord(data []byte) (payload, rest []byte, ok bool) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 || n > uint64(len(data)-sz) {
		return nil, nil, false
	}
	body := data[sz:]
	if uint64(len(body)) < n+4 {
		return nil, nil, false
	}
	payload = body[:n]
	want := binary.LittleEndian.Uint32(body[n : n+4])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, nil, false
	}
	return payload, body[n+4:], true
}
