package journal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/exectree"
)

// opVersion is bumped on any journal-incompatible change to the op
// encoding.
const opVersion = 1

// Kind discriminates journaled operations.
type Kind uint8

// Journaled operation kinds. Together they cover every mutation of durable
// hive state: trace ingestion, fix synthesis outcomes, proof attempts (with
// the evidence the prover merged), and infeasibility certificates.
const (
	// OpBatch is one ingested trace batch (encoded post-privacy traces).
	// Session/Seq are set for deduplicated wire submissions so recovery
	// also rebuilds the exactly-once dedup table.
	OpBatch Kind = iota + 1
	// OpSynthesis records the single-flight synthesis outcome for a failure
	// signature: a minted fix (JSON) or, with an empty Fix, the repair lab.
	OpSynthesis
	// OpProof records one successful proof attempt: the proof document
	// (JSON, including the evidence paths the prover merged into the tree).
	OpProof
	// OpCert records one infeasibility certificate attached to the tree.
	OpCert
	// OpBatchColumnar is one ingested columnar trace batch: Raw holds the
	// canonical batch bytes (trace.BatchCodec encoding, program ID in the
	// batch header) — the write-once-bytes pipeline's journal leg.
	// Transport compression never reaches here: a batch that crossed the
	// wire DEFLATE-compressed is inflated before ingest, so Raw is always
	// the decompressed canonical payload, byte-identical to an uncompressed
	// submission of the same batch. Session/Seq as in OpBatch.
	OpBatchColumnar
)

// Op is one replayable journal operation. Exactly the fields for its Kind
// are set.
type Op struct {
	Kind Kind

	// OpBatch (Session/Seq shared with OpBatchColumnar).
	Session string
	Seq     uint64
	Traces  [][]byte

	// OpBatchColumnar: the verbatim wire-batch bytes.
	Raw []byte

	// OpSynthesis.
	Signature string
	Fix       []byte

	// OpProof.
	Proof []byte

	// OpCert.
	Prefix  []exectree.Edge
	Missing exectree.Edge
}

// encodeOp serializes an op (the record payload; framing and CRC are the
// journal file's concern).
func encodeOp(op *Op) []byte {
	return appendOp(nil, op)
}

// appendOp appends an op's payload encoding to buf — the zero-alloc form
// the append hot path uses with a reused scratch buffer.
func appendOp(buf []byte, op *Op) []byte {
	buf = append(buf, opVersion, byte(op.Kind))
	switch op.Kind {
	case OpBatch:
		buf = appendBytes(buf, []byte(op.Session))
		buf = binary.AppendUvarint(buf, op.Seq)
		buf = binary.AppendUvarint(buf, uint64(len(op.Traces)))
		for _, tr := range op.Traces {
			buf = appendBytes(buf, tr)
		}
	case OpBatchColumnar:
		buf = appendBytes(buf, []byte(op.Session))
		buf = binary.AppendUvarint(buf, op.Seq)
		buf = appendBytes(buf, op.Raw)
	case OpSynthesis:
		buf = appendBytes(buf, []byte(op.Signature))
		buf = appendBytes(buf, op.Fix)
	case OpProof:
		buf = appendBytes(buf, op.Proof)
	case OpCert:
		buf = binary.AppendUvarint(buf, uint64(len(op.Prefix)))
		for _, e := range op.Prefix {
			buf = appendEdge(buf, e)
		}
		buf = appendEdge(buf, op.Missing)
	}
	return buf
}

// decodeOp parses an op payload.
func decodeOp(data []byte) (*Op, error) {
	d := &opDecoder{buf: data}
	if v := d.byte(); v != opVersion {
		return nil, fmt.Errorf("%w: op version %d", ErrCorrupt, v)
	}
	op := &Op{Kind: Kind(d.byte())}
	switch op.Kind {
	case OpBatch:
		op.Session = string(d.bytes())
		op.Seq = d.uvarint()
		n := int(d.uvarint())
		if d.err == nil && n > len(data) {
			return nil, fmt.Errorf("%w: implausible batch count %d", ErrCorrupt, n)
		}
		for i := 0; i < n && d.err == nil; i++ {
			op.Traces = append(op.Traces, d.bytes())
		}
	case OpBatchColumnar:
		op.Session = string(d.bytes())
		op.Seq = d.uvarint()
		op.Raw = d.bytes()
	case OpSynthesis:
		op.Signature = string(d.bytes())
		op.Fix = d.bytes()
	case OpProof:
		op.Proof = d.bytes()
	case OpCert:
		n := int(d.uvarint())
		if d.err == nil && n > len(data) {
			return nil, fmt.Errorf("%w: implausible prefix length %d", ErrCorrupt, n)
		}
		for i := 0; i < n && d.err == nil; i++ {
			op.Prefix = append(op.Prefix, d.edge())
		}
		op.Missing = d.edge()
	default:
		return nil, fmt.Errorf("%w: unknown op kind %d", ErrCorrupt, op.Kind)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing op bytes", ErrCorrupt, len(data)-d.pos)
	}
	return op, nil
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func appendEdge(buf []byte, e exectree.Edge) []byte {
	v := uint64(e.ID) << 1
	if e.Taken {
		v |= 1
	}
	return binary.AppendUvarint(buf, v)
}

// opDecoder is a cursor over an encoded op that latches the first error.
type opDecoder struct {
	buf []byte
	pos int
	err error
}

func (d *opDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated op at offset %d", ErrCorrupt, d.pos)
	}
}

func (d *opDecoder) byte() byte {
	if d.err != nil || d.pos >= len(d.buf) {
		d.fail()
		return 0
	}
	b := d.buf[d.pos]
	d.pos++
	return b
}

func (d *opDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.pos += n
	return v
}

func (d *opDecoder) bytes() []byte {
	n := int(d.uvarint())
	if d.err != nil || n < 0 || d.pos+n > len(d.buf) {
		d.fail()
		return nil
	}
	b := append([]byte(nil), d.buf[d.pos:d.pos+n]...)
	d.pos += n
	return b
}

func (d *opDecoder) edge() exectree.Edge {
	v := d.uvarint()
	return exectree.Edge{ID: int32(v >> 1), Taken: v&1 == 1}
}
