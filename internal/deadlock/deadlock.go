// Package deadlock implements deadlock immunity in the style the paper
// cites ([16], Jula et al., "Deadlock immunity"): once a deadlock pattern
// has been observed anywhere in the pod fleet, its *signature* — the set of
// program positions and locks forming the wait cycle — is distributed to
// every pod, whose immunity gate then vetoes lock acquisitions that would
// re-instantiate the pattern, steering the schedule around the deadlock
// without changing program semantics.
package deadlock

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/prog"
	"repro/internal/trace"
)

// SignatureEdge is one position in a deadlock pattern: a lock acquisition
// site and the lock it acquires.
type SignatureEdge struct {
	PC     int32 `json:"pc"`
	LockID int32 `json:"lockId"`
}

// Signature identifies a deadlock pattern: the set of acquisition sites
// involved in the wait cycle, canonically ordered.
type Signature struct {
	Edges []SignatureEdge `json:"edges"`
}

// FromCycle extracts the signature from a detected deadlock cycle: for each
// waiting thread, the site (PC) where it blocked and the lock it wanted.
func FromCycle(cycle []prog.LockWait) Signature {
	edges := make([]SignatureEdge, len(cycle))
	for i, w := range cycle {
		edges[i] = SignatureEdge{PC: int32(w.PC), LockID: int32(w.Wants)}
	}
	s := Signature{Edges: edges}
	s.normalize()
	return s
}

// FromWaits extracts the signature from a trace-level deadlock report.
func FromWaits(waits []trace.DeadlockWait) Signature {
	edges := make([]SignatureEdge, len(waits))
	for i, w := range waits {
		edges[i] = SignatureEdge{PC: w.PC, LockID: w.Wants}
	}
	s := Signature{Edges: edges}
	s.normalize()
	return s
}

func (s *Signature) normalize() {
	sort.Slice(s.Edges, func(i, j int) bool {
		if s.Edges[i].PC != s.Edges[j].PC {
			return s.Edges[i].PC < s.Edges[j].PC
		}
		return s.Edges[i].LockID < s.Edges[j].LockID
	})
}

// Key returns a canonical string identity for deduplication.
func (s Signature) Key() string {
	parts := make([]string, len(s.Edges))
	for i, e := range s.Edges {
		parts[i] = fmt.Sprintf("%d:%d", e.PC, e.LockID)
	}
	return strings.Join(parts, ",")
}

// LockSet returns the set of lock ids the cycle waits on.
func (s Signature) LockSet() map[int]bool {
	out := make(map[int]bool, len(s.Edges))
	for _, e := range s.Edges {
		out[int(e.LockID)] = true
	}
	return out
}

// Gate is the pod-side immunity mechanism: a prog.LockGate plus a
// prog.Observer. For each known signature it serializes entry into the
// signature's lock set: a thread may acquire a lock belonging to the set
// only while no *other* thread holds any lock of that set. The wait cycle
// needs at least two threads simultaneously holding-and-wanting locks of the
// set, so serialization provably breaks it, at the cost of reduced
// parallelism on exactly the locks that deadlocked before — the trade
// Dimmunix [16] makes.
//
// A Gate must be installed as both Config.Gate and (via prog.MultiObserver)
// as an observer of the same machine, and must not be shared across
// machines.
type Gate struct {
	mu   sync.Mutex
	sigs []Signature
	// lockSets[i] is sigs[i]'s lock set.
	lockSets []map[int]bool
	// holders[i][tid] counts set-member locks held by tid.
	holders []map[int]int
	// Vetoes counts avoidance decisions (diagnostics / experiments).
	Vetoes int64
}

var (
	_ prog.LockGate = (*Gate)(nil)
	_ prog.Observer = (*Gate)(nil)
)

// NewGate creates a gate enforcing the given signatures.
func NewGate(sigs []Signature) *Gate {
	g := &Gate{sigs: append([]Signature(nil), sigs...)}
	g.lockSets = make([]map[int]bool, len(g.sigs))
	g.holders = make([]map[int]int, len(g.sigs))
	for i := range g.sigs {
		g.lockSets[i] = g.sigs[i].LockSet()
		g.holders[i] = make(map[int]int)
	}
	return g
}

// Signatures returns the enforced signatures.
func (g *Gate) Signatures() []Signature {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]Signature(nil), g.sigs...)
}

// Allow implements prog.LockGate.
func (g *Gate) Allow(tid, lockID, pc int, held []int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := range g.sigs {
		if !g.lockSets[i][lockID] {
			continue
		}
		for other, n := range g.holders[i] {
			if other != tid && n > 0 {
				g.Vetoes++
				return false
			}
		}
	}
	return true
}

// LockAcquire implements prog.Observer: track signature lock-set entry.
func (g *Gate) LockAcquire(tid, lockID, pc int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := range g.sigs {
		if g.lockSets[i][lockID] {
			g.holders[i][tid]++
		}
	}
}

// LockRelease implements prog.Observer: track signature lock-set exit.
func (g *Gate) LockRelease(tid, lockID, pc int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := range g.sigs {
		if g.lockSets[i][lockID] && g.holders[i][tid] > 0 {
			g.holders[i][tid]--
		}
	}
}

// Branch implements prog.Observer (no-op).
func (g *Gate) Branch(tid, branchID int, taken bool) {}

// Syscall implements prog.Observer (no-op).
func (g *Gate) Syscall(tid int, sysno, arg, ret int64) {}

// Schedule implements prog.Observer (no-op).
func (g *Gate) Schedule(tid int) {}
