package deadlock

import (
	"testing"

	"repro/internal/prog"
	"repro/internal/sched"
)

// buildDining builds the 2-lock deadlock program.
func buildDining() *prog.Program {
	b := prog.NewBuilder("dining2", 0).SetLocks(2)
	b.Thread()
	b.Lock(0).Yield().Lock(1).Unlock(1).Unlock(0).Halt()
	b.Thread()
	b.Lock(1).Yield().Lock(0).Unlock(0).Unlock(1).Halt()
	return b.MustBuild()
}

// alternating deterministically triggers the deadlock.
type alternating struct{ i int }

func (a *alternating) Pick(step int64, runnable []int) int {
	a.i++
	return runnable[a.i%len(runnable)]
}

func captureSignature(t *testing.T) Signature {
	t.Helper()
	p := buildDining()
	m, err := prog.NewMachine(p, prog.Config{Scheduler: &alternating{}})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Outcome != prog.OutcomeDeadlock {
		t.Fatalf("setup: outcome = %v, want deadlock", res.Outcome)
	}
	return FromCycle(res.DeadlockCycle)
}

func TestSignatureCanonical(t *testing.T) {
	a := Signature{Edges: []SignatureEdge{{PC: 8, LockID: 0}, {PC: 2, LockID: 1}}}
	b := Signature{Edges: []SignatureEdge{{PC: 2, LockID: 1}, {PC: 8, LockID: 0}}}
	a.normalize()
	b.normalize()
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
}

func TestGateImmunizesDeadlock(t *testing.T) {
	sig := captureSignature(t)
	p := buildDining()

	// Without the gate, the alternating schedule always deadlocks.
	m, err := prog.NewMachine(p, prog.Config{Scheduler: &alternating{}})
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res.Outcome != prog.OutcomeDeadlock {
		t.Fatalf("control run: outcome = %v", res.Outcome)
	}

	// With the gate installed as both gate and observer, the same schedule
	// completes.
	gate := NewGate([]Signature{sig})
	m2, err := prog.NewMachine(p, prog.Config{
		Scheduler: &alternating{},
		Gate:      gate,
		Observer:  gate,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := m2.Run()
	if res.Outcome != prog.OutcomeOK {
		t.Fatalf("immunized run: outcome = %v, want ok", res.Outcome)
	}
	if gate.Vetoes == 0 {
		t.Error("gate never intervened; immunity untested")
	}
}

func TestGateImmunizesAcrossRandomSchedules(t *testing.T) {
	sig := captureSignature(t)
	p := buildDining()

	deadlocksWithout, deadlocksWith := 0, 0
	for seed := uint64(0); seed < 200; seed++ {
		m, err := prog.NewMachine(p, prog.Config{Scheduler: sched.NewRandom(seed, 0.7)})
		if err != nil {
			t.Fatal(err)
		}
		if m.Run().Outcome == prog.OutcomeDeadlock {
			deadlocksWithout++
		}

		gate := NewGate([]Signature{sig})
		m2, err := prog.NewMachine(p, prog.Config{
			Scheduler: sched.NewRandom(seed, 0.7),
			Gate:      gate,
			Observer:  gate,
		})
		if err != nil {
			t.Fatal(err)
		}
		if m2.Run().Outcome == prog.OutcomeDeadlock {
			deadlocksWith++
		}
	}
	if deadlocksWithout == 0 {
		t.Fatal("control fleet never deadlocked; test is vacuous")
	}
	if deadlocksWith != 0 {
		t.Fatalf("immunized fleet deadlocked %d times (control: %d)", deadlocksWith, deadlocksWithout)
	}
}

func TestGateDoesNotBlockUnrelatedLocks(t *testing.T) {
	sig := captureSignature(t)
	// A single-threaded program using the same lock ids at different PCs
	// must be unaffected.
	p := prog.NewBuilder("unrelated", 0).SetLocks(2).
		Lock(0).Lock(1).Unlock(1).Unlock(0).Halt().MustBuild()
	gate := NewGate([]Signature{sig})
	m, err := prog.NewMachine(p, prog.Config{Gate: gate, Observer: gate})
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res.Outcome != prog.OutcomeOK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if gate.Vetoes != 0 {
		t.Errorf("gate vetoed %d unrelated acquisitions", gate.Vetoes)
	}
}

func TestThreeLockCycleImmunized(t *testing.T) {
	// Three threads, three locks, circular acquisition: a 3-cycle.
	build := func() *prog.Program {
		b := prog.NewBuilder("dining3", 0).SetLocks(3)
		for i := 0; i < 3; i++ {
			b.Thread()
			b.Lock(i).Yield().Lock((i + 1) % 3).Unlock((i + 1) % 3).Unlock(i).Halt()
		}
		return b.MustBuild()
	}
	p := build()

	// Find a deadlocking schedule.
	var sig Signature
	found := false
	for seed := uint64(0); seed < 500 && !found; seed++ {
		m, err := prog.NewMachine(p, prog.Config{Scheduler: sched.NewRandom(seed, 0.9)})
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		if res.Outcome == prog.OutcomeDeadlock {
			sig = FromCycle(res.DeadlockCycle)
			found = true
		}
	}
	if !found {
		t.Fatal("no deadlock found to immunize against")
	}
	if len(sig.Edges) != 3 {
		t.Fatalf("signature edges = %d, want 3", len(sig.Edges))
	}

	for seed := uint64(0); seed < 200; seed++ {
		gate := NewGate([]Signature{sig})
		m, err := prog.NewMachine(p, prog.Config{
			Scheduler: sched.NewRandom(seed, 0.9),
			Gate:      gate,
			Observer:  gate,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res := m.Run(); res.Outcome == prog.OutcomeDeadlock {
			t.Fatalf("seed %d: immunized 3-cycle still deadlocked", seed)
		}
	}
}
