package archive

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzArchiveSegment feeds torn, truncated, bit-flipped, and arbitrary
// garbage bytes through the segment decoder: it must never panic, never
// accept a frame whose CRC does not cover exactly the bytes presented, and
// — round-tripping whatever it does accept — never lose or alter an acked
// payload.
func FuzzArchiveSegment(f *testing.F) {
	seeds := []*Segment{
		{Kind: KindFull, ProgramID: "prog-a", Gen: 1, Payload: []byte("base snapshot bytes")},
		{Kind: KindDelta, ProgramID: "prog-b", Gen: 9, Payload: []byte{}},
		{Kind: KindWALChunk, ProgramID: "p", Gen: 3, Part: 2, Offset: 4096, Payload: bytes.Repeat([]byte{0xAB}, 128)},
		{Kind: KindManifest, ProgramID: "prog-c", Gen: 0, Payload: []byte(`{"programId":"prog-c"}`)},
	}
	for _, s := range seeds {
		f.Add(EncodeSegment(s))
	}
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := DecodeSegment(data)
		if err != nil {
			return // rejected: fine, as long as it never panics
		}
		// Accepted frames must survive a re-encode/re-decode round trip
		// with every field intact: the decoder can never have dropped or
		// reinterpreted payload bytes.
		back, err := DecodeSegment(EncodeSegment(seg))
		if err != nil || !reflect.DeepEqual(seg, back) {
			t.Fatalf("accepted frame does not round-trip (%v): kind=%d prog=%q gen=%d", err, seg.Kind, seg.ProgramID, seg.Gen)
		}
	})
}
