package archive

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/journal"
)

// ErrNotFound reports a missing object.
var ErrNotFound = errors.New("archive: object not found")

// ObjectStore is the pluggable cold tier: a flat keyspace of immutable
// blobs. Keys are slash-separated paths; Put is idempotent (archive keys
// embed a content hash, so concurrent writers racing on one key are writing
// identical bytes). DirStore is the local-directory implementation; an S3-
// or blob-backed store drops in behind the same four calls.
type ObjectStore interface {
	// Put stores data at key, replacing any existing object.
	Put(key string, data []byte) error
	// Get returns the object at key, or ErrNotFound.
	Get(key string) ([]byte, error)
	// List returns every key with the given prefix, sorted.
	List(prefix string) ([]string, error)
	// Delete removes the object at key (nil if absent).
	Delete(key string) error
}

// DirStore is the local-directory ObjectStore: each object is one file
// under Root, landed atomically (temp + fsync + rename) so a crash
// mid-upload never leaves a torn object. FS routes every file operation —
// tests inject faultfs to exercise the archive tier under disk faults.
type DirStore struct {
	root string
	fs   journal.FS
}

// NewDirStore opens (creating if needed) a directory-backed object store.
// A nil fs uses the real filesystem.
func NewDirStore(root string, vfs journal.FS) (*DirStore, error) {
	if vfs == nil {
		vfs = journal.OSFS()
	}
	if err := vfs.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("archive: open dir store: %w", err)
	}
	return &DirStore{root: root, fs: vfs}, nil
}

// Root returns the store's directory.
func (d *DirStore) Root() string { return d.root }

func (d *DirStore) path(key string) (string, error) {
	if key == "" || strings.Contains(key, "..") || strings.HasPrefix(key, "/") {
		return "", fmt.Errorf("archive: bad object key %q", key)
	}
	return filepath.Join(d.root, filepath.FromSlash(key)), nil
}

// Put lands data at key atomically, creating parent directories.
func (d *DirStore) Put(key string, data []byte) error {
	path, err := d.path(key)
	if err != nil {
		return err
	}
	if err := d.fs.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("archive: put %s: %w", key, err)
	}
	if err := journal.WriteFileAtomic(d.fs, path, data); err != nil {
		return fmt.Errorf("archive: put %s: %w", key, err)
	}
	return nil
}

// Get reads the object at key.
func (d *DirStore) Get(key string) ([]byte, error) {
	path, err := d.path(key)
	if err != nil {
		return nil, err
	}
	data, err := d.fs.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		return nil, fmt.Errorf("archive: get %s: %w", key, err)
	}
	return data, nil
}

// List walks the store and returns every key with the prefix, sorted.
func (d *DirStore) List(prefix string) ([]string, error) {
	var keys []string
	var walk func(dir, keyBase string) error
	walk = func(dir, keyBase string) error {
		entries, err := d.fs.ReadDir(dir)
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("archive: list %s: %w", keyBase, err)
		}
		for _, e := range entries {
			key := e.Name()
			if keyBase != "" {
				key = keyBase + "/" + e.Name()
			}
			if e.IsDir() {
				if err := walk(filepath.Join(dir, e.Name()), key); err != nil {
					return err
				}
				continue
			}
			if strings.HasSuffix(key, ".tmp") {
				continue // torn upload, never installed
			}
			if strings.HasPrefix(key, prefix) {
				keys = append(keys, key)
			}
		}
		return nil
	}
	if err := walk(d.root, ""); err != nil {
		return nil, err
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete removes the object at key; absent objects are a no-op.
func (d *DirStore) Delete(key string) error {
	path, err := d.path(key)
	if err != nil {
		return err
	}
	if err := d.fs.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("archive: delete %s: %w", key, err)
	}
	return nil
}
