// Package archive is the hive's cold tier (PR 10): a background archiver
// bundles each program's compacted snapshot-chain generations and sealed
// journal bytes into self-describing CRC-framed archive segments, tiers
// them through a pluggable ObjectStore, prunes local generations against a
// disk budget (a journal tether marker stands in for the pruned files), and
// rebuilds programs purely from the archive — cold-standby recovery after a
// member dies with its disk.
//
// Segments written concurrently by multiple replicas reconcile by
// construction: object keys embed a content hash (identical bytes collide
// onto one key) and per-program manifests order by (generation, archived
// journal length, sequence), so the newest generation wins regardless of
// which writer shipped it.
package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Segment framing: every object in the archive store — full snapshots,
// delta segments, journal chunks, manifests — is wrapped in one
// self-describing CRC frame, so any object can be identified, validated,
// and attributed to its program from its bytes alone.
const (
	segMagic   = "SBARCH1\n"
	segVersion = 1
)

// Kind discriminates archive segment payloads.
type Kind uint8

const (
	// KindFull wraps a base snapshot file's bytes (journal snap codec).
	KindFull Kind = 1
	// KindDelta wraps one delta segment file's bytes.
	KindDelta Kind = 2
	// KindWALChunk wraps a record-aligned slice of a journal generation,
	// Offset bytes into the generation's framed-record region.
	KindWALChunk Kind = 3
	// KindManifest wraps a manifest JSON document.
	KindManifest Kind = 4
)

// ErrBadSegment reports an archive object that failed frame validation —
// torn, truncated, or foreign bytes. Readers skip such objects; the
// reconciled manifest never references them twice.
var ErrBadSegment = errors.New("archive: bad segment")

// Segment is one decoded archive frame.
type Segment struct {
	Kind      Kind
	ProgramID string
	// Gen is the chain generation the payload belongs to.
	Gen uint64
	// Part orders a generation's WAL chunks; zero elsewhere.
	Part uint64
	// Offset is the chunk's byte offset into the generation's record
	// region; zero elsewhere.
	Offset uint64
	// Payload is the wrapped file bytes (or manifest JSON).
	Payload []byte
}

// EncodeSegment frames a segment: magic, then a CRC32-protected region of
// version, kind, program ID, generation, part, offset, and payload.
func EncodeSegment(seg *Segment) []byte {
	buf := make([]byte, 0, len(segMagic)+2+len(seg.ProgramID)+len(seg.Payload)+5*binary.MaxVarintLen64+4)
	buf = append(buf, segMagic...)
	buf = append(buf, segVersion, byte(seg.Kind))
	buf = binary.AppendUvarint(buf, uint64(len(seg.ProgramID)))
	buf = append(buf, seg.ProgramID...)
	buf = binary.AppendUvarint(buf, seg.Gen)
	buf = binary.AppendUvarint(buf, seg.Part)
	buf = binary.AppendUvarint(buf, seg.Offset)
	buf = binary.AppendUvarint(buf, uint64(len(seg.Payload)))
	buf = append(buf, seg.Payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf[len(segMagic):]))
	return append(buf, crc[:]...)
}

// DecodeSegment parses and validates EncodeSegment bytes. Every field is
// bounds-checked against the input before use and the CRC covers the whole
// frame, so torn, truncated, or garbage objects return ErrBadSegment —
// never a panic, never a silently wrong payload.
func DecodeSegment(data []byte) (*Segment, error) {
	if len(data) < len(segMagic)+2+4 || string(data[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSegment)
	}
	body, crcBytes := data[len(segMagic):len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBytes) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSegment)
	}
	if body[0] != segVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrBadSegment, body[0])
	}
	seg := &Segment{Kind: Kind(body[1])}
	switch seg.Kind {
	case KindFull, KindDelta, KindWALChunk, KindManifest:
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrBadSegment, body[1])
	}
	rest := body[2:]
	idLen, n := binary.Uvarint(rest)
	if n <= 0 || idLen > uint64(len(rest)-n) {
		return nil, fmt.Errorf("%w: bad program id", ErrBadSegment)
	}
	seg.ProgramID = string(rest[n : n+int(idLen)])
	rest = rest[n+int(idLen):]
	for _, dst := range []*uint64{&seg.Gen, &seg.Part, &seg.Offset} {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated header", ErrBadSegment)
		}
		*dst = v
		rest = rest[n:]
	}
	payLen, n := binary.Uvarint(rest)
	if n <= 0 || payLen != uint64(len(rest)-n) {
		return nil, fmt.Errorf("%w: payload length mismatch", ErrBadSegment)
	}
	seg.Payload = rest[n:]
	return seg, nil
}
