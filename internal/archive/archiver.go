package archive

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/journal"
)

// Options configures an Archiver.
type Options struct {
	// Writer names this replica in the manifests it ships (reconciliation
	// tie-break and key suffix; two replicas never overwrite each other's
	// manifests).
	Writer string
	// DiskBudget bounds the journal data directory's local footprint in
	// bytes. After each SyncAll the archiver prunes fully-archived
	// snapshot chains (largest first) until usage fits, leaving tether
	// markers behind. Zero disables pruning.
	DiskBudget int64
}

// Stats counts archiver activity since construction.
type Stats struct {
	Syncs            int64
	SegmentsWritten  int64
	ManifestsWritten int64
	BytesWritten     int64
	ChainsPruned     int64
	BytesPruned      int64
	SyncErrors       int64
}

// Archiver tiers a journal store's program chains into an ObjectStore in
// the background: each sync uploads whatever a program's chain has gained
// since the last one — a new base or delta generation in full, the current
// journal generation as incremental record-aligned chunks — then ships a
// manifest describing the archived chain. Once a chain is archived, Prune
// may drop its local base and delta files against the disk budget; the
// journal's tether/rehydrate protocol keeps the program loadable.
type Archiver struct {
	store  *journal.Store
	obj    ObjectStore
	writer string
	budget int64

	// mu guards state and stats. It is a leaf lock: held across a whole
	// program sync (serializing syncs) including calls into the journal,
	// whose per-program locks are internal and never reach back here.
	mu    sync.Mutex
	state map[string]*progState
	stats Stats
}

// progState mirrors what the archive store holds for one program — enough
// to compute the incremental upload set and the next manifest without
// re-listing the store every sync.
type progState struct {
	seq      uint64
	hasBase  bool
	baseGen  uint64
	baseKey  string
	deltas   []ManifestDelta
	walGen   uint64
	walLen   uint64
	walParts []ManifestPart
	// synced is set once a manifest covering this exact chain shipped;
	// only synced chains are prune candidates.
	synced bool
}

// New builds an archiver tiering store into obj.
func New(store *journal.Store, obj ObjectStore, opts Options) *Archiver {
	w := opts.Writer
	if w == "" {
		w = "hive"
	}
	return &Archiver{store: store, obj: obj, writer: w, budget: opts.DiskBudget, state: make(map[string]*progState)}
}

// Stats snapshots the activity counters.
func (a *Archiver) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// SyncAll syncs every program with persisted state, then prunes local
// chains against the disk budget. Per-program errors are counted and the
// first is returned, but one bad program never blocks the rest.
func (a *Archiver) SyncAll() error {
	var first error
	for _, id := range a.store.Programs() {
		if err := a.SyncProgram(id); err != nil && first == nil {
			first = err
		}
	}
	if err := a.Prune(); err != nil && first == nil {
		first = err
	}
	return first
}

// SyncProgram brings the archive store up to date with one program's chain
// and ships a manifest if anything changed.
func (a *Archiver) SyncProgram(programID string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, err := a.seedLocked(programID)
	if err != nil {
		a.stats.SyncErrors++
		return err
	}
	exp, err := a.store.ExportChain(programID)
	if err != nil {
		a.stats.SyncErrors++
		return err
	}
	a.stats.Syncs++
	if exp == nil {
		return nil // nothing persisted yet
	}
	fk := journal.FileKey(programID)
	changed := false
	put := func(key string, seg *Segment) error {
		data := EncodeSegment(seg)
		if err := a.obj.Put(key, data); err != nil {
			return err
		}
		a.stats.SegmentsWritten++
		a.stats.BytesWritten += int64(len(data))
		changed = true
		return nil
	}

	want := a.desiredDeltasLocked(st, exp, fk)
	if exp.WALGen != st.walGen || a.chainChangedLocked(st, exp, want) {
		// New generation (a checkpoint rotated the chain): upload the new
		// base and any delta generations the store doesn't already hold,
		// then restart WAL chunking for the new generation.
		if exp.HasBase && len(exp.Base) > 0 {
			key := baseKey(fk, exp.BaseGen, contentHash(exp.Base))
			if key != st.baseKey {
				if err := put(key, &Segment{Kind: KindFull, ProgramID: programID, Gen: exp.BaseGen, Payload: exp.Base}); err != nil {
					a.stats.SyncErrors++
					return err
				}
			}
			st.hasBase, st.baseGen, st.baseKey = true, exp.BaseGen, key
		} else if exp.HasBase && st.hasBase && st.baseGen == exp.BaseGen {
			// Tethered chain: the base is already archived (that is why its
			// bytes are pruned locally); keep the recorded key.
		} else if !exp.HasBase {
			st.hasBase, st.baseKey = false, ""
		}
		prev := make(map[uint64]string, len(st.deltas))
		for _, d := range st.deltas {
			prev[d.Gen] = d.Key
		}
		for _, d := range exp.Deltas {
			key := deltaKey(fk, d.Gen, contentHash(d.Data))
			if prev[d.Gen] != key {
				if err := put(key, &Segment{Kind: KindDelta, ProgramID: programID, Gen: d.Gen, Payload: d.Data}); err != nil {
					a.stats.SyncErrors++
					return err
				}
			}
		}
		st.deltas = want
		st.walGen, st.walLen, st.walParts = exp.WALGen, 0, nil
		st.synced = false
	}

	// Incremental WAL chunk: within a generation the valid record prefix
	// only grows (rollback truncates unacked bytes only), so each sync
	// ships exactly the new suffix.
	if grown := uint64(len(exp.WAL)); grown > st.walLen {
		chunk := exp.WAL[st.walLen:]
		part := uint64(len(st.walParts))
		key := walKey(fk, st.walGen, part, contentHash(chunk))
		if err := put(key, &Segment{Kind: KindWALChunk, ProgramID: programID, Gen: st.walGen, Part: part, Offset: st.walLen, Payload: chunk}); err != nil {
			a.stats.SyncErrors++
			return err
		}
		st.walParts = append(st.walParts, ManifestPart{Part: part, Key: key, Offset: st.walLen, Len: uint64(len(chunk))})
		st.walLen = grown
	}

	if !changed && st.synced {
		return nil
	}
	st.seq++
	m := &Manifest{
		ProgramID: programID, Seq: st.seq, Writer: a.writer,
		HasBase: st.hasBase, BaseGen: st.baseGen, BaseKey: st.baseKey,
		Deltas: append([]ManifestDelta(nil), st.deltas...),
		WALGen: st.walGen, WALLen: st.walLen,
		WALParts: append([]ManifestPart(nil), st.walParts...),
	}
	data, err := encodeManifest(m)
	if err != nil {
		a.stats.SyncErrors++
		return err
	}
	if err := a.obj.Put(manifestKey(fk, st.seq, a.writer), data); err != nil {
		a.stats.SyncErrors++
		return fmt.Errorf("archive: manifest %s: %w", programID, err)
	}
	a.stats.ManifestsWritten++
	a.stats.BytesWritten += int64(len(data))
	st.synced = true
	return nil
}

// seedLocked initializes a program's sync state from the store's winning
// manifest — a restarted archiver (or one taking over from another writer)
// resumes incremental syncing instead of re-uploading the world.
func (a *Archiver) seedLocked(programID string) (*progState, error) {
	if st, ok := a.state[programID]; ok {
		return st, nil
	}
	st := &progState{}
	win, err := loadWinningManifest(a.obj, journal.FileKey(programID))
	if err != nil {
		return nil, err
	}
	if win != nil {
		st.seq = win.Seq
		st.hasBase, st.baseGen, st.baseKey = win.HasBase, win.BaseGen, win.BaseKey
		st.deltas = append(st.deltas, win.Deltas...)
		st.walGen, st.walLen = win.WALGen, win.WALLen
		st.walParts = append(st.walParts, win.WALParts...)
		st.synced = win.Writer == a.writer
	}
	a.state[programID] = st
	return st, nil
}

// desiredDeltasLocked computes the delta list the next manifest must carry:
// every generation the export holds bytes for (keyed by content hash), plus
// — on a tethered chain — previously archived generations whose local bytes
// were pruned. ExportChain cannot re-read a pruned delta; the archive copy
// is the only copy, and dropping its key from the manifest would silently
// amputate recovered history (cold standbys would refuse the chain as
// missing a generation).
func (a *Archiver) desiredDeltasLocked(st *progState, exp *journal.ChainExport, fk string) []ManifestDelta {
	exported := make(map[uint64]bool, len(exp.Deltas))
	want := make([]ManifestDelta, 0, len(exp.Deltas)+len(st.deltas))
	for _, d := range exp.Deltas {
		exported[d.Gen] = true
		want = append(want, ManifestDelta{Gen: d.Gen, Key: deltaKey(fk, d.Gen, contentHash(d.Data))})
	}
	if exp.Tethered {
		// Deltas live in (baseGen, gen]: after CheckpointDelta the newest
		// delta's generation *equals* the WAL generation, so the upper bound
		// is inclusive — dropping a pruned delta at exp.WALGen would amputate
		// the chain's newest archived generation.
		for _, d := range st.deltas {
			if !exported[d.Gen] && d.Gen > exp.BaseGen && d.Gen <= exp.WALGen {
				want = append(want, d)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i].Gen < want[j].Gen })
	}
	return want
}

// chainChangedLocked reports whether the program's archived chain metadata
// diverged from what the next manifest must say (a seeded state from
// another writer may lag; a fresh delta checkpoint extends the list).
func (a *Archiver) chainChangedLocked(st *progState, exp *journal.ChainExport, want []ManifestDelta) bool {
	if st.hasBase != exp.HasBase || st.baseGen != exp.BaseGen || len(st.deltas) != len(want) {
		return true
	}
	for i, d := range want {
		if st.deltas[i] != d {
			return true
		}
	}
	return false
}

// Prune drops local base/delta files of fully-archived chains — largest
// first — until the data directory fits the disk budget. The live journal
// generation is never pruned, so the budget is best-effort when journals
// alone exceed it.
func (a *Archiver) Prune() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.budget <= 0 {
		return nil
	}
	usage, err := a.store.DiskUsage()
	if err != nil {
		return err
	}
	if usage <= a.budget {
		return nil
	}
	type cand struct {
		id   string
		size int64
	}
	var cands []cand
	for id, st := range a.state {
		if st.synced && st.hasBase {
			if sz := a.store.ChainSize(id); sz > 0 {
				cands = append(cands, cand{id, sz})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].size > cands[j].size })
	for _, c := range cands {
		if usage <= a.budget {
			break
		}
		st := a.state[c.id]
		gens := make([]uint64, len(st.deltas))
		for i, d := range st.deltas {
			gens[i] = d.Gen
		}
		freed, err := a.store.PruneChain(c.id, st.baseGen, gens)
		if err != nil {
			a.stats.SyncErrors++
			return err
		}
		if freed > 0 {
			usage -= freed
			a.stats.ChainsPruned++
			a.stats.BytesPruned += freed
		}
	}
	return nil
}

// Materialize rebuilds a journal-compatible data directory under dir from
// the archive store alone: every program's winning manifest becomes the
// base/delta/journal files the journal's own recovery scan expects. Opening
// the directory with journal.Open then recovers exactly as it would from
// the original disk — cold-standby recovery is disk recovery by
// construction. Returns the number of programs materialized.
func Materialize(obj ObjectStore, vfs journal.FS, dir string) (int, error) {
	if vfs == nil {
		vfs = journal.OSFS()
	}
	if err := vfs.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("archive: materialize: %w", err)
	}
	ids, err := Programs(obj)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, id := range ids {
		exp, err := Load(obj, id)
		if err != nil {
			return n, fmt.Errorf("archive: materialize %s: %w", id, err)
		}
		if exp == nil {
			continue
		}
		fk := journal.FileKey(id)
		if exp.HasBase {
			path := filepath.Join(dir, fmt.Sprintf("snap-%s-%d.snap", fk, exp.BaseGen))
			if err := journal.WriteFileAtomic(vfs, path, exp.Base); err != nil {
				return n, fmt.Errorf("archive: materialize %s: %w", id, err)
			}
		}
		for _, d := range exp.Deltas {
			path := filepath.Join(dir, fmt.Sprintf("delta-%s-%d.snap", fk, d.Gen))
			if err := journal.WriteFileAtomic(vfs, path, d.Data); err != nil {
				return n, fmt.Errorf("archive: materialize %s: %w", id, err)
			}
		}
		if len(exp.WAL) > 0 || !exp.HasBase {
			path := filepath.Join(dir, fmt.Sprintf("wal-%s-%d.log", fk, exp.WALGen))
			if err := journal.WriteFileAtomic(vfs, path, append(journal.WALHeader(id), exp.WAL...)); err != nil {
				return n, fmt.Errorf("archive: materialize %s: %w", id, err)
			}
		}
		n++
	}
	return n, nil
}
