package archive

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/journal"
)

// Manifest describes one program's archived chain as of one archiver sync:
// which segment objects hold its base, deltas, and journal chunks, and how
// far the journal had advanced. Manifests are immutable — each sync that
// changes anything writes a new one at a higher Seq — and self-ranking, so
// readers reconcile concurrent writers without coordination: the winner is
// the lexicographically greatest (WALGen, WALLen, Seq, Writer), i.e. the
// newest generation, then the longest archived journal within it.
type Manifest struct {
	ProgramID string `json:"programId"`
	// Seq increments per manifest this writer ships for this program.
	Seq uint64 `json:"seq"`
	// Writer names the replica that wrote this manifest (tie-break only).
	Writer string `json:"writer"`

	HasBase bool   `json:"hasBase"`
	BaseGen uint64 `json:"baseGen,omitempty"`
	// BaseKey is the KindFull segment object holding the base snapshot.
	BaseKey string          `json:"baseKey,omitempty"`
	Deltas  []ManifestDelta `json:"deltas,omitempty"`

	// WALGen is the journal generation the chunks below belong to; WALLen
	// is the total record-region bytes they cover (chunks are contiguous
	// from offset 0). The valid prefix of a generation only ever grows, so
	// WALLen orders two manifests at the same generation.
	WALGen   uint64         `json:"walGen"`
	WALLen   uint64         `json:"walLen"`
	WALParts []ManifestPart `json:"walParts,omitempty"`
}

// ManifestDelta names the KindDelta segment for one delta generation.
type ManifestDelta struct {
	Gen uint64 `json:"gen"`
	Key string `json:"key"`
}

// ManifestPart names one KindWALChunk segment: Len payload bytes starting
// Offset bytes into generation WALGen's record region.
type ManifestPart struct {
	Part   uint64 `json:"part"`
	Key    string `json:"key"`
	Offset uint64 `json:"offset"`
	Len    uint64 `json:"len"`
}

// newer reports whether m should win reconciliation against o.
func (m *Manifest) newer(o *Manifest) bool {
	if m.WALGen != o.WALGen {
		return m.WALGen > o.WALGen
	}
	if m.WALLen != o.WALLen {
		return m.WALLen > o.WALLen
	}
	if m.Seq != o.Seq {
		return m.Seq > o.Seq
	}
	return m.Writer > o.Writer
}

// contentHash is the 12-hex-digit content address embedded in segment keys:
// replicas archiving identical bytes collide onto one object.
func contentHash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:6])
}

// Object-key layout. Everything for a program groups under the same
// filename-safe key the journal derives from its ID.
func baseKey(fileKey string, gen uint64, hash string) string {
	return fmt.Sprintf("seg/%s/g%d-full-%s", fileKey, gen, hash)
}

func deltaKey(fileKey string, gen uint64, hash string) string {
	return fmt.Sprintf("seg/%s/g%d-delta-%s", fileKey, gen, hash)
}

func walKey(fileKey string, gen, part uint64, hash string) string {
	return fmt.Sprintf("seg/%s/g%d-wal-p%06d-%s", fileKey, gen, part, hash)
}

func manifestKey(fileKey string, seq uint64, writer string) string {
	return fmt.Sprintf("manifest/%s/%016d-%s", fileKey, seq, writer)
}

func manifestPrefix(fileKey string) string { return "manifest/" + fileKey + "/" }

// encodeManifest wraps the manifest JSON in a KindManifest segment frame.
func encodeManifest(m *Manifest) ([]byte, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("archive: encode manifest: %w", err)
	}
	return EncodeSegment(&Segment{Kind: KindManifest, ProgramID: m.ProgramID, Gen: m.WALGen, Payload: body}), nil
}

// decodeManifest validates a manifest object's frame and parses the JSON.
func decodeManifest(data []byte) (*Manifest, error) {
	seg, err := DecodeSegment(data)
	if err != nil {
		return nil, err
	}
	if seg.Kind != KindManifest {
		return nil, fmt.Errorf("%w: kind %d where manifest expected", ErrBadSegment, seg.Kind)
	}
	var m Manifest
	if err := json.Unmarshal(seg.Payload, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest json: %v", ErrBadSegment, err)
	}
	if m.ProgramID != seg.ProgramID {
		return nil, fmt.Errorf("%w: manifest body names %q, frame names %q", ErrBadSegment, m.ProgramID, seg.ProgramID)
	}
	return &m, nil
}

// loadWinningManifest reconciles every manifest object under a program's
// key and returns the winner (nil when the program has no readable
// manifest). Unreadable or torn manifest objects are skipped — each
// manifest is self-contained, so older intact ones keep the program
// recoverable.
func loadWinningManifest(obj ObjectStore, fileKey string) (*Manifest, error) {
	keys, err := obj.List(manifestPrefix(fileKey))
	if err != nil {
		return nil, err
	}
	var win *Manifest
	for _, key := range keys {
		data, err := obj.Get(key)
		if err != nil {
			continue
		}
		m, err := decodeManifest(data)
		if err != nil {
			continue
		}
		if win == nil || m.newer(win) {
			win = m
		}
	}
	return win, nil
}

// Programs lists every program with at least one readable manifest in the
// store, sorted by ID.
func Programs(obj ObjectStore) ([]string, error) {
	keys, err := obj.List("manifest/")
	if err != nil {
		return nil, err
	}
	seen := make(map[string]string) // fileKey -> programID
	for _, key := range keys {
		parts := strings.Split(key, "/")
		if len(parts) != 3 {
			continue
		}
		fk := parts[1]
		if _, ok := seen[fk]; ok {
			continue
		}
		if m, err := loadWinningManifest(obj, fk); err == nil && m != nil {
			seen[fk] = m.ProgramID
		}
	}
	ids := make([]string, 0, len(seen))
	for _, id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// fetchSegment gets and validates one segment object, checking it against
// the kind and program the manifest claimed for it.
func fetchSegment(obj ObjectStore, key string, kind Kind, programID string) (*Segment, error) {
	data, err := obj.Get(key)
	if err != nil {
		return nil, err
	}
	seg, err := DecodeSegment(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", key, err)
	}
	if seg.Kind != kind || seg.ProgramID != programID {
		return nil, fmt.Errorf("%w: %s holds kind %d for %q, manifest expected kind %d for %q",
			ErrBadSegment, key, seg.Kind, seg.ProgramID, kind, programID)
	}
	return seg, nil
}

// Load rebuilds a program's chain purely from the archive store: the
// winning manifest's base, deltas, and contiguous journal chunks, assembled
// into the same ChainExport the live journal would export. Returns nil when
// the store holds nothing for the program.
func Load(obj ObjectStore, programID string) (*journal.ChainExport, error) {
	fk := journal.FileKey(programID)
	m, err := loadWinningManifest(obj, fk)
	if err != nil || m == nil {
		return nil, err
	}
	out := &journal.ChainExport{ProgramID: programID, WALGen: m.WALGen}
	if m.HasBase {
		seg, err := fetchSegment(obj, m.BaseKey, KindFull, programID)
		if err != nil {
			return nil, err
		}
		out.HasBase, out.BaseGen, out.Base = true, m.BaseGen, seg.Payload
	}
	for _, d := range m.Deltas {
		seg, err := fetchSegment(obj, d.Key, KindDelta, programID)
		if err != nil {
			return nil, err
		}
		out.Deltas = append(out.Deltas, journal.ChainDelta{Gen: d.Gen, Data: seg.Payload})
	}
	wal := make([]byte, 0, m.WALLen)
	for _, p := range m.WALParts {
		seg, err := fetchSegment(obj, p.Key, KindWALChunk, programID)
		if err != nil {
			return nil, err
		}
		if seg.Gen != m.WALGen || seg.Offset != uint64(len(wal)) || uint64(len(seg.Payload)) != p.Len {
			return nil, fmt.Errorf("%w: wal chunk %s does not extend gen %d at offset %d", ErrBadSegment, p.Key, m.WALGen, len(wal))
		}
		wal = append(wal, seg.Payload...)
	}
	if uint64(len(wal)) != m.WALLen {
		return nil, fmt.Errorf("%w: manifest for %s covers %d wal bytes, chunks held %d", ErrBadSegment, programID, m.WALLen, len(wal))
	}
	// Trim to whole records exactly like journal recovery trims a torn
	// tail; the manifest only ever references validated bytes, so this is
	// belt-and-suspenders against a corrupt store.
	if valid, _ := journal.ScanRecords(wal); valid > 0 {
		out.WAL = wal[:valid]
	}
	return out, nil
}

// ChainFetcher adapts an ObjectStore to the journal's rehydration hook
// (journal.Store.SetChainFetcher): loading a tether-pruned chain pulls its
// archived generations back through Load.
func ChainFetcher(obj ObjectStore) func(programID string) (*journal.ChainExport, error) {
	return func(programID string) (*journal.ChainExport, error) {
		return Load(obj, programID)
	}
}
