package archive

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/journal"
)

func batchOp(session string, seq uint64, traces ...string) *journal.Op {
	op := &journal.Op{Kind: journal.OpBatch, Session: session, Seq: seq}
	for _, tr := range traces {
		op.Traces = append(op.Traces, []byte(tr))
	}
	return op
}

func replayOps(t *testing.T, s *journal.Store, programID string) []*journal.Op {
	t.Helper()
	var out []*journal.Op
	if _, err := s.Replay(programID, func(op *journal.Op) error {
		out = append(out, op)
		return nil
	}); err != nil {
		t.Fatalf("replay %s: %v", programID, err)
	}
	return out
}

func TestSegmentRoundTrip(t *testing.T) {
	in := &Segment{Kind: KindWALChunk, ProgramID: "prog/with spaces", Gen: 7, Part: 3, Offset: 1 << 20, Payload: []byte("payload bytes")}
	out, err := DecodeSegment(EncodeSegment(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
	}
	// Empty payload, zero fields.
	in2 := &Segment{Kind: KindManifest, ProgramID: ""}
	if _, err := DecodeSegment(EncodeSegment(in2)); err != nil {
		t.Fatalf("decode empty: %v", err)
	}
}

func TestSegmentRejectsCorruption(t *testing.T) {
	frame := EncodeSegment(&Segment{Kind: KindFull, ProgramID: "p", Gen: 1, Payload: []byte("data")})
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x41
		if _, err := DecodeSegment(mut); err == nil {
			t.Fatalf("flipped byte %d accepted", i)
		}
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, err := DecodeSegment(frame[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// seedStore builds a journal store with a few programs: checkpointed bases,
// delta segments, and live journal tails.
func seedStore(t *testing.T, dir string) *journal.Store {
	t.Helper()
	s, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		id := fmt.Sprintf("prog-%d", p)
		for seq := uint64(1); seq <= 4; seq++ {
			if err := s.Append(id, batchOp("boot", seq, fmt.Sprintf("t-%s-%d", id, seq))); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Checkpoint(&journal.ProgramSnapshot{ProgramID: id, Tree: []byte("tree-" + id), Sessions: map[string]uint64{"boot": 4}}); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(id, batchOp("boot", 5, "after-ckpt")); err != nil {
			t.Fatal(err)
		}
		if p == 2 { // give one program a delta segment + fresh tail
			if err := s.CheckpointDelta(&journal.ProgramSnapshot{ProgramID: id, TreeDelta: []byte("delta-" + id), Sessions: map[string]uint64{"boot": 5}}); err != nil {
				t.Fatal(err)
			}
			if err := s.Append(id, batchOp("boot", 6, "after-delta")); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

// TestSyncLoadRoundTrip: what the archiver ships is exactly what Load
// reassembles — base, deltas, and the acked journal region.
func TestSyncLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := seedStore(t, dir)
	defer s.Close()
	obj, err := NewDirStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	arc := New(s, obj, Options{Writer: "w1"})
	if err := arc.SyncAll(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	for _, id := range s.Programs() {
		want, err := s.ExportChain(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Load(obj, id)
		if err != nil {
			t.Fatalf("load %s: %v", id, err)
		}
		if got == nil {
			t.Fatalf("load %s: archive holds nothing", id)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("chain mismatch for %s:\nlocal   %+v\narchive %+v", id, want, got)
		}
	}
	st := arc.Stats()
	if st.SegmentsWritten == 0 || st.ManifestsWritten == 0 {
		t.Fatalf("archiver wrote nothing: %+v", st)
	}
}

// TestIncrementalWALChunks: re-syncing after more appends ships only the
// new suffix, and Load still reassembles the full region.
func TestIncrementalWALChunks(t *testing.T) {
	dir := t.TempDir()
	s := seedStore(t, dir)
	defer s.Close()
	obj, err := NewDirStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	arc := New(s, obj, Options{Writer: "w1"})
	if err := arc.SyncAll(); err != nil {
		t.Fatal(err)
	}
	before := arc.Stats().BytesWritten
	for seq := uint64(6); seq <= 9; seq++ {
		if err := s.Append("prog-0", batchOp("boot", seq, "incr")); err != nil {
			t.Fatal(err)
		}
	}
	if err := arc.SyncProgram("prog-0"); err != nil {
		t.Fatal(err)
	}
	want, _ := s.ExportChain("prog-0")
	got, err := Load(obj, "prog-0")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.WAL, got.WAL) {
		t.Fatalf("wal mismatch after incremental sync: %d vs %d bytes", len(want.WAL), len(got.WAL))
	}
	// The second sync must not have re-shipped the base (only chunk+manifest).
	grew := arc.Stats().BytesWritten - before
	if grew <= 0 || grew > int64(len(want.WAL))+4096 {
		t.Fatalf("incremental sync wrote %d bytes — not incremental", grew)
	}
	// A no-change sync ships nothing.
	n := arc.Stats().SegmentsWritten
	if err := arc.SyncProgram("prog-0"); err != nil {
		t.Fatal(err)
	}
	if arc.Stats().SegmentsWritten != n {
		t.Fatal("no-op sync wrote segments")
	}
}

// TestMaterializeEqualsDiskRecovery: a directory rebuilt purely from the
// archive replays byte-identical operations and loads an identical chain —
// recovery-from-archive is recovery-from-disk by construction.
func TestMaterializeEqualsDiskRecovery(t *testing.T) {
	dir := t.TempDir()
	s := seedStore(t, dir)
	obj, err := NewDirStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := New(s, obj, Options{Writer: "w1"}).SyncAll(); err != nil {
		t.Fatal(err)
	}
	ids := s.Programs()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	cold := t.TempDir()
	n, err := Materialize(obj, nil, cold)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	if n != len(ids) {
		t.Fatalf("materialized %d programs, want %d", n, len(ids))
	}
	orig, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	rebuilt, err := journal.Open(cold, journal.Options{})
	if err != nil {
		t.Fatalf("open materialized dir: %v", err)
	}
	defer rebuilt.Close()
	if !reflect.DeepEqual(orig.Programs(), rebuilt.Programs()) {
		t.Fatalf("program sets differ: %v vs %v", orig.Programs(), rebuilt.Programs())
	}
	for _, id := range ids {
		wb, wd, err := orig.LoadChain(id)
		if err != nil {
			t.Fatal(err)
		}
		gb, gd, err := rebuilt.LoadChain(id)
		if err != nil {
			t.Fatalf("rebuilt chain %s: %v", id, err)
		}
		if !reflect.DeepEqual(wb, gb) || !reflect.DeepEqual(wd, gd) {
			t.Fatalf("chain %s differs between disk and archive recovery", id)
		}
		wops, gops := replayOps(t, orig, id), replayOps(t, rebuilt, id)
		if !reflect.DeepEqual(wops, gops) {
			t.Fatalf("replay %s differs: %d ops vs %d ops", id, len(wops), len(gops))
		}
	}
}

// TestPruneAndRehydrate: pruning against a tight budget tethers chains and
// frees disk; a pruned chain loads transparently through the archive
// fetcher; the budget holds across generations.
func TestPruneAndRehydrate(t *testing.T) {
	dir := t.TempDir()
	s := seedStore(t, dir)
	defer s.Close()
	obj, err := NewDirStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s.SetChainFetcher(ChainFetcher(obj))
	arc := New(s, obj, Options{Writer: "w1", DiskBudget: 1}) // prune everything prunable
	if err := arc.SyncAll(); err != nil {
		t.Fatal(err)
	}
	st := arc.Stats()
	if st.ChainsPruned == 0 || st.BytesPruned == 0 {
		t.Fatalf("nothing pruned: %+v", st)
	}
	// Chains are tethered now; loading pulls the bytes back from the store.
	for _, id := range s.Programs() {
		base, _, err := s.LoadChain(id)
		if err != nil {
			t.Fatalf("load pruned chain %s: %v", id, err)
		}
		if base == nil || base.ProgramID != id {
			t.Fatalf("pruned chain %s rehydrated wrong: %+v", id, base)
		}
	}
}

// TestTetheredSyncKeepsNewestDelta: after CheckpointDelta the newest
// delta's generation *equals* the WAL generation, so a sync on a pruned
// (tethered) chain with no intervening checkpoint — exactly what an archive
// tick between snapshot intervals does — must carry that delta forward in
// the manifest. Dropping it would amputate the archived chain's newest
// generation and break every rehydration and cold-standby rebuild after it.
func TestTetheredSyncKeepsNewestDelta(t *testing.T) {
	dir := t.TempDir()
	s := seedStore(t, dir)
	defer s.Close()
	obj, err := NewDirStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s.SetChainFetcher(ChainFetcher(obj))
	arc := New(s, obj, Options{Writer: "w1", DiskBudget: 1})
	if err := arc.SyncAll(); err != nil { // archive, then prune every chain
		t.Fatal(err)
	}
	// prog-2's newest delta sits at the current WAL generation (seedStore
	// runs CheckpointDelta last). Grow the journal without a checkpoint and
	// sync the now-tethered chain again.
	const id = "prog-2"
	if err := s.Append(id, batchOp("boot", 7, "post-prune")); err != nil {
		t.Fatal(err)
	}
	if err := arc.SyncProgram(id); err != nil {
		t.Fatal(err)
	}
	got, err := Load(obj, id)
	if err != nil {
		t.Fatalf("load after tethered sync: %v", err)
	}
	found := false
	for _, d := range got.Deltas {
		found = found || d.Gen == got.WALGen
	}
	if !found {
		t.Fatalf("archived chain lost the delta at WAL generation %d: %+v", got.WALGen, got.Deltas)
	}
	// The store must still rehydrate the full chain through that manifest.
	base, deltas, err := s.LoadChain(id)
	if err != nil {
		t.Fatalf("rehydrate after tethered sync: %v", err)
	}
	if base == nil || len(deltas) == 0 {
		t.Fatalf("rehydrated chain incomplete: base=%v deltas=%d", base, len(deltas))
	}
}

// TestPruneWithoutFetcherFails: a pruned chain without an installed fetcher
// must refuse to load — never silently return an empty program.
func TestPruneWithoutFetcherFails(t *testing.T) {
	dir := t.TempDir()
	s := seedStore(t, dir)
	defer s.Close()
	obj, err := NewDirStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	arc := New(s, obj, Options{Writer: "w1", DiskBudget: 1})
	if err := arc.SyncAll(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LoadChain("prog-0"); err == nil {
		t.Fatal("loading a pruned chain with no fetcher succeeded")
	}
}

// TestReconcileNewestGenerationWins: two replicas archive the same program;
// the reader follows whichever shipped the newer generation, and ties break
// deterministically.
func TestReconcileNewestGenerationWins(t *testing.T) {
	dir := t.TempDir()
	s := seedStore(t, dir)
	obj, err := NewDirStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Writer A archives the current state.
	if err := New(s, obj, Options{Writer: "a"}).SyncAll(); err != nil {
		t.Fatal(err)
	}
	// The program advances a generation; writer B archives the newer chain.
	if err := s.Checkpoint(&journal.ProgramSnapshot{ProgramID: "prog-0", Tree: []byte("tree-v2"), Sessions: map[string]uint64{"boot": 9}}); err != nil {
		t.Fatal(err)
	}
	if err := New(s, obj, Options{Writer: "b"}).SyncProgram("prog-0"); err != nil {
		t.Fatal(err)
	}
	want, _ := s.ExportChain("prog-0")
	got, err := Load(obj, "prog-0")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("reconciled chain is not writer B's newer generation:\nwant %+v\ngot  %+v", want, got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDirStoreBadKeys: traversal and absolute keys are rejected.
func TestDirStoreBadKeys(t *testing.T) {
	obj, err := NewDirStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../escape", "a/../../b", "/abs"} {
		if err := obj.Put(key, []byte("x")); err == nil {
			t.Fatalf("key %q accepted", key)
		}
	}
	if _, err := obj.Get("missing/object"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing object: got %v, want ErrNotFound", err)
	}
}

// TestDiskBudgetSoakMultiGeneration: a multi-generation ingest soak under a
// fixed disk budget. Each round layers a delta checkpoint plus a live WAL
// tail onto every program's chain, so without pruning the data dir grows
// without bound; with the budget pinned to the round-0 footprint, every
// post-sync measurement must come back at or under it, and every pruned
// chain must stay loadable through the archive fetcher.
func TestDiskBudgetSoakMultiGeneration(t *testing.T) {
	dir := t.TempDir()
	s, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	obj, err := NewDirStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const programs = 3
	pad := bytes.Repeat([]byte("x"), 64)
	seq := make([]uint64, programs)
	round := func(r int, full bool) {
		for p := 0; p < programs; p++ {
			id := fmt.Sprintf("prog-%d", p)
			for k := 0; k < 6; k++ {
				seq[p]++
				if err := s.Append(id, batchOp("soak", seq[p], fmt.Sprintf("r%d-%s-%d-%s", r, id, seq[p], pad))); err != nil {
					t.Fatal(err)
				}
			}
			snap := &journal.ProgramSnapshot{ProgramID: id, Sessions: map[string]uint64{"soak": seq[p]}}
			if full {
				snap.Tree = append([]byte(fmt.Sprintf("tree-%s-r%d-", id, r)), bytes.Repeat([]byte("T"), 2048)...)
				if err := s.Checkpoint(snap); err != nil {
					t.Fatal(err)
				}
			} else {
				snap.TreeDelta = append([]byte(fmt.Sprintf("delta-%s-r%d-", id, r)), bytes.Repeat([]byte("D"), 512)...)
				if err := s.CheckpointDelta(snap); err != nil {
					t.Fatal(err)
				}
			}
			// A live tail after the checkpoint: the un-prunable remainder a
			// real hive always carries.
			seq[p]++
			if err := s.Append(id, batchOp("soak", seq[p], fmt.Sprintf("tail-r%d-%s", r, id))); err != nil {
				t.Fatal(err)
			}
		}
	}
	round(0, true)
	budget, err := s.DiskUsage()
	if err != nil || budget <= 0 {
		t.Fatalf("round-0 footprint: %d, %v", budget, err)
	}
	s.SetChainFetcher(ChainFetcher(obj))
	arc := New(s, obj, Options{Writer: "soak", DiskBudget: budget})
	for r := 1; r <= 5; r++ {
		round(r, false)
		if err := arc.SyncAll(); err != nil {
			t.Fatalf("round %d sync: %v", r, err)
		}
		du, err := s.DiskUsage()
		if err != nil {
			t.Fatal(err)
		}
		if du > budget {
			t.Fatalf("round %d: data dir %dB over the %dB budget", r, du, budget)
		}
	}
	st := arc.Stats()
	if st.ChainsPruned == 0 || st.BytesPruned == 0 {
		t.Fatalf("soak never pruned: %+v", st)
	}
	// Every chain — pruned to a tether or not — must still load with its
	// full acked history, pulled back through the fetcher as needed.
	for p := 0; p < programs; p++ {
		id := fmt.Sprintf("prog-%d", p)
		base, deltas, err := s.LoadChain(id)
		if err != nil {
			t.Fatalf("load %s after soak: %v", id, err)
		}
		if base == nil || base.ProgramID != id {
			t.Fatalf("program %s lost its base across the soak: %+v", id, base)
		}
		if len(deltas) == 0 {
			t.Fatalf("program %s lost its delta layers across the soak", id)
		}
		if got := deltas[len(deltas)-1].Sessions["soak"]; got != seq[p]-1 {
			t.Fatalf("program %s newest delta covers seq %d, want %d", id, got, seq[p]-1)
		}
	}
}
