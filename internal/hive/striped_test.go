package hive

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/prog"
	"repro/internal/trace"
)

// buildTwoSiteCrashy builds a program with two distinct crash sites: inputs
// below 10 divide by zero at one PC, inputs above 200 at another — two
// failure signatures that land on different stripes of the failure table.
func buildTwoSiteCrashy(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("hot-striped", 1)
	lowLbl, highLbl, end := b.NewLabel(), b.NewLabel(), b.NewLabel()
	b.Input(0, 0)
	b.BrImm(0, prog.CmpLT, 10, lowLbl)
	b.BrImm(0, prog.CmpGT, 200, highLbl)
	b.Jmp(end)
	b.Bind(lowLbl)
	b.Const(1, 0)
	b.Div(2, 1, 1) // crash site A
	b.Jmp(end)
	b.Bind(highLbl)
	b.Const(1, 0)
	b.Div(3, 1, 1) // crash site B
	b.Bind(end)
	b.Halt()
	return b.MustBuild()
}

// TestHotProgramStripedFailures hammers a single program's failure
// bookkeeping from many goroutines through the per-program submission path:
// two signatures, every goroutine reporting both from its own pod, with
// concurrent stats and guidance readers. Run under -race this is the
// regression test for the striped failure table (ROADMAP item a); the
// counters must still be exact.
func TestHotProgramStripedFailures(t *testing.T) {
	p := buildTwoSiteCrashy(t)
	h := New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const rounds = 25
	// Per-goroutine traces so distinct-pod counting is exercised too.
	lows := make([]*trace.Trace, goroutines)
	highs := make([]*trace.Trace, goroutines)
	oks := make([]*trace.Trace, goroutines)
	for g := 0; g < goroutines; g++ {
		podID := fmt.Sprintf("hot-pod-%d", g)
		lows[g] = captureTrace(t, p, podID, []int64{5}, trace.PrivacyHashed)
		highs[g] = captureTrace(t, p, podID, []int64{250}, trace.PrivacyHashed)
		oks[g] = captureTrace(t, p, podID, []int64{50}, trace.PrivacyHashed)
	}
	if lows[0].FailureSignature() == highs[0].FailureSignature() {
		t.Fatal("want two distinct signatures")
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, goroutines+2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				if err := h.SubmitTracesFor(p.ID, []*trace.Trace{lows[g], oks[g], highs[g]}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(g)
	}
	// Concurrent readers: stats snapshots and guidance generation must not
	// race with the striped writers.
	readerDone := make(chan struct{})
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for {
				select {
				case <-readerDone:
					errs <- nil
					return
				default:
				}
				if _, err := h.ProgramStats(p.ID); err != nil {
					errs <- err
					return
				}
				if _, err := h.Guidance(p.ID, 2); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	close(start)
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(readerDone)
	wg.Wait()

	st, err := h.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != goroutines*rounds*3 {
		t.Errorf("ingested = %d, want %d", st.Ingested, goroutines*rounds*3)
	}
	if len(st.Failures) != 2 {
		t.Fatalf("failure records = %+v, want 2 signatures", st.Failures)
	}
	for _, rec := range st.Failures {
		if rec.Count != goroutines*rounds {
			t.Errorf("%s: count = %d, want %d", rec.Signature, rec.Count, goroutines*rounds)
		}
		if rec.Pods != goroutines {
			t.Errorf("%s: pods = %d, want %d", rec.Signature, rec.Pods, goroutines)
		}
		if !rec.Fixed && !rec.InRepairLab {
			t.Errorf("%s: synthesis never concluded", rec.Signature)
		}
	}
	if st.Epoch > 2 {
		t.Errorf("epoch = %d, want at most one bump per signature", st.Epoch)
	}
}

// TestSubmitTracesForRejectsMismatch pins the all-or-nothing contract of the
// per-program path.
func TestSubmitTracesForRejectsMismatch(t *testing.T) {
	p := buildTwoSiteCrashy(t)
	h := New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	good := captureTrace(t, p, "pod", []int64{50}, trace.PrivacyHashed)
	stray := good.Clone()
	stray.ProgramID = "someone-else"
	if err := h.SubmitTracesFor(p.ID, []*trace.Trace{good, stray}); err == nil {
		t.Fatal("mismatched trace accepted")
	}
	st, err := h.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != 0 {
		t.Errorf("ingested = %d after rejected batch, want 0", st.Ingested)
	}
	if err := h.SubmitTracesFor("ghost", []*trace.Trace{good}); err == nil {
		t.Fatal("unknown program accepted")
	}
}
