package hive

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/pod"
	"repro/internal/trace"
)

// ShedPolicy configures rarity-priced load shedding (PR 9). Past the
// pressure Watermark the hive prices every sessioned batch BEFORE ingest
// — against the exec tree it already holds — and drops the cheapest work
// first: exact structural duplicates go at the watermark, covered-only
// recombinations at a third of the way to saturation, and low-rarity
// novelty is deferred (pod.ErrDeferred, retried by the client) in the
// last third. First-sight failures are never shed at any pressure: a
// crash signature the hive has not aggregated yet is the one observation
// overload must not cost.
type ShedPolicy struct {
	// Watermark is the pressure in [0,1) at which pricing starts
	// (values <= 0 select DefaultShedWatermark). Below it every batch is
	// admitted untouched.
	Watermark float64
	// RarityFloor is the Frontier.SiblingVisits threshold separating
	// prime steering targets from thin exploration: a novel path whose
	// divergence sibling has fewer visits than this is "low rarity" and
	// deferrable near saturation. 0 disables the defer tier.
	RarityFloor int64
}

// DefaultShedWatermark is the pressure at which shedding engages when a
// policy does not pin its own.
const DefaultShedWatermark = 0.75

// ShedStats is a point-in-time snapshot of the shed decision counters.
// Counters count pricing decisions, not traces: a deferred batch that is
// resubmitted and admitted contributes to both Deferred and Admitted.
type ShedStats struct {
	// Admitted counts batches priced while shedding was engaged (or
	// pressure-checked below the watermark) and passed through to ingest.
	Admitted int64
	// AdmittedFirstSight counts the subset of Admitted carrying a failure
	// signature the hive had never aggregated — always admitted.
	AdmittedFirstSight int64
	// ShedDuplicate counts batches dropped as exact structural
	// duplicates: every trace walks known structure to a known terminal
	// and adds no coverage. They are acked (accepted) without ingest.
	ShedDuplicate int64
	// ShedCovered counts batches dropped because their only novelty was
	// recombination of already-covered edges.
	ShedCovered int64
	// Deferred counts batches declined with pod.ErrDeferred: novel but
	// below the rarity floor, worth retrying once pressure drops.
	Deferred int64
	// PeakPressure is the highest gauge reading any pricing decision
	// observed — the tuning signal for the watermark.
	PeakPressure float64
}

// shedCounters is the concurrent form of ShedStats.
type shedCounters struct {
	admitted   atomic.Int64
	firstSight atomic.Int64
	dup        atomic.Int64
	covered    atomic.Int64
	deferred   atomic.Int64
	peak       atomic.Uint64 // math.Float64bits, monotone max
}

// notePressure folds one gauge reading into the peak (lock-free max).
func (c *shedCounters) notePressure(p float64) {
	bits := math.Float64bits(p)
	for {
		old := c.peak.Load()
		if p <= math.Float64frombits(old) || c.peak.CompareAndSwap(old, bits) {
			return
		}
	}
}

// SetShedPolicy installs (or, with nil, removes) the load-shedding
// policy. Safe to call concurrently with ingest.
func (h *Hive) SetShedPolicy(p *ShedPolicy) {
	if p == nil {
		h.shedPolicy.Store(nil)
		return
	}
	cp := *p
	if cp.Watermark <= 0 {
		cp.Watermark = DefaultShedWatermark
	}
	if cp.Watermark >= 1 {
		cp.Watermark = 1 - 1e-9
	}
	h.shedPolicy.Store(&cp)
}

// SetPressureSource installs the gauge the shedder reads, normalized to
// [0,1] of queue budget. The wire server installs its queued-bytes gauge
// through this (pod.PressureSink); tests inject synthetic pressure. The
// hive itself never consults a clock — pressure is a pure input.
func (h *Hive) SetPressureSource(f func() float64) {
	if f == nil {
		h.pressure.Store(nil)
		return
	}
	h.pressure.Store(&f)
}

var _ pod.PressureSink = (*Hive)(nil)

// ShedStats snapshots the shed decision counters.
func (h *Hive) ShedStats() ShedStats {
	return ShedStats{
		Admitted:           h.shed.admitted.Load(),
		AdmittedFirstSight: h.shed.firstSight.Load(),
		ShedDuplicate:      h.shed.dup.Load(),
		ShedCovered:        h.shed.covered.Load(),
		Deferred:           h.shed.deferred.Load(),
		PeakPressure:       math.Float64frombits(h.shed.peak.Load()),
	}
}

func (h *Hive) loadPressure() float64 {
	if f := h.pressure.Load(); f != nil {
		return (*f)()
	}
	return 0
}

// batchPrice is the aggregate pricing of one batch against a program's
// exec tree.
type batchPrice struct {
	newEdges      int
	novel         bool
	lowRarityOnly bool
}

// shedView prices a columnar batch and decides its fate. Returns
// (drop=true, nil) for a batch to ack-without-ingest — the caller must
// NOT journal, apply, or mark the session (a resubmission simply
// re-prices) — or (false, err wrapping pod.ErrDeferred) to decline, or
// (false, nil) to admit.
func (h *Hive) shedView(st *programState, v *trace.BatchView) (bool, error) {
	p := h.shedPolicy.Load()
	if p == nil {
		return false, nil
	}
	pressure := h.loadPressure()
	h.shed.notePressure(pressure)
	if pressure < p.Watermark {
		h.shed.admitted.Add(1)
		return false, nil
	}
	sc := ingestScratchPool.Get().(*ingestScratch)
	defer ingestScratchPool.Put(sc)
	n := v.Len()
	for i := 0; i < n; i++ {
		if !v.Outcome(i).IsFailure() {
			continue
		}
		sc.sig = v.FailureSignature(sc.sig[:0], i)
		if st.failures.get(string(sc.sig)) == nil {
			h.shed.firstSight.Add(1)
			h.shed.admitted.Add(1)
			return false, nil
		}
	}
	var bp batchPrice
	bp.lowRarityOnly = true
	for i := 0; i < n; i++ {
		sc.path = v.AppendBranches(sc.path[:0], i)
		pr := st.tree.PricePath(sc.path, v.Outcome(i))
		bp.newEdges += pr.NewEdges
		if pr.NovelPath {
			bp.novel = true
			if p.RarityFloor <= 0 || pr.SiblingVisits >= p.RarityFloor {
				bp.lowRarityOnly = false
			}
		}
	}
	return h.shedDecide(p, pressure, bp)
}

// shedBatch is shedView for materialized traces (the SubmitTracesSession
// path).
func (h *Hive) shedBatch(st *programState, traces []*trace.Trace) (bool, error) {
	p := h.shedPolicy.Load()
	if p == nil {
		return false, nil
	}
	pressure := h.loadPressure()
	h.shed.notePressure(pressure)
	if pressure < p.Watermark {
		h.shed.admitted.Add(1)
		return false, nil
	}
	for _, tr := range traces {
		if tr.Outcome.IsFailure() && st.failures.get(tr.FailureSignature()) == nil {
			h.shed.firstSight.Add(1)
			h.shed.admitted.Add(1)
			return false, nil
		}
	}
	var bp batchPrice
	bp.lowRarityOnly = true
	for _, tr := range traces {
		pr := st.tree.PricePath(tr.Branches, tr.Outcome)
		bp.newEdges += pr.NewEdges
		if pr.NovelPath {
			bp.novel = true
			if p.RarityFloor <= 0 || pr.SiblingVisits >= p.RarityFloor {
				bp.lowRarityOnly = false
			}
		}
	}
	return h.shedDecide(p, pressure, bp)
}

// shedDecide applies the pricing ladder at a given overshoot — how far
// past the watermark the pressure sits, normalized to [0,1] of the
// remaining headroom. Cheapest work goes first; novelty above the rarity
// floor is never declined no matter the pressure (admission control
// upstream is what saturates truly unbounded load).
func (h *Hive) shedDecide(p *ShedPolicy, pressure float64, bp batchPrice) (bool, error) {
	overshoot := (pressure - p.Watermark) / (1 - p.Watermark)
	switch {
	case bp.newEdges == 0 && !bp.novel:
		// Structural duplicate: merging would move only visit counters.
		h.shed.dup.Add(1)
		return true, nil
	case bp.newEdges == 0 && overshoot >= 1.0/3:
		// Covered-only: novel recombination of edges the tree already
		// covers, dropped in the middle third.
		h.shed.covered.Add(1)
		return true, nil
	case bp.lowRarityOnly && overshoot >= 2.0/3:
		// Thin novelty below the rarity floor: decline rather than drop —
		// the client retries once pressure subsides.
		h.shed.deferred.Add(1)
		return false, fmt.Errorf("hive: low-rarity batch deferred at pressure %.2f: %w", pressure, pod.ErrDeferred)
	}
	h.shed.admitted.Add(1)
	return false, nil
}
