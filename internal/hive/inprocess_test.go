package hive

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/journal"
	"repro/internal/pod"
	"repro/internal/trace"
)

// TestBufferedInProcessColumnarJournal pins the in-process fleet fast path:
// a BufferedClient bound to a durable hive drains through the columnar
// submitter, so the journal records whole-batch columnar ops — byte-equal
// to the canonical batch encoding of each 256-trace drain chunk — and not
// one per-trace op. Before this path, an in-process fleet re-encoded every
// trace individually on the journal leg while the wire path shipped batches;
// now both legs write the same bytes once.
func TestBufferedInProcessColumnarJournal(t *testing.T) {
	p := buildCrashy(t)
	dir := t.TempDir()
	store, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Recover(store); err != nil {
		t.Fatal(err)
	}

	corpus := captureMixed(t, p, 600)
	buf := pod.NewBufferedFor(h, p.ID)
	if err := buf.SubmitTraces(corpus); err != nil {
		t.Fatal(err)
	}
	if err := buf.Drain(); err != nil {
		t.Fatal(err)
	}
	st, err := h.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != int64(len(corpus)) {
		t.Fatalf("hive ingested %d traces, want %d", st.Ingested, len(corpus))
	}
	_ = store.Close()

	// The drain chunks the queue at 256 traces per frame; recompute the
	// canonical encoding of each chunk and demand the journal holds exactly
	// those bytes, as whole-batch ops.
	var want [][]byte
	for start := 0; start < len(corpus); start += 256 {
		end := start + 256
		if end > len(corpus) {
			end = len(corpus)
		}
		enc, err := trace.EncodeBatch(p.ID, corpus[start:end])
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, enc)
	}
	reread, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reread.Close()
	var got [][]byte
	perTrace := 0
	if _, err := reread.Replay(p.ID, func(op *journal.Op) error {
		switch op.Kind {
		case journal.OpBatchColumnar:
			got = append(got, append([]byte(nil), op.Raw...))
		case journal.OpBatch:
			perTrace++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if perTrace != 0 {
		t.Fatalf("in-process drain journaled %d materialized batch ops; want all-columnar", perTrace)
	}
	if len(got) != len(want) {
		t.Fatalf("journal holds %d columnar ops, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("journaled chunk %d differs from canonical batch encoding", i)
		}
	}

	// Recovery from those whole-batch ops reproduces the live state.
	store2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	h2 := New("fleet")
	if err := h2.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	if err := h2.Recover(store2); err != nil {
		t.Fatal(err)
	}
	after, err := h2.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	st.Failures, after.Failures = nil, nil
	if !reflect.DeepEqual(st, after) {
		t.Fatalf("recovered stats differ: before %+v after %+v", st, after)
	}
}
