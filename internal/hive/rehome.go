package hive

import (
	"fmt"
	"sort"

	"repro/internal/archive"
	"repro/internal/journal"
	"repro/internal/prog"
)

// This file is the program re-homing surface for multi-hive sharding: a
// program's complete per-hive state (execution tree, fixes, proofs,
// failure aggregation, counters, known-good inputs, coordinated buffer,
// and the session dedup table) is exported as one journal.ProgramSnapshot,
// shipped as bytes (journal.EncodeSnapshot / DecodeSnapshot), and imported
// on another hive through the same DecodeChain restore path crash recovery
// uses. The snapshot carries the session dedup table, so a sealed frame
// acknowledged by the old owner is dup-acknowledged by the new one —
// re-homing preserves exactly-once end to end.

// ExportProgram captures one program's full state as a self-contained
// snapshot, taken under the program's checkpoint gate so no journaled
// mutation is in flight. The snapshot is the same shape a full durable
// checkpoint writes; encode it with journal.EncodeSnapshot to ship it.
func (h *Hive) ExportProgram(programID string) (*journal.ProgramSnapshot, error) {
	st, err := h.state(programID)
	if err != nil {
		return nil, err
	}
	st.ckpt.Lock()
	defer st.ckpt.Unlock()
	snap, err := h.snapshotProgramMeta(st)
	if err != nil {
		return nil, err
	}
	snap.Tree = st.tree.Encode()
	return snap, nil
}

// ImportProgram installs an exported snapshot into this hive, re-homing
// the program here. The program must already be registered (the corpus is
// fleet-wide) and must not have ingested anything yet: an import replaces
// state wholesale, and silently merging two divergent histories is exactly
// the kind of loss the journal exists to prevent. Restoration runs through
// the same DecodeChain path crash recovery uses; on a durable hive the
// imported state is immediately checkpointed, so the new owner's next boot
// recovers it without needing the old owner's data directory.
func (h *Hive) ImportProgram(snap *journal.ProgramSnapshot) error {
	if snap == nil || snap.ProgramID == "" {
		return fmt.Errorf("hive: import: empty snapshot")
	}
	st, err := h.state(snap.ProgramID)
	if err != nil {
		return fmt.Errorf("hive: import %s: program not registered: %w", snap.ProgramID, err)
	}
	st.ckpt.Lock()
	defer st.ckpt.Unlock()
	if st.ingested.Load() > 0 {
		return fmt.Errorf("hive: import %s: program already holds %d ingested traces here", snap.ProgramID, st.ingested.Load())
	}
	if len(snap.Tree) == 0 {
		return fmt.Errorf("hive: import %s: snapshot has no tree (delta segments cannot be imported alone)", snap.ProgramID)
	}
	if err := h.restoreProgram(st, snap, nil); err != nil {
		return err
	}
	st.tree.SetDeltaTracking(true)
	if h.journal != nil {
		// restoreProgram replaced st.tree; re-arm the certificate observer
		// on the new tree so post-import certs keep being journaled.
		h.observeCertificates(st)
		if err := h.journal.Checkpoint(snap); err != nil {
			return fmt.Errorf("hive: import %s: persist: %w", snap.ProgramID, err)
		}
		st.hasBase = true
		st.deltasSince = 0
	}
	return nil
}

// DropProgram forgets a program this hive no longer owns, freeing its
// state. Subsequent frames for it fail with ErrUnknownProgram — the
// routing tier answers them with a redirect before they reach the hive,
// so the error only surfaces to peers with a placement older than the
// move. Dropping an unknown program is a no-op.
func (h *Hive) DropProgram(programID string) {
	h.mu.Lock()
	delete(h.programs, programID)
	h.mu.Unlock()
}

// ExportFromStore recovers a dead hive's data directory into a scratch
// hive and exports every program persisted there — the takeover path when
// a hive process is gone but its journal survives: survivors split the
// dead hive's programs per the new placement and ImportProgram each.
// corpus must cover every program in the store (Recover refuses persisted
// state for unregistered programs) and salt must match the dead hive's.
// The returned map is keyed by program ID and sorted iteration is the
// caller's concern; the store stays attached to the scratch hive, so close
// it only after the exports are consumed.
func ExportFromStore(store *journal.Store, corpus []*prog.Program, salt string) (map[string]*journal.ProgramSnapshot, error) {
	scratch := New(salt)
	for _, p := range corpus {
		if err := scratch.RegisterProgram(p); err != nil {
			return nil, err
		}
	}
	if err := scratch.Recover(store); err != nil {
		return nil, fmt.Errorf("hive: takeover recovery: %w", err)
	}
	ids := store.Programs()
	sort.Strings(ids)
	out := make(map[string]*journal.ProgramSnapshot, len(ids))
	for _, id := range ids {
		snap, err := scratch.ExportProgram(id)
		if err != nil {
			return nil, err
		}
		out[id] = snap
	}
	return out, nil
}

// ExportFromArchive is cold-standby recovery (PR 10): rebuild a dead
// hive's programs with nothing but the archive store — its process gone,
// its data directory deleted. The archived chains are materialized into a
// journal-compatible scratch directory and recovered through the exact
// same journal.Open + Recover path a reboot from local disk takes, so
// archive recovery is disk recovery by construction; the exports then feed
// ImportProgram on the surviving hives. The scratch store stays attached
// to the scratch hive — close it only after the exports are consumed.
func ExportFromArchive(obj archive.ObjectStore, scratchDir string, corpus []*prog.Program, salt string) (map[string]*journal.ProgramSnapshot, *journal.Store, error) {
	if _, err := archive.Materialize(obj, nil, scratchDir); err != nil {
		return nil, nil, fmt.Errorf("hive: cold-standby materialize: %w", err)
	}
	store, err := journal.Open(scratchDir, journal.Options{})
	if err != nil {
		return nil, nil, fmt.Errorf("hive: cold-standby open: %w", err)
	}
	store.SetChainFetcher(archive.ChainFetcher(obj))
	out, err := ExportFromStore(store, corpus, salt)
	if err != nil {
		_ = store.Close()
		return nil, nil, err
	}
	return out, store, nil
}
