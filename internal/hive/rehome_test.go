package hive

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/journal"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TestSessionEvictionCounter forces the dedup table past its live-cache
// bound and checks the displacement counter and the note-once log: past
// maxSessions distinct sessions, every new session freezes exactly one LRU
// victim to the overflow tier, the first displacement (only the first)
// notes through Logf — and, the PR 10 contract, a displaced session keeps
// its full applied window when it thaws.
func TestSessionEvictionCounter(t *testing.T) {
	h := New("fleet")
	var warnings []string
	h.Logf = func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}
	for i := 0; i < maxSessions; i++ {
		h.markSession(fmt.Sprintf("sess-%d", i), 1)
	}
	if got := h.SessionEvictions(); got != 0 {
		t.Fatalf("displacements before the cache is full: %d", got)
	}
	const extra = 5
	for i := 0; i < extra; i++ {
		h.markSession(fmt.Sprintf("overflow-%d", i), 1)
	}
	if got := h.SessionEvictions(); got != extra {
		t.Fatalf("displacements = %d, want %d", got, extra)
	}
	if live, frozen := h.SessionCount(); live != maxSessions || frozen != extra {
		t.Fatalf("tier sizes: live=%d frozen=%d, want %d/%d", live, frozen, maxSessions, extra)
	}
	if len(warnings) != 1 {
		t.Fatalf("first displacement should note exactly once, got %d notes: %v", len(warnings), warnings)
	}
	if !strings.Contains(warnings[0], "exactly-once is unaffected") {
		t.Fatalf("note should state that dedup is preserved: %q", warnings[0])
	}
	// The displaced session (sess-0 was least recently used) thaws with its
	// window intact: its acked seq still dedups — exactly-once, unbounded.
	if !h.sessionApplied(h.sessionFor("sess-0"), 1) {
		t.Fatal("displaced session lost its applied window")
	}
	if live, frozen := h.SessionCount(); live != maxSessions || frozen != extra {
		t.Fatalf("thaw changed totals wrong: live=%d frozen=%d", live, frozen)
	}
}

// TestExportImportRoundTrip re-homes a program between two durable hives:
// export on A (after real ingest with sequenced sessions), ship as bytes,
// import on B. B must answer resubmitted (session, seq) frames as
// duplicates — exactly-once survives the move — and B's own restart must
// recover the imported state from B's data dir alone.
func TestExportImportRoundTrip(t *testing.T) {
	corpus := durableCorpus(t)
	p := corpus[0]
	dirA, dirB := t.TempDir(), t.TempDir()
	ha, storeA := newDurableHive(t, dirA, corpus)
	defer storeA.Close()

	rng := stats.NewRNG(11)
	const session = "sess-rehome"
	var batches [][]*trace.Trace
	for i := 0; i < 6; i++ {
		var batch []*trace.Trace
		for j := 0; j < 4; j++ {
			batch = append(batch, captureSeqTrace(t, p, "pod-r", uint64(i*4+j), []int64{rng.Int63n(256)}, trace.PrivacyHashed))
		}
		batches = append(batches, batch)
		if dup, err := ha.SubmitTracesSession(session, uint64(i+1), p.ID, batch); err != nil || dup {
			t.Fatalf("submit %d: dup=%v err=%v", i, dup, err)
		}
	}
	statsA, err := ha.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}

	snap, err := ha.ExportProgram(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Ship as bytes: the wire form must round-trip bit-exactly.
	raw, err := journal.EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	shipped, err := journal.DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}

	hb, storeB := newDurableHive(t, dirB, corpus)
	if err := hb.ImportProgram(shipped); err != nil {
		t.Fatal(err)
	}
	statsB, err := hb.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if statsB.Ingested != statsA.Ingested || statsB.Tree.Paths != statsA.Tree.Paths || statsB.FixCount != statsA.FixCount {
		t.Fatalf("imported stats diverge: A ingested=%d paths=%d fixes=%d, B ingested=%d paths=%d fixes=%d",
			statsA.Ingested, statsA.Tree.Paths, statsA.FixCount, statsB.Ingested, statsB.Tree.Paths, statsB.FixCount)
	}

	// Frames the old owner acknowledged must dup-ack on the new owner: the
	// session table traveled with the snapshot.
	for i, batch := range batches {
		dup, err := hb.SubmitTracesSession(session, uint64(i+1), p.ID, batch)
		if err != nil {
			t.Fatal(err)
		}
		if !dup {
			t.Fatalf("frame %d re-applied after re-homing (exactly-once broken)", i)
		}
	}
	after, _ := hb.ProgramStats(p.ID)
	if after.Ingested != statsA.Ingested {
		t.Fatalf("ingested moved on duplicate resubmission: %d -> %d", statsA.Ingested, after.Ingested)
	}
	// And new frames keep flowing on the new owner.
	if dup, err := hb.SubmitTracesSession(session, 100, p.ID, batches[0][:1]); err != nil || dup {
		t.Fatalf("fresh frame on new owner: dup=%v err=%v", dup, err)
	}

	// The import checkpointed on B: a restart from B's dir alone recovers
	// the re-homed state, old owner's data dir not required.
	if err := storeB.Close(); err != nil {
		t.Fatal(err)
	}
	hb2, storeB2 := newDurableHive(t, dirB, corpus)
	defer storeB2.Close()
	recovered, err := hb2.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Ingested != statsA.Ingested+1 {
		t.Fatalf("recovered ingested = %d, want %d", recovered.Ingested, statsA.Ingested+1)
	}
	if dup, err := hb2.SubmitTracesSession(session, 3, p.ID, batches[2]); err != nil || !dup {
		t.Fatalf("recovered new owner lost dedup state: dup=%v err=%v", dup, err)
	}
}

// TestImportGuards: imports into an unregistered or already-populated
// program must fail loudly instead of merging histories.
func TestImportGuards(t *testing.T) {
	corpus := durableCorpus(t)
	p := corpus[0]
	ha := New("fleet")
	for _, pr := range corpus {
		if err := ha.RegisterProgram(pr); err != nil {
			t.Fatal(err)
		}
	}
	tr := captureSeqTrace(t, p, "pod-g", 1, []int64{3}, trace.PrivacyHashed)
	if _, err := ha.SubmitTracesSession("s", 1, p.ID, []*trace.Trace{tr}); err != nil {
		t.Fatal(err)
	}
	snap, err := ha.ExportProgram(p.ID)
	if err != nil {
		t.Fatal(err)
	}

	empty := New("fleet")
	if err := empty.ImportProgram(snap); err == nil {
		t.Fatal("import into a hive without the program registered must fail")
	}
	if err := ha.ImportProgram(snap); err == nil {
		t.Fatal("import over a program that already ingested must fail")
	}
	if err := ha.ImportProgram(&journal.ProgramSnapshot{ProgramID: p.ID}); err == nil {
		t.Fatal("import of a tree-less snapshot must fail")
	}

	// DropProgram forgets the program; subsequent frames err cleanly.
	ha.DropProgram(p.ID)
	if _, err := ha.SubmitTracesSession("s", 2, p.ID, []*trace.Trace{tr}); err == nil {
		t.Fatal("dropped program still accepts frames")
	}
	ha.DropProgram(p.ID) // idempotent
}

// TestExportFromStore is the takeover path: a dead hive's data dir is
// recovered by a scratch hive and its programs exported for survivors.
func TestExportFromStore(t *testing.T) {
	corpus := durableCorpus(t)
	p := corpus[0]
	dir := t.TempDir()
	ha, storeA := newDurableHive(t, dir, corpus)
	tr := captureSeqTrace(t, p, "pod-t", 1, []int64{9}, trace.PrivacyHashed)
	if _, err := ha.SubmitTracesSession("s-dead", 1, p.ID, []*trace.Trace{tr}); err != nil {
		t.Fatal(err)
	}
	if err := storeA.Close(); err != nil { // the "crash"
		t.Fatal(err)
	}

	store2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	snaps, err := ExportFromStore(store2, corpus, "fleet")
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := snaps[p.ID]
	if !ok || len(snap.Tree) == 0 {
		t.Fatalf("takeover export missing program %s (got %d snapshots)", p.ID, len(snaps))
	}
	hb := New("fleet")
	for _, pr := range corpus {
		if err := hb.RegisterProgram(pr); err != nil {
			t.Fatal(err)
		}
	}
	if err := hb.ImportProgram(snap); err != nil {
		t.Fatal(err)
	}
	if dup, err := hb.SubmitTracesSession("s-dead", 1, p.ID, []*trace.Trace{tr}); err != nil || !dup {
		t.Fatalf("acked frame from the dead hive re-applied: dup=%v err=%v", dup, err)
	}
}
