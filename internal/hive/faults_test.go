package hive

// Disk-fault tests (PR 10): the hive's behavior when the journal's disk
// degrades — the read-only breaker on persistent append failures, the
// unbounded session dedup table surviving displacement and restart, and a
// kill-restart matrix under injected torn writes, short writes, failed
// fsyncs, and crash points. Everything acked must recover; everything
// refused must have left no partial state behind.

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/journal"
	"repro/internal/pod"
	"repro/internal/trace"
)

// TestReadOnlyBreakerENOSPC drives the journal into persistent clean write
// failure (disk full) and pins the degradation contract: after
// readOnlyAppendThreshold consecutive batch-append failures the program
// flips read-only — ingest refused with pod.ErrReadOnly, guidance and dup
// detection still served — and only a durably landed checkpoint closes the
// breaker, even after the disk recovers.
func TestReadOnlyBreakerENOSPC(t *testing.T) {
	corpus := durableCorpus(t)
	p := corpus[0]
	dir := t.TempDir()
	ffs := faultfs.Wrap(nil, faultfs.Plan{})
	h := New("fleet")
	var warned []string
	h.Logf = func(format string, args ...any) {
		warned = append(warned, fmt.Sprintf(format, args...))
	}
	for _, pr := range corpus {
		if err := h.RegisterProgram(pr); err != nil {
			t.Fatal(err)
		}
	}
	store, err := journal.Open(dir, journal.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Recover(store); err != nil {
		t.Fatal(err)
	}
	batch := []*trace.Trace{captureSeqTrace(t, p, "pod-ro", 1, []int64{5}, trace.PrivacyHashed)}
	if dup, err := h.SubmitTracesSession("ro", 1, p.ID, batch); err != nil || dup {
		t.Fatalf("healthy ingest: dup=%v err=%v", dup, err)
	}

	ffs.ForceENOSPC(true)
	for i := 0; i < readOnlyAppendThreshold; i++ {
		_, err := h.SubmitTracesSession("ro", uint64(2+i), p.ID, batch)
		if err == nil {
			t.Fatalf("append %d succeeded on a full disk", i)
		}
		if errors.Is(err, pod.ErrReadOnly) {
			t.Fatalf("breaker opened after only %d failures: %v", i, err)
		}
	}
	if !h.ProgramReadOnly(p.ID) || h.ReadOnlyPrograms() != 1 {
		t.Fatalf("breaker not open after %d consecutive failures", readOnlyAppendThreshold)
	}
	if _, err := h.SubmitTracesSession("ro", 9, p.ID, batch); !errors.Is(err, pod.ErrReadOnly) {
		t.Fatalf("read-only program accepted ingest path: %v", err)
	}
	found := false
	for _, w := range warned {
		if strings.Contains(w, "read-only") {
			found = true
		}
	}
	if !found {
		t.Fatalf("breaker opened without an operator note: %v", warned)
	}
	// Reads degrade gracefully: guidance and dup detection still answer.
	if _, err := h.Guidance(p.ID, 4); err != nil {
		t.Fatalf("guidance refused while read-only: %v", err)
	}
	if dup, err := h.SubmitTracesSession("ro", 1, p.ID, batch); err != nil || !dup {
		t.Fatalf("acked frame not dup-acked while read-only: dup=%v err=%v", dup, err)
	}

	// Disk recovers. The breaker stays open — acking ingest again before a
	// checkpoint proves durability would ack into an unproven journal.
	ffs.ForceENOSPC(false)
	if _, err := h.SubmitTracesSession("ro", 2, p.ID, batch); !errors.Is(err, pod.ErrReadOnly) {
		t.Fatalf("breaker closed without a checkpoint: %v", err)
	}
	if err := h.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after disk recovery: %v", err)
	}
	if h.ProgramReadOnly(p.ID) {
		t.Fatal("checkpoint landed but the breaker is still open")
	}
	if dup, err := h.SubmitTracesSession("ro", 2, p.ID, batch); err != nil || dup {
		t.Fatalf("ingest after breaker close: dup=%v err=%v", dup, err)
	}

	// Restart: exactly the acked frames (seq 1 and 2) recovered.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	h2, store2 := newDurableHive(t, dir, corpus)
	defer store2.Close()
	for _, seq := range []uint64{1, 2} {
		if dup, err := h2.SubmitTracesSession("ro", seq, p.ID, batch); err != nil || !dup {
			t.Fatalf("acked seq %d lost across restart: dup=%v err=%v", seq, dup, err)
		}
	}
	st2, err := h2.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Ingested != 2 {
		t.Fatalf("recovered ingested = %d, want 2 (refused frames must not replay)", st2.Ingested)
	}
}

// TestUnboundedSessionDedupDurable pushes the session table well past the
// live-cache bound with journaled ingest and proves the PR 10 contract at
// scale: every one of the >maxSessions sessions dup-acks on resubmission —
// before and after a kill-restart — and the ingest count never moves on a
// duplicate. The dedup window is unbounded; the cache bound is a memory
// layout, not a correctness boundary.
func TestUnboundedSessionDedupDurable(t *testing.T) {
	corpus := durableCorpus(t)
	p := corpus[1] // the clean program: cheap, deterministic applies
	dir := t.TempDir()
	h, store := newDurableHive(t, dir, corpus)
	h.Logf = func(string, ...any) {}
	batch := []*trace.Trace{captureSeqTrace(t, p, "pod-many", 1, []int64{7}, trace.PrivacyHashed)}

	total := maxSessions + 64
	for i := 0; i < total; i++ {
		dup, err := h.SubmitTracesSession(fmt.Sprintf("s-%d", i), 1, p.ID, batch)
		if err != nil || dup {
			t.Fatalf("session %d: dup=%v err=%v", i, dup, err)
		}
	}
	if live, frozen := h.SessionCount(); live != maxSessions || frozen != total-maxSessions {
		t.Fatalf("tier sizes live=%d frozen=%d, want %d/%d", live, frozen, maxSessions, total-maxSessions)
	}
	before, err := h.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		dup, err := h.SubmitTracesSession(fmt.Sprintf("s-%d", i), 1, p.ID, batch)
		if err != nil || !dup {
			t.Fatalf("resubmitted session %d not dup-acked: dup=%v err=%v", i, dup, err)
		}
	}
	after, _ := h.ProgramStats(p.ID)
	if after.Ingested != before.Ingested {
		t.Fatalf("duplicates moved ingest: %d -> %d", before.Ingested, after.Ingested)
	}

	// kill -9: no checkpoint. Recovery replays the journal, and the merged
	// session table must still cover every session.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	h2, store2 := newDurableHive(t, dir, corpus)
	defer store2.Close()
	h2.Logf = func(string, ...any) {}
	for i := 0; i < total; i++ {
		dup, err := h2.SubmitTracesSession(fmt.Sprintf("s-%d", i), 1, p.ID, batch)
		if err != nil || !dup {
			t.Fatalf("session %d lost across restart: dup=%v err=%v", i, dup, err)
		}
	}
	recovered, err := h2.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Ingested != before.Ingested {
		t.Fatalf("recovered ingested = %d, want %d", recovered.Ingested, before.Ingested)
	}
}

// TestKillRestartUnderFaultMatrix replays the E12-style kill-restart
// experiment under a matrix of fault plans: sessioned frames stream into a
// durable (fsynced) hive whose disk tears writes, fails fsyncs, runs out of
// space, breaks renames, and finally crashes mid-sequence. Whatever the
// injector did, a clean-disk reboot must recover, every frame acked before
// the crash must dup-ack after it, and resubmission must not move ingest.
func TestKillRestartUnderFaultMatrix(t *testing.T) {
	corpus := durableCorpus(t)
	p := corpus[0]
	// A small trace pool, captured once; the storm reuses them across
	// sessions (dedup is keyed by session/seq, not trace content).
	pool := make([][]*trace.Trace, 4)
	for i := range pool {
		pool[i] = []*trace.Trace{captureSeqTrace(t, p, "pod-m", uint64(i), []int64{int64(10 + i*31)}, trace.PrivacyHashed)}
	}
	plans := []faultfs.Plan{
		{TornWriteRate: 0.05, SyncErrRate: 0.05, CrashAfterOps: 150},
		{ShortWriteRate: 0.05, WriteErrRate: 0.05, CrashAfterOps: 200},
		{TornWriteRate: 0.03, RenameErrRate: 0.08, TruncateErrRate: 0.02, CrashAfterOps: 250},
	}
	for pi, plan := range plans {
		for seed := int64(1); seed <= 3; seed++ {
			plan := plan
			plan.Seed = seed
			t.Run(fmt.Sprintf("plan%d-seed%d", pi, seed), func(t *testing.T) {
				dir := t.TempDir()
				ffs := faultfs.Wrap(nil, plan)
				h := New("fleet")
				h.Logf = func(string, ...any) {}
				for _, pr := range corpus {
					if err := h.RegisterProgram(pr); err != nil {
						t.Fatal(err)
					}
				}
				store, err := journal.Open(dir, journal.Options{Fsync: true, FS: ffs})
				if err != nil {
					t.Fatal(err)
				}
				if err := h.Recover(store); err != nil {
					t.Fatal(err)
				}

				type frame struct {
					session string
					seq     uint64
					batch   []*trace.Trace
				}
				var acked []frame
				for i := 0; i < 120 && !ffs.Crashed(); i++ {
					f := frame{
						session: fmt.Sprintf("sess-%d", i%7),
						seq:     uint64(i/7 + 1),
						batch:   pool[i%len(pool)],
					}
					dup, err := h.SubmitTracesSession(f.session, f.seq, p.ID, f.batch)
					if err == nil && !dup {
						acked = append(acked, f)
					}
					// Periodic checkpoints exercise the snapshot/rename fault
					// paths and close any read-only breaker the storm opened.
					if i%25 == 24 {
						_ = h.CheckpointProgram(p.ID)
					}
				}
				stats := ffs.Stats()
				if stats.TornWrites+stats.ShortWrites+stats.WriteErrs+stats.SyncErrs+
					stats.RenameErrs+stats.TruncErrs+stats.CrashedOps == 0 {
					t.Fatalf("plan injected nothing: %+v", stats)
				}
				if len(acked) == 0 {
					t.Fatal("storm acked nothing; the matrix proves nothing")
				}
				_ = store.Close() // the process is "dead"; close may itself fail

				// Reboot on a healthy disk: recovery must absorb whatever the
				// injector left behind.
				h2, store2 := newDurableHive(t, dir, corpus)
				defer store2.Close()
				before, err := h2.ProgramStats(p.ID)
				if err != nil {
					t.Fatal(err)
				}
				if before.Ingested < int64(len(acked)) {
					t.Fatalf("recovered ingested=%d < %d acked frames (acked state lost)", before.Ingested, len(acked))
				}
				for _, f := range acked {
					dup, err := h2.SubmitTracesSession(f.session, f.seq, p.ID, f.batch)
					if err != nil {
						t.Fatalf("resubmit %s/%d: %v", f.session, f.seq, err)
					}
					if !dup {
						t.Fatalf("acked frame %s/%d re-applied after crash (exactly-once broken)", f.session, f.seq)
					}
				}
				after, _ := h2.ProgramStats(p.ID)
				if after.Ingested != before.Ingested {
					t.Fatalf("resubmitting acked frames moved ingest: %d -> %d", before.Ingested, after.Ingested)
				}
			})
		}
	}
}
