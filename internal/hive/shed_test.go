package hive

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/pod"
	"repro/internal/prog"
	"repro/internal/trace"
)

// buildRecomb returns a program with two independent branches on two
// inputs: four distinct paths over the same four branch edges, so path
// novelty and edge novelty can be driven separately.
func buildRecomb(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("recomb", 2)
	b.Input(0, 0)
	b.Input(1, 1)
	l1 := b.NewLabel()
	b.BrImm(0, prog.CmpGE, 50, l1)
	b.Bind(l1)
	l2 := b.NewLabel()
	b.BrImm(1, prog.CmpGE, 50, l2)
	b.Bind(l2)
	b.Halt()
	return b.MustBuild()
}

// gauge is an injectable pressure source.
type gauge struct{ bits atomic.Uint64 }

func (g *gauge) set(v float64)   { g.bits.Store(math.Float64bits(v)) }
func (g *gauge) read() float64   { return math.Float64frombits(g.bits.Load()) }
func (g *gauge) source() float64 { return g.read() }

// shedHive is a registered hive with an installed policy and gauge.
func shedHive(t *testing.T, p *prog.Program, policy *ShedPolicy) (*Hive, *gauge) {
	t.Helper()
	h := New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	g := &gauge{}
	h.SetShedPolicy(policy)
	h.SetPressureSource(g.source)
	return h, g
}

func ingested(t *testing.T, h *Hive, programID string) int64 {
	t.Helper()
	st, err := h.ProgramStats(programID)
	if err != nil {
		t.Fatal(err)
	}
	return st.Ingested
}

// TestShedLadder walks the pricing ladder end to end: below the
// watermark everything is admitted; past it exact duplicates go first;
// covered-only recombinations go in the middle third; and a shed batch
// never marks its session, so resubmission under low pressure re-prices
// and ingests.
func TestShedLadder(t *testing.T) {
	p := buildRecomb(t)
	h, g := shedHive(t, p, &ShedPolicy{Watermark: 0.5})

	tt := captureTrace(t, p, "pod-0", []int64{60, 60}, trace.PrivacyHashed) // (T,T)
	ff := captureTrace(t, p, "pod-0", []int64{10, 10}, trace.PrivacyHashed) // (F,F)
	tf := captureTrace(t, p, "pod-0", []int64{60, 10}, trace.PrivacyHashed) // (T,F)
	ft := captureTrace(t, p, "pod-0", []int64{10, 60}, trace.PrivacyHashed) // (F,T)

	// Prime the tree: both (T,T) and (F,F), so all four edges are covered.
	// (Sequence numbers are 1-based: the dedup base starts at 0.)
	for seq, tr := range []*trace.Trace{tt, ff} {
		if _, err := h.SubmitTracesSession("sess", uint64(seq+1), p.ID, []*trace.Trace{tr}); err != nil {
			t.Fatal(err)
		}
	}
	base := ingested(t, h, p.ID)

	// Below the watermark: a duplicate sails through.
	g.set(0.4)
	if _, err := h.SubmitTracesSession("sess", 3, p.ID, []*trace.Trace{tt}); err != nil {
		t.Fatal(err)
	}
	if got := ingested(t, h, p.ID); got != base+1 {
		t.Fatalf("below-watermark duplicate not ingested: %d, want %d", got, base+1)
	}

	// Just past the watermark (overshoot 0.1): the duplicate is shed —
	// acked, not applied, session not marked.
	g.set(0.55)
	dup, err := h.SubmitTracesSession("sess", 4, p.ID, []*trace.Trace{tt})
	if err != nil || dup {
		t.Fatalf("shed duplicate: dup=%v err=%v", dup, err)
	}
	if got := ingested(t, h, p.ID); got != base+1 {
		t.Fatalf("shed duplicate was applied: ingested %d", got)
	}
	// ...but a covered-only recombination still passes at overshoot 0.1.
	if _, err := h.SubmitTracesSession("sess", 5, p.ID, []*trace.Trace{tf}); err != nil {
		t.Fatal(err)
	}
	if got := ingested(t, h, p.ID); got != base+2 {
		t.Fatalf("covered-only batch below its tier was shed: ingested %d", got)
	}

	// Overshoot 0.4 (>= 1/3): covered-only goes too.
	g.set(0.7)
	if dup, err := h.SubmitTracesSession("sess", 6, p.ID, []*trace.Trace{ft}); err != nil || dup {
		t.Fatalf("shed covered-only: dup=%v err=%v", dup, err)
	}
	if got := ingested(t, h, p.ID); got != base+2 {
		t.Fatalf("shed covered-only batch was applied: ingested %d", got)
	}

	// The shed frames were never session-marked: resubmitting seq 4 and 6
	// verbatim at low pressure re-prices and ingests (dup=false).
	g.set(0)
	for _, seq := range []uint64{4, 6} {
		tr := tt
		if seq == 6 {
			tr = ft
		}
		dup, err := h.SubmitTracesSession("sess", seq, p.ID, []*trace.Trace{tr})
		if err != nil || dup {
			t.Fatalf("resubmit seq %d: dup=%v err=%v", seq, dup, err)
		}
	}
	if got := ingested(t, h, p.ID); got != base+4 {
		t.Fatalf("resubmitted shed frames not ingested: %d, want %d", got, base+4)
	}

	ss := h.ShedStats()
	if ss.ShedDuplicate != 1 || ss.ShedCovered != 1 || ss.Deferred != 0 {
		t.Fatalf("shed counters = %+v", ss)
	}
	if ss.Admitted < 4 {
		t.Fatalf("admitted counter = %d, want >= 4", ss.Admitted)
	}
}

// TestShedNeverFirstSightFailure pins the invariant overload must not
// break: a failure signature the hive has never aggregated is admitted
// at ANY pressure — while duplicates of a known signature are shed like
// any other duplicate.
func TestShedNeverFirstSightFailure(t *testing.T) {
	p := buildCrashy(t)
	h, g := shedHive(t, p, &ShedPolicy{Watermark: 0.5})

	crash := captureTrace(t, p, "pod-0", []int64{105}, trace.PrivacyHashed)
	if !crash.Outcome.IsFailure() {
		t.Fatal("trigger input did not crash")
	}

	// Saturated: pressure 1.0, and the batch even includes a duplicate-
	// to-be — the first-sight signature must carry the whole batch in.
	g.set(1.0)
	if _, err := h.SubmitTracesSession("sess", 1, p.ID, []*trace.Trace{crash}); err != nil {
		t.Fatal(err)
	}
	if got := ingested(t, h, p.ID); got != 1 {
		t.Fatalf("first-sight crash shed at saturation: ingested %d", got)
	}
	ss := h.ShedStats()
	if ss.AdmittedFirstSight != 1 {
		t.Fatalf("AdmittedFirstSight = %d, want 1", ss.AdmittedFirstSight)
	}

	// The same crash again: its signature is now known, its path is a
	// structural duplicate — shed like any repeat.
	if dup, err := h.SubmitTracesSession("sess", 2, p.ID, []*trace.Trace{crash}); err != nil || dup {
		t.Fatalf("known-signature duplicate: dup=%v err=%v", dup, err)
	}
	if got := ingested(t, h, p.ID); got != 1 {
		t.Fatal("known-signature duplicate crash was applied at saturation")
	}
	if ss := h.ShedStats(); ss.ShedDuplicate != 1 {
		t.Fatalf("ShedDuplicate = %d, want 1", ss.ShedDuplicate)
	}
}

// TestShedDefersLowRarityNovelty exercises the last tier: novel paths
// carrying new edges are deferred (pod.ErrDeferred) near saturation when
// their divergence sibling is thinly visited, and admitted once the
// sibling's traffic marks the frontier as a prime steering target.
func TestShedDefersLowRarityNovelty(t *testing.T) {
	p := buildCrashy(t)
	h, g := shedHive(t, p, &ShedPolicy{Watermark: 0.5, RarityFloor: 3})

	benign := captureTrace(t, p, "pod-0", []int64{1}, trace.PrivacyHashed)  // input < 100 path
	novel := captureTrace(t, p, "pod-0", []int64{150}, trace.PrivacyHashed) // >= 100, >= 110: new edges

	if _, err := h.SubmitTracesSession("sess", 1, p.ID, []*trace.Trace{benign}); err != nil {
		t.Fatal(err)
	}

	// Sibling visited once < RarityFloor 3: deferred at overshoot 0.9.
	g.set(0.95)
	_, err := h.SubmitTracesSession("sess", 2, p.ID, []*trace.Trace{novel})
	if !errors.Is(err, pod.ErrDeferred) {
		t.Fatalf("low-rarity novelty: err = %v, want pod.ErrDeferred", err)
	}
	if got := ingested(t, h, p.ID); got != 1 {
		t.Fatalf("deferred batch was applied: ingested %d", got)
	}
	if ss := h.ShedStats(); ss.Deferred != 1 {
		t.Fatalf("Deferred = %d, want 1", ss.Deferred)
	}

	// Drive the sibling's traffic over the floor, then retry the exact
	// same frame: now a prime target, admitted even at the same pressure.
	g.set(0)
	for seq := uint64(3); seq < 6; seq++ {
		if _, err := h.SubmitTracesSession("sess", seq, p.ID, []*trace.Trace{benign}); err != nil {
			t.Fatal(err)
		}
	}
	g.set(0.95)
	dup, err := h.SubmitTracesSession("sess", 2, p.ID, []*trace.Trace{novel})
	if err != nil || dup {
		t.Fatalf("retried novelty above the floor: dup=%v err=%v", dup, err)
	}
	if got := ingested(t, h, p.ID); got != 5 {
		t.Fatalf("retried novelty not ingested: %d, want 5", got)
	}
}

// TestShedEvictedSessionAtLeastOnce is the PR 9 satellite, updated by
// PR 10's unbounded dedup table: a session displaced from the live cache
// keeps its frozen window, so its resubmission is dup-acked — exactly-once
// survives cache displacement at any shed pressure, where the old bounded
// table degraded to at-least-once. (Historical name kept so CI test-name
// regexes keep matching; the asserted contract is now exactly-once.)
func TestShedEvictedSessionAtLeastOnce(t *testing.T) {
	p := buildRecomb(t)
	h, g := shedHive(t, p, &ShedPolicy{Watermark: 0.5})

	tr := captureTrace(t, p, "pod-0", []int64{60, 60}, trace.PrivacyHashed)
	if dup, err := h.SubmitTracesSession("victim", 1, p.ID, []*trace.Trace{tr}); err != nil || dup {
		t.Fatalf("initial submit: dup=%v err=%v", dup, err)
	}

	// Flood the live cache until "victim" is displaced to the frozen tier.
	for i := 0; i < maxSessions; i++ {
		if _, err := h.SubmitTracesSession(fmt.Sprintf("flood-%d", i), 1, p.ID, []*trace.Trace{tr}); err != nil {
			t.Fatal(err)
		}
	}
	if h.SessionEvictions() == 0 {
		t.Fatal("flood did not displace any session from the live cache")
	}
	if live, frozen := h.SessionCount(); live > maxSessions || frozen == 0 {
		t.Fatalf("tiering wrong after flood: live=%d frozen=%d", live, frozen)
	}
	before := ingested(t, h, p.ID)

	// Resubmit the acked frame verbatim while the hive sheds hard: the
	// frozen window thaws and the frame is dup-acked before any pricing.
	g.set(0.9)
	dup, err := h.SubmitTracesSession("victim", 1, p.ID, []*trace.Trace{tr})
	if err != nil {
		t.Fatalf("displaced-session resubmission errored: %v", err)
	}
	if !dup {
		t.Fatal("displaced session lost its dedup window (at-least-once regression)")
	}
	if got := ingested(t, h, p.ID); got != before {
		t.Fatalf("dup-acked resubmission was applied: ingested %d, want %d", got, before)
	}

	// Same at low pressure: the window, not the shedder, carries dedup.
	g.set(0)
	dup, err = h.SubmitTracesSession("victim", 1, p.ID, []*trace.Trace{tr})
	if err != nil || !dup {
		t.Fatalf("low-pressure resubmission after displacement: dup=%v err=%v", dup, err)
	}
	if got := ingested(t, h, p.ID); got != before {
		t.Fatalf("low-pressure resubmission double-applied: ingested %d, want %d", got, before)
	}
}
