package hive

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/exectree"
	"repro/internal/fix"
	"repro/internal/pod"
	"repro/internal/prog"
	"repro/internal/proggen"
	"repro/internal/proof"
	"repro/internal/trace"
)

// compile-time check: the hive satisfies the pod's client interface.
var _ pod.HiveClient = (*Hive)(nil)

// buildCrashy returns a program crashing for input in [100, 110).
func buildCrashy(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("crashy", 1)
	hi, end := b.NewLabel(), b.NewLabel()
	b.Input(0, 0)
	b.BrImm(0, prog.CmpGE, 100, hi)
	b.Jmp(end)
	b.Bind(hi)
	inner := b.NewLabel()
	b.BrImm(0, prog.CmpLT, 110, inner)
	b.Jmp(end)
	b.Bind(inner)
	b.Const(1, 0)
	b.Div(2, 1, 1)
	b.Bind(end)
	b.Halt()
	return b.MustBuild()
}

func newPod(t *testing.T, h *Hive, p *prog.Program, id string, privacy trace.PrivacyLevel) *pod.Pod {
	t.Helper()
	pd, err := pod.New(pod.Config{
		Program:   p,
		ID:        id,
		Hive:      h,
		Privacy:   privacy,
		Salt:      "fleet",
		Seed:      uint64(len(id)) * 7,
		BatchSize: 1, // flush every run for test determinism
	})
	if err != nil {
		t.Fatal(err)
	}
	return pd
}

func TestIngestUnknownProgram(t *testing.T) {
	h := New("fleet")
	err := h.SubmitTraces([]*trace.Trace{{ProgramID: "nope"}})
	if !errors.Is(err, ErrUnknownProgram) {
		t.Fatalf("err = %v, want ErrUnknownProgram", err)
	}
}

func TestEndToEndCrashFixLoop(t *testing.T) {
	p := buildCrashy(t)
	h := New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	pd := newPod(t, h, p, "pod-0", trace.PrivacyHashed)

	// Benign runs populate the tree (and known-good knowledge).
	for v := int64(0); v < 20; v++ {
		if _, err := pd.RunOnce([]int64{v}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := h.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != 20 || st.FixCount != 0 {
		t.Fatalf("after benign runs: %+v", st)
	}

	// A user hits the crash; the hive synthesizes a validated input guard.
	res, err := pd.RunOnce([]int64{105})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != prog.OutcomeCrash {
		t.Fatalf("trigger run outcome = %v, want crash", res.Outcome)
	}
	st, _ = h.ProgramStats(p.ID)
	if st.FixCount != 1 {
		t.Fatalf("fixes = %d, want 1 (records: %+v)", st.FixCount, st.Failures)
	}
	if len(st.Failures) != 1 || !st.Failures[0].Fixed {
		t.Fatalf("failure records = %+v", st.Failures)
	}

	// The pod pulls the fix; the same dangerous input no longer crashes.
	if err := pd.SyncFixes(); err != nil {
		t.Fatal(err)
	}
	res2, err := pd.RunOnce([]int64{105})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Outcome != prog.OutcomeOK {
		t.Fatalf("post-fix outcome = %v, want ok", res2.Outcome)
	}
	ps := pd.Stats()
	if ps.FailuresAverted != 1 {
		t.Fatalf("pod stats = %+v, want 1 averted failure", ps)
	}
}

func TestEndToEndDeadlockImmunityLoop(t *testing.T) {
	b := prog.NewBuilder("dining", 0).SetLocks(2)
	b.Thread()
	b.Lock(0).Yield().Lock(1).Unlock(1).Unlock(0).Halt()
	b.Thread()
	b.Lock(1).Yield().Lock(0).Unlock(0).Unlock(1).Halt()
	p := b.MustBuild()

	h := New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}

	// A fleet of pods with different schedule seeds; some will deadlock.
	pods := make([]*pod.Pod, 20)
	for i := range pods {
		pd, err := pod.New(pod.Config{
			Program: p, ID: "pod-" + string(rune('a'+i)), Hive: h,
			Seed: uint64(i), Preempt: 0.8, BatchSize: 1, Salt: "fleet",
		})
		if err != nil {
			t.Fatal(err)
		}
		pods[i] = pd
	}

	deadlocks := 0
	for _, pd := range pods {
		for r := 0; r < 10; r++ {
			res, err := pd.RunOnce(nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Outcome == prog.OutcomeDeadlock {
				deadlocks++
			}
		}
	}
	if deadlocks == 0 {
		t.Fatal("fleet never deadlocked; test vacuous")
	}
	st, _ := h.ProgramStats(p.ID)
	if st.FixCount == 0 {
		t.Fatalf("no immunity fix minted; stats %+v", st)
	}

	// All pods sync; no more deadlocks on any schedule.
	after := 0
	for _, pd := range pods {
		if err := pd.SyncFixes(); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 10; r++ {
			res, err := pd.RunOnce(nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Outcome == prog.OutcomeDeadlock {
				after++
			}
		}
	}
	if after != 0 {
		t.Fatalf("immunized fleet deadlocked %d times", after)
	}
}

func TestGuidanceClosesCoverageGaps(t *testing.T) {
	p := buildCrashy(t)
	h := New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	pd := newPod(t, h, p, "pod-g", trace.PrivacyHashed)

	// Natural runs never exceed input 50: branch 0's taken side stays dark.
	for v := int64(0); v < 50; v++ {
		if _, err := pd.RunOnce([]int64{v}); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := h.Tree(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := tree.EdgeCoverage(p)

	// Guidance steers into the gap (which contains the crash).
	n, err := pd.PullGuidance(8)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("hive issued no guidance despite open frontiers")
	}
	after, total := tree.EdgeCoverage(p)
	if after <= before {
		t.Fatalf("coverage did not grow: %d -> %d of %d", before, after, total)
	}
	// Guided runs found the crash; a fix exists now.
	st, _ := h.ProgramStats(p.ID)
	if st.FixCount == 0 {
		t.Fatalf("guided exploration missed the crash: %+v", st)
	}
}

func TestProveAfterFullCoverage(t *testing.T) {
	// A bug-free program: if x > 100 then y=1 else y=2; always halts OK.
	b := prog.NewBuilder("clean", 1)
	hi, end := b.NewLabel(), b.NewLabel()
	b.Input(0, 0)
	b.BrImm(0, prog.CmpGT, 100, hi)
	b.Const(1, 2)
	b.Jmp(end)
	b.Bind(hi)
	b.Const(1, 1)
	b.Bind(end)
	b.Halt()
	p := b.MustBuild()

	h := New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	pd := newPod(t, h, p, "pod-p", trace.PrivacyHashed)
	if _, err := pd.RunOnce([]int64{5}); err != nil {
		t.Fatal(err)
	}

	pr, err := h.Prove(p.ID, proof.PropAllOK)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Complete || !pr.Holds {
		t.Fatalf("proof = %+v (%s)", pr, pr.Statement())
	}
	if pr.NewEvidence == 0 {
		t.Error("prover should have synthesized the missing side itself")
	}

	// Cached on second call (same epoch).
	pr2, err := h.Prove(p.ID, proof.PropAllOK)
	if err != nil {
		t.Fatal(err)
	}
	if pr2 != pr {
		t.Error("expected cached proof at unchanged epoch")
	}
}

func TestProofRefutedThenFixedThenReproved(t *testing.T) {
	p := buildCrashy(t)
	h := New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	pd := newPod(t, h, p, "pod-r", trace.PrivacyHashed)
	if _, err := pd.RunOnce([]int64{5}); err != nil {
		t.Fatal(err)
	}

	// The prover completes the tree and finds the crash: REFUTED, and the
	// crash evidence lands in the tree.
	pr, err := h.Prove(p.ID, proof.PropNoCrash)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Holds {
		t.Fatalf("proof should be refuted: %s", pr.Statement())
	}
	if len(pr.CounterExamples) == 0 {
		t.Fatal("no counterexamples")
	}
}

func TestRepairLabForUnfixableFailures(t *testing.T) {
	// A hang bug: no automated fix kind exists; must land in the repair lab.
	p, bugs := proggen.MustGenerate(proggen.Spec{
		Seed: 3, Depth: 2, Bugs: []proggen.BugKind{proggen.BugHang},
	})
	if len(bugs) != 1 || bugs[0].Kind != proggen.BugHang {
		t.Fatalf("ground truth = %+v", bugs)
	}
	h := New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	pd, err := pod.New(pod.Config{
		Program: p, ID: "pod-h", Hive: h, BatchSize: 1, Salt: "fleet",
		MaxSteps: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pd.RunOnce([]int64{bugs[0].TriggerLo})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != prog.OutcomeHang {
		t.Fatalf("outcome = %v, want hang (trigger %+v)", res.Outcome, bugs[0])
	}
	st, _ := h.ProgramStats(p.ID)
	if st.RepairLab != 1 {
		t.Fatalf("repair lab = %d, want 1: %+v", st.RepairLab, st.Failures)
	}
}

func TestFixValidationRejectsOverbroadGuard(t *testing.T) {
	// Known-good inputs inside the would-be danger zone block the guard.
	p := buildCrashy(t)
	h := New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	// Raw-privacy pod: the hive learns known-good inputs.
	pd := newPod(t, h, p, "pod-v", trace.PrivacyRaw)
	for v := int64(0); v < 120; v++ {
		if v >= 100 && v < 110 {
			continue // skip the crash zone for now
		}
		if _, err := pd.RunOnce([]int64{v}); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: the synthesized guard covers exactly (100..110), which contains
	// no known-good input, so it must validate.
	if _, err := pd.RunOnce([]int64{105}); err != nil {
		t.Fatal(err)
	}
	st, _ := h.ProgramStats(p.ID)
	if st.FixCount != 1 {
		t.Fatalf("fix count = %d: %+v", st.FixCount, st.Failures)
	}
	fixes, _, err := h.FixesSince(p.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	guard := fixes[0].Guard
	if guard == nil {
		t.Fatal("expected input guard")
	}
	// The guard matches the crash zone and nothing known-good.
	if !guard.Matches([]int64{105}) {
		t.Error("guard misses the crash input")
	}
	if guard.Matches([]int64{50}) || guard.Matches([]int64{150}) {
		t.Error("guard over-matches safe inputs")
	}
}

func TestFixesSinceVersioning(t *testing.T) {
	p := buildCrashy(t)
	h := New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	pd := newPod(t, h, p, "pod-s", trace.PrivacyHashed)
	if _, err := pd.RunOnce([]int64{105}); err != nil {
		t.Fatal(err)
	}
	fixes, v1, err := h.FixesSince(p.ID, 0)
	if err != nil || len(fixes) != 1 || v1 != 1 {
		t.Fatalf("fixes=%d v=%d err=%v", len(fixes), v1, err)
	}
	fixes2, v2, err := h.FixesSince(p.ID, v1)
	if err != nil || len(fixes2) != 0 || v2 != v1 {
		t.Fatalf("incremental fixes=%d v=%d err=%v", len(fixes2), v2, err)
	}
}

var _ = fix.Fix{} // keep the import when the test set shrinks

func TestConcurrentGuidanceRequests(t *testing.T) {
	// Schedule guidance mutates enumerator state; concurrent pod requests
	// must be safe and return disjoint schedules.
	b := prog.NewBuilder("mt-conc", 0).SetLocks(2)
	b.Thread()
	b.Lock(0).Lock(1).Unlock(1).Unlock(0).Halt()
	b.Thread()
	b.Lock(0).Lock(1).Unlock(1).Unlock(0).Halt()
	p := b.MustBuild()

	h := New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make(chan int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cases, err := h.Guidance(p.ID, 3)
			if err != nil {
				results <- -1
				return
			}
			results <- len(cases)
		}()
	}
	wg.Wait()
	close(results)
	for n := range results {
		if n < 0 {
			t.Fatal("concurrent guidance errored")
		}
	}
}

func TestCoordinatedSamplingNarrowsInHive(t *testing.T) {
	// Loop-free program so every site decides once per run.
	b := prog.NewBuilder("coord", 1)
	for i := 0; i < 5; i++ {
		skip := b.NewLabel()
		b.Input(0, 0)
		b.BrImm(0, prog.CmpGT, int64(40*i+20), skip)
		b.AddImm(1, 1, 1)
		b.Bind(skip)
	}
	b.Halt()
	p := b.MustBuild()

	h := New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}

	// Reference tree from one full-capture run of input 99.
	ref := exectree.New(p.ID)
	colRef := trace.NewCollector(p, trace.CaptureFull, 0, 1)
	m, err := prog.NewMachine(p, prog.Config{Input: []int64{99}, Observer: colRef})
	if err != nil {
		t.Fatal(err)
	}
	resRef := m.Run()
	refTrace := colRef.Finish("ref", 0, resRef, []int64{99}, trace.PrivacyHashed, "fleet")
	ref.MergeTrace(refTrace)

	// Three coordinated pods observe the same execution; each ships a
	// fragment. The hive must end with the same tree as full capture.
	const k = 3
	for phase := uint32(0); phase < k; phase++ {
		col := trace.NewCoordinatedCollector(p, phase, k)
		m, err := prog.NewMachine(p, prog.Config{Input: []int64{99}, Observer: col})
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		tr := col.Finish(fmt.Sprintf("pod-%d", phase), 0, res, []int64{99}, trace.PrivacyHashed, "fleet")
		if err := h.SubmitTraces([]*trace.Trace{tr}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := h.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Narrowed != 1 {
		t.Fatalf("narrowed = %d, want 1", st.Narrowed)
	}
	// The narrowed merge must contain the full path: the hive tree's node
	// count is at least the reference tree's (fragments add partial paths
	// besides the narrowed one).
	tree, _ := h.Tree(p.ID)
	if tree.Stats().Nodes < ref.Stats().Nodes {
		t.Fatalf("hive tree %d nodes < reference %d — full path missing",
			tree.Stats().Nodes, ref.Stats().Nodes)
	}
}

func TestPublishedProofsInvalidatedByFixes(t *testing.T) {
	p := buildCrashy(t)
	h := New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	pd := newPod(t, h, p, "pod-pub", trace.PrivacyHashed)
	if _, err := pd.RunOnce([]int64{5}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Prove(p.ID, proof.PropNoAssertFail); err != nil {
		t.Fatal(err)
	}
	pubs, err := h.PublishedProofs(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(pubs) != 1 || !pubs[0].Holds {
		t.Fatalf("published = %+v", pubs)
	}

	// A new fix bumps the epoch and unpublishes standing proofs.
	if _, err := pd.RunOnce([]int64{105}); err != nil { // mints a fix
		t.Fatal(err)
	}
	pubs2, err := h.PublishedProofs(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(pubs2) != 0 {
		t.Fatalf("stale proofs still published after fix: %+v", pubs2)
	}
}

func TestReproducerFromHashedTrace(t *testing.T) {
	// The user's input never leaves the machine (hashed privacy), yet the
	// repair lab gets a concrete reproducer via symbolic replay.
	p := buildCrashy(t)
	h := New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	pd := newPod(t, h, p, "pod-repro", trace.PrivacyHashed)
	if _, err := pd.RunOnce([]int64{107}); err != nil {
		t.Fatal(err)
	}
	st, _ := h.ProgramStats(p.ID)
	if len(st.Failures) != 1 {
		t.Fatalf("failures = %+v", st.Failures)
	}
	tc, err := h.Reproducer(p.ID, st.Failures[0].Signature)
	if err != nil {
		t.Fatal(err)
	}
	// The synthesized input must land in the crash zone (not necessarily
	// equal the user's 107).
	if tc.Input[0] < 100 || tc.Input[0] >= 110 {
		t.Fatalf("reproducer input = %v, want in [100,110)", tc.Input)
	}
	m, err := prog.NewMachine(p, prog.Config{Input: tc.Input})
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res.Outcome != prog.OutcomeCrash {
		t.Fatalf("reproducer does not reproduce: %v", res.Outcome)
	}

	// Unknown signature errors.
	if _, err := h.Reproducer(p.ID, "nope"); err == nil {
		t.Error("unknown signature accepted")
	}
}

func TestProveNoDeadlockVerifiesDistributedFix(t *testing.T) {
	b := prog.NewBuilder("dining-v", 0).SetLocks(2)
	b.Thread()
	b.Lock(0).Yield().Lock(1).Unlock(1).Unlock(0).Halt()
	b.Thread()
	b.Lock(1).Yield().Lock(0).Unlock(0).Unlock(1).Halt()
	p := b.MustBuild()

	h := New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}

	// Without any fix, the bounded proof must refute.
	pr, err := h.ProveNoDeadlock(p.ID, nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Holds {
		t.Fatalf("raw program proven deadlock-free: %s", pr.Statement())
	}

	// A pod reports the deadlock; the hive mints the immunity fix.
	pd, err := pod.New(pod.Config{Program: p, ID: "pod-v", Hive: h, Seed: 3, Preempt: 0.9, BatchSize: 1, Salt: "fleet"})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 50; r++ {
		if _, err := pd.RunOnce(nil); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := h.ProgramStats(p.ID)
	if st.FixCount == 0 {
		t.Fatal("no immunity fix minted")
	}

	// With the fix installed, the same bounded space is exhaustively clean.
	pr2, err := h.ProveNoDeadlock(p.ID, nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !pr2.Holds || !pr2.Complete {
		t.Fatalf("fixed program not proven: %s", pr2.Statement())
	}
}
