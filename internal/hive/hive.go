// Package hive implements the processing center of Figure 1: it ingests
// execution by-products from the pod fleet, merges them into per-program
// collective execution trees (§3.2), detects misbehaviours, synthesizes and
// versions fixes (§3.3), serves execution guidance toward coverage gaps, and
// attempts cumulative proofs. Failures that resist automated fixing land in
// the repair lab for human review, exactly as the paper provisions.
//
// Concurrency: the hive is sharded per program. A top-level RWMutex guards
// only the program registry; every program carries its own lock, so pods
// reporting about different programs never contend. Trace batches are
// grouped by program and each group's bookkeeping runs under a single lock
// acquisition; expensive work (path reconstruction, tree merging, fix
// synthesis) happens outside the lock.
//
// Durability: a hive recovered from (and attached to) a journal.Store
// writes every mutation — trace batches, fix synthesis outcomes, proof
// attempts, infeasibility certificates — ahead of applying it, under a
// per-program checkpoint gate, so snapshot + journal replay reconstructs
// the hive exactly (see Recover, Checkpoint, and package journal for the
// durability model and the privacy invariant: the journal stores only
// post-privacy traces, exactly as pods shipped them).
package hive

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/constraint"
	"repro/internal/deadlock"
	"repro/internal/exectree"
	"repro/internal/fix"
	"repro/internal/guidance"
	"repro/internal/journal"
	"repro/internal/pod"
	"repro/internal/prog"
	"repro/internal/proof"
	"repro/internal/symbolic"
	"repro/internal/trace"
)

// ErrUnknownProgram is returned for traces about unregistered programs.
var ErrUnknownProgram = errors.New("hive: unknown program")

// FailureRecord is a point-in-time snapshot of one failure signature's
// fleet-wide aggregation (the live bookkeeping is striped per signature, see
// failureTable).
type FailureRecord struct {
	// Signature is the bucketing key (outcome @ fault site).
	Signature string
	// Outcome is the failure class.
	Outcome prog.Outcome
	// Count is the number of occurrences seen.
	Count int64
	// Pods is the number of distinct reporting pods.
	Pods int
	// Sample is one representative trace.
	Sample *trace.Trace
	// Fixed reports whether a fix targeting this signature was minted.
	Fixed bool
	// InRepairLab reports that automated synthesis gave up and the failure
	// awaits a human.
	InRepairLab bool
}

// programState is the hive's per-program knowledge. Each program is its own
// lock shard: mu guards the fix/proof/epoch state below, while prog, sym,
// and gen are immutable after registration (gen and tree synchronize
// internally). State that raw-privacy-heavy fleets hammer — known-good
// inputs, the coordinated-fragment buffer, and the ingest counters — is
// striped out from under the shard lock onto its own synchronization
// (kgMu, coordMu, atomics), so a hot program's benign traffic never
// serializes behind fix bookkeeping.
type programState struct {
	mu sync.Mutex

	// ckpt is the checkpoint gate: every journaled mutation (ingest,
	// synthesis, proof attempt, certificate) holds the read side across
	// journal-append *and* apply, so a checkpoint (write side) always cuts
	// between whole operations — an op is either fully reflected in the
	// snapshot or fully contained in the journal suffix after it, never
	// half in each.
	ckpt sync.RWMutex

	prog  *prog.Program
	tree  *exectree.Tree
	fixes fix.Set
	epoch int

	// hasBase and deltasSince drive the incremental-checkpoint policy
	// (full base snapshot first, then delta segments, recompacted every
	// compactEvery deltas). Both are guarded by the ckpt write gate.
	hasBase     bool
	deltasSince int

	// readOnly is the journal breaker: latched after
	// readOnlyAppendThreshold consecutive batch-append failures (disk
	// full, dead device), it refuses further ingest with pod.ErrReadOnly
	// while guidance reads keep working, and clears when a checkpoint
	// lands durably (the disk is writable again). appendFails counts the
	// consecutive failures.
	readOnly    atomic.Bool
	appendFails atomic.Int32

	// failures stripes per-signature bookkeeping so a single hot program's
	// failure traffic does not serialize on mu (it synchronizes internally).
	failures failureTable

	// knownGood holds raw inputs observed to succeed (only available from
	// PrivacyRaw pods); used to pick safe replacements and validate guards.
	// Guarded by kgMu, not mu: harvesting happens on every raw-privacy OK
	// trace, far hotter than the fix-state mutations mu protects.
	kgMu      sync.Mutex
	knownGood [][]int64

	// sym and gen exist for single-threaded programs.
	sym *symbolic.Engine
	gen *guidance.Generator

	proofs map[proof.Property]*proof.Proof

	// ingested counts merged traces; reconstructed counts external-only
	// traces expanded to full paths; narrowed counts completed coordinated
	// families merged as full paths. Atomics: bumped on every batch without
	// touching any lock.
	ingested      atomic.Int64
	reconstructed atomic.Int64
	narrowed      atomic.Int64

	// coordinated buffers coordinated-sampling fragments by execution
	// identity until every phase has arrived (paper §3.1: "subsequent
	// aggregation of traces can narrow down this family"). Guarded by
	// coordMu.
	coordMu     sync.Mutex
	coordinated map[string][]*trace.Trace
}

// maxCoordinatedFamilies bounds the fragment buffer per program.
const maxCoordinatedFamilies = 4096

// maxSessions bounds the *live cache* of the exactly-once dedup table, not
// the table itself: past the bound, least-recently-used sessions are frozen
// into the unbounded overflow tier with their windows intact and thaw back
// on their next frame. Cache displacement never loses dedup state — the
// window is exactly-once for arbitrarily many sessions (it is checkpointed
// and archived with program state), the bound only caps LRU bookkeeping.
const maxSessions = 4096

// maxSessionAhead bounds one session's out-of-order applied set. If a
// permanently abandoned gap lets the set grow past the bound, the base
// slides up to the oldest retained mark — seqs under the slide degrade to
// at-most-once on resubmission, the same bounded-memory tradeoff as LRU
// session eviction.
const maxSessionAhead = 4096

// sessionEntry is one client session's dedup state: an exact window of
// applied frame sequence numbers — every seq at or below base is applied,
// plus the out-of-order applied marks above it — and a logical-clock touch
// for LRU eviction. Tracking the exact set (rather than a high-water mark)
// makes deduplication independent of arrival order: frames may be
// delivered, rejected, parked across drains, and resubmitted in any
// interleaving, and a seq is re-applied iff it was never applied.
type sessionEntry struct {
	// mu serializes the dedup-check + journaled-apply of one session's
	// frames. Without it, a frame resent on a new connection while the old
	// connection's worker is still draining its queue could race the
	// original past the applied check and double-ingest. The serialization
	// is sound because a session maps to ONE entry object for the hive's
	// lifetime: freezing moves the object between tiers, never replaces it,
	// so every submitter for a session contends on the same mutex.
	mu sync.Mutex

	// base, ahead, and touched are guarded by the hive's sessMu.
	base    uint64
	ahead   map[uint64]struct{}
	touched uint64
}

// Hive is the aggregation and analysis center. All methods are safe for
// concurrent use.
type Hive struct {
	mu       sync.RWMutex // guards the programs map only
	programs map[string]*programState
	salt     string

	// journal, when attached via Recover, receives every mutation ahead of
	// application. Nil for a purely in-memory hive.
	journal *journal.Store
	// compactEvery is the incremental-checkpoint compaction interval: after
	// this many delta checkpoints a program's next checkpoint is full,
	// collapsing the chain. <= 0 forces every checkpoint full.
	compactEvery int
	// durabilityErr latches the first non-batch journal failure (batch
	// append failures reject the batch instead). A pointer so the CAS
	// never sees inconsistently typed values.
	durabilityErr atomic.Pointer[error]

	// sessions is the live cache of the exactly-once dedup table for wire
	// resubmission (session ID -> exact applied-seq window), LRU-bounded to
	// maxSessions; frozen is the unbounded overflow tier that displaced
	// entries move to with their windows intact. A session's entry object
	// migrates between the two maps but is never dropped or replaced, so
	// dedup stays exactly-once no matter how many sessions the fleet has
	// seen. Both maps are guarded by sessMu.
	sessMu    sync.Mutex
	sessions  map[string]*sessionEntry
	frozen    map[string]*sessionEntry
	sessClock uint64
	// sessEvictions counts live-cache displacements into the frozen tier.
	// Purely a cache statistic (surfaced via SessionEvictions and the
	// cmd/hive stats line): a displaced session keeps its full dedup
	// window and thaws on its next frame — no correctness loss.
	sessEvictions atomic.Int64

	// shedPolicy, pressure, and shed make up the rarity-priced load shedder
	// (shed.go): when the injected pressure gauge passes the policy's
	// watermark, sessioned batches are priced against the exec tree before
	// ingest and the cheapest work is dropped or deferred. All three are
	// zero-value safe — a hive with no policy installed prices nothing.
	shedPolicy atomic.Pointer[ShedPolicy]
	pressure   atomic.Pointer[func() float64]
	shed       shedCounters

	// Logf receives operational warnings (first session eviction); nil is
	// silent. Set before serving traffic.
	Logf func(format string, args ...any)
}

// defaultCompactEvery is how many delta checkpoints a program accumulates
// before the next checkpoint compacts the chain with a full snapshot.
const defaultCompactEvery = 8

// New creates an empty hive. salt is the fleet-wide input-digest salt
// (needed to correlate hashed inputs).
func New(salt string) *Hive {
	return &Hive{
		programs:     make(map[string]*programState),
		salt:         salt,
		sessions:     make(map[string]*sessionEntry),
		frozen:       make(map[string]*sessionEntry),
		compactEvery: defaultCompactEvery,
	}
}

// SetCompactEvery tunes the incremental-checkpoint policy: a program's
// checkpoint writes a delta segment (O(changes since last checkpoint))
// until n deltas have accumulated, then a full snapshot compacts the chain.
// n <= 0 makes every checkpoint full — the pre-incremental behavior.
func (h *Hive) SetCompactEvery(n int) {
	h.compactEvery = n
}

// RegisterProgram tells the hive about a program so it can reconstruct,
// analyze, and fix it. Registration is idempotent.
func (h *Hive) RegisterProgram(p *prog.Program) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.programs[p.ID]; ok {
		return nil
	}
	st := &programState{
		prog:   p,
		tree:   exectree.New(p.ID),
		proofs: make(map[proof.Property]*proof.Proof),
	}
	if p.NumThreads() == 1 {
		sym, err := symbolic.New(p, symbolic.Config{})
		if err != nil {
			return fmt.Errorf("hive: register %s: %w", p.ID, err)
		}
		st.sym = sym
	}
	gen, err := guidance.NewGenerator(p, 0)
	if err != nil {
		return fmt.Errorf("hive: register %s: %w", p.ID, err)
	}
	st.gen = gen
	h.programs[p.ID] = st
	return nil
}

// state resolves a program shard by ID.
func (h *Hive) state(programID string) (*programState, error) {
	h.mu.RLock()
	st, ok := h.programs[programID]
	h.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownProgram, programID)
	}
	return st, nil
}

// Program returns the registered program by ID.
func (h *Hive) Program(programID string) (*prog.Program, error) {
	st, err := h.state(programID)
	if err != nil {
		return nil, err
	}
	return st.prog, nil
}

// SubmitTraces implements the pod-facing ingestion API. The batch is grouped
// by program and each group is ingested under a single acquisition of that
// program's lock: traces are merged into the program's execution tree
// (reconstructing full paths from external-only traces when possible),
// failure records are updated, and new failure signatures trigger
// single-flight fix synthesis.
//
// The call is all-or-nothing with respect to validation (unknown program):
// every ProgramID is resolved before any trace is ingested, so a batch
// rejected for that reason can be re-submitted without double-counting. On
// a durable hive there is one additional failure mode: a journal-append
// failure (e.g. disk full) rejects the failing group un-applied and aborts
// the call, leaving groups already ingested by the same call in place —
// each group is atomic, the multi-program call is not. Requeue-on-failure
// clients needing exactly-once should use the sequenced per-program path
// (SubmitTracesSession / wire MsgSubmitTracesSeq) instead.
func (h *Hive) SubmitTraces(traces []*trace.Trace) error {
	if len(traces) == 0 {
		return nil
	}
	// Group by program, preserving arrival order within each program and
	// first-appearance order across programs.
	order := make([]string, 0, 1)
	groups := make(map[string][]*trace.Trace, 1)
	for _, tr := range traces {
		if _, ok := groups[tr.ProgramID]; !ok {
			order = append(order, tr.ProgramID)
		}
		groups[tr.ProgramID] = append(groups[tr.ProgramID], tr)
	}
	states := make([]*programState, len(order))
	for i, id := range order {
		st, err := h.state(id)
		if err != nil {
			return err
		}
		states[i] = st
	}
	for i, id := range order {
		if err := h.ingestBatch(states[i], groups[id]); err != nil {
			return err
		}
	}
	return nil
}

// SubmitTracesFor is the per-program submission fast path: every trace in
// the batch must describe programID, so ingestion resolves the program
// shard once and skips SubmitTraces' group-by entirely. Sharded fleet
// drains (core.Simulation) and the wire server's per-program frames use it.
//
// Like SubmitTraces, the call is all-or-nothing with respect to its errors:
// an unknown program or a mismatched trace rejects the whole batch before
// anything is ingested, so a rejected batch can be re-submitted without
// double-counting.
func (h *Hive) SubmitTracesFor(programID string, traces []*trace.Trace) error {
	if len(traces) == 0 {
		return nil
	}
	st, err := h.state(programID)
	if err != nil {
		return err
	}
	for _, tr := range traces {
		if tr.ProgramID != programID {
			return fmt.Errorf("hive: trace for program %q in batch submitted for %q", tr.ProgramID, programID)
		}
	}
	return h.ingestBatch(st, traces)
}

// SubmitTracesSession implements pod.SessionSubmitter: per-program
// submission deduplicated by (session, seq) so a client resubmitting a
// partially-acknowledged stream — over a new connection, or frames parked
// across whole drains — ingests each batch exactly once. The dedup window
// is the exact set of applied sequence numbers (a contiguous base plus
// out-of-order marks), so arrival order does not matter: a frame is
// re-applied iff it was never applied — possibly by journal replay after a
// crash, since the op carrying (session, seq) is journaled ahead of the
// apply — and is otherwise acknowledged as a duplicate without
// re-ingesting.
func (h *Hive) SubmitTracesSession(session string, seq uint64, programID string, traces []*trace.Trace) (bool, error) {
	st, err := h.state(programID)
	if err != nil {
		return false, err
	}
	for _, tr := range traces {
		if tr.ProgramID != programID {
			return false, fmt.Errorf("hive: trace for program %q in batch submitted for %q", tr.ProgramID, programID)
		}
	}
	if session == "" {
		if drop, err := h.shedBatch(st, traces); drop || err != nil {
			return false, err
		}
		return false, h.ingestBatch(st, traces)
	}
	// One session's frames serialize across connections: the high-water
	// check and the journaled apply must be atomic per session, or a
	// duplicate in flight on two connections would pass the check twice.
	e := h.sessionFor(session)
	e.mu.Lock()
	defer e.mu.Unlock()
	if h.sessionApplied(e, seq) {
		return true, nil
	}
	// Shed decisions land after the dedup check and before the journal:
	// a dropped batch is acked without marking the session, so a
	// resubmission re-prices it fresh — at-least-once for shed work,
	// exactly-once for everything admitted.
	if drop, err := h.shedBatch(st, traces); drop || err != nil {
		return false, err
	}
	return false, h.ingest(st, traces, session, seq)
}

// SubmitColumnarSession implements pod.ColumnarSubmitter: zero-copy batch
// ingestion. The view's fields are consumed straight out of the wire
// frame's bytes — traces are materialized only where the hive must retain
// one (failure samples, coordinated fragments, external-only reconstruction
// inputs) — and on a durable hive the journal records *those same bytes*
// (journal.OpBatchColumnar), so a batch is serialized exactly once in its
// lifetime: on the pod. Dedup semantics are identical to
// SubmitTracesSession; the (session, seq) tag spaces are shared.
func (h *Hive) SubmitColumnarSession(session string, seq uint64, batch *trace.BatchView) (bool, error) {
	if batch.Len() == 0 {
		return false, nil
	}
	st, err := h.state(batch.ProgramID())
	if err != nil {
		return false, err
	}
	if session == "" {
		if drop, err := h.shedView(st, batch); drop || err != nil {
			return false, err
		}
		return false, h.ingestView(st, batch, "", 0)
	}
	e := h.sessionFor(session)
	e.mu.Lock()
	defer e.mu.Unlock()
	if h.sessionApplied(e, seq) {
		return true, nil
	}
	// See SubmitTracesSession: shed after dedup, before journal — dropped
	// batches never mark the session, so resubmissions re-price.
	if drop, err := h.shedView(st, batch); drop || err != nil {
		return false, err
	}
	return false, h.ingestView(st, batch, session, seq)
}

// ingestView journals (when durable) and applies one columnar batch under
// the checkpoint gate — the view-based twin of ingest. The journaled op
// carries the batch's raw bytes verbatim: no re-encode, and recovery
// replays them through the same view-based apply path.
func (h *Hive) ingestView(st *programState, v *trace.BatchView, session string, seq uint64) error {
	st.ckpt.RLock()
	defer st.ckpt.RUnlock()
	if h.journal != nil {
		// The op borrows the frame bytes only for the synchronous Append
		// below: the committer copies them into its write buffer before
		// returning, so Raw never outlives the pooled frame.
		//lint:allow viewescape Raw is consumed (copied to the WAL buffer) before Append returns; the op does not outlive the frame
		op := &journal.Op{Kind: journal.OpBatchColumnar, Session: session, Seq: seq, Raw: v.Bytes()}
		if err := h.journalBatchAppend(st, op); err != nil {
			return err
		}
	}
	h.applyBatchView(st, v, true)
	if session != "" {
		h.markSession(session, seq)
	}
	return nil
}

// pendingSynthesis is a single-flight election won during batch bookkeeping:
// the trigger trace that will synthesize the signature's fix after the lock
// is released.
type pendingSynthesis struct {
	rec *failureRecord
	tr  *trace.Trace
}

// ingestBatch is the journaled entry point for one program's trace batch.
func (h *Hive) ingestBatch(st *programState, batch []*trace.Trace) error {
	return h.ingest(st, batch, "", 0)
}

// ingest journals (when durable) and applies one program's batch, all under
// the checkpoint gate. The batch op is appended *before* it is applied —
// the write-ahead discipline — so an acknowledged batch is always
// recoverable; if the journal cannot take the op the batch is rejected
// un-applied and the client retries. session/seq, when set, ride in the op
// so recovery also rebuilds the exactly-once dedup table.
func (h *Hive) ingest(st *programState, batch []*trace.Trace, session string, seq uint64) error {
	st.ckpt.RLock()
	defer st.ckpt.RUnlock()
	if h.journal != nil {
		encoded := make([][]byte, len(batch))
		for i, tr := range batch {
			encoded[i] = trace.Encode(tr)
		}
		op := &journal.Op{Kind: journal.OpBatch, Session: session, Seq: seq, Traces: encoded}
		if err := h.journalBatchAppend(st, op); err != nil {
			return err
		}
	}
	h.applyBatch(st, batch, true)
	if session != "" {
		h.markSession(session, seq)
	}
	return nil
}

// applyBatch folds one program's trace batch into the hive. The program
// lock is held once, for bookkeeping only; reconstruction, narrowing, tree
// merging, and fix synthesis all run outside it. live distinguishes fresh
// ingestion from journal replay: replay never re-elects fix synthesis —
// synthesis outcomes are replayed from their own journal ops.
//
// Evidence visibility is batch-granular: known-good inputs harvested
// anywhere in the batch are visible when fixes for the batch's failures are
// validated (phase 4 runs after phase 2). A guard candidate therefore
// competes against strictly more collective knowledge than under per-trace
// ingestion — failing validation routes the signature to the repair lab
// rather than shipping a guard that contradicts an observed-good input.
func (h *Hive) applyBatch(st *programState, batch []*trace.Trace, live bool) {
	singleThreaded := st.prog.NumThreads() == 1

	// Phase 1 (lock-free): expand external-only traces to full paths —
	// reconstruction replays the immutable program. On failure fall back to
	// merging at recorded granularity; the tree stays sound, only less
	// detailed.
	paths := make([][]trace.BranchEvent, len(batch))
	var reconstructed int64
	for i, tr := range batch {
		paths[i] = tr.Branches
		if tr.Mode == trace.CaptureExternalOnly && singleThreaded {
			if full, err := exectree.Reconstruct(st.prog, tr); err == nil {
				paths[i] = full
				reconstructed++
			}
		}
	}

	// Phase 2 (no shard lock at all): coordinated fragment buffering,
	// known-good harvesting, and counters each ride their own striped
	// synchronization — coordMu, kgMu, and atomics — so benign traffic on a
	// raw-privacy-heavy program never serializes behind the fix/proof state
	// mu protects. Failure aggregation runs after, striped per signature.
	var families map[int][]*trace.Trace // batch index -> completed family
	for i, tr := range batch {
		if tr.Mode == trace.CaptureCoordinated && singleThreaded {
			if fam, complete := st.bufferCoordinated(tr); complete {
				if families == nil {
					families = make(map[int][]*trace.Trace)
				}
				families[i] = fam
			}
		}
		if tr.Privacy == trace.PrivacyRaw && tr.Outcome == prog.OutcomeOK && len(tr.Input) > 0 {
			st.harvestKnownGood(tr.Input)
		}
	}
	st.ingested.Add(int64(len(batch)))
	st.reconstructed.Add(reconstructed)

	// Striped failure aggregation and the single-flight synthesis election,
	// in batch order.
	var toSynthesize []pendingSynthesis
	for _, tr := range batch {
		if !tr.Outcome.IsFailure() {
			continue
		}
		if rec, elected := st.failures.record(tr, live); elected {
			toSynthesize = append(toSynthesize, pendingSynthesis{rec: rec, tr: tr})
		}
	}

	// Phase 3 (lock-free): narrow completed coordinated families and merge
	// every path into the internally synchronized tree, in batch order.
	var narrowed int64
	for i, tr := range batch {
		if fam, ok := families[i]; ok {
			// The fragment completed its family: merge the narrowed full
			// path instead of the fragment. If narrowing fails the family is
			// incomplete evidence (or ambiguous); merge the fragment at
			// recorded granularity so the evidence still counts.
			if full, ok := narrowFamily(st.prog, fam, tr.Outcome); ok {
				paths[i] = full
				narrowed++
			}
		}
		st.tree.Merge(paths[i], tr.Outcome)
	}
	if narrowed > 0 {
		st.narrowed.Add(narrowed)
	}

	// Phase 4: synthesize fixes for the signatures this batch saw first.
	// Rare (once per signature ever), and single-flight by construction.
	for _, p := range toSynthesize {
		h.synthesizeFix(st, p.rec, p.tr)
	}
}

// ingestScratch is the pooled per-batch working set of the view-based
// apply path: one branch-path buffer, one input buffer, and one signature
// buffer serve a whole batch, so steady-state ingestion of benign traces
// allocates nothing per trace.
type ingestScratch struct {
	path  []trace.BranchEvent
	input []int64
	sig   []byte
}

var ingestScratchPool = sync.Pool{New: func() any { return &ingestScratch{} }}

// applyBatchView folds one columnar batch into the hive, reading fields
// directly out of the view. It is semantically applyBatch over
// view.MaterializeAll() — the equivalence TestColumnarIngestMatchesV2 pins
// — but materializes a Trace only where one is retained or re-executed:
// failure samples (once per signature ever), coordinated fragments, and
// external-only reconstruction. Benign full-capture traffic — the fleet's
// overwhelming majority — is merged straight from the frame bytes through
// a reused path buffer.
func (h *Hive) applyBatchView(st *programState, v *trace.BatchView, live bool) {
	singleThreaded := st.prog.NumThreads() == 1
	n := v.Len()
	sc := ingestScratchPool.Get().(*ingestScratch)
	defer ingestScratchPool.Put(sc)

	// Pass 1 — striped bookkeeping, no shard lock (applyBatch's phase 2):
	// coordinated fragment buffering, known-good harvesting, and failure
	// aggregation with its single-flight synthesis election.
	var families map[int][]*trace.Trace
	var toSynthesize []pendingSynthesis
	for i := 0; i < n; i++ {
		if v.Mode(i) == trace.CaptureCoordinated && singleThreaded {
			if fam, complete := st.bufferCoordinated(v.Materialize(i)); complete {
				if families == nil {
					families = make(map[int][]*trace.Trace)
				}
				families[i] = fam
			}
		}
		if v.Privacy(i) == trace.PrivacyRaw && v.Outcome(i) == prog.OutcomeOK && v.NumInputs(i) > 0 {
			sc.input = v.AppendInput(sc.input[:0], i)
			st.harvestKnownGood(sc.input)
		}
		if v.Outcome(i).IsFailure() {
			sc.sig = v.FailureSignature(sc.sig[:0], i)
			i := i
			rec, elected := st.failures.recordLazy(string(sc.sig), v.PodID(i), v.Outcome(i),
				func() *trace.Trace { return v.Materialize(i) }, live)
			if elected {
				// The sample is the materialized trigger trace; synthesis
				// reads it after the batch's locks are gone.
				toSynthesize = append(toSynthesize, pendingSynthesis{rec: rec, tr: rec.sample})
			}
		}
	}
	st.ingested.Add(int64(n))

	// Pass 2 — path expansion and tree merging, in batch order
	// (applyBatch's phases 1 and 3): external-only traces reconstruct to
	// full paths, completed coordinated families narrow, everything else
	// merges at recorded granularity straight from the view.
	var reconstructed, narrowed int64
	for i := 0; i < n; i++ {
		outcome := v.Outcome(i)
		var path []trace.BranchEvent
		if v.Mode(i) == trace.CaptureExternalOnly && singleThreaded {
			if full, err := exectree.Reconstruct(st.prog, v.Materialize(i)); err == nil {
				path = full
				reconstructed++
			}
		}
		if fam, ok := families[i]; ok {
			if full, ok := narrowFamily(st.prog, fam, outcome); ok {
				path = full
				narrowed++
			}
		}
		if path == nil {
			sc.path = v.AppendBranches(sc.path[:0], i)
			path = sc.path
		}
		st.tree.Merge(path, outcome)
	}
	if reconstructed > 0 {
		st.reconstructed.Add(reconstructed)
	}
	if narrowed > 0 {
		st.narrowed.Add(narrowed)
	}

	// Pass 3 — synthesize fixes for the signatures this batch saw first
	// (applyBatch's phase 4).
	for _, p := range toSynthesize {
		h.synthesizeFix(st, p.rec, p.tr)
	}
}

// harvestKnownGood records a raw input observed to succeed, bounded, under
// the dedicated known-good stripe.
func (st *programState) harvestKnownGood(input []int64) {
	st.kgMu.Lock()
	if len(st.knownGood) < 1024 {
		st.knownGood = append(st.knownGood, append([]int64(nil), input...))
	}
	st.kgMu.Unlock()
}

// knownGoodSnapshot copies the known-good input set under its stripe.
func (st *programState) knownGoodSnapshot() [][]int64 {
	st.kgMu.Lock()
	defer st.kgMu.Unlock()
	return append([][]int64(nil), st.knownGood...)
}

// bufferCoordinated appends a coordinated-sampling fragment to its family
// buffer, under the dedicated coordination stripe. When the last missing
// phase arrives the family is removed from the buffer and returned for
// narrowing.
func (st *programState) bufferCoordinated(tr *trace.Trace) ([]*trace.Trace, bool) {
	key := fmt.Sprintf("%s|%s|%s|%d|%d", tr.InputDigest, tr.ScheduleHash, tr.Outcome, tr.SampleK, tr.FaultPC)
	st.coordMu.Lock()
	defer st.coordMu.Unlock()
	if st.coordinated == nil {
		st.coordinated = make(map[string][]*trace.Trace)
	}
	if len(st.coordinated) >= maxCoordinatedFamilies {
		// Bounded buffer: reset rather than grow without limit on a hostile
		// or lossy fleet (incomplete families are abandoned).
		st.coordinated = make(map[string][]*trace.Trace)
	}
	st.coordinated[key] = append(st.coordinated[key], tr.Clone())
	family := st.coordinated[key]
	if len(trace.MissingPhases(family, tr.SampleK)) != 0 {
		return nil, false
	}
	delete(st.coordinated, key)
	return family, true
}

// narrowFamily combines a completed fragment family into per-site directions
// and reconstructs the full path (paper §3.1 narrowing). It is pure with
// respect to hive state and runs outside any lock.
func narrowFamily(p *prog.Program, family []*trace.Trace, outcome prog.Outcome) ([]trace.BranchEvent, bool) {
	sites, err := trace.CombineCoordinated(family)
	if err != nil {
		return nil, false
	}
	var sysRet []int64
	for _, s := range family[0].Syscalls {
		sysRet = append(sysRet, s.Ret)
	}
	full, got, err := exectree.ReconstructFromSites(p, sites, sysRet, family[0].Steps*2+1024)
	if err != nil || got != outcome {
		return nil, false
	}
	return full, true
}

// synthesizeFix mints a fix for a newly observed failure signature:
// deadlocks become immunity signatures; input-triggered crashes and
// assertion failures become validated input guards; everything else goes to
// the repair lab. Exactly one call ever happens per signature (single-flight
// via failureRecord.synthesizing), so concurrent traces carrying the same
// new signature cannot mint duplicate fixes or double-bump the epoch.
func (h *Hive) synthesizeFix(st *programState, rec *failureRecord, tr *trace.Trace) {
	var minted *fix.Fix
	switch tr.Outcome {
	case prog.OutcomeDeadlock:
		if len(tr.Deadlock) > 0 {
			sig := deadlock.FromWaits(tr.Deadlock)
			minted = &fix.Fix{
				ProgramID:       st.prog.ID,
				Kind:            fix.KindDeadlockImmunity,
				TargetSignature: rec.signature,
				Deadlock:        &sig,
			}
		}
	case prog.OutcomeCrash, prog.OutcomeAssertFail:
		minted = h.synthesizeInputGuard(st, rec, tr)
	}

	if minted == nil || minted.Validate() != nil {
		st.failures.finishSynthesis(rec, false)
		h.journalSynthesis(st, rec.signature, nil)
		return
	}
	minted.Validated = true
	st.mu.Lock()
	minted.ID = st.fixes.Add(*minted)
	st.epoch++
	// New fixes invalidate standing proofs (paper §3.3: the hive must decide
	// whether instrumentation invalidates existing knowledge; we take the
	// sound route and drop them for re-proving).
	st.proofs = make(map[proof.Property]*proof.Proof)
	// Journal inside the critical section: synthesis ops land in the
	// journal in fix-ID order, so replay re-assigns identical IDs.
	h.journalSynthesis(st, rec.signature, minted)
	st.mu.Unlock()
	st.failures.finishSynthesis(rec, true)
}

// journalSynthesis appends a signature's synthesis outcome (a minted fix,
// or nil for the repair lab). Synthesis runs inside an ingest's checkpoint
// gate, so the op is atomic with its batch relative to checkpoints; an
// append failure degrades durability (latched in DurabilityError) without
// rejecting the already-applied batch.
func (h *Hive) journalSynthesis(st *programState, signature string, minted *fix.Fix) {
	if h.journal == nil {
		return
	}
	op := &journal.Op{Kind: journal.OpSynthesis, Signature: signature}
	if minted != nil {
		data, err := fix.Encode(minted)
		if err != nil {
			h.noteDurability(err)
			return
		}
		op.Fix = data
	}
	if err := h.journal.Append(st.prog.ID, op); err != nil {
		h.noteDurability(err)
	}
}

// readOnlyAppendThreshold is how many consecutive batch-append failures a
// program absorbs before its journal breaker opens. One failure can be a
// transient (a torn write the journal rolled back); a run of them means the
// disk is full or gone, and every retried batch would burn a write cycle to
// fail again.
const readOnlyAppendThreshold = 3

// journalBatchAppend is the batch path's write-ahead append with the
// read-only breaker wrapped around it: an open breaker refuses the batch
// immediately with pod.ErrReadOnly (no disk touch), a failed append counts
// toward opening it, and a successful append resets the count. Only a
// durably landed checkpoint closes an open breaker (see CheckpointProgram) —
// proof the disk takes writes again.
func (h *Hive) journalBatchAppend(st *programState, op *journal.Op) error {
	if st.readOnly.Load() {
		return fmt.Errorf("hive: program %s refuses ingest (guidance still served): %w", st.prog.ID, pod.ErrReadOnly)
	}
	if err := h.journal.Append(st.prog.ID, op); err != nil {
		if st.appendFails.Add(1) >= readOnlyAppendThreshold {
			if !st.readOnly.Swap(true) && h.Logf != nil {
				h.Logf("hive: program %s: %d consecutive journal append failures (%v); flipping read-only — guidance is still served, ingest refused until a checkpoint lands", st.prog.ID, readOnlyAppendThreshold, err)
			}
		}
		return fmt.Errorf("hive: journal %s: %w", st.prog.ID, err)
	}
	st.appendFails.Store(0)
	return nil
}

// ProgramReadOnly reports whether a program's journal breaker is open
// (ingest refused with pod.ErrReadOnly, guidance reads served).
func (h *Hive) ProgramReadOnly(programID string) bool {
	st, err := h.state(programID)
	if err != nil {
		return false
	}
	return st.readOnly.Load()
}

// ReadOnlyPrograms counts programs whose journal breaker is currently open.
func (h *Hive) ReadOnlyPrograms() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	n := 0
	for _, st := range h.programs {
		if st.readOnly.Load() {
			n++
		}
	}
	return n
}

// noteDurability latches the first non-batch journal failure.
func (h *Hive) noteDurability(err error) {
	h.durabilityErr.CompareAndSwap(nil, &err)
}

// DurabilityError returns the first journal failure outside the batch path
// (synthesis, proof, certificate ops), or nil. Batch append failures reject
// their batch instead of degrading silently.
func (h *Hive) DurabilityError() error {
	if p := h.durabilityErr.Load(); p != nil {
		return *p
	}
	return nil
}

// sessionFor returns a session's dedup entry, touching it for LRU: a hit in
// the live cache, a thaw from the frozen tier, or a fresh entry for a
// never-seen session. Past the live-cache bound the least-recently-used
// entry is frozen — moved, window intact, into the unbounded overflow tier —
// so displacement is a cache event, not a correctness event.
func (h *Hive) sessionFor(session string) *sessionEntry {
	h.sessMu.Lock()
	frozeOne := false
	h.sessClock++
	e, ok := h.sessions[session]
	if !ok {
		if e, ok = h.frozen[session]; ok {
			delete(h.frozen, session) // thaw: same object, window intact
		} else {
			e = &sessionEntry{}
		}
		if len(h.sessions) >= maxSessions {
			var victim string
			oldest := uint64(math.MaxUint64)
			for id, se := range h.sessions {
				if se.touched < oldest {
					oldest, victim = se.touched, id
				}
			}
			h.frozen[victim] = h.sessions[victim]
			delete(h.sessions, victim)
			frozeOne = true
		}
		h.sessions[session] = e
	}
	e.touched = h.sessClock
	h.sessMu.Unlock()
	if frozeOne {
		// Count (and note once) outside sessMu: Logf is user code.
		if h.sessEvictions.Add(1) == 1 && h.Logf != nil {
			h.Logf("hive: session dedup live cache full (%d sessions): freezing least-recently-used sessions to the overflow tier; dedup windows are preserved and exactly-once is unaffected", maxSessions)
		}
	}
	return e
}

// SessionEvictions returns how many live-cache displacements the session
// dedup table has performed: sessions frozen to the overflow tier with
// their windows intact. High churn is a cache-sizing signal only — frozen
// sessions thaw on their next frame and exactly-once semantics hold for
// arbitrarily many sessions.
func (h *Hive) SessionEvictions() int64 {
	return h.sessEvictions.Load()
}

// SessionCount returns the dedup table's live-cache and frozen-tier sizes.
func (h *Hive) SessionCount() (live, frozen int) {
	h.sessMu.Lock()
	defer h.sessMu.Unlock()
	return len(h.sessions), len(h.frozen)
}

// sessionApplied reports whether seq is in the entry's applied window.
func (h *Hive) sessionApplied(e *sessionEntry, seq uint64) bool {
	h.sessMu.Lock()
	defer h.sessMu.Unlock()
	if seq <= e.base {
		return true
	}
	_, ok := e.ahead[seq]
	return ok
}

// markSession records one applied sequence number, compacting contiguous
// marks into the base.
func (h *Hive) markSession(session string, seq uint64) {
	e := h.sessionFor(session)
	h.sessMu.Lock()
	defer h.sessMu.Unlock()
	markAppliedLocked(e, seq)
}

// markAppliedLocked inserts seq into the entry's applied window. Callers
// hold sessMu.
func markAppliedLocked(e *sessionEntry, seq uint64) {
	if seq <= e.base {
		return
	}
	if e.ahead == nil {
		e.ahead = make(map[uint64]struct{})
	}
	e.ahead[seq] = struct{}{}
	compactWindowLocked(e)
	if len(e.ahead) > maxSessionAhead {
		// An abandoned gap is pinning the window open: slide the base to
		// the oldest retained mark (bounded-memory degradation, see
		// maxSessionAhead).
		oldest := uint64(math.MaxUint64)
		for s := range e.ahead {
			if s < oldest {
				oldest = s
			}
		}
		if oldest > e.base {
			e.base = oldest
		}
		compactWindowLocked(e)
	}
}

// compactWindowLocked restores the window invariant after base or ahead
// changed: marks at or below the base are dropped, and a contiguous run of
// marks just above it folds into the base. Callers hold sessMu.
func compactWindowLocked(e *sessionEntry) {
	for s := range e.ahead {
		if s <= e.base {
			delete(e.ahead, s)
		}
	}
	for {
		if _, ok := e.ahead[e.base+1]; !ok {
			break
		}
		delete(e.ahead, e.base+1)
		e.base++
	}
}

// markSessionBase raises a session's contiguous-applied floor (recovery
// merge of a checkpointed base).
func (h *Hive) markSessionBase(session string, base uint64) {
	e := h.sessionFor(session)
	h.sessMu.Lock()
	defer h.sessMu.Unlock()
	if base <= e.base {
		return
	}
	e.base = base
	compactWindowLocked(e)
}

// sessionSnapshot copies the dedup table — both the live cache and the
// frozen tier — for a checkpoint: the contiguous base per session, plus any
// out-of-order applied marks above it. Because frozen sessions are included,
// the persisted window is unbounded: a checkpoint + archive round-trip
// preserves exactly-once for every session the hive has ever deduped.
func (h *Hive) sessionSnapshot() (map[string]uint64, map[string][]uint64) {
	h.sessMu.Lock()
	defer h.sessMu.Unlock()
	if len(h.sessions) == 0 && len(h.frozen) == 0 {
		return nil, nil
	}
	bases := make(map[string]uint64, len(h.sessions)+len(h.frozen))
	var ahead map[string][]uint64
	snap := func(id string, e *sessionEntry) {
		bases[id] = e.base
		if len(e.ahead) > 0 {
			if ahead == nil {
				ahead = make(map[string][]uint64)
			}
			marks := make([]uint64, 0, len(e.ahead))
			for s := range e.ahead {
				marks = append(marks, s)
			}
			sort.Slice(marks, func(i, j int) bool { return marks[i] < marks[j] })
			ahead[id] = marks
		}
	}
	for id, e := range h.sessions {
		snap(id, e)
	}
	for id, e := range h.frozen {
		snap(id, e)
	}
	return bases, ahead
}

// mergeSessions folds recovered dedup windows into the table (union-merge:
// applied marks only ever accumulate, so merging snapshot and replayed-op
// views in any order converges). Recovered sessions land in the frozen
// tier rather than churning the live cache — a fleet-scale recovery merges
// far more sessions than the cache holds, and each thaws on first use.
func (h *Hive) mergeSessions(bases map[string]uint64, ahead map[string][]uint64) {
	h.sessMu.Lock()
	defer h.sessMu.Unlock()
	for id, base := range bases {
		e := h.entryLocked(id)
		if base > e.base {
			e.base = base
			compactWindowLocked(e)
		}
	}
	for id, marks := range ahead {
		e := h.entryLocked(id)
		for _, seq := range marks {
			markAppliedLocked(e, seq)
		}
	}
}

// entryLocked finds a session's entry in either tier without LRU-touching
// it, creating it frozen when the session is new. Callers hold sessMu.
func (h *Hive) entryLocked(id string) *sessionEntry {
	if e, ok := h.sessions[id]; ok {
		return e
	}
	if e, ok := h.frozen[id]; ok {
		return e
	}
	e := &sessionEntry{}
	h.frozen[id] = e
	return e
}

// synthesizeInputGuard derives a danger-zone guard from the failing trace's
// path condition. Privacy-friendly: it does not need the raw input — the
// recorded input-dependent branch directions are replayed symbolically
// (forced run) to recover the path condition.
func (h *Hive) synthesizeInputGuard(st *programState, rec *failureRecord, tr *trace.Trace) *fix.Fix {
	if st.sym == nil {
		return nil
	}
	// Extract the input-dependent decisions from the trace.
	var forced []trace.BranchEvent
	for _, be := range tr.Branches {
		if st.prog.InputDependent(int(be.ID)) {
			forced = append(forced, be)
		}
	}
	base := make([]int64, st.prog.NumInputs)
	path, err := st.sym.RunForced(base, forced)
	if err != nil || !path.Outcome.IsFailure() {
		return nil
	}
	cond := path.Condition()
	if len(cond) == 0 {
		return nil
	}

	safe := h.safeInput(st, cond)
	if safe == nil {
		return nil
	}
	guard := &fix.InputGuard{Danger: fix.TermsFromCondition(cond), SafeInput: safe}

	// Validation against collective knowledge: no known-good input may fall
	// in the danger zone (the fix must not change any previously-correct
	// behaviour).
	goodInputs := st.knownGoodSnapshot()
	for _, g := range goodInputs {
		if guard.Matches(g) {
			return nil
		}
	}
	return &fix.Fix{
		ProgramID:       st.prog.ID,
		Kind:            fix.KindInputGuard,
		TargetSignature: rec.signature,
		Guard:           guard,
	}
}

// safeInput picks a replacement input outside the danger zone: a known-good
// input when available, otherwise one synthesized by solving the negated
// condition.
func (h *Hive) safeInput(st *programState, danger constraint.PathCondition) []int64 {
	goodInputs := st.knownGoodSnapshot()
	holds := func(input []int64) bool {
		assign := make(map[int]int64, len(input))
		for i, v := range input {
			assign[i] = v
		}
		return danger.Holds(assign)
	}
	for _, g := range goodInputs {
		if !holds(g) {
			return g
		}
	}
	// Negate the last constraint: stays on the same path prefix, exits the
	// danger zone.
	neg := danger.Clone()
	neg[len(neg)-1] = neg[len(neg)-1].Negate()
	res := (&constraint.Solver{Domain: st.sym.Domain()}).Solve(neg)
	if res.Verdict != constraint.SAT {
		return nil
	}
	out := make([]int64, st.prog.NumInputs)
	for v, val := range res.Model {
		if v < len(out) {
			out[v] = val
		}
	}
	if holds(out) {
		return nil
	}
	return out
}

// FixesSince implements the pod-facing fix distribution API.
func (h *Hive) FixesSince(programID string, version int) ([]fix.Fix, int, error) {
	st, err := h.state(programID)
	if err != nil {
		return nil, 0, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	fixes, cur := st.fixes.Since(version)
	return fixes, cur, nil
}

// Guidance implements the pod-facing steering API: test cases toward the
// program's current coverage gaps. The generator and tree synchronize
// internally, so guidance requests never touch the program shard lock; the
// checkpoint gate is held because the generator may certify refuted
// frontiers infeasible — a journaled mutation.
func (h *Hive) Guidance(programID string, max int) ([]guidance.TestCase, error) {
	st, err := h.state(programID)
	if err != nil {
		return nil, err
	}
	st.ckpt.RLock()
	defer st.ckpt.RUnlock()
	return st.gen.Generate(st.tree, max), nil
}

// Prove attempts a cumulative proof of the property for the program,
// reusing a standing proof when the tree and fixes have not changed its
// validity.
func (h *Hive) Prove(programID string, property proof.Property) (*proof.Proof, error) {
	st, err := h.state(programID)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	if pr, ok := st.proofs[property]; ok && pr.Epoch == st.epoch {
		st.mu.Unlock()
		return pr, nil
	}
	sym := st.sym
	epoch := st.epoch
	st.mu.Unlock()

	if sym == nil {
		return nil, fmt.Errorf("hive: proofs for multi-threaded program %s not supported", programID)
	}
	// The attempt mutates the tree (synthesized evidence merges,
	// certificates); hold the checkpoint gate so the whole attempt and its
	// journal op are atomic relative to snapshots.
	st.ckpt.RLock()
	defer st.ckpt.RUnlock()
	engine := proof.NewEngine(st.prog, sym)
	pr, err := engine.Attempt(st.tree, property, epoch)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	st.proofs[property] = pr
	if h.journal != nil {
		// The op carries the proof and its merged evidence; certificates
		// minted during the attempt were journaled by the tree's certify
		// observer as they happened.
		if data, encErr := proof.Encode(pr); encErr != nil {
			h.noteDurability(encErr)
		} else if aerr := h.journal.Append(st.prog.ID, &journal.Op{Kind: journal.OpProof, Proof: data}); aerr != nil {
			h.noteDurability(aerr)
		}
	}
	st.mu.Unlock()
	return pr, nil
}

// PublishedProofs returns the standing (non-invalidated) proofs for a
// program — the paper's "for correct behaviors, SoftBorg's hive produces
// and publishes proofs of P's properties".
func (h *Hive) PublishedProofs(programID string) ([]*proof.Proof, error) {
	st, err := h.state(programID)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*proof.Proof, 0, len(st.proofs))
	for _, pr := range st.proofs {
		if pr.Epoch == st.epoch {
			out = append(out, pr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Property < out[j].Property })
	return out, nil
}

// Reproducer derives a concrete test case that reproduces a recorded
// failure signature — the artifact the repair lab hands a developer. It
// works even at hashed/opaque privacy: the sample trace's recorded
// input-dependent branch directions are replayed symbolically and the
// resulting path condition is solved for *an* input that takes the same
// path (not necessarily the user's input — deliberately so).
func (h *Hive) Reproducer(programID, signature string) (guidance.TestCase, error) {
	st, err := h.state(programID)
	if err != nil {
		return guidance.TestCase{}, err
	}
	rec := st.failures.get(signature)
	if rec == nil || rec.sample == nil {
		return guidance.TestCase{}, fmt.Errorf("hive: no failure record %q for program %s", signature, programID)
	}
	// sample and sym are immutable once published.
	sample := rec.sample.Clone()
	sym := st.sym

	if sym == nil {
		return guidance.TestCase{}, fmt.Errorf("hive: reproducer for multi-threaded program %s not supported", programID)
	}

	var forced []trace.BranchEvent
	for _, be := range sample.Branches {
		if st.prog.InputDependent(int(be.ID)) {
			forced = append(forced, be)
		}
	}
	base := make([]int64, st.prog.NumInputs)
	path, err := sym.RunForced(base, forced)
	if err != nil {
		return guidance.TestCase{}, fmt.Errorf("hive: reproducer replay: %w", err)
	}
	if !path.Outcome.IsFailure() {
		return guidance.TestCase{}, fmt.Errorf("hive: forced replay of %q did not fail (outcome %s)", signature, path.Outcome)
	}
	cond := path.Condition()
	res := (&constraint.Solver{Domain: sym.Domain()}).Solve(cond)
	if res.Verdict != constraint.SAT {
		return guidance.TestCase{}, fmt.Errorf("hive: reproducer path condition %s for %q", res.Verdict, signature)
	}
	input := make([]int64, st.prog.NumInputs)
	for v, val := range res.Model {
		if v < len(input) {
			input[v] = val
		}
	}
	return guidance.TestCase{
		ProgramID: programID,
		Input:     input,
		Reason:    fmt.Sprintf("reproduces failure %s", signature),
	}, nil
}

// ProveNoDeadlock attempts a bounded-schedule proof that the program —
// running under its currently distributed fixes (immunity gates) — cannot
// deadlock within the given scheduling-decision bound. This is how the hive
// verifies a deadlock fix exhaustively instead of merely observing that
// reports stopped (paper §3.3: "must reason about whether this
// instrumentation could affect P in undesired ways").
func (h *Hive) ProveNoDeadlock(programID string, input []int64, bound int) (*proof.ScheduleProof, error) {
	st, err := h.state(programID)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	var sigs []deadlock.Signature
	for _, f := range st.fixes.All() {
		if f.Kind == fix.KindDeadlockImmunity && f.Deadlock != nil {
			sigs = append(sigs, *f.Deadlock)
		}
	}
	st.mu.Unlock()

	cfg := proof.ScheduleConfig{Input: input, Bound: bound}
	if len(sigs) > 0 {
		cfg.Instruments = func() (prog.LockGate, prog.Observer) {
			g := deadlock.NewGate(sigs)
			return g, g
		}
	}
	return proof.AttemptBoundedSchedules(st.prog, proof.PropNoDeadlock, cfg)
}

// Stats is a hive-side per-program snapshot.
type Stats struct {
	ProgramID     string
	Ingested      int64
	Reconstructed int64
	// Narrowed counts coordinated-sampling families completed and merged
	// as full paths.
	Narrowed  int64
	Tree      exectree.Stats
	Failures  []FailureRecord
	FixCount  int
	Epoch     int
	RepairLab int
}

// ProgramStats returns a snapshot for one program.
func (h *Hive) ProgramStats(programID string) (Stats, error) {
	st, err := h.state(programID)
	if err != nil {
		return Stats{}, err
	}
	st.mu.Lock()
	out := Stats{
		ProgramID:     programID,
		Ingested:      st.ingested.Load(),
		Reconstructed: st.reconstructed.Load(),
		Narrowed:      st.narrowed.Load(),
		Tree:          st.tree.Stats(),
		FixCount:      st.fixes.Len(),
		Epoch:         st.epoch,
	}
	st.mu.Unlock()
	out.Failures = st.failures.snapshot()
	for _, rec := range out.Failures {
		if rec.InRepairLab {
			out.RepairLab++
		}
	}
	return out, nil
}

// Tree exposes a program's execution tree (experiments and proof drivers).
func (h *Hive) Tree(programID string) (*exectree.Tree, error) {
	st, err := h.state(programID)
	if err != nil {
		return nil, err
	}
	return st.tree, nil
}

// Programs lists registered program IDs.
func (h *Hive) Programs() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]string, 0, len(h.programs))
	for id := range h.programs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
