package hive

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/pod"
	"repro/internal/prog"
	"repro/internal/trace"
)

// captureTrace runs p once on input under a full-capture collector and
// returns the resulting trace, attributed to podID.
func captureTrace(t *testing.T, p *prog.Program, podID string, input []int64, privacy trace.PrivacyLevel) *trace.Trace {
	t.Helper()
	col := trace.NewCollector(p, trace.CaptureFull, 0, 1)
	m, err := prog.NewMachine(p, prog.Config{Input: input, Observer: col})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	return col.Finish(podID, 0, res, input, privacy, "fleet")
}

// TestSingleFlightFixSynthesis hammers one brand-new failure signature from
// many goroutines at once. The hive must elect exactly one synthesizer:
// one fix minted, one epoch bump, no duplicate standing-proof wipes — the
// duplicate-fix race the global-mutex hive had when synthesis ran outside
// the lock.
func TestSingleFlightFixSynthesis(t *testing.T) {
	p := buildCrashy(t)
	h := New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}

	const goroutines = 32
	traces := make([]*trace.Trace, goroutines)
	for i := range traces {
		// Same crashing input everywhere: every trace carries the same
		// (outcome @ fault site) signature, from a distinct pod.
		traces[i] = captureTrace(t, p, fmt.Sprintf("pod-%d", i), []int64{105}, trace.PrivacyHashed)
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(tr *trace.Trace) {
			defer wg.Done()
			<-start
			errs <- h.SubmitTraces([]*trace.Trace{tr})
		}(traces[i])
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st, err := h.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.FixCount != 1 {
		t.Errorf("fix count = %d, want exactly 1 (duplicate synthesis)", st.FixCount)
	}
	if st.Epoch != 1 {
		t.Errorf("epoch = %d, want exactly 1 bump", st.Epoch)
	}
	if len(st.Failures) != 1 {
		t.Fatalf("failure records = %+v, want 1 signature", st.Failures)
	}
	rec := st.Failures[0]
	if rec.Count != goroutines {
		t.Errorf("count = %d, want %d (every trace must still be recorded)", rec.Count, goroutines)
	}
	if rec.Pods != goroutines {
		t.Errorf("pods = %d, want %d", rec.Pods, goroutines)
	}
	if !rec.Fixed {
		t.Error("signature not marked fixed")
	}
	if st.Ingested != goroutines {
		t.Errorf("ingested = %d, want %d", st.Ingested, goroutines)
	}
}

// TestConcurrentSubmitAcrossProgramsAndModes drives SubmitTraces from many
// goroutines against several programs at once, mixing capture modes:
// full-capture crashers (raw privacy, feeding known-good harvesting),
// external-only traces (lock-free reconstruction), and coordinated-sampling
// fragment families that must still narrow to full paths when their phases
// arrive from different goroutines. Run under -race this is the sharding
// regression test.
func TestConcurrentSubmitAcrossProgramsAndModes(t *testing.T) {
	crashy := buildCrashy(t)

	// A loop-free program for coordinated sampling (every site decides once).
	cb := prog.NewBuilder("coord-conc", 1)
	for i := 0; i < 5; i++ {
		skip := cb.NewLabel()
		cb.Input(0, 0)
		cb.BrImm(0, prog.CmpGT, int64(40*i+20), skip)
		cb.AddImm(1, 1, 1)
		cb.Bind(skip)
	}
	cb.Halt()
	coordProg := cb.MustBuild()

	h := New("fleet")
	for _, p := range []*prog.Program{crashy, coordProg} {
		if err := h.RegisterProgram(p); err != nil {
			t.Fatal(err)
		}
	}

	const (
		crashyPods    = 4
		runsPerPod    = 40
		coordFamilies = 8
		coordK        = 3
	)

	// Pre-build the coordinated fragments: one family per input, one
	// fragment per phase.
	fragments := make([]*trace.Trace, 0, coordFamilies*coordK)
	for f := 0; f < coordFamilies; f++ {
		input := []int64{int64(10 + 30*f)}
		for phase := uint32(0); phase < coordK; phase++ {
			col := trace.NewCoordinatedCollector(coordProg, phase, coordK)
			m, err := prog.NewMachine(coordProg, prog.Config{Input: input, Observer: col})
			if err != nil {
				t.Fatal(err)
			}
			res := m.Run()
			fragments = append(fragments, col.Finish(fmt.Sprintf("cpod-%d", phase), uint64(f), res, input, trace.PrivacyHashed, "fleet"))
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, crashyPods+coordK)

	// Crashy pods: raw privacy, inputs sweeping through the crash zone.
	for i := 0; i < crashyPods; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pd, err := pod.New(pod.Config{
				Program: crashy, ID: fmt.Sprintf("cr-%d", i), Hive: h,
				Capture: trace.CaptureFull, Privacy: trace.PrivacyRaw,
				Salt: "fleet", Seed: uint64(i + 1), BatchSize: 4,
			})
			if err != nil {
				errs <- err
				return
			}
			for r := 0; r < runsPerPod; r++ {
				if _, err := pd.RunOnce([]int64{int64((r * 13) % 128)}); err != nil {
					errs <- err
					return
				}
			}
			errs <- pd.Flush()
		}(i)
	}

	// Coordinated fragments: one goroutine per phase, so every family's
	// fragments arrive from different goroutines in racing order.
	for phase := 0; phase < coordK; phase++ {
		wg.Add(1)
		go func(phase int) {
			defer wg.Done()
			for i, tr := range fragments {
				if i%coordK != phase {
					continue
				}
				if err := h.SubmitTraces([]*trace.Trace{tr}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(phase)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	crSt, err := h.ProgramStats(crashy.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(crashyPods * runsPerPod); crSt.Ingested != want {
		t.Errorf("crashy ingested = %d, want %d", crSt.Ingested, want)
	}
	// The sweep hits the single crash zone [100,110): one signature, one fix.
	if len(crSt.Failures) != 1 || crSt.FixCount != 1 || crSt.Epoch != 1 {
		t.Errorf("crashy: failures=%d fixes=%d epoch=%d, want 1/1/1", len(crSt.Failures), crSt.FixCount, crSt.Epoch)
	}

	coSt, err := h.ProgramStats(coordProg.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(coordFamilies * coordK); coSt.Ingested != want {
		t.Errorf("coordinated ingested = %d, want %d", coSt.Ingested, want)
	}
	if coSt.Narrowed != coordFamilies {
		t.Errorf("narrowed = %d, want %d (every complete family must narrow)", coSt.Narrowed, coordFamilies)
	}
}

// TestBatchGroupingAcrossPrograms submits one mixed batch touching several
// programs and verifies per-program bookkeeping survives the group-by
// ingestion path.
func TestBatchGroupingAcrossPrograms(t *testing.T) {
	a := buildCrashy(t)
	bld := prog.NewBuilder("clean-b", 1)
	bld.Input(0, 0)
	bld.Halt()
	b := bld.MustBuild()

	h := New("fleet")
	for _, p := range []*prog.Program{a, b} {
		if err := h.RegisterProgram(p); err != nil {
			t.Fatal(err)
		}
	}
	batch := []*trace.Trace{
		captureTrace(t, a, "p1", []int64{5}, trace.PrivacyHashed),
		captureTrace(t, b, "p2", []int64{7}, trace.PrivacyHashed),
		captureTrace(t, a, "p1", []int64{105}, trace.PrivacyHashed), // crash
		captureTrace(t, b, "p2", []int64{9}, trace.PrivacyHashed),
		captureTrace(t, a, "p3", []int64{105}, trace.PrivacyHashed), // same signature again
	}
	if err := h.SubmitTraces(batch); err != nil {
		t.Fatal(err)
	}
	aSt, _ := h.ProgramStats(a.ID)
	bSt, _ := h.ProgramStats(b.ID)
	if aSt.Ingested != 3 || bSt.Ingested != 2 {
		t.Errorf("ingested a=%d b=%d, want 3/2", aSt.Ingested, bSt.Ingested)
	}
	if aSt.FixCount != 1 || aSt.Epoch != 1 {
		t.Errorf("a fixes=%d epoch=%d, want 1/1 (in-batch duplicate signature)", aSt.FixCount, aSt.Epoch)
	}
	if len(aSt.Failures) != 1 || aSt.Failures[0].Count != 2 || aSt.Failures[0].Pods != 2 {
		t.Errorf("a failures = %+v", aSt.Failures)
	}
	if bSt.FixCount != 0 || len(bSt.Failures) != 0 {
		t.Errorf("clean program got failures/fixes: %+v", bSt)
	}
}

// TestSubmitTracesAllOrNothing pins the retry contract: a batch naming an
// unregistered program is rejected before ANY group is applied, so clients
// that re-queue failed batches (pod.Flush, pod.BufferedClient.Drain) cannot
// double-ingest the groups that would otherwise already have landed.
func TestSubmitTracesAllOrNothing(t *testing.T) {
	p := buildCrashy(t)
	h := New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	good := captureTrace(t, p, "p1", []int64{5}, trace.PrivacyHashed)
	batch := []*trace.Trace{good, {ProgramID: "ghost"}}
	if err := h.SubmitTraces(batch); err == nil {
		t.Fatal("batch with unknown program accepted")
	}
	st, _ := h.ProgramStats(p.ID)
	if st.Ingested != 0 {
		t.Fatalf("rejected batch partially applied: ingested = %d, want 0", st.Ingested)
	}
	// Re-submitting after registration fixes the batch exactly once.
	if err := h.SubmitTraces([]*trace.Trace{good}); err != nil {
		t.Fatal(err)
	}
	st, _ = h.ProgramStats(p.ID)
	if st.Ingested != 1 {
		t.Fatalf("retry ingested = %d, want 1", st.Ingested)
	}
}
