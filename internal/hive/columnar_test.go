package hive

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/prog"
	"repro/internal/trace"
)

// captureMixed runs the crashy program under a mix of capture modes and
// privacy levels — full, external-only (reconstructable), raw-privacy OK
// runs (known-good harvest), and crashing inputs (failure aggregation +
// fix synthesis) — returning one program-homogeneous trace corpus.
func captureMixed(t *testing.T, p *prog.Program, n int) []*trace.Trace {
	t.Helper()
	modes := []trace.CaptureMode{trace.CaptureFull, trace.CaptureExternalOnly}
	out := make([]*trace.Trace, 0, n)
	for i := 0; i < n; i++ {
		mode := modes[i%len(modes)]
		privacy := trace.PrivacyHashed
		if i%3 == 0 {
			privacy = trace.PrivacyRaw
		}
		input := []int64{int64(i * 17 % 160)}
		col := trace.NewCollector(p, mode, 0, uint64(i+1))
		m, err := prog.NewMachine(p, prog.Config{Input: input, Observer: col})
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		out = append(out, col.Finish(fmt.Sprintf("pod-%d", i%4), uint64(i), res, input, privacy, "fleet"))
	}
	return out
}

// TestColumnarIngestMatchesV2 is the ingest-equivalence property behind the
// zero-copy path: feeding a batch through the view-based columnar apply
// must leave the hive in exactly the state the materialized per-trace path
// produces — same counters, same reconstruction, same failure aggregation
// and minted fixes, same execution tree.
func TestColumnarIngestMatchesV2(t *testing.T) {
	p := buildCrashy(t)
	corpus := captureMixed(t, p, 96)

	hV2 := New("fleet")
	if err := hV2.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	hCol := New("fleet")
	if err := hCol.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}

	const chunk = 16
	for off := 0; off < len(corpus); off += chunk {
		batch := corpus[off : off+chunk]
		if err := hV2.SubmitTracesFor(p.ID, batch); err != nil {
			t.Fatal(err)
		}
		enc, err := trace.EncodeBatch(p.ID, batch)
		if err != nil {
			t.Fatal(err)
		}
		view, err := trace.DecodeBatch(enc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := hCol.SubmitColumnarSession("", 0, view); err != nil {
			t.Fatal(err)
		}
		view.Release()
	}

	sV2, err := hV2.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	sCol, err := hCol.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sV2.Reconstructed == 0 || sV2.FixCount == 0 {
		t.Fatalf("corpus did not exercise reconstruction/synthesis: %+v", sV2)
	}
	// Failure samples are equal but distinct pointers; compare them
	// structurally, then the rest of the stats wholesale.
	if len(sV2.Failures) != len(sCol.Failures) {
		t.Fatalf("failure records: v2 %d, columnar %d", len(sV2.Failures), len(sCol.Failures))
	}
	for i := range sV2.Failures {
		a, b := sV2.Failures[i], sCol.Failures[i]
		if !reflect.DeepEqual(a.Sample, b.Sample) {
			t.Fatalf("failure %q sample differs:\nv2       %+v\ncolumnar %+v", a.Signature, a.Sample, b.Sample)
		}
		a.Sample, b.Sample = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("failure record %d differs:\nv2       %+v\ncolumnar %+v", i, a, b)
		}
	}
	sV2.Failures, sCol.Failures = nil, nil
	if !reflect.DeepEqual(sV2, sCol) {
		t.Fatalf("stats differ:\nv2       %+v\ncolumnar %+v", sV2, sCol)
	}

	// Tree equality: encoded forms are canonical.
	tV2, err := hV2.Tree(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	tCol, err := hCol.Tree(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tV2.Encode(), tCol.Encode()) {
		t.Fatal("execution trees differ between v2 and columnar ingestion")
	}

	// Minted fixes match.
	fV2, _, err := hV2.FixesSince(p.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	fCol, _, err := hCol.FixesSince(p.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fV2, fCol) {
		t.Fatalf("fixes differ:\nv2       %+v\ncolumnar %+v", fV2, fCol)
	}
}
