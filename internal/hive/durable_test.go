package hive

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/exectree"
	"repro/internal/journal"
	"repro/internal/prog"
	"repro/internal/proggen"
	"repro/internal/proof"
	"repro/internal/stats"
	"repro/internal/trace"
)

// durableCorpus generates a deterministic two-program corpus: one buggy
// (crash fix synthesis) and one clean (provable).
func durableCorpus(t testing.TB) []*prog.Program {
	t.Helper()
	buggy, _, err := proggen.Generate(proggen.Spec{
		Seed: 6001, Depth: 5, NumInputs: 1, TriggerWidth: 24,
		Bugs: []proggen.BugKind{proggen.BugCrash},
	})
	if err != nil {
		t.Fatal(err)
	}
	clean, _, err := proggen.Generate(proggen.Spec{Seed: 6002, Depth: 5, NumInputs: 1})
	if err != nil {
		t.Fatal(err)
	}
	return []*prog.Program{buggy, clean}
}

// captureTrace executes p on input and returns the shipped trace.
func captureSeqTrace(t testing.TB, p *prog.Program, podID string, seq uint64, input []int64, privacy trace.PrivacyLevel) *trace.Trace {
	t.Helper()
	col := trace.NewCollector(p, trace.CaptureFull, 0, 1)
	m, err := prog.NewMachine(p, prog.Config{Input: input, Observer: col})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	return col.Finish(podID, seq, res, input, privacy, "fleet")
}

// newDurableHive registers the corpus and recovers from dir.
func newDurableHive(t testing.TB, dir string, corpus []*prog.Program) (*Hive, *journal.Store) {
	t.Helper()
	h := New("fleet")
	for _, p := range corpus {
		if err := h.RegisterProgram(p); err != nil {
			t.Fatal(err)
		}
	}
	store, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Recover(store); err != nil {
		t.Fatal(err)
	}
	return h, store
}

// feedFleet drives a deterministic mixed workload into the hive: benign
// runs, crash triggers (fix synthesis), and some raw-privacy traces
// (known-good harvesting).
func feedFleet(t testing.TB, h *Hive, corpus []*prog.Program, runs int, seed uint64) {
	t.Helper()
	rng := stats.NewRNG(seed)
	seq := uint64(0)
	for r := 0; r < runs; r++ {
		for pi, p := range corpus {
			privacy := trace.PrivacyHashed
			if r%3 == 0 {
				privacy = trace.PrivacyRaw
			}
			input := []int64{rng.Int63n(256)}
			seq++
			tr := captureSeqTrace(t, p, fmt.Sprintf("pod-%d-%d", pi, r%4), seq, input, privacy)
			if err := h.SubmitTracesFor(p.ID, []*trace.Trace{tr}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// assertHivesEqual asserts the full acceptance-criteria equality between
// two hives: same ProgramStats, same Frontiers(k) for every program, same
// published fixes and standing proofs.
func assertHivesEqual(t *testing.T, want, got *Hive, corpus []*prog.Program) {
	t.Helper()
	for _, p := range corpus {
		ws, err := want.ProgramStats(p.ID)
		if err != nil {
			t.Fatal(err)
		}
		gs, err := got.ProgramStats(p.ID)
		if err != nil {
			t.Fatal(err)
		}
		// Samples are compared by content: pointer identity differs across
		// processes by construction.
		wf, gf := ws.Failures, gs.Failures
		ws.Failures, gs.Failures = nil, nil
		if !reflect.DeepEqual(ws, gs) {
			t.Errorf("program %s: stats mismatch:\n want %+v\n  got %+v", p.Name, ws, gs)
		}
		if len(wf) != len(gf) {
			t.Fatalf("program %s: %d failure records, want %d", p.Name, len(gf), len(wf))
		}
		for i := range wf {
			if wf[i].Signature != gf[i].Signature || wf[i].Count != gf[i].Count ||
				wf[i].Pods != gf[i].Pods || wf[i].Fixed != gf[i].Fixed ||
				wf[i].InRepairLab != gf[i].InRepairLab {
				t.Errorf("program %s: failure %d mismatch:\n want %+v\n  got %+v", p.Name, i, wf[i], gf[i])
			}
			if (wf[i].Sample == nil) != (gf[i].Sample == nil) {
				t.Errorf("program %s: failure %d sample presence mismatch", p.Name, i)
			} else if wf[i].Sample != nil && !reflect.DeepEqual(wf[i].Sample, gf[i].Sample) {
				t.Errorf("program %s: failure %d sample mismatch", p.Name, i)
			}
		}

		wt, _ := want.Tree(p.ID)
		gt, _ := got.Tree(p.ID)
		sameFrontiers := func(a, b []exectree.Frontier) bool {
			if len(a) == 0 && len(b) == 0 {
				return true // nil vs empty: both mean "no frontiers"
			}
			return reflect.DeepEqual(a, b)
		}
		if !sameFrontiers(wt.FrontiersAll(), gt.FrontiersAll()) {
			t.Errorf("program %s: full frontier sets mismatch", p.Name)
		}
		for _, k := range []int{1, 4, 64} {
			if !sameFrontiers(wt.Frontiers(k), gt.Frontiers(k)) {
				t.Errorf("program %s: Frontiers(%d) mismatch", p.Name, k)
			}
		}
		if !sameFrontiers(gt.FrontiersAll(), gt.FrontiersByWalk(0)) {
			t.Errorf("program %s: recovered frontier index disagrees with full walk", p.Name)
		}

		wfx, wver, err := want.FixesSince(p.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		gfx, gver, err := got.FixesSince(p.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		if wver != gver || !reflect.DeepEqual(wfx, gfx) {
			t.Errorf("program %s: fixes mismatch: versions %d/%d", p.Name, wver, gver)
		}

		wpr, err := want.PublishedProofs(p.ID)
		if err != nil {
			t.Fatal(err)
		}
		gpr, err := got.PublishedProofs(p.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(wpr) != len(gpr) {
			t.Fatalf("program %s: %d standing proofs, want %d", p.Name, len(gpr), len(wpr))
		}
		for i := range wpr {
			w, g := *wpr[i], *gpr[i]
			if w.Property != g.Property || w.Complete != g.Complete || w.Holds != g.Holds ||
				w.PathsCovered != g.PathsCovered || w.Epoch != g.Epoch {
				t.Errorf("program %s: proof %d mismatch:\n want %+v\n  got %+v", p.Name, i, w, g)
			}
		}
	}
}

// TestHiveJournalReplayRoundTrip is the journal-only acceptance test: a
// hive rebuilt from op replay alone (no snapshot was ever taken) is
// semantically identical to the original.
func TestHiveJournalReplayRoundTrip(t *testing.T) {
	corpus := durableCorpus(t)
	dir := t.TempDir()
	h1, store1 := newDurableHive(t, dir, corpus)
	feedFleet(t, h1, corpus, 40, 1)
	if _, err := h1.Prove(corpus[1].ID, proof.PropNoCrash); err != nil {
		t.Fatal(err)
	}
	st, err := h1.ProgramStats(corpus[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.FixCount == 0 {
		t.Fatal("workload minted no fixes; test would prove nothing")
	}
	if err := h1.DurabilityError(); err != nil {
		t.Fatal(err)
	}
	// Crash: no checkpoint, no graceful anything — just drop the hive.
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	h2, store2 := newDurableHive(t, dir, corpus)
	defer store2.Close()
	assertHivesEqual(t, h1, h2, corpus)
}

// TestHiveSnapshotPlusSuffixRoundTrip checkpoints mid-workload so recovery
// exercises snapshot-plus-journal-suffix reconstruction, then crashes and
// compares.
func TestHiveSnapshotPlusSuffixRoundTrip(t *testing.T) {
	corpus := durableCorpus(t)
	dir := t.TempDir()
	h1, store1 := newDurableHive(t, dir, corpus)
	feedFleet(t, h1, corpus, 25, 1)
	if err := h1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	feedFleet(t, h1, corpus, 25, 2)
	if _, err := h1.Prove(corpus[1].ID, proof.PropNoCrash); err != nil {
		t.Fatal(err)
	}
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	h2, store2 := newDurableHive(t, dir, corpus)
	defer store2.Close()
	assertHivesEqual(t, h1, h2, corpus)

	// The recovered hive is live: it keeps ingesting and checkpointing.
	feedFleet(t, h2, corpus, 5, 3)
	if err := h2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := h2.DurabilityError(); err != nil {
		t.Fatal(err)
	}
}

// TestHiveKillRestartMidStream crashes the hive between two halves of a
// sequenced stream: nothing acknowledged before the kill is lost, and
// resubmitting the whole stream after recovery ingests each batch exactly
// once.
func TestHiveKillRestartMidStream(t *testing.T) {
	corpus := durableCorpus(t)
	p := corpus[0]
	dir := t.TempDir()
	h1, store1 := newDurableHive(t, dir, corpus)

	rng := stats.NewRNG(7)
	var batches [][]*trace.Trace
	for i := 0; i < 12; i++ {
		var batch []*trace.Trace
		for j := 0; j < 4; j++ {
			batch = append(batch, captureSeqTrace(t, p, "pod-s", uint64(i*4+j), []int64{rng.Int63n(256)}, trace.PrivacyHashed))
		}
		batches = append(batches, batch)
	}

	const session = "sess-kill-restart"
	for i := 0; i < 7; i++ { // first 7 frames acknowledged, then the crash
		dup, err := h1.SubmitTracesSession(session, uint64(i+1), p.ID, batches[i])
		if err != nil || dup {
			t.Fatalf("frame %d: dup=%v err=%v", i, dup, err)
		}
	}
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	h2, store2 := newDurableHive(t, dir, corpus)
	defer store2.Close()
	st, err := h2.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(7 * 4); st.Ingested != want {
		t.Fatalf("after recovery: ingested %d, want %d (no acknowledged trace lost)", st.Ingested, want)
	}

	// The client reconnects and, not knowing which frames survived,
	// resubmits the entire stream with its original sequence numbers.
	dups := 0
	for i := range batches {
		dup, err := h2.SubmitTracesSession(session, uint64(i+1), p.ID, batches[i])
		if err != nil {
			t.Fatalf("resubmit frame %d: %v", i, err)
		}
		if dup {
			dups++
		}
	}
	if dups != 7 {
		t.Fatalf("resubmission deduplicated %d frames, want 7", dups)
	}
	st, err = h2.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(batches) * 4); st.Ingested != want {
		t.Fatalf("after resubmission: ingested %d, want %d (exactly once)", st.Ingested, want)
	}
}

// TestHiveRecoverRejectsUnknownProgram guards against silently dropping a
// data directory that disagrees with the registered corpus.
func TestHiveRecoverRejectsUnknownProgram(t *testing.T) {
	corpus := durableCorpus(t)
	dir := t.TempDir()
	h1, store1 := newDurableHive(t, dir, corpus)
	feedFleet(t, h1, corpus, 2, 1)
	store1.Close()

	h2 := New("fleet") // empty corpus: every persisted program is unknown
	store2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if err := h2.Recover(store2); err == nil {
		t.Fatal("Recover accepted a journal for unregistered programs")
	}
}

// BenchmarkHiveRecover measures crash recovery: rebuilding a hive from a
// journal of pre-captured batch ops (the dominant recovery cost is batch
// replay through the ingest path).
func BenchmarkHiveRecover(b *testing.B) {
	corpus := durableCorpus(b)
	dir := b.TempDir()
	h, store := newDurableHive(b, dir, corpus)
	feedFleet(b, h, corpus, 100, 1)
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h2 := New("fleet")
		for _, p := range corpus {
			if err := h2.RegisterProgram(p); err != nil {
				b.Fatal(err)
			}
		}
		s, err := journal.Open(dir, journal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := h2.Recover(s); err != nil {
			b.Fatal(err)
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
