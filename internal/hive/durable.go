package hive

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/exectree"
	"repro/internal/fix"
	"repro/internal/journal"
	"repro/internal/proof"
	"repro/internal/trace"
)

// Recover restores the hive's durable state from store — newest snapshot
// plus journal-suffix replay, per program — and attaches the store, so
// every subsequent mutation is journaled ahead of being applied. Call it
// after registering the program corpus and before serving traffic. A
// recovered hive is semantically identical to the one that wrote the
// journal: same program stats, same frontier sets (exectree.Decode rebuilds
// the incremental index), same published fixes and standing proofs, and the
// same exactly-once session dedup table.
//
// Persisted state for a program that is not registered is an error: it
// means the data directory and the program corpus disagree (wrong -seed, or
// a stale directory), and silently dropping collective knowledge is exactly
// what the journal exists to prevent.
func (h *Hive) Recover(store *journal.Store) error {
	if h.journal != nil {
		return errors.New("hive: journal already attached")
	}
	for _, id := range store.Programs() {
		if _, err := h.state(id); err != nil {
			return fmt.Errorf("hive: recover: journal holds state for unregistered program %s", id)
		}
	}
	for _, id := range h.Programs() {
		st, err := h.state(id)
		if err != nil {
			return err
		}
		base, deltas, err := store.LoadChain(id)
		if err != nil {
			return err
		}
		if base != nil {
			if err := h.restoreProgram(st, base, deltas); err != nil {
				return err
			}
			st.hasBase = true
			st.deltasSince = len(deltas)
		}
		// Track tree changes from this point: journal-suffix ops replayed
		// below mark the dirty set, so the first post-recovery checkpoint
		// can be an incremental segment capturing exactly the suffix.
		st.tree.SetDeltaTracking(true)
		// Certificates minted during a proof attempt can reference nodes the
		// attempt itself created; those merges replay later, inside the
		// attempt's OpProof. A cert whose prefix is not in the tree yet is
		// deferred and re-applied once the program's whole journal has
		// replayed (certificates are order-independent facts). Certs still
		// unresolvable then belong to an attempt that crashed before its
		// OpProof landed — its merges are gone, so the frontier they
		// discharged does not exist either.
		var deferred []*journal.Op
		if _, err := store.Replay(id, func(op *journal.Op) error {
			if op.Kind == journal.OpCert && !st.tree.CertifyInfeasible(op.Prefix, op.Missing) {
				deferred = append(deferred, op)
				return nil
			}
			return h.applyOp(st, op)
		}); err != nil {
			return err
		}
		for _, op := range deferred {
			st.tree.CertifyInfeasible(op.Prefix, op.Missing)
		}
	}
	h.journal = store
	// From here on, certificates minted anywhere — the prover discharging a
	// frontier, the guidance generator refuting one — are journaled at the
	// tree.
	for _, id := range h.Programs() {
		st, err := h.state(id)
		if err != nil {
			return err
		}
		h.observeCertificates(st)
	}
	return nil
}

// observeCertificates journals every newly minted infeasibility certificate
// on the program's tree.
func (h *Hive) observeCertificates(st *programState) {
	programID := st.prog.ID
	st.tree.SetCertifyObserver(func(prefix []exectree.Edge, missing exectree.Edge) {
		op := &journal.Op{
			Kind:    journal.OpCert,
			Prefix:  append([]exectree.Edge(nil), prefix...),
			Missing: missing,
		}
		if err := h.journal.Append(programID, op); err != nil {
			h.noteDurability(err)
		}
	})
}

// restoreProgram rebuilds one program's state from a checkpoint chain: the
// base snapshot's tree with every delta segment's tree patch overlaid in
// order, and the non-tree state from the newest segment (each segment
// carries it in full).
func (h *Hive) restoreProgram(st *programState, base *journal.ProgramSnapshot, deltas []*journal.ProgramSnapshot) error {
	treeDeltas := make([][]byte, 0, len(deltas))
	for _, d := range deltas {
		treeDeltas = append(treeDeltas, d.TreeDelta)
	}
	tree, err := exectree.DecodeChain(base.Tree, treeDeltas)
	if err != nil {
		return fmt.Errorf("hive: restore %s tree: %w", st.prog.ID, err)
	}
	if tree.ProgramID() != st.prog.ID {
		return fmt.Errorf("hive: snapshot tree for %q restored into %q", tree.ProgramID(), st.prog.ID)
	}
	snap := base
	if len(deltas) > 0 {
		snap = deltas[len(deltas)-1]
	}
	fixes := make([]fix.Fix, 0, len(snap.Fixes))
	for i, raw := range snap.Fixes {
		f, err := fix.Decode(raw)
		if err != nil {
			return fmt.Errorf("hive: restore %s fix %d: %w", st.prog.ID, i, err)
		}
		fixes = append(fixes, *f)
	}
	proofs := make(map[proof.Property]*proof.Proof, len(snap.Proofs))
	for i, raw := range snap.Proofs {
		pr, err := proof.Decode(raw)
		if err != nil {
			return fmt.Errorf("hive: restore %s proof %d: %w", st.prog.ID, i, err)
		}
		proofs[pr.Property] = pr
	}
	var coordinated map[string][]*trace.Trace
	if len(snap.Coordinated) > 0 {
		coordinated = make(map[string][]*trace.Trace, len(snap.Coordinated))
		for key, raws := range snap.Coordinated {
			fam := make([]*trace.Trace, 0, len(raws))
			for _, raw := range raws {
				tr, err := trace.Decode(raw)
				if err != nil {
					return fmt.Errorf("hive: restore %s coordinated fragment: %w", st.prog.ID, err)
				}
				fam = append(fam, tr)
			}
			coordinated[key] = fam
		}
	}
	knownGood := make([][]int64, 0, len(snap.KnownGood))
	for _, g := range snap.KnownGood {
		knownGood = append(knownGood, append([]int64(nil), g...))
	}

	st.mu.Lock()
	st.tree = tree
	if err := st.fixes.Load(fixes); err != nil {
		st.mu.Unlock()
		return fmt.Errorf("hive: restore %s fixes: %w", st.prog.ID, err)
	}
	st.epoch = snap.Epoch
	st.proofs = proofs
	st.mu.Unlock()
	st.ingested.Store(snap.Ingested)
	st.reconstructed.Store(snap.Reconstructed)
	st.narrowed.Store(snap.Narrowed)
	if len(knownGood) > 0 {
		st.kgMu.Lock()
		st.knownGood = knownGood
		st.kgMu.Unlock()
	}
	st.coordMu.Lock()
	st.coordinated = coordinated
	st.coordMu.Unlock()

	for _, fs := range snap.Failures {
		if err := st.failures.restore(fs); err != nil {
			return err
		}
	}
	h.mergeSessions(snap.Sessions, snap.SessionsAhead)
	return nil
}

// applyOp replays one journaled operation through the same apply path live
// ingestion uses.
func (h *Hive) applyOp(st *programState, op *journal.Op) error {
	switch op.Kind {
	case journal.OpBatchColumnar:
		view, err := trace.DecodeBatch(op.Raw)
		if err != nil {
			return fmt.Errorf("hive: replay %s columnar batch: %w", st.prog.ID, err)
		}
		// Replay runs through the same view-based apply path live columnar
		// ingestion uses — the journaled bytes ARE the wire bytes, so a
		// recovered hive reproduces the live one's state exactly.
		h.applyBatchView(st, view, false)
		view.Release()
		if op.Session != "" {
			h.markSession(op.Session, op.Seq)
		}
	case journal.OpBatch:
		batch := make([]*trace.Trace, 0, len(op.Traces))
		for i, raw := range op.Traces {
			tr, err := trace.Decode(raw)
			if err != nil {
				return fmt.Errorf("hive: replay %s batch trace %d: %w", st.prog.ID, i, err)
			}
			batch = append(batch, tr)
		}
		h.applyBatch(st, batch, false)
		if op.Session != "" {
			h.markSession(op.Session, op.Seq)
		}
	case journal.OpSynthesis:
		if len(op.Fix) == 0 {
			st.failures.applyOutcome(op.Signature, 0, false)
			return nil
		}
		f, err := fix.Decode(op.Fix)
		if err != nil {
			return fmt.Errorf("hive: replay %s fix for %q: %w", st.prog.ID, op.Signature, err)
		}
		st.mu.Lock()
		// Synthesis ops were journaled in fix-ID order, so Add re-assigns
		// the same IDs the live hive handed out.
		st.fixes.Add(*f)
		st.epoch++
		st.proofs = make(map[proof.Property]*proof.Proof)
		st.mu.Unlock()
		st.failures.applyOutcome(op.Signature, 0, true)
	case journal.OpProof:
		pr, err := proof.Decode(op.Proof)
		if err != nil {
			return fmt.Errorf("hive: replay %s proof: %w", st.prog.ID, err)
		}
		for _, ev := range pr.Evidence {
			st.tree.Merge(ev.Path, ev.Outcome)
		}
		st.mu.Lock()
		st.proofs[pr.Property] = pr
		st.mu.Unlock()
	case journal.OpCert:
		st.tree.CertifyInfeasible(op.Prefix, op.Missing)
	default:
		return fmt.Errorf("hive: unknown journal op kind %d", op.Kind)
	}
	return nil
}

// Checkpoint writes a fresh snapshot for every program and rotates its
// journal. Each program is checkpointed independently under its checkpoint
// gate: ingestion for other programs keeps flowing, and cross-program
// session marks stay consistent because the dedup table is max-merged from
// every snapshot at recovery.
func (h *Hive) Checkpoint() error {
	if h.journal == nil {
		return errors.New("hive: checkpoint without an attached journal")
	}
	for _, id := range h.Programs() {
		if err := h.CheckpointProgram(id); err != nil {
			return err
		}
	}
	return nil
}

// CheckpointProgram snapshots one program and rotates its journal. With the
// incremental policy (the default) most checkpoints write a delta segment —
// only the tree nodes touched since the previous checkpoint plus the small
// non-tree state — bounding the pause under the gate to O(changes) instead
// of O(tree); a program's first checkpoint, and every compactEvery-th one
// after, writes a full snapshot that compacts the chain. OpProof evidence
// merges mark the dirty set like any other merge, so a proof attempt's
// evidence paths are folded into the very next segment eagerly instead of
// being replayed from the journal forever.
func (h *Hive) CheckpointProgram(programID string) error {
	if h.journal == nil {
		return errors.New("hive: checkpoint without an attached journal")
	}
	st, err := h.state(programID)
	if err != nil {
		return err
	}
	st.ckpt.Lock()
	defer st.ckpt.Unlock()

	// Quiescent program: nothing merged since the last checkpoint and no
	// journal ops to retire — a checkpoint would write an empty segment
	// (or, on a compaction tick, re-encode an unchanged tree) for zero
	// replay-debt reduction. Skipping never loses data: the journal, if it
	// somehow had ops, stays in place. Session marks that advanced via
	// other programs' traffic are carried by those programs' segments and
	// ops (recovery max-merges all of them).
	if st.hasBase && st.tree.DirtyNodes() == 0 &&
		h.journal.AppendsSinceCheckpoint(programID) == 0 {
		return nil
	}

	if st.hasBase && h.compactEvery > 0 && st.deltasSince < h.compactEvery {
		if delta := st.tree.EncodeDelta(); delta != nil {
			snap, err := h.snapshotProgramMeta(st)
			if err != nil {
				return err
			}
			snap.TreeDelta = delta
			if err := h.journal.CheckpointDelta(snap); err != nil {
				return err
			}
			// Only now that the segment is durable does the boundary move;
			// a failed write above leaves the dirty set (and the journal)
			// intact, so nothing acknowledged can fall between snapshots.
			st.tree.ResetDelta()
			st.deltasSince++
			h.closeReadOnly(st)
			return nil
		}
	}

	snap, err := h.snapshotProgramMeta(st)
	if err != nil {
		return err
	}
	snap.Tree = st.tree.Encode()
	if err := h.journal.Checkpoint(snap); err != nil {
		return err
	}
	st.tree.SetDeltaTracking(true) // fresh boundary over the new base
	st.hasBase = true
	st.deltasSince = 0
	h.closeReadOnly(st)
	return nil
}

// closeReadOnly closes a program's journal breaker after a checkpoint
// landed durably: the disk demonstrably takes writes again, and the
// checkpoint rotated away any poisoned journal generation.
func (h *Hive) closeReadOnly(st *programState) {
	st.appendFails.Store(0)
	if st.readOnly.Swap(false) && h.Logf != nil {
		h.Logf("hive: program %s: checkpoint landed; read-only breaker closed, ingest resumes", st.prog.ID)
	}
}

// snapshotProgramMeta serializes everything in one program's durable state
// except the tree — fixes, proofs, failure aggregation, counters,
// known-good inputs, the coordinated buffer, and the session table. Both
// full snapshots and delta segments carry this in full; only the tree
// differs. The caller holds the checkpoint gate exclusively, so no
// journaled mutation is in flight.
func (h *Hive) snapshotProgramMeta(st *programState) (*journal.ProgramSnapshot, error) {
	snap := &journal.ProgramSnapshot{
		ProgramID:     st.prog.ID,
		Ingested:      st.ingested.Load(),
		Reconstructed: st.reconstructed.Load(),
		Narrowed:      st.narrowed.Load(),
	}
	st.kgMu.Lock()
	for _, g := range st.knownGood {
		snap.KnownGood = append(snap.KnownGood, append([]int64(nil), g...))
	}
	st.kgMu.Unlock()
	st.coordMu.Lock()
	if len(st.coordinated) > 0 {
		snap.Coordinated = make(map[string][][]byte, len(st.coordinated))
		for key, fam := range st.coordinated {
			raws := make([][]byte, 0, len(fam))
			for _, tr := range fam {
				raws = append(raws, trace.Encode(tr))
			}
			snap.Coordinated[key] = raws
		}
	}
	st.coordMu.Unlock()
	st.mu.Lock()
	snap.Epoch = st.epoch
	fixes := st.fixes.All()
	props := make([]proof.Property, 0, len(st.proofs))
	for p := range st.proofs {
		props = append(props, p)
	}
	sort.Slice(props, func(i, j int) bool { return props[i] < props[j] })
	proofs := make([]*proof.Proof, 0, len(props))
	for _, p := range props {
		proofs = append(proofs, st.proofs[p])
	}
	st.mu.Unlock()

	for i := range fixes {
		raw, err := fix.Encode(&fixes[i])
		if err != nil {
			return nil, fmt.Errorf("hive: snapshot %s fix %d: %w", st.prog.ID, i, err)
		}
		snap.Fixes = append(snap.Fixes, raw)
	}
	for _, pr := range proofs {
		raw, err := proof.Encode(pr)
		if err != nil {
			return nil, fmt.Errorf("hive: snapshot %s proof: %w", st.prog.ID, err)
		}
		snap.Proofs = append(snap.Proofs, raw)
	}
	snap.Failures = st.failures.export()
	snap.Sessions, snap.SessionsAhead = h.sessionSnapshot()
	return snap, nil
}
