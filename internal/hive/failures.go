package hive

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/journal"
	"repro/internal/prog"
	"repro/internal/trace"
)

// failureStripes is the number of signature stripes in a program's failure
// table. Distinct signatures land on distinct stripes with high probability,
// so concurrent submitters hammering one hot program serialize only when
// they carry the same signature — and even then the hit counters are
// atomics, so the stripe lock protects just the signature's first-seen
// bookkeeping and synthesis state machine.
const failureStripes = 16

// failureTable is a program's striped failure aggregation: the concurrent
// counterpart of the exported FailureRecord snapshots ProgramStats serves.
type failureTable struct {
	stripes [failureStripes]failureStripe
}

type failureStripe struct {
	mu   sync.Mutex
	recs map[string]*failureRecord
}

// failureRecord aggregates one failure signature. count and pods are
// atomics (hot counters); everything else is written under the owning
// stripe's lock. signature, outcome, and sample are immutable after the
// record is published into the stripe map.
type failureRecord struct {
	signature string
	outcome   prog.Outcome
	sample    *trace.Trace

	count atomic.Int64
	pods  atomic.Int64

	podsSeen     map[string]bool
	fixed        bool
	inRepairLab  bool
	synthesizing bool
}

// stripeFor hashes a signature onto its stripe (FNV-1a).
func (t *failureTable) stripeFor(sig string) *failureStripe {
	h := uint32(2166136261)
	for i := 0; i < len(sig); i++ {
		h ^= uint32(sig[i])
		h *= 16777619
	}
	return &t.stripes[h%failureStripes]
}

// record folds one failing trace into the table and — when elect is set —
// elects at most one synthesizer per signature: the first trace to see a
// signature wins the election and must call finishSynthesis once a fix
// attempt concludes; every other trace (concurrent or later) only bumps
// counters. Journal replay records with elect false: synthesis outcomes are
// replayed from their own journal ops, never re-derived.
func (t *failureTable) record(tr *trace.Trace, elect bool) (*failureRecord, bool) {
	return t.recordLazy(tr.FailureSignature(), tr.PodID, tr.Outcome, tr.Clone, elect)
}

// recordLazy is record with the sample supplied lazily: sample() runs only
// when the signature is new. The zero-copy ingest path uses it to aggregate
// repeat failures from a batch view without materializing a Trace — the
// sample is built (not cloned) exactly once per signature ever.
func (t *failureTable) recordLazy(sig, podID string, outcome prog.Outcome, sample func() *trace.Trace, elect bool) (*failureRecord, bool) {
	s := t.stripeFor(sig)
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[sig]
	if !ok {
		rec = &failureRecord{signature: sig, outcome: outcome, sample: sample(), podsSeen: make(map[string]bool)}
		if s.recs == nil {
			s.recs = make(map[string]*failureRecord)
		}
		s.recs[sig] = rec
	}
	rec.count.Add(1)
	if !rec.podsSeen[podID] {
		rec.podsSeen[podID] = true
		rec.pods.Store(int64(len(rec.podsSeen)))
	}
	if !elect || rec.fixed || rec.inRepairLab || rec.synthesizing {
		return nil, false
	}
	rec.synthesizing = true
	return rec, true
}

// applyOutcome replays a journaled synthesis outcome onto a signature's
// record, creating the record if the batch that elected it was snapshotted
// away.
func (t *failureTable) applyOutcome(sig string, outcome prog.Outcome, fixed bool) {
	s := t.stripeFor(sig)
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[sig]
	if !ok {
		rec = &failureRecord{signature: sig, outcome: outcome, podsSeen: make(map[string]bool)}
		if s.recs == nil {
			s.recs = make(map[string]*failureRecord)
		}
		s.recs[sig] = rec
	}
	rec.synthesizing = false
	if fixed {
		rec.fixed = true
	} else {
		rec.inRepairLab = true
	}
}

// export renders every record with its full bookkeeping (distinct pod IDs
// included) for a checkpoint snapshot, sorted by signature. In-flight
// synthesis elections are exported as not-synthesizing: if the election's
// outcome op never lands in the journal, recovery must be able to re-elect.
func (t *failureTable) export() []journal.FailureState {
	var out []journal.FailureState
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.Lock()
		for _, rec := range s.recs {
			fs := journal.FailureState{
				Signature:   rec.signature,
				Outcome:     uint8(rec.outcome),
				Count:       rec.count.Load(),
				Fixed:       rec.fixed,
				InRepairLab: rec.inRepairLab,
			}
			for pod := range rec.podsSeen {
				fs.Pods = append(fs.Pods, pod)
			}
			sort.Strings(fs.Pods)
			if rec.sample != nil {
				fs.Sample = trace.Encode(rec.sample)
			}
			out = append(out, fs)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Signature < out[j].Signature })
	return out
}

// restore rebuilds one record from its snapshot state.
func (t *failureTable) restore(fs journal.FailureState) error {
	rec := &failureRecord{
		signature:   fs.Signature,
		outcome:     prog.Outcome(fs.Outcome),
		podsSeen:    make(map[string]bool, len(fs.Pods)),
		fixed:       fs.Fixed,
		inRepairLab: fs.InRepairLab,
	}
	rec.count.Store(fs.Count)
	for _, pod := range fs.Pods {
		rec.podsSeen[pod] = true
	}
	rec.pods.Store(int64(len(rec.podsSeen)))
	if len(fs.Sample) > 0 {
		sample, err := trace.Decode(fs.Sample)
		if err != nil {
			return fmt.Errorf("hive: restore failure %q sample: %w", fs.Signature, err)
		}
		rec.sample = sample
	}
	s := t.stripeFor(fs.Signature)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recs == nil {
		s.recs = make(map[string]*failureRecord)
	}
	s.recs[fs.Signature] = rec
	return nil
}

// finishSynthesis concludes a signature's single-flight fix attempt: the
// signature is marked fixed, or routed to the repair lab.
func (t *failureTable) finishSynthesis(rec *failureRecord, fixed bool) {
	s := t.stripeFor(rec.signature)
	s.mu.Lock()
	defer s.mu.Unlock()
	rec.synthesizing = false
	if fixed {
		rec.fixed = true
	} else {
		rec.inRepairLab = true
	}
}

// get returns the record for a signature, or nil.
func (t *failureTable) get(sig string) *failureRecord {
	s := t.stripeFor(sig)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recs[sig]
}

// snapshot renders every record as an exported FailureRecord, sorted by
// descending count (ties by signature for determinism).
func (t *failureTable) snapshot() []FailureRecord {
	var out []FailureRecord
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.Lock()
		for _, rec := range s.recs {
			out = append(out, FailureRecord{
				Signature:   rec.signature,
				Outcome:     rec.outcome,
				Count:       rec.count.Load(),
				Pods:        int(rec.pods.Load()),
				Sample:      rec.sample,
				Fixed:       rec.fixed,
				InRepairLab: rec.inRepairLab,
			})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Signature < out[j].Signature
	})
	return out
}
