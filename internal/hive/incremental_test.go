package hive

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/prog"
	"repro/internal/proggen"
	"repro/internal/proof"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TestHiveIncrementalSnapshotRoundTrip is the delta-segment acceptance
// test: a hive recovered from full snapshot + delta segments + journal
// suffix is semantically identical to the live hive — the incremental
// sibling of TestHiveSnapshotPlusSuffixRoundTrip.
func TestHiveIncrementalSnapshotRoundTrip(t *testing.T) {
	corpus := durableCorpus(t)
	dir := t.TempDir()
	h1, store1 := newDurableHive(t, dir, corpus)

	// Base: full snapshots (first checkpoint per program is always full).
	feedFleet(t, h1, corpus, 15, 1)
	if err := h1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, p := range corpus {
		if n := store1.ChainLength(p.ID); n != 0 {
			t.Fatalf("program %s: first checkpoint left %d deltas, want full base", p.ID, n)
		}
	}

	// Two delta segments, one with a proof attempt in between so OpProof
	// evidence is compacted into a segment eagerly.
	feedFleet(t, h1, corpus, 15, 2)
	if err := h1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Prove(corpus[1].ID, proof.PropNoCrash); err != nil {
		t.Fatal(err)
	}
	feedFleet(t, h1, corpus, 15, 3)
	if err := h1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, p := range corpus {
		if n := store1.ChainLength(p.ID); n != 2 {
			t.Fatalf("program %s: chain length %d, want 2 delta segments", p.ID, n)
		}
	}

	// Journal suffix past the last segment, then crash.
	feedFleet(t, h1, corpus, 10, 4)
	if err := h1.DurabilityError(); err != nil {
		t.Fatal(err)
	}
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	h2, store2 := newDurableHive(t, dir, corpus)
	defer store2.Close()
	assertHivesEqual(t, h1, h2, corpus)

	// The recovered hive keeps the chain going: its next checkpoint is
	// another delta over the recovered base, and survives a second crash.
	feedFleet(t, h2, corpus, 5, 5)
	if err := h2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, p := range corpus {
		if n := store2.ChainLength(p.ID); n != 3 {
			t.Fatalf("program %s: post-recovery chain length %d, want 3", p.ID, n)
		}
	}
	if err := store2.Close(); err != nil {
		t.Fatal(err)
	}
	h3, store3 := newDurableHive(t, dir, corpus)
	defer store3.Close()
	assertHivesEqual(t, h2, h3, corpus)
}

// TestHiveIncrementalCompaction pins the compaction policy: after
// compactEvery delta segments the next checkpoint writes a full snapshot
// and collapses the chain.
func TestHiveIncrementalCompaction(t *testing.T) {
	corpus := durableCorpus(t)
	p := corpus[0]
	dir := t.TempDir()
	h, store := newDurableHive(t, dir, corpus)
	defer store.Close()
	h.SetCompactEvery(2)

	feedFleet(t, h, corpus, 5, 1)
	steps := []int{0, 1, 2, 0, 1} // expected chain length after each checkpoint
	for i, want := range steps {
		feedFleet(t, h, corpus, 3, uint64(10+i))
		if err := h.CheckpointProgram(p.ID); err != nil {
			t.Fatal(err)
		}
		if got := store.ChainLength(p.ID); got != want {
			t.Fatalf("checkpoint %d: chain length %d, want %d", i, got, want)
		}
	}

	// compactEvery <= 0 restores the always-full policy.
	h.SetCompactEvery(0)
	feedFleet(t, h, corpus, 3, 99)
	if err := h.CheckpointProgram(p.ID); err != nil {
		t.Fatal(err)
	}
	if got := store.ChainLength(p.ID); got != 0 {
		t.Fatalf("always-full policy left %d deltas", got)
	}
}

// TestHiveDeltaCheckpointPauseIsBounded pins the reason incremental
// snapshots exist: on a big tree with a small recent change, the delta
// segment must be far smaller than a full snapshot.
func TestHiveDeltaCheckpointPauseIsBounded(t *testing.T) {
	// A deeper multi-input program so the collective tree actually grows
	// large (the two-program durable corpus stays tiny by design).
	big, _, err := proggen.Generate(proggen.Spec{
		Seed: 9001, Depth: 9, Loops: 2, NumInputs: 4, DetBranches: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	h, store := newDurableHive(t, dir, []*prog.Program{big})
	defer store.Close()

	rng := stats.NewRNG(31)
	var batch []*trace.Trace
	for i := 0; i < 400; i++ {
		input := []int64{rng.Int63n(256), rng.Int63n(256), rng.Int63n(256), rng.Int63n(256)}
		batch = append(batch, captureSeqTrace(t, big, "pod-big", uint64(i), input, trace.PrivacyHashed))
	}
	if err := h.SubmitTracesFor(big.ID, batch); err != nil {
		t.Fatal(err)
	}
	if err := h.CheckpointProgram(big.ID); err != nil { // full base
		t.Fatal(err)
	}
	tree, err := h.Tree(big.ID)
	if err != nil {
		t.Fatal(err)
	}
	full := len(tree.Encode())
	// A single new trace, then a delta checkpoint.
	tr := captureSeqTrace(t, big, "pod-tiny", 1000, []int64{3, 5, 7, 9}, trace.PrivacyHashed)
	if err := h.SubmitTracesFor(big.ID, []*trace.Trace{tr}); err != nil {
		t.Fatal(err)
	}
	delta := len(tree.EncodeDelta())
	if delta == 0 || delta >= full/4 {
		t.Fatalf("delta segment %dB vs full tree %dB: pause not bounded by changes", delta, full)
	}
	if err := h.CheckpointProgram(big.ID); err != nil {
		t.Fatal(err)
	}
	if store.ChainLength(big.ID) != 1 {
		t.Fatal("tiny change did not produce a delta segment")
	}
}

// TestRawPrivacyHeavyStriped hammers one program with the traffic mix that
// previously serialized on the shard lock: raw-privacy known-good inputs,
// coordinated-sampling fragments, and crash signatures, from many
// goroutines, with stats/guidance readers in flight. Run under -race this
// is the regression test for striping knownGood and the coordinated buffer
// out from under the shard lock (ROADMAP follow-up from PR 2); the
// counters must still be exact.
func TestRawPrivacyHeavyStriped(t *testing.T) {
	p := buildTwoSiteCrashy(t)
	h := New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}

	const goroutines = 12
	const rounds = 20
	const k = 2 // coordinated family width

	oks := make([]*trace.Trace, goroutines)
	crashes := make([]*trace.Trace, goroutines)
	frags := make([][]*trace.Trace, goroutines)
	for g := 0; g < goroutines; g++ {
		podID := fmt.Sprintf("raw-pod-%d", g)
		// Raw privacy: every OK trace is a known-good harvest.
		oks[g] = captureTrace(t, p, podID, []int64{int64(40 + g)}, trace.PrivacyRaw)
		crashes[g] = captureTrace(t, p, podID, []int64{5}, trace.PrivacyRaw)
		// A per-goroutine coordinated family over a distinct input so each
		// family completes exactly once.
		input := []int64{int64(60 + g)}
		for phase := uint32(0); phase < k; phase++ {
			col := trace.NewCoordinatedCollector(p, phase, k)
			m, err := prog.NewMachine(p, prog.Config{Input: input, Observer: col})
			if err != nil {
				t.Fatal(err)
			}
			res := m.Run()
			frags[g] = append(frags[g], col.Finish(podID, uint64(phase), res, input, trace.PrivacyRaw, "fleet"))
		}
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, goroutines+2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				batch := []*trace.Trace{oks[g], crashes[g]}
				if r == 0 {
					batch = append(batch, frags[g]...)
				}
				if err := h.SubmitTracesFor(p.ID, batch); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(g)
	}
	// Concurrent readers on the striped state.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				if _, err := h.ProgramStats(p.ID); err != nil {
					errs <- err
					return
				}
				if _, err := h.Guidance(p.ID, 4); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st, err := h.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(goroutines*rounds*2 + goroutines*k)
	if st.Ingested != want {
		t.Fatalf("ingested %d traces, want %d", st.Ingested, want)
	}
	if st.Narrowed != goroutines {
		t.Fatalf("narrowed %d coordinated families, want %d", st.Narrowed, goroutines)
	}
}

// TestSessionDedupOutOfOrder pins the exact-set dedup window: sequence
// numbers applied out of order (parked frames resubmitted after later
// frames succeeded, rejected frames retried under their original tag) are
// each applied exactly once, in any interleaving, and the window survives
// a checkpoint + recovery.
func TestSessionDedupOutOfOrder(t *testing.T) {
	corpus := durableCorpus(t)
	p := corpus[0]
	dir := t.TempDir()
	h, store := newDurableHive(t, dir, corpus)

	batch := func(i int) []*trace.Trace {
		return []*trace.Trace{captureSeqTrace(t, p, "pod-ooo", uint64(i), []int64{int64(i % 200)}, trace.PrivacyHashed)}
	}
	// Apply seqs 2, 4, 5 first (1 and 3 in limbo), then the stragglers.
	for _, seq := range []uint64{2, 4, 5} {
		if dup, err := h.SubmitTracesSession("sess-ooo", seq, p.ID, batch(int(seq))); err != nil || dup {
			t.Fatalf("seq %d: dup=%v err=%v", seq, dup, err)
		}
	}
	// Resubmitting an applied seq is a dup; the gaps are not.
	if dup, _ := h.SubmitTracesSession("sess-ooo", 4, p.ID, batch(4)); !dup {
		t.Fatal("seq 4 re-applied despite being in the window")
	}
	for _, seq := range []uint64{3, 1} {
		if dup, err := h.SubmitTracesSession("sess-ooo", seq, p.ID, batch(int(seq))); err != nil || dup {
			t.Fatalf("straggler seq %d: dup=%v err=%v", seq, dup, err)
		}
	}
	st, err := h.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != 5 {
		t.Fatalf("ingested %d, want exactly 5", st.Ingested)
	}

	// The window survives checkpoint + crash: seq 7 applied out of order
	// before the checkpoint, 6 resubmitted after recovery must still apply,
	// 7 must still dedup.
	if dup, _ := h.SubmitTracesSession("sess-ooo", 7, p.ID, batch(7)); dup {
		t.Fatal("seq 7 wrongly deduped")
	}
	if err := h.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	store.Close()
	h2, store2 := newDurableHive(t, dir, corpus)
	defer store2.Close()
	if dup, _ := h2.SubmitTracesSession("sess-ooo", 7, p.ID, batch(7)); !dup {
		t.Fatal("recovered window lost the out-of-order mark for seq 7")
	}
	if dup, err := h2.SubmitTracesSession("sess-ooo", 6, p.ID, batch(6)); err != nil || dup {
		t.Fatalf("seq 6 after recovery: dup=%v err=%v", dup, err)
	}
	st2, err := h2.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Ingested != 7 {
		t.Fatalf("recovered hive ingested %d, want exactly 7", st2.Ingested)
	}
}
