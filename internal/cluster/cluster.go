// Package cluster implements cooperative symbolic execution (paper §4): the
// hive distributes exploration of a program's execution tree across worker
// nodes. Because "the contents and shape of the execution tree remain
// unknown until the tree is actually explored", a static partition is
// undecidable-to-balance; SoftBorg partitions dynamically as the tree
// unfolds. Experiment E8 contrasts the two policies, and the Markowitz
// allocator from internal/portfolio supplies a third, estimate-driven
// policy.
package cluster

import (
	"fmt"

	"repro/internal/constraint"
	"repro/internal/exectree"
	"repro/internal/portfolio"
	"repro/internal/prog"
	"repro/internal/symbolic"
)

// Mode selects the partitioning policy.
type Mode uint8

// Partitioning policies.
const (
	// Static assigns each frontier to a fixed node determined by its
	// top-level subtree (hash of the first edge); no re-balancing.
	Static Mode = iota + 1
	// Dynamic assigns each frontier to the currently least-loaded node —
	// the work-stealing effect of a shared queue.
	Dynamic
	// Markowitz groups frontiers into subtree "equities" and allocates
	// nodes by mean/variance estimates of discharge cost.
	Markowitz
)

var modeNames = map[Mode]string{Static: "static", Dynamic: "dynamic", Markowitz: "markowitz"}

// String returns the mode label.
func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Result summarizes one distributed exploration.
type Result struct {
	// Complete reports whether the tree was fully explored/certified.
	Complete bool
	// Discharged counts frontier discharges (runs + certificates).
	Discharged int
	// PerNode is each node's accumulated cost (solver ticks + run steps).
	PerNode []int64
	// Makespan is the max per-node cost: the parallel completion time.
	Makespan int64
	// TotalCost sums all nodes.
	TotalCost int64
	// Imbalance is Makespan / (TotalCost / nodes); 1.0 is perfect balance.
	Imbalance float64
	// Paths and Nodes are the final tree statistics.
	Paths int64
	Nodes int64
}

// Explore runs a distributed exploration of p's execution tree with the
// given number of worker nodes under the chosen partitioning mode. The
// model is deterministic: frontier discharge costs (solver ticks plus
// executed VM steps) accrue to the owning node, and assignment policy is
// the only variable — exactly what E8 isolates.
func Explore(p *prog.Program, nodes int, mode Mode, maxRounds int) (*Result, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least 1 node, got %d", nodes)
	}
	if maxRounds <= 0 {
		maxRounds = 1000
	}
	sym, err := symbolic.New(p, symbolic.Config{})
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}

	tree := exectree.New(p.ID)
	// Seed the tree with the zero-input execution.
	seedPath, err := sym.Run(make([]int64, p.NumInputs))
	if err != nil {
		return nil, err
	}
	tree.Merge(seedPath.Events(), seedPath.Outcome)

	res := &Result{PerNode: make([]int64, nodes)}
	equities := make(map[string]*portfolio.Equity)

	for round := 0; round < maxRounds; round++ {
		if tree.FrontierCount() == 0 {
			res.Complete = true
			break
		}
		// Bounded pull: a round works the rarest roundBatch frontiers
		// instead of materializing the whole open set (which grows with the
		// tree); undischarged frontiers simply surface in a later round.
		frontiers := tree.Frontiers(roundBatch(nodes))
		progress := false
		assignment := assign(frontiers, nodes, mode, res.PerNode, equities)
		for i, f := range frontiers {
			node := assignment[i]
			cost, advanced := discharge(sym, tree, f)
			res.PerNode[node] += cost
			res.Discharged++
			if advanced {
				progress = true
			}
			if mode == Markowitz {
				eq := equityFor(equities, f)
				eq.Observe(float64(cost))
			}
		}
		if !progress {
			break
		}
	}

	for _, c := range res.PerNode {
		res.TotalCost += c
		if c > res.Makespan {
			res.Makespan = c
		}
	}
	if res.TotalCost > 0 {
		mean := float64(res.TotalCost) / float64(nodes)
		res.Imbalance = float64(res.Makespan) / mean
	}
	st := tree.Stats()
	res.Paths, res.Nodes = st.Paths, st.Nodes
	return res, nil
}

// roundBatch bounds one exploration round's frontier pull: enough work to
// keep every node busy many times over, without ever materializing an
// open set that grows with the tree.
func roundBatch(nodes int) int {
	const minBatch = 256
	if b := nodes * 32; b > minBatch {
		return b
	}
	return minBatch
}

// assign maps each frontier to a node index per the policy.
func assign(frontiers []exectree.Frontier, nodes int, mode Mode, load []int64, equities map[string]*portfolio.Equity) []int {
	out := make([]int, len(frontiers))
	switch mode {
	case Static:
		for i, f := range frontiers {
			out[i] = int(subtreeHash(f)) % nodes
		}
	case Dynamic:
		// Least-loaded first: simulate a shared queue drained by idle
		// workers. Track tentative load locally so one round spreads work.
		tentative := append([]int64(nil), load...)
		for i := range frontiers {
			best := 0
			for n := 1; n < nodes; n++ {
				if tentative[n] < tentative[best] {
					best = n
				}
			}
			out[i] = best
			// Estimate: unit cost until measured.
			tentative[best]++
		}
	case Markowitz:
		// Allocate node shares to subtree equities, then deal frontiers of
		// each equity across its allocated nodes.
		eqs := make([]portfolio.Equity, 0, len(equities))
		byKey := make(map[string][]int)
		for i, f := range frontiers {
			key := equityKey(f)
			byKey[key] = append(byKey[key], i)
			if _, ok := equities[key]; !ok {
				equities[key] = &portfolio.Equity{ID: key}
			}
		}
		for _, eq := range equities {
			eqs = append(eqs, *eq)
		}
		alloc := portfolio.Allocate(eqs, nodes, portfolio.EfficientFrontier, 0.5)
		// Deal each equity's frontiers round-robin over a node window sized
		// by its allocation.
		next := 0
		windows := make(map[string][]int)
		for key, share := range alloc {
			for w := 0; w < share; w++ {
				windows[key] = append(windows[key], next%nodes)
				next++
			}
		}
		for key, idxs := range byKey {
			win := windows[key]
			if len(win) == 0 {
				win = []int{next % nodes}
				next++
			}
			for j, fi := range idxs {
				out[fi] = win[j%len(win)]
			}
		}
	}
	return out
}

// discharge resolves one frontier: run a synthesized input (growing the
// tree) or certify it infeasible. Cost is solver ticks plus VM steps.
func discharge(sym *symbolic.Engine, tree *exectree.Tree, f exectree.Frontier) (cost int64, progress bool) {
	input, verdict, err := sym.SolveFrontier(f)
	// SolveFrontier internally runs the program once (forced replay); count
	// a nominal replay cost plus solving.
	cost = 100
	if err != nil {
		return cost, false
	}
	switch verdict {
	case constraint.SAT:
		path, err := sym.Run(input)
		if err != nil {
			return cost, false
		}
		cost += path.Result.Steps
		mr := tree.Merge(path.Events(), path.Outcome)
		return cost, mr.NewNodes > 0 || mr.NewEdges > 0 || mr.NewPath
	case constraint.UNSAT:
		return cost, tree.CertifyInfeasible(f.Prefix, f.Missing)
	default:
		return cost, false
	}
}

// subtreeHash keys a frontier by its top-level subtree.
func subtreeHash(f exectree.Frontier) uint32 {
	var root exectree.Edge
	if len(f.Prefix) > 0 {
		root = f.Prefix[0]
	} else {
		root = f.Missing
	}
	h := uint32(2166136261)
	h = (h ^ uint32(root.ID)) * 16777619
	if root.Taken {
		h = (h ^ 1) * 16777619
	}
	return h
}

func equityKey(f exectree.Frontier) string {
	var root exectree.Edge
	if len(f.Prefix) > 0 {
		root = f.Prefix[0]
	} else {
		root = f.Missing
	}
	return root.String()
}

func equityFor(equities map[string]*portfolio.Equity, f exectree.Frontier) *portfolio.Equity {
	key := equityKey(f)
	eq, ok := equities[key]
	if !ok {
		eq = &portfolio.Equity{ID: key}
		equities[key] = eq
	}
	return eq
}
