package cluster

import (
	"testing"

	"repro/internal/proggen"
)

func TestExploreCompletesTree(t *testing.T) {
	p, _ := proggen.MustGenerate(proggen.Spec{Seed: 31, Depth: 4})
	for _, mode := range []Mode{Static, Dynamic, Markowitz} {
		res, err := Explore(p, 4, mode, 0)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !res.Complete {
			t.Errorf("%v: exploration incomplete (%d discharged)", mode, res.Discharged)
		}
		if res.Paths < 2 {
			t.Errorf("%v: paths = %d, want several", mode, res.Paths)
		}
		if res.TotalCost <= 0 || res.Makespan <= 0 {
			t.Errorf("%v: no cost recorded: %+v", mode, res)
		}
	}
}

func TestModesAgreeOnTreeShape(t *testing.T) {
	p, _ := proggen.MustGenerate(proggen.Spec{Seed: 33, Depth: 4})
	var paths, nodes int64
	for i, mode := range []Mode{Static, Dynamic, Markowitz} {
		res, err := Explore(p, 3, mode, 0)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			paths, nodes = res.Paths, res.Nodes
			continue
		}
		if res.Paths != paths || res.Nodes != nodes {
			t.Errorf("%v: tree shape differs: %d/%d vs %d/%d",
				mode, res.Paths, res.Nodes, paths, nodes)
		}
	}
}

func TestDynamicBalancesBetterThanStatic(t *testing.T) {
	// Across several programs and node counts, dynamic assignment should
	// give a lower (or equal) imbalance on average — the E8 claim.
	var staticSum, dynamicSum float64
	samples := 0
	for seed := uint64(40); seed < 48; seed++ {
		p, _ := proggen.MustGenerate(proggen.Spec{Seed: seed, Depth: 5, NumInputs: 2})
		st, err := Explore(p, 8, Static, 0)
		if err != nil {
			t.Fatal(err)
		}
		dy, err := Explore(p, 8, Dynamic, 0)
		if err != nil {
			t.Fatal(err)
		}
		staticSum += st.Imbalance
		dynamicSum += dy.Imbalance
		samples++
	}
	if samples == 0 {
		t.Fatal("no samples")
	}
	if dynamicSum >= staticSum {
		t.Errorf("dynamic mean imbalance %.3f >= static %.3f",
			dynamicSum/float64(samples), staticSum/float64(samples))
	}
}

func TestExploreRejectsBadArgs(t *testing.T) {
	p, _ := proggen.MustGenerate(proggen.Spec{Seed: 1, Depth: 2})
	if _, err := Explore(p, 0, Dynamic, 0); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestExploreConcurrentMatchesSequential(t *testing.T) {
	p, _ := proggen.MustGenerate(proggen.Spec{Seed: 55, Depth: 4})
	seq, err := Explore(p, 1, Dynamic, 0)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := ExploreConcurrent(p, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !conc.Complete {
		t.Fatalf("concurrent exploration incomplete: %+v", conc)
	}
	if conc.Paths != seq.Paths || conc.Nodes != seq.Nodes {
		t.Errorf("concurrent tree %d/%d != sequential %d/%d",
			conc.Paths, conc.Nodes, seq.Paths, seq.Nodes)
	}
	var total int64
	for _, c := range conc.PerWorker {
		total += c
	}
	if total != conc.Discharged {
		t.Errorf("per-worker sum %d != discharged %d", total, conc.Discharged)
	}
}

func TestExploreConcurrentRejectsBadArgs(t *testing.T) {
	p, _ := proggen.MustGenerate(proggen.Spec{Seed: 1, Depth: 2})
	if _, err := ExploreConcurrent(p, 0, 0); err == nil {
		t.Error("zero workers accepted")
	}
}
