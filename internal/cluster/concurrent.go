package cluster

import (
	"fmt"
	"sync"

	"repro/internal/constraint"
	"repro/internal/exectree"
	"repro/internal/prog"
	"repro/internal/symbolic"
)

// ConcurrentResult summarizes an ExploreConcurrent run.
type ConcurrentResult struct {
	mu sync.Mutex

	// Complete reports full exploration.
	Complete bool
	// Discharged counts frontier discharges across workers.
	Discharged int64
	// PerWorker is each goroutine's discharge count.
	PerWorker []int64
	// Paths and Nodes are the final tree statistics.
	Paths int64
	Nodes int64
}

// ExploreConcurrent is the real-concurrency counterpart of Explore: worker
// goroutines drain a shared frontier queue (dynamic partitioning), each with
// its own symbolic engine, cooperating on one shared execution tree. It is
// the in-process model of the hive's node fleet; the deterministic Explore
// is used for measured experiments.
func ExploreConcurrent(p *prog.Program, workers int, maxRounds int) (*ConcurrentResult, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("cluster: need at least 1 worker, got %d", workers)
	}
	if maxRounds <= 0 {
		maxRounds = 200
	}

	engines := make([]*symbolic.Engine, workers)
	for i := range engines {
		e, err := symbolic.New(p, symbolic.Config{})
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		engines[i] = e
	}

	tree := exectree.New(p.ID)
	seed, err := engines[0].Run(make([]int64, p.NumInputs))
	if err != nil {
		return nil, err
	}
	tree.Merge(seed.Events(), seed.Outcome)

	res := &ConcurrentResult{PerWorker: make([]int64, workers)}

	// Round-based: gather frontiers, fan out over a channel, barrier, repeat.
	// The barrier keeps rounds deterministic in *content* (the set of
	// frontiers) while the per-worker interleaving is real concurrency.
	for round := 0; round < maxRounds; round++ {
		if tree.FrontierCount() == 0 {
			res.Complete = true
			break
		}
		// Bounded pull, as in Explore: rounds stay O(batch) even when the
		// open set grows with the tree.
		frontiers := tree.Frontiers(roundBatch(workers))
		work := make(chan exectree.Frontier)
		var progressMu sync.Mutex
		progress := false

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for f := range work {
					adv := dischargeConcurrent(engines[w], tree, f)
					res.addWorker(w)
					if adv {
						progressMu.Lock()
						progress = true
						progressMu.Unlock()
					}
				}
			}(w)
		}
		for _, f := range frontiers {
			work <- f
		}
		close(work)
		wg.Wait()

		if !progress {
			break
		}
	}

	for _, c := range res.PerWorker {
		res.Discharged += c
	}
	st := tree.Stats()
	res.Paths, res.Nodes = st.Paths, st.Nodes
	return res, nil
}

func (r *ConcurrentResult) addWorker(w int) {
	r.mu.Lock()
	r.PerWorker[w]++
	r.mu.Unlock()
}

func dischargeConcurrent(sym *symbolic.Engine, tree *exectree.Tree, f exectree.Frontier) bool {
	input, verdict, err := sym.SolveFrontier(f)
	if err != nil {
		return false
	}
	switch verdict {
	case constraint.SAT:
		path, err := sym.Run(input)
		if err != nil {
			return false
		}
		mr := tree.Merge(path.Events(), path.Outcome)
		return mr.NewNodes > 0 || mr.NewEdges > 0 || mr.NewPath
	case constraint.UNSAT:
		return tree.CertifyInfeasible(f.Prefix, f.Missing)
	default:
		return false
	}
}
