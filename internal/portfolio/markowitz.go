package portfolio

import (
	"math"
	"sort"
)

// Equity is one investable exploration target: the root of an execution
// subtree, with running estimates of its reward (new paths / new coverage
// per unit of work) and that reward's variance. The paper maps subtree roots
// to equities and hive nodes to capital (§4).
type Equity struct {
	// ID identifies the subtree.
	ID string
	// Samples is how many reward observations exist.
	Samples int
	// Mean and Var are the running reward statistics.
	Mean float64
	Var  float64
}

// Observe folds a new reward observation into the running estimates
// (Welford's algorithm).
func (e *Equity) Observe(reward float64) {
	e.Samples++
	if e.Samples == 1 {
		e.Mean = reward
		e.Var = 0
		return
	}
	delta := reward - e.Mean
	e.Mean += delta / float64(e.Samples)
	e.Var += (delta*(reward-e.Mean) - e.Var) / float64(e.Samples)
}

// Strategy selects how capital (worker nodes) is allocated across equities.
type Strategy uint8

// Allocation strategies, mirroring the portfolio-theory vocabulary the
// paper invokes.
const (
	// Diversify splits workers evenly — minimum risk, ignores estimates.
	Diversify Strategy = iota + 1
	// Speculate allocates by optimistic upside (mean + exploration bonus for
	// under-sampled equities), a UCB-flavored strategy.
	Speculate
	// EfficientFrontier maximizes mean reward at a variance penalty λ via
	// greedy marginal allocation (diminishing returns per extra worker).
	EfficientFrontier
)

// Allocate distributes workers across the equities according to the
// strategy. The result maps equity ID to worker count and always sums to
// workers (when equities is non-empty). λ is the risk-aversion parameter
// for EfficientFrontier; ignored otherwise.
func Allocate(equities []Equity, workers int, strategy Strategy, lambda float64) map[string]int {
	out := make(map[string]int, len(equities))
	if len(equities) == 0 || workers <= 0 {
		return out
	}
	// Stable order for determinism.
	eqs := append([]Equity(nil), equities...)
	sort.Slice(eqs, func(i, j int) bool { return eqs[i].ID < eqs[j].ID })

	switch strategy {
	case Diversify:
		base := workers / len(eqs)
		rem := workers % len(eqs)
		for i, e := range eqs {
			out[e.ID] = base
			if i < rem {
				out[e.ID]++
			}
		}
	case Speculate:
		scores := make([]float64, len(eqs))
		total := 0.0
		for i, e := range eqs {
			bonus := 1.0 / math.Sqrt(float64(e.Samples+1))
			scores[i] = math.Max(e.Mean, 0) + bonus
			total += scores[i]
		}
		assigned := 0
		for i, e := range eqs {
			n := int(float64(workers) * scores[i] / total)
			out[e.ID] = n
			assigned += n
		}
		// Distribute the rounding remainder to the highest scores.
		idx := make([]int, len(eqs))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
		for i := 0; assigned < workers; i++ {
			out[eqs[idx[i%len(idx)]].ID]++
			assigned++
		}
	case EfficientFrontier:
		// Greedy marginal utility: each extra worker on equity e yields
		// mean/(n+1) - λ·sqrt(var)/(n+1) (diminishing returns); assign one
		// worker at a time to the best marginal.
		counts := make([]int, len(eqs))
		for w := 0; w < workers; w++ {
			best, bestU := 0, math.Inf(-1)
			for i, e := range eqs {
				n := float64(counts[i] + 1)
				u := (e.Mean - lambda*math.Sqrt(math.Max(e.Var, 0))) / n
				if u > bestU {
					best, bestU = i, u
				}
			}
			counts[best]++
		}
		for i, e := range eqs {
			out[e.ID] = counts[i]
		}
	}
	return out
}
