// Package portfolio implements the paper's §4 portfolio-theory approach to
// cooperative analysis, in two forms:
//
//  1. A solver portfolio: run several complementary SAT solvers on the same
//     instance and take the first answer. The paper reports that replacing
//     one solver with a portfolio of three yielded a 10× speedup in
//     constraint-solving time for a 3× increase in resources; experiment E3
//     reproduces that shape.
//
//  2. A Markowitz-style allocator that treats execution-subtree roots as
//     "equities" with estimated mean/variance of discovery reward and
//     allocates hive nodes across them (diversification, speculation,
//     efficient frontier), used by internal/cluster.
package portfolio

import (
	"sync"

	"repro/internal/sat"
)

// SolverOutcome reports one solver's run inside a portfolio race.
type SolverOutcome struct {
	Name    string
	Verdict sat.Verdict
	Ticks   int64
}

// RaceResult is the outcome of racing a portfolio on one instance.
type RaceResult struct {
	// Winner is the first solver to reach a decisive verdict.
	Winner string
	// Verdict is the winning verdict (Unknown when no solver decided).
	Verdict sat.Verdict
	// Model is the winner's model for SAT instances.
	Model []bool
	// WinnerTicks is the winner's effort — the portfolio's "time" under the
	// parallel-execution model.
	WinnerTicks int64
	// TotalTicks sums all solvers' effort — the portfolio's "resources".
	TotalTicks int64
	// PerSolver lists each solver's individual run.
	PerSolver []SolverOutcome
}

// Race runs every solver concurrently on f and returns as soon as one
// decides, cancelling the rest. Each solver gets maxTicks budget. The
// per-solver tick counts in the result reflect effort actually spent
// (losers stop at cancellation).
func Race(f *sat.Formula, solvers []sat.Solver, maxTicks int64) RaceResult {
	type done struct {
		idx int
		res sat.Result
	}
	cancel := make(chan struct{})
	results := make(chan done, len(solvers))

	var wg sync.WaitGroup
	for i, s := range solvers {
		wg.Add(1)
		go func(idx int, s sat.Solver) {
			defer wg.Done()
			results <- done{idx: idx, res: s.Solve(f.Clone(), maxTicks, cancel)}
		}(i, s)
	}

	out := RaceResult{Verdict: sat.Unknown, PerSolver: make([]SolverOutcome, len(solvers))}
	canceled := false
	for range solvers {
		d := <-results
		out.PerSolver[d.idx] = SolverOutcome{
			Name:    solvers[d.idx].Name(),
			Verdict: d.res.Verdict,
			Ticks:   d.res.Ticks,
		}
		out.TotalTicks += d.res.Ticks
		if d.res.Verdict != sat.Unknown && out.Verdict == sat.Unknown {
			out.Verdict = d.res.Verdict
			out.Winner = solvers[d.idx].Name()
			out.WinnerTicks = d.res.Ticks
			out.Model = d.res.Model
			if !canceled {
				close(cancel)
				canceled = true
			}
		}
	}
	wg.Wait()
	if !canceled {
		close(cancel)
	}
	return out
}

// SequentialRun solves f with each solver to completion independently and
// reports per-solver ticks. It is the deterministic accounting mode used by
// experiment E3: the portfolio's parallel "time" on the instance is the
// minimum tick count, and its "resources" are k× that minimum (k solvers
// running until the winner finishes).
func SequentialRun(f *sat.Formula, solvers []sat.Solver, maxTicks int64) []SolverOutcome {
	out := make([]SolverOutcome, len(solvers))
	for i, s := range solvers {
		res := s.Solve(f.Clone(), maxTicks, nil)
		out[i] = SolverOutcome{Name: s.Name(), Verdict: res.Verdict, Ticks: res.Ticks}
	}
	return out
}

// BatchMetrics aggregates a batch of instances solved both ways: by each
// fixed single solver and by the portfolio-of-k model.
type BatchMetrics struct {
	// SingleTicks maps solver name to its total ticks over the batch
	// (Unknown runs count their full budget).
	SingleTicks map[string]int64
	// PortfolioTime is the sum over instances of min-ticks (parallel time).
	PortfolioTime int64
	// PortfolioResources is the sum over instances of k × min-ticks: k
	// processors all run until the winner finishes.
	PortfolioResources int64
	// BestSingle is the fixed solver with the lowest total.
	BestSingle string
	// Wins counts instances won per solver.
	Wins map[string]int
	// Instances is the batch size.
	Instances int
}

// Speedup returns best-single-total / portfolio-time: how much faster the
// portfolio answers than the best single solver chosen in hindsight.
func (m *BatchMetrics) Speedup() float64 {
	if m.PortfolioTime == 0 {
		return 0
	}
	return float64(m.SingleTicks[m.BestSingle]) / float64(m.PortfolioTime)
}

// ResourceRatio returns portfolio-resources / best-single-total: the cost
// multiplier paid for the speedup (the paper's "3× increase in computation
// resources").
func (m *BatchMetrics) ResourceRatio() float64 {
	best := m.SingleTicks[m.BestSingle]
	if best == 0 {
		return 0
	}
	return float64(m.PortfolioResources) / float64(best)
}

// EvaluateBatch computes BatchMetrics for instances under solvers using the
// deterministic accounting mode.
func EvaluateBatch(instances []sat.Instance, solvers []sat.Solver, maxTicks int64) BatchMetrics {
	m := BatchMetrics{
		SingleTicks: make(map[string]int64, len(solvers)),
		Wins:        make(map[string]int, len(solvers)),
		Instances:   len(instances),
	}
	k := int64(len(solvers))
	for _, inst := range instances {
		outcomes := SequentialRun(inst.Formula, solvers, maxTicks)
		var minTicks int64 = -1
		winner := ""
		for _, o := range outcomes {
			m.SingleTicks[o.Name] += o.Ticks
			if o.Verdict == sat.Unknown {
				continue
			}
			if minTicks < 0 || o.Ticks < minTicks {
				minTicks = o.Ticks
				winner = o.Name
			}
		}
		if minTicks < 0 {
			// Nobody decided: portfolio also burns the full budget on all k.
			minTicks = maxTicks
		} else {
			m.Wins[winner]++
		}
		m.PortfolioTime += minTicks
		m.PortfolioResources += k * minTicks
	}
	for name, total := range m.SingleTicks {
		if m.BestSingle == "" || total < m.SingleTicks[m.BestSingle] ||
			(total == m.SingleTicks[m.BestSingle] && name < m.BestSingle) {
			m.BestSingle = name
		}
	}
	return m
}
