package portfolio

import (
	"testing"

	"repro/internal/sat"
	"repro/internal/stats"
)

func solvers() []sat.Solver {
	return []sat.Solver{sat.NewChrono(), sat.NewJW(), sat.NewRandom(42)}
}

func TestRaceReturnsWinner(t *testing.T) {
	rng := stats.NewRNG(1)
	f := sat.Random3SAT(rng, 30, 4.26)
	res := Race(f, solvers(), 0)
	if res.Verdict == sat.Unknown {
		t.Fatalf("race verdict = unknown")
	}
	if res.Winner == "" {
		t.Fatal("no winner")
	}
	if res.Verdict == sat.SAT && !f.Eval(res.Model) {
		t.Fatal("winning model invalid")
	}
	if res.TotalTicks < res.WinnerTicks {
		t.Errorf("total %d < winner %d", res.TotalTicks, res.WinnerTicks)
	}
	if len(res.PerSolver) != 3 {
		t.Errorf("per-solver entries = %d", len(res.PerSolver))
	}
}

func TestRaceAgreesWithSequential(t *testing.T) {
	rng := stats.NewRNG(2)
	for i := 0; i < 10; i++ {
		f := sat.Random3SAT(rng.Split(), 25, 4.26)
		race := Race(f, solvers(), 0)
		seq := SequentialRun(f, solvers(), 0)
		for _, o := range seq {
			if o.Verdict != sat.Unknown && o.Verdict != race.Verdict {
				t.Fatalf("instance %d: race %v vs %s %v", i, race.Verdict, o.Name, o.Verdict)
			}
		}
	}
}

func TestSequentialRunDeterministic(t *testing.T) {
	rng := stats.NewRNG(3)
	f := sat.Random3SAT(rng, 30, 4.26)
	a := SequentialRun(f, solvers(), 0)
	b := SequentialRun(f, solvers(), 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestEvaluateBatchMetrics(t *testing.T) {
	batch := sat.NewMixedBatch(7, 12)
	m := EvaluateBatch(batch, solvers(), 2_000_000)
	if m.Instances != 12 {
		t.Fatalf("instances = %d", m.Instances)
	}
	if m.BestSingle == "" {
		t.Fatal("no best single")
	}
	// The portfolio can never be slower than the best single solver: its
	// per-instance time is the min over solvers.
	if m.PortfolioTime > m.SingleTicks[m.BestSingle] {
		t.Errorf("portfolio time %d > best single %d", m.PortfolioTime, m.SingleTicks[m.BestSingle])
	}
	if m.Speedup() < 1 {
		t.Errorf("speedup = %v, want >= 1", m.Speedup())
	}
	// Resources are k× time.
	if m.PortfolioResources != 3*m.PortfolioTime {
		t.Errorf("resources = %d, want 3×%d", m.PortfolioResources, m.PortfolioTime)
	}
}

func TestEquityObserveWelford(t *testing.T) {
	var e Equity
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		e.Observe(v)
	}
	if e.Samples != 8 {
		t.Fatalf("samples = %d", e.Samples)
	}
	if e.Mean != 5 {
		t.Errorf("mean = %v, want 5", e.Mean)
	}
	if e.Var < 3.9 || e.Var > 4.1 { // population variance = 4
		t.Errorf("var = %v, want ≈4", e.Var)
	}
}

func TestAllocateDiversify(t *testing.T) {
	eqs := []Equity{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	alloc := Allocate(eqs, 10, Diversify, 0)
	total := 0
	for _, n := range alloc {
		total += n
	}
	if total != 10 {
		t.Fatalf("allocated %d, want 10", total)
	}
	for id, n := range alloc {
		if n < 3 || n > 4 {
			t.Errorf("equity %s got %d, want 3-4", id, n)
		}
	}
}

func TestAllocateSpeculatePrefersUnsampled(t *testing.T) {
	eqs := []Equity{
		{ID: "explored", Samples: 100, Mean: 0.1},
		{ID: "fresh", Samples: 0, Mean: 0},
	}
	alloc := Allocate(eqs, 10, Speculate, 0)
	if alloc["fresh"] <= alloc["explored"] {
		t.Errorf("speculate alloc = %v, want fresh favored", alloc)
	}
	total := 0
	for _, n := range alloc {
		total += n
	}
	if total != 10 {
		t.Fatalf("allocated %d", total)
	}
}

func TestAllocateEfficientFrontier(t *testing.T) {
	eqs := []Equity{
		{ID: "hi-mean-hi-var", Samples: 10, Mean: 10, Var: 100},
		{ID: "mid-mean-lo-var", Samples: 10, Mean: 6, Var: 0.1},
	}
	// Risk-neutral: high mean wins.
	neutral := Allocate(eqs, 10, EfficientFrontier, 0)
	if neutral["hi-mean-hi-var"] <= neutral["mid-mean-lo-var"] {
		t.Errorf("risk-neutral alloc = %v", neutral)
	}
	// Strongly risk-averse: low variance wins.
	averse := Allocate(eqs, 10, EfficientFrontier, 1.0)
	if averse["mid-mean-lo-var"] <= averse["hi-mean-hi-var"] {
		t.Errorf("risk-averse alloc = %v", averse)
	}
}

func TestAllocateEdgeCases(t *testing.T) {
	if got := Allocate(nil, 5, Diversify, 0); len(got) != 0 {
		t.Error("nil equities should allocate nothing")
	}
	if got := Allocate([]Equity{{ID: "a"}}, 0, Diversify, 0); len(got) != 0 {
		t.Error("zero workers should allocate nothing")
	}
}
