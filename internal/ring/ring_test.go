package ring

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("prog-%04x", i*2654435761)
	}
	return out
}

func TestOwnerPureFunction(t *testing.T) {
	// Ownership must depend only on (node set, vnodes, seed, key) — never
	// on construction order or on which Map instance answers.
	a := New([]string{"c", "a", "b"}, 32, 7)
	b := New([]string{"b", "c", "a", "a"}, 32, 7)
	for _, k := range keys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner(%q) differs across identically configured maps: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
	if a.Owner("x") == "" {
		t.Fatal("non-empty map returned empty owner")
	}
	var empty Map
	if got := empty.Owner("x"); got != "" {
		t.Fatalf("empty map owner = %q, want empty", got)
	}
}

func TestVersioning(t *testing.T) {
	m := New([]string{"a", "b", "c"}, 16, 1)
	if m.Version() != 1 {
		t.Fatalf("fresh map version %d, want 1", m.Version())
	}
	m2 := m.Without("b")
	if m2.Version() != 2 || m2.Contains("b") || !m2.Contains("a") {
		t.Fatalf("Without: version=%d contains(b)=%v", m2.Version(), m2.Contains("b"))
	}
	m3 := m2.With("d")
	if m3.Version() != 3 || !m3.Contains("d") {
		t.Fatalf("With: version=%d contains(d)=%v", m3.Version(), m3.Contains("d"))
	}
	// The original is untouched: maps are immutable values.
	if m.Version() != 1 || !m.Contains("b") {
		t.Fatal("membership change mutated the source map")
	}
}

// TestMinimalMovementProperty is the stability property the tentpole
// depends on: removing one node of n moves only the keys that node owned
// (they must move — their owner is gone) and no others; adding it back
// restores the original assignment exactly. Run across several seeds and
// fleet sizes so the property is not an artifact of one layout.
func TestMinimalMovementProperty(t *testing.T) {
	ks := keys(2000)
	for _, n := range []int{2, 3, 5, 8} {
		for seed := uint64(1); seed <= 5; seed++ {
			nodes := make([]string, n)
			for i := range nodes {
				nodes[i] = fmt.Sprintf("hive-%d:7%03d", seed, i)
			}
			m := New(nodes, 0, seed)
			before := make(map[string]string, len(ks))
			for _, k := range ks {
				before[k] = m.Owner(k)
			}
			victim := nodes[int(seed)%n]
			shrunk := m.Without(victim)
			moved, victimKeys := 0, 0
			for _, k := range ks {
				after := shrunk.Owner(k)
				if after == victim {
					t.Fatalf("n=%d seed=%d: removed node %q still owns %q", n, seed, victim, k)
				}
				if before[k] == victim {
					victimKeys++
					continue // these had to move
				}
				if after != before[k] {
					moved++
				}
			}
			if moved != 0 {
				t.Fatalf("n=%d seed=%d: removing %q moved %d keys it did not own (minimal-movement violated)", n, seed, victim, moved)
			}
			if victimKeys == 0 {
				t.Fatalf("n=%d seed=%d: victim owned no keys of %d — distribution degenerate", n, seed, len(ks))
			}
			// Adding the node back restores the original assignment bit for bit.
			restored := shrunk.With(victim)
			for _, k := range ks {
				if restored.Owner(k) != before[k] {
					t.Fatalf("n=%d seed=%d: add-back changed owner(%q): %q -> %q", n, seed, k, before[k], restored.Owner(k))
				}
			}
		}
	}
}

func TestDistributionBalance(t *testing.T) {
	// With DefaultVNodes the max/min per-node load over a few thousand keys
	// should stay within a small factor — catches a broken hash mix.
	nodes := []string{"a:1", "b:2", "c:3", "d:4"}
	m := New(nodes, 0, 42)
	counts := make(map[string]int)
	for _, k := range keys(4000) {
		counts[m.Owner(k)]++
	}
	min, max := 1<<30, 0
	for _, n := range nodes {
		c := counts[n]
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 || max > 3*min {
		t.Fatalf("load imbalance: min=%d max=%d (%v)", min, max, counts)
	}
}
