// Package ring implements the consistent-hash placement map that shards
// programs across hive processes. Ownership is a pure function of
// (placement map, key): every node is hashed onto a 64-bit circle at
// VNodes points, a key is owned by the first node point at or clockwise
// from the key's hash, and nothing depends on arrival order or on which
// process evaluates the lookup — two fleet members holding the same map
// always agree on every key (the dispersal framing: where state lands is
// a function of its key, never of history).
//
// Maps are immutable and versioned: membership changes produce a new Map
// with Version+1, and the wire layer uses the version to decide whether a
// redirect carries news. Virtual nodes keep the key movement under a
// membership change close to the theoretical minimum (|keys|/|nodes|).
package ring

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count used when a caller does not pin
// one. 64 points per node keeps the per-node load imbalance in the low
// percents for small fleets without making map construction noticeable.
const DefaultVNodes = 64

// Map is one immutable placement: a versioned node set hashed onto the
// circle. The exported fields are the wire codec (PlacementPayload carries
// them verbatim); the point table is rebuilt deterministically from them,
// so two maps with equal fields are behaviorally identical.
type Map struct {
	version uint64
	nodes   []string
	vnodes  int
	seed    uint64

	// points is the sorted circle: every node appears vnodes times.
	points []point
}

// point is one virtual node on the circle.
type point struct {
	hash uint64
	node int32
}

// New builds a version-1 placement over nodes (deduplicated, sorted).
// vnodes <= 0 uses DefaultVNodes. seed perturbs every hash, so distinct
// fleets with the same node names still land keys differently.
func New(nodes []string, vnodes int, seed uint64) *Map {
	return NewVersion(1, nodes, vnodes, seed)
}

// NewVersion builds a placement at an explicit version — the constructor
// the wire layer uses to materialize an advertised PlacementPayload.
func NewVersion(version uint64, nodes []string, vnodes int, seed uint64) *Map {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	m := &Map{version: version, nodes: uniq, vnodes: vnodes, seed: seed}
	m.points = make([]point, 0, len(uniq)*vnodes)
	var buf [8]byte
	for ni, n := range uniq {
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			binary.BigEndian.PutUint64(buf[:], seed)
			_, _ = h.Write(buf[:])
			_, _ = h.Write([]byte(n))
			binary.BigEndian.PutUint64(buf[:], uint64(v))
			_, _ = h.Write(buf[:])
			m.points = append(m.points, point{hash: mix64(h.Sum64()), node: int32(ni)})
		}
	}
	sort.Slice(m.points, func(i, j int) bool {
		if m.points[i].hash != m.points[j].hash {
			return m.points[i].hash < m.points[j].hash
		}
		// Hash ties (vanishingly rare) break by node index so the circle
		// is still a pure function of the node set.
		return m.points[i].node < m.points[j].node
	})
	return m
}

// Version returns the placement version.
func (m *Map) Version() uint64 { return m.version }

// Nodes returns the member nodes in sorted order. The slice is shared;
// callers must not mutate it.
func (m *Map) Nodes() []string { return m.nodes }

// VNodes returns the virtual-node count per member.
func (m *Map) VNodes() int { return m.vnodes }

// Seed returns the hash seed.
func (m *Map) Seed() uint64 { return m.seed }

// Contains reports membership.
func (m *Map) Contains(node string) bool {
	i := sort.SearchStrings(m.nodes, node)
	return i < len(m.nodes) && m.nodes[i] == node
}

// Owner returns the node owning key, or "" on an empty map. The lookup is
// a pure function of (map, key): the first circle point at or clockwise
// from the key's hash.
func (m *Map) Owner(key string) string {
	if len(m.points) == 0 {
		return ""
	}
	kh := m.keyHash(key)
	i := sort.Search(len(m.points), func(i int) bool { return m.points[i].hash >= kh })
	if i == len(m.points) {
		i = 0 // wrap: past the last point the circle continues at the first
	}
	return m.nodes[m.points[i].node]
}

// keyHash hashes a key onto the circle.
func (m *Map) keyHash(key string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], m.seed)
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV-1a alone leaves the trailing
// bytes of the input dominating the low bits of the sum — virtual nodes
// differing only in their index would cluster on the circle — so every
// hash is pushed through a full-avalanche mix before placement.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Without returns a new placement at Version+1 with node removed. Removing
// a non-member still bumps the version (the caller decided membership
// changed; an idempotent re-remove must not fork the version history), so
// callers should check Contains first when that matters.
func (m *Map) Without(node string) *Map {
	nodes := make([]string, 0, len(m.nodes))
	for _, n := range m.nodes {
		if n != node {
			nodes = append(nodes, n)
		}
	}
	return NewVersion(m.version+1, nodes, m.vnodes, m.seed)
}

// With returns a new placement at Version+1 with node added.
func (m *Map) With(node string) *Map {
	nodes := make([]string, 0, len(m.nodes)+1)
	nodes = append(nodes, m.nodes...)
	nodes = append(nodes, node)
	return NewVersion(m.version+1, nodes, m.vnodes, m.seed)
}

// String renders the placement for logs.
func (m *Map) String() string {
	return fmt.Sprintf("ring v%d over %d nodes (vnodes=%d seed=%d)", m.version, len(m.nodes), m.vnodes, m.seed)
}
