package wire

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/fix"
	"repro/internal/guidance"
	"repro/internal/hive"
	"repro/internal/leaktest"
	"repro/internal/prog"
	"repro/internal/trace"
)

// countingBackend is a HiveClient stub that counts ingested traces and can
// be slowed down to hold frames in the pipeline.
type countingBackend struct {
	mu       sync.Mutex
	ingested int
	perCall  []int
	delay    time.Duration
}

func (c *countingBackend) SubmitTraces(traces []*trace.Trace) error {
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ingested += len(traces)
	c.perCall = append(c.perCall, len(traces))
	return nil
}
func (c *countingBackend) FixesSince(string, int) ([]fix.Fix, int, error) { return nil, 0, nil }
func (c *countingBackend) Guidance(string, int) ([]guidance.TestCase, error) {
	return nil, nil
}

func (c *countingBackend) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ingested
}

// encodedBatch builds a MsgSubmitTraces payload of n minimal traces.
func encodedBatch(n int) []byte {
	enc := make([][]byte, n)
	for i := range enc {
		enc[i] = trace.Encode(&trace.Trace{ProgramID: "p", Seq: uint64(i)})
	}
	return encodeTraceBatch(enc)
}

// TestPipelinedAckOrdering writes a burst of submission frames with
// distinct batch sizes without reading a single ack, then collects all
// acks: they must come back in frame order, one per frame.
func TestPipelinedAckOrdering(t *testing.T) {
	backend := &countingBackend{}
	srv := NewServer(backend)
	srv.Logf = t.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	sizes := []int{3, 1, 7, 2, 5, 4, 6, 1, 8, 2}
	for _, n := range sizes {
		if err := WriteFrame(conn, MsgSubmitTraces, encodedBatch(n)); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range sizes {
		respType, resp, err := ReadFrame(conn)
		if err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
		if err := checkAck(respType, resp, want); err != nil {
			t.Fatalf("ack %d (want %d traces): %v", i, want, err)
		}
	}
}

// TestPipelinedAcksUnderConcurrentClients runs several connections, each
// pipelining bursts of distinctly sized frames: every connection must see
// its own acks, in its own frame order.
func TestPipelinedAcksUnderConcurrentClients(t *testing.T) {
	leaktest.Check(t)
	backend := &countingBackend{}
	srv := NewServer(backend)
	srv.Logf = t.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 8
	const frames = 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			for f := 0; f < frames; f++ {
				if err := WriteFrame(conn, MsgSubmitTraces, encodedBatch(c+f%3+1)); err != nil {
					errs <- err
					return
				}
			}
			for f := 0; f < frames; f++ {
				respType, resp, err := ReadFrame(conn)
				if err != nil {
					errs <- err
					return
				}
				if err := checkAck(respType, resp, c+f%3+1); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	want := 0
	for c := 0; c < clients; c++ {
		for f := 0; f < frames; f++ {
			want += c + f%3 + 1
		}
	}
	if got := backend.total(); got != want {
		t.Fatalf("ingested %d traces, want %d", got, want)
	}
}

// TestSlowConnDoesNotStallIngestion is the isolation regression test: a
// connection that floods frames and never reads its acks (so the server's
// per-connection pipeline backs up) must not stall ingestion from other
// connections.
func TestSlowConnDoesNotStallIngestion(t *testing.T) {
	leaktest.Check(t)
	backend := &countingBackend{}
	srv := NewServer(backend)
	srv.Logf = func(string, ...any) {}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The hog: pump frames forever, never read an ack. Eventually its
	// writes block on the server's bounded queue + TCP buffers.
	hog, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hog.Close()
	hogDead := make(chan struct{})
	go func() {
		defer close(hogDead)
		payload := encodedBatch(4)
		for {
			if err := WriteFrame(hog, MsgSubmitTraces, payload); err != nil {
				return // closed at test end
			}
		}
	}()

	// A well-behaved client must still complete round trips promptly.
	client := Dial(addr)
	defer client.Close()
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 50; i++ {
			if err := client.SubmitTraces([]*trace.Trace{{ProgramID: "p"}}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("well-behaved connection starved by a blocked one")
	}
	_ = hog.Close()
	<-hogDead
}

// captureWireTrace runs p once under full capture and returns the trace.
func captureWireTrace(t *testing.T, p *prog.Program, podID string, input []int64) *trace.Trace {
	t.Helper()
	col := trace.NewCollector(p, trace.CaptureFull, 0, 1)
	m, err := prog.NewMachine(p, prog.Config{Input: input, Observer: col})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	return col.Finish(podID, 0, res, input, trace.PrivacyHashed, "fleet")
}

// TestSubmitTracesForOverTCP exercises the per-program frame end-to-end
// against a real hive: the fast path must ingest, and a batch lying about
// its program must be rejected server-side without partial ingestion.
func TestSubmitTracesForOverTCP(t *testing.T) {
	p := buildCrashy(t)
	h, addr, stop := startServer(t)
	defer stop()
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	client := Dial(addr)
	defer client.Close()

	batch := []*trace.Trace{
		captureWireTrace(t, p, "for-pod", []int64{50}),
		captureWireTrace(t, p, "for-pod", []int64{105}),
	}
	if err := client.SubmitTracesFor(p.ID, batch); err != nil {
		t.Fatal(err)
	}
	st, err := h.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != 2 || len(st.Failures) != 1 {
		t.Fatalf("stats after per-program submit = %+v", st)
	}

	stray := batch[0].Clone()
	stray.ProgramID = "ghost"
	if err := client.SubmitTracesFor(p.ID, []*trace.Trace{stray}); err == nil {
		t.Fatal("mismatched per-program batch accepted")
	}
	if st, _ := h.ProgramStats(p.ID); st.Ingested != 2 {
		t.Fatalf("mismatched batch partially ingested: %+v", st)
	}
}

// TestClientStreamsBatchesOverTCP drains many batches through the
// pipelined streaming path — more batches than the in-flight window — and
// checks exact ingestion; a server-side error (unknown program) must
// surface as a client error.
func TestClientStreamsBatchesOverTCP(t *testing.T) {
	p := buildCrashy(t)
	h := hive.New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(h)
	srv.Logf = t.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := Dial(addr)
	defer client.Close()

	tmpl := captureWireTrace(t, p, "stream-pod", []int64{42})
	const nBatches = maxInflightFrames*3 + 5
	batches := make([][]*trace.Trace, nBatches)
	total := 0
	for i := range batches {
		n := i%4 + 1
		batches[i] = make([]*trace.Trace, n)
		for j := range batches[i] {
			tr := tmpl.Clone()
			tr.Seq = uint64(total + j)
			batches[i][j] = tr
		}
		total += n
	}
	accepted, err := client.SubmitTraceBatches(p.ID, batches)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range accepted {
		if !ok {
			t.Fatalf("batch %d of %d not acknowledged", i, nBatches)
		}
	}
	st, err := h.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != int64(total) {
		t.Fatalf("ingested = %d, want %d", st.Ingested, total)
	}

	ghost := tmpl.Clone()
	ghost.ProgramID = "ghost"
	accepted, err = client.SubmitTraceBatches("ghost", [][]*trace.Trace{{ghost}})
	if err == nil {
		t.Fatal("stream for unknown program accepted")
	}
	if len(accepted) != 1 || accepted[0] {
		t.Fatalf("rejected stream reported accepted = %v", accepted)
	}
	// The connection survives a server-side rejection.
	if err := client.SubmitTracesFor(p.ID, batches[0]); err != nil {
		t.Fatal(err)
	}
}

// TestStreamMidRejectionMarksLaterAcceptance pins the partial-failure
// contract at the protocol level: when the server rejects one mid-stream
// batch but ingests the ones after it, the client must mark those later
// batches accepted — re-submitting them would double-count.
func TestStreamMidRejectionMarksLaterAcceptance(t *testing.T) {
	p := buildCrashy(t)
	h, addr, stop := startServer(t)
	defer stop()
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	client := Dial(addr)
	defer client.Close()

	good := func(seq uint64) *trace.Trace {
		tr := captureWireTrace(t, p, "mid-pod", []int64{42})
		tr.Seq = seq
		return tr
	}
	bad := good(99)
	bad.ProgramID = "ghost"
	batches := [][]*trace.Trace{{good(0)}, {bad}, {good(1)}}
	accepted, err := client.SubmitTraceBatches(p.ID, batches)
	if err == nil {
		t.Fatal("stream with a mismatched batch fully accepted")
	}
	want := []bool{true, false, true}
	for i := range want {
		if accepted[i] != want[i] {
			t.Fatalf("accepted = %v, want %v", accepted, want)
		}
	}
	st, err := h.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != 2 {
		t.Fatalf("ingested = %d, want the 2 good batches", st.Ingested)
	}
}

// TestSubmitForMismatchRejectedOnAnyBackend pins that the per-program
// frame's all-or-nothing mismatch rejection is enforced by the server
// itself, not delegated to backends that happen to check (the hive): a
// plain HiveClient backend must yield the same rejection.
func TestSubmitForMismatchRejectedOnAnyBackend(t *testing.T) {
	backend := &countingBackend{}
	srv := NewServer(backend)
	srv.Logf = t.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := Dial(addr)
	defer client.Close()

	stray := &trace.Trace{ProgramID: "B"}
	if err := client.SubmitTracesFor("A", []*trace.Trace{stray}); err == nil {
		t.Fatal("mismatched per-program batch accepted by plain backend")
	}
	if got := backend.total(); got != 0 {
		t.Fatalf("stub backend ingested %d traces from a rejected batch", got)
	}
	// A matching batch still flows through the grouped fallback.
	if err := client.SubmitTracesFor("B", []*trace.Trace{stray}); err != nil {
		t.Fatal(err)
	}
	if got := backend.total(); got != 1 {
		t.Fatalf("stub backend ingested %d, want 1", got)
	}
}
