package wire

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/hive"
	"repro/internal/journal"
	"repro/internal/pod"
	"repro/internal/prog"
	"repro/internal/trace"
)

// makeTraces captures n real traces of the crashy program (mixed OK and
// crash outcomes) for submission tests.
func makeTraces(t *testing.T, p *prog.Program, n int) []*trace.Trace {
	t.Helper()
	out := make([]*trace.Trace, 0, n)
	for i := 0; i < n; i++ {
		col := trace.NewCollector(p, trace.CaptureFull, 0, uint64(i+1))
		input := []int64{int64(i * 13 % 160)}
		m, err := prog.NewMachine(p, prog.Config{Input: input, Observer: col})
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		out = append(out, col.Finish(fmt.Sprintf("pod-%d", i%3), uint64(i), res, input, trace.PrivacyHashed, "fleet"))
	}
	return out
}

// TestColumnarNegotiation pins the hello exchange: a new server grants the
// columnar feature, an old (DisableColumnar) server answers like a build
// that has never heard of hello, and the client pins the v2 encoding.
func TestColumnarNegotiation(t *testing.T) {
	p := buildCrashy(t)
	for _, old := range []bool{false, true} {
		h := hive.New("fleet")
		if err := h.RegisterProgram(p); err != nil {
			t.Fatal(err)
		}
		srv := NewServer(h)
		srv.Logf = t.Logf
		srv.DisableColumnar = old
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		client := Dial(addr)
		sealed := client.SealTraceBatches(p.ID, [][]*trace.Trace{makeTraces(t, p, 4)})
		if got, want := sealed[0].Columnar, !old; got != want {
			t.Errorf("oldServer=%v: sealed columnar = %v, want %v", old, got, want)
		}
		if _, err := client.SubmitSealed(sealed); err != nil {
			t.Errorf("oldServer=%v: submit: %v", old, err)
		}
		st, err := h.ProgramStats(p.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Ingested != 4 {
			t.Errorf("oldServer=%v: ingested %d, want 4", old, st.Ingested)
		}
		_ = client.Close()
		_ = srv.Close()
	}
}

// TestColumnarMixedClients proves fleet members of three generations
// interoperate in every pairing: pre-hello ("old"), columnar-but-pre-WAN
// ("pr5"), and WAN-capable ("new") clients concurrently streaming to
// servers of all three generations, every trace ingested exactly once,
// identical final hive state. The new clients force compression so the
// compressed frame type is actually exercised on loopback; against
// downgraded servers they must silently fall back via the hello
// intersection. Run under -race in CI.
func TestColumnarMixedClients(t *testing.T) {
	p := buildCrashy(t)
	serverModes := []string{"new", "pr5", "old"}
	var stats []hive.Stats
	for _, mode := range serverModes {
		h := hive.New("fleet")
		if err := h.RegisterProgram(p); err != nil {
			t.Fatal(err)
		}
		srv := NewServer(h)
		srv.Logf = t.Logf
		srv.DisableWAN = mode == "pr5"
		srv.DisableColumnar = mode == "old"
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}

		const clients = 6
		const perClient = 40
		var wg sync.WaitGroup
		errs := make([]error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				client := Dial(addr)
				switch c % 3 {
				case 0: // WAN build: coalesced mega-frames, forced compression
					client.ForceCompress = true
				case 1: // PR-5 build: columnar only
					client.DisableCoalesce = true
					client.DisableCompression = true
				case 2: // pre-hello build
					client.DisableColumnar = true
				}
				defer client.Close()
				buf := pod.NewBufferedFor(client, p.ID)
				traces := makeTraces(t, p, perClient)
				for _, tr := range traces {
					tr.PodID = fmt.Sprintf("pod-%d", c)
					if err := buf.SubmitTraces([]*trace.Trace{tr}); err != nil {
						errs[c] = err
						return
					}
				}
				errs[c] = buf.Drain()
			}(c)
		}
		wg.Wait()
		for c, err := range errs {
			if err != nil {
				t.Fatalf("server=%s client %d: %v", mode, c, err)
			}
		}
		st, err := h.ProgramStats(p.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Ingested != clients*perClient {
			t.Fatalf("server=%s: ingested %d, want %d", mode, st.Ingested, clients*perClient)
		}
		stats = append(stats, st)
		_ = srv.Close()
	}
	// The transport generation must be invisible to aggregation: same
	// ingest counts, same failure aggregation, same tree shape every way.
	for i := range stats {
		stats[i].Failures = nil // Sample pointers differ; counts compared via Tree/FixCount
		if i > 0 && !reflect.DeepEqual(stats[0], stats[i]) {
			t.Fatalf("%s and %s fleets aggregated differently:\n%+v\n%+v",
				serverModes[0], serverModes[i], stats[0], stats[i])
		}
	}
}

// TestColumnarJournalBytesIdentity is the write-once-bytes acceptance test:
// the bytes a durable hive journals for a columnar batch are byte-identical
// to the wire payload the pod sealed — pod → wire → hive → journal with one
// serialization, no re-encode.
func TestColumnarJournalBytesIdentity(t *testing.T) {
	p := buildCrashy(t)
	dir := t.TempDir()
	store, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := hive.New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Recover(store); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(h)
	srv.Logf = t.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := Dial(addr)
	defer client.Close()

	batches := [][]*trace.Trace{makeTraces(t, p, 8), makeTraces(t, p, 5)}
	sealed := client.SealTraceBatches(p.ID, batches)
	var wireBatches [][]byte
	for i, sb := range sealed {
		if !sb.Columnar {
			t.Fatalf("frame %d sealed v2; columnar not negotiated", i)
		}
		// Strip the (session, seq) tag: the rest is the columnar batch.
		_, _, batchBytes, err := decodeSeqPrefix(sb.Payload)
		if err != nil {
			t.Fatal(err)
		}
		wireBatches = append(wireBatches, batchBytes)
	}
	if _, err := client.SubmitSealed(sealed); err != nil {
		t.Fatal(err)
	}
	_ = store.Close()

	// Read the journal back: the batch ops must carry the wire bytes
	// verbatim.
	reread, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reread.Close()
	var journaled [][]byte
	if _, err := reread.Replay(p.ID, func(op *journal.Op) error {
		if op.Kind == journal.OpBatchColumnar {
			journaled = append(journaled, op.Raw)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(journaled) != len(wireBatches) {
		t.Fatalf("journal holds %d columnar ops, want %d", len(journaled), len(wireBatches))
	}
	for i := range journaled {
		if !reflect.DeepEqual(journaled[i], wireBatches[i]) {
			t.Fatalf("journaled batch %d differs from wire payload", i)
		}
	}
}

// TestColumnarRecoverEquivalence kills a hive that ingested columnar
// batches and recovers it from the journal: stats, failure aggregation, and
// minted fixes must survive byte-journaled replay exactly.
func TestColumnarRecoverEquivalence(t *testing.T) {
	p := buildCrashy(t)
	dir := t.TempDir()
	store, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := hive.New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Recover(store); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(h)
	srv.Logf = t.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := Dial(addr)
	buf := pod.NewBufferedFor(client, p.ID)
	if err := buf.SubmitTraces(makeTraces(t, p, 64)); err != nil {
		t.Fatal(err)
	}
	if err := buf.Drain(); err != nil {
		t.Fatal(err)
	}
	before, err := h.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	_ = client.Close()
	_ = srv.Close()
	_ = store.Close()

	store2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	h2 := hive.New("fleet")
	if err := h2.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	if err := h2.Recover(store2); err != nil {
		t.Fatal(err)
	}
	after, err := h2.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	before.Failures, after.Failures = nil, nil
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("recovered state differs:\nbefore %+v\nafter  %+v", before, after)
	}
}
