package wire

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/hive"
	"repro/internal/leaktest"
	"repro/internal/pod"
	"repro/internal/prog"
	"repro/internal/ring"
	"repro/internal/trace"
)

// buildNamedCrashy is buildCrashy with a caller-chosen name, so routed
// tests get a corpus of distinct program IDs spread around the ring.
func buildNamedCrashy(t *testing.T, name string) *prog.Program {
	t.Helper()
	b := prog.NewBuilder(name, 1)
	hi, end := b.NewLabel(), b.NewLabel()
	b.Input(0, 0)
	b.BrImm(0, prog.CmpGE, 100, hi)
	b.Jmp(end)
	b.Bind(hi)
	inner := b.NewLabel()
	b.BrImm(0, prog.CmpLT, 110, inner)
	b.Jmp(end)
	b.Bind(inner)
	b.Const(1, 0)
	b.Div(2, 1, 1)
	b.Bind(end)
	b.Halt()
	return b.MustBuild()
}

func buildRoutedCorpus(t *testing.T, n int) []*prog.Program {
	t.Helper()
	out := make([]*prog.Program, n)
	for i := range out {
		out[i] = buildNamedCrashy(t, fmt.Sprintf("routed-%d", i))
	}
	return out
}

// fleetNode is one sharded hive: an in-process backend plus its server.
type fleetNode struct {
	h    *hive.Hive
	srv  *Server
	addr string
}

// startFleet boots n sharded hives with the whole corpus registered on
// every member (registration is cheap metadata; ingest only ever lands on
// the owner) and one placement map over their listen addresses installed
// everywhere.
func startFleet(t *testing.T, n int, corpus []*prog.Program) ([]*fleetNode, *ring.Map) {
	t.Helper()
	nodes := make([]*fleetNode, n)
	addrs := make([]string, n)
	for i := range nodes {
		h := hive.New("fleet")
		for _, p := range corpus {
			if err := h.RegisterProgram(p); err != nil {
				t.Fatal(err)
			}
		}
		srv := NewServer(h)
		srv.Logf = t.Logf
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = &fleetNode{h: h, srv: srv, addr: addr}
		addrs[i] = addr
		t.Cleanup(func() { _ = srv.Close() })
	}
	m := ring.New(addrs, ring.DefaultVNodes, 42)
	for _, nd := range nodes {
		nd.srv.SetPlacement(m, nd.addr)
	}
	return nodes, m
}

func nodeByAddr(t *testing.T, nodes []*fleetNode, addr string) *fleetNode {
	t.Helper()
	for _, nd := range nodes {
		if nd.addr == addr {
			return nd
		}
	}
	t.Fatalf("no fleet node at %s", addr)
	return nil
}

// pickOwnedBy returns a corpus program the map assigns to addr (want
// true) or to any other node (want false). The ring hashes ephemeral
// listen ports, so an unlucky run can land the whole fixed corpus on (or
// off) one member; in that case extra programs are synthesized until one
// hashes where the test needs it, registered fleet-wide like the corpus.
func pickOwnedBy(t *testing.T, nodes []*fleetNode, corpus []*prog.Program, m *ring.Map, addr string, want bool) *prog.Program {
	t.Helper()
	for _, p := range corpus {
		if (m.Owner(p.ID) == addr) == want {
			return p
		}
	}
	for i := 0; i < 1024; i++ {
		p := buildNamedCrashy(t, fmt.Sprintf("routed-extra-%d", i))
		if (m.Owner(p.ID) == addr) != want {
			continue
		}
		for _, nd := range nodes {
			if err := nd.h.RegisterProgram(p); err != nil {
				t.Fatal(err)
			}
		}
		return p
	}
	t.Fatalf("no program with owner==%s being %v after 1024 probes", addr, want)
	return nil
}

// TestRoutedSealedExactlyOnce drives a Router over a 3-hive fleet: every
// program's traces land on exactly its ring owner and nowhere else, and a
// verbatim resubmission of the already-acked sealed frames is dup-acked
// without re-ingesting.
func TestRoutedSealedExactlyOnce(t *testing.T) {
	leaktest.Check(t)
	corpus := buildRoutedCorpus(t, 6)
	nodes, m := startFleet(t, 3, corpus)
	r := NewRouter(nodes[0].addr, nodes[1].addr, nodes[2].addr)
	defer r.Close()

	allSealed := make(map[string][]pod.SealedBatch)
	for pi, p := range corpus {
		batches := [][]*trace.Trace{
			{captureWireTrace(t, p, "route-pod", []int64{int64(pi)})},
			{captureWireTrace(t, p, "route-pod", []int64{int64(100 + pi)})},
		}
		sealed := r.SealTraceBatches(p.ID, batches)
		acc, err := r.SubmitSealed(sealed)
		if err != nil {
			t.Fatalf("program %d: %v", pi, err)
		}
		for i, ok := range acc {
			if !ok {
				t.Fatalf("program %d frame %d not accepted", pi, i)
			}
		}
		allSealed[p.ID] = sealed
	}

	spread := make(map[string]bool)
	for _, p := range corpus {
		owner := m.Owner(p.ID)
		spread[owner] = true
		for _, nd := range nodes {
			st, err := nd.h.ProgramStats(p.ID)
			if err != nil {
				t.Fatal(err)
			}
			var want int64
			if nd.addr == owner {
				want = 2
			}
			if st.Ingested != want {
				t.Fatalf("program %s on %s: ingested=%d want %d", p.ID, nd.addr, st.Ingested, want)
			}
		}
	}
	if len(spread) < 2 {
		t.Fatalf("corpus landed entirely on one node; ring or corpus degenerate")
	}

	// Exactly-once across the fleet: resubmitting every sealed frame
	// verbatim dup-acks without moving any counter.
	for _, p := range corpus {
		acc, err := r.SubmitSealed(allSealed[p.ID])
		if err != nil {
			t.Fatal(err)
		}
		for i, ok := range acc {
			if !ok {
				t.Fatalf("resubmitted frame %d of %s not dup-acked", i, p.ID)
			}
		}
		st, err := nodeByAddr(t, nodes, m.Owner(p.ID)).h.ProgramStats(p.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Ingested != 2 {
			t.Fatalf("resubmission re-ingested: %s has %d traces", p.ID, st.Ingested)
		}
	}
}

// TestRedirectResubmitAfterRehome is the owner-moved path end to end: a
// routing client seals and part-submits against the original owner, the
// owner's programs are exported/imported to survivors under placement v2,
// and the stale client's resubmission is answered with MsgRedirect naming
// the new owner. A router holding the stale map chases the redirect and
// delivers the parked frames verbatim — already-acked frames dup-ack on
// the new owner (the session table traveled with the snapshot), fresh
// frames apply exactly once.
func TestRedirectResubmitAfterRehome(t *testing.T) {
	corpus := buildRoutedCorpus(t, 6)
	nodes, m := startFleet(t, 3, corpus)
	victim := nodes[2]
	moved := pickOwnedBy(t, nodes, corpus, m, victim.addr, true)

	// The router bootstraps now, so it holds placement v1 across the move.
	r := NewRouter(victim.addr)
	defer r.Close()
	if got := r.PlacementVersion(); got != m.Version() {
		t.Fatalf("router placement v%d, want v%d", got, m.Version())
	}

	c := Dial(victim.addr)
	defer c.Close()
	var batches [][]*trace.Trace
	for i := 0; i < 4; i++ {
		batches = append(batches, []*trace.Trace{captureWireTrace(t, moved, "move-pod", []int64{int64(i)})})
	}
	sealed := c.SealTraceBatches(moved.ID, batches)
	// Frame 0 is acked by the original owner before the move.
	if acc, err := c.SubmitSealed(sealed[:1]); err != nil || !acc[0] {
		t.Fatalf("pre-move submit: acc=%v err=%v", acc, err)
	}

	// Re-home every program the victim owns and retire it from the ring.
	m2 := m.Without(victim.addr)
	for _, p := range corpus {
		if m.Owner(p.ID) != victim.addr {
			continue
		}
		snap, err := victim.h.ExportProgram(p.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := nodeByAddr(t, nodes, m2.Owner(p.ID)).h.ImportProgram(snap); err != nil {
			t.Fatal(err)
		}
		victim.h.DropProgram(p.ID)
	}
	for _, nd := range nodes {
		nd.srv.SetPlacement(m2, nd.addr)
	}
	newOwner := nodeByAddr(t, nodes, m2.Owner(moved.ID))

	// The stale direct client resubmits to the old owner: the answer is a
	// typed redirect naming the new owner at placement v2.
	_, err := c.SubmitSealed(sealed)
	var re *RedirectError
	if !errors.As(err, &re) {
		t.Fatalf("stale submit error = %v, want RedirectError", err)
	}
	if re.Owner != newOwner.addr || re.ProgramID != moved.ID {
		t.Fatalf("redirect points at %s for %s, want %s for %s", re.Owner, re.ProgramID, newOwner.addr, moved.ID)
	}
	if re.Version != m2.Version() {
		t.Fatalf("redirect placement v%d, want v%d", re.Version, m2.Version())
	}

	// The stale router chases the redirect: all four frames delivered, the
	// pre-move acked frame exactly once.
	acc, err := r.SubmitSealed(sealed)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range acc {
		if !ok {
			t.Fatalf("frame %d not delivered after re-homing", i)
		}
	}
	if got := r.PlacementVersion(); got != m2.Version() {
		t.Fatalf("router did not adopt redirect placement: v%d, want v%d", got, m2.Version())
	}
	st, err := newOwner.h.ProgramStats(moved.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != int64(len(sealed)) {
		t.Fatalf("new owner ingested %d, want %d (exactly-once across re-homing)", st.Ingested, len(sealed))
	}
	// Steering survives the move: the new owner answers guidance for the
	// migrated frontier through the router.
	if _, err := r.Guidance(moved.ID, 4); err != nil {
		t.Fatalf("guidance after re-homing: %v", err)
	}
}

// TestMixedGenerationRoutedMatrix points every older client generation at
// the WRONG member of a sharded fleet: the server must proxy their frames
// to the owner (older builds cannot parse MsgRedirect), and reads (fixes,
// guidance) must come back through the same proxy. The routed generation
// goes direct. Run under -race in CI's cluster job.
func TestMixedGenerationRoutedMatrix(t *testing.T) {
	corpus := buildRoutedCorpus(t, 4)
	nodes, m := startFleet(t, 2, corpus)
	wrong := nodes[0]
	p := pickOwnedBy(t, nodes, corpus, m, wrong.addr, false)
	owner := nodeByAddr(t, nodes, m.Owner(p.ID))

	gens := []struct {
		name   string
		submit func(t *testing.T, batch []*trace.Trace)
	}{
		{"pre-hello", func(t *testing.T, batch []*trace.Trace) {
			c := Dial(wrong.addr)
			c.DisableColumnar = true
			defer c.Close()
			if err := c.SubmitTracesFor(p.ID, batch); err != nil {
				t.Fatalf("pre-hello submit via wrong node: %v", err)
			}
		}},
		{"pr7-no-routing", func(t *testing.T, batch []*trace.Trace) {
			c := Dial(wrong.addr)
			c.DisableRouting = true
			defer c.Close()
			acc, err := c.SubmitSealed(c.SealTraceBatches(p.ID, [][]*trace.Trace{batch}))
			if err != nil || !acc[0] {
				t.Fatalf("non-routing sealed submit via wrong node: acc=%v err=%v", acc, err)
			}
		}},
		{"routed", func(t *testing.T, batch []*trace.Trace) {
			r := NewRouter(wrong.addr)
			defer r.Close()
			acc, err := r.SubmitSealed(r.SealTraceBatches(p.ID, [][]*trace.Trace{batch}))
			if err != nil || !acc[0] {
				t.Fatalf("routed sealed submit: acc=%v err=%v", acc, err)
			}
		}},
	}
	for i, gen := range gens {
		t.Run(gen.name, func(t *testing.T) {
			before, err := owner.h.ProgramStats(p.ID)
			if err != nil {
				t.Fatal(err)
			}
			gen.submit(t, []*trace.Trace{captureWireTrace(t, p, "gen-pod", []int64{int64(i)})})
			after, err := owner.h.ProgramStats(p.ID)
			if err != nil {
				t.Fatal(err)
			}
			if after.Ingested != before.Ingested+1 {
				t.Fatalf("owner ingested %d -> %d, want +1", before.Ingested, after.Ingested)
			}
			if st, _ := wrong.h.ProgramStats(p.ID); st.Ingested != 0 {
				t.Fatalf("wrong node ingested %d traces (proxy leaked ingest)", st.Ingested)
			}
		})
	}

	// Legacy grouped submission spanning both owners splits server-side.
	pLocal := pickOwnedBy(t, nodes, corpus, m, wrong.addr, true)
	legacy := Dial(wrong.addr)
	legacy.DisableColumnar = true
	defer legacy.Close()
	mixed := []*trace.Trace{
		captureWireTrace(t, pLocal, "legacy-pod", []int64{7}),
		captureWireTrace(t, p, "legacy-pod", []int64{8}),
	}
	beforeFar, _ := owner.h.ProgramStats(p.ID)
	if err := legacy.SubmitTraces(mixed); err != nil {
		t.Fatalf("legacy grouped submit: %v", err)
	}
	if st, _ := wrong.h.ProgramStats(pLocal.ID); st.Ingested != 1 {
		t.Fatalf("local half of grouped submit: ingested=%d", st.Ingested)
	}
	if st, _ := owner.h.ProgramStats(p.ID); st.Ingested != beforeFar.Ingested+1 {
		t.Fatalf("proxied half of grouped submit: ingested=%d want %d", st.Ingested, beforeFar.Ingested+1)
	}

	// Read path through a pre-ring pod at the wrong node: crash traces are
	// proxied to the owner, the fix it mints is proxied back.
	old := Dial(wrong.addr)
	old.DisableColumnar = true
	defer old.Close()
	pd, err := pod.New(pod.Config{
		Program: p, ID: "old-gen-pod", Hive: old,
		Privacy: trace.PrivacyHashed, Salt: "fleet", BatchSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pd.RunOnce([]int64{105}); err != nil {
		t.Fatal(err)
	}
	st, err := owner.h.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.FixCount == 0 {
		t.Fatal("crash via proxied pre-ring pod minted no fix on the owner")
	}
	if _, err := old.Guidance(p.ID, 4); err != nil {
		t.Fatalf("guidance via wrong node: %v", err)
	}
}

// TestRetryErrorNamesRedirect pins the diagnostic surface: a
// retry-exhausted error must distinguish "owner moved" (a redirect was
// seen: name the program, target, and placement generation) from "owner
// down" (no redirect at the current generation).
func TestRetryErrorNamesRedirect(t *testing.T) {
	corpus := buildRoutedCorpus(t, 4)
	nodes, m := startFleet(t, 2, corpus)
	c := Dial(nodes[0].addr)
	defer c.Close()
	if err := c.Handshake(); err != nil {
		t.Fatal(err)
	}

	c.mu.Lock()
	err := c.retryErrLocked(errors.New("boom"))
	c.mu.Unlock()
	if want := fmt.Sprintf("no redirect seen at placement v%d", m.Version()); !strings.Contains(err.Error(), want) {
		t.Fatalf("owner-down retry error %q lacks %q", err, want)
	}

	// Provoke a redirect: a routing client submitting a foreign program to
	// the wrong node is told where it lives.
	foreign := pickOwnedBy(t, nodes, corpus, m, nodes[0].addr, false)
	sealed := c.SealTraceBatches(foreign.ID, [][]*trace.Trace{{captureWireTrace(t, foreign, "err-pod", []int64{1})}})
	if _, serr := c.SubmitSealed(sealed); serr == nil {
		t.Fatal("misdirected routing submit did not redirect")
	}
	c.mu.Lock()
	err = c.retryErrLocked(errors.New("boom"))
	c.mu.Unlock()
	want := fmt.Sprintf("last redirect: program %s -> %s at placement v%d", foreign.ID, m.Owner(foreign.ID), m.Version())
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("owner-moved retry error %q lacks %q", err, want)
	}
}
