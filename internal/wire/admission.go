package wire

import (
	"sync"
	"sync/atomic"
	"time"
)

// Admission configures the server-side overload protections (PR 9): all
// zero values (or a nil *Admission on the Server) disable every check, so
// the loopback fast path pays nothing. The layer says "not now", never
// "never": a declined frame is answered MsgBusy (FeatureBusy clients) or
// absorbed by in-handler pacing and deferred reads (legacy clients), and
// is resubmitted by the client with its exactly-once tag intact.
type Admission struct {
	// SessionRate is the sustained admission rate per session in traces
	// per second (0 = unlimited). Frames are charged their batch size at
	// dispatch; a dry bucket answers MsgBusy or paces the worker.
	SessionRate float64
	// SessionBurst is the token-bucket capacity in traces (default
	// 4×SessionRate, min 256): short bursts ride through, sustained
	// overload is shaped to SessionRate.
	SessionBurst float64
	// ConnQueueBytes caps the frame-payload bytes one connection may have
	// queued between its reader and its worker (0 = unbounded). Past the
	// cap the reader stops reading that connection — per-connection
	// backpressure in addition to the frame-count queue depth.
	ConnQueueBytes int64
	// TotalQueueBytes is the server-wide queued-bytes budget the pressure
	// gauge is normalized against (0 = no gauge). It is the denominator of
	// the load-shedding watermark the backend reads via pod.PressureSink.
	TotalQueueBytes int64
	// MaxConns caps concurrently served connections; excess accepts are
	// closed immediately (0 = unlimited).
	MaxConns int64
	// MaxHalfOpen caps connections that have not yet completed one valid
	// frame — the slot a slow-loris or port-scanner occupies (0 =
	// unlimited).
	MaxHalfOpen int64
	// FrameTimeout bounds the wall time between a frame's first byte and
	// its last (0 = no deadline). Idle connections are legal — the clock
	// only starts once a frame begins — but a peer dribbling a started
	// frame slower than this is evicted: progress-based slow-loris
	// protection.
	FrameTimeout time.Duration
	// RetryAfter is the hint MsgBusy carries for hive-deferred batches
	// (default defaultRetryAfter); rate-limit busy replies compute their
	// own hint from the bucket deficit.
	RetryAfter time.Duration
}

// defaultRetryAfter is the busy hint when no better estimate exists.
const defaultRetryAfter = 25 * time.Millisecond

// maxAdmissionBuckets bounds the per-session token-bucket table (LRU,
// like the hive's session dedup table): a hostile fleet minting sessions
// cannot grow it without bound.
const maxAdmissionBuckets = 4096

// tokenBucket is one session's admission budget. Mutated under
// admissionState.mu.
type tokenBucket struct {
	tokens  float64
	last    time.Time
	touched uint64
}

// admissionState is the runtime form of an Admission config. Counter
// atomics are exported through AdmissionStats; mu is a leaf lock (rank 50
// in the repolint lockdiscipline order) guarding only the bucket table.
type admissionState struct {
	cfg Admission

	mu      sync.Mutex
	buckets map[string]*tokenBucket
	clock   uint64

	// queued is the server-wide frame-payload bytes sitting in per-conn
	// ingest queues; the pressure gauge is queued/TotalQueueBytes.
	queued   atomic.Int64
	conns    atomic.Int64
	halfOpen atomic.Int64

	busyReplies   atomic.Int64
	pacedFrames   atomic.Int64
	slowEvicted   atomic.Int64
	connsRejected atomic.Int64
}

// AdmissionStats is a point-in-time snapshot of the admission counters.
type AdmissionStats struct {
	// BusyReplies counts MsgBusy frames sent (negotiated clients).
	BusyReplies int64
	// PacedFrames counts frames admitted only after in-handler pacing
	// (legacy clients over their session rate, or hive-deferred batches
	// retried in-handler).
	PacedFrames int64
	// SlowLorisEvicted counts connections closed for dribbling a started
	// frame past FrameTimeout.
	SlowLorisEvicted int64
	// ConnsRejected counts accepts closed immediately at the MaxConns /
	// MaxHalfOpen caps.
	ConnsRejected int64
	// ReadOnlyBusy counts submissions refused because the backend flipped
	// read-only after persistent journal write failures. Maintained on the
	// Server itself and merged in by AdmissionStats, so it reports even
	// when admission control is not configured.
	ReadOnlyBusy int64
	// QueuedBytes is the current server-wide queued ingest payload.
	QueuedBytes int64
	// Pressure is QueuedBytes normalized by the TotalQueueBytes budget
	// (0 when no budget is configured).
	Pressure float64
}

func newAdmissionState(cfg Admission) *admissionState {
	if cfg.SessionRate > 0 && cfg.SessionBurst <= 0 {
		cfg.SessionBurst = 4 * cfg.SessionRate
		if cfg.SessionBurst < 256 {
			cfg.SessionBurst = 256
		}
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = defaultRetryAfter
	}
	return &admissionState{cfg: cfg, buckets: make(map[string]*tokenBucket)}
}

// pressure is the gauge installed into a pod.PressureSink backend.
func (a *admissionState) pressure() float64 {
	if a.cfg.TotalQueueBytes <= 0 {
		return 0
	}
	return float64(a.queued.Load()) / float64(a.cfg.TotalQueueBytes)
}

// stats snapshots the counters.
func (a *admissionState) stats() AdmissionStats {
	return AdmissionStats{
		BusyReplies:      a.busyReplies.Load(),
		PacedFrames:      a.pacedFrames.Load(),
		SlowLorisEvicted: a.slowEvicted.Load(),
		ConnsRejected:    a.connsRejected.Load(),
		QueuedBytes:      a.queued.Load(),
		Pressure:         a.pressure(),
	}
}

// debit charges n traces against key's token bucket at time now. A
// sufficiently full bucket is debited and admits immediately (wait 0,
// ok). A dry bucket either declines (force=false: no debit, the caller
// answers MsgBusy with the returned wait as the hint) or runs a bounded
// deficit (force=true: legacy pacing — the caller sleeps wait, and the
// debt, capped at one burst, shapes subsequent frames to the sustained
// rate without unbounded punishment).
func (a *admissionState) debit(key string, n int, now time.Time, force bool) (wait time.Duration, ok bool) {
	if a.cfg.SessionRate <= 0 || n <= 0 {
		return 0, true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.clock++
	b := a.buckets[key]
	if b == nil {
		if len(a.buckets) >= maxAdmissionBuckets {
			a.evictBucketLocked()
		}
		b = &tokenBucket{tokens: a.cfg.SessionBurst, last: now}
		a.buckets[key] = b
	}
	b.touched = a.clock
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * a.cfg.SessionRate
		if b.tokens > a.cfg.SessionBurst {
			b.tokens = a.cfg.SessionBurst
		}
	}
	b.last = now
	need := float64(n)
	if b.tokens >= need {
		b.tokens -= need
		return 0, true
	}
	wait = time.Duration((need - b.tokens) / a.cfg.SessionRate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	if !force {
		return wait, false
	}
	b.tokens -= need
	if b.tokens < -a.cfg.SessionBurst {
		b.tokens = -a.cfg.SessionBurst
	}
	return wait, true
}

// evictBucketLocked drops the least-recently-touched bucket. Callers
// hold a.mu.
func (a *admissionState) evictBucketLocked() {
	var victim string
	oldest := ^uint64(0)
	for key, b := range a.buckets {
		if b.touched < oldest {
			oldest, victim = b.touched, key
		}
	}
	delete(a.buckets, victim)
}

// backoffDelay computes one jittered exponential backoff step: base
// doubling per attempt, capped, floored at the server's retry-after hint,
// plus up to 50% proportional jitter (jitter in [0,1) supplied by the
// caller's deterministic source; 0 gives the pure schedule, which the
// backoff tests pin). Pure — all time values are inputs.
func backoffDelay(base, ceil time.Duration, attempt int, hint time.Duration, jitter float64) time.Duration {
	if base <= 0 {
		base = defaultRetryBase
	}
	if ceil <= 0 {
		ceil = defaultRetryCap
	}
	if attempt > 30 {
		attempt = 30
	}
	d := base << uint(attempt)
	if d <= 0 || d > ceil {
		d = ceil
	}
	if hint > d {
		d = hint
	}
	return d + time.Duration(jitter*float64(d)/2)
}

// defaultRetryBase and defaultRetryCap bound the client backoff schedule
// when the client does not pin its own.
const (
	defaultRetryBase = 10 * time.Millisecond
	defaultRetryCap  = 2 * time.Second
)
