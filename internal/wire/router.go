package wire

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fix"
	"repro/internal/guidance"
	"repro/internal/pod"
	"repro/internal/ring"
	"repro/internal/trace"
)

// Router is a pod.HiveClient over a sharded hive fleet: it learns the
// placement ring from any member's hello ack, routes every per-program
// frame to that program's owner, and keeps itself current from the two
// signals the protocol emits — MsgRedirect (the owner moved: adopt the
// newer map the redirect carries and resubmit) and transport failure
// (the owner may be down: re-poll the seeds for a newer map). Sealed
// frames are resubmitted verbatim, so a frame that chases a program
// across a re-homing presents the same (session, seq) tag to every hive
// that sees it and is ingested exactly once.
//
// A Router against a single unsharded hive degenerates to that hive's
// Client: no placement is advertised, every program maps to the first
// seed, nothing is routed.
type Router struct {
	mu sync.Mutex
	// seeds are the bootstrap addresses (guarded by mu; refreshLocked
	// polls them for placement). Every fleet member works as a seed.
	seeds []string
	// clients caches one Client per hive address, created lazily
	// (guarded by mu). Clients created for redirect targets outside the
	// seed list land here too.
	clients map[string]*Client
	// placement is the newest ring this router has seen, from any seed's
	// hello or any redirect (guarded by mu). nil until a sharded member
	// advertises one; nil means "send everything to seeds[0]".
	placement *ring.Map

	// DisableCoalesce, DisableCompression, ForceCompress and
	// CoalesceDepth are copied onto every client this router creates.
	// Set before first use.
	DisableCoalesce    bool
	DisableCompression bool
	ForceCompress      bool
	CoalesceDepth      int
	// RetryBase, RetryCap, BusyRetries and DisableBusy are the busy-backoff
	// knobs, copied onto every client this router creates. Set before
	// first use.
	RetryBase   time.Duration
	RetryCap    time.Duration
	BusyRetries int
	DisableBusy bool

	// rng is the router's own xorshift64 jitter state for fleet-level
	// busy-round pacing (lock-free).
	rng atomic.Uint64
}

var _ pod.HiveClient = (*Router)(nil)
var _ pod.ProgramSubmitter = (*Router)(nil)
var _ pod.TraceStreamer = (*Router)(nil)
var _ pod.SealedStreamer = (*Router)(nil)

// maxRouteAttempts bounds how many placement generations one submission
// chases: first send, one redirect- or refresh-guided retry, one more for
// a map that moved again mid-flight. Past that the caller's frames stay
// parked (sealed frames lose nothing by waiting).
const maxRouteAttempts = 3

// routerBusyRounds bounds the extra paced rounds a drain spends on owners
// that are alive but shedding (every per-owner error a BusyError) — those
// rounds deliberately do not consume routing attempts: the placement is
// correct, the fleet just wants the work later.
const routerBusyRounds = 4

// NewRouter creates a router bootstrapping from the given hive
// addresses. At least one seed is required; every fleet member works.
func NewRouter(seeds ...string) *Router {
	if len(seeds) == 0 {
		panic("wire: NewRouter needs at least one seed address")
	}
	return &Router{seeds: seeds, clients: make(map[string]*Client)}
}

// Close closes every cached client connection.
func (r *Router) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var firstErr error
	for _, c := range r.clients {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	r.clients = make(map[string]*Client)
	return firstErr
}

// clientLocked returns the cached client for addr, creating it with the
// router's transport knobs on first use.
func (r *Router) clientLocked(addr string) *Client {
	if c, ok := r.clients[addr]; ok {
		return c
	}
	c := Dial(addr)
	c.DisableCoalesce = r.DisableCoalesce
	c.DisableCompression = r.DisableCompression
	c.ForceCompress = r.ForceCompress
	c.CoalesceDepth = r.CoalesceDepth
	c.RetryBase = r.RetryBase
	c.RetryCap = r.RetryCap
	c.BusyRetries = r.BusyRetries
	c.DisableBusy = r.DisableBusy
	r.clients[addr] = c
	return c
}

// jitter draws the next value in [0, 1) from the router's xorshift64
// stream.
func (r *Router) jitter() float64 {
	for {
		old := r.rng.Load()
		x := old
		if x == 0 {
			x = 0x6a09e667f3bcc909
		}
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if r.rng.CompareAndSwap(old, x) {
			return float64(x>>11) / float64(1<<53)
		}
	}
}

// adoptLocked installs m if it is newer than what the router holds.
func (r *Router) adoptLocked(m *ring.Map) {
	if m == nil {
		return
	}
	if r.placement == nil || m.Version() > r.placement.Version() {
		r.placement = m
	}
}

// refreshLocked polls every seed for its advertised placement and keeps
// the newest. force re-runs the hello exchange on each seed (a transport
// error suggested the cached map predates a membership change); without
// force a map already held is kept and only never-negotiated seeds are
// asked. Seeds that are down are skipped — any one live member suffices.
func (r *Router) refreshLocked(force bool) {
	if r.placement != nil && !force {
		return
	}
	for _, addr := range r.seeds {
		c := r.clientLocked(addr)
		var m *ring.Map
		if force {
			m = c.RefreshPlacement()
		} else {
			m = c.PlacementMap()
		}
		r.adoptLocked(m)
	}
}

// ownerLocked resolves the hive address owning programID under the
// current placement; with no placement (unsharded fleet, or no seed
// reachable yet) everything routes to the first seed.
func (r *Router) ownerLocked(programID string) string {
	r.refreshLocked(false)
	if r.placement == nil {
		return r.seeds[0]
	}
	owner := r.placement.Owner(programID)
	if owner == "" {
		return r.seeds[0]
	}
	return owner
}

// Owner reports where programID currently routes (tests, diagnostics).
func (r *Router) Owner(programID string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ownerLocked(programID)
}

// PlacementVersion reports the version of the newest placement map this
// router has adopted, 0 when it has none.
func (r *Router) PlacementVersion() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.refreshLocked(false)
	if r.placement == nil {
		return 0
	}
	return r.placement.Version()
}

// noteRoutingError digests a per-owner submission failure: a redirect
// teaches the newer map it carries; a busy reply is NOT a routing signal
// — the owner is alive and correctly placed, merely shedding, so
// re-polling every seed would turn one overloaded hive into a
// fleet-wide hello storm; anything else (the owner may be down) forces a
// seed re-poll so the next attempt runs on the freshest placement any
// surviving member advertises.
func (r *Router) noteRoutingError(err error) {
	var re *RedirectError
	if errors.As(err, &re) {
		r.mu.Lock()
		r.adoptLocked(placementFromPayload(re.Placement))
		r.mu.Unlock()
		return
	}
	var be *BusyError
	if errors.As(err, &be) {
		return
	}
	r.mu.Lock()
	r.refreshLocked(true)
	r.mu.Unlock()
}

// SubmitSealed implements pod.SealedStreamer across the fleet: sealed
// frames are grouped by owner under the current placement, each group
// streams to its owner, and frames whose owner moved (redirect) or died
// (transport error) are regrouped under the refreshed placement and
// resubmitted verbatim — their (session, seq) tags are already fixed, so
// however many hives see a frame, exactly one application happens and
// every later delivery is acknowledged as a duplicate.
func (r *Router) SubmitSealed(sealed []pod.SealedBatch) ([]bool, error) {
	accepted := make([]bool, len(sealed))
	if len(sealed) == 0 {
		return accepted, nil
	}
	var lastErr error
	busyRounds := 0
	for attempt := 0; attempt < maxRouteAttempts; {
		r.mu.Lock()
		groups := make(map[string][]int)
		for i := range sealed {
			if !accepted[i] {
				owner := r.ownerLocked(sealed[i].ProgramID)
				groups[owner] = append(groups[owner], i)
			}
		}
		clients := make(map[string]*Client, len(groups))
		for owner := range groups {
			clients[owner] = r.clientLocked(owner)
		}
		r.mu.Unlock()
		if len(groups) == 0 {
			return accepted, nil
		}
		owners := make([]string, 0, len(groups))
		for owner := range groups {
			owners = append(owners, owner)
		}
		sort.Strings(owners)
		// Owners stream concurrently: each group fills its own hive's
		// uplink, which is exactly where fleet scaling comes from — the
		// drain finishes when the slowest owner's share does, not when the
		// sum of all shares has crossed one link. Each goroutine touches
		// only its group's disjoint accepted indexes.
		lastErr = nil
		errs := make([]error, len(owners))
		var wg sync.WaitGroup
		for oi, owner := range owners {
			idx := groups[owner]
			sub := make([]pod.SealedBatch, len(idx))
			for j, i := range idx {
				sub[j] = sealed[i]
			}
			wg.Add(1)
			go func(oi int, c *Client, idx []int, sub []pod.SealedBatch) {
				defer wg.Done()
				got, err := c.SubmitSealed(sub)
				for j, ok := range got {
					if ok {
						accepted[idx[j]] = true
					}
				}
				errs[oi] = err
			}(oi, clients[owner], idx, sub)
		}
		wg.Wait()
		anyErr, busyOnly := false, true
		var busyHint time.Duration
		for _, err := range errs {
			if err == nil {
				continue
			}
			anyErr = true
			lastErr = err
			r.noteRoutingError(err)
			var be *BusyError
			if errors.As(err, &be) {
				if be.RetryAfter > busyHint {
					busyHint = be.RetryAfter
				}
			} else {
				busyOnly = false
			}
		}
		if !anyErr {
			done := true
			for i := range accepted {
				if !accepted[i] {
					done = false
					break
				}
			}
			if done {
				return accepted, nil
			}
			lastErr = fmt.Errorf("wire: fleet accepted only part of the drain")
			attempt++
			continue
		}
		if busyOnly && busyRounds < routerBusyRounds {
			// Every failing owner is alive but shedding: pace the next round
			// (jittered, floored at the largest hint any owner sent) without
			// burning a routing attempt — the placement is already right.
			busyRounds++
			time.Sleep(backoffDelay(r.RetryBase, r.RetryCap, busyRounds-1, busyHint, r.jitter()))
			continue
		}
		attempt++
	}
	return accepted, lastErr
}

// SealTraceBatches implements pod.SealedStreamer: frames are sealed by
// the current owner's client (the seal fixes the (session, seq) tag and
// the encoding; both stay valid on any hive the frame later reaches).
func (r *Router) SealTraceBatches(programID string, batches [][]*trace.Trace) []pod.SealedBatch {
	r.mu.Lock()
	c := r.clientLocked(r.ownerLocked(programID))
	r.mu.Unlock()
	return c.SealTraceBatches(programID, batches)
}

// SubmitTraceBatches implements pod.TraceStreamer by sealing against the
// owner and draining through the routed sealed path.
func (r *Router) SubmitTraceBatches(programID string, batches [][]*trace.Trace) ([]bool, error) {
	return r.SubmitSealed(r.SealTraceBatches(programID, batches))
}

// SubmitTracesFor implements pod.ProgramSubmitter with redirect-chasing:
// a frame answered with MsgRedirect re-seals nothing — the same traces
// are resubmitted to the new owner (the fresh frame carries a fresh seq;
// the redirected one was never applied anywhere).
func (r *Router) SubmitTracesFor(programID string, traces []*trace.Trace) error {
	var lastErr error
	for attempt := 0; attempt < maxRouteAttempts; attempt++ {
		r.mu.Lock()
		c := r.clientLocked(r.ownerLocked(programID))
		r.mu.Unlock()
		err := c.SubmitTracesFor(programID, traces)
		if err == nil {
			return nil
		}
		lastErr = err
		r.noteRoutingError(err)
		// A busy error surfacing here means the client already exhausted
		// its own backoff rounds; pace once more before the next routing
		// attempt instead of hammering the shedding owner.
		var be *BusyError
		if errors.As(err, &be) {
			time.Sleep(backoffDelay(r.RetryBase, r.RetryCap, attempt, be.RetryAfter, r.jitter()))
		}
	}
	return lastErr
}

// SubmitTraces implements pod.HiveClient: an unsequenced grouped batch
// splits by each trace's program owner. Misdirected remainders are the
// server's problem (it proxies them), so one pass per owner suffices.
func (r *Router) SubmitTraces(traces []*trace.Trace) error {
	r.mu.Lock()
	groups := make(map[string][]*trace.Trace)
	for _, tr := range traces {
		owner := r.ownerLocked(tr.ProgramID)
		groups[owner] = append(groups[owner], tr)
	}
	clients := make(map[string]*Client, len(groups))
	for owner := range groups {
		clients[owner] = r.clientLocked(owner)
	}
	r.mu.Unlock()
	owners := make([]string, 0, len(groups))
	for owner := range groups {
		owners = append(owners, owner)
	}
	sort.Strings(owners)
	var firstErr error
	for _, owner := range owners {
		if err := clients[owner].SubmitTraces(groups[owner]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// FixesSince implements pod.HiveClient, asking the program's owner (a
// misrouted ask is proxied server-side, never redirected). A transport
// failure refreshes placement and retries once: after a re-homing the
// new owner answers from the migrated fix history.
func (r *Router) FixesSince(programID string, version int) ([]fix.Fix, int, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		r.mu.Lock()
		c := r.clientLocked(r.ownerLocked(programID))
		r.mu.Unlock()
		fixes, v, err := c.FixesSince(programID, version)
		if err == nil {
			return fixes, v, nil
		}
		lastErr = err
		r.noteRoutingError(err)
	}
	return nil, version, lastErr
}

// Guidance implements pod.HiveClient with the same owner-first,
// refresh-once policy as FixesSince.
func (r *Router) Guidance(programID string, max int) ([]guidance.TestCase, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		r.mu.Lock()
		c := r.clientLocked(r.ownerLocked(programID))
		r.mu.Unlock()
		cases, err := c.Guidance(programID, max)
		if err == nil {
			return cases, nil
		}
		lastErr = err
		r.noteRoutingError(err)
	}
	return nil, lastErr
}
