// Package wire implements the pod↔hive telemetry protocol over TCP:
// length-prefixed frames carrying a type byte and a payload (binary-encoded
// traces for the hot path, JSON for control messages). The Client satisfies
// pod.HiveClient, so a pod is pointed either at an in-process hive or at a
// remote one without code changes; the Server wraps any pod.HiveClient
// backend (normally *hive.Hive).
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// MsgType discriminates frames.
type MsgType uint8

// Frame types.
const (
	MsgSubmitTraces MsgType = iota + 1
	MsgAck
	MsgGetFixes
	MsgFixes
	MsgGetGuidance
	MsgGuidance
	MsgError
	// MsgSubmitTracesFor is per-program submission: the payload carries the
	// program ID once, followed by the trace batch, so the backend skips its
	// group-by step. Clients may pipeline many of these frames back-to-back;
	// the server acks each in arrival order.
	MsgSubmitTracesFor
	// MsgSubmitTracesSeq is per-program submission tagged with the client's
	// session ID and a per-frame sequence number for exactly-once
	// resubmission: a frame resent after a reconnect carries its original
	// (session, seq), so a backend keeping a per-session dedup window
	// acknowledges already-applied frames without re-ingesting them.
	// Pipelines like MsgSubmitTracesFor.
	MsgSubmitTracesSeq
	// MsgHello opens feature negotiation: the client lists the protocol
	// features it speaks (JSON HelloPayload) and the server answers with the
	// intersection it accepts (MsgHelloAck). A pre-negotiation server
	// answers MsgError ("unknown message type"), which a client reads as
	// the empty feature set — old and new endpoints interoperate in every
	// pairing.
	MsgHello
	// MsgHelloAck carries the server's accepted feature list.
	MsgHelloAck
	// MsgAckBin is the binary acknowledgement for columnar submissions:
	// uvarint accepted count, a flags byte (bit 0 = duplicate), then the
	// error string (empty on success). Sent only in reply to
	// MsgSubmitBatchColumnar — a frame type only negotiated clients emit —
	// so pre-negotiation fleet members never see it; it spares the ingest
	// hot path a JSON marshal and parse per frame in each direction.
	MsgAckBin
	// MsgSubmitBatchColumnar is sequenced per-program submission whose
	// payload, after the (session, seq) prefix, is one columnar-encoded
	// batch (trace.BatchCodec): the program ID rides once in the batch
	// header, fields are column-wise, and a columnar-capable backend
	// ingests the batch through a zero-copy trace.BatchView — journaling
	// those same payload bytes verbatim — without materializing Trace
	// structs. Sent only after the feature was negotiated; dedup semantics
	// are identical to MsgSubmitTracesSeq (the tag spaces are shared).
	MsgSubmitBatchColumnar
	// MsgCoalesced is a mega-frame: its payload is a back-to-back run of
	// complete standard frames (4-byte length, type byte, payload each),
	// written with a single writev so a whole pipelining window costs one
	// syscall instead of one per frame — the syscall bound BENCH_PR5
	// measured on the loopback submit path, and the round-trip bound at WAN
	// distances. The server dispatches each inner frame exactly as if it
	// had arrived alone and answers with one MsgCoalesced carrying the
	// inner replies in order, so per-inner-frame acks (and with them the
	// exactly-once session dedup) are untouched. Nested coalesced frames
	// are rejected. Sent only after FeatureCoalesce was negotiated,
	// alongside a raised frame-size grant.
	MsgCoalesced
	// MsgSubmitBatchCompressed is MsgSubmitBatchColumnar with the batch
	// bytes after the (session, seq) prefix compressed by
	// trace.CompressSlab (uvarint decompressed length + DEFLATE). The
	// compression is transport-only: the server inflates before ingest, so
	// the journaled bytes are the canonical decompressed columnar payload,
	// byte-identical to an uncompressed submission of the same batch. Sent
	// only after FeatureSlabFlate was negotiated; dedup semantics are
	// identical to MsgSubmitBatchColumnar.
	MsgSubmitBatchCompressed
	// MsgRedirect answers a submission for a program this hive does not
	// own under the current placement map: the payload (RedirectPayload)
	// names the owning node and carries the full placement, so the client
	// re-dials the owner and resubmits its parked sealed frames verbatim —
	// the (session, seq) dedup guarantees no acknowledged trace is ever
	// double-applied across the move. Sent only to clients that negotiated
	// FeatureRouting; pre-ring clients are proxied server-side instead.
	MsgRedirect
	// MsgBusy answers a submission the server declines to ingest right now
	// under overload: the payload (BusyPayload) carries a retry-after hint
	// and the shed/limit reason. The frame was NOT applied — the client
	// must resubmit it (verbatim, for sealed frames) after backing off, so
	// exactly-once semantics are untouched: a busy frame is simply a frame
	// that has not been acknowledged yet. Busy replies are emitted by the
	// per-connection worker in the reply slot the frame's ack would have
	// occupied, so pipelined clients keep matching acks to frames by order.
	// Sent only to clients that negotiated FeatureBusy; pre-PR9 clients are
	// throttled transparently by deferred reads and in-handler pacing
	// instead.
	MsgBusy
)

// FeatureColumnarBatch names the columnar-batch submission feature in
// hello negotiation.
const FeatureColumnarBatch = "columnar-batch"

// FeatureCoalesce names the mega-frame (MsgCoalesced) feature in hello
// negotiation. Granting it also grants the hello's frame-size raise.
const FeatureCoalesce = "coalesced-frames"

// FeatureSlabFlate names the compressed columnar submission
// (MsgSubmitBatchCompressed) feature in hello negotiation.
const FeatureSlabFlate = "slab-flate"

// FeatureRouting names the consistent-hash routing feature in hello
// negotiation: a server that grants it advertises its placement map in
// the hello ack and answers misdirected submissions with MsgRedirect
// instead of proxying them. Only granted by servers that actually hold a
// placement (a single unsharded hive stays silent, and clients route
// everything to it).
const FeatureRouting = "ring-routing"

// FeatureBusy names the explicit-backpressure feature in hello
// negotiation: a server that grants it may answer any submission with
// MsgBusy (a retry-after hint) instead of an ack when admission control
// or hive load shedding declines the batch. Clients that did not offer
// it never see MsgBusy — the server throttles them by deferred reads and
// in-handler pacing instead, so pre-PR9 fleets degrade transparently.
const FeatureBusy = "busy-retry"

// MaxFrameSize bounds a frame; larger frames are rejected as hostile.
// Connections that negotiated a larger limit via the hello exchange accept
// frames up to the granted size (at most MaxCoalescedFrameSize) instead.
const MaxFrameSize = 16 << 20

// MaxCoalescedFrameSize caps the frame-size raise a hello exchange may
// grant: room for a full pipelining window of coalesced maximum-size inner
// frames without letting a hostile peer demand unbounded buffers.
const MaxCoalescedFrameSize = 64 << 20

// ErrFrame is wrapped by framing failures.
var ErrFrame = errors.New("wire: bad frame")

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload)+1 > MaxFrameSize {
		return fmt.Errorf("%w: payload %d exceeds max", ErrFrame, len(payload))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrameHeader reads and validates one frame header, returning the type
// and payload size.
func readFrameHeader(r io.Reader) (MsgType, int, error) {
	return readFrameHeaderLimit(r, MaxFrameSize)
}

// readFrameHeaderLimit is readFrameHeader under a negotiated frame-size
// limit.
func readFrameHeaderLimit(r io.Reader, limit int) (MsgType, int, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, err
	}
	size := binary.BigEndian.Uint32(hdr[:4])
	if size == 0 || size > uint32(limit) {
		return 0, 0, fmt.Errorf("%w: size %d", ErrFrame, size)
	}
	return MsgType(hdr[4]), int(size - 1), nil
}

// ReadFrame reads one frame.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	t, size, err := readFrameHeader(r)
	if err != nil {
		return 0, nil, err
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return t, payload, nil
}

// --- control-message payloads (JSON) ---

// AckPayload acknowledges a submission.
type AckPayload struct {
	Accepted int    `json:"accepted"`
	Error    string `json:"error,omitempty"`
	// Dup reports that a sequenced frame was already applied (exactly-once
	// resubmission): the batch counts as accepted but was not re-ingested.
	Dup bool `json:"dup,omitempty"`
}

// HelloPayload lists the features a client offers. MaxFrame, when
// positive, asks the server to raise the connection's frame-size limit
// (a client offering FeatureCoalesce asks for room for mega-frames); old
// servers ignore the unknown field, so the request degrades silently.
type HelloPayload struct {
	Features []string `json:"features"`
	MaxFrame int      `json:"maxFrame,omitempty"`
}

// HelloAckPayload lists the features the server accepted. MaxFrame, when
// positive, is the frame-size limit the server granted for the rest of the
// connection — min(requested, server cap), never below MaxFrameSize; zero
// (an old server, or no raise requested) means the default limit stands.
// Placement, set iff FeatureRouting was granted, is the server's current
// placement map; pre-ring clients ignore the unknown field.
type HelloAckPayload struct {
	Features  []string          `json:"features"`
	MaxFrame  int               `json:"maxFrame,omitempty"`
	Placement *PlacementPayload `json:"placement,omitempty"`
}

// PlacementPayload is the wire form of a ring.Map: the versioned node set
// plus the hash parameters, enough for any receiver to rebuild the exact
// same circle (ownership is a pure function of these fields and the key).
type PlacementPayload struct {
	Version uint64   `json:"version"`
	Nodes   []string `json:"nodes"`
	VNodes  int      `json:"vnodes"`
	Seed    uint64   `json:"seed"`
}

// RedirectPayload is the body of MsgRedirect: the program the frame was
// for, the node that owns it under the server's placement, and that
// placement in full so one redirect is enough to re-route every program.
type RedirectPayload struct {
	ProgramID string            `json:"programId"`
	Owner     string            `json:"owner"`
	Placement *PlacementPayload `json:"placement,omitempty"`
}

// RedirectError is the typed client-side form of MsgRedirect: the
// submission was not applied because this server does not own the program.
// Callers (the Router, or operators reading retry-exhausted errors) use
// Owner and Version to distinguish "owner moved" from "owner down".
type RedirectError struct {
	ProgramID string
	Owner     string
	Version   uint64
	Placement *PlacementPayload
}

func (e *RedirectError) Error() string {
	return fmt.Sprintf("wire: program %s is owned by %s (placement v%d)", e.ProgramID, e.Owner, e.Version)
}

// BusyPayload is the body of MsgBusy: how long the client should wait
// before resubmitting the frame, and why it was declined (rate limit,
// queue pressure, or a hive shed reason — diagnostics, not protocol).
type BusyPayload struct {
	RetryAfterMs int64  `json:"retryAfterMs"`
	Reason       string `json:"reason,omitempty"`
}

// BusyError is the typed client-side form of MsgBusy: the submission was
// not applied; the server asks the client to back off and resubmit. The
// client's retry machinery honors RetryAfter as a floor under its
// jittered exponential backoff; the Router treats it as "owner alive but
// shedding" and does NOT re-poll seeds for a new placement.
type BusyError struct {
	RetryAfter time.Duration
	Reason     string
}

func (e *BusyError) Error() string {
	if e.Reason == "" {
		return fmt.Sprintf("wire: server busy (retry after %v)", e.RetryAfter)
	}
	return fmt.Sprintf("wire: server busy (retry after %v): %s", e.RetryAfter, e.Reason)
}

// GetFixesPayload requests fixes.
type GetFixesPayload struct {
	ProgramID string `json:"programId"`
	Version   int    `json:"version"`
}

// FixesPayload returns fixes as raw JSON (fix.Fix marshals itself).
type FixesPayload struct {
	Fixes   []json.RawMessage `json:"fixes"`
	Version int               `json:"version"`
	Error   string            `json:"error,omitempty"`
}

// GetGuidancePayload requests steering test cases.
type GetGuidancePayload struct {
	ProgramID string `json:"programId"`
	Max       int    `json:"max"`
}

// GuidancePayload returns test cases.
type GuidancePayload struct {
	Cases []json.RawMessage `json:"cases"`
	Error string            `json:"error,omitempty"`
}

// ErrorPayload reports a server-side failure for unknown requests.
type ErrorPayload struct {
	Error string `json:"error"`
}

// encodeTraceBatch packs traces: uvarint count, then length-prefixed
// binary-encoded traces.
func encodeTraceBatch(encoded [][]byte) []byte {
	size := binary.MaxVarintLen64
	for _, e := range encoded {
		size += binary.MaxVarintLen64 + len(e)
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, uint64(len(encoded)))
	for _, e := range encoded {
		buf = binary.AppendUvarint(buf, uint64(len(e)))
		buf = append(buf, e...)
	}
	return buf
}

// encodeTraceBatchFor packs a per-program batch: uvarint programID length,
// programID bytes, then the standard trace batch encoding.
func encodeTraceBatchFor(programID string, encoded [][]byte) []byte {
	batch := encodeTraceBatch(encoded)
	buf := make([]byte, 0, binary.MaxVarintLen64+len(programID)+len(batch))
	buf = binary.AppendUvarint(buf, uint64(len(programID)))
	buf = append(buf, programID...)
	return append(buf, batch...)
}

// encodeTraceBatchSeq packs a sequenced per-program batch: uvarint session
// length, session bytes, uvarint seq, then the per-program batch encoding.
func encodeTraceBatchSeq(session string, seq uint64, programID string, encoded [][]byte) []byte {
	rest := encodeTraceBatchFor(programID, encoded)
	buf := make([]byte, 0, binary.MaxVarintLen64*2+len(session)+len(rest))
	buf = appendSeqPrefix(buf, session, seq)
	return append(buf, rest...)
}

// encodeAckBin packs a binary ack.
func encodeAckBin(accepted int, dup bool, errMsg string) []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64+1+len(errMsg))
	buf = binary.AppendUvarint(buf, uint64(accepted))
	var flags byte
	if dup {
		flags |= 1
	}
	buf = append(buf, flags)
	return append(buf, errMsg...)
}

// decodeAckBin unpacks a binary ack.
func decodeAckBin(buf []byte) (accepted int, dup bool, errMsg string, err error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || len(buf) < sz+1 {
		return 0, false, "", fmt.Errorf("%w: binary ack", ErrFrame)
	}
	return int(n), buf[sz]&1 == 1, string(buf[sz+1:]), nil
}

// appendSeqPrefix writes the (session, seq) exactly-once tag that both
// sequenced frame flavors share.
func appendSeqPrefix(buf []byte, session string, seq uint64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(session)))
	buf = append(buf, session...)
	return binary.AppendUvarint(buf, seq)
}

// decodeSeqPrefix splits a sequenced payload into its tag and the rest.
func decodeSeqPrefix(buf []byte) (session string, seq uint64, rest []byte, err error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n > uint64(len(buf[sz:])) {
		return "", 0, nil, fmt.Errorf("%w: session id", ErrFrame)
	}
	session = string(buf[sz : sz+int(n)])
	buf = buf[sz+int(n):]
	seq, sz = binary.Uvarint(buf)
	if sz <= 0 {
		return "", 0, nil, fmt.Errorf("%w: sequence number", ErrFrame)
	}
	return session, seq, buf[sz:], nil
}

// decodeTraceBatchSeq unpacks a sequenced per-program batch.
func decodeTraceBatchSeq(buf []byte) (session string, seq uint64, programID string, raws [][]byte, err error) {
	session, seq, rest, err := decodeSeqPrefix(buf)
	if err != nil {
		return "", 0, "", nil, err
	}
	programID, raws, err = decodeTraceBatchFor(rest)
	return session, seq, programID, raws, err
}

// decodeTraceBatchFor unpacks a per-program batch into the program ID and
// raw per-trace bytes.
func decodeTraceBatchFor(buf []byte) (string, [][]byte, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n > uint64(len(buf[sz:])) {
		return "", nil, fmt.Errorf("%w: program id", ErrFrame)
	}
	programID := string(buf[sz : sz+int(n)])
	raws, err := decodeTraceBatch(buf[sz+int(n):])
	if err != nil {
		return "", nil, err
	}
	return programID, raws, nil
}

// decodeTraceBatch unpacks a trace batch into raw per-trace bytes.
func decodeTraceBatch(buf []byte) ([][]byte, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("%w: batch count", ErrFrame)
	}
	buf = buf[n:]
	if count > uint64(len(buf)) {
		return nil, fmt.Errorf("%w: implausible batch count %d", ErrFrame, count)
	}
	out := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		size, n := binary.Uvarint(buf)
		if n <= 0 || size > uint64(len(buf[n:])) {
			return nil, fmt.Errorf("%w: trace %d size", ErrFrame, i)
		}
		buf = buf[n:]
		out = append(out, buf[:size])
		buf = buf[size:]
	}
	return out, nil
}
