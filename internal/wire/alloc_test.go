package wire

import (
	"bytes"
	"testing"

	"repro/internal/race"
)

// TestAllocsForEachInner pins the zero-copy contract of the mega-frame
// splitter: walking a 16-frame coalesced payload allocates nothing — inner
// payloads are sub-slices of the buffer the outer frame was read into.
func TestAllocsForEachInner(t *testing.T) {
	if race.Enabled {
		t.Skip("alloc counts are skewed under the race detector")
	}
	frames := make([][]byte, 16)
	for i := range frames {
		frames[i] = bytes.Repeat([]byte{byte(i)}, 512+i)
	}
	payload := buildCoalesced(frames...)
	sink := 0
	avg := testing.AllocsPerRun(1000, func() {
		if err := forEachInner(payload, func(_ MsgType, inner []byte) error {
			sink += len(inner)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("splitting a 16-frame mega-frame costs %.1f allocs; want 0", avg)
	}
	_ = sink
}
