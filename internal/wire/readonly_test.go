package wire

// Wire mapping of the hive's read-only breaker (PR 10): a backend that
// refuses ingest with pod.ErrReadOnly after persistent journal write
// failures. Negotiated (FeatureBusy) clients get MsgBusy and resubmit the
// frame verbatim; legacy clients get the error ack immediately with NO
// in-handler pacing — read-only persists until a checkpoint lands, so
// sleeping inside the handler cannot help. Either way the refusal is
// counted on the server, with or without admission control configured.

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fix"
	"repro/internal/guidance"
	"repro/internal/leaktest"
	"repro/internal/pod"
	"repro/internal/trace"
)

// readOnlyBackend refuses the first N session submissions with
// pod.ErrReadOnly — a hive whose journal breaker is open — then admits
// (the checkpoint landed).
type readOnlyBackend struct {
	remaining atomic.Int64
	calls     atomic.Int64
}

func (d *readOnlyBackend) SubmitTracesSession(session string, seq uint64, programID string, traces []*trace.Trace) (bool, error) {
	d.calls.Add(1)
	if d.remaining.Add(-1) >= 0 {
		return false, fmt.Errorf("stub hive: program %s refuses ingest: %w", programID, pod.ErrReadOnly)
	}
	return false, nil
}
func (d *readOnlyBackend) SubmitTraces([]*trace.Trace) error              { return nil }
func (d *readOnlyBackend) FixesSince(string, int) ([]fix.Fix, int, error) { return nil, 0, nil }
func (d *readOnlyBackend) Guidance(string, int) ([]guidance.TestCase, error) {
	return nil, nil
}

// TestReadOnlyBusyNegotiated: a FeatureBusy client sees MsgBusy for every
// read-only refusal and resubmits until the breaker closes; the server
// counts the refusals under ReadOnlyBusy, not BusyReplies — operators must
// be able to tell "overloaded" from "disk is failing".
func TestReadOnlyBusyNegotiated(t *testing.T) {
	leaktest.Check(t)
	backend := &readOnlyBackend{}
	backend.remaining.Store(3)
	srv := NewServer(backend)
	srv.Logf = t.Logf
	srv.Admission = &Admission{RetryAfter: 2 * time.Millisecond}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := buildCrashy(t)
	r := NewRouter(addr)
	r.RetryBase = time.Millisecond
	r.RetryCap = 10 * time.Millisecond
	r.BusyRetries = 5
	defer r.Close()

	tr := captureWireTrace(t, p, "ro-pod", []int64{50})
	if err := r.SubmitTracesFor(p.ID, []*trace.Trace{tr}); err != nil {
		t.Fatalf("submission through a recovering read-only owner failed: %v", err)
	}
	if got := backend.calls.Load(); got != 4 {
		t.Fatalf("backend saw %d calls, want 4 (3 read-only refusals + 1 admit)", got)
	}
	as := srv.AdmissionStats()
	if as.ReadOnlyBusy != 3 {
		t.Fatalf("ReadOnlyBusy = %d, want 3", as.ReadOnlyBusy)
	}
	if as.BusyReplies != 0 {
		t.Fatalf("read-only refusals leaked into BusyReplies (%d); the reasons must stay distinguishable", as.BusyReplies)
	}
}

// TestReadOnlyLegacyNoPacing: a legacy (pre-FeatureBusy) client gets the
// error ack on the first refusal — exactly one backend call, no in-handler
// retry loop — and the refusal is counted even though the server has no
// admission control at all.
func TestReadOnlyLegacyNoPacing(t *testing.T) {
	leaktest.Check(t)
	backend := &readOnlyBackend{}
	backend.remaining.Store(1 << 30) // the breaker never closes
	srv := NewServer(backend)
	srv.Logf = t.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := buildCrashy(t)
	tr := captureWireTrace(t, p, "legacy-pod", []int64{51})
	// A legacy client is one that never ran hello: raw frames, no
	// FeatureBusy, so MsgBusy is not an answer it understands.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	start := time.Now()
	payload := encodeTraceBatchSeq("legacy-sess", 1, p.ID, [][]byte{trace.Encode(tr)})
	if err := WriteFrame(conn, MsgSubmitTracesSeq, payload); err != nil {
		t.Fatal(err)
	}
	msgType, resp, err := ReadFrame(conn)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != MsgAck {
		t.Fatalf("legacy refusal answered with message type %d, want MsgAck", msgType)
	}
	var ack AckPayload
	if err := json.Unmarshal(resp, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Error == "" || ack.Dup {
		t.Fatalf("read-only refusal did not surface: %+v", ack)
	}
	if !strings.Contains(ack.Error, "read-only") {
		t.Fatalf("error hides the read-only cause: %q", ack.Error)
	}
	if got := backend.calls.Load(); got != 1 {
		t.Fatalf("backend saw %d calls, want exactly 1 (no in-handler pacing for a persistent condition)", got)
	}
	// The deferral path sleeps hint<<i across 3 retries (~175ms at the
	// default hint); the read-only path must not.
	if elapsed > defaultRetryAfter {
		t.Fatalf("legacy read-only ack took %v; the handler paced a non-transient condition", elapsed)
	}
	if got := srv.AdmissionStats().ReadOnlyBusy; got != 1 {
		t.Fatalf("ReadOnlyBusy = %d on an admission-less server, want 1", got)
	}
}
