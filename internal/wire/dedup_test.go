package wire

import (
	"errors"

	"io"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/hive"
	"repro/internal/leaktest"
	"repro/internal/pod"
	"repro/internal/prog"
	"repro/internal/proggen"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ackProxy sits between a wire client and server and kills the first
// connection after forwarding a fixed number of acknowledgements (dropping
// the next one) — the deterministic reproduction of "the link died after
// the server ingested a frame but before its ack reached the client".
// Later connections pipe transparently.
type ackProxy struct {
	t           *testing.T
	ln          net.Listener
	backendAddr string
	// forwardAcks is how many acks a flaky connection relays before the
	// next ack is dropped and both sides are closed.
	forwardAcks int
	// flakyConns is how many leading connections misbehave that way; later
	// connections pipe transparently. Two flaky connections defeat both the
	// original attempt and the transparent retry — the cross-drain failure
	// mode.
	flakyConns int

	mu    sync.Mutex
	conns int
	wg    sync.WaitGroup
}

func newAckProxy(t *testing.T, backendAddr string, forwardAcks int) *ackProxy {
	return newFlakyProxy(t, backendAddr, forwardAcks, 1)
}

func newFlakyProxy(t *testing.T, backendAddr string, forwardAcks, flakyConns int) *ackProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &ackProxy{t: t, ln: ln, backendAddr: backendAddr, forwardAcks: forwardAcks, flakyConns: flakyConns}
	go p.serve()
	t.Cleanup(func() {
		_ = ln.Close()
		p.wg.Wait()
	})
	return p
}

func (p *ackProxy) addr() string { return p.ln.Addr().String() }

func (p *ackProxy) serve() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		idx := p.conns
		p.conns++
		p.mu.Unlock()
		p.wg.Add(1)
		go p.pipe(conn, idx)
	}
}

func (p *ackProxy) pipe(client net.Conn, idx int) {
	defer p.wg.Done()
	server, err := net.Dial("tcp", p.backendAddr)
	if err != nil {
		_ = client.Close()
		return
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // client -> server: transparent
		defer wg.Done()
		_, _ = io.Copy(server, client)
		if tc, ok := server.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
	}()
	go func() { // server -> client: frame-aware, flaky on the first conn
		defer wg.Done()
		forwarded := 0
		for {
			msgType, payload, err := ReadFrame(server)
			if err != nil {
				return
			}
			if idx < p.flakyConns && forwarded == p.forwardAcks {
				// Drop this ack and kill the link: the server applied the
				// frame, the client never hears about it.
				_ = client.Close()
				_ = server.Close()
				return
			}
			if err := WriteFrame(client, msgType, payload); err != nil {
				return
			}
			forwarded++
		}
	}()
	wg.Wait()
	_ = client.Close()
	_ = server.Close()
}

// dedupFixture serves a real hive over TCP behind an ackProxy.
func dedupFixture(t *testing.T, forwardAcks int) (*hive.Hive, *prog.Program, *Client) {
	t.Helper()
	p, _, err := proggen.Generate(proggen.Spec{Seed: 7001, Depth: 4, NumInputs: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := hive.New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(h)
	srv.Logf = func(string, ...any) {}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	proxy := newAckProxy(t, addr, forwardAcks)
	client := Dial(proxy.addr())
	t.Cleanup(func() { _ = client.Close() })
	return h, p, client
}

func makeBatches(t *testing.T, p *prog.Program, batches, perBatch int) [][]*trace.Trace {
	t.Helper()
	rng := stats.NewRNG(5)
	out := make([][]*trace.Trace, batches)
	seq := uint64(0)
	for i := range out {
		for j := 0; j < perBatch; j++ {
			input := []int64{rng.Int63n(256)}
			col := trace.NewCollector(p, trace.CaptureFull, 0, 1)
			m, err := prog.NewMachine(p, prog.Config{Input: input, Observer: col})
			if err != nil {
				t.Fatal(err)
			}
			res := m.Run()
			seq++
			out[i] = append(out[i], col.Finish("dedup-pod", seq, res, input, trace.PrivacyHashed, "fleet"))
		}
	}
	return out
}

// TestStreamResubmitExactlyOnce kills the connection mid-stream after the
// server ingested frames whose acks never arrived; the client's transparent
// retry resends them with their original sequence numbers and the hive
// ingests every batch exactly once.
func TestStreamResubmitExactlyOnce(t *testing.T) {
	const (
		batches  = 10
		perBatch = 4
		acksSeen = 4 // client learns of 4 frames; the rest are in limbo
	)
	h, p, client := dedupFixture(t, acksSeen)
	all := makeBatches(t, p, batches, perBatch)

	accepted, err := client.SubmitTraceBatches(p.ID, all)
	if err != nil {
		t.Fatalf("SubmitTraceBatches: %v", err)
	}
	for i, ok := range accepted {
		if !ok {
			t.Fatalf("batch %d not accepted", i)
		}
	}
	st, err := h.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(batches * perBatch); st.Ingested != want {
		t.Fatalf("hive ingested %d traces, want exactly %d", st.Ingested, want)
	}
}

// TestSubmitForLostAckExactlyOnce loses the single ack of a per-program
// submission after the server applied it; the client's retry must not
// double-ingest.
func TestSubmitForLostAckExactlyOnce(t *testing.T) {
	h, p, client := dedupFixture(t, 0) // drop the very first ack
	batch := makeBatches(t, p, 1, 6)[0]
	if err := client.SubmitTracesFor(p.ID, batch); err != nil {
		t.Fatalf("SubmitTracesFor: %v", err)
	}
	st, err := h.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(batch)); st.Ingested != want {
		t.Fatalf("hive ingested %d traces, want exactly %d", st.Ingested, want)
	}
}

// TestClientSurfacesUnderlyingError asserts the retry-exhausted error wraps
// the real transport failure instead of a generic unreachability string.
func TestClientSurfacesUnderlyingError(t *testing.T) {
	// A listener that accepts and instantly closes: writes may succeed, the
	// response read hits EOF, twice.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			_ = conn.Close()
		}
	}()
	client := Dial(ln.Addr().String())
	defer client.Close()
	_, gerr := client.Guidance("nope", 1)
	if gerr == nil {
		t.Fatal("expected an error from a dead server")
	}
	if !errors.Is(gerr, io.EOF) && !strings.Contains(gerr.Error(), "connection reset") {
		t.Fatalf("error does not surface the underlying transport failure: %v", gerr)
	}
	if !strings.Contains(gerr.Error(), "unreachable after retry") {
		t.Fatalf("error lost the retry context: %v", gerr)
	}

	batch := [][]*trace.Trace{{{ProgramID: "x"}}}
	_, serr := client.SubmitTraceBatches("x", batch)
	if serr == nil {
		t.Fatal("expected an error from a dead server")
	}
	if !errors.Is(serr, io.EOF) && !strings.Contains(serr.Error(), "connection reset") &&
		!strings.Contains(serr.Error(), "broken pipe") {
		t.Fatalf("stream error does not surface the underlying transport failure: %v", serr)
	}
}

// TestCrossDrainResubmitExactlyOnce defeats a drain's transparent retry
// too: the proxy kills the first two connections after one ack each, so
// the buffered client's first Drain fails outright with frames delivered
// but unacknowledged. Those frames stay sealed with their original
// (session, seq) tags; the next Drain re-submits them verbatim over a
// healthy link, and the hive — which already ingested them — acknowledges
// without re-applying: exactly-once across drains, not just within one.
func TestCrossDrainResubmitExactlyOnce(t *testing.T) {
	p, _, err := proggen.Generate(proggen.Spec{Seed: 7002, Depth: 4, NumInputs: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := hive.New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(h)
	srv.Logf = func(string, ...any) {}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	proxy := newFlakyProxy(t, addr, 1, 2) // both attempts die after 1 ack
	client := Dial(proxy.addr())
	t.Cleanup(func() { _ = client.Close() })
	// One chunk per mega-frame: the proxy's per-ack kill schedule keeps
	// meaning "one chunk acked, the rest in limbo" on the coalesced path.
	client.CoalesceDepth = 1

	buf := pod.NewBufferedFor(client, p.ID)
	// Three stream chunks' worth of traces (256 per chunk).
	batches := makeBatches(t, p, 3, 256)
	total := 0
	for _, b := range batches {
		if err := buf.SubmitTraces(b); err != nil {
			t.Fatal(err)
		}
		total += len(b)
	}

	if err := buf.Drain(); err == nil {
		t.Fatal("first drain succeeded; proxy should have killed both attempts")
	}
	if pend := buf.Pending(); pend == 0 || pend%256 != 0 {
		t.Fatalf("pending after failed drain = %d, want a whole number of sealed frames", pend)
	}
	// The link heals (connection #2 pipes transparently).
	if err := buf.Drain(); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if pend := buf.Pending(); pend != 0 {
		t.Fatalf("pending after healed drain = %d", pend)
	}
	st, err := h.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != int64(total) {
		t.Fatalf("hive ingested %d traces, want exactly %d (cross-drain duplicate?)", st.Ingested, total)
	}
}

// TestSealedResubmissionUnderShedding puts the load shedder inside the
// resubmission loop and proves the two mechanisms compose: session dedup
// answers replayed sealed frames before the shedder can see them, shed
// batches are acked without being applied or session-marked, and once
// pressure clears the identical sealed frames land — exactly-once for
// everything admitted, at-least-once for everything shed.
func TestSealedResubmissionUnderShedding(t *testing.T) {
	leaktest.Check(t)
	p, _, err := proggen.Generate(proggen.Spec{Seed: 7001, Depth: 4, NumInputs: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := hive.New("fleet")
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	var pressure atomic.Uint64 // math.Float64bits, settable mid-test
	h.SetShedPolicy(&hive.ShedPolicy{Watermark: 0.5})
	h.SetPressureSource(func() float64 { return math.Float64frombits(pressure.Load()) })
	srv := NewServer(h)
	srv.Logf = func(string, ...any) {}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	proxy := newAckProxy(t, addr, 4) // first conn dies with frames in limbo
	client := Dial(proxy.addr())
	t.Cleanup(func() { _ = client.Close() })

	// Drain 1, pressure zero: the flaky link forces a transparent retry of
	// the limbo frames; dedup keeps ingestion exact.
	const batches, perBatch = 10, 4
	sealed := client.SealTraceBatches(p.ID, makeBatches(t, p, batches, perBatch))
	accepted, err := client.SubmitSealed(sealed)
	if err != nil {
		t.Fatalf("drain 1: %v", err)
	}
	for i, ok := range accepted {
		if !ok {
			t.Fatalf("drain 1: batch %d unacked", i)
		}
	}
	ingestedNow := func() int64 {
		st, err := h.ProgramStats(p.ID)
		if err != nil {
			t.Fatal(err)
		}
		return st.Ingested
	}
	if got := ingestedNow(); got != batches*perBatch {
		t.Fatalf("drain 1 ingested %d, want %d", got, batches*perBatch)
	}

	// Paranoid replay of the SAME sealed frames at high pressure: every
	// frame is a session duplicate and must be dup-acked by the dedup
	// window before the shedder prices it.
	pressure.Store(math.Float64bits(0.9))
	accepted, err = client.SubmitSealed(sealed)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	for i, ok := range accepted {
		if !ok {
			t.Fatalf("replay: batch %d unacked", i)
		}
	}
	if got := ingestedNow(); got != batches*perBatch {
		t.Fatalf("replay re-ingested: %d traces", got)
	}
	if ss := h.ShedStats(); ss.ShedDuplicate != 0 || ss.ShedCovered != 0 {
		t.Fatalf("session-dup frames reached the shedder: %+v", ss)
	}

	// Fresh frames carrying already-covered work at high pressure: acked
	// but shed, and — critically — never session-marked.
	shedSealed := client.SealTraceBatches(p.ID, makeBatches(t, p, 5, perBatch))
	accepted, err = client.SubmitSealed(shedSealed)
	if err != nil {
		t.Fatalf("shed drain: %v", err)
	}
	for i, ok := range accepted {
		if !ok {
			t.Fatalf("shed drain: batch %d unacked", i)
		}
	}
	if got := ingestedNow(); got != batches*perBatch {
		t.Fatalf("shed drain ingested %d, want unchanged %d", got, batches*perBatch)
	}
	if ss := h.ShedStats(); ss.ShedDuplicate+ss.ShedCovered != 5 {
		t.Fatalf("want all 5 covered batches shed, got %+v", ss)
	}

	// Pressure clears; the identical sealed frames now land: the shed path
	// left no session mark behind to swallow them.
	pressure.Store(0)
	accepted, err = client.SubmitSealed(shedSealed)
	if err != nil {
		t.Fatalf("post-shed drain: %v", err)
	}
	for i, ok := range accepted {
		if !ok {
			t.Fatalf("post-shed drain: batch %d unacked", i)
		}
	}
	if got, want := ingestedNow(), int64((batches+5)*perBatch); got != want {
		t.Fatalf("post-shed drain ingested %d, want %d", got, want)
	}
}
