package wire

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/hive"
	"repro/internal/leaktest"
	"repro/internal/pod"
	"repro/internal/prog"
	"repro/internal/trace"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgAck, []byte(`{"accepted":3}`)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgAck || string(payload) != `{"accepted":3}` {
		t.Fatalf("got %v %q", typ, payload)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestTraceBatchRoundTrip(t *testing.T) {
	batch := [][]byte{[]byte("aaa"), []byte(""), []byte("cc")}
	enc := encodeTraceBatch(batch)
	got, err := decodeTraceBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got[0]) != "aaa" || len(got[1]) != 0 || string(got[2]) != "cc" {
		t.Fatalf("got %q", got)
	}
}

func TestTraceBatchRejectsGarbage(t *testing.T) {
	if _, err := decodeTraceBatch([]byte{0xFF}); err == nil {
		t.Error("truncated varint accepted")
	}
	if _, err := decodeTraceBatch([]byte{200, 1, 2}); err == nil {
		t.Error("implausible count accepted")
	}
}

// buildCrashy crashes for input in [100,110).
func buildCrashy(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("crashy-wire", 1)
	hi, end := b.NewLabel(), b.NewLabel()
	b.Input(0, 0)
	b.BrImm(0, prog.CmpGE, 100, hi)
	b.Jmp(end)
	b.Bind(hi)
	inner := b.NewLabel()
	b.BrImm(0, prog.CmpLT, 110, inner)
	b.Jmp(end)
	b.Bind(inner)
	b.Const(1, 0)
	b.Div(2, 1, 1)
	b.Bind(end)
	b.Halt()
	return b.MustBuild()
}

func startServer(t *testing.T) (*hive.Hive, string, func()) {
	t.Helper()
	h := hive.New("fleet")
	srv := NewServer(h)
	srv.Logf = t.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return h, addr, func() { _ = srv.Close() }
}

func TestEndToEndOverTCP(t *testing.T) {
	leaktest.Check(t)
	p := buildCrashy(t)
	h, addr, stop := startServer(t)
	defer stop()
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}

	client := Dial(addr)
	defer client.Close()

	pd, err := pod.New(pod.Config{
		Program: p, ID: "tcp-pod", Hive: client,
		Privacy: trace.PrivacyHashed, Salt: "fleet", BatchSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Crash over the network; fix comes back over the network.
	if _, err := pd.RunOnce([]int64{105}); err != nil {
		t.Fatal(err)
	}
	st, err := h.ProgramStats(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != 1 || st.FixCount != 1 {
		t.Fatalf("hive stats = %+v", st)
	}
	if err := pd.SyncFixes(); err != nil {
		t.Fatal(err)
	}
	res, err := pd.RunOnce([]int64{105})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != prog.OutcomeOK {
		t.Fatalf("post-fix outcome over TCP = %v", res.Outcome)
	}

	// Guidance over the network.
	if _, err := pd.PullGuidance(4); err != nil {
		t.Fatal(err)
	}
}

func TestServerErrorsSurfaceAsClientErrors(t *testing.T) {
	_, addr, stop := startServer(t)
	defer stop()
	client := Dial(addr)
	defer client.Close()

	// Unregistered program.
	err := client.SubmitTraces([]*trace.Trace{{ProgramID: "ghost"}})
	if err == nil || !strings.Contains(err.Error(), "unknown program") {
		t.Fatalf("err = %v, want unknown-program", err)
	}
	if _, _, err := client.FixesSince("ghost", 0); err == nil {
		t.Fatal("FixesSince for ghost program should error")
	}
	if _, err := client.Guidance("ghost", 1); err == nil {
		t.Fatal("Guidance for ghost program should error")
	}
}

func TestManyConcurrentClients(t *testing.T) {
	leaktest.Check(t)
	p := buildCrashy(t)
	h, addr, stop := startServer(t)
	defer stop()
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}

	const pods = 16
	const runs = 20
	var wg sync.WaitGroup
	errs := make(chan error, pods)
	for i := 0; i < pods; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := Dial(addr)
			defer client.Close()
			pd, err := pod.New(pod.Config{
				Program: p, ID: "conc-" + string(rune('a'+i)), Hive: client,
				Salt: "fleet", Seed: uint64(i), BatchSize: 4,
			})
			if err != nil {
				errs <- err
				return
			}
			for r := int64(0); r < runs; r++ {
				if _, err := pd.RunOnce([]int64{r * 7 % 256}); err != nil {
					errs <- err
					return
				}
			}
			errs <- pd.Flush()
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st, _ := h.ProgramStats(p.ID)
	if st.Ingested != pods*runs {
		t.Fatalf("ingested = %d, want %d", st.Ingested, pods*runs)
	}
}

func TestClientReconnects(t *testing.T) {
	p := buildCrashy(t)
	h, addr, stop := startServer(t)
	if err := h.RegisterProgram(p); err != nil {
		t.Fatal(err)
	}
	client := Dial(addr)
	defer client.Close()

	if err := client.SubmitTraces(nil); err != nil {
		t.Fatal(err)
	}
	// Kill the server; a new one on the same address picks up.
	stop()
	srv2 := NewServer(h)
	srv2.Logf = t.Logf
	if _, err := srv2.Listen(addr); err != nil {
		t.Skipf("address reuse unavailable: %v", err)
	}
	defer srv2.Close()

	if err := client.SubmitTraces(nil); err != nil {
		t.Fatalf("client did not reconnect: %v", err)
	}
}

func TestConcurrentClientsAcrossPrograms(t *testing.T) {
	// Multi-client ingest across several registered programs at once: each
	// program is its own hive shard, so concurrent connections reporting
	// about different programs must neither contend incorrectly nor bleed
	// state — and the crash signature each program's fleet hits must mint
	// exactly one fix (single-flight over the wire).
	h, addr, stop := startServer(t)
	defer stop()

	const programs = 4
	progs := make([]*prog.Program, programs)
	for i := range progs {
		b := prog.NewBuilder("wire-multi-"+string(rune('a'+i)), 1)
		hi, end := b.NewLabel(), b.NewLabel()
		b.Input(0, 0)
		b.BrImm(0, prog.CmpGE, 100, hi)
		b.Jmp(end)
		b.Bind(hi)
		inner := b.NewLabel()
		b.BrImm(0, prog.CmpLT, 110, inner)
		b.Jmp(end)
		b.Bind(inner)
		b.Const(1, 0)
		b.Div(2, 1, 1)
		b.Bind(end)
		b.Halt()
		progs[i] = b.MustBuild()
		if err := h.RegisterProgram(progs[i]); err != nil {
			t.Fatal(err)
		}
	}

	const clientsPerProgram = 3
	const runs = 30
	var wg sync.WaitGroup
	errs := make(chan error, programs*clientsPerProgram)
	for pi := 0; pi < programs; pi++ {
		for c := 0; c < clientsPerProgram; c++ {
			wg.Add(1)
			go func(pi, c int) {
				defer wg.Done()
				client := Dial(addr)
				defer client.Close()
				pd, err := pod.New(pod.Config{
					Program: progs[pi],
					ID:      fmt.Sprintf("mp-%d-%d", pi, c),
					Hive:    client, Salt: "fleet",
					Seed: uint64(pi*10 + c), BatchSize: 4,
				})
				if err != nil {
					errs <- err
					return
				}
				for r := 0; r < runs; r++ {
					// Sweep through the crash zone once per client.
					if _, err := pd.RunOnce([]int64{int64((r * 7) % 128)}); err != nil {
						errs <- err
						return
					}
				}
				errs <- pd.Flush()
			}(pi, c)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	for pi := 0; pi < programs; pi++ {
		st, err := h.ProgramStats(progs[pi].ID)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(clientsPerProgram * runs); st.Ingested != want {
			t.Errorf("program %d ingested = %d, want %d", pi, st.Ingested, want)
		}
		if st.FixCount != 1 || st.Epoch != 1 {
			t.Errorf("program %d fixes=%d epoch=%d, want exactly 1/1", pi, st.FixCount, st.Epoch)
		}
	}
}
