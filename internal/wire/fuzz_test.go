package wire

import (
	"bytes"
	"testing"
)

// buildCoalesced concatenates inner frames into a mega-frame payload using
// the production header writer.
func buildCoalesced(frames ...[]byte) []byte {
	var out []byte
	for _, f := range frames {
		out = appendInnerHeader(out, MsgSubmitBatchColumnar, len(f))
		out = append(out, f...)
	}
	return out
}

// FuzzCoalescedFrame hammers the mega-frame splitter with hostile payloads:
// truncated runs, lying length prefixes, garbage. It must never panic, and
// whenever it accepts a payload, re-encoding the inner frames it reported
// must reproduce the payload byte for byte — the splitter and the builder
// are exact inverses, so nothing is silently skipped or double-counted.
func FuzzCoalescedFrame(f *testing.F) {
	f.Add(buildCoalesced([]byte("alpha"), []byte("b"), bytes.Repeat([]byte("c"), 300)))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0})                   // zero-length inner frame
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3}) // size past MaxFrameSize
	f.Add([]byte{0, 0, 0, 9, 1, 'x'})              // inner frame overruns payload
	f.Add(buildCoalesced([]byte("tail-cut"))[:7])  // truncated mid-header
	f.Fuzz(func(t *testing.T, payload []byte) {
		var rebuilt []byte
		err := forEachInner(payload, func(mt MsgType, inner []byte) error {
			rebuilt = appendInnerHeader(rebuilt, mt, len(inner))
			rebuilt = append(rebuilt, inner...)
			return nil
		})
		if err != nil {
			return
		}
		if !bytes.Equal(rebuilt, payload) {
			t.Fatalf("splitter accepted %d bytes but re-encoding yields %d different bytes", len(payload), len(rebuilt))
		}
		n, err := countInner(payload)
		if err != nil {
			t.Fatalf("countInner rejects what forEachInner accepted: %v", err)
		}
		if n < 0 || (n == 0 && len(payload) != 0) {
			t.Fatalf("countInner = %d for %d accepted bytes", n, len(payload))
		}
	})
}
