package wire

import (
	"encoding/binary"
	"fmt"
	"net"
)

// A MsgCoalesced payload is a concatenation of complete standard frames,
// each its own 4-byte length + type byte + payload. The splitter below is
// the single parser for that layout — both the server (inner requests) and
// the client (inner acks) iterate with it, and FuzzCoalescedFrame hammers
// it with truncated runs and lying length prefixes. It allocates nothing:
// inner payloads are sub-slices of the mega-frame, valid only during the
// callback.

// forEachInner walks the inner frames of a coalesced payload in order,
// invoking fn for each. It stops on the first malformed inner header or on
// a callback error. Inner frames obey the standard MaxFrameSize bound no
// matter what limit the outer frame was read under.
func forEachInner(payload []byte, fn func(t MsgType, inner []byte) error) error {
	for off := 0; off < len(payload); {
		if len(payload)-off < 5 {
			return fmt.Errorf("%w: truncated inner frame header at %d", ErrFrame, off)
		}
		size := binary.BigEndian.Uint32(payload[off : off+4])
		if size == 0 || size > MaxFrameSize {
			return fmt.Errorf("%w: inner frame size %d at %d", ErrFrame, size, off)
		}
		end := off + 4 + int(size)
		if end > len(payload) {
			return fmt.Errorf("%w: inner frame at %d overruns payload (%d > %d)", ErrFrame, off, end, len(payload))
		}
		if err := fn(MsgType(payload[off+4]), payload[off+5:end]); err != nil {
			return err
		}
		off = end
	}
	return nil
}

// countInner returns the number of inner frames, or an error for a
// malformed run.
func countInner(payload []byte) (int, error) {
	n := 0
	err := forEachInner(payload, func(MsgType, []byte) error { n++; return nil })
	return n, err
}

// appendInnerHeader appends one inner frame header (length + type) for a
// payload of the given size.
func appendInnerHeader(dst []byte, t MsgType, payloadLen int) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(payloadLen+1))
	return append(dst, byte(t))
}

// coalescedWireSize returns the on-wire size of frames [start, end) once
// coalesced: each inner frame costs its payload plus a 5-byte header.
func coalescedWireSize(payloads [][]byte, start, end int) int {
	total := 0
	for i := start; i < end; i++ {
		total += 5 + len(payloads[i])
	}
	return total
}

// writeCoalesced writes frames [start, end) of (msgs, payloads) as one
// MsgCoalesced mega-frame with a single writev: the outer header, every
// inner header, and every payload go to the kernel as one vector, so the
// whole group costs one syscall and one packetizable burst. hdrScratch and
// bufScratch are reusable backing arrays (may be nil); the grown versions
// are returned for the next call.
func writeCoalesced(conn net.Conn, msgs []MsgType, payloads [][]byte, start, end int, hdrScratch []byte, bufScratch net.Buffers) ([]byte, net.Buffers, error) {
	inner := coalescedWireSize(payloads, start, end)
	// Headers first, into one contiguous scratch: appending as we build the
	// vector would invalidate earlier sub-slices on growth.
	hdrs := hdrScratch[:0]
	hdrs = binary.BigEndian.AppendUint32(hdrs, uint32(inner+1))
	hdrs = append(hdrs, byte(MsgCoalesced))
	for i := start; i < end; i++ {
		hdrs = appendInnerHeader(hdrs, msgs[i], len(payloads[i]))
	}
	bufs := bufScratch[:0]
	bufs = append(bufs, hdrs[:5])
	for i := start; i < end; i++ {
		h := hdrs[5+(i-start)*5:]
		bufs = append(bufs, h[:5], payloads[i])
	}
	// WriteTo consumes bufs in place; hand it a copy of the slice header so
	// the scratch stays reusable.
	vec := bufs
	_, err := vec.WriteTo(conn)
	return hdrs, bufs, err
}
