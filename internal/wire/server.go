package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"repro/internal/pod"
	"repro/internal/trace"
)

// Server exposes a pod.HiveClient backend (normally *hive.Hive) over TCP.
type Server struct {
	backend pod.HiveClient
	ln      net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup

	// Logf receives connection-level errors; defaults to log.Printf. Set it
	// before Serve.
	Logf func(format string, args ...any)
}

// NewServer wraps backend.
func NewServer(backend pod.HiveClient) *Server {
	return &Server{
		backend: backend,
		conns:   make(map[net.Conn]bool),
		Logf:    log.Printf,
	}
}

// Listen binds the address ("127.0.0.1:0" for an ephemeral port) and starts
// serving in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops the listener and all connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	for {
		msgType, payload, err := ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.Logf("wire: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if err := s.dispatch(conn, msgType, payload); err != nil {
			s.Logf("wire: handle %v from %s: %v", msgType, conn.RemoteAddr(), err)
			return
		}
	}
}

func (s *Server) dispatch(conn net.Conn, msgType MsgType, payload []byte) error {
	switch msgType {
	case MsgSubmitTraces:
		return s.handleSubmit(conn, payload)
	case MsgGetFixes:
		return s.handleGetFixes(conn, payload)
	case MsgGetGuidance:
		return s.handleGetGuidance(conn, payload)
	default:
		return s.reply(conn, MsgError, ErrorPayload{Error: fmt.Sprintf("unknown message type %d", msgType)})
	}
}

func (s *Server) handleSubmit(conn net.Conn, payload []byte) error {
	raws, err := decodeTraceBatch(payload)
	if err != nil {
		return s.reply(conn, MsgAck, AckPayload{Error: err.Error()})
	}
	traces := make([]*trace.Trace, 0, len(raws))
	for _, raw := range raws {
		tr, err := trace.Decode(raw)
		if err != nil {
			return s.reply(conn, MsgAck, AckPayload{Error: err.Error()})
		}
		traces = append(traces, tr)
	}
	if err := s.backend.SubmitTraces(traces); err != nil {
		return s.reply(conn, MsgAck, AckPayload{Error: err.Error()})
	}
	return s.reply(conn, MsgAck, AckPayload{Accepted: len(traces)})
}

func (s *Server) handleGetFixes(conn net.Conn, payload []byte) error {
	var req GetFixesPayload
	if err := json.Unmarshal(payload, &req); err != nil {
		return s.reply(conn, MsgFixes, FixesPayload{Error: err.Error()})
	}
	fixes, version, err := s.backend.FixesSince(req.ProgramID, req.Version)
	if err != nil {
		return s.reply(conn, MsgFixes, FixesPayload{Error: err.Error()})
	}
	out := FixesPayload{Version: version}
	for i := range fixes {
		raw, err := json.Marshal(&fixes[i])
		if err != nil {
			return s.reply(conn, MsgFixes, FixesPayload{Error: err.Error()})
		}
		out.Fixes = append(out.Fixes, raw)
	}
	return s.reply(conn, MsgFixes, out)
}

func (s *Server) handleGetGuidance(conn net.Conn, payload []byte) error {
	var req GetGuidancePayload
	if err := json.Unmarshal(payload, &req); err != nil {
		return s.reply(conn, MsgGuidance, GuidancePayload{Error: err.Error()})
	}
	cases, err := s.backend.Guidance(req.ProgramID, req.Max)
	if err != nil {
		return s.reply(conn, MsgGuidance, GuidancePayload{Error: err.Error()})
	}
	out := GuidancePayload{}
	for i := range cases {
		raw, err := json.Marshal(&cases[i])
		if err != nil {
			return s.reply(conn, MsgGuidance, GuidancePayload{Error: err.Error()})
		}
		out.Cases = append(out.Cases, raw)
	}
	return s.reply(conn, MsgGuidance, out)
}

func (s *Server) reply(conn net.Conn, t MsgType, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return WriteFrame(conn, t, payload)
}
