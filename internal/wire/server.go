package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pod"
	"repro/internal/ring"
	"repro/internal/trace"
)

// ingestQueueDepth bounds the frames a connection may have queued between
// its reader and its worker. A client pipelining submissions keeps reading
// ahead of decoding up to this depth; beyond it the reader applies
// backpressure to that connection only — other connections have their own
// queues and keep ingesting.
const ingestQueueDepth = 64

// Server exposes a pod.HiveClient backend (normally *hive.Hive) over TCP.
//
// Each connection is served by a two-stage pipeline: the connection
// goroutine only reads frames and hands them to a per-connection worker
// through a bounded queue; the worker decodes payloads, dispatches to the
// backend, and writes replies in request order (pipelined acks). Decoding
// and backend calls therefore overlap with socket reads, and a slow or
// blocked connection stalls only itself.
type Server struct {
	backend pod.HiveClient
	ln      net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup

	// placeMu guards the sharding state: the placement map this hive is a
	// member of, its own node name within it, and the lazily dialed peer
	// clients used to proxy frames from pre-ring clients. All nil/empty on
	// an unsharded server.
	placeMu   sync.RWMutex
	placement *ring.Map
	selfNode  string
	proxies   map[string]*Client

	// Logf receives connection-level errors; defaults to log.Printf. Set it
	// before Serve.
	Logf func(format string, args ...any)

	// DisableColumnar makes the server behave like a pre-columnar build:
	// hello and columnar frames are answered as unknown message types, so
	// clients negotiate down to the per-trace encoding. Tests use it to
	// prove mixed old/new fleets interoperate.
	DisableColumnar bool

	// DisableWAN makes the server behave like a columnar-but-pre-WAN
	// build: hello still grants the columnar feature, but coalescing,
	// compression, and frame-size raises are withheld, and MsgCoalesced /
	// MsgSubmitBatchCompressed frames are answered as unknown message
	// types. Tests use it to prove the WAN features downgrade silently.
	DisableWAN bool

	// MaxFrame caps the frame-size raise hello grants (bounded by
	// MaxCoalescedFrameSize); zero means MaxCoalescedFrameSize. Grants
	// never go below MaxFrameSize.
	MaxFrame int

	// Admission, when non-nil, arms the overload protections: per-session
	// token-bucket rate limits answered with MsgBusy (FeatureBusy clients)
	// or in-handler pacing (legacy clients), per-connection queued-byte
	// backpressure feeding the backend's load-shedding pressure gauge,
	// progress-based slow-loris frame deadlines, and accept-time caps on
	// total / half-open connections. Set before Listen. Nil — the default —
	// costs one pointer check per frame, keeping the loopback fast path
	// unchanged.
	Admission *Admission

	// adm is the runtime admission state, built from Admission at Listen.
	adm *admissionState

	// readOnlyBusy counts submissions refused because the backend flipped a
	// program read-only after persistent journal write failures (disk full,
	// dying device). It lives on the Server — not admissionState — because
	// the read-only breaker is a durability condition, not an overload one:
	// it must be reported even when admission control is not configured.
	readOnlyBusy atomic.Int64
}

// connState is per-connection negotiated state shared between a
// connection's reader and its worker. limit is the frame-size limit:
// MaxFrameSize until a hello exchange grants a raise. Atomic because the
// worker raises it while the reader loads it. routing records that the
// client negotiated FeatureRouting: misdirected submissions answer
// MsgRedirect instead of being proxied server-side.
type connState struct {
	limit   atomic.Int64
	routing atomic.Bool

	// busy records that the client negotiated FeatureBusy: declined
	// submissions answer MsgBusy (written by the worker, in the reply slot
	// the ack would have occupied, so pipelined order is preserved) instead
	// of being absorbed by pacing.
	busy atomic.Bool

	// key is the admission bucket key for frames that carry no session:
	// the connection's remote address.
	key string

	// qMu/qCond/qBytes account the frame-payload bytes queued between this
	// connection's reader and its worker. The reader blocks past the
	// configured per-connection budget — byte-granular backpressure on top
	// of the frame-count queue depth. qMu is a leaf lock (rank 50 in the
	// lockdiscipline order); only touched when admission is configured.
	qMu    sync.Mutex
	qCond  *sync.Cond
	qBytes int64
}

// framePool recycles read-side frame payload buffers: a frame is read into
// a pooled buffer, queued to the connection worker, and recycled once its
// dispatch completes (handlers must not retain payload bytes — decoded
// traces and views copy or are consumed before return). The pool stores
// *[]byte boxes; the box travels with the request so recycling never
// re-boxes the slice header.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// readFramePooled reads one frame like ReadFrame but into a pooled buffer.
// The returned box owns the payload; put it back into framePool when the
// frame is fully handled.
func readFramePooled(r io.Reader) (MsgType, *[]byte, error) {
	return readFramePooledStatic(r, MaxFrameSize)
}

// readFramePooledLimit is readFramePooled under a frame-size limit loaded
// only after the header arrives: a hello grant the worker stores while the
// reader is blocked on the next header applies to that very frame.
func readFramePooledLimit(r io.Reader, limit func() int) (MsgType, *[]byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	rawSize := binary.BigEndian.Uint32(hdr[:4])
	if rawSize == 0 || rawSize > uint32(limit()) {
		return 0, nil, fmt.Errorf("%w: size %d", ErrFrame, rawSize)
	}
	return readFrameBody(r, MsgType(hdr[4]), int(rawSize-1))
}

func readFramePooledStatic(r io.Reader, limit int) (MsgType, *[]byte, error) {
	t, size, err := readFrameHeaderLimit(r, limit)
	if err != nil {
		return 0, nil, err
	}
	return readFrameBody(r, t, size)
}

func readFrameBody(r io.Reader, t MsgType, size int) (MsgType, *[]byte, error) {
	bp := framePool.Get().(*[]byte)
	buf := *bp
	if cap(buf) < size {
		buf = make([]byte, size)
	} else {
		buf = buf[:size]
	}
	*bp = buf
	if _, err := io.ReadFull(r, buf); err != nil {
		framePool.Put(bp)
		return 0, nil, err
	}
	return t, bp, nil
}

// NewServer wraps backend.
func NewServer(backend pod.HiveClient) *Server {
	return &Server{
		backend: backend,
		conns:   make(map[net.Conn]bool),
		Logf:    log.Printf,
	}
}

// Listen binds the address ("127.0.0.1:0" for an ephemeral port) and starts
// serving in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire: listen: %w", err)
	}
	if s.Admission != nil {
		s.adm = newAdmissionState(*s.Admission)
		if s.adm.cfg.TotalQueueBytes > 0 {
			// Hand the backend a live ingest-pressure gauge: the hive's
			// load-shedding watermark prices batches against it without the
			// hive ever reading clocks or queues itself.
			if sink, ok := s.backend.(pod.PressureSink); ok {
				sink.SetPressureSource(s.adm.pressure)
			}
		}
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// AdmissionStats snapshots the admission-control counters (zero value
// when no Admission config is armed).
func (s *Server) AdmissionStats() AdmissionStats {
	var st AdmissionStats
	if s.adm != nil {
		st = s.adm.stats()
	}
	// The read-only breaker reports even on servers without admission
	// control: it signals disk faults, not overload.
	st.ReadOnlyBusy = s.readOnlyBusy.Load()
	return st
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if a := s.adm; a != nil {
			// Hard caps are enforced at accept, before the connection costs
			// anything: a full house or a half-open flood (slow loris,
			// scanners) is turned away with a bare close.
			if (a.cfg.MaxConns > 0 && a.conns.Load() >= a.cfg.MaxConns) ||
				(a.cfg.MaxHalfOpen > 0 && a.halfOpen.Load() >= a.cfg.MaxHalfOpen) {
				a.connsRejected.Add(1)
				_ = conn.Close()
				continue
			}
			a.conns.Add(1)
			a.halfOpen.Add(1)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			if a := s.adm; a != nil {
				a.conns.Add(-1)
				a.halfOpen.Add(-1)
			}
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// SetPlacement installs (or replaces) the placement map this server is a
// member of; self is this hive's node name within it (the address peers
// and clients dial). From the next frame on, submissions for programs the
// map assigns elsewhere are redirected (routing-negotiated clients) or
// proxied to the owner (pre-ring clients), and hello acks advertise the
// map. Passing nil reverts to unsharded behavior. Safe to call while
// serving — a rebalance is exactly that.
func (s *Server) SetPlacement(m *ring.Map, self string) {
	s.placeMu.Lock()
	s.placement = m
	s.selfNode = self
	s.placeMu.Unlock()
}

// placementSnapshot reads the current sharding state.
func (s *Server) placementSnapshot() (*ring.Map, string) {
	s.placeMu.RLock()
	defer s.placeMu.RUnlock()
	return s.placement, s.selfNode
}

// routeFor resolves a program's owner under the current placement.
// local is true when this server owns it — or when no placement is set,
// which is the unsharded fast path.
func (s *Server) routeFor(programID string) (owner string, local bool, pl *ring.Map) {
	pl, self := s.placementSnapshot()
	if pl == nil {
		return "", true, nil
	}
	owner = pl.Owner(programID)
	return owner, owner == "" || owner == self, pl
}

// placementPayload converts a ring.Map to its wire form.
func placementPayload(m *ring.Map) *PlacementPayload {
	if m == nil {
		return nil
	}
	return &PlacementPayload{Version: m.Version(), Nodes: m.Nodes(), VNodes: m.VNodes(), Seed: m.Seed()}
}

// placementFromPayload rebuilds the ring from its wire form.
func placementFromPayload(p *PlacementPayload) *ring.Map {
	if p == nil {
		return nil
	}
	return ring.NewVersion(p.Version, p.Nodes, p.VNodes, p.Seed)
}

// redirect answers a misdirected submission from a routing-negotiated
// client: the frame was not applied; the client owns resubmitting it —
// verbatim — to the named owner.
func (s *Server) redirect(w io.Writer, programID, owner string, pl *ring.Map) error {
	return s.reply(w, MsgRedirect, RedirectPayload{ProgramID: programID, Owner: owner, Placement: placementPayload(pl)})
}

// proxyClient returns (dialing lazily) the peer client for owner. Proxy
// clients do not offer FeatureRouting: if the owner's placement has moved
// on too, the owner proxies onward rather than answering a redirect the
// pre-ring originator could never parse.
func (s *Server) proxyClient(owner string) *Client {
	s.placeMu.Lock()
	defer s.placeMu.Unlock()
	if s.proxies == nil {
		s.proxies = make(map[string]*Client)
	}
	pc, ok := s.proxies[owner]
	if !ok {
		pc = Dial(owner)
		pc.DisableRouting = true
		s.proxies[owner] = pc
	}
	return pc
}

// proxyFrame relays one frame verbatim to the owning hive and returns its
// reply. The (session, seq) exactly-once tag rides inside the payload, so
// a proxied resubmission deduplicates at the owner exactly as a direct one
// would.
func (s *Server) proxyFrame(owner string, t MsgType, payload []byte) (MsgType, []byte, error) {
	return s.proxyClient(owner).call(t, payload)
}

// Close stops the listener and all connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.placeMu.Lock()
	proxies := s.proxies
	s.proxies = nil
	s.placeMu.Unlock()
	for _, pc := range proxies {
		_ = pc.Close()
	}
	s.wg.Wait()
	return err
}

// request is one frame in flight between a connection's reader and its
// worker. payload is a pooled buffer box; the worker recycles it after
// dispatch.
type request struct {
	msgType MsgType
	payload *[]byte
	// size is the frame payload size for queued-byte accounting; recorded
	// at enqueue because handlers may grow the pooled buffer.
	size int
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	adm := s.adm
	established := false
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
		if adm != nil {
			adm.conns.Add(-1)
			if !established {
				adm.halfOpen.Add(-1)
			}
		}
	}()

	// Worker: decode, dispatch, reply — in request order, off the
	// connection goroutine. Replies coalesce through a buffered writer
	// that flushes whenever the queue runs dry (a pipelining client gets
	// its acks in bursts, not one syscall each). On a handler error the
	// worker closes the connection (unblocking the reader) and drains the
	// queue so the reader can never block on a send with no receiver.
	cs := &connState{key: conn.RemoteAddr().String()}
	cs.qCond = sync.NewCond(&cs.qMu)
	cs.limit.Store(MaxFrameSize)
	reqs := make(chan request, ingestQueueDepth)
	workerDone := make(chan struct{})
	// release returns a dispatched (or drained) frame's bytes to the queue
	// budget and wakes a reader parked on the per-connection cap. Every
	// path that consumes a request — normal dispatch, bail drain — must
	// release, or the pressure gauge sticks high after the burst passes.
	release := func(n int) {
		if adm == nil || n == 0 {
			return
		}
		adm.queued.Add(int64(-n))
		cs.qMu.Lock()
		cs.qBytes -= int64(n)
		cs.qCond.Signal()
		cs.qMu.Unlock()
	}
	go func() {
		defer close(workerDone)
		bw := bufio.NewWriterSize(conn, 32<<10)
		bail := func(what string, err error) {
			s.Logf("wire: %s for %s: %v", what, conn.RemoteAddr(), err)
			_ = conn.Close()
			for req := range reqs {
				framePool.Put(req.payload)
				release(req.size)
			}
		}
		for req := range reqs {
			var err error
			if req.msgType == MsgCoalesced && !s.DisableColumnar && !s.DisableWAN {
				// Mega-frames answer through the connection itself: the
				// whole group of inner replies goes out as one writev.
				err = s.handleCoalesced(cs, conn, bw, *req.payload)
			} else {
				err = s.dispatch(cs, bw, req.msgType, *req.payload)
			}
			framePool.Put(req.payload)
			release(req.size)
			if err != nil {
				bail(fmt.Sprintf("handle %v", req.msgType), err)
				return
			}
			if len(reqs) == 0 {
				if err := bw.Flush(); err != nil {
					bail("flush", err)
					return
				}
			}
		}
		_ = bw.Flush()
	}()

	// Reader: the connection goroutine only reads frames; backpressure is
	// the bounded queue — frame-count always, queued bytes when admission
	// is configured. The frame limit is re-loaded per frame so a hello
	// grant applies from the very next frame on.
	for {
		if adm != nil && adm.cfg.ConnQueueBytes > 0 {
			cs.qMu.Lock()
			for cs.qBytes > adm.cfg.ConnQueueBytes {
				cs.qCond.Wait()
			}
			cs.qMu.Unlock()
		}
		msgType, payload, err := s.readConnFrame(conn, cs)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.Logf("wire: read from %s: %v", conn.RemoteAddr(), err)
			}
			break
		}
		size := 0
		if adm != nil {
			if !established {
				// First complete, well-formed frame: the connection is no
				// longer half-open and stops occupying a slow-loris slot.
				established = true
				adm.halfOpen.Add(-1)
			}
			size = len(*payload)
			adm.queued.Add(int64(size))
			cs.qMu.Lock()
			cs.qBytes += int64(size)
			cs.qMu.Unlock()
		}
		reqs <- request{msgType: msgType, payload: payload, size: size}
	}
	close(reqs)
	<-workerDone
}

// readConnFrame reads one frame under the connection's negotiated size
// limit and, when a FrameTimeout is armed, a progress deadline: waiting
// for a frame to START is unbounded (an idle pod between drains is
// legal), but once the first header byte arrives the rest of the frame
// must land within the timeout. A peer dribbling a started frame — the
// slow loris — is evicted, freeing its worker and queue slot.
func (s *Server) readConnFrame(conn net.Conn, cs *connState) (MsgType, *[]byte, error) {
	limit := func() int { return int(cs.limit.Load()) }
	var timeout time.Duration
	if s.adm != nil {
		timeout = s.adm.cfg.FrameTimeout
	}
	if timeout <= 0 {
		return readFramePooledLimit(conn, limit)
	}
	var hdr [5]byte
	if _, err := io.ReadFull(conn, hdr[:1]); err != nil {
		return 0, nil, err
	}
	_ = conn.SetReadDeadline(time.Now().Add(timeout))
	defer func() { _ = conn.SetReadDeadline(time.Time{}) }()
	if _, err := io.ReadFull(conn, hdr[1:]); err != nil {
		return 0, nil, s.slowLorisErr(err)
	}
	rawSize := binary.BigEndian.Uint32(hdr[:4])
	if rawSize == 0 || rawSize > uint32(limit()) {
		return 0, nil, fmt.Errorf("%w: size %d", ErrFrame, rawSize)
	}
	t, bp, err := readFrameBody(conn, MsgType(hdr[4]), int(rawSize-1))
	if err != nil {
		return 0, nil, s.slowLorisErr(err)
	}
	return t, bp, nil
}

// slowLorisErr annotates (and counts) a frame-progress deadline hit;
// other read errors pass through untouched.
func (s *Server) slowLorisErr(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		s.adm.slowEvicted.Add(1)
		return fmt.Errorf("wire: slow-loris eviction: frame stalled past %v: %w", s.adm.cfg.FrameTimeout, err)
	}
	return err
}

// admitBatch charges n traces against the session's (or, for unsessioned
// frames, the connection's) token bucket. Runs on the worker, so a busy
// reply lands in the exact reply slot the frame's ack would have used —
// pipelined clients keep matching acks by order. handled=true means the
// frame was answered (MsgBusy) and the handler must return err without
// touching the backend; otherwise the frame is admitted, possibly after
// in-handler pacing (legacy clients get deferred reads, not MsgBusy).
func (s *Server) admitBatch(cs *connState, w io.Writer, session string, n int) (handled bool, err error) {
	a := s.adm
	if a == nil || a.cfg.SessionRate <= 0 {
		return false, nil
	}
	key := session
	if key == "" && cs != nil {
		key = cs.key
	}
	if cs != nil && cs.busy.Load() {
		wait, ok := a.debit(key, n, time.Now(), false)
		if ok {
			return false, nil
		}
		a.busyReplies.Add(1)
		return true, s.reply(w, MsgBusy, BusyPayload{
			RetryAfterMs: int64(wait / time.Millisecond),
			Reason:       "session rate limit",
		})
	}
	wait, _ := a.debit(key, n, time.Now(), true)
	if wait > 0 {
		a.pacedFrames.Add(1)
		time.Sleep(wait)
	}
	return false, nil
}

// submitShed runs a backend submission, mapping pod.ErrDeferred — the
// hive's load shedder asking for the batch later — to its client-visible
// form: MsgBusy for FeatureBusy clients (handled=true, the frame stays
// unacked and the client resubmits it verbatim); a short bounded
// in-handler retry for legacy clients, after which a still-deferred batch
// surfaces as an ordinary error ack and the client's at-least-once retry
// machinery parks it.
//
// pod.ErrReadOnly — the backend's journal breaker after persistent disk
// write failures — also maps to MsgBusy for FeatureBusy clients, but with
// no in-handler retry for legacy ones: read-only persists until an
// operator-visible checkpoint lands, so sleeping and resubmitting inside
// the handler cannot help. Legacy clients get the error ack immediately
// and their own retry machinery (with backoff) carries the frame.
func (s *Server) submitShed(cs *connState, w io.Writer, fn func() (bool, error)) (dup bool, err error, handled bool, werr error) {
	dup, err = fn()
	if err == nil || (!errors.Is(err, pod.ErrDeferred) && !errors.Is(err, pod.ErrReadOnly)) {
		return dup, err, false, nil
	}
	if errors.Is(err, pod.ErrReadOnly) {
		s.readOnlyBusy.Add(1)
		if cs != nil && cs.busy.Load() {
			hint := defaultRetryAfter
			if s.adm != nil {
				hint = s.adm.cfg.RetryAfter
			}
			return false, nil, true, s.reply(w, MsgBusy, BusyPayload{
				RetryAfterMs: int64(hint / time.Millisecond),
				Reason:       err.Error(),
			})
		}
		return dup, err, false, nil
	}
	hint := defaultRetryAfter
	if s.adm != nil {
		hint = s.adm.cfg.RetryAfter
	}
	if cs != nil && cs.busy.Load() {
		if s.adm != nil {
			s.adm.busyReplies.Add(1)
		}
		return false, nil, true, s.reply(w, MsgBusy, BusyPayload{
			RetryAfterMs: int64(hint / time.Millisecond),
			Reason:       err.Error(),
		})
	}
	for i := 0; i < 3; i++ {
		if s.adm != nil {
			s.adm.pacedFrames.Add(1)
		}
		time.Sleep(hint << uint(i))
		dup, err = fn()
		if err == nil || !errors.Is(err, pod.ErrDeferred) {
			break
		}
	}
	return dup, err, false, nil
}

func (s *Server) dispatch(cs *connState, w io.Writer, msgType MsgType, payload []byte) error {
	switch msgType {
	case MsgSubmitTraces:
		return s.handleSubmit(w, payload)
	case MsgSubmitTracesFor:
		return s.handleSubmitFor(cs, w, payload)
	case MsgSubmitTracesSeq:
		return s.handleSubmitSeq(cs, w, payload)
	case MsgHello:
		if s.DisableColumnar {
			break // answer like a pre-negotiation build
		}
		return s.handleHello(cs, w, payload)
	case MsgSubmitBatchColumnar:
		if s.DisableColumnar {
			break
		}
		return s.handleSubmitColumnar(cs, w, payload)
	case MsgSubmitBatchCompressed:
		if s.DisableColumnar || s.DisableWAN {
			break // answer like a build without the feature
		}
		return s.handleSubmitCompressed(cs, w, payload)
	case MsgGetFixes:
		return s.handleGetFixes(w, payload)
	case MsgGetGuidance:
		return s.handleGetGuidance(w, payload)
	}
	return s.reply(w, MsgError, ErrorPayload{Error: fmt.Sprintf("unknown message type %d", msgType)})
}

// handleHello answers feature negotiation with the intersection of what the
// client offered and what this server speaks, plus the frame-size grant:
// min(requested, cap), never below the default limit. The grant is stored
// before the ack is written, so by the time the client can act on it the
// reader accepts the raised size.
func (s *Server) handleHello(cs *connState, w io.Writer, payload []byte) error {
	var req HelloPayload
	if err := json.Unmarshal(payload, &req); err != nil {
		return s.reply(w, MsgError, ErrorPayload{Error: err.Error()})
	}
	var ack HelloAckPayload
	for _, f := range req.Features {
		switch f {
		case FeatureColumnarBatch:
			ack.Features = append(ack.Features, f)
		case FeatureCoalesce, FeatureSlabFlate:
			if !s.DisableWAN {
				ack.Features = append(ack.Features, f)
			}
		case FeatureRouting:
			// Granted only when this server actually is a ring member: an
			// unsharded hive stays silent and clients route everything here.
			if pl, _ := s.placementSnapshot(); pl != nil {
				ack.Features = append(ack.Features, f)
				ack.Placement = placementPayload(pl)
				cs.routing.Store(true)
			}
		case FeatureBusy:
			// Granted unconditionally: even without an Admission config the
			// backend's load shedder may defer a batch, and an explicit
			// MsgBusy beats silently pacing a client that can back off.
			ack.Features = append(ack.Features, f)
			cs.busy.Store(true)
		}
	}
	if req.MaxFrame > MaxFrameSize && !s.DisableWAN {
		capBytes := s.MaxFrame
		if capBytes <= 0 || capBytes > MaxCoalescedFrameSize {
			capBytes = MaxCoalescedFrameSize
		}
		if capBytes < MaxFrameSize {
			capBytes = MaxFrameSize
		}
		granted := req.MaxFrame
		if granted > capBytes {
			granted = capBytes
		}
		if granted > MaxFrameSize {
			ack.MaxFrame = granted
			cs.limit.Store(int64(granted))
		}
	}
	return s.reply(w, MsgHelloAck, ack)
}

// maxInnerFrames bounds the inner frames one mega-frame may carry: each
// inner frame produces an inner ack, so the bound keeps a hostile
// mega-frame of millions of tiny requests from amplifying into an
// unbounded reply buffer. Honest clients batch far below it.
const maxInnerFrames = 4096

// ackBuffer accumulates the inner reply frames of one coalesced group in
// memory so they can leave in a single writev.
type ackBuffer struct{ buf []byte }

func (a *ackBuffer) Write(p []byte) (int, error) {
	a.buf = append(a.buf, p...)
	return len(p), nil
}

// handleCoalesced dispatches every inner frame of a mega-frame exactly as
// if it had arrived alone, accumulating the inner replies, and answers
// with one MsgCoalesced written to the connection as a single writev
// (after flushing any buffered replies so request order is preserved). A
// malformed mega-frame gets a whole-frame MsgError instead; per-inner
// failures are ordinary inner acks and do not poison the group.
func (s *Server) handleCoalesced(cs *connState, conn net.Conn, bw *bufio.Writer, payload []byte) error {
	bp := framePool.Get().(*[]byte)
	acks := ackBuffer{buf: (*bp)[:0]}
	inner := 0
	err := forEachInner(payload, func(t MsgType, body []byte) error {
		if t == MsgCoalesced {
			return fmt.Errorf("%w: nested coalesced frame", ErrFrame)
		}
		if inner++; inner > maxInnerFrames {
			return fmt.Errorf("%w: more than %d inner frames", ErrFrame, maxInnerFrames)
		}
		return s.dispatch(cs, &acks, t, body)
	})
	if err != nil {
		*bp = acks.buf
		framePool.Put(bp)
		if errors.Is(err, ErrFrame) {
			return s.reply(bw, MsgError, ErrorPayload{Error: err.Error()})
		}
		return err
	}
	werr := bw.Flush()
	if werr == nil {
		var hdr [5]byte
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(acks.buf)+1))
		hdr[4] = byte(MsgCoalesced)
		vec := net.Buffers{hdr[:], acks.buf}
		_, werr = vec.WriteTo(conn)
	}
	*bp = acks.buf
	framePool.Put(bp)
	return werr
}

// handleSubmitColumnar ingests a sequenced columnar batch. The batch bytes
// are handed to a columnar-capable backend as a zero-copy view (the hive
// journals exactly those bytes); other backends get materialized traces
// through the strongest submission path they offer.
func (s *Server) handleSubmitColumnar(cs *connState, w io.Writer, payload []byte) error {
	session, seq, batchBytes, err := decodeSeqPrefix(payload)
	if err != nil {
		return ackBin(w, 0, false, err)
	}
	return s.ingestColumnar(cs, w, session, seq, batchBytes, MsgSubmitBatchColumnar, payload)
}

// handleSubmitCompressed is handleSubmitColumnar for a frame whose batch
// bytes arrive DEFLATE-compressed (trace.CompressSlab). The inflate runs
// before ingest, bounded by MaxFrameSize post-inflate (decompression-bomb
// guard), so the backend — and with it the journal — sees only the
// canonical decompressed columnar payload, byte-identical to an
// uncompressed submission of the same batch.
func (s *Server) handleSubmitCompressed(cs *connState, w io.Writer, payload []byte) error {
	session, seq, compBytes, err := decodeSeqPrefix(payload)
	if err != nil {
		return ackBin(w, 0, false, err)
	}
	raw, err := trace.DecompressSlab(compBytes, MaxFrameSize)
	if err != nil {
		return ackBin(w, 0, false, err)
	}
	defer trace.ReleaseSlab(raw)
	// A misdirected compressed frame proxies in its original compressed
	// form; the owner inflates, so its journal still holds the canonical
	// decompressed bytes.
	return s.ingestColumnar(cs, w, session, seq, *raw, MsgSubmitBatchCompressed, payload)
}

// ackBin writes one binary acknowledgement.
func ackBin(w io.Writer, accepted int, dup bool, err error) error {
	msg := ""
	if err != nil {
		accepted, dup, msg = 0, false, err.Error()
	}
	return WriteFrame(w, MsgAckBin, encodeAckBin(accepted, dup, msg))
}

// ingestColumnar routes validated canonical batch bytes into the backend.
// The view borrows batchBytes and is released before return; a durable
// backend journals exactly those bytes. On a sharded server a batch for a
// program owned elsewhere never reaches the backend: routing-negotiated
// clients get MsgRedirect (orig/origPayload identify the frame to
// resubmit), pre-ring clients have the original frame proxied verbatim to
// the owner and the owner's ack relayed back.
func (s *Server) ingestColumnar(cs *connState, w io.Writer, session string, seq uint64, batchBytes []byte, orig MsgType, origPayload []byte) error {
	ack := func(accepted int, dup bool, err error) error {
		return ackBin(w, accepted, dup, err)
	}
	view, err := trace.DecodeBatch(batchBytes)
	if err != nil {
		return ack(0, false, err)
	}
	defer view.Release()
	if owner, local, pl := s.routeFor(view.ProgramID()); !local {
		if cs != nil && cs.routing.Load() {
			return s.redirect(w, view.ProgramID(), owner, pl)
		}
		respType, resp, perr := s.proxyFrame(owner, orig, origPayload)
		if perr != nil {
			return ack(0, false, fmt.Errorf("proxy to owner %s: %w", owner, perr))
		}
		return WriteFrame(w, respType, resp)
	}
	if handled, herr := s.admitBatch(cs, w, session, view.Len()); handled {
		return herr
	}
	if sub, ok := s.backend.(pod.ColumnarSubmitter); ok {
		dup, err, handled, herr := s.submitShed(cs, w, func() (bool, error) {
			return sub.SubmitColumnarSession(session, seq, view)
		})
		if handled {
			return herr
		}
		return ack(view.Len(), dup, err)
	}
	traces := view.MaterializeAll()
	if ss, ok := s.backend.(pod.SessionSubmitter); ok {
		dup, err, handled, herr := s.submitShed(cs, w, func() (bool, error) {
			return ss.SubmitTracesSession(session, seq, view.ProgramID(), traces)
		})
		if handled {
			return herr
		}
		return ack(len(traces), dup, err)
	}
	var submitErr error
	if ps, ok := s.backend.(pod.ProgramSubmitter); ok {
		submitErr = ps.SubmitTracesFor(view.ProgramID(), traces)
	} else {
		submitErr = s.backend.SubmitTraces(traces)
	}
	return ack(len(traces), false, submitErr)
}

// routeSubmission applies the sharding decision for one per-program
// submission frame on the v2 (JSON-ack) paths. done=true means the frame
// was handled here — redirected or proxied — and the handler must return
// err without touching the backend.
func (s *Server) routeSubmission(cs *connState, w io.Writer, programID string, orig MsgType, payload []byte) (done bool, err error) {
	owner, local, pl := s.routeFor(programID)
	if local {
		return false, nil
	}
	if cs != nil && cs.routing.Load() {
		return true, s.redirect(w, programID, owner, pl)
	}
	respType, resp, perr := s.proxyFrame(owner, orig, payload)
	if perr != nil {
		return true, s.reply(w, MsgAck, AckPayload{Error: fmt.Sprintf("proxy to owner %s: %v", owner, perr)})
	}
	return true, WriteFrame(w, respType, resp)
}

// decodeTraces expands raw per-trace bytes into traces.
func decodeTraces(raws [][]byte) ([]*trace.Trace, error) {
	traces := make([]*trace.Trace, 0, len(raws))
	for _, raw := range raws {
		tr, err := trace.Decode(raw)
		if err != nil {
			return nil, err
		}
		traces = append(traces, tr)
	}
	return traces, nil
}

func (s *Server) handleSubmit(w io.Writer, payload []byte) error {
	raws, err := decodeTraceBatch(payload)
	if err != nil {
		return s.reply(w, MsgAck, AckPayload{Error: err.Error()})
	}
	traces, err := decodeTraces(raws)
	if err != nil {
		return s.reply(w, MsgAck, AckPayload{Error: err.Error()})
	}
	// On a sharded server the grouped legacy frame is split by owner: local
	// traces ingest here, the rest are forwarded per owner. The legacy path
	// is unsequenced (at-least-once), so forwarding keeps its semantics.
	if pl, self := s.placementSnapshot(); pl != nil {
		var local []*trace.Trace
		foreign := make(map[string][]*trace.Trace)
		for _, tr := range traces {
			if owner := pl.Owner(tr.ProgramID); owner != "" && owner != self {
				foreign[owner] = append(foreign[owner], tr)
			} else {
				local = append(local, tr)
			}
		}
		if len(foreign) > 0 {
			if len(local) > 0 {
				if err := s.backend.SubmitTraces(local); err != nil {
					return s.reply(w, MsgAck, AckPayload{Error: err.Error()})
				}
			}
			owners := make([]string, 0, len(foreign))
			for o := range foreign {
				owners = append(owners, o)
			}
			sort.Strings(owners)
			for _, owner := range owners {
				group := foreign[owner]
				encoded := make([][]byte, len(group))
				for i, tr := range group {
					encoded[i] = trace.Encode(tr)
				}
				respType, resp, perr := s.proxyFrame(owner, MsgSubmitTraces, encodeTraceBatch(encoded))
				if perr == nil {
					perr = checkAck(respType, resp, len(group))
				}
				if perr != nil {
					return s.reply(w, MsgAck, AckPayload{Error: fmt.Sprintf("proxy to owner %s: %v", owner, perr)})
				}
			}
			return s.reply(w, MsgAck, AckPayload{Accepted: len(traces)})
		}
	}
	if err := s.backend.SubmitTraces(traces); err != nil {
		return s.reply(w, MsgAck, AckPayload{Error: err.Error()})
	}
	return s.reply(w, MsgAck, AckPayload{Accepted: len(traces)})
}

func (s *Server) handleSubmitFor(cs *connState, w io.Writer, payload []byte) error {
	programID, raws, err := decodeTraceBatchFor(payload)
	if err != nil {
		return s.reply(w, MsgAck, AckPayload{Error: err.Error()})
	}
	if done, err := s.routeSubmission(cs, w, programID, MsgSubmitTracesFor, payload); done {
		return err
	}
	traces, err := decodeTraces(raws)
	if err != nil {
		return s.reply(w, MsgAck, AckPayload{Error: err.Error()})
	}
	// The per-program frame is all-or-nothing on a program mismatch no
	// matter what the backend is: enforce it here so a backend without the
	// fast path can't silently ingest a stray trace the hive would reject.
	for _, tr := range traces {
		if tr.ProgramID != programID {
			return s.reply(w, MsgAck, AckPayload{
				Error: fmt.Sprintf("wire: trace for program %q in batch submitted for %q", tr.ProgramID, programID),
			})
		}
	}
	if handled, herr := s.admitBatch(cs, w, "", len(traces)); handled {
		return herr
	}
	// Use the backend's per-program fast path when it has one; a plain
	// HiveClient backend still accepts the frame through the grouped path.
	var submitErr error
	if ps, ok := s.backend.(pod.ProgramSubmitter); ok {
		submitErr = ps.SubmitTracesFor(programID, traces)
	} else {
		submitErr = s.backend.SubmitTraces(traces)
	}
	if submitErr != nil {
		return s.reply(w, MsgAck, AckPayload{Error: submitErr.Error()})
	}
	return s.reply(w, MsgAck, AckPayload{Accepted: len(traces)})
}

func (s *Server) handleSubmitSeq(cs *connState, w io.Writer, payload []byte) error {
	session, seq, programID, raws, err := decodeTraceBatchSeq(payload)
	if err != nil {
		return s.reply(w, MsgAck, AckPayload{Error: err.Error()})
	}
	if done, err := s.routeSubmission(cs, w, programID, MsgSubmitTracesSeq, payload); done {
		return err
	}
	traces, err := decodeTraces(raws)
	if err != nil {
		return s.reply(w, MsgAck, AckPayload{Error: err.Error()})
	}
	for _, tr := range traces {
		if tr.ProgramID != programID {
			return s.reply(w, MsgAck, AckPayload{
				Error: fmt.Sprintf("wire: trace for program %q in batch submitted for %q", tr.ProgramID, programID),
			})
		}
	}
	if handled, herr := s.admitBatch(cs, w, session, len(traces)); handled {
		return herr
	}
	// Exactly-once when the backend keeps a session dedup window; otherwise
	// degrade gracefully to the per-program (at-least-once) paths.
	if ss, ok := s.backend.(pod.SessionSubmitter); ok {
		dup, err, handled, herr := s.submitShed(cs, w, func() (bool, error) {
			return ss.SubmitTracesSession(session, seq, programID, traces)
		})
		if handled {
			return herr
		}
		if err != nil {
			return s.reply(w, MsgAck, AckPayload{Error: err.Error()})
		}
		// A duplicate counts as fully accepted: the batch is already part of
		// the collective state, and the client must not resubmit it.
		return s.reply(w, MsgAck, AckPayload{Accepted: len(traces), Dup: dup})
	}
	var submitErr error
	if ps, ok := s.backend.(pod.ProgramSubmitter); ok {
		submitErr = ps.SubmitTracesFor(programID, traces)
	} else {
		submitErr = s.backend.SubmitTraces(traces)
	}
	if submitErr != nil {
		return s.reply(w, MsgAck, AckPayload{Error: submitErr.Error()})
	}
	return s.reply(w, MsgAck, AckPayload{Accepted: len(traces)})
}

func (s *Server) handleGetFixes(w io.Writer, payload []byte) error {
	var req GetFixesPayload
	if err := json.Unmarshal(payload, &req); err != nil {
		return s.reply(w, MsgFixes, FixesPayload{Error: err.Error()})
	}
	// Read paths proxy transparently for every client generation: the reply
	// is an ordinary MsgFixes either way, so there is nothing for a routing
	// client to learn from a redirect here.
	if owner, local, _ := s.routeFor(req.ProgramID); !local {
		respType, resp, perr := s.proxyFrame(owner, MsgGetFixes, payload)
		if perr != nil {
			return s.reply(w, MsgFixes, FixesPayload{Error: fmt.Sprintf("proxy to owner %s: %v", owner, perr)})
		}
		return WriteFrame(w, respType, resp)
	}
	fixes, version, err := s.backend.FixesSince(req.ProgramID, req.Version)
	if err != nil {
		return s.reply(w, MsgFixes, FixesPayload{Error: err.Error()})
	}
	out := FixesPayload{Version: version}
	for i := range fixes {
		raw, err := json.Marshal(&fixes[i])
		if err != nil {
			return s.reply(w, MsgFixes, FixesPayload{Error: err.Error()})
		}
		out.Fixes = append(out.Fixes, raw)
	}
	return s.reply(w, MsgFixes, out)
}

func (s *Server) handleGetGuidance(w io.Writer, payload []byte) error {
	var req GetGuidancePayload
	if err := json.Unmarshal(payload, &req); err != nil {
		return s.reply(w, MsgGuidance, GuidancePayload{Error: err.Error()})
	}
	if owner, local, _ := s.routeFor(req.ProgramID); !local {
		respType, resp, perr := s.proxyFrame(owner, MsgGetGuidance, payload)
		if perr != nil {
			return s.reply(w, MsgGuidance, GuidancePayload{Error: fmt.Sprintf("proxy to owner %s: %v", owner, perr)})
		}
		return WriteFrame(w, respType, resp)
	}
	cases, err := s.backend.Guidance(req.ProgramID, req.Max)
	if err != nil {
		return s.reply(w, MsgGuidance, GuidancePayload{Error: err.Error()})
	}
	out := GuidancePayload{}
	for i := range cases {
		raw, err := json.Marshal(&cases[i])
		if err != nil {
			return s.reply(w, MsgGuidance, GuidancePayload{Error: err.Error()})
		}
		out.Cases = append(out.Cases, raw)
	}
	return s.reply(w, MsgGuidance, out)
}

func (s *Server) reply(w io.Writer, t MsgType, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return WriteFrame(w, t, payload)
}
